// Package edgeis is a full reproduction of "Edge Assisted Real-time
// Instance Segmentation on Mobile Devices" (ICDCS 2022) as a Go library.
//
// The paper replaces the classical edge-assisted "track+detect" paradigm
// with "transfer+infer": the mobile device runs visual odometry to track
// its own pose and each object's pose, transfers cached segmentation masks
// to every camera frame by reprojecting mask contours through the estimated
// geometry, and in return instructs the edge server's Mask R-CNN with the
// transferred masks so the model skips anchors and RoIs it provably does
// not need.
//
// This package is the public facade. The three subsystems and every
// substrate (visual odometry, simulated DL backends, tile codec, network
// simulation, TCP transport, device models, datasets and the experiment
// harness) live in internal packages and are re-exported here as needed.
//
// Quick start:
//
//	cam := edgeis.StandardCamera(320, 240)
//	sys := edgeis.NewSystem(edgeis.SystemConfig{Camera: cam, Device: edgeis.IPhone11})
//	engine := edgeis.NewEngine(edgeis.EngineConfig{
//		World:      edgeis.StreetScene(edgeis.ScenePreset{Seed: 1, ObjectCount: 3}),
//		Camera:     cam,
//		Trajectory: edgeis.InspectionRoute(edgeis.WalkSpeed),
//		Frames:     300,
//		Medium:     edgeis.WiFi5,
//	}, sys)
//	evals, stats := engine.Run()
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// reproduction results of every figure in the paper.
package edgeis

import (
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/experiments"
	"edgeis/internal/geom"
	"edgeis/internal/live"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/parallel"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

// Core system types.
type (
	// System is the edgeIS mobile runtime (MAMT + CFRS + CIIA wiring).
	System = core.System
	// SystemConfig assembles a System.
	SystemConfig = core.Config
	// SessionStats counts session events (init attempts, losses, results).
	SessionStats = core.SessionStats
)

// NewSystem builds the edgeIS mobile runtime.
func NewSystem(cfg SystemConfig) *System { return core.NewSystem(cfg) }

// Geometry and camera.
type (
	// Camera is the pinhole camera model.
	Camera = geom.Camera
	// Pose is a rigid-body SE(3) transform.
	Pose = geom.Pose
)

// StandardCamera returns a ~60 degree FOV camera at the given resolution.
func StandardCamera(w, h int) Camera { return geom.StandardCamera(w, h) }

// Scenes and datasets.
type (
	// World is a synthetic 3-D scene with labeled objects.
	World = scene.World
	// ScenePreset parameterizes the procedural scene builders.
	ScenePreset = scene.PresetConfig
	// Trajectory produces camera poses over time.
	Trajectory = scene.Trajectory
	// Clip is one evaluation sequence (world + trajectory).
	Clip = dataset.Clip
)

// Scene builders and trajectories.
var (
	// StreetScene builds a KITTI-like outdoor scene.
	StreetScene = scene.StreetScene
	// IndoorScene builds a DAVIS-like indoor scene.
	IndoorScene = scene.IndoorScene
	// IndustrialScene builds the oil-field equipment scene.
	IndustrialScene = scene.IndustrialScene
	// InspectionRoute returns the standard camera route at a gait speed.
	InspectionRoute = scene.InspectionRoute
)

// Gait speeds (m/s) of the robustness study.
const (
	WalkSpeed   = scene.WalkSpeed
	StrideSpeed = scene.StrideSpeed
	JogSpeed    = scene.JogSpeed
)

// Dataset corpora mirroring the paper's evaluation data.
var (
	// DAVISClips returns the DAVIS-style indoor clips.
	DAVISClips = dataset.DAVIS
	// KITTIClips returns the KITTI-style street clips.
	KITTIClips = dataset.KITTI
	// XiphClips returns the Xiph-style mixed clips.
	XiphClips = dataset.Xiph
	// SelfRecordedClips returns the paper's self-recorded AR clips.
	SelfRecordedClips = dataset.SelfRecorded
	// AllClips returns the full corpus.
	AllClips = dataset.All
)

// Simulation pipeline.
type (
	// Engine drives a strategy through a scenario on a simulated clock.
	Engine = pipeline.Engine
	// EngineConfig assembles a simulation run.
	EngineConfig = pipeline.Config
	// Strategy is a mobile-side system under test.
	Strategy = pipeline.Strategy
	// FrameEval is the per-frame outcome.
	FrameEval = pipeline.FrameEval
	// RunStats aggregates engine accounting.
	RunStats = pipeline.RunStats
	// Accumulator gathers IoU and latency statistics.
	Accumulator = metrics.Accumulator
)

// NewEngine prepares a simulation run.
func NewEngine(cfg EngineConfig, s Strategy) *Engine { return pipeline.NewEngine(cfg, s) }

// Edge backends: the pluggable serving side of the offload loop. One engine
// drives all of them — set EngineConfig.Backend, or leave it nil for the
// default simulated model+network backend.
type (
	// EdgeBackend serves offloaded frames and delivers asynchronous results
	// with explicit queue-depth and drop accounting.
	EdgeBackend = pipeline.EdgeBackend
	// BackendStats is the accounting every backend reports.
	BackendStats = pipeline.BackendStats
	// SimBackendConfig assembles the simulated edge backend.
	SimBackendConfig = pipeline.SimBackendConfig
)

var (
	// NewSimBackend builds the simulated model+network edge.
	NewSimBackend = pipeline.NewSimBackend
	// NewLoopbackBackend builds the in-process co-located edge.
	NewLoopbackBackend = pipeline.NewLoopbackBackend
	// NewTCPBackend adapts a dialed EdgeClient into an EdgeBackend, running
	// the engine against a real edge server over the wire.
	NewTCPBackend = live.NewTCPBackend
	// NewLiveDriver couples a mobile runtime to a live edge connection.
	NewLiveDriver = live.NewDriver
)

// Stage instrumentation: per-stage wall-clock timings of the mobile
// pipeline's tracking path (MAMT transfer, CFRS selection, CIIA planning).
type (
	// StageObserver receives per-stage timings via System.SetStageObserver.
	StageObserver = core.StageObserver
	// StageTimer is a StageObserver aggregating counts and totals.
	StageTimer = core.StageTimer
)

// NewStageTimer returns an empty aggregating stage observer.
var NewStageTimer = core.NewStageTimer

// Evaluate folds per-frame evals into an accumulator, skipping warmup.
func Evaluate(name string, evals []FrameEval, warmup int) *Accumulator {
	return pipeline.EvaluateFrom(name, evals, warmup)
}

// Network media.
const (
	// WiFi24 is 2.4 GHz WiFi.
	WiFi24 = netsim.WiFi24
	// WiFi5 is 5 GHz WiFi.
	WiFi5 = netsim.WiFi5
	// LTE is the cellular link of the field study.
	LTE = netsim.LTE
)

// Device profiles.
var (
	// JetsonTX2 is the reference edge server.
	JetsonTX2 = device.JetsonTX2
	// JetsonXavier is the field-deployment edge node.
	JetsonXavier = device.JetsonXavier
	// IPhone11 is the primary mobile device.
	IPhone11 = device.IPhone11
	// GalaxyS10 is the secondary mobile device.
	GalaxyS10 = device.GalaxyS10
	// DreamGlass is the AR headset of the field study.
	DreamGlass = device.DreamGlass
)

// Simulated DL backends.
type (
	// Model is a simulated segmentation/detection network.
	Model = segmodel.Model
	// ModelKind selects Mask R-CNN, YOLACT or YOLOv3.
	ModelKind = segmodel.Kind
)

// Model kinds.
const (
	// MaskRCNN is the two-stage segmenter CIIA accelerates.
	MaskRCNN = segmodel.MaskRCNN
	// YOLACT is the one-stage segmenter baseline.
	YOLACT = segmodel.YOLACT
	// YOLOv3 is the detector used in the motivation study.
	YOLOv3 = segmodel.YOLOv3
)

// NewModel builds a simulated network with its calibrated profile.
func NewModel(kind ModelKind) *Model { return segmodel.New(kind) }

// Real TCP transport (the deployable mobile/edge wire protocol).
type (
	// EdgeServer serves segmentation over TCP.
	EdgeServer = transport.Server
	// EdgeClient is the mobile side of the wire protocol.
	EdgeClient = transport.Client
	// EdgeServerStats snapshots a server: served/rejected frames, connection
	// peaks and the scheduler's queue accounting.
	EdgeServerStats = transport.ServerStats
)

// NewEdgeServer builds a TCP edge server around a model. WithAccelerators
// sizes its inference pool; WithQueueDepth bounds admission (overflow is
// rejected per frame and surfaces as dropped offloads on the client).
func NewEdgeServer(model *Model, opts ...transport.ServerOption) *EdgeServer {
	return transport.NewServer(model, opts...)
}

// DialEdge connects to an edge server.
var DialEdge = transport.Dial

// DialEdgeRetry connects with bounded exponential backoff, absorbing the
// startup race where the client comes up before the server's listener.
var DialEdgeRetry = transport.DialRetry

// Experiments: the per-figure reproduction harness.
type (
	// ExperimentResult is one reproduced table/figure.
	ExperimentResult = experiments.Result
)

// Parallelism controls (see DESIGN.md, "Concurrency model"). The experiment
// harness fans independent clip/arm/figure runs across a bounded worker
// pool; results are merged in deterministic order, so any pool size
// produces byte-identical reports.
var (
	// SetWorkers overrides the worker pool size (1 = serial, <=0 = all
	// cores) and returns the previous effective size.
	SetWorkers = parallel.SetWorkers
	// Workers returns the effective worker pool size.
	Workers = parallel.Workers
)

// Experiment entry points (see DESIGN.md for the index).
var (
	// RunAllExperiments reproduces every figure of the evaluation.
	RunAllExperiments = experiments.All
	// Fig2b .. Fig17 reproduce individual figures.
	Fig2b      = experiments.Fig2b
	Fig9       = experiments.Fig9
	Fig10      = experiments.Fig10
	Fig11      = experiments.Fig11
	Fig12      = experiments.Fig12
	Fig13      = experiments.Fig13
	Fig14      = experiments.Fig14
	Fig15      = experiments.Fig15
	Fig16      = experiments.Fig16
	Fig17      = experiments.Fig17
	PowerStudy = experiments.PowerStudy
)
