// Command edgeis-kernelbench measures the word-packed mask kernels against
// the retained scalar reference implementation (internal/mask/scalar.go) at
// the paper's working resolutions, and writes the results as JSON.
//
// Every kernel is differentially verified against the scalar reference
// before it is timed, so a reported speedup is always a speedup of the same
// computation. The committed BENCH_kernels.json at the repo root is this
// command's output on the reference machine; re-run with
//
//	go run ./cmd/edgeis-kernelbench -out BENCH_kernels.json
//
// (or `make bench`) to refresh it. See DESIGN.md §12 for how to read the
// numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
)

// resolution is one benchmarked mask size.
type resolution struct{ W, H int }

// paper resolutions: the mobile pipeline tracks at QVGA-class sizes and the
// edge model consumes VGA-class frames.
var resolutions = []resolution{{320, 240}, {640, 480}}

// result is one kernel × resolution measurement.
type result struct {
	Kernel     string  `json:"kernel"`
	Resolution string  `json:"resolution"`
	PackedNs   float64 `json:"packed_ns_op"`
	ScalarNs   float64 `json:"scalar_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// report is the file schema of BENCH_kernels.json.
type report struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime_per_op"`
	Results   []result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		out       = flag.String("out", "BENCH_kernels.json", "output file (- for stdout)")
		benchtime = flag.Duration("benchtime", 200*time.Millisecond, "minimum measuring time per kernel per implementation")
	)
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime.String(),
	}
	for _, res := range resolutions {
		for _, c := range kernelCases(res.W, res.H) {
			if err := c.verify(); err != nil {
				return fmt.Errorf("%s %dx%d: differential check failed: %v", c.name, res.W, res.H, err)
			}
			packed := timeOp(*benchtime, c.packed)
			scalar := timeOp(*benchtime, c.scalar)
			rep.Results = append(rep.Results, result{
				Kernel:     c.name,
				Resolution: fmt.Sprintf("%dx%d", res.W, res.H),
				PackedNs:   round1(packed),
				ScalarNs:   round1(scalar),
				Speedup:    round1(scalar / packed),
			})
			fmt.Fprintf(os.Stderr, "%-12s %4dx%-4d packed %10.1f ns/op  scalar %10.1f ns/op  %6.1fx\n",
				c.name, res.W, res.H, packed, scalar, scalar/packed)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// timeOp measures one operation's mean latency by growing the batch size
// until the batch runs for at least d, testing.B-style, so per-iteration
// clock reads never pollute sub-microsecond kernels.
func timeOp(d time.Duration, op func()) float64 {
	op() // warm caches and one-time lazy work before measuring
	n := 1
	for {
		start := time.Now() //edgeis:wallclock benchmark harness measures real kernel latency
		for i := 0; i < n; i++ {
			op()
		}
		elapsed := time.Since(start) //edgeis:wallclock benchmark harness measures real kernel latency
		if elapsed >= d {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		// Grow toward the target with headroom, capped at 100x per round.
		next := 100 * n
		if elapsed > 0 {
			if est := int(float64(n) * 1.5 * float64(d) / float64(elapsed)); est < next {
				next = est
			}
		}
		if next <= n {
			next = n + 1
		}
		n = next
	}
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

// kernelCase pairs a packed kernel with its scalar reference: packed and
// scalar run the same computation on identical fixtures, verify checks they
// agree before any timing happens.
type kernelCase struct {
	name   string
	packed func()
	scalar func()
	verify func() error
}

// fixtures builds the shared packed/scalar operand pair: a centered solid
// rectangle (the shape cached instance masks approximate) and a translated
// copy, plus the polygon the tracking hot path actually rasterizes — a
// traced contour simplified to the predictor's MaxContourPoints budget.
func fixtures(w, h int) (a, b *mask.Bitmask, sa, sb *mask.Scalar, poly []geom.Vec2) {
	sa = mask.NewScalar(w, h)
	for y := h / 4; y < 3*h/4; y++ {
		for x := w / 4; x < 3*w/4; x++ {
			sa.Set(x, y)
		}
	}
	a = sa.Packed()
	b = a.Translate(5, 3)
	sb = sa.Translate(5, 3)
	poly = mask.SimplifyContour(mask.ExtractContours(a, 8)[0], 160)
	return
}

// sameMask reports whether a packed and a scalar mask hold identical pixels.
func sameMask(m *mask.Bitmask, s *mask.Scalar) error {
	if m.Width != s.Width || m.Height != s.Height {
		return fmt.Errorf("size %dx%d vs %dx%d", m.Width, m.Height, s.Width, s.Height)
	}
	pix := m.Bytes()
	for i := range pix {
		if pix[i] != s.Pix[i] {
			return fmt.Errorf("pixel (%d,%d) differs", i%s.Width, i/s.Width)
		}
	}
	return nil
}

func kernelCases(w, h int) []kernelCase {
	a, b, sa, sb, poly := fixtures(w, h)
	var sinkF float64
	var sinkI int
	var sinkB mask.Box
	_ = sinkF
	_ = sinkI
	_ = sinkB
	cropBox := a.BoundingBox()
	// Set-op accumulators: Union/Intersect/Subtract run in place on these,
	// so the timed loop holds no clone and the shared fixtures never drift.
	// Re-applying the same operand does identical word-wise work every
	// iteration regardless of accumulator content.
	ua, sua := a.Clone(), sa.Clone()
	ia, sia := a.Clone(), sa.Clone()
	da, sda := a.Clone(), sa.Clone()
	return []kernelCase{
		{
			name:   "IoU",
			packed: func() { sinkF = mask.IoU(a, b) },
			scalar: func() { sinkF = mask.ScalarIoU(sa, sb) },
			verify: func() error {
				if p, s := mask.IoU(a, b), mask.ScalarIoU(sa, sb); p != s {
					return fmt.Errorf("IoU %v vs %v", p, s)
				}
				return nil
			},
		},
		{
			name:   "Area",
			packed: func() { sinkI = a.Area() },
			scalar: func() { sinkI = sa.Area() },
			verify: func() error {
				if p, s := a.Area(), sa.Area(); p != s {
					return fmt.Errorf("Area %d vs %d", p, s)
				}
				return nil
			},
		},
		{
			name:   "Union",
			packed: func() { ua.Union(b) },
			scalar: func() { sua.Union(sb) },
			verify: func() error {
				p, s := a.Clone(), sa.Clone()
				p.Union(b)
				s.Union(sb)
				return sameMask(p, s)
			},
		},
		{
			name:   "Intersect",
			packed: func() { ia.Intersect(b) },
			scalar: func() { sia.Intersect(sb) },
			verify: func() error {
				p, s := a.Clone(), sa.Clone()
				p.Intersect(b)
				s.Intersect(sb)
				return sameMask(p, s)
			},
		},
		{
			name:   "Subtract",
			packed: func() { da.Subtract(b) },
			scalar: func() { sda.Subtract(sb) },
			verify: func() error {
				p, s := a.Clone(), sa.Clone()
				p.Subtract(b)
				s.Subtract(sb)
				return sameMask(p, s)
			},
		},
		{
			name:   "BoundingBox",
			packed: func() { sinkB = a.BoundingBox() },
			scalar: func() { sinkB = sa.BoundingBox() },
			verify: func() error {
				if p, s := a.BoundingBox(), sa.BoundingBox(); p != s {
					return fmt.Errorf("BoundingBox %+v vs %+v", p, s)
				}
				return nil
			},
		},
		{
			name:   "Erode",
			packed: func() { a.Erode(1) },
			scalar: func() { sa.Erode(1) },
			verify: func() error { return sameMask(a.Erode(1), sa.Erode(1)) },
		},
		{
			name:   "Dilate",
			packed: func() { a.Dilate(1) },
			scalar: func() { sa.Dilate(1) },
			verify: func() error { return sameMask(a.Dilate(1), sa.Dilate(1)) },
		},
		{
			name:   "Translate",
			packed: func() { a.Translate(5, 3) },
			scalar: func() { sa.Translate(5, 3) },
			verify: func() error { return sameMask(a.Translate(5, 3), sa.Translate(5, 3)) },
		},
		{
			name:   "Crop",
			packed: func() { a.Crop(cropBox) },
			scalar: func() { sa.Crop(cropBox) },
			verify: func() error { return sameMask(a.Crop(cropBox), sa.Crop(cropBox)) },
		},
		{
			name: "Paste",
			packed: func() {
				dst := mask.New(w, h)
				dst.Paste(b, 2, 2)
			},
			scalar: func() {
				dst := mask.NewScalar(w, h)
				dst.Paste(sb, 2, 2)
			},
			verify: func() error {
				p := mask.New(w, h)
				p.Paste(b, 2, 2)
				s := mask.NewScalar(w, h)
				s.Paste(sb, 2, 2)
				return sameMask(p, s)
			},
		},
		{
			name:   "FillPolygon",
			packed: func() { mask.FillPolygon(poly, w, h) },
			scalar: func() { mask.ScalarFillPolygon(poly, w, h) },
			verify: func() error { return sameMask(mask.FillPolygon(poly, w, h), mask.ScalarFillPolygon(poly, w, h)) },
		},
	}
}
