// Command edgeis-lint is the multichecker for edgeis's custom static
// analyzers. It enforces the determinism and concurrency invariants the
// paper-fidelity claims rest on:
//
//	mapiter       no order-sensitive map iteration in seed-deterministic packages
//	walltime      no wall-clock reads where the virtual clock must be used
//	seedrand      no math/rand global state shared across experiment arms
//	floateq       no exact float equality in scheduler/geometry decisions
//	lockbalance   every Lock paired with an Unlock on every path; no silent
//	              unlock-relock dances inside a critical section
//	lockblock     no blocking operation (channel op, net.Conn I/O,
//	              Accelerator.Run) while a mutex is held
//	goroleak      goroutines in long-lived serving packages must be tied to a
//	              shutdown path (WaitGroup, done channel, drained range, select)
//	wgadd         WaitGroup.Add may not run inside the goroutine it accounts for
//	conservation  serving counters (served/rejected/shed/dropped/...) only move
//	              through their audited mutator methods
//
// Usage:
//
//	edgeis-lint [-run mapiter,floateq] [packages...]
//
// Packages default to ./.... Exit status is 0 for a clean tree, 1 when
// findings were reported, 2 on a loader or usage error. Findings are
// suppressed per line with //edgeis:<directive> <reason> comments; unused
// suppressions are themselves findings. See internal/lint and DESIGN.md
// §11 and §16 for the grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edgeis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("edgeis-lint", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: edgeis-lint [-run names] [-list] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return 0
	}
	if *runList != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "edgeis-lint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgeis-lint: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.CheckPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeis-lint: %s: %v\n", pkg.Path, err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "edgeis-lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
