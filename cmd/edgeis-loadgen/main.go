// Command edgeis-loadgen runs the fleet-scale serving load harness
// (internal/loadgen) and writes machine-readable SLO reports.
//
// Three targets share one profile vocabulary:
//
//   - sim: the deterministic virtual-time simulator. Two runs of the same
//     profile produce byte-identical reports; this is what the committed
//     BENCH_serving.json pins.
//   - scheduler: wall-clock fleet against a real in-process edge.Scheduler.
//   - tcp: wall-clock fleet of transport.Clients over loopback sockets
//     against a transport.Server (or -addr for an external edgeis-server).
//
// The committed BENCH_serving.json at the repo root is `-suite` output —
// every named profile on the simulator plus the tcp-smoke profile over real
// sockets. Refresh it with
//
//	go run ./cmd/edgeis-loadgen -suite -out BENCH_serving.json
//
// (or `make servingbench`). `-check` replays each simulator run twice and
// fails on any byte difference — the determinism gate CI runs. See
// DESIGN.md §14 for how to read the reports.
//
// Sharded profiles (ci-smoke-fleet, fleet-3x, fleet-3x-kill1) run the edge
// as a fleet of replicas with rendezvous session placement; every target
// honours the shard count and the replica failure schedule. -replicas and
// -kill-at (replica@ms, comma-separated) override both on any profile, so
// one command can answer "what does this workload look like on 3 replicas
// if one dies mid-run". See DESIGN.md §18 for the fleet semantics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"edgeis/internal/loadgen"
	"edgeis/internal/loadgen/drive"
)

// report is the file schema of BENCH_serving.json.
type report struct {
	GoVersion string         `json:"go_version"`
	GOARCH    string         `json:"goarch"`
	Results   []*loadgen.SLO `json:"results"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		target    = flag.String("target", "sim", "execution target: sim, scheduler or tcp")
		profile   = flag.String("profile", "", "named profile to run (see -list); empty with -suite runs the committed set")
		list      = flag.Bool("list", false, "list the named profiles and exit")
		suite     = flag.Bool("suite", false, "run every profile on the simulator plus tcp-smoke over sockets")
		check     = flag.Bool("check", false, "run each simulator profile twice and fail unless reports are byte-identical")
		out       = flag.String("out", "-", "output file (- for stdout)")
		timescale = flag.Float64("timescale", 1, "wall targets: wall ms per virtual ms of the generation schedule")
		occupancy = flag.Float64("occupancy", drive.DefaultOccupancy, "wall targets: accelerator hold time as a fraction of nominal inference latency")
		drain     = flag.Duration("drain", drive.DefaultDrainTimeout, "tcp target: in-flight drain deadline after the horizon")
		addr      = flag.String("addr", "", "tcp target: external server address (empty starts one in-process)")
		maxBatch  = flag.Int("max-batch", 0, "override the profile's max frames per accelerator launch (0 = profile value)")
		batchWin  = flag.Float64("batch-window", -1, "override the profile's gather window in virtual ms (-1 = profile value)")
		shedPol   = flag.String("shed-policy", "", "override the profile's admission policy: reject or latest-wins (empty = profile value)")
		keyframe  = flag.Int("keyframe-interval", 0, "override the profile's keyframe interval; N > 1 enables the skip-compute feature cache (0 = profile value)")
		skip      = flag.Bool("skip-compute", false, "shorthand for -keyframe-interval 4 on profiles that leave it unset")
		replicas  = flag.Int("replicas", 0, "override the profile's edge replica count; N > 1 shards the edge into a fleet (0 = profile value)")
		killAt    = flag.String("kill-at", "", "replica failure schedule as replica@ms[,replica@ms...], e.g. 1@7500 (replaces the profile's; needs a sharded profile or -replicas)")
	)
	flag.Parse()

	kills, err := parseKills(*killAt)
	if err != nil {
		return err
	}

	// Policy overrides let one command A/B a profile against the batch
	// former, latest-wins or the skip-compute feature cache without
	// defining a new named arm.
	override := func(p loadgen.Profile) loadgen.Profile {
		if *maxBatch > 0 {
			p.MaxBatch = *maxBatch
		}
		if *batchWin >= 0 {
			p.BatchWindowMs = *batchWin
		}
		if *shedPol != "" {
			p.ShedPolicy = *shedPol
		}
		if *keyframe > 0 {
			p.KeyframeInterval = *keyframe
		} else if *skip && p.KeyframeInterval == 0 {
			p.KeyframeInterval = 4
		}
		if *replicas > 0 {
			p.Replicas = *replicas
		}
		if kills != nil {
			p.Kills = kills
		}
		return p
	}

	if *list {
		for _, p := range loadgen.Profiles() {
			p = p.Normalized()
			fleet := ""
			if p.Sharded() {
				fleet = fmt.Sprintf("  x%d replicas", p.Replicas)
				if len(p.Kills) > 0 {
					fleet += fmt.Sprintf(", %d kill(s)", len(p.Kills))
				}
			}
			fmt.Printf("%-20s %5d sessions %2d accel queue %3d  %6.1fs @ %.1f fps  %s%s\n",
				p.Name, p.Sessions, p.Accelerators, p.QueueDepth, p.DurationMs/1000, p.FPS, p.Arrival, fleet)
		}
		return nil
	}

	opts := drive.Options{TimeScale: *timescale, Occupancy: *occupancy, DrainTimeout: *drain, Addr: *addr}
	rep := report{GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}

	var profiles []loadgen.Profile
	if *profile != "" {
		p, err := loadgen.ProfileByName(*profile)
		if err != nil {
			return err
		}
		profiles = []loadgen.Profile{p}
	} else if *suite || *check {
		profiles = loadgen.Profiles()
	} else {
		return fmt.Errorf("edgeis-loadgen: pick -profile <name>, -suite or -list")
	}

	for _, p := range profiles {
		tgt := *target
		if *suite {
			tgt = "sim"
		}
		slo, err := runOne(tgt, override(p), opts, *check)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, slo)
		fmt.Fprintln(os.Stderr, slo)
	}
	// The suite ends with the smoke profile on real sockets, so the
	// committed report carries one wall-clock row next to the pinned ones.
	if *suite {
		p, err := loadgen.ProfileByName("tcp-smoke")
		if err != nil {
			return err
		}
		start := time.Now() //edgeis:wallclock timing a real socket run for the progress line
		slo, err := drive.RunTCP(override(p), opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start) //edgeis:wallclock timing a real socket run for the progress line
		fmt.Fprintf(os.Stderr, "%s (%.1fs wall)\n", slo, elapsed.Seconds())
		rep.Results = append(rep.Results, slo)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// parseKills decodes the -kill-at schedule: comma-separated replica@ms
// entries. An empty flag returns nil, which keeps the profile's own
// schedule; a non-empty flag replaces it wholesale.
func parseKills(spec string) ([]loadgen.ReplicaKill, error) {
	if spec == "" {
		return nil, nil
	}
	var kills []loadgen.ReplicaKill
	for _, entry := range strings.Split(spec, ",") {
		replica, at, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("edgeis-loadgen: -kill-at entry %q: want replica@ms", entry)
		}
		r, err := strconv.Atoi(replica)
		if err != nil {
			return nil, fmt.Errorf("edgeis-loadgen: -kill-at entry %q: bad replica: %v", entry, err)
		}
		ms, err := strconv.ParseFloat(at, 64)
		if err != nil {
			return nil, fmt.Errorf("edgeis-loadgen: -kill-at entry %q: bad time: %v", entry, err)
		}
		kills = append(kills, loadgen.ReplicaKill{Replica: r, AtMs: ms})
	}
	return kills, nil
}

// runOne executes one profile on one target; with check set, simulator runs
// execute twice and must agree byte for byte.
func runOne(target string, p loadgen.Profile, opts drive.Options, check bool) (*loadgen.SLO, error) {
	var slo *loadgen.SLO
	var err error
	switch target {
	case "sim":
		slo = loadgen.Run(p)
		if check {
			a, _ := json.Marshal(slo)
			b, _ := json.Marshal(loadgen.Run(p))
			if string(a) != string(b) {
				return nil, fmt.Errorf("edgeis-loadgen: %s: two simulator runs differ:\n%s\n%s", p.Name, a, b)
			}
		}
	case "scheduler":
		slo, err = drive.RunScheduler(p, opts)
	case "tcp":
		slo, err = drive.RunTCP(p, opts)
	default:
		return nil, fmt.Errorf("edgeis-loadgen: unknown target %q (want sim, scheduler or tcp)", target)
	}
	if err != nil {
		return nil, err
	}
	if err := slo.Check(); err != nil {
		return nil, err
	}
	return slo, nil
}
