// Command edgeis-datasetgen inspects and summarizes the synthetic
// evaluation corpus that substitutes for DAVIS / KITTI / Xiph and the
// paper's self-recorded clips. It prints corpus statistics, per-clip object
// inventories and, optionally, an ASCII rendering of a frame's ground-truth
// masks.
//
// Usage:
//
//	edgeis-datasetgen [-seed N] [-frames N] [-render clip:frame]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"edgeis/internal/dataset"
	"edgeis/internal/geom"
	"edgeis/internal/scene"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		seed   = flag.Int64("seed", 42, "corpus seed")
		frames = flag.Int("frames", 240, "frames per clip")
		render = flag.String("render", "", "render a frame's GT masks as ASCII, e.g. kitti/street-static:60")
	)
	flag.Parse()

	clips := dataset.All(*seed, *frames)
	clips = append(clips, dataset.GaitClips(*seed, *frames)...)
	clips = append(clips, dataset.ComplexityClips(*seed, *frames)...)
	clips = append(clips, dataset.FieldClip(*seed, *frames))

	if *render != "" {
		return renderFrame(clips, *render)
	}

	st := dataset.Summarize(clips)
	fmt.Printf("corpus: %d clips, %d frames (%.1f s of 30 fps video), %d dynamic clips\n\n",
		st.Clips, st.TotalFrames, st.TotalSeconds, st.DynamicClips)

	fmt.Printf("%-36s %7s %8s %8s %8s %s\n",
		"clip", "frames", "objects", "dynamic", "speed", "classes")
	for _, c := range clips {
		classes := map[string]int{}
		for _, o := range c.World.Objects {
			classes[o.Class.String()]++
		}
		var parts []string
		for name, n := range classes {
			parts = append(parts, fmt.Sprintf("%dx %s", n, name))
		}
		fmt.Printf("%-36s %7d %8d %8d %7.1fm/s %s\n",
			c.Dataset+"/"+c.Name, c.Frames, len(c.World.Objects),
			c.World.DynamicObjectCount(), c.CameraSpeed, strings.Join(parts, ", "))
	}
	return nil
}

// renderFrame draws one frame's ground-truth masks with per-object glyphs.
func renderFrame(clips []dataset.Clip, spec string) error {
	name, frameStr, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("render spec %q: want clip:frame", spec)
	}
	frameIdx, err := strconv.Atoi(frameStr)
	if err != nil {
		return fmt.Errorf("render spec %q: %w", spec, err)
	}
	var clip *dataset.Clip
	for i := range clips {
		if clips[i].Dataset+"/"+clips[i].Name == name {
			clip = &clips[i]
			break
		}
	}
	if clip == nil {
		return fmt.Errorf("unknown clip %q", name)
	}
	if frameIdx < 0 || frameIdx >= clip.Frames {
		return fmt.Errorf("frame %d out of range [0,%d)", frameIdx, clip.Frames)
	}

	cam := geom.StandardCamera(320, 240)
	t := float64(frameIdx) / scene.FrameRate
	f := clip.World.Render(cam, clip.Traj.PoseAt(t), t, frameIdx)

	const glyphs = "#@%*+=oxab"
	const cols, rows = 96, 36
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	for i, gt := range f.Objects {
		g := glyphs[i%len(glyphs)]
		for y := 0; y < cam.Height; y++ {
			for x := 0; x < cam.Width; x++ {
				if gt.Visible.At(x, y) {
					grid[y*rows/cam.Height][x*cols/cam.Width] = g
				}
			}
		}
	}
	fmt.Printf("%s frame %d: %d visible objects\n", name, frameIdx, len(f.Objects))
	for i, gt := range f.Objects {
		fmt.Printf("  %c = %s (id %d, %d px, depth %.1f m)\n",
			glyphs[i%len(glyphs)], gt.Class, gt.ObjectID, gt.Visible.Area(), gt.Depth)
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
	return nil
}
