// Command edgeis-bench reproduces the paper's evaluation: it runs every
// table and figure of Section VI (or a selected one) and prints
// paper-vs-measured report blocks.
//
// Usage:
//
//	edgeis-bench [-seed N] [-frames N] [-workers N] [-fig fig9|fig14|...|all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"edgeis/internal/experiments"
	"edgeis/internal/parallel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 42, "experiment seed")
		frames  = flag.Int("frames", 0, "frames per clip (0 = experiment default)")
		fig     = flag.String("fig", "all", "figure to run: fig2b,fig9,fig10,fig11,fig12,fig13,fig14,fig15,fig16,fig17,power,ablk,ablt,ablbw,ablkf or all")
		workers = flag.Int("workers", 0, "worker pool size: 0 = all cores (or $EDGEIS_WORKERS), 1 = serial")
	)
	flag.Parse()
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	runners := map[string]func() *experiments.Result{
		"fig2b": func() *experiments.Result { return experiments.Fig2b(*seed) },
		"fig9":  func() *experiments.Result { return experiments.Fig9(*seed, *frames) },
		"fig10": func() *experiments.Result { return experiments.Fig10(*seed, *frames) },
		"fig11": func() *experiments.Result { return experiments.Fig11(*seed, *frames) },
		"fig12": func() *experiments.Result { return experiments.Fig12(*seed, *frames) },
		"fig13": func() *experiments.Result { return experiments.Fig13(*seed, *frames) },
		"fig14": func() *experiments.Result { return experiments.Fig14(*seed) },
		"fig15": func() *experiments.Result { return experiments.Fig15(*seed, 0) },
		"fig16": func() *experiments.Result { return experiments.Fig16(*seed, *frames) },
		"fig17": func() *experiments.Result { return experiments.Fig17(*seed, 0) },
		"power": func() *experiments.Result { return experiments.PowerStudy(*seed, 0) },
		"ablk":  func() *experiments.Result { return experiments.AblationContourK(*seed, *frames) },
		"ablt":  func() *experiments.Result { return experiments.AblationOffloadThreshold(*seed, *frames) },
		"ablbw": func() *experiments.Result { return experiments.AblationCompressionBudget(*seed, *frames) },
		// ablkf is not part of `all`: the committed EXPERIMENTS.md report is
		// golden-pinned, so the skip-compute sweep is recorded separately.
		"ablkf": func() *experiments.Result { return experiments.AblationKeyframeInterval(*seed, *frames) },
	}

	name := strings.ToLower(*fig)
	if name == "all" {
		// experiments.All fans the figures out across the worker pool and
		// returns them in paper order.
		start := time.Now() //edgeis:wallclock CLI reports real end-to-end runtime to the operator
		for _, r := range experiments.All(*seed, *frames) {
			fmt.Println(r.Render())
		}
		fmt.Printf("total runtime: %v\n", time.Since(start).Round(time.Second)) //edgeis:wallclock CLI reports real end-to-end runtime to the operator
		return nil
	}
	runner, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q; available:", name)
		for k := range runners {
			fmt.Fprintf(os.Stderr, " %s", k)
		}
		fmt.Fprintln(os.Stderr)
		return fmt.Errorf("unknown figure %q", name)
	}
	fmt.Println(runner().Render())
	return nil
}
