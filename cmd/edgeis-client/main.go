// Command edgeis-client runs the mobile side against a live edgeis-server:
// a synthetic camera feeds the full edgeIS mobile pipeline (VO, mask
// transfer, CFRS), offloads travel over real TCP, and results flow back
// into the tracker. Per-frame accuracy against ground truth is reported at
// the end.
//
// Usage:
//
//	edgeis-client [-addr 127.0.0.1:7465] [-clip street|indoor|industrial] [-frames 300] [-realtime]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/live"
	"edgeis/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7465", "edge server address")
		clipName = flag.String("clip", "street", "scenario: street, indoor or industrial")
		frames   = flag.Int("frames", 300, "frames to run")
		seed     = flag.Int64("seed", 7, "scenario seed")
		realtime = flag.Bool("realtime", false, "pace frames at 30 fps wall clock")
		retries  = flag.Int("dial-retries", 5, "dial attempts before giving up (exponential backoff)")
	)
	flag.Parse()

	var clip dataset.Clip
	switch *clipName {
	case "street":
		clip = dataset.KITTI(*seed, *frames)[0]
	case "indoor":
		clip = dataset.SelfRecorded(*seed, *frames)[0]
	case "industrial":
		clip = dataset.FieldClip(*seed, *frames)
	default:
		return fmt.Errorf("unknown clip %q", *clipName)
	}
	clip.Frames = *frames

	// Retry with backoff so a client started moments before its server (the
	// usual orchestration race) connects instead of dying.
	client, err := transport.DialRetry(*addr, 3*time.Second, *retries, 100*time.Millisecond)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := client.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	cam := geom.StandardCamera(320, 240)
	sys := core.NewSystem(core.Config{Camera: cam, Device: device.IPhone11, Seed: *seed})
	driver := live.NewDriver(sys, client, clip, cam, *seed)
	driver.Realtime = *realtime
	driver.Progress = func(frame int, iou float64) {
		log.Printf("frame %d: mean IoU so far %.3f", frame, iou)
	}

	log.Printf("running %s against %s (%d frames)", clip, *addr, clip.Frames)
	out, err := driver.Run()
	if err != nil {
		return err
	}

	fmt.Println(out.Acc.Row())
	fmt.Printf("session: init attempts %d (failures %d), losses %d, edge results %d, sent %d, dropped %d, discarded %d\n",
		out.Session.InitAttempts, out.Session.InitFailures, out.Session.LostEvents,
		out.Session.EdgeResults, out.Sent, out.DroppedOffloads, out.DiscardedResults)
	return nil
}
