// Command edgeis-server runs the edge node: a TCP server that accepts
// offloaded frames from edgeis-client instances, runs the (optionally
// CIIA-guided) segmentation backend on a pool of accelerator workers, and
// streams contour-encoded results back. The deployable counterpart of the
// paper's Jetson TX2 server, scaled out: -accelerators sizes the inference
// pool, -queue-depth bounds admission (overflow frames are rejected
// per-frame, never queued without bound), -shed-policy selects the admission
// discipline at a full queue (reject, or latest-wins which sheds the
// session's own stale frame to admit the fresh one), and -max-batch with
// -batch-window turns on the cross-session gather-window batch former.
//
// -keyframe-interval enables per-session temporal-redundancy skip-compute:
// one frame in every N recomputes the full backbone, the rest warp the
// session's cached keyframe features at partial cost.
//
// When the server is one replica of a fleet, repeatable -fleet-peer flags
// name its siblings; the list is advertised to clients in session-resume
// acks so a client that loses this server knows where to fail over. The
// server never dials its peers — placement and failover are client-side
// (internal/fleet).
//
// Usage:
//
//	edgeis-server [-addr :7465] [-model mask-rcnn|yolact|yolov3] [-device tx2|xavier]
//	              [-accelerators 1] [-queue-depth 32] [-occupancy 0] [-continuity]
//	              [-shed-policy reject|latest-wins] [-max-batch 1] [-batch-window 0]
//	              [-keyframe-interval 1] [-fleet-peer host:port ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edgeis/internal/device"
	"edgeis/internal/edge"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// peerList collects repeatable -fleet-peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("-fleet-peer needs an address")
	}
	*p = append(*p, v)
	return nil
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7465", "listen address")
		modelName = flag.String("model", "mask-rcnn", "backend model: mask-rcnn, yolact or yolov3")
		devName   = flag.String("device", "tx2", "edge device profile: tx2 or xavier")
		accels    = flag.Int("accelerators", 1, "inference worker pool size (1 = deterministic serialized mode)")
		queue     = flag.Int("queue-depth", 0, "admission queue bound (0 = default; overflow rejects frames)")
		occupancy = flag.Float64("occupancy", 0, "wall-clock accelerator occupancy per inference as a fraction of its simulated latency (0 = off)")
		cont      = flag.Bool("continuity", false, "reuse each session's last CIIA plan for guidance-less frames")
		shed      = flag.String("shed-policy", "reject", "admission policy at a full queue: reject or latest-wins")
		maxBatch  = flag.Int("max-batch", 1, "max compatible frames per accelerator launch (1 = single dequeue)")
		batchWin  = flag.Duration("batch-window", 0, "how long an underfull batch waits for compatible frames (needs -max-batch > 1)")
		keyframe  = flag.Int("keyframe-interval", 1, "force a full-backbone keyframe every N frames per session; N > 1 enables the skip-compute feature cache")
		statsSecs = flag.Int("stats", 10, "stats print interval in seconds (0 = off)")
		peers     peerList
	)
	flag.Var(&peers, "fleet-peer", "address of a sibling replica, repeatable; advertised to clients in resume acks so they can fail over (the server itself never dials peers)")
	flag.Parse()

	var kind segmodel.Kind
	switch *modelName {
	case "mask-rcnn":
		kind = segmodel.MaskRCNN
	case "yolact":
		kind = segmodel.YOLACT
	case "yolov3":
		kind = segmodel.YOLOv3
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	var dev device.Profile
	switch *devName {
	case "tx2":
		dev = device.JetsonTX2
	case "xavier":
		dev = device.JetsonXavier
	default:
		return fmt.Errorf("unknown device %q", *devName)
	}

	opts := []transport.ServerOption{
		transport.WithInferScale(dev.InferScale),
		transport.WithLogger(log.Printf),
		transport.WithAccelerators(*accels),
	}
	if *queue > 0 {
		opts = append(opts, transport.WithQueueDepth(*queue))
	}
	if *occupancy > 0 {
		opts = append(opts, transport.WithWallOccupancy(*occupancy))
	}
	if *cont {
		opts = append(opts, transport.WithGuidanceContinuity())
	}
	if *shed != "reject" {
		admission, err := edge.AdmissionPolicyByName(*shed)
		if err != nil {
			return err
		}
		opts = append(opts, transport.WithAdmissionPolicy(admission))
	}
	if *maxBatch > 1 {
		opts = append(opts, transport.WithDequeuePolicy(edge.GatherBatch{Max: *maxBatch, GatherWindow: *batchWin}))
	} else if *batchWin > 0 {
		return fmt.Errorf("-batch-window needs -max-batch > 1")
	}
	if *keyframe > 1 {
		opts = append(opts, transport.WithKeyframePolicy(segmodel.KeyframePolicy{Interval: *keyframe}))
	} else if *keyframe < 1 {
		return fmt.Errorf("-keyframe-interval must be >= 1")
	}
	if len(peers) > 0 {
		opts = append(opts, transport.WithFleetPeers(peers))
	}
	srv := transport.NewServer(segmodel.New(kind), opts...)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("edgeIS edge server: %s backend on %s (device %s, %d accelerator(s))",
		kind, bound, dev.Name, *accels)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsSecs > 0 {
		ticker := time.NewTicker(time.Duration(*statsSecs) * time.Second) //edgeis:wallclock operator stats interval on a live server

		defer ticker.Stop()
		go func() {
			for range ticker.C {
				printStats(srv)
			}
		}()
	}

	<-stop
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	printStats(srv)
	return nil
}

// printStats logs the server snapshot and the per-session serving table,
// ID-sorted with per-session reject counts (transport.FormatServerStats,
// pinned by its golden test).
func printStats(srv *transport.Server) {
	log.Printf("%s", transport.FormatServerStats(srv.Stats(), srv.SessionStats()))
}
