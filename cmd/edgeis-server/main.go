// Command edgeis-server runs the edge node: a TCP server that accepts
// offloaded frames from edgeis-client instances, runs the (optionally
// CIIA-guided) segmentation backend, and streams contour-encoded results
// back. The deployable counterpart of the paper's Jetson TX2 server.
//
// Usage:
//
//	edgeis-server [-addr :7465] [-model mask-rcnn|yolact|yolov3] [-device tx2|xavier]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeis/internal/device"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7465", "listen address")
		modelName = flag.String("model", "mask-rcnn", "backend model: mask-rcnn, yolact or yolov3")
		devName   = flag.String("device", "tx2", "edge device profile: tx2 or xavier")
		statsSecs = flag.Int("stats", 10, "stats print interval in seconds (0 = off)")
	)
	flag.Parse()

	var kind segmodel.Kind
	switch *modelName {
	case "mask-rcnn":
		kind = segmodel.MaskRCNN
	case "yolact":
		kind = segmodel.YOLACT
	case "yolov3":
		kind = segmodel.YOLOv3
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	var dev device.Profile
	switch *devName {
	case "tx2":
		dev = device.JetsonTX2
	case "xavier":
		dev = device.JetsonXavier
	default:
		return fmt.Errorf("unknown device %q", *devName)
	}

	srv := transport.NewServer(segmodel.New(kind),
		transport.WithInferScale(dev.InferScale),
		transport.WithLogger(log.Printf),
	)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("edgeIS edge server: %s backend on %s (device %s)", kind, bound, dev.Name)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsSecs > 0 {
		ticker := time.NewTicker(time.Duration(*statsSecs) * time.Second)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				served, mean := srv.Stats()
				log.Printf("served %d frames, mean simulated inference %.1f ms", served, mean)
			}
		}()
	}

	<-stop
	log.Printf("shutting down")
	return srv.Close()
}
