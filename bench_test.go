package edgeis

import (
	"testing"

	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/experiments"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/segmodel"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (Section VI). Each reports the headline quantities through
// b.ReportMetric so `go test -bench` output doubles as the reproduction
// record; cmd/edgeis-bench prints the full paper-vs-measured tables.
//
// Workloads are sized so the full suite completes in minutes; pass
// DefaultClipFrames-scale inputs through cmd/edgeis-bench for longer runs.

const benchSeed = 42

// benchFrames keeps per-iteration cost manageable; experiments interpret 0
// as their default, so an explicit small value is passed everywhere.
const benchFrames = 150

// BenchmarkFig2bModelTradeoff regenerates the motivation study: per-model
// IoU and inference latency on the reference edge device.
func BenchmarkFig2bModelTradeoff(b *testing.B) {
	cam := experiments.EvalCamera()
	clip := dataset.KITTI(benchSeed, 30)[0]
	frames := clip.World.RenderSequence(cam, clip.Traj, 10)
	for _, kind := range []segmodel.Kind{segmodel.YOLOv3, segmodel.MaskRCNN, segmodel.YOLACT} {
		b.Run(kind.String(), func(b *testing.B) {
			model := segmodel.New(kind)
			var msSum, iouSum float64
			var n int
			for i := 0; i < b.N; i++ {
				f := frames[i%len(frames)]
				in := segmodel.Input{
					Width: cam.Width, Height: cam.Height, Seed: int64(i),
				}
				for _, gt := range f.Objects {
					in.Objects = append(in.Objects, segmodel.ObjectTruth{
						ObjectID: gt.ObjectID, Label: int(gt.Class),
						Visible: gt.Visible, Box: gt.Box,
					})
				}
				res := model.Run(in, nil)
				msSum += res.TotalMs()
				for _, d := range res.Detections {
					iouSum += d.TrueIoU
					n++
				}
			}
			b.ReportMetric(msSum/float64(b.N), "simMs/frame")
			if n > 0 {
				b.ReportMetric(iouSum/float64(n), "IoU")
			}
		})
	}
}

// benchSystem runs one system over a clip set and reports the Fig. 9
// metrics.
func benchSystem(b *testing.B, kind experiments.SystemKind, clips []dataset.Clip, medium netsim.Medium) {
	b.Helper()
	var iou, falseRate float64
	for i := 0; i < b.N; i++ {
		out := experiments.RunClips(kind, clips, medium, device.IPhone11, benchSeed+int64(i))
		iou = out.Acc.MeanIoU()
		falseRate = out.Acc.FalseRate(metrics.StrictThreshold)
	}
	b.ReportMetric(iou, "IoU")
	b.ReportMetric(100*falseRate, "false%")
}

// BenchmarkFig9Overall regenerates the overall comparison across datasets.
func BenchmarkFig9Overall(b *testing.B) {
	clips := dataset.All(benchSeed, benchFrames)
	for _, kind := range []experiments.SystemKind{
		experiments.SysEdgeIS, experiments.SysEAAR, experiments.SysEdgeDuet,
		experiments.SysBestEffort, experiments.SysMobileOnly,
	} {
		b.Run(kind.String(), func(b *testing.B) { benchSystem(b, kind, clips, netsim.WiFi5) })
	}
}

// BenchmarkFig10Networks regenerates the network-sensitivity study.
func BenchmarkFig10Networks(b *testing.B) {
	clips := dataset.KITTI(benchSeed, benchFrames)
	for _, medium := range []netsim.Medium{netsim.WiFi24, netsim.WiFi5} {
		b.Run(medium.String(), func(b *testing.B) {
			benchSystem(b, experiments.SysEdgeIS, clips, medium)
		})
	}
}

// BenchmarkFig11Latency regenerates the mobile-side latency comparison.
func BenchmarkFig11Latency(b *testing.B) {
	clips := dataset.KITTI(benchSeed, benchFrames)
	for _, kind := range []experiments.SystemKind{
		experiments.SysEdgeIS, experiments.SysEAAR, experiments.SysEdgeDuet,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				out := experiments.RunClips(kind, clips, netsim.WiFi5, device.IPhone11, benchSeed)
				lat = out.Acc.MeanLatencyMs()
			}
			b.ReportMetric(lat, "mobileMs/frame")
		})
	}
}

// BenchmarkFig12Motion regenerates the camera-motion robustness study.
func BenchmarkFig12Motion(b *testing.B) {
	for _, clip := range dataset.GaitClips(benchSeed, benchFrames) {
		b.Run(clip.Name, func(b *testing.B) {
			benchSystem(b, experiments.SysEdgeIS, []dataset.Clip{clip}, netsim.WiFi5)
		})
	}
}

// BenchmarkFig13Complexity regenerates the scene-complexity study.
func BenchmarkFig13Complexity(b *testing.B) {
	for _, clip := range dataset.ComplexityClips(benchSeed, benchFrames) {
		b.Run(clip.Name, func(b *testing.B) {
			benchSystem(b, experiments.SysEdgeIS, []dataset.Clip{clip}, netsim.WiFi5)
		})
	}
}

// BenchmarkFig14Acceleration regenerates the CIIA latency ablation.
func BenchmarkFig14Acceleration(b *testing.B) {
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14(benchSeed)
	}
	_ = r
}

// BenchmarkFig15Resource regenerates the mobile resource study.
func BenchmarkFig15Resource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig15(benchSeed, 600)
	}
}

// BenchmarkFig16Ablation regenerates the per-module ablation.
func BenchmarkFig16Ablation(b *testing.B) {
	clips := dataset.KITTI(benchSeed, benchFrames)
	for _, kind := range []experiments.SystemKind{
		experiments.SysBestEffort, experiments.SysBaseCFRS, experiments.SysBaseCIIA,
		experiments.SysEdgeISMAMTOnly, experiments.SysEdgeIS,
	} {
		b.Run(kind.String(), func(b *testing.B) { benchSystem(b, kind, clips, netsim.WiFi5) })
	}
}

// BenchmarkFig17FieldStudy regenerates the oil-field case study.
func BenchmarkFig17FieldStudy(b *testing.B) {
	clip := dataset.FieldClip(benchSeed, benchFrames)
	for _, medium := range []netsim.Medium{netsim.WiFi5, netsim.LTE} {
		b.Run(medium.String(), func(b *testing.B) {
			benchSystem(b, experiments.SysEdgeIS, []dataset.Clip{clip}, medium)
		})
	}
}

// BenchmarkPowerConsumption regenerates the battery-drain study.
func BenchmarkPowerConsumption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PowerStudy(benchSeed, 0)
	}
}

// BenchmarkAblationContourK regenerates the contour-depth k sweep.
func BenchmarkAblationContourK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationContourK(benchSeed, 120)
	}
}

// BenchmarkAblationOffloadThreshold regenerates the CFRS threshold sweep.
func BenchmarkAblationOffloadThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationOffloadThreshold(benchSeed, 120)
	}
}
