package mask

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgeis/internal/geom"
)

// rect builds a mask with a filled rectangle (exclusive max bounds).
func rect(w, h, x0, y0, x1, y1 int) *Bitmask {
	m := New(w, h)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y)
		}
	}
	return m
}

func TestAtSetOutOfBounds(t *testing.T) {
	m := New(4, 4)
	m.Set(-1, 0)
	m.Set(0, -1)
	m.Set(4, 0)
	m.Set(0, 4)
	if !m.Empty() {
		t.Error("out-of-bounds Set modified the mask")
	}
	if m.At(-1, 0) || m.At(4, 4) {
		t.Error("out-of-bounds At returned true")
	}
}

func TestAreaAndEmpty(t *testing.T) {
	m := rect(10, 10, 2, 3, 5, 7)
	if got, want := m.Area(), 3*4; got != want {
		t.Errorf("Area = %d, want %d", got, want)
	}
	if m.Empty() {
		t.Error("non-empty mask reported empty")
	}
	if !New(3, 3).Empty() {
		t.Error("fresh mask not empty")
	}
}

func TestSetOperations(t *testing.T) {
	a := rect(10, 10, 0, 0, 5, 5)
	b := rect(10, 10, 3, 3, 8, 8)

	u := a.Clone()
	u.Union(b)
	if got, want := u.Area(), 25+25-4; got != want {
		t.Errorf("union area = %d, want %d", got, want)
	}

	i := a.Clone()
	i.Intersect(b)
	if got, want := i.Area(), 4; got != want {
		t.Errorf("intersect area = %d, want %d", got, want)
	}

	s := a.Clone()
	s.Subtract(b)
	if got, want := s.Area(), 25-4; got != want {
		t.Errorf("subtract area = %d, want %d", got, want)
	}
}

func TestIoUKnown(t *testing.T) {
	tests := []struct {
		name string
		a, b *Bitmask
		want float64
	}{
		{"identical", rect(10, 10, 0, 0, 5, 5), rect(10, 10, 0, 0, 5, 5), 1},
		{"disjoint", rect(10, 10, 0, 0, 3, 3), rect(10, 10, 5, 5, 8, 8), 0},
		{"half", rect(10, 10, 0, 0, 4, 4), rect(10, 10, 0, 0, 4, 2), 0.5},
		{"both empty", New(10, 10), New(10, 10), 1},
		{"one empty", rect(10, 10, 0, 0, 2, 2), New(10, 10), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IoU(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("IoU = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIoUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randMask := func() *Bitmask {
		m := New(16, 16)
		for i := 0; i < 16*16; i++ {
			if rng.Float64() < 0.3 {
				m.Set(i%16, i/16)
			}
		}
		return m
	}
	for trial := 0; trial < 100; trial++ {
		a, b := randMask(), randMask()
		ab, ba := IoU(a, b), IoU(b, a)
		if ab != ba {
			t.Fatal("IoU not symmetric")
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("IoU out of range: %v", ab)
		}
		if IoU(a, a) != 1 {
			t.Fatal("IoU(a, a) != 1")
		}
	}
}

func TestBoundingBox(t *testing.T) {
	m := rect(20, 20, 3, 4, 10, 12)
	b := m.BoundingBox()
	want := Box{MinX: 3, MinY: 4, MaxX: 10, MaxY: 12}
	if b != want {
		t.Errorf("BoundingBox = %+v, want %+v", b, want)
	}
	if !New(5, 5).BoundingBox().Empty() {
		t.Error("empty mask should give empty box")
	}
}

func TestBoxOperations(t *testing.T) {
	a := Box{0, 0, 10, 10}
	b := Box{5, 5, 15, 15}
	inter := a.Intersect(b)
	if got, want := inter.Area(), 25; got != want {
		t.Errorf("intersect area = %d, want %d", got, want)
	}
	if got := a.IoU(b); math.Abs(got-25.0/175.0) > 1e-12 {
		t.Errorf("box IoU = %v", got)
	}
	u := a.UnionBox(b)
	if u != (Box{0, 0, 15, 15}) {
		t.Errorf("union box = %+v", u)
	}
	if got := a.IoU(Box{20, 20, 30, 30}); got != 0 {
		t.Errorf("disjoint IoU = %v, want 0", got)
	}
}

func TestBoxExpand(t *testing.T) {
	b := Box{5, 5, 10, 10}
	e := b.Expand(3, 12, 12)
	if e != (Box{2, 2, 12, 12}) {
		t.Errorf("Expand = %+v", e)
	}
	if !(Box{}).Expand(3, 100, 100).Empty() {
		t.Error("expanding empty box should stay empty")
	}
}

func TestBoxContains(t *testing.T) {
	b := Box{2, 2, 5, 5}
	if !b.Contains(2, 2) || !b.Contains(4, 4) {
		t.Error("Contains false negative")
	}
	if b.Contains(5, 5) || b.Contains(1, 3) {
		t.Error("Contains false positive")
	}
}

func TestTranslate(t *testing.T) {
	m := rect(10, 10, 2, 2, 5, 5)
	s := m.Translate(3, 3)
	if got := s.BoundingBox(); got != (Box{5, 5, 8, 8}) {
		t.Errorf("translated box = %+v", got)
	}
	// Translation off the edge drops pixels.
	far := m.Translate(8, 8)
	if got := far.Area(); got != 0 {
		t.Errorf("expected all pixels dropped, area = %d", got)
	}
	// IoU with original drops as translation grows — the mechanism that
	// makes motion-vector trackers degrade under parallax.
	if IoU(m, m.Translate(1, 0)) <= IoU(m, m.Translate(3, 0)) {
		t.Error("IoU should decrease with larger translation")
	}
}

func TestErodeDilate(t *testing.T) {
	m := rect(20, 20, 5, 5, 15, 15)
	e := m.Erode(1)
	if got, want := e.Area(), 8*8; got != want {
		t.Errorf("eroded area = %d, want %d", got, want)
	}
	d := m.Dilate(1)
	// 4-neighbour dilation grows a square by a plus-shaped ring.
	if d.Area() <= m.Area() {
		t.Error("dilation did not grow the mask")
	}
	// Erode then dilate is not larger than the original for convex shapes.
	ed := m.Erode(1).Dilate(1)
	diff := ed.Clone()
	diff.Subtract(m)
	if diff.Area() != 0 {
		t.Error("open(mask) exceeded original mask")
	}
}

func TestCenterOfMass(t *testing.T) {
	m := rect(10, 10, 2, 2, 6, 6) // center should be (3.5, 3.5)
	c, ok := m.CenterOfMass()
	if !ok {
		t.Fatal("empty")
	}
	if math.Abs(c.X-3.5) > 1e-12 || math.Abs(c.Y-3.5) > 1e-12 {
		t.Errorf("center = %+v", c)
	}
	if _, ok := New(5, 5).CenterOfMass(); ok {
		t.Error("empty mask should report !ok")
	}
}

func TestBoundaryNoiseTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := rect(64, 64, 16, 16, 48, 48)
	for _, target := range []float64{1.0, 0.95, 0.85, 0.7} {
		noisy := m.BoundaryNoise(target, rng.Float64)
		got := IoU(m, noisy)
		if target >= 1 {
			if got != 1 {
				t.Errorf("target 1.0: IoU = %v", got)
			}
			continue
		}
		// Result should be near (at or slightly below) the target.
		if got > target+0.02 && got != 1 {
			t.Errorf("target %v: IoU %v too high", target, got)
		}
		if got < target-0.25 {
			t.Errorf("target %v: IoU %v overshot far below", target, got)
		}
	}
}

func TestHausdorffProxy(t *testing.T) {
	a := rect(20, 20, 5, 5, 10, 10)
	if got := HausdorffProxy(a, a); got != 0 {
		t.Errorf("self proxy = %v", got)
	}
	b := a.Translate(4, 0)
	if got := HausdorffProxy(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("proxy = %v, want 2 (mean of 4,0,4,0)", got)
	}
	if !math.IsInf(HausdorffProxy(a, New(20, 20)), 1) {
		t.Error("empty-vs-nonempty should be +Inf")
	}
	if HausdorffProxy(New(20, 20), New(20, 20)) != 0 {
		t.Error("empty-vs-empty should be 0")
	}
}

func TestExtractContoursRectangle(t *testing.T) {
	m := rect(20, 20, 5, 5, 10, 10)
	cs := ExtractContours(m, 1)
	if len(cs) != 1 {
		t.Fatalf("got %d contours, want 1", len(cs))
	}
	// Perimeter of a 5x5 square boundary is 16 pixels.
	if got := len(cs[0]); got != 16 {
		t.Errorf("contour length = %d, want 16", got)
	}
	// All contour points are on the mask and on its boundary.
	for _, p := range cs[0] {
		x, y := int(p.X), int(p.Y)
		if !m.At(x, y) {
			t.Fatalf("contour point (%d,%d) off mask", x, y)
		}
		interior := m.At(x-1, y) && m.At(x+1, y) && m.At(x, y-1) && m.At(x, y+1)
		if interior {
			t.Fatalf("contour point (%d,%d) is interior", x, y)
		}
	}
}

func TestExtractContoursMultipleComponents(t *testing.T) {
	m := rect(30, 30, 2, 2, 8, 8)
	m2 := rect(30, 30, 15, 15, 25, 25)
	m.Union(m2)
	cs := ExtractContours(m, 1)
	if len(cs) != 2 {
		t.Fatalf("got %d contours, want 2", len(cs))
	}
}

func TestExtractContoursMinArea(t *testing.T) {
	m := rect(30, 30, 2, 2, 4, 4) // area 4
	m.Set(20, 20)                 // area 1 speck
	cs := ExtractContours(m, 2)
	if len(cs) != 1 {
		t.Fatalf("minArea filter failed: got %d contours", len(cs))
	}
}

func TestExtractContoursSinglePixel(t *testing.T) {
	m := New(10, 10)
	m.Set(5, 5)
	cs := ExtractContours(m, 1)
	if len(cs) != 1 || len(cs[0]) != 1 {
		t.Fatalf("single pixel: %d contours", len(cs))
	}
}

func TestFillPolygonSquare(t *testing.T) {
	// A square polygon covering [2,8) x [2,8).
	poly := []geom.Vec2{geom.V2(2, 2), geom.V2(8, 2), geom.V2(8, 8), geom.V2(2, 8)}
	m := FillPolygon(poly, 12, 12)
	// Interior pixel set, far exterior unset.
	if !m.At(5, 5) {
		t.Error("interior pixel not filled")
	}
	if m.At(10, 10) {
		t.Error("exterior pixel filled")
	}
}

func TestContourFillRoundTrip(t *testing.T) {
	// Extracting a contour and re-filling it should approximately recover
	// the mask — the invariant mask transfer relies on.
	shapes := []*Bitmask{
		rect(40, 40, 10, 10, 30, 30),
		rect(40, 40, 5, 15, 35, 25),
	}
	// An L-shape.
	l := rect(40, 40, 5, 5, 15, 35)
	l.Union(rect(40, 40, 5, 25, 35, 35))
	shapes = append(shapes, l)

	for i, m := range shapes {
		cs := ExtractContours(m, 1)
		if len(cs) != 1 {
			t.Fatalf("shape %d: %d contours", i, len(cs))
		}
		rec := FillPolygon(cs[0], 40, 40)
		if got := IoU(m, rec); got < 0.9 {
			t.Errorf("shape %d: round-trip IoU = %v, want >= 0.9", i, got)
		}
	}
}

func TestSimplifyContour(t *testing.T) {
	m := rect(40, 40, 5, 5, 35, 35)
	c := ExtractContours(m, 1)[0]
	s := SimplifyContour(c, 16)
	if len(s) != 16 {
		t.Fatalf("simplified length = %d", len(s))
	}
	// Refilling the simplified contour still approximates the mask.
	rec := FillPolygon(s, 40, 40)
	if got := IoU(m, rec); got < 0.85 {
		t.Errorf("simplified round-trip IoU = %v", got)
	}
	// No-op when already small.
	if got := SimplifyContour(c, len(c)+5); len(got) != len(c) {
		t.Error("simplify should be a copy when under budget")
	}
}

func TestContourPerimeter(t *testing.T) {
	c := Contour{geom.V2(0, 0), geom.V2(3, 0), geom.V2(3, 4)}
	// 3 + 4 + 5 (closing hypotenuse).
	if got := ContourPerimeter(c); math.Abs(got-12) > 1e-12 {
		t.Errorf("perimeter = %v, want 12", got)
	}
	if ContourPerimeter(Contour{geom.V2(1, 1)}) != 0 {
		t.Error("single point perimeter should be 0")
	}
}

func TestFillPolygonDegenerate(t *testing.T) {
	m := FillPolygon([]geom.Vec2{geom.V2(3, 3), geom.V2(5, 5)}, 10, 10)
	if m.Area() != 2 {
		t.Errorf("degenerate polygon area = %d, want 2 stamped points", m.Area())
	}
}

func TestTranslateQuickProperty(t *testing.T) {
	// Translating by (dx,dy) then (-dx,-dy) loses only pixels that left the
	// frame; the result is always a subset of the original.
	f := func(dx, dy int8) bool {
		m := rect(16, 16, 4, 4, 12, 12)
		back := m.Translate(int(dx), int(dy)).Translate(-int(dx), -int(dy))
		diff := back.Clone()
		diff.Subtract(m)
		return diff.Area() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestCropPasteRoundTrip(t *testing.T) {
	m := rect(40, 40, 10, 12, 25, 30)
	b := m.BoundingBox()
	crop := m.Crop(b)
	if crop.Width != b.Width() || crop.Height != b.Height() {
		t.Fatalf("crop size %dx%d", crop.Width, crop.Height)
	}
	if crop.Area() != m.Area() {
		t.Errorf("crop area %d != %d", crop.Area(), m.Area())
	}
	back := New(40, 40)
	back.Paste(crop, b.MinX, b.MinY)
	if IoU(m, back) != 1 {
		t.Error("crop/paste round trip lost pixels")
	}
}

func TestCropClipsToBounds(t *testing.T) {
	m := rect(20, 20, 0, 0, 5, 5)
	crop := m.Crop(Box{MinX: -10, MinY: -10, MaxX: 30, MaxY: 30})
	if crop.Width != 20 || crop.Height != 20 {
		t.Errorf("clipped crop = %dx%d", crop.Width, crop.Height)
	}
	empty := m.Crop(Box{MinX: 100, MinY: 100, MaxX: 120, MaxY: 120})
	if empty.Area() != 0 {
		t.Error("out-of-bounds crop should be empty")
	}
}

func TestPasteClips(t *testing.T) {
	m := New(10, 10)
	src := rect(6, 6, 0, 0, 6, 6)
	m.Paste(src, 7, 7) // mostly off the edge
	if got := m.Area(); got != 9 {
		t.Errorf("clipped paste area = %d, want 9", got)
	}
	m2 := New(10, 10)
	m2.Paste(src, -3, -3)
	if got := m2.Area(); got != 9 {
		t.Errorf("negative-offset paste area = %d, want 9", got)
	}
}

func TestBoundaryNoisePreservesFrame(t *testing.T) {
	// The noisy mask must stay the same frame size and keep roughly the
	// same centroid (the distortion is local to the object).
	m := rect(64, 64, 20, 20, 44, 44)
	noisy := m.BoundaryNoise(0.85, func() float64 { return 0.4 })
	if noisy.Width != 64 || noisy.Height != 64 {
		t.Fatal("frame size changed")
	}
	c0, _ := m.CenterOfMass()
	c1, ok := noisy.CenterOfMass()
	if !ok || c0.DistTo(c1) > 6 {
		t.Errorf("centroid moved %v", c0.DistTo(c1))
	}
}
