package mask

import (
	"math/rand"
	"testing"
)

func TestPoolGetReturnsZeroedMask(t *testing.T) {
	p := NewPool()
	m := p.Get(70, 10)
	for x := 0; x < 70; x += 7 {
		m.Set(x, x%10)
	}
	p.Put(m)
	got := p.Get(70, 10)
	if got != m {
		t.Fatal("pool did not reuse the returned mask")
	}
	if !got.Empty() {
		t.Fatal("pooled mask not zeroed on Get")
	}
}

func TestPoolReshapesAcrossSizes(t *testing.T) {
	p := NewPool()
	big := p.Get(320, 240)
	p.Put(big)
	small := p.Get(65, 5)
	if small != big {
		t.Fatal("pool did not reuse larger capacity for smaller mask")
	}
	if small.Width != 65 || small.Height != 5 {
		t.Fatalf("reshaped to %dx%d", small.Width, small.Height)
	}
	small.Set(64, 4)
	if !small.At(64, 4) || small.Area() != 1 {
		t.Fatal("reshaped mask broken")
	}
	// Too-small capacity must allocate fresh rather than hand back a short
	// buffer.
	p.Put(small)
	huge := p.Get(640, 480)
	if huge == small {
		t.Fatal("pool reused undersized buffer")
	}
}

func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	m := p.Get(33, 3)
	if m == nil || m.Width != 33 {
		t.Fatal("nil pool Get failed")
	}
	p.Put(m) // must not panic
	if p.Len() != 0 {
		t.Fatal("nil pool Len != 0")
	}
}

func TestPoolIgnoresNilMasks(t *testing.T) {
	p := NewPool()
	p.Put(nil, New(4, 4), nil)
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestPoolBoundsFreeList(t *testing.T) {
	p := NewPool()
	for i := 0; i < maxPoolFree+50; i++ {
		p.Put(New(8, 8))
	}
	if p.Len() != maxPoolFree {
		t.Fatalf("Len = %d, want %d", p.Len(), maxPoolFree)
	}
}

// TestPooledKernelChainAllocatesNothing pins the steady-state property the
// pool exists for: a tracking-style chain of kernel calls reusing pooled
// masks performs zero mask allocations once warm.
func TestPooledKernelChainAllocatesNothing(t *testing.T) {
	p := NewPool()
	rng := rand.New(rand.NewSource(5))
	src := New(320, 240)
	for i := 0; i < 2000; i++ {
		src.Set(rng.Intn(320), rng.Intn(240))
	}
	step := func() {
		occ := p.Get(320, 240)
		m := p.Get(320, 240)
		m.CopyFrom(src)
		m.Subtract(occ)
		occ.Union(src)
		tr := p.Get(320, 240)
		m.TranslateInto(tr, 3, -2)
		sc := p.Get(320, 240)
		tr.ScaleAroundInto(sc, 160, 120, 1.1)
		p.Put(occ, m, tr, sc)
	}
	step() // warm the pool
	before := Allocs()
	for i := 0; i < 10; i++ {
		step()
	}
	if got := Allocs() - before; got != 0 {
		t.Fatalf("pooled kernel chain performed %d mask allocations, want 0", got)
	}
}

// TestBoundaryNoisePooledScratchReuse verifies only the escaping result
// allocates once the pool is warm, and that pooled and unpooled runs agree.
func TestBoundaryNoisePooledScratchReuse(t *testing.T) {
	p := NewPool()
	m := New(320, 240)
	for y := 60; y < 180; y++ {
		m.setRowSpan(y, 80, 240)
	}
	run := func(pool *Pool) *Bitmask {
		rng := rand.New(rand.NewSource(77))
		return m.BoundaryNoisePooled(0.7, rng.Float64, pool)
	}
	want := run(nil)
	run(p) // warm
	before := Allocs()
	got := run(p)
	if d := Allocs() - before; d != 1 {
		t.Fatalf("warm BoundaryNoisePooled performed %d allocations, want 1 (the result)", d)
	}
	if IoU(got, want) != 1 {
		t.Fatal("pooled BoundaryNoise differs from unpooled")
	}
}
