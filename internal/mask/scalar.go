package mask

import (
	"math"
	"sort"

	"edgeis/internal/geom"
)

// Scalar is the byte-per-pixel mask representation this package used before
// the word-packed rewrite, retained verbatim as the reference
// implementation. It exists so differential tests (and the kernel benchmark
// harness) can pin every packed kernel byte-identical to the original
// per-pixel loops — including rng draw order in ScalarBoundaryNoise — and
// so the speedup numbers in BENCH_kernels.json always compare against the
// real predecessor rather than a strawman. It is not used on any production
// path.
type Scalar struct {
	Width, Height int
	Pix           []uint8
}

// NewScalar returns an all-zero scalar mask of the given size.
func NewScalar(width, height int) *Scalar {
	return &Scalar{Width: width, Height: height, Pix: make([]uint8, width*height)}
}

// ToScalar unpacks a packed mask into the scalar representation.
func (m *Bitmask) ToScalar() *Scalar {
	return &Scalar{Width: m.Width, Height: m.Height, Pix: m.Bytes()}
}

// Packed packs a scalar mask into the production representation.
func (s *Scalar) Packed() *Bitmask { return FromBytes(s.Width, s.Height, s.Pix) }

// Clone returns a deep copy of s.
func (s *Scalar) Clone() *Scalar {
	out := NewScalar(s.Width, s.Height)
	copy(out.Pix, s.Pix)
	return out
}

// At reports whether pixel (x, y) is set. Out-of-bounds reads return false.
func (s *Scalar) At(x, y int) bool {
	if x < 0 || y < 0 || x >= s.Width || y >= s.Height {
		return false
	}
	return s.Pix[y*s.Width+x] != 0
}

// Set sets pixel (x, y); out-of-bounds writes are ignored.
func (s *Scalar) Set(x, y int) {
	if x < 0 || y < 0 || x >= s.Width || y >= s.Height {
		return
	}
	s.Pix[y*s.Width+x] = 1
}

// Clear zeroes pixel (x, y); out-of-bounds writes are ignored.
func (s *Scalar) Clear(x, y int) {
	if x < 0 || y < 0 || x >= s.Width || y >= s.Height {
		return
	}
	s.Pix[y*s.Width+x] = 0
}

// Area returns the number of set pixels.
func (s *Scalar) Area() int {
	n := 0
	for _, p := range s.Pix {
		if p != 0 {
			n++
		}
	}
	return n
}

// Union ORs other into s in place. Sizes must match.
func (s *Scalar) Union(other *Scalar) {
	for i, p := range other.Pix {
		if p != 0 {
			s.Pix[i] = 1
		}
	}
}

// Intersect ANDs other into s in place. Sizes must match.
func (s *Scalar) Intersect(other *Scalar) {
	for i := range s.Pix {
		s.Pix[i] &= other.Pix[i]
	}
}

// Subtract clears every pixel of s that is set in other. Sizes must match.
func (s *Scalar) Subtract(other *Scalar) {
	for i, p := range other.Pix {
		if p != 0 {
			s.Pix[i] = 0
		}
	}
}

// ScalarIoU is the per-pixel reference for IoU.
func ScalarIoU(a, b *Scalar) float64 {
	inter, union := 0, 0
	for i := range a.Pix {
		av, bv := a.Pix[i] != 0, b.Pix[i] != 0
		if av && bv {
			inter++
		}
		if av || bv {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// BoundingBox returns the tight bounding box of the set pixels.
func (s *Scalar) BoundingBox() Box {
	b := Box{MinX: s.Width, MinY: s.Height, MaxX: 0, MaxY: 0}
	found := false
	for y := 0; y < s.Height; y++ {
		row := s.Pix[y*s.Width : (y+1)*s.Width]
		for x, p := range row {
			if p == 0 {
				continue
			}
			found = true
			if x < b.MinX {
				b.MinX = x
			}
			if x+1 > b.MaxX {
				b.MaxX = x + 1
			}
			if y < b.MinY {
				b.MinY = y
			}
			if y+1 > b.MaxY {
				b.MaxY = y + 1
			}
		}
	}
	if !found {
		return Box{}
	}
	return b
}

// CenterOfMass returns the centroid of the set pixels, or ok=false for an
// empty mask.
func (s *Scalar) CenterOfMass() (geom.Vec2, bool) {
	var sx, sy float64
	n := 0
	for y := 0; y < s.Height; y++ {
		for x := 0; x < s.Width; x++ {
			if s.Pix[y*s.Width+x] != 0 {
				sx += float64(x)
				sy += float64(y)
				n++
			}
		}
	}
	if n == 0 {
		return geom.Vec2{}, false
	}
	return geom.V2(sx/float64(n), sy/float64(n)), true
}

// Translate returns a copy of s shifted by (dx, dy); pixels shifted outside
// the image are dropped.
func (s *Scalar) Translate(dx, dy int) *Scalar {
	out := NewScalar(s.Width, s.Height)
	for y := 0; y < s.Height; y++ {
		ny := y + dy
		if ny < 0 || ny >= s.Height {
			continue
		}
		for x := 0; x < s.Width; x++ {
			if s.Pix[y*s.Width+x] == 0 {
				continue
			}
			nx := x + dx
			if nx < 0 || nx >= s.Width {
				continue
			}
			out.Pix[ny*s.Width+nx] = 1
		}
	}
	return out
}

// Erode removes set pixels that have any unset 4-neighbour, radius times.
func (s *Scalar) Erode(radius int) *Scalar {
	cur := s.Clone()
	for r := 0; r < radius; r++ {
		next := cur.Clone()
		for y := 0; y < cur.Height; y++ {
			for x := 0; x < cur.Width; x++ {
				if !cur.At(x, y) {
					continue
				}
				if !cur.At(x-1, y) || !cur.At(x+1, y) || !cur.At(x, y-1) || !cur.At(x, y+1) {
					next.Clear(x, y)
				}
			}
		}
		cur = next
	}
	return cur
}

// Dilate sets unset pixels that have any set 4-neighbour, radius times.
func (s *Scalar) Dilate(radius int) *Scalar {
	cur := s.Clone()
	for r := 0; r < radius; r++ {
		next := cur.Clone()
		for y := 0; y < cur.Height; y++ {
			for x := 0; x < cur.Width; x++ {
				if cur.At(x, y) {
					continue
				}
				if cur.At(x-1, y) || cur.At(x+1, y) || cur.At(x, y-1) || cur.At(x, y+1) {
					next.Set(x, y)
				}
			}
		}
		cur = next
	}
	return cur
}

// Crop returns the sub-mask covered by the box (clipped to bounds).
func (s *Scalar) Crop(b Box) *Scalar {
	b = b.Intersect(Box{MinX: 0, MinY: 0, MaxX: s.Width, MaxY: s.Height})
	if b.Empty() {
		return NewScalar(1, 1)
	}
	out := NewScalar(b.Width(), b.Height())
	for y := 0; y < out.Height; y++ {
		srcRow := s.Pix[(b.MinY+y)*s.Width+b.MinX:]
		copy(out.Pix[y*out.Width:(y+1)*out.Width], srcRow[:out.Width])
	}
	return out
}

// Paste copies src into s with its top-left corner at (x, y); out-of-bounds
// parts are clipped.
func (s *Scalar) Paste(src *Scalar, x, y int) {
	for sy := 0; sy < src.Height; sy++ {
		dy := y + sy
		if dy < 0 || dy >= s.Height {
			continue
		}
		for sx := 0; sx < src.Width; sx++ {
			dx := x + sx
			if dx < 0 || dx >= s.Width {
				continue
			}
			s.Pix[dy*s.Width+dx] = src.Pix[sy*src.Width+sx]
		}
	}
}

// ScaleAround returns a copy of s scaled by the factor about the given
// center using inverse nearest-neighbour mapping.
func (s *Scalar) ScaleAround(cx, cy, scale float64) *Scalar {
	out := NewScalar(s.Width, s.Height)
	if scale <= 0 {
		return out
	}
	inv := 1 / scale
	for y := 0; y < s.Height; y++ {
		for x := 0; x < s.Width; x++ {
			sx := cx + (float64(x)-cx)*inv
			sy := cy + (float64(y)-cy)*inv
			if s.At(int(math.Round(sx)), int(math.Round(sy))) {
				out.Pix[y*s.Width+x] = 1
			}
		}
	}
	return out
}

// BoundaryNoise is the per-pixel reference for Bitmask.BoundaryNoise,
// consuming the rng in the same order.
func (s *Scalar) BoundaryNoise(targetIoU float64, rng func() float64) *Scalar {
	if targetIoU >= 1 {
		return s.Clone()
	}
	if targetIoU < 0 {
		targetIoU = 0
	}
	bbox := s.BoundingBox()
	if bbox.Empty() {
		return s.Clone()
	}
	work := bbox.Expand(8, s.Width, s.Height)
	ref := s.Crop(work)
	out := ref.Clone()
	for iter := 0; iter < 64; iter++ {
		if ScalarIoU(ref, out) <= targetIoU {
			break
		}
		var band *Scalar
		if rng() < 0.5 {
			band = out.Erode(1)
		} else {
			band = out.Dilate(1)
		}
		for i := range band.Pix {
			if band.Pix[i] != out.Pix[i] && rng() < 0.5 {
				out.Pix[i] = band.Pix[i]
			}
		}
	}
	full := NewScalar(s.Width, s.Height)
	full.Paste(out, work.MinX, work.MinY)
	return full
}

// ScalarFillPolygon is the per-pixel reference for FillPolygon.
func ScalarFillPolygon(vertices []geom.Vec2, width, height int) *Scalar {
	out := NewScalar(width, height)
	if len(vertices) < 3 {
		for _, v := range vertices {
			out.Set(int(math.Round(v.X)), int(math.Round(v.Y)))
		}
		return out
	}

	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range vertices {
		minY = math.Min(minY, v.Y)
		maxY = math.Max(maxY, v.Y)
	}
	y0 := max(0, int(math.Floor(minY)))
	y1 := min(height-1, int(math.Ceil(maxY)))

	xs := make([]float64, 0, 16)
	for y := y0; y <= y1; y++ {
		fy := float64(y) + 0.5
		xs = xs[:0]
		for i := range vertices {
			a := vertices[i]
			b := vertices[(i+1)%len(vertices)]
			if (a.Y <= fy) == (b.Y <= fy) {
				continue
			}
			t := (fy - a.Y) / (b.Y - a.Y)
			xs = append(xs, a.X+t*(b.X-a.X))
		}
		sort.Float64s(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			xa := max(0, int(math.Ceil(xs[i]-0.5)))
			xb := min(width-1, int(math.Floor(xs[i+1]-0.5)))
			for x := xa; x <= xb; x++ {
				out.Pix[y*width+x] = 1
			}
		}
	}
	for _, v := range vertices {
		x, y := int(math.Round(v.X)), int(math.Round(v.Y))
		out.Set(x, y)
	}
	return out
}
