package mask

import "testing"

func benchMask(w, h int) *Bitmask {
	m := New(w, h)
	for y := h / 4; y < 3*h/4; y++ {
		for x := w / 4; x < 3*w/4; x++ {
			m.Set(x, y)
		}
	}
	return m
}

func BenchmarkIoU(b *testing.B) {
	a := benchMask(320, 240)
	c := a.Translate(5, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IoU(a, c)
	}
}

// BenchmarkIoUScalar times the retained byte-per-pixel reference on the same
// fixture, so `go test -bench IoU` shows the packed speedup directly; the
// full packed-vs-scalar sweep lives in cmd/edgeis-kernelbench.
func BenchmarkIoUScalar(b *testing.B) {
	a := benchMask(320, 240).ToScalar()
	c := a.Translate(5, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarIoU(a, c)
	}
}

func BenchmarkExtractContours(b *testing.B) {
	m := benchMask(320, 240)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractContours(m, 8)
	}
}

func BenchmarkFillPolygon(b *testing.B) {
	m := benchMask(320, 240)
	c := ExtractContours(m, 8)[0]
	s := SimplifyContour(c, 160)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FillPolygon(s, 320, 240)
	}
}

// BenchmarkFillPolygonScalar is the scalar counterpart of
// BenchmarkFillPolygon (same contour fixture).
func BenchmarkFillPolygonScalar(b *testing.B) {
	m := benchMask(320, 240)
	c := ExtractContours(m, 8)[0]
	s := SimplifyContour(c, 160)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarFillPolygon(s, 320, 240)
	}
}

func BenchmarkBoundaryNoise(b *testing.B) {
	m := benchMask(320, 240)
	rng := func() float64 { return 0.5 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.BoundaryNoise(0.9, rng)
	}
}
