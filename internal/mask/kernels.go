package mask

import "math"

// This file holds the geometric kernels of the packed representation:
// translation, morphology, crop/paste and the BoundaryNoise error model.
// All of them operate a word (64 pixels) at a time; the only per-pixel loop
// left is ScaleAround's inverse nearest-neighbour gather, which has no
// word-parallel form. Each allocating kernel has an Into variant that
// reuses a destination mask (typically from a Pool) so the tracking loop
// runs allocation-free.

// maskN returns a word with the low n bits set (n in [0, 64]).
func maskN(n int) uint64 {
	if n >= wordBits {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// fetch64 reads 64 bits of src starting at bit offset off, zero-extending
// past the end of the slice.
func fetch64(src []uint64, off int) uint64 {
	w, b := off>>6, uint(off&63)
	if w >= len(src) {
		return 0
	}
	v := src[w] >> b
	if b != 0 && w+1 < len(src) {
		v |= src[w+1] << (wordBits - b)
	}
	return v
}

// copyBitsInto copies n bits from src starting at bit srcOff into dst
// starting at bit dstOff, replacing (not ORing) the destination bits.
// The slices must not alias.
func copyBitsInto(dst []uint64, dstOff int, src []uint64, srcOff, n int) {
	for n > 0 {
		dw, db := dstOff>>6, dstOff&63
		take := wordBits - db
		if take > n {
			take = n
		}
		mm := maskN(take)
		v := fetch64(src, srcOff) & mm
		dst[dw] = dst[dw]&^(mm<<uint(db)) | v<<uint(db)
		dstOff += take
		srcOff += take
		n -= take
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Translate returns a copy of m shifted by (dx, dy); pixels shifted outside
// the image are dropped. This is the operation a motion-vector tracker
// (the EAAR baseline) applies to cached masks.
func (m *Bitmask) Translate(dx, dy int) *Bitmask {
	out := New(m.Width, m.Height)
	m.translateInto(out, dx, dy)
	return out
}

// TranslateInto writes the translation of m into dst (reshaped to m's
// size), reusing dst's storage. dst must not be m.
func (m *Bitmask) TranslateInto(dst *Bitmask, dx, dy int) {
	dst.reshape(m.Width, m.Height)
	m.translateInto(dst, dx, dy)
}

// translateInto shifts m by (dx, dy) into the already-zeroed out. Each
// surviving row is one bit-aligned copy of the surviving column range.
func (m *Bitmask) translateInto(out *Bitmask, dx, dy int) {
	n := m.Width - abs(dx)
	if n <= 0 {
		return
	}
	srcX, dstX := max(0, -dx), max(0, dx)
	for y := 0; y < m.Height; y++ {
		ny := y + dy
		if ny < 0 || ny >= m.Height {
			continue
		}
		copyBitsInto(out.row(ny), dstX, m.row(y), srcX, n)
	}
}

// morphStep writes one 4-neighbour erosion (dilate=false) or dilation
// (dilate=true) of src into dst. Out-of-bounds neighbours read as unset,
// matching the At semantics of the scalar reference. Each output word is
// built from the row word, its lateral shifts (with carry bits from the
// adjacent words) and the rows above and below. dst must not alias src.
func morphStep(dst, src *Bitmask, dilate bool) {
	wpr := src.wpr
	tail := src.tailMask()
	for y := 0; y < src.Height; y++ {
		row := src.row(y)
		out := dst.row(y)
		var up, down []uint64
		if y > 0 {
			up = src.row(y - 1)
		}
		if y+1 < src.Height {
			down = src.row(y + 1)
		}
		for k := 0; k < wpr; k++ {
			w := row[k]
			west := w << 1
			if k > 0 {
				west |= row[k-1] >> (wordBits - 1)
			}
			east := w >> 1
			if k+1 < wpr {
				east |= row[k+1] << (wordBits - 1)
			}
			var u, d uint64
			if up != nil {
				u = up[k]
			}
			if down != nil {
				d = down[k]
			}
			if dilate {
				out[k] = w | west | east | u | d
			} else {
				out[k] = w & west & east & u & d
			}
		}
		if dilate {
			out[wpr-1] &= tail
		}
	}
}

// morphN applies radius morphology steps to cur using scratch as the
// double buffer; the result ends up in cur. Both must have equal sizes.
func morphN(cur, scratch *Bitmask, radius int, dilate bool) {
	for r := 0; r < radius; r++ {
		morphStep(scratch, cur, dilate)
		cur.words, scratch.words = scratch.words, cur.words
	}
}

// Erode removes set pixels that have any unset 4-neighbour, radius times.
func (m *Bitmask) Erode(radius int) *Bitmask {
	out := m.Clone()
	if radius > 0 {
		morphN(out, New(m.Width, m.Height), radius, false)
	}
	return out
}

// Dilate sets unset pixels that have any set 4-neighbour, radius times.
func (m *Bitmask) Dilate(radius int) *Bitmask {
	out := m.Clone()
	if radius > 0 {
		morphN(out, New(m.Width, m.Height), radius, true)
	}
	return out
}

// Crop returns the sub-mask covered by the box (clipped to bounds).
func (m *Bitmask) Crop(b Box) *Bitmask {
	out := &Bitmask{}
	m.CropInto(out, b)
	return out
}

// CropInto writes the sub-mask covered by the box (clipped to bounds) into
// dst, reusing dst's storage. An empty intersection yields a 1x1 zero mask,
// matching Crop. dst must not be m.
func (m *Bitmask) CropInto(dst *Bitmask, b Box) {
	b = b.Intersect(Box{MinX: 0, MinY: 0, MaxX: m.Width, MaxY: m.Height})
	if b.Empty() {
		dst.reshape(1, 1)
		return
	}
	dst.reshape(b.Width(), b.Height())
	for y := 0; y < dst.Height; y++ {
		copyBitsInto(dst.row(y), 0, m.row(b.MinY+y), b.MinX, dst.Width)
	}
}

// Paste copies src into m with its top-left corner at (x, y); out-of-bounds
// parts are clipped. Destination pixels under the pasted region are
// replaced (zeros in src clear them), matching a flat-buffer row copy.
func (m *Bitmask) Paste(src *Bitmask, x, y int) {
	sx0 := max(0, -x)
	n := min(src.Width, m.Width-x) - sx0
	if n <= 0 {
		return
	}
	for sy := max(0, -y); sy < src.Height; sy++ {
		dy := y + sy
		if dy >= m.Height {
			break
		}
		copyBitsInto(m.row(dy), x+sx0, src.row(sy), sx0, n)
	}
}

// ScaleAround returns a copy of m scaled by the factor about the given
// center using inverse nearest-neighbour mapping. KCF-style local trackers
// (the EdgeDuet baseline) use it to follow object scale changes that pure
// translation cannot.
func (m *Bitmask) ScaleAround(cx, cy, scale float64) *Bitmask {
	out := New(m.Width, m.Height)
	m.scaleAroundInto(out, cx, cy, scale)
	return out
}

// ScaleAroundInto writes the scaled mask into dst (reshaped to m's size),
// reusing dst's storage. dst must not be m.
func (m *Bitmask) ScaleAroundInto(dst *Bitmask, cx, cy, scale float64) {
	dst.reshape(m.Width, m.Height)
	m.scaleAroundInto(dst, cx, cy, scale)
}

func (m *Bitmask) scaleAroundInto(out *Bitmask, cx, cy, scale float64) {
	if scale <= 0 {
		return
	}
	inv := 1 / scale
	for y := 0; y < m.Height; y++ {
		row := out.row(y)
		sy := cy + (float64(y)-cy)*inv
		for x := 0; x < m.Width; x++ {
			sx := cx + (float64(x)-cx)*inv
			if m.At(int(math.Round(sx)), int(math.Round(sy))) {
				row[x>>6] |= 1 << uint(x&63)
			}
		}
	}
}

// BoundaryNoise returns a copy of m whose boundary has been randomly eroded
// or dilated to reach approximately the requested IoU with the original.
// It is the error model the simulated DL backends use to emit imperfect
// masks: a target IoU of 1 returns a clone, lower targets progressively
// distort the contour. The rng function must return uniform values in [0,1).
// The distortion operates on the mask's bounding-box crop, so the cost
// scales with the object, not the frame.
func (m *Bitmask) BoundaryNoise(targetIoU float64, rng func() float64) *Bitmask {
	return m.BoundaryNoisePooled(targetIoU, rng, nil)
}

// BoundaryNoisePooled is BoundaryNoise drawing its working crops from the
// pool (nil pool allocates). Only the returned mask escapes; the scratch
// masks are recycled before returning. The rng draw sequence is identical
// to the scalar reference: one IoU gate per round, one draw choosing erode
// vs dilate, then one draw per differing pixel in row-major order.
func (m *Bitmask) BoundaryNoisePooled(targetIoU float64, rng func() float64, pool *Pool) *Bitmask {
	if targetIoU >= 1 {
		return m.Clone()
	}
	if targetIoU < 0 {
		targetIoU = 0
	}
	bbox := m.BoundingBox()
	if bbox.Empty() {
		return m.Clone()
	}
	work := bbox.Expand(8, m.Width, m.Height)
	ref := pool.Get(work.Width(), work.Height())
	m.CropInto(ref, work)
	out := pool.Get(work.Width(), work.Height())
	out.CopyFrom(ref)
	band := pool.Get(work.Width(), work.Height())
	// Each round flips a band of boundary pixels until the IoU target is
	// reached. Alternating erode/dilate keeps the centroid stable.
	for iter := 0; iter < 64; iter++ {
		if IoU(ref, out) <= targetIoU {
			break
		}
		morphStep(band, out, rng() >= 0.5)
		// Blend: keep each changed pixel with 50% probability so the
		// distortion is irregular rather than a uniform offset. The
		// word/bit iteration order is row-major, so the rng stream
		// matches the scalar per-pixel loop exactly.
		blendRandom(out, band, rng)
	}
	full := New(m.Width, m.Height)
	full.Paste(out, work.MinX, work.MinY)
	pool.Put(ref, out, band)
	return full
}

// blendRandom copies each pixel where band differs from out into out with
// 50% probability, consuming one rng draw per differing pixel in row-major
// order. Row padding bits never differ (tail invariant), so they cost no
// draws.
func blendRandom(out, band *Bitmask, rng func() float64) {
	for i, bw := range band.words {
		diff := bw ^ out.words[i]
		for diff != 0 {
			bit := diff & -diff
			if rng() < 0.5 {
				out.words[i] ^= bit
			}
			diff &= diff - 1
		}
	}
}
