package mask

import "sync"

// Pool recycles Bitmask backing storage so the steady-state tracking loop
// allocates no masks. Get returns a zeroed mask of the requested size,
// reusing the word array of a previously Put mask when one is large enough;
// Put returns masks whose pixels the caller no longer references.
//
// Ownership discipline (see DESIGN.md §12): a mask may be Put exactly once,
// and only by its owner — the component the API contract says the mask was
// transferred to. Putting a mask that some other component still reads is
// the pooled equivalent of a use-after-free: the next Get reshapes and
// zeroes it under the reader. When ownership is unclear, leak the mask to
// the GC instead; the pool is an optimization, never a correctness
// requirement. A nil *Pool is valid and simply allocates, so pooled code
// paths need no nil checks.
//
// Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free []*Bitmask
}

// maxPoolFree bounds the free list so a burst of large frames cannot pin
// unbounded memory; overflow masks are dropped to the GC.
const maxPoolFree = 256

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns an all-zero mask of the given size. A nil pool allocates a
// fresh mask. The free list is searched newest-first for the first mask
// whose capacity fits, which in the steady state (same-size masks cycling)
// hits on the first probe.
func (p *Pool) Get(width, height int) *Bitmask {
	if p == nil {
		return New(width, height)
	}
	need := (width + wordBits - 1) / wordBits * height
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i].words) >= need {
			m := p.free[i]
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.mu.Unlock()
			m.reshape(width, height)
			return m
		}
	}
	p.mu.Unlock()
	return New(width, height)
}

// Put returns masks to the pool for reuse. Nil masks and nil pools are
// ignored. The caller must not touch the masks afterwards.
func (p *Pool) Put(masks ...*Bitmask) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for _, m := range masks {
		if m == nil || m.words == nil || len(p.free) >= maxPoolFree {
			continue
		}
		p.free = append(p.free, m)
	}
	p.mu.Unlock()
}

// Len reports the current free-list size (for tests).
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
