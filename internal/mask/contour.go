package mask

import (
	"math"
	"math/bits"

	"edgeis/internal/geom"
)

// Contour is an ordered list of boundary pixels of a mask region, the
// representation Section III-C extracts with findContours: "a list of
// connected pixels".
type Contour []geom.Vec2

// ExtractContours traces the outer boundary of every connected component of
// the mask using Moore-neighbour tracing with Jacob's stopping criterion —
// functionally the same boundary lists OpenCV's findContours produces in
// RETR_EXTERNAL mode. Components are returned in scan order; components
// smaller than minArea pixels are skipped.
func ExtractContours(m *Bitmask, minArea int) []Contour {
	return ExtractContoursPooled(m, minArea, nil)
}

// ExtractContoursPooled is ExtractContours drawing its visited-pixel
// scratch mask from the pool (nil allocates); the scratch never escapes.
func ExtractContoursPooled(m *Bitmask, minArea int, pool *Pool) []Contour {
	visited := pool.Get(m.Width, m.Height)
	defer pool.Put(visited)
	var contours []Contour

	labels := connectedComponents(m)
	seen := make(map[int]bool)
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			lbl := labels[y*m.Width+x]
			if lbl == 0 || seen[lbl] {
				continue
			}
			seen[lbl] = true
			// (x, y) is the top-left-most pixel of this component in scan
			// order, a valid Moore-trace start.
			c := traceBoundary(m, labels, lbl, x, y, visited)
			if componentArea(labels, lbl) >= minArea && len(c) > 0 {
				contours = append(contours, c)
			}
		}
	}
	return contours
}

// connectedComponents labels 4-connected components starting at 1. Seed
// pixels are found by scanning the packed rows a word at a time (zero words
// — the vast majority of a typical frame — cost one compare), then each
// component is flood-filled.
func connectedComponents(m *Bitmask) []int {
	labels := make([]int, m.Width*m.Height)
	next := 0
	var stack [][2]int
	for y := 0; y < m.Height; y++ {
		for k, w := range m.row(y) {
			for w != 0 {
				x := k*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
				if labels[y*m.Width+x] != 0 {
					continue
				}
				next++
				stack = stack[:0]
				stack = append(stack, [2]int{x, y})
				labels[y*m.Width+x] = next
				for len(stack) > 0 {
					p := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
						nx, ny := p[0]+d[0], p[1]+d[1]
						if !m.At(nx, ny) {
							continue
						}
						idx := ny*m.Width + nx
						if labels[idx] == 0 {
							labels[idx] = next
							stack = append(stack, [2]int{nx, ny})
						}
					}
				}
			}
		}
	}
	return labels
}

func componentArea(labels []int, lbl int) int {
	n := 0
	for _, l := range labels {
		if l == lbl {
			n++
		}
	}
	return n
}

// mooreOffsets enumerates the 8-neighbourhood clockwise starting from west.
var mooreOffsets = [8][2]int{
	{-1, 0}, {-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1},
}

// traceBoundary walks the outer boundary of component lbl starting from its
// scan-order-first pixel. dir encodes the direction of the last move as an
// index into mooreOffsets; the next scan starts one past the backtrack
// neighbour, clockwise. Termination uses Jacob's criterion: stop when the
// start pixel is re-entered moving in the initial direction.
func traceBoundary(m *Bitmask, labels []int, lbl, sx, sy int, visited *Bitmask) Contour {
	inComp := func(x, y int) bool {
		if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
			return false
		}
		return labels[y*m.Width+x] == lbl
	}

	contour := Contour{geom.V2(float64(sx), float64(sy))}
	visited.Set(sx, sy)

	// Single-pixel component.
	single := true
	for _, d := range mooreOffsets {
		if inComp(sx+d[0], sy+d[1]) {
			single = false
			break
		}
	}
	if single {
		return contour
	}

	cx, cy := sx, sy
	// Scan order guarantees the west neighbour of the start pixel is
	// outside the component, so pretend we arrived moving east.
	const east = 4
	dir := east

	maxSteps := 8 * m.Width * m.Height
	for step := 0; step < maxSteps; step++ {
		found := false
		start := (dir + 5) % 8 // one past the backtrack neighbour
		for i := 0; i < 8; i++ {
			d := (start + i) % 8
			nx, ny := cx+mooreOffsets[d][0], cy+mooreOffsets[d][1]
			if inComp(nx, ny) {
				cx, cy, dir = nx, ny, d
				found = true
				break
			}
		}
		if !found {
			break
		}
		if cx == sx && cy == sy && len(contour) >= 2 {
			break // boundary closed
		}
		contour = append(contour, geom.V2(float64(cx), float64(cy)))
		visited.Set(cx, cy)
	}
	return contour
}

// FillPolygon rasterizes a closed polygon into a mask of the given size
// using even-odd scanline filling. Vertices are in pixel coordinates; the
// polygon is implicitly closed. This converts a transferred contour back
// into a dense mask (Section III-C).
func FillPolygon(vertices []geom.Vec2, width, height int) *Bitmask {
	out := New(width, height)
	fillPolygonInto(out, vertices)
	return out
}

// FillPolygonInto rasterizes the polygon into dst, reshaping it to the
// given size and reusing its storage. It is FillPolygon for pooled masks —
// the mask-transfer predictor calls it once per cached instance per frame.
func FillPolygonInto(dst *Bitmask, vertices []geom.Vec2, width, height int) {
	dst.reshape(width, height)
	fillPolygonInto(dst, vertices)
}

// scanEdge is one polygon edge prepared for scanline filling. Endpoint order
// is preserved — the crossing x must be interpolated with exactly the
// expression the scalar reference uses, or rasterization would drift by a
// bit at ties — and the rows the edge crosses are precomputed so the per-row
// loop touches only active edges instead of testing every edge per scanline.
type scanEdge struct {
	ax, ay, bx, by float64
	row0, row1     int // scanline rows the edge crosses: [row0, row1)
}

func fillPolygonInto(out *Bitmask, vertices []geom.Vec2) {
	width, height := out.Width, out.Height
	if len(vertices) < 3 {
		for _, v := range vertices {
			out.Set(int(math.Round(v.X)), int(math.Round(v.Y)))
		}
		return
	}

	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range vertices {
		minY = math.Min(minY, v.Y)
		maxY = math.Max(maxY, v.Y)
	}
	y0 := max(0, int(math.Floor(minY)))
	y1 := min(height-1, int(math.Ceil(maxY)))
	if y1 < y0 {
		// Polygon entirely outside the vertical band (or NaN vertices):
		// no scanline can cross it, only the boundary stamps remain.
		for _, v := range vertices {
			out.Set(int(math.Round(v.X)), int(math.Round(v.Y)))
		}
		return
	}

	// Edge table: an edge crosses the scanline through fy = y+0.5 iff
	// min(ay,by) <= fy < max(ay,by) — the same even-odd rule as testing
	// (ay <= fy) != (by <= fy) per row, hoisted out of the row loop. The
	// boundary rows come from a floor estimate corrected with the exact
	// comparisons, so activation agrees bit-for-bit with the per-row test.
	edges := make([]scanEdge, 0, len(vertices))
	for i := range vertices {
		a := vertices[i]
		b := vertices[(i+1)%len(vertices)]
		lo, hi := a.Y, b.Y
		if lo > hi {
			lo, hi = hi, lo
		}
		if !(lo < hi) {
			continue // horizontal (or degenerate) edges never cross
		}
		r0 := int(math.Floor(lo)) // first y with lo <= y+0.5
		for r0 > y0 && lo <= float64(r0-1)+0.5 {
			r0--
		}
		for r0 <= y1 && !(lo <= float64(r0)+0.5) {
			r0++
		}
		r1 := int(math.Floor(hi)) // first y with hi <= y+0.5
		for r1 > r0 && hi <= float64(r1-1)+0.5 {
			r1--
		}
		for r1 <= y1 && !(hi <= float64(r1)+0.5) {
			r1++
		}
		r0 = max(r0, y0)
		r1 = min(r1, y1+1)
		if r0 < r1 {
			edges = append(edges, scanEdge{a.X, a.Y, b.X, b.Y, r0, r1})
		}
	}
	// Group edges by first active row. row0 is clamped to [y0, y1], so a
	// counting sort places every edge in two linear passes — comparison
	// sorting the 56-byte structs costs as much as the fill itself.
	counts := make([]int, y1-y0+2)
	for _, e := range edges {
		counts[e.row0-y0+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	sorted := make([]scanEdge, len(edges))
	for _, e := range edges {
		sorted[counts[e.row0-y0]] = e
		counts[e.row0-y0]++
	}
	edges = sorted

	xs := make([]float64, 0, 16)
	active := make([]scanEdge, 0, 8)
	next := 0
	for y := y0; y <= y1; y++ {
		for next < len(edges) && edges[next].row0 <= y {
			active = append(active, edges[next])
			next++
		}
		k := 0
		for _, e := range active {
			if e.row1 > y {
				active[k] = e
				k++
			}
		}
		active = active[:k]
		if len(active) == 0 {
			continue
		}
		fy := float64(y) + 0.5
		xs = xs[:0]
		for _, e := range active {
			t := (fy - e.ay) / (e.by - e.ay)
			xs = append(xs, e.ax+t*(e.bx-e.ax))
		}
		// Crossing lists are tiny (typically 2): insertion sort beats the
		// generic sort by a wide margin and yields the same ordering.
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			xa := max(0, int(math.Ceil(xs[i]-0.5)))
			xb := min(width-1, int(math.Floor(xs[i+1]-0.5)))
			if xa <= xb {
				out.setRowSpan(y, xa, xb+1)
			}
		}
	}
	// Stamp the boundary itself so thin shapes survive rasterization.
	for _, v := range vertices {
		x, y := int(math.Round(v.X)), int(math.Round(v.Y))
		out.Set(x, y)
	}
}

// SimplifyContour subsamples a contour to at most maxPoints, preserving
// order. Transmitting contour vertices instead of dense masks is how the
// wire protocol keeps mask payloads small.
func SimplifyContour(c Contour, maxPoints int) Contour {
	if maxPoints <= 0 || len(c) <= maxPoints {
		out := make(Contour, len(c))
		copy(out, c)
		return out
	}
	out := make(Contour, 0, maxPoints)
	step := float64(len(c)) / float64(maxPoints)
	for i := 0; i < maxPoints; i++ {
		out = append(out, c[int(float64(i)*step)])
	}
	return out
}

// ContourPerimeter returns the summed segment lengths of the closed contour.
func ContourPerimeter(c Contour) float64 {
	if len(c) < 2 {
		return 0
	}
	sum := 0.0
	for i := range c {
		sum += c[i].DistTo(c[(i+1)%len(c)])
	}
	return sum
}
