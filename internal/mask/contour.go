package mask

import (
	"math"
	"sort"

	"edgeis/internal/geom"
)

// Contour is an ordered list of boundary pixels of a mask region, the
// representation Section III-C extracts with findContours: "a list of
// connected pixels".
type Contour []geom.Vec2

// ExtractContours traces the outer boundary of every connected component of
// the mask using Moore-neighbour tracing with Jacob's stopping criterion —
// functionally the same boundary lists OpenCV's findContours produces in
// RETR_EXTERNAL mode. Components are returned in scan order; components
// smaller than minArea pixels are skipped.
func ExtractContours(m *Bitmask, minArea int) []Contour {
	visited := New(m.Width, m.Height)
	var contours []Contour

	labels := connectedComponents(m)
	seen := make(map[int]bool)
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			lbl := labels[y*m.Width+x]
			if lbl == 0 || seen[lbl] {
				continue
			}
			seen[lbl] = true
			// (x, y) is the top-left-most pixel of this component in scan
			// order, a valid Moore-trace start.
			c := traceBoundary(m, labels, lbl, x, y, visited)
			if componentArea(labels, lbl) >= minArea && len(c) > 0 {
				contours = append(contours, c)
			}
		}
	}
	return contours
}

// connectedComponents labels 4-connected components starting at 1.
func connectedComponents(m *Bitmask) []int {
	labels := make([]int, len(m.Pix))
	next := 0
	var stack [][2]int
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			if m.Pix[y*m.Width+x] == 0 || labels[y*m.Width+x] != 0 {
				continue
			}
			next++
			stack = stack[:0]
			stack = append(stack, [2]int{x, y})
			labels[y*m.Width+x] = next
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := p[0]+d[0], p[1]+d[1]
					if nx < 0 || ny < 0 || nx >= m.Width || ny >= m.Height {
						continue
					}
					idx := ny*m.Width + nx
					if m.Pix[idx] != 0 && labels[idx] == 0 {
						labels[idx] = next
						stack = append(stack, [2]int{nx, ny})
					}
				}
			}
		}
	}
	return labels
}

func componentArea(labels []int, lbl int) int {
	n := 0
	for _, l := range labels {
		if l == lbl {
			n++
		}
	}
	return n
}

// mooreOffsets enumerates the 8-neighbourhood clockwise starting from west.
var mooreOffsets = [8][2]int{
	{-1, 0}, {-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1},
}

// traceBoundary walks the outer boundary of component lbl starting from its
// scan-order-first pixel. dir encodes the direction of the last move as an
// index into mooreOffsets; the next scan starts one past the backtrack
// neighbour, clockwise. Termination uses Jacob's criterion: stop when the
// start pixel is re-entered moving in the initial direction.
func traceBoundary(m *Bitmask, labels []int, lbl, sx, sy int, visited *Bitmask) Contour {
	inComp := func(x, y int) bool {
		if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
			return false
		}
		return labels[y*m.Width+x] == lbl
	}

	contour := Contour{geom.V2(float64(sx), float64(sy))}
	visited.Set(sx, sy)

	// Single-pixel component.
	single := true
	for _, d := range mooreOffsets {
		if inComp(sx+d[0], sy+d[1]) {
			single = false
			break
		}
	}
	if single {
		return contour
	}

	cx, cy := sx, sy
	// Scan order guarantees the west neighbour of the start pixel is
	// outside the component, so pretend we arrived moving east.
	const east = 4
	dir := east

	maxSteps := 8 * len(m.Pix)
	for step := 0; step < maxSteps; step++ {
		found := false
		start := (dir + 5) % 8 // one past the backtrack neighbour
		for i := 0; i < 8; i++ {
			d := (start + i) % 8
			nx, ny := cx+mooreOffsets[d][0], cy+mooreOffsets[d][1]
			if inComp(nx, ny) {
				cx, cy, dir = nx, ny, d
				found = true
				break
			}
		}
		if !found {
			break
		}
		if cx == sx && cy == sy && len(contour) >= 2 {
			break // boundary closed
		}
		contour = append(contour, geom.V2(float64(cx), float64(cy)))
		visited.Set(cx, cy)
	}
	return contour
}

// FillPolygon rasterizes a closed polygon into a mask of the given size
// using even-odd scanline filling. Vertices are in pixel coordinates; the
// polygon is implicitly closed. This converts a transferred contour back
// into a dense mask (Section III-C).
func FillPolygon(vertices []geom.Vec2, width, height int) *Bitmask {
	out := New(width, height)
	if len(vertices) < 3 {
		for _, v := range vertices {
			out.Set(int(math.Round(v.X)), int(math.Round(v.Y)))
		}
		return out
	}

	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range vertices {
		minY = math.Min(minY, v.Y)
		maxY = math.Max(maxY, v.Y)
	}
	y0 := max(0, int(math.Floor(minY)))
	y1 := min(height-1, int(math.Ceil(maxY)))

	xs := make([]float64, 0, 16)
	for y := y0; y <= y1; y++ {
		fy := float64(y) + 0.5
		xs = xs[:0]
		for i := range vertices {
			a := vertices[i]
			b := vertices[(i+1)%len(vertices)]
			if (a.Y <= fy) == (b.Y <= fy) {
				continue // edge does not cross the scanline
			}
			t := (fy - a.Y) / (b.Y - a.Y)
			xs = append(xs, a.X+t*(b.X-a.X))
		}
		sort.Float64s(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			xa := max(0, int(math.Ceil(xs[i]-0.5)))
			xb := min(width-1, int(math.Floor(xs[i+1]-0.5)))
			for x := xa; x <= xb; x++ {
				out.Pix[y*width+x] = 1
			}
		}
	}
	// Stamp the boundary itself so thin shapes survive rasterization.
	for _, v := range vertices {
		x, y := int(math.Round(v.X)), int(math.Round(v.Y))
		out.Set(x, y)
	}
	return out
}

// SimplifyContour subsamples a contour to at most maxPoints, preserving
// order. Transmitting contour vertices instead of dense masks is how the
// wire protocol keeps mask payloads small.
func SimplifyContour(c Contour, maxPoints int) Contour {
	if maxPoints <= 0 || len(c) <= maxPoints {
		out := make(Contour, len(c))
		copy(out, c)
		return out
	}
	out := make(Contour, 0, maxPoints)
	step := float64(len(c)) / float64(maxPoints)
	for i := 0; i < maxPoints; i++ {
		out = append(out, c[int(float64(i)*step)])
	}
	return out
}

// ContourPerimeter returns the summed segment lengths of the closed contour.
func ContourPerimeter(c Contour) float64 {
	if len(c) < 2 {
		return 0
	}
	sum := 0.0
	for i := range c {
		sum += c[i].DistTo(c[(i+1)%len(c)])
	}
	return sum
}
