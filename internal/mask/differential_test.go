package mask

import (
	"math/rand"
	"testing"

	"edgeis/internal/geom"
)

// Differential tests: every packed kernel must be byte-identical to the
// retained scalar reference (scalar.go), across word-aligned and
// non-word-aligned widths, empty masks, and full masks. The scalar side is
// the pre-rewrite implementation verbatim, so these tests pin the packed
// rewrite to the original semantics bit for bit.

// diffSizes stresses the word layout: widths straddling one/two/many words,
// w mod 64 ∈ {0, 1, 63, other}, and degenerate 1-pixel masks.
var diffSizes = [][2]int{
	{1, 1}, {7, 5}, {63, 9}, {64, 8}, {65, 7}, {128, 4}, {129, 3}, {320, 240}, {100, 1},
}

// randPair builds matching packed and scalar masks with the same pixels.
func randPair(rng *rand.Rand, w, h int, density float64) (*Bitmask, *Scalar) {
	s := NewScalar(w, h)
	for i := range s.Pix {
		if rng.Float64() < density {
			s.Pix[i] = 1
		}
	}
	return s.Packed(), s
}

// requireEqual fails unless the packed mask equals the scalar mask exactly.
func requireEqual(t *testing.T, ctx string, got *Bitmask, want *Scalar) {
	t.Helper()
	if got.Width != want.Width || got.Height != want.Height {
		t.Fatalf("%s: size %dx%d, want %dx%d", ctx, got.Width, got.Height, want.Width, want.Height)
	}
	gb := got.Bytes()
	for i := range gb {
		if gb[i] != want.Pix[i] {
			t.Fatalf("%s: pixel (%d,%d) = %d, want %d",
				ctx, i%want.Width, i/want.Width, gb[i], want.Pix[i])
		}
	}
}

// densities covers empty, sparse, dense and full masks.
var densities = []float64{0, 0.05, 0.5, 0.95, 1}

func TestDifferentialSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sz := range diffSizes {
		for _, d := range densities {
			a, sa := randPair(rng, sz[0], sz[1], d)
			b, sb := randPair(rng, sz[0], sz[1], 0.5)

			u, su := a.Clone(), sa.Clone()
			u.Union(b)
			su.Union(sb)
			requireEqual(t, "Union", u, su)

			n, sn := a.Clone(), sa.Clone()
			n.Intersect(b)
			sn.Intersect(sb)
			requireEqual(t, "Intersect", n, sn)

			m, sm := a.Clone(), sa.Clone()
			m.Subtract(b)
			sm.Subtract(sb)
			requireEqual(t, "Subtract", m, sm)

			if got, want := IoU(a, b), ScalarIoU(sa, sb); got != want {
				t.Fatalf("IoU = %v, want %v (size %v density %v)", got, want, sz, d)
			}
			if got, want := a.Area(), sa.Area(); got != want {
				t.Fatalf("Area = %d, want %d", got, want)
			}
		}
	}
}

func TestDifferentialBoundingBoxAndCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sz := range diffSizes {
		for _, d := range densities {
			a, sa := randPair(rng, sz[0], sz[1], d)
			if got, want := a.BoundingBox(), sa.BoundingBox(); got != want {
				t.Fatalf("BoundingBox = %+v, want %+v (size %v density %v)", got, want, sz, d)
			}
			gc, gok := a.CenterOfMass()
			wc, wok := sa.CenterOfMass()
			if gok != wok || gc != wc {
				t.Fatalf("CenterOfMass = %v,%v want %v,%v", gc, gok, wc, wok)
			}
		}
	}
}

func TestDifferentialMorphology(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sz := range diffSizes {
		for _, d := range densities {
			a, sa := randPair(rng, sz[0], sz[1], d)
			for _, radius := range []int{0, 1, 2, 3} {
				requireEqual(t, "Erode", a.Erode(radius), sa.Erode(radius))
				requireEqual(t, "Dilate", a.Dilate(radius), sa.Dilate(radius))
			}
		}
	}
}

func TestDifferentialTranslate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	shifts := [][2]int{{0, 0}, {1, 0}, {0, 1}, {-1, -1}, {63, 2}, {-64, 1}, {65, -3}, {1000, 0}, {0, -1000}}
	for _, sz := range diffSizes {
		a, sa := randPair(rng, sz[0], sz[1], 0.4)
		for _, sh := range shifts {
			requireEqual(t, "Translate", a.Translate(sh[0], sh[1]), sa.Translate(sh[0], sh[1]))
		}
	}
}

func TestDifferentialCropPaste(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sz := range diffSizes {
		a, sa := randPair(rng, sz[0], sz[1], 0.4)
		boxes := []Box{
			{MinX: 0, MinY: 0, MaxX: sz[0], MaxY: sz[1]},
			{MinX: 1, MinY: 1, MaxX: sz[0] - 1, MaxY: sz[1] - 1},
			{MinX: -5, MinY: -5, MaxX: sz[0] + 5, MaxY: sz[1] + 5},
			{MinX: sz[0] / 2, MinY: sz[1] / 2, MaxX: sz[0]/2 + 70, MaxY: sz[1]/2 + 3},
			{MinX: 50, MinY: 50, MaxX: 40, MaxY: 40}, // empty
			{MinX: sz[0] + 10, MinY: 0, MaxX: sz[0] + 20, MaxY: 5},
		}
		for _, b := range boxes {
			requireEqual(t, "Crop", a.Crop(b), sa.Crop(b))
		}
		// Paste a random patch at positions crossing every clipping edge,
		// onto a non-empty destination (Paste also copies zeros).
		p, sp := randPair(rng, 66, 9, 0.5)
		for _, at := range [][2]int{{0, 0}, {-3, -2}, {sz[0] - 5, sz[1] - 5}, {1, 1}, {-100, -100}, {63, 0}} {
			dst, sdst := randPair(rng, sz[0], sz[1], 0.3)
			dst.Paste(p, at[0], at[1])
			sdst.Paste(sp, at[0], at[1])
			requireEqual(t, "Paste", dst, sdst)
		}
	}
}

func TestDifferentialScaleAround(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sz := range diffSizes {
		a, sa := randPair(rng, sz[0], sz[1], 0.4)
		cx, cy := float64(sz[0])/2, float64(sz[1])/2
		for _, sc := range []float64{0, -1, 0.5, 0.9, 1, 1.1, 2} {
			requireEqual(t, "ScaleAround", a.ScaleAround(cx, cy, sc), sa.ScaleAround(cx, cy, sc))
		}
	}
}

func TestDifferentialBoundaryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sz := range diffSizes {
		a, sa := randPair(rng, sz[0], sz[1], 0.4)
		for _, target := range []float64{1, 0.9, 0.7, 0.4, 0} {
			// Identical seeds: the packed kernel must consume the rng in
			// exactly the same order as the scalar reference.
			r1 := rand.New(rand.NewSource(99))
			r2 := rand.New(rand.NewSource(99))
			got := a.BoundaryNoise(target, r1.Float64)
			want := sa.BoundaryNoise(target, r2.Float64)
			requireEqual(t, "BoundaryNoise", got, want)
			if r1.Uint64() != r2.Uint64() {
				t.Fatal("BoundaryNoise consumed different rng draw counts")
			}
		}
	}
}

func TestDifferentialFillPolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sz := range diffSizes {
		for _, nv := range []int{0, 1, 2, 3, 5, 12} {
			verts := make([]geom.Vec2, nv)
			for i := range verts {
				verts[i] = geom.V2(rng.Float64()*float64(sz[0]), rng.Float64()*float64(sz[1]))
			}
			got := FillPolygon(verts, sz[0], sz[1])
			want := ScalarFillPolygon(verts, sz[0], sz[1])
			requireEqual(t, "FillPolygon", got, want)
		}
		// Polygons straddling or entirely outside the mask: transferred
		// contours routinely project partly (or wholly) off-screen.
		w, h := float64(sz[0]), float64(sz[1])
		for _, verts := range [][]geom.Vec2{
			{geom.V2(-w, -h), geom.V2(w/2, -h/2), geom.V2(-w/2, h/2)},
			{geom.V2(0, -3*h), geom.V2(w, -2*h), geom.V2(w/2, -h)},
			{geom.V2(-w/2, h/3), geom.V2(w*1.5, h/4), geom.V2(w/2, h*2)},
		} {
			got := FillPolygon(verts, sz[0], sz[1])
			want := ScalarFillPolygon(verts, sz[0], sz[1])
			requireEqual(t, "FillPolygon off-screen", got, want)
		}
	}
}

// TestDifferentialRuns pins AppendRuns against a scalar reference encoding of
// the byte-per-pixel stream, and FillRuns as its exact inverse — the same
// checks the wire golden makes at 320x240, here across the layout-stressing
// size/density grid.
func TestDifferentialRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, sz := range diffSizes {
		for _, d := range densities {
			m, s := randPair(rng, sz[0], sz[1], d)
			got := m.AppendRuns(nil)
			// Scalar reference: run lengths over the flat pixel buffer,
			// alternating starting with zeros.
			want := make([]uint32, 0, len(got))
			cur, run := uint8(0), uint32(0)
			for _, p := range s.Pix {
				if p == cur {
					run++
					continue
				}
				want = append(want, run)
				cur, run = p, 1
			}
			want = append(want, run)
			if len(got) != len(want) {
				t.Fatalf("%dx%d d=%v: %d runs, want %d", sz[0], sz[1], d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%dx%d d=%v: run[%d] = %d, want %d", sz[0], sz[1], d, i, got[i], want[i])
				}
			}
			back := New(sz[0], sz[1])
			back.FillRuns(got)
			requireEqual(t, "FillRuns", back, s)
		}
	}
}

// FuzzPackedKernels drives the same differential checks from the fuzzer so
// CI's fuzz smoke explores sizes and densities the fixed tables miss.
func FuzzPackedKernels(f *testing.F) {
	f.Add(int64(1), uint16(65), uint16(7), uint16(30))
	f.Add(int64(2), uint16(64), uint16(3), uint16(0))
	f.Add(int64(3), uint16(1), uint16(1), uint16(100))
	f.Fuzz(func(t *testing.T, seed int64, w16, h16, dens16 uint16) {
		w := int(w16)%200 + 1
		h := int(h16)%50 + 1
		density := float64(dens16%101) / 100
		rng := rand.New(rand.NewSource(seed))
		a, sa := randPair(rng, w, h, density)
		b, sb := randPair(rng, w, h, 0.5)

		if got, want := IoU(a, b), ScalarIoU(sa, sb); got != want {
			t.Fatalf("IoU = %v, want %v", got, want)
		}
		if got, want := a.BoundingBox(), sa.BoundingBox(); got != want {
			t.Fatalf("BoundingBox = %+v, want %+v", got, want)
		}
		u, su := a.Clone(), sa.Clone()
		u.Union(b)
		su.Union(sb)
		requireEqual(t, "Union", u, su)
		m, sm := a.Clone(), sa.Clone()
		m.Subtract(b)
		sm.Subtract(sb)
		requireEqual(t, "Subtract", m, sm)
		requireEqual(t, "Erode", a.Erode(1), sa.Erode(1))
		requireEqual(t, "Dilate", a.Dilate(1), sa.Dilate(1))
		dx, dy := int(w16%131)-65, int(h16%131)-65
		requireEqual(t, "Translate", a.Translate(dx, dy), sa.Translate(dx, dy))
		rt := New(w, h)
		rt.FillRuns(a.AppendRuns(nil))
		requireEqual(t, "Runs round-trip", rt, sa)
	})
}
