// Package mask implements the pixel-level machinery of instance
// segmentation: binary masks, polygon rasterization, contour extraction
// (the equivalent of OpenCV's findContours used in Section III-C of the
// paper), morphology, bounding boxes and the IoU metric of Eq. 8.
//
// Bitmask stores pixels packed 64 per machine word, and every hot kernel is
// a SWAR (SIMD-within-a-register) word pass: set algebra is word-wise
// OR/AND/AND-NOT, Area and IoU are popcounts, BoundingBox skips zero words
// with leading/trailing-zero counts, Erode/Dilate are shift-and-combine row
// passes, and Translate/Crop/Paste are bit-aligned row copies. An earlier
// revision stored one byte per pixel on the theory that packing was not
// worth the complexity; measured at the 320x240 and 640x480 resolutions the
// reproduction runs, the packed kernels are roughly 10-80x faster (IoU
// ~38-44x, Area ~82x, set ops ~37-80x, BoundingBox ~43-54x, morphology
// ~17-35x, Translate ~15x, FillPolygon ~10x — see BENCH_kernels.json for the
// current numbers and cmd/edgeis-kernelbench for the harness), which
// moves every per-frame stage of the tracking path. The byte-per-pixel
// implementation is retained as Scalar (scalar.go) and every packed kernel
// is pinned byte-identical to it by differential tests.
//
// Pool (pool.go) recycles mask backing storage so the steady-state tracking
// loop performs zero mask allocations per frame; see DESIGN.md §12 for the
// ownership rules.
package mask

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"edgeis/internal/geom"
)

// wordBits is the pixel capacity of one storage word.
const wordBits = 64

// allocs counts backing-array allocations (New, FromBytes, pool misses and
// reshape growth). The steady-state tracking loop is pinned to a zero
// per-frame delta by allocation-counting tests.
var allocs atomic.Uint64

// Allocs returns the number of mask backing-array allocations performed by
// this process so far. The absolute value is meaningless; tests assert on
// deltas.
func Allocs() uint64 { return allocs.Load() }

// Bitmask is a binary image of Width x Height pixels stored row-major,
// packed 64 pixels per uint64. Each row starts on a word boundary (wpr
// words per row), so row operations never straddle rows; bit x&63 of word
// words[y*wpr + x>>6] holds pixel (x, y).
//
// Invariant: the padding bits of each row's last word (bit positions >=
// Width%64, when Width is not a multiple of 64) are always zero. Every
// mutating method preserves it; kernels rely on it to skip edge fixups.
type Bitmask struct {
	Width, Height int
	wpr           int // words per row
	words         []uint64
}

// New returns an all-zero mask of the given size.
func New(width, height int) *Bitmask {
	m := &Bitmask{}
	m.reshape(width, height)
	return m
}

// reshape resizes m to width x height and zeroes it, reusing the backing
// array when its capacity suffices (the pool hit path — no allocation).
func (m *Bitmask) reshape(width, height int) {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("mask: invalid size %dx%d", width, height))
	}
	wpr := (width + wordBits - 1) / wordBits
	need := wpr * height
	m.Width, m.Height, m.wpr = width, height, wpr
	if cap(m.words) < need {
		m.words = make([]uint64, need)
		allocs.Add(1)
		return
	}
	m.words = m.words[:need]
	clear(m.words)
}

// row returns the word slice backing row y.
func (m *Bitmask) row(y int) []uint64 { return m.words[y*m.wpr : (y+1)*m.wpr] }

// tailMask returns the valid-bit mask of each row's last word.
func (m *Bitmask) tailMask() uint64 {
	if r := m.Width & (wordBits - 1); r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	return ^uint64(0)
}

// Clone returns a deep copy of m.
func (m *Bitmask) Clone() *Bitmask {
	out := New(m.Width, m.Height)
	copy(out.words, m.words)
	return out
}

// CopyFrom reshapes m to src's size and copies src's pixels into it,
// reusing m's backing storage when possible.
func (m *Bitmask) CopyFrom(src *Bitmask) {
	m.reshape(src.Width, src.Height)
	copy(m.words, src.words)
}

// Reset zeroes every pixel, keeping the size.
func (m *Bitmask) Reset() { clear(m.words) }

// At reports whether pixel (x, y) is set. Out-of-bounds reads return false.
func (m *Bitmask) At(x, y int) bool {
	if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
		return false
	}
	return m.words[y*m.wpr+x>>6]&(1<<uint(x&63)) != 0
}

// Set sets pixel (x, y); out-of-bounds writes are ignored.
func (m *Bitmask) Set(x, y int) {
	if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
		return
	}
	m.words[y*m.wpr+x>>6] |= 1 << uint(x&63)
}

// Clear zeroes pixel (x, y); out-of-bounds writes are ignored.
func (m *Bitmask) Clear(x, y int) {
	if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
		return
	}
	m.words[y*m.wpr+x>>6] &^= 1 << uint(x&63)
}

// Area returns the number of set pixels.
func (m *Bitmask) Area() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no pixel is set.
func (m *Bitmask) Empty() bool {
	for _, w := range m.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union ORs other into m in place. Sizes must match.
func (m *Bitmask) Union(other *Bitmask) {
	m.checkSize(other)
	for i, w := range other.words {
		m.words[i] |= w
	}
}

// Intersect ANDs other into m in place. Sizes must match.
func (m *Bitmask) Intersect(other *Bitmask) {
	m.checkSize(other)
	for i, w := range other.words {
		m.words[i] &= w
	}
}

// Subtract clears every pixel of m that is set in other. Sizes must match.
func (m *Bitmask) Subtract(other *Bitmask) {
	m.checkSize(other)
	for i, w := range other.words {
		m.words[i] &^= w
	}
}

func (m *Bitmask) checkSize(other *Bitmask) {
	if m.Width != other.Width || m.Height != other.Height {
		panic(fmt.Sprintf("mask: size mismatch %dx%d vs %dx%d",
			m.Width, m.Height, other.Width, other.Height))
	}
}

// IoU computes the intersection-over-union between two masks (Eq. 8 in the
// paper). Two empty masks have IoU 1 (a correct prediction of "nothing").
func IoU(a, b *Bitmask) float64 {
	a.checkSize(b)
	inter, union := 0, 0
	for i, w := range a.words {
		inter += bits.OnesCount64(w & b.words[i])
		union += bits.OnesCount64(w | b.words[i])
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Bytes unpacks the mask into a row-major byte-per-pixel buffer (0 or 1) —
// the representation the wire protocol serializes, kept stable across the
// packed rewrite so old peers interoperate.
func (m *Bitmask) Bytes() []uint8 {
	out := make([]uint8, m.Width*m.Height)
	for y := 0; y < m.Height; y++ {
		base := y * m.Width
		for k, w := range m.row(y) {
			for w != 0 {
				i := bits.TrailingZeros64(w)
				out[base+k*wordBits+i] = 1
				w &= w - 1
			}
		}
	}
	return out
}

// FromBytes packs a row-major byte-per-pixel buffer (non-zero = set) into a
// mask — the inverse boundary conversion of Bytes.
func FromBytes(width, height int, pix []uint8) *Bitmask {
	if len(pix) != width*height {
		panic(fmt.Sprintf("mask: FromBytes buffer size %d != %dx%d", len(pix), width, height))
	}
	m := New(width, height)
	for y := 0; y < height; y++ {
		base := y * width
		row := m.row(y)
		for x := 0; x < width; x++ {
			if pix[base+x] != 0 {
				row[x>>6] |= 1 << uint(x&63)
			}
		}
	}
	return m
}

// FillSpan sets n pixels starting at the row-major linear index offset
// (offset = y*Width + x), crossing row boundaries like a flat pixel buffer
// would. It is the decode half of the wire protocol's run-length boundary.
// The span must lie within the mask.
func (m *Bitmask) FillSpan(offset, n int) {
	if offset < 0 || n < 0 || offset+n > m.Width*m.Height {
		panic(fmt.Sprintf("mask: FillSpan [%d,%d) outside %dx%d", offset, offset+n, m.Width, m.Height))
	}
	for n > 0 {
		y, x := offset/m.Width, offset%m.Width
		take := min(n, m.Width-x)
		m.setRowSpan(y, x, x+take)
		offset += take
		n -= take
	}
}

// AppendRuns appends the mask's row-major run-length encoding to dst and
// returns the extended slice: alternating run lengths of 0-pixels and
// 1-pixels, starting with zeros (a zero-length leading run when the stream
// opens with ones), runs crossing row boundaries like a flat pixel buffer.
// This is the same convention the wire protocol serializes; it is also the
// compact at-rest form the transfer cache parks cold masks in. The encoder
// walks packed words directly, skipping runs 64 pixels at a time.
func (m *Bitmask) AppendRuns(dst []uint32) []uint32 {
	inv := uint64(0) // complement mask: scanning for the end of a 1-run flips bits
	run := uint32(0)
	for y := 0; y < m.Height; y++ {
		row := m.row(y)
		x := 0
		for x < m.Width {
			k, b := x>>6, x&63
			w := (row[k] ^ inv) >> uint(b)
			rem := min(wordBits-b, m.Width-x)
			if rem < wordBits {
				w &= maskN(rem)
			}
			if w == 0 {
				// Current run spans the rest of this word.
				run += uint32(rem)
				x += rem
				continue
			}
			tz := bits.TrailingZeros64(w)
			run += uint32(tz)
			x += tz
			dst = append(dst, run)
			run = 0
			inv = ^inv
		}
	}
	return append(dst, run)
}

// FillRuns sets pixels from an alternating 0/1 run-length stream as produced
// by AppendRuns. The mask must be cleared (freshly allocated, pool.Get, or
// Clear'd) and the runs must sum to exactly Width*Height pixels.
func (m *Bitmask) FillRuns(runs []uint32) {
	offset := 0
	ones := false
	for _, r := range runs {
		if ones {
			m.FillSpan(offset, int(r))
		}
		offset += int(r)
		ones = !ones
	}
	if offset != m.Width*m.Height {
		panic(fmt.Sprintf("mask: FillRuns covered %d pixels of %dx%d", offset, m.Width, m.Height))
	}
}

// setRowSpan sets pixels [x0, x1) of row y; bounds must be valid.
func (m *Bitmask) setRowSpan(y, x0, x1 int) {
	row := m.row(y)
	for x0 < x1 {
		k, b := x0>>6, x0&63
		take := min(wordBits-b, x1-x0)
		row[k] |= maskN(take) << uint(b)
		x0 += take
	}
}

// BoundingBox returns the tight bounding box of the set pixels. An empty
// mask yields an empty box. Zero words are skipped; the per-row extrema
// come from trailing/leading-zero counts of the first/last non-zero word.
func (m *Bitmask) BoundingBox() Box {
	minX, maxX := m.Width, 0
	minY, maxY := -1, 0
	for y := 0; y < m.Height; y++ {
		row := m.row(y)
		first := -1
		for k := 0; k < m.wpr; k++ {
			if row[k] != 0 {
				first = k
				break
			}
		}
		if first < 0 {
			continue
		}
		last := first
		for k := m.wpr - 1; k > first; k-- {
			if row[k] != 0 {
				last = k
				break
			}
		}
		if minY < 0 {
			minY = y
		}
		maxY = y + 1
		if x := first*wordBits + bits.TrailingZeros64(row[first]); x < minX {
			minX = x
		}
		if x := last*wordBits + wordBits - bits.LeadingZeros64(row[last]); x > maxX {
			maxX = x
		}
	}
	if minY < 0 {
		return Box{}
	}
	return Box{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// CenterOfMass returns the centroid of the set pixels, or ok=false for an
// empty mask.
func (m *Bitmask) CenterOfMass() (geom.Vec2, bool) {
	sx, sy, n := 0, 0, 0
	for y := 0; y < m.Height; y++ {
		rowSum, rowN := 0, 0
		for k, w := range m.row(y) {
			rowN += bits.OnesCount64(w)
			for w != 0 {
				rowSum += k*wordBits + bits.TrailingZeros64(w)
				w &= w - 1
			}
		}
		sx += rowSum
		sy += y * rowN
		n += rowN
	}
	if n == 0 {
		return geom.Vec2{}, false
	}
	return geom.V2(float64(sx)/float64(n), float64(sy)/float64(n)), true
}

// HausdorffProxy returns a cheap boundary-distance proxy: the mean absolute
// difference between the bounding boxes' edges, in pixels. It is used by
// offload triggers to detect significant mask drift without a full IoU scan.
func HausdorffProxy(a, b *Bitmask) float64 {
	ba, bb := a.BoundingBox(), b.BoundingBox()
	if ba.Empty() && bb.Empty() {
		return 0
	}
	if ba.Empty() || bb.Empty() {
		return math.Inf(1)
	}
	sum := math.Abs(float64(ba.MinX-bb.MinX)) + math.Abs(float64(ba.MinY-bb.MinY)) +
		math.Abs(float64(ba.MaxX-bb.MaxX)) + math.Abs(float64(ba.MaxY-bb.MaxY))
	return sum / 4
}

// Box is an axis-aligned bounding box with inclusive min and exclusive max
// pixel coordinates, matching Go's image.Rectangle convention.
type Box struct {
	MinX, MinY, MaxX, MaxY int
}

// Empty reports whether the box contains no pixels.
func (b Box) Empty() bool { return b.MaxX <= b.MinX || b.MaxY <= b.MinY }

// Width returns the box width in pixels (zero when empty).
func (b Box) Width() int {
	if b.Empty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the box height in pixels (zero when empty).
func (b Box) Height() int {
	if b.Empty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the number of pixels covered by the box.
func (b Box) Area() int { return b.Width() * b.Height() }

// Intersect returns the overlapping region of b and o.
func (b Box) Intersect(o Box) Box {
	out := Box{
		MinX: max(b.MinX, o.MinX), MinY: max(b.MinY, o.MinY),
		MaxX: min(b.MaxX, o.MaxX), MaxY: min(b.MaxY, o.MaxY),
	}
	if out.Empty() {
		return Box{}
	}
	return out
}

// UnionBox returns the smallest box containing both b and o.
func (b Box) UnionBox(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{
		MinX: min(b.MinX, o.MinX), MinY: min(b.MinY, o.MinY),
		MaxX: max(b.MaxX, o.MaxX), MaxY: max(b.MaxY, o.MaxY),
	}
}

// IoU computes intersection-over-union between two boxes — the metric used
// by the RoI pruning stage (Section IV-B).
func (b Box) IoU(o Box) float64 {
	inter := b.Intersect(o).Area()
	union := b.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Contains reports whether pixel (x, y) lies in the box.
func (b Box) Contains(x, y int) bool {
	return x >= b.MinX && x < b.MaxX && y >= b.MinY && y < b.MaxY
}

// Expand grows the box by margin pixels on every side, clipped to the given
// image bounds. It implements the "surrounding box" computed from each
// transferred mask in the dynamic anchor placement (Section IV-A).
func (b Box) Expand(margin, imgW, imgH int) Box {
	if b.Empty() {
		return Box{}
	}
	return Box{
		MinX: max(0, b.MinX-margin), MinY: max(0, b.MinY-margin),
		MaxX: min(imgW, b.MaxX+margin), MaxY: min(imgH, b.MaxY+margin),
	}
}

// Center returns the box center in pixel coordinates.
func (b Box) Center() geom.Vec2 {
	return geom.V2(float64(b.MinX+b.MaxX)/2, float64(b.MinY+b.MaxY)/2)
}
