// Package mask implements the pixel-level machinery of instance
// segmentation: binary masks, polygon rasterization, contour extraction
// (the equivalent of OpenCV's findContours used in Section III-C of the
// paper), morphology, bounding boxes and the IoU metric of Eq. 8.
package mask

import (
	"fmt"
	"math"

	"edgeis/internal/geom"
)

// Bitmask is a binary image of Width x Height pixels stored row-major, one
// byte per pixel (0 or 1). A byte-per-pixel layout keeps the hot loops
// branch-free and simple; masks at the paper's resolutions are small enough
// that packing is not worth the complexity.
type Bitmask struct {
	Width, Height int
	Pix           []uint8
}

// New returns an all-zero mask of the given size.
func New(width, height int) *Bitmask {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("mask: invalid size %dx%d", width, height))
	}
	return &Bitmask{Width: width, Height: height, Pix: make([]uint8, width*height)}
}

// Clone returns a deep copy of m.
func (m *Bitmask) Clone() *Bitmask {
	out := New(m.Width, m.Height)
	copy(out.Pix, m.Pix)
	return out
}

// At reports whether pixel (x, y) is set. Out-of-bounds reads return false.
func (m *Bitmask) At(x, y int) bool {
	if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
		return false
	}
	return m.Pix[y*m.Width+x] != 0
}

// Set sets pixel (x, y); out-of-bounds writes are ignored.
func (m *Bitmask) Set(x, y int) {
	if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
		return
	}
	m.Pix[y*m.Width+x] = 1
}

// Clear zeroes pixel (x, y); out-of-bounds writes are ignored.
func (m *Bitmask) Clear(x, y int) {
	if x < 0 || y < 0 || x >= m.Width || y >= m.Height {
		return
	}
	m.Pix[y*m.Width+x] = 0
}

// Area returns the number of set pixels.
func (m *Bitmask) Area() int {
	n := 0
	for _, p := range m.Pix {
		if p != 0 {
			n++
		}
	}
	return n
}

// Empty reports whether no pixel is set.
func (m *Bitmask) Empty() bool {
	for _, p := range m.Pix {
		if p != 0 {
			return false
		}
	}
	return true
}

// Union ORs other into m in place. Sizes must match.
func (m *Bitmask) Union(other *Bitmask) {
	m.checkSize(other)
	for i, p := range other.Pix {
		if p != 0 {
			m.Pix[i] = 1
		}
	}
}

// Intersect ANDs other into m in place. Sizes must match.
func (m *Bitmask) Intersect(other *Bitmask) {
	m.checkSize(other)
	for i := range m.Pix {
		m.Pix[i] &= other.Pix[i]
	}
}

// Subtract clears every pixel of m that is set in other. Sizes must match.
func (m *Bitmask) Subtract(other *Bitmask) {
	m.checkSize(other)
	for i, p := range other.Pix {
		if p != 0 {
			m.Pix[i] = 0
		}
	}
}

func (m *Bitmask) checkSize(other *Bitmask) {
	if m.Width != other.Width || m.Height != other.Height {
		panic(fmt.Sprintf("mask: size mismatch %dx%d vs %dx%d",
			m.Width, m.Height, other.Width, other.Height))
	}
}

// IoU computes the intersection-over-union between two masks (Eq. 8 in the
// paper). Two empty masks have IoU 1 (a correct prediction of "nothing").
func IoU(a, b *Bitmask) float64 {
	a.checkSize(b)
	inter, union := 0, 0
	for i := range a.Pix {
		av, bv := a.Pix[i] != 0, b.Pix[i] != 0
		if av && bv {
			inter++
		}
		if av || bv {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Box is an axis-aligned bounding box with inclusive min and exclusive max
// pixel coordinates, matching Go's image.Rectangle convention.
type Box struct {
	MinX, MinY, MaxX, MaxY int
}

// Empty reports whether the box contains no pixels.
func (b Box) Empty() bool { return b.MaxX <= b.MinX || b.MaxY <= b.MinY }

// Width returns the box width in pixels (zero when empty).
func (b Box) Width() int {
	if b.Empty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the box height in pixels (zero when empty).
func (b Box) Height() int {
	if b.Empty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the number of pixels covered by the box.
func (b Box) Area() int { return b.Width() * b.Height() }

// Intersect returns the overlapping region of b and o.
func (b Box) Intersect(o Box) Box {
	out := Box{
		MinX: max(b.MinX, o.MinX), MinY: max(b.MinY, o.MinY),
		MaxX: min(b.MaxX, o.MaxX), MaxY: min(b.MaxY, o.MaxY),
	}
	if out.Empty() {
		return Box{}
	}
	return out
}

// UnionBox returns the smallest box containing both b and o.
func (b Box) UnionBox(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{
		MinX: min(b.MinX, o.MinX), MinY: min(b.MinY, o.MinY),
		MaxX: max(b.MaxX, o.MaxX), MaxY: max(b.MaxY, o.MaxY),
	}
}

// IoU computes intersection-over-union between two boxes — the metric used
// by the RoI pruning stage (Section IV-B).
func (b Box) IoU(o Box) float64 {
	inter := b.Intersect(o).Area()
	union := b.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Contains reports whether pixel (x, y) lies in the box.
func (b Box) Contains(x, y int) bool {
	return x >= b.MinX && x < b.MaxX && y >= b.MinY && y < b.MaxY
}

// Expand grows the box by margin pixels on every side, clipped to the given
// image bounds. It implements the "surrounding box" computed from each
// transferred mask in the dynamic anchor placement (Section IV-A).
func (b Box) Expand(margin, imgW, imgH int) Box {
	if b.Empty() {
		return Box{}
	}
	return Box{
		MinX: max(0, b.MinX-margin), MinY: max(0, b.MinY-margin),
		MaxX: min(imgW, b.MaxX+margin), MaxY: min(imgH, b.MaxY+margin),
	}
}

// Center returns the box center in pixel coordinates.
func (b Box) Center() geom.Vec2 {
	return geom.V2(float64(b.MinX+b.MaxX)/2, float64(b.MinY+b.MaxY)/2)
}

// BoundingBox returns the tight bounding box of the set pixels. An empty
// mask yields an empty box.
func (m *Bitmask) BoundingBox() Box {
	b := Box{MinX: m.Width, MinY: m.Height, MaxX: 0, MaxY: 0}
	found := false
	for y := 0; y < m.Height; y++ {
		row := m.Pix[y*m.Width : (y+1)*m.Width]
		for x, p := range row {
			if p == 0 {
				continue
			}
			found = true
			if x < b.MinX {
				b.MinX = x
			}
			if x+1 > b.MaxX {
				b.MaxX = x + 1
			}
			if y < b.MinY {
				b.MinY = y
			}
			if y+1 > b.MaxY {
				b.MaxY = y + 1
			}
		}
	}
	if !found {
		return Box{}
	}
	return b
}

// Translate returns a copy of m shifted by (dx, dy); pixels shifted outside
// the image are dropped. This is the operation a motion-vector tracker
// (the EAAR baseline) applies to cached masks.
func (m *Bitmask) Translate(dx, dy int) *Bitmask {
	out := New(m.Width, m.Height)
	for y := 0; y < m.Height; y++ {
		ny := y + dy
		if ny < 0 || ny >= m.Height {
			continue
		}
		for x := 0; x < m.Width; x++ {
			if m.Pix[y*m.Width+x] == 0 {
				continue
			}
			nx := x + dx
			if nx < 0 || nx >= m.Width {
				continue
			}
			out.Pix[ny*m.Width+nx] = 1
		}
	}
	return out
}

// Erode removes set pixels that have any unset 4-neighbour, radius times.
func (m *Bitmask) Erode(radius int) *Bitmask {
	cur := m.Clone()
	for r := 0; r < radius; r++ {
		next := cur.Clone()
		for y := 0; y < cur.Height; y++ {
			for x := 0; x < cur.Width; x++ {
				if !cur.At(x, y) {
					continue
				}
				if !cur.At(x-1, y) || !cur.At(x+1, y) || !cur.At(x, y-1) || !cur.At(x, y+1) {
					next.Clear(x, y)
				}
			}
		}
		cur = next
	}
	return cur
}

// Dilate sets unset pixels that have any set 4-neighbour, radius times.
func (m *Bitmask) Dilate(radius int) *Bitmask {
	cur := m.Clone()
	for r := 0; r < radius; r++ {
		next := cur.Clone()
		for y := 0; y < cur.Height; y++ {
			for x := 0; x < cur.Width; x++ {
				if cur.At(x, y) {
					continue
				}
				if cur.At(x-1, y) || cur.At(x+1, y) || cur.At(x, y-1) || cur.At(x, y+1) {
					next.Set(x, y)
				}
			}
		}
		cur = next
	}
	return cur
}

// CenterOfMass returns the centroid of the set pixels, or ok=false for an
// empty mask.
func (m *Bitmask) CenterOfMass() (geom.Vec2, bool) {
	var sx, sy float64
	n := 0
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			if m.Pix[y*m.Width+x] != 0 {
				sx += float64(x)
				sy += float64(y)
				n++
			}
		}
	}
	if n == 0 {
		return geom.Vec2{}, false
	}
	return geom.V2(sx/float64(n), sy/float64(n)), true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Crop returns the sub-mask covered by the box (clipped to bounds).
func (m *Bitmask) Crop(b Box) *Bitmask {
	b = b.Intersect(Box{MinX: 0, MinY: 0, MaxX: m.Width, MaxY: m.Height})
	if b.Empty() {
		return New(1, 1)
	}
	out := New(b.Width(), b.Height())
	for y := 0; y < out.Height; y++ {
		srcRow := m.Pix[(b.MinY+y)*m.Width+b.MinX:]
		copy(out.Pix[y*out.Width:(y+1)*out.Width], srcRow[:out.Width])
	}
	return out
}

// Paste copies src into m with its top-left corner at (x, y); out-of-bounds
// parts are clipped.
func (m *Bitmask) Paste(src *Bitmask, x, y int) {
	for sy := 0; sy < src.Height; sy++ {
		dy := y + sy
		if dy < 0 || dy >= m.Height {
			continue
		}
		for sx := 0; sx < src.Width; sx++ {
			dx := x + sx
			if dx < 0 || dx >= m.Width {
				continue
			}
			m.Pix[dy*m.Width+dx] = src.Pix[sy*src.Width+sx]
		}
	}
}

// BoundaryNoise returns a copy of m whose boundary has been randomly eroded
// or dilated to reach approximately the requested IoU with the original.
// It is the error model the simulated DL backends use to emit imperfect
// masks: a target IoU of 1 returns a clone, lower targets progressively
// distort the contour. The rng function must return uniform values in [0,1).
// The distortion operates on the mask's bounding-box crop, so the cost
// scales with the object, not the frame.
func (m *Bitmask) BoundaryNoise(targetIoU float64, rng func() float64) *Bitmask {
	if targetIoU >= 1 {
		return m.Clone()
	}
	if targetIoU < 0 {
		targetIoU = 0
	}
	bbox := m.BoundingBox()
	if bbox.Empty() {
		return m.Clone()
	}
	work := bbox.Expand(8, m.Width, m.Height)
	ref := m.Crop(work)
	out := ref.Clone()
	// Each round flips a band of boundary pixels until the IoU target is
	// reached. Alternating erode/dilate keeps the centroid stable.
	for iter := 0; iter < 64; iter++ {
		if IoU(ref, out) <= targetIoU {
			break
		}
		var band *Bitmask
		if rng() < 0.5 {
			band = out.Erode(1)
		} else {
			band = out.Dilate(1)
		}
		// Blend: keep each changed pixel with 50% probability so the
		// distortion is irregular rather than a uniform offset.
		for i := range band.Pix {
			if band.Pix[i] != out.Pix[i] && rng() < 0.5 {
				out.Pix[i] = band.Pix[i]
			}
		}
	}
	full := New(m.Width, m.Height)
	full.Paste(out, work.MinX, work.MinY)
	return full
}

// ScaleAround returns a copy of m scaled by the factor about the given
// center using inverse nearest-neighbour mapping. KCF-style local trackers
// (the EdgeDuet baseline) use it to follow object scale changes that pure
// translation cannot.
func (m *Bitmask) ScaleAround(cx, cy, scale float64) *Bitmask {
	out := New(m.Width, m.Height)
	if scale <= 0 {
		return out
	}
	inv := 1 / scale
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			sx := cx + (float64(x)-cx)*inv
			sy := cy + (float64(y)-cy)*inv
			if m.At(int(math.Round(sx)), int(math.Round(sy))) {
				out.Pix[y*m.Width+x] = 1
			}
		}
	}
	return out
}

// HausdorffProxy returns a cheap boundary-distance proxy: the mean absolute
// difference between the bounding boxes' edges, in pixels. It is used by
// offload triggers to detect significant mask drift without a full IoU scan.
func HausdorffProxy(a, b *Bitmask) float64 {
	ba, bb := a.BoundingBox(), b.BoundingBox()
	if ba.Empty() && bb.Empty() {
		return 0
	}
	if ba.Empty() || bb.Empty() {
		return math.Inf(1)
	}
	sum := math.Abs(float64(ba.MinX-bb.MinX)) + math.Abs(float64(ba.MinY-bb.MinY)) +
		math.Abs(float64(ba.MaxX-bb.MaxX)) + math.Abs(float64(ba.MaxY-bb.MaxY))
	return sum / 4
}
