package loadgen

import (
	"fmt"
	"math"
	"strings"
)

// SLO is one run's machine-readable serving report — the schema of each
// entry in BENCH_serving.json. Every frame the workload offered is
// reconciled into exactly one of served, rejected (edge admission reject),
// shed (latest-wins displacement of the session's own stale frame) or
// dropped (client-side shed or lost at teardown); ConservationOK records
// that the law offered == served + rejected + shed + dropped held.
type SLO struct {
	Profile string `json:"profile"`
	// Target names the execution mode: "sim" (deterministic virtual time),
	// "scheduler" (in-process wall clock against edge.Scheduler) or "tcp"
	// (real sockets against transport.Server).
	Target string `json:"target"`
	Seed   int64  `json:"seed"`

	Sessions     int `json:"sessions"`
	Accelerators int `json:"accelerators"`
	QueueDepth   int `json:"queue_depth"`
	// Replicas is the edge shard count under a fleet profile (absent from
	// JSON for the single-edge profiles, whose reports predate sharding).
	// Accelerators is per replica.
	Replicas int `json:"replicas,omitempty"`

	// Frame accounting (the no-silent-loss law). Shed counts latest-wins
	// displacements; it stays zero (and absent from JSON) under the default
	// reject policy, so pre-policy reports keep their exact schema.
	// Migrated counts frames lost in flight to replica failure — accepted
	// by the client but still queued, staged, on an accelerator or in
	// uplink flight when their replica died; it stays zero (and absent)
	// outside fleet profiles, and the law extends to
	// offered == served + rejected + shed + dropped + migrated.
	Offered        int  `json:"offered"`
	Served         int  `json:"served"`
	Rejected       int  `json:"rejected"`
	Shed           int  `json:"shed,omitempty"`
	Dropped        int  `json:"dropped"`
	Migrated       int  `json:"migrated,omitempty"`
	ConservationOK bool `json:"conservation_ok"`

	// Batch telemetry (zero and absent from JSON under single dequeue):
	// launches performed and the mean number of frames per launch.
	Batches       int     `json:"batches,omitempty"`
	MeanBatchSize float64 `json:"mean_batch_size,omitempty"`

	// Skip-compute telemetry (zero and absent from JSON when the profile's
	// KeyframeInterval disables the feature cache): served frames that paid
	// the full backbone vs the warp cost, and the keyframe fraction of
	// served. When enabled, KeyframesServed + WarpedServed == Served.
	KeyframesServed int     `json:"keyframes_served,omitempty"`
	WarpedServed    int     `json:"warped_served,omitempty"`
	KeyframeRate    float64 `json:"keyframe_rate,omitempty"`

	// End-to-end offload latency of served frames (generation to result
	// delivery), in ms. Quantiles use metrics.Dist's documented
	// nearest-rank estimator over its retained window.
	LatMeanMs float64 `json:"lat_mean_ms"`
	LatP50Ms  float64 `json:"lat_p50_ms"`
	LatP95Ms  float64 `json:"lat_p95_ms"`
	LatP99Ms  float64 `json:"lat_p99_ms"`
	LatMaxMs  float64 `json:"lat_max_ms"`

	// Admission-to-dequeue wait of served frames, in ms.
	WaitMeanMs float64 `json:"wait_mean_ms"`
	WaitP95Ms  float64 `json:"wait_p95_ms"`
	WaitMaxMs  float64 `json:"wait_max_ms"`

	// Queue-depth telemetry, sampled at each admission.
	QueueMeanDepth float64 `json:"queue_mean_depth"`
	QueuePeakDepth int     `json:"queue_peak_depth"`

	// UtilizationMean is the mean accelerator busy fraction over the run
	// (virtual-time targets only; wall-clock targets report 0).
	UtilizationMean float64 `json:"utilization_mean"`

	// Per-session fairness: min and max served counts across sessions and
	// their spread. Under round-robin dequeue a symmetric fleet keeps the
	// spread small; a starved session would show up as ServedMin near 0.
	ServedMin      int `json:"served_min"`
	ServedMax      int `json:"served_max"`
	FairnessSpread int `json:"fairness_spread"`

	// HorizonMs is the makespan: virtual ms (sim) or wall ms (live) from
	// start to the last delivery after drain.
	HorizonMs float64 `json:"horizon_ms"`
}

// round3 quantizes to 3 decimals so committed reports stay readable; the
// underlying computation is already deterministic.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// keyframeRate is the keyframe fraction of served frames under an enabled
// feature cache (0 when nothing was partitioned).
func keyframeRate(keyframes, warped int) float64 {
	if keyframes+warped == 0 {
		return 0
	}
	return round3(float64(keyframes) / float64(keyframes+warped))
}

// Check verifies the conservation law and basic sanity; it returns a
// descriptive error naming the violated invariant.
func (s *SLO) Check() error {
	if s.Offered != s.Served+s.Rejected+s.Shed+s.Dropped+s.Migrated {
		return fmt.Errorf("loadgen %s/%s: conservation violated: offered %d != served %d + rejected %d + shed %d + dropped %d + migrated %d",
			s.Profile, s.Target, s.Offered, s.Served, s.Rejected, s.Shed, s.Dropped, s.Migrated)
	}
	if !s.ConservationOK {
		return fmt.Errorf("loadgen %s/%s: run flagged conservation_ok=false", s.Profile, s.Target)
	}
	if s.Served < 0 || s.Rejected < 0 || s.Shed < 0 || s.Dropped < 0 || s.Migrated < 0 {
		return fmt.Errorf("loadgen %s/%s: negative accounting: %+v", s.Profile, s.Target, s)
	}
	if s.Migrated > 0 && s.Replicas <= 1 {
		return fmt.Errorf("loadgen %s/%s: migrated %d frames with no replica fleet",
			s.Profile, s.Target, s.Migrated)
	}
	if s.ServedMin > s.ServedMax || s.FairnessSpread != s.ServedMax-s.ServedMin {
		return fmt.Errorf("loadgen %s/%s: fairness fields inconsistent: min %d max %d spread %d",
			s.Profile, s.Target, s.ServedMin, s.ServedMax, s.FairnessSpread)
	}
	if s.KeyframesServed < 0 || s.WarpedServed < 0 {
		return fmt.Errorf("loadgen %s/%s: negative skip-compute accounting: keyframes %d warped %d",
			s.Profile, s.Target, s.KeyframesServed, s.WarpedServed)
	}
	// Skip-compute partition law: when the feature cache classified frames,
	// every served frame is exactly one of keyframe or warped. Under a
	// fleet kill the partition is counted where the work happened (the
	// edge), while Served counts deliveries: a killed replica may have
	// computed frames whose results died with its sockets, so the partition
	// may exceed Served by at most the migrated loss.
	if part := s.KeyframesServed + s.WarpedServed; part > 0 {
		if part < s.Served || part > s.Served+s.Migrated {
			return fmt.Errorf("loadgen %s/%s: keyframe partition violated: keyframes %d + warped %d outside [served %d, served+migrated %d]",
				s.Profile, s.Target, s.KeyframesServed, s.WarpedServed, s.Served, s.Served+s.Migrated)
		}
	}
	return nil
}

// String renders a one-line human summary.
func (s *SLO) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-9s %5d sess %d accel: offered %6d = served %6d + rejected %6d + shed %6d + dropped %6d",
		s.Profile, s.Target, s.Sessions, s.Accelerators, s.Offered, s.Served, s.Rejected, s.Shed, s.Dropped)
	fmt.Fprintf(&b, " | lat p50/p95/p99 %.1f/%.1f/%.1f ms | queue mean %.1f peak %d | served min/max %d/%d",
		s.LatP50Ms, s.LatP95Ms, s.LatP99Ms, s.QueueMeanDepth, s.QueuePeakDepth, s.ServedMin, s.ServedMax)
	if s.Batches > 0 {
		fmt.Fprintf(&b, " | batches %d mean %.2f", s.Batches, s.MeanBatchSize)
	}
	if s.KeyframesServed+s.WarpedServed > 0 {
		fmt.Fprintf(&b, " | keyframes %d warped %d (rate %.2f)", s.KeyframesServed, s.WarpedServed, s.KeyframeRate)
	}
	if s.Replicas > 1 {
		fmt.Fprintf(&b, " | replicas %d migrated %d", s.Replicas, s.Migrated)
	}
	return b.String()
}
