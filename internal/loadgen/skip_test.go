package loadgen

import (
	"encoding/json"
	"testing"
)

// TestSkipComputeDeterministicInSim extends the CI determinism gate to the
// feature cache: two runs of the skip-compute smoke profile must be
// byte-identical, and every served frame must be classified as exactly one
// of keyframe or warped (the partition law Check() enforces).
func TestSkipComputeDeterministicInSim(t *testing.T) {
	p, err := ProfileByName("ci-smoke-skip")
	if err != nil {
		t.Fatal(err)
	}
	if !p.SkipCompute() {
		t.Fatalf("ci-smoke-skip does not enable the feature cache: %+v", p)
	}
	a, b := Run(p), Run(p)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two runs of %s differ:\n%s\n%s", p.Name, ja, jb)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.KeyframesServed == 0 || a.WarpedServed == 0 {
		t.Fatalf("skip profile did not exercise both classes: keyframes %d warped %d", a.KeyframesServed, a.WarpedServed)
	}
	if a.KeyframesServed+a.WarpedServed != a.Served {
		t.Fatalf("partition law: keyframes %d + warped %d != served %d", a.KeyframesServed, a.WarpedServed, a.Served)
	}
}

// TestSkipComputeImprovesThroughputInSim reads the skip arm against its
// all-keyframe twin — the acceptance pair BENCH_serving.json commits. The
// same oversubscribed steady fleet on the same seed must convert temporal
// redundancy into materially more served frames and fresher medians.
func TestSkipComputeImprovesThroughputInSim(t *testing.T) {
	full, err := ProfileByName("steady-scene-x2")
	if err != nil {
		t.Fatal(err)
	}
	skip, err := ProfileByName("steady-scene-skip-x2")
	if err != nil {
		t.Fatal(err)
	}
	if skip.KeyframeInterval <= 1 || full.KeyframeInterval > 1 || skip.Seed != full.Seed ||
		skip.Sessions != full.Sessions || skip.Accelerators != full.Accelerators {
		t.Fatalf("skip pair misconfigured: %+v vs %+v", full, skip)
	}
	a, b := Run(full), Run(skip)
	t.Logf("all-keyframe: served=%d p50=%.1f; skip: served=%d p50=%.1f keyframes=%d warped=%d rate=%.2f",
		a.Served, a.LatP50Ms, b.Served, b.LatP50Ms, b.KeyframesServed, b.WarpedServed, b.KeyframeRate)
	if a.KeyframesServed != 0 || a.WarpedServed != 0 || a.KeyframeRate != 0 {
		t.Errorf("all-keyframe arm must report no skip telemetry: %+v", a)
	}
	if got := float64(b.Served); got < 1.5*float64(a.Served) {
		t.Errorf("skip-compute served %d, want >= 1.5x the all-keyframe %d", b.Served, a.Served)
	}
	if b.LatP50Ms >= a.LatP50Ms {
		t.Errorf("skip-compute did not reduce p50: %.1f -> %.1f ms", a.LatP50Ms, b.LatP50Ms)
	}
	// Under saturation rejected keyframes invalidate the cache and force
	// retries, so the rate sits above the ideal 1/Interval — but warped
	// frames must still dominate for the arm to mean anything.
	if b.KeyframeRate <= 0 || b.KeyframeRate >= 0.5 {
		t.Errorf("keyframe rate %.2f outside (0, 0.5)", b.KeyframeRate)
	}
}

// TestKeyframeIntervalOneIsDisabled pins the compatibility contract: an
// interval of 1 (every frame a keyframe) is the same policy-off path as the
// zero value — byte-identical reports with no skip telemetry.
func TestKeyframeIntervalOneIsDisabled(t *testing.T) {
	base, err := ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.KeyframeInterval = 1
	if one.SkipCompute() {
		t.Fatal("interval 1 must not enable the feature cache")
	}
	a, b := Run(base), Run(one)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("interval 1 changed the report:\n%s\n%s", ja, jb)
	}
	if a.KeyframesServed != 0 || a.WarpedServed != 0 {
		t.Fatalf("disabled run reported skip telemetry: %+v", a)
	}
}

// TestWithDefaultsFillsWarpCost checks the clip normalization: under an
// enabled cache, clips lacking an explicit warp cost fall back to full
// inference cost (no accidental free warps), and the shared default clip
// slice is never mutated in place.
func TestWithDefaultsFillsWarpCost(t *testing.T) {
	custom := ClipClass{Name: "bare", InferMs: 50, PayloadBytes: 90 << 10, ResultBytes: 4 << 10}
	p := Profile{KeyframeInterval: 4, Clips: []ClipClass{custom}}.withDefaults()
	if got := p.Clips[0].WarpMs; got != custom.InferMs {
		t.Errorf("bare clip WarpMs = %v, want filled to InferMs %v", got, custom.InferMs)
	}

	before := make([]ClipClass, len(DefaultClips))
	copy(before, DefaultClips)
	_ = Profile{KeyframeInterval: 4}.withDefaults()
	for i, c := range DefaultClips {
		if c != before[i] {
			t.Fatalf("withDefaults mutated shared DefaultClips[%d]: %+v -> %+v", i, before[i], c)
		}
	}

	for _, c := range DefaultClips {
		if c.WarpMs <= 0 || c.WarpMs >= c.InferMs {
			t.Errorf("clip %s: WarpMs %v must be in (0, InferMs %v)", c.Name, c.WarpMs, c.InferMs)
		}
	}
}
