// Package loadgen is the fleet-scale load harness: it simulates thousands
// of concurrent mobile sessions offloading frames to an edge server and
// reports serving SLOs (latency quantiles, reject/drop rates, per-session
// fairness, queue and accelerator telemetry).
//
// Two execution modes share one workload vocabulary:
//
//   - The in-process simulator (Run, sim.go) advances a virtual clock over
//     an event queue, modelling the uplink/downlink with netsim pacing and
//     the edge with the exact admission discipline of edge.Scheduler
//     (bounded queue, explicit reject, fair per-session round-robin over a
//     pool of accelerators). Runs are a pure function of the profile and
//     seed: two runs produce byte-identical SLO reports, which is what lets
//     BENCH_serving.json act as a committed baseline.
//   - The wall-clock drivers (package loadgen/drive) replay the same
//     profiles against the real edge.Scheduler in-process and against
//     transport.Server over real sockets, with reconciled accounting so the
//     no-silent-loss law offered == served + rejected + dropped holds there
//     too.
//
// A workload Profile assigns each synthetic session a clip class (payload
// and inference cost), an arrival process (steady, bursty or ramp) and a
// link shape (fast, slow or lossy netsim pacing). See DESIGN.md §14 for how
// to run the harness and read its reports.
package loadgen

import (
	"fmt"
	"math/rand"

	"edgeis/internal/edge"
	"edgeis/internal/fleet"
	"edgeis/internal/netsim"
	"edgeis/internal/segmodel"
)

// ArrivalKind selects a session's offload arrival process.
type ArrivalKind string

// Arrival processes.
const (
	// Steady offloads at a fixed per-session rate; sessions are phase-offset
	// so a fleet does not arrive in lockstep.
	Steady ArrivalKind = "steady"
	// Bursty alternates dense bursts (4x the nominal rate) with idle gaps,
	// the shape of a mobile that offloads when its tracker degrades.
	Bursty ArrivalKind = "bursty"
	// Ramp raises the rate linearly from the nominal rate to RampFactor
	// times it over the run — a fleet coming online.
	Ramp ArrivalKind = "ramp"
)

// LinkShape names a wireless link behaviour, mapped onto netsim profiles.
type LinkShape string

// Link shapes.
const (
	// Fast is the paper's best case: 5 GHz WiFi.
	Fast LinkShape = "fast"
	// Slow is the LTE profile: lower goodput, high base RTT.
	Slow LinkShape = "slow"
	// Lossy is 2.4 GHz WiFi degraded to 6% packet loss with heavy jitter.
	Lossy LinkShape = "lossy"
)

// NetProfile maps the shape to its netsim link profile.
func (s LinkShape) NetProfile() netsim.Profile {
	switch s {
	case Fast:
		return netsim.DefaultProfile(netsim.WiFi5)
	case Slow:
		return netsim.DefaultProfile(netsim.LTE)
	case Lossy:
		p := netsim.DefaultProfile(netsim.WiFi24)
		p.LossRate = 0.06
		p.JitterMs = 8
		return p
	default:
		panic(fmt.Sprintf("loadgen: unknown link shape %q", string(s)))
	}
}

// ClipClass is the serving-relevant summary of a clip preset: how many
// bytes one offloaded frame ships, how many come back, and the edge
// inference cost of a frame from this scene class. The costs are calibrated
// to the repo's segmodel latency model (pruned two-stage inference on a
// Jetson-class accelerator, 30–55 ms).
type ClipClass struct {
	Name string `json:"name"`
	// PayloadBytes is the encoded uplink frame size.
	PayloadBytes int `json:"payload_bytes"`
	// ResultBytes is the contour-encoded downlink result size.
	ResultBytes int `json:"result_bytes"`
	// InferMs is the nominal edge inference latency for this class.
	InferMs float64 `json:"infer_ms"`
	// WarpMs is the nominal non-keyframe (skip-compute) inference latency:
	// warping the session's cached keyframe features instead of recomputing
	// the backbone. Only read when Profile.KeyframeInterval enables the
	// feature cache; zero then defaults to InferMs (no saving), so a profile
	// must opt its clips into the cheaper warp cost explicitly.
	WarpMs float64 `json:"warp_ms,omitempty"`
}

// Clip classes, named after the scene presets they stand in for. WarpMs is
// calibrated like segmodel's skip-compute profiles: the warp retains the
// detection heads and drops most of the backbone, roughly 40% of the solo
// cost for these two-stage-dominated classes.
var (
	ClipStreet     = ClipClass{Name: "street", PayloadBytes: 26000, ResultBytes: 2600, InferMs: 42, WarpMs: 16}
	ClipIndoor     = ClipClass{Name: "indoor", PayloadBytes: 18000, ResultBytes: 1800, InferMs: 31, WarpMs: 12}
	ClipIndustrial = ClipClass{Name: "industrial", PayloadBytes: 34000, ResultBytes: 3400, InferMs: 55, WarpMs: 20}
)

// DefaultClips is the standard clip mix.
var DefaultClips = []ClipClass{ClipStreet, ClipIndoor, ClipIndustrial}

// DefaultLinks is the standard link mix.
var DefaultLinks = []LinkShape{Fast, Slow, Lossy}

// DefaultMaxOutstanding is the per-session client-side cap on offloads in
// flight; a session at the cap sheds new frames (counted as dropped), the
// mobile client's bounded-send-queue behaviour.
const DefaultMaxOutstanding = 4

// Profile is one reproducible workload: a fleet of synthetic sessions, each
// drawing a clip class, an arrival process and a link shape, against an
// edge with a fixed accelerator pool and admission bound.
type Profile struct {
	Name string `json:"name"`
	// Sessions is the number of concurrent synthetic mobiles.
	Sessions int `json:"sessions"`
	// Accelerators and QueueDepth shape the edge (edge.Scheduler semantics:
	// QueueDepth bounds admitted-but-undequeued requests across sessions).
	Accelerators int `json:"accelerators"`
	QueueDepth   int `json:"queue_depth"`
	// MaxOutstanding caps one session's in-flight offloads (client shed).
	MaxOutstanding int `json:"max_outstanding"`
	// DurationMs is the generation horizon: virtual ms for the simulator,
	// wall ms for the live drivers. Frames generated before the horizon are
	// always drained to an outcome, so conservation is exact.
	DurationMs float64 `json:"duration_ms"`
	// FPS is the nominal per-session offload rate.
	FPS float64 `json:"fps"`
	// Arrival selects the arrival process; BurstLen/BurstGapMs tune Bursty
	// and RampFactor tunes Ramp.
	Arrival    ArrivalKind `json:"arrival"`
	BurstLen   int         `json:"burst_len,omitempty"`
	BurstGapMs float64     `json:"burst_gap_ms,omitempty"`
	RampFactor float64     `json:"ramp_factor,omitempty"`
	// Links and Clips are the session mixes: session i uses Links[i%len]
	// and Clips[i%len], a deterministic round-robin assignment.
	Links []LinkShape `json:"links"`
	Clips []ClipClass `json:"clips"`
	// MaxBatch caps how many compatible frames (same clip class) one
	// accelerator launch may serve — the edge.DequeuePolicy mirror. Zero or
	// one keeps the single-dequeue discipline byte-identical to the
	// committed baselines.
	MaxBatch int `json:"max_batch,omitempty"`
	// BatchWindowMs is how long an underfull batch holds its accelerator
	// waiting for companions before launching (virtual ms; the wall-clock
	// drivers scale it by TimeScale). Only meaningful with MaxBatch > 1.
	BatchWindowMs float64 `json:"batch_window_ms,omitempty"`
	// ShedPolicy selects the admission discipline at a full queue —
	// edge.AdmissionPolicy names: "reject" (default, explicit reject) or
	// "latest-wins" (shed the session's own oldest queued frame to admit
	// the fresh one).
	ShedPolicy string `json:"shed_policy,omitempty"`
	// KeyframeInterval enables per-session temporal-redundancy skip-compute
	// on the edge: one frame in every KeyframeInterval recomputes the full
	// backbone (clip InferMs) and the rest warp the session's cached
	// keyframe features (clip WarpMs). A keyframe lost to admission reject
	// or latest-wins shedding invalidates the session's cache, forcing the
	// next frame to be a keyframe. Zero or one disables the cache and keeps
	// runs byte-identical to the committed baselines.
	KeyframeInterval int `json:"keyframe_interval,omitempty"`
	// Replicas shards the edge into N independent replicas, each with its
	// own Accelerators-wide worker pool, QueueDepth-bounded admission queue
	// and round-robin ring. Sessions are placed by rendezvous hashing on
	// the session key (fleet.Rendezvous), so the simulator, the drivers and
	// a real fleet client agree on ownership from the address list alone.
	// Zero or one is the single-edge mode, byte-identical to the committed
	// baselines.
	Replicas int `json:"replicas,omitempty"`
	// Kills schedules mid-run replica failures (only meaningful with
	// Replicas > 1). A killed replica loses every frame it holds — queued,
	// staged, or on an accelerator — to the Migrated bucket, its sessions
	// re-place among the survivors with invalidated feature caches (the
	// next frame is a forced keyframe), and frames already in uplink
	// flight arrive at a dead socket and migrate too. Results already
	// launched on the downlink still deliver: they left the edge before it
	// died.
	Kills []ReplicaKill `json:"kills,omitempty"`
	// Seed pins every random draw in the run.
	Seed int64 `json:"seed"`
}

// ReplicaKill schedules the death of one replica at a virtual instant.
type ReplicaKill struct {
	Replica int     `json:"replica"`
	AtMs    float64 `json:"at_ms"`
}

// Normalized returns the profile with zero fields filled by the standard
// defaults — the exact configuration a run executes.
func (p Profile) Normalized() Profile { return p.withDefaults() }

// ClipFor returns session i's clip class (deterministic round-robin mix).
func (p Profile) ClipFor(i int) ClipClass {
	p = p.withDefaults()
	return p.Clips[i%len(p.Clips)]
}

// LinkFor returns session i's link shape (deterministic round-robin mix).
func (p Profile) LinkFor(i int) LinkShape {
	p = p.withDefaults()
	return p.Links[i%len(p.Links)]
}

// SessionArrivals returns session i's frame generation times in virtual ms,
// phase-offset across the fleet. Every target — the virtual-time simulator
// and the wall-clock drivers — offers exactly this schedule, so offered
// counts are comparable across targets by construction.
func (p Profile) SessionArrivals(i int) []float64 {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed*1_000_003 + int64(i)*7919 + 1))
	g := newArrivalGen(p, rng)
	periodMs := 1000 / p.FPS
	t := periodMs * float64(i) / float64(p.Sessions)
	out := []float64{t}
	for {
		next := t + g.next(t)
		if next > p.DurationMs {
			return out
		}
		out = append(out, next)
		t = next
	}
}

// SkipCompute reports whether the profile enables the keyframe feature
// cache.
func (p Profile) SkipCompute() bool { return p.KeyframeInterval > 1 }

// Sharded reports whether the profile runs a multi-replica edge fleet.
func (p Profile) Sharded() bool { return p.Replicas > 1 }

// SessionKey is session i's cross-replica identity — the key placement
// hashes and the resume handshake carries.
func (p Profile) SessionKey(i int) string { return fmt.Sprintf("sess-%d", i) }

// ReplicaName names replica r for placement hashing. The virtual fleet has
// no socket addresses, so placement hashes these stable names; a real
// deployment hashes its address list the same way.
func ReplicaName(r int) string { return fmt.Sprintf("replica-%d", r) }

// PlaceSession returns the replica index serving session i given the alive
// replica indices, using the same rendezvous placement as a fleet client so
// every execution target agrees on ownership. It returns -1 when no
// replica is alive.
func (p Profile) PlaceSession(i int, alive []int) int {
	if len(alive) == 0 {
		return -1
	}
	names := make([]string, len(alive))
	byName := make(map[string]int, len(alive))
	for j, r := range alive {
		names[j] = ReplicaName(r)
		byName[names[j]] = r
	}
	return byName[fleet.Rendezvous{}.Pick(p.SessionKey(i), names)]
}

// KeyframePolicy maps the profile onto the serving stack's skip-compute
// policy (loadgen workloads carry no contours, so the policy is purely
// interval-driven; the churn trigger never fires on guidance-less frames).
func (p Profile) KeyframePolicy() segmodel.KeyframePolicy {
	return segmodel.KeyframePolicy{Interval: p.KeyframeInterval}
}

// withDefaults fills zero fields with the standard values.
func (p Profile) withDefaults() Profile {
	if p.Sessions <= 0 {
		p.Sessions = 1
	}
	if p.Accelerators <= 0 {
		p.Accelerators = 1
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = edge.DefaultQueueDepth
	}
	if p.MaxOutstanding <= 0 {
		p.MaxOutstanding = DefaultMaxOutstanding
	}
	if p.DurationMs <= 0 {
		p.DurationMs = 1000
	}
	if p.FPS <= 0 {
		p.FPS = 1
	}
	if p.Arrival == "" {
		p.Arrival = Steady
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 8
	}
	if p.BurstGapMs <= 0 {
		p.BurstGapMs = 4 * 1000 / p.FPS
	}
	if p.RampFactor <= 1 {
		p.RampFactor = 4
	}
	if len(p.Links) == 0 {
		p.Links = DefaultLinks
	}
	if len(p.Clips) == 0 {
		p.Clips = DefaultClips
	}
	if p.MaxBatch <= 0 {
		p.MaxBatch = 1
	}
	if p.BatchWindowMs < 0 {
		p.BatchWindowMs = 0
	}
	if p.ShedPolicy == "" {
		p.ShedPolicy = "reject"
	}
	if p.SkipCompute() {
		// Clips without an explicit warp cost serve non-keyframes at full
		// cost; copy before filling so the shared default clip slice is
		// never mutated.
		clips := make([]ClipClass, len(p.Clips))
		copy(clips, p.Clips)
		for i := range clips {
			if clips[i].WarpMs <= 0 {
				clips[i].WarpMs = clips[i].InferMs
			}
		}
		p.Clips = clips
	}
	return p
}

// arrivalGen produces one session's offload generation times.
type arrivalGen struct {
	kind       ArrivalKind
	periodMs   float64
	horizonMs  float64
	rampFactor float64
	burstLen   int
	burstGapMs float64
	inBurst    int
	rng        *rand.Rand
}

func newArrivalGen(p Profile, rng *rand.Rand) *arrivalGen {
	return &arrivalGen{
		kind:       p.Arrival,
		periodMs:   1000 / p.FPS,
		horizonMs:  p.DurationMs,
		rampFactor: p.RampFactor,
		burstLen:   p.BurstLen,
		burstGapMs: p.BurstGapMs,
		rng:        rng,
	}
}

// next returns the interval from a generation at time now to the session's
// next generation.
func (g *arrivalGen) next(now float64) float64 {
	switch g.kind {
	case Bursty:
		g.inBurst++
		if g.inBurst >= g.burstLen {
			g.inBurst = 0
			// Idle gap, jittered so bursts desynchronize across sessions.
			return g.burstGapMs * (0.5 + g.rng.Float64())
		}
		return g.periodMs / 4
	case Ramp:
		// Rate rises linearly from 1/period to rampFactor/period over the
		// horizon; past the horizon generation stops anyway.
		frac := now / g.horizonMs
		if frac > 1 {
			frac = 1
		}
		rate := (1 + (g.rampFactor-1)*frac) / g.periodMs
		return 1 / rate
	default: // Steady
		return g.periodMs
	}
}
