package loadgen

import (
	"container/heap"
	"math"
	"math/rand"

	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/segmodel"
)

// The in-process simulator: a virtual-time event queue over the whole
// fleet. It models the mobile side (per-session outstanding cap, uplink
// pacing), the edge admission discipline of edge.Scheduler (bounded queue,
// explicit reject or latest-wins shedding, fair per-session round-robin
// dequeue onto the earliest-free accelerator, optional cross-session
// batching under the gather-window former) and the downlink delivery of
// results. Nothing reads the wall clock, so a run is a pure function of
// (Profile, Seed).

// evKind tags simulator events.
type evKind uint8

const (
	// evGen: a session generates one offload frame.
	evGen evKind = iota
	// evArrive: an uplinked frame reaches edge admission.
	evArrive
	// evInferDone: an accelerator finishes one launch (one frame, or a
	// gathered batch completing together).
	evInferDone
	// evDeliver: a result reaches the mobile (latency sample point).
	evDeliver
	// evFlush: an underfull batch's gather window expires; the reserved
	// accelerator tops the batch up and launches whatever it has.
	evFlush
	// evKill: a replica dies (Profile.Kills). Its queued/staged/in-flight
	// frames migrate-lose, its sessions re-place among survivors.
	evKill
)

// event is one scheduled simulator step. seq breaks time ties in push
// order, so identical runs process events identically. replica/gen address
// the edge shard the event targets: a kill bumps the shard's generation,
// so events scheduled against the pre-kill replica (an uplink in flight, a
// running inference, a staged gather window) pop stale and resolve their
// frames into the Migrated bucket instead of touching the dead edge.
type event struct {
	at      float64
	seq     int64
	kind    evKind
	sess    int
	replica int
	gen     int
	accel   int
	job     *simJob
	batch   []*simJob
}

// simJob is one offloaded frame in flight.
type simJob struct {
	sess     int
	genAt    float64
	arriveAt float64
	// keyframe is the skip-compute classification made at edge admission
	// (constant true when the profile disables the feature cache); it picks
	// the inference cost and the batch-compatibility class.
	keyframe bool
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// simSession is one synthetic mobile.
type simSession struct {
	clip ClipClass
	// arrivals is the session's precomputed generation schedule
	// (Profile.SessionArrivals) and nextGen indexes the next entry; the live
	// drivers replay the same schedule, so offered counts match across
	// targets.
	arrivals    []float64
	nextGen     int
	up, down    *netsim.Link
	outstanding int
	pending     []*simJob
	served      int
	// replica is the edge shard serving the session: rendezvous-placed at
	// start, re-placed among survivors when its replica dies (-1 once the
	// whole fleet is dead — further frames drop client-side, the mobile
	// has nowhere to connect).
	replica int
	// kfValid/kfAge mirror the session's edge-side feature cache: valid
	// after a keyframe decision, aged by each non-keyframe, invalidated when
	// a decided keyframe is lost before serving (reject or shed) — or when
	// the session migrates, because the cached pyramid died with the old
	// replica and the first frame on the new one must be a keyframe.
	kfValid bool
	kfAge   int
}

// simEdge is one edge replica's state, mirroring edge.Scheduler: rotating
// ring of sessions with pending work, queued count, per-accelerator busy
// horizon. staged holds an underfull batch per reserved accelerator during
// its gather window. gen is the failover generation: a kill bumps it so
// events addressed to the old incarnation resolve stale.
type simEdge struct {
	ring      []int
	queued    int
	accelIdle []bool
	busyMs    []float64
	staged    [][]*simJob
	dead      bool
	gen       int
}

// sim is the run state.
type sim struct {
	p     Profile
	heap  eventHeap
	seq   int64
	sess  []*simSession
	maxAt float64

	// edges are the replica shards (exactly one outside fleet mode; the
	// single-replica event order and RNG draw order are byte-identical to
	// the pre-fleet simulator). edgeRng is shared across replicas: virtual
	// time serializes every draw deterministically, so per-replica streams
	// would buy nothing.
	edges   []*simEdge
	edgeRng *rand.Rand

	offered, served, rejected, shed, dropped int
	// migrated counts frames lost in flight to replica failure: queued,
	// staged or on an accelerator when their replica died, or uplinked
	// into a dead socket. The fleet conservation law is
	// offered == served + rejected + shed + dropped + migrated.
	migrated           int
	batches, batchJobs int
	// keyframes/warped partition served when the profile enables
	// skip-compute (both stay zero otherwise).
	keyframes, warped  int
	lat, waits, depths metrics.Dist
}

// alive returns the indices of the replicas still serving.
func (s *sim) alive() []int {
	out := make([]int, 0, len(s.edges))
	for r, ed := range s.edges {
		if !ed.dead {
			out = append(out, r)
		}
	}
	return out
}

// Run executes the profile on the virtual-time simulator and returns its
// SLO report. Two calls with the same profile return identical reports.
func Run(p Profile) *SLO {
	p = p.withDefaults()
	replicas := p.Replicas
	if replicas < 1 {
		replicas = 1
	}
	s := &sim{
		p:       p,
		sess:    make([]*simSession, p.Sessions),
		edges:   make([]*simEdge, replicas),
		edgeRng: rand.New(rand.NewSource(p.Seed*7_369_131 + 17)),
	}
	for r := range s.edges {
		ed := &simEdge{
			accelIdle: make([]bool, p.Accelerators),
			busyMs:    make([]float64, p.Accelerators),
			staged:    make([][]*simJob, p.Accelerators),
		}
		for i := range ed.accelIdle {
			ed.accelIdle[i] = true
		}
		s.edges[r] = ed
	}
	allAlive := s.alive()
	for i := 0; i < p.Sessions; i++ {
		s.sess[i] = &simSession{
			clip:     p.ClipFor(i),
			arrivals: p.SessionArrivals(i),
			up:       netsim.NewLink(p.LinkFor(i).NetProfile(), p.Seed+int64(i)*2+1),
			down:     netsim.NewLink(p.LinkFor(i).NetProfile(), p.Seed+int64(i)*2+2),
		}
		if p.Sharded() {
			s.sess[i].replica = p.PlaceSession(i, allAlive)
		}
		s.push(event{at: s.sess[i].arrivals[0], kind: evGen, sess: i})
	}
	if p.Sharded() {
		for _, k := range p.Kills {
			if k.Replica >= 0 && k.Replica < replicas {
				s.push(event{at: k.AtMs, kind: evKill, replica: k.Replica})
			}
		}
	}

	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(event)
		if e.at > s.maxAt {
			s.maxAt = e.at
		}
		switch e.kind {
		case evGen:
			s.generate(e)
		case evArrive:
			s.arrive(e)
		case evInferDone:
			s.inferDone(e)
		case evDeliver:
			s.deliver(e)
		case evFlush:
			s.flush(e)
		case evKill:
			s.kill(e)
		}
	}
	return s.report()
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
}

// Counter mutators: the audited set the conservation analyzer admits for
// the simulator's SLO counters. The sim is single-goroutine, so these add
// no locking — only the guarantee that every movement between outcome
// classes (offered == served + rejected + shed + dropped) is one greppable
// call site.

func (s *sim) countOffered()  { s.offered++ }
func (s *sim) countDropped()  { s.dropped++ }
func (s *sim) countRejected() { s.rejected++ }
func (s *sim) countShed()     { s.shed++ }

// countMigrated moves n frames into the migrated class: accepted by the
// client, lost with a replica. Every call site is one of the four ways a
// replica death loses frames (queued, staged, on-accelerator, in uplink
// flight).
func (s *sim) countMigrated(n int) { s.migrated += n }

// countServed moves one frame into the served class on both the fleet and
// per-session tallies, keeping the fairness report consistent with the SLO.
func (s *sim) countServed(ss *simSession) {
	ss.served++
	s.served++
}

// countKeyframes and countWarped partition served frames by skip-compute
// cost shape; only called when the profile enables the feature cache, so
// KeyframesServed + WarpedServed == Served exactly when enabled.

func (s *sim) countKeyframes(n int) { s.keyframes += n }

func (s *sim) countWarped(n int) { s.warped += n }

// decideKeyframe classifies one arriving frame against the session's
// feature-cache mirror, in arrival order — the interval-driven half of
// segmodel.KeyframePolicy.Decide (loadgen frames carry no contours, so the
// churn trigger never fires). Keyframes refresh the cache, non-keyframes
// age it.
func (s *sim) decideKeyframe(ss *simSession) bool {
	if !s.p.SkipCompute() {
		return true
	}
	if !ss.kfValid || ss.kfAge+1 >= s.p.KeyframeInterval {
		ss.kfValid, ss.kfAge = true, 0
		return true
	}
	ss.kfAge++
	return false
}

// dropKeyframeFor invalidates the session's cache mirror when a decided
// keyframe is lost before serving: its features were never computed, so
// the next frame must be a keyframe (edge.Session.dropCacheFor's rule). A
// lost non-keyframe leaves the cached keyframe intact.
func (s *sim) dropKeyframeFor(ss *simSession, keyframe bool) {
	if s.p.SkipCompute() && keyframe {
		ss.kfValid = false
	}
}

// jobCost is the nominal accelerator cost of one job's cost shape.
func (s *sim) jobCost(j *simJob) float64 {
	clip := s.sess[j.sess].clip
	if j.keyframe {
		return clip.InferMs
	}
	return clip.WarpMs
}

// generate handles one frame generation: client-side shed when the session
// is at its outstanding cap (or the whole fleet is dead), otherwise uplink
// pacing toward the session's placed replica.
func (s *sim) generate(e event) {
	ss := s.sess[e.sess]
	s.countOffered()
	ss.nextGen++
	if ss.nextGen < len(ss.arrivals) {
		s.push(event{at: ss.arrivals[ss.nextGen], kind: evGen, sess: e.sess})
	}
	if ss.outstanding >= s.p.MaxOutstanding || ss.replica < 0 {
		s.countDropped()
		return
	}
	ss.outstanding++
	upMs := ss.up.TransferMs(e.at, ss.clip.PayloadBytes)
	s.push(event{at: e.at + upMs, kind: evArrive, sess: e.sess,
		replica: ss.replica, gen: s.edges[ss.replica].gen,
		job: &simJob{sess: e.sess, genAt: e.at, arriveAt: e.at + upMs}})
}

// arrive handles edge admission: a full queue rejects explicitly under the
// default policy; under latest-wins it sheds the session's own oldest
// queued frame to admit the fresh one (degrading to reject when the session
// has nothing queued). An admitted frame joins its session's pending list
// and the round-robin ring.
func (s *sim) arrive(e event) {
	ss := s.sess[e.sess]
	ed := s.edges[e.replica]
	if ed.dead || e.gen != ed.gen {
		// The uplink delivered into a dead socket: the frame was accepted
		// by the client before the kill, so it is migration loss, not a
		// client-side drop. The session itself has already re-placed.
		s.countMigrated(1)
		ss.outstanding--
		return
	}
	// Keyframe classification happens at admission in arrival order,
	// mirroring edge.Scheduler's decide-before-admission: even a frame the
	// queue then rejects has advanced the session's cache state.
	e.job.keyframe = s.decideKeyframe(ss)
	// Ring membership is decided before any shed mutates pending, exactly
	// like edge.Scheduler: a latest-wins shed can momentarily empty the
	// pending list without the session ever leaving the ring.
	inRing := len(ss.pending) > 0
	if ed.queued >= s.p.QueueDepth {
		if s.p.ShedPolicy == "latest-wins" && len(ss.pending) > 0 {
			// The shed frame's result will never come back, so its
			// outstanding slot frees immediately; if it was a decided
			// keyframe, the cache it would have refreshed is gone too.
			stale := ss.pending[0]
			ss.pending = ss.pending[1:]
			ed.queued--
			s.countShed()
			ss.outstanding--
			s.dropKeyframeFor(ss, stale.keyframe)
		} else {
			s.countRejected()
			ss.outstanding--
			s.dropKeyframeFor(ss, e.job.keyframe)
			return
		}
	}
	if !inRing {
		ed.ring = append(ed.ring, e.sess)
	}
	ss.pending = append(ss.pending, e.job)
	ed.queued++
	s.depths.Add(float64(ed.queued))
	s.dispatch(e.at, e.replica)
}

// dispatch feeds idle accelerators from the round-robin ring, exactly the
// discipline of edge.Scheduler.next: the front session gives up one
// request and rotates to the back while it still has pending work, so a
// backlogged session is served once per pass and can never be lapped by a
// churn of fresh sessions.
func (s *sim) dispatch(now float64, r int) {
	ed := s.edges[r]
	for ed.queued > 0 {
		accel := -1
		for i, idle := range ed.accelIdle {
			if idle {
				accel = i
				break
			}
		}
		if accel < 0 {
			return
		}
		if s.p.MaxBatch <= 1 {
			// Single-dequeue path, kept verbatim: the committed baselines
			// depend on the exact operation and RNG-draw order here.
			si := ed.ring[0]
			ed.ring = ed.ring[1:]
			ss := s.sess[si]
			j := ss.pending[0]
			ss.pending = ss.pending[1:]
			ed.queued--
			if len(ss.pending) > 0 {
				ed.ring = append(ed.ring, si)
			}
			s.waits.Add(now - j.arriveAt)
			inferMs := s.jobCost(j) * (1 + 0.08*math.Abs(s.edgeRng.NormFloat64()))
			ed.accelIdle[accel] = false
			ed.busyMs[accel] += inferMs
			s.push(event{at: now + inferMs, kind: evInferDone,
				replica: r, gen: ed.gen, accel: accel, batch: []*simJob{j}})
			continue
		}
		batch := s.gather(r, nil)
		if len(batch) < s.p.MaxBatch && s.p.BatchWindowMs > 0 {
			// Underfull: reserve the accelerator for one gather window;
			// frames arriving meanwhile top the batch up at flush time.
			ed.accelIdle[accel] = false
			ed.staged[accel] = batch
			s.push(event{at: now + s.p.BatchWindowMs, kind: evFlush,
				replica: r, gen: ed.gen, accel: accel})
			continue
		}
		s.launch(now, r, accel, batch)
	}
}

// gather forms one batch under the edge's discipline: the ring-front
// session's oldest job anchors the clip class (rotating to the back while it
// still has pending work), then one compatible job per ring session joins in
// ring order, up to MaxBatch. A non-nil seed batch is topped up instead —
// the flush path after a gather window.
func (s *sim) gather(r int, batch []*simJob) []*simJob {
	ed := s.edges[r]
	if len(batch) == 0 {
		si := ed.ring[0]
		ed.ring = ed.ring[1:]
		ss := s.sess[si]
		batch = append(batch, ss.pending[0])
		ss.pending = ss.pending[1:]
		ed.queued--
		if len(ss.pending) > 0 {
			ed.ring = append(ed.ring, si)
		}
	}
	// The anchor fixes both compatibility keys: clip class and keyframe
	// class (a full-backbone launch and a cache warp are different cost
	// shapes; with skip-compute off every job is a keyframe, so the test
	// reduces to the historical clip-only key).
	class := s.sess[batch[0].sess].clip.Name
	kf := batch[0].keyframe
	for i := 0; i < len(ed.ring) && len(batch) < s.p.MaxBatch; {
		si := ed.ring[i]
		ss := s.sess[si]
		if ss.clip.Name != class || ss.pending[0].keyframe != kf {
			i++
			continue
		}
		batch = append(batch, ss.pending[0])
		ss.pending = ss.pending[1:]
		ed.queued--
		if len(ss.pending) == 0 {
			ed.ring = append(ed.ring[:i], ed.ring[i+1:]...)
		} else {
			i++
		}
	}
	return batch
}

// launch starts one accelerator pass over a batch: per-job inference costs
// draw in batch order, the launch holds the accelerator for the amortized
// batch cost (segmodel.BatchMs), and every job in the batch completes
// together when the launch does.
func (s *sim) launch(now float64, r, accel int, batch []*simJob) {
	ed := s.edges[r]
	solos := make([]float64, len(batch))
	for i, j := range batch {
		s.waits.Add(now - j.arriveAt)
		solos[i] = s.jobCost(j) * (1 + 0.08*math.Abs(s.edgeRng.NormFloat64()))
	}
	batchMs := segmodel.BatchMs(solos)
	ed.accelIdle[accel] = false
	ed.busyMs[accel] += batchMs
	s.batches++
	s.batchJobs += len(batch)
	s.push(event{at: now + batchMs, kind: evInferDone,
		replica: r, gen: ed.gen, accel: accel, batch: batch})
}

// flush fires when a staged batch's gather window expires: top it up with
// whatever compatible work arrived during the window, then launch. A stale
// flush (the replica died during the window) resolves its staged frames
// into the migrated bucket instead.
func (s *sim) flush(e event) {
	ed := s.edges[e.replica]
	if ed.dead || e.gen != ed.gen {
		staged := ed.staged[e.accel]
		ed.staged[e.accel] = nil
		s.countMigrated(len(staged))
		for _, j := range staged {
			s.sess[j.sess].outstanding--
		}
		return
	}
	batch := ed.staged[e.accel]
	ed.staged[e.accel] = nil
	s.launch(e.at, e.replica, e.accel, s.gather(e.replica, batch))
}

// inferDone frees the accelerator, paces each completed result over its
// session's downlink in batch order and pulls the next work. A stale
// completion (the replica died mid-inference) never produces results: the
// batch migrates.
func (s *sim) inferDone(e event) {
	ed := s.edges[e.replica]
	if ed.dead || e.gen != ed.gen {
		s.countMigrated(len(e.batch))
		for _, j := range e.batch {
			s.sess[j.sess].outstanding--
		}
		return
	}
	ed.accelIdle[e.accel] = true
	for _, j := range e.batch {
		ss := s.sess[j.sess]
		downMs := ss.down.TransferMs(e.at, ss.clip.ResultBytes)
		s.push(event{at: e.at + downMs, kind: evDeliver, sess: j.sess, job: j})
	}
	s.dispatch(e.at, e.replica)
}

// kill handles a scheduled replica death: queued frames migrate-lose, the
// replica's sessions re-place among the survivors with invalidated feature
// caches (the cached pyramid died with the replica, so their next frame is
// a forced keyframe — the lost-keyframe invalidation rule applied to
// migration). Frames staged or on an accelerator migrate when their now-
// stale completion events pop; frames in uplink flight migrate on arrival.
func (s *sim) kill(e event) {
	ed := s.edges[e.replica]
	if ed.dead {
		return
	}
	ed.dead = true
	ed.gen++
	ed.ring = nil
	ed.queued = 0
	alive := s.alive()
	for i, ss := range s.sess {
		if ss.replica != e.replica {
			continue
		}
		s.countMigrated(len(ss.pending))
		ss.outstanding -= len(ss.pending)
		ss.pending = nil
		ss.kfValid = false
		if len(alive) == 0 {
			ss.replica = -1
			continue
		}
		ss.replica = s.p.PlaceSession(i, alive)
	}
}

// deliver records the served frame's end-to-end latency and its
// skip-compute cost shape.
func (s *sim) deliver(e event) {
	ss := s.sess[e.sess]
	ss.outstanding--
	s.countServed(ss)
	if s.p.SkipCompute() {
		if e.job.keyframe {
			s.countKeyframes(1)
		} else {
			s.countWarped(1)
		}
	}
	s.lat.Add(e.at - e.job.genAt)
}

// report assembles the SLO snapshot.
func (s *sim) report() *SLO {
	servedMin, servedMax := 0, 0
	for i, ss := range s.sess {
		if i == 0 || ss.served < servedMin {
			servedMin = ss.served
		}
		if i == 0 || ss.served > servedMax {
			servedMax = ss.served
		}
	}
	util, accels := 0.0, 0
	if s.maxAt > 0 {
		for _, ed := range s.edges {
			for _, b := range ed.busyMs {
				util += b / s.maxAt
				accels++
			}
		}
		util /= float64(accels)
	}
	meanBatch := 0.0
	if s.batches > 0 {
		meanBatch = float64(s.batchJobs) / float64(s.batches)
	}
	slo := &SLO{
		Profile:         s.p.Name,
		Target:          "sim",
		Seed:            s.p.Seed,
		Sessions:        s.p.Sessions,
		Accelerators:    s.p.Accelerators,
		QueueDepth:      s.p.QueueDepth,
		Offered:         s.offered,
		Served:          s.served,
		Rejected:        s.rejected,
		Shed:            s.shed,
		Dropped:         s.dropped,
		Migrated:        s.migrated,
		ConservationOK:  s.offered == s.served+s.rejected+s.shed+s.dropped+s.migrated,
		Batches:         s.batches,
		MeanBatchSize:   round3(meanBatch),
		KeyframesServed: s.keyframes,
		WarpedServed:    s.warped,
		KeyframeRate:    keyframeRate(s.keyframes, s.warped),
		LatMeanMs:       round3(s.lat.Mean()),
		LatP50Ms:        round3(s.lat.Quantile(0.50)),
		LatP95Ms:        round3(s.lat.Quantile(0.95)),
		LatP99Ms:        round3(s.lat.Quantile(0.99)),
		LatMaxMs:        round3(s.lat.Max()),
		WaitMeanMs:      round3(s.waits.Mean()),
		WaitP95Ms:       round3(s.waits.Quantile(0.95)),
		WaitMaxMs:       round3(s.waits.Max()),
		QueueMeanDepth:  round3(s.depths.Mean()),
		QueuePeakDepth:  int(s.depths.Max()),
		UtilizationMean: round3(util),
		ServedMin:       servedMin,
		ServedMax:       servedMax,
		FairnessSpread:  servedMax - servedMin,
		HorizonMs:       round3(s.maxAt),
	}
	// The replica count is reported only for sharded profiles: an explicit
	// Replicas=1 run is the single-edge simulator, byte-identical to the
	// pre-fleet reports (which carry no replicas field at all).
	if s.p.Sharded() {
		slo.Replicas = s.p.Replicas
	}
	return slo
}
