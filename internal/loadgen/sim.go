package loadgen

import (
	"container/heap"
	"math"
	"math/rand"

	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
)

// The in-process simulator: a virtual-time event queue over the whole
// fleet. It models the mobile side (per-session outstanding cap, uplink
// pacing), the edge admission discipline of edge.Scheduler (bounded queue,
// explicit reject, fair per-session round-robin dequeue onto the
// earliest-free accelerator) and the downlink delivery of results. Nothing
// reads the wall clock, so a run is a pure function of (Profile, Seed).

// evKind tags simulator events.
type evKind uint8

const (
	// evGen: a session generates one offload frame.
	evGen evKind = iota
	// evArrive: an uplinked frame reaches edge admission.
	evArrive
	// evInferDone: an accelerator finishes one inference.
	evInferDone
	// evDeliver: a result reaches the mobile (latency sample point).
	evDeliver
)

// event is one scheduled simulator step. seq breaks time ties in push
// order, so identical runs process events identically.
type event struct {
	at    float64
	seq   int64
	kind  evKind
	sess  int
	accel int
	job   *simJob
}

// simJob is one offloaded frame in flight.
type simJob struct {
	sess     int
	genAt    float64
	arriveAt float64
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// simSession is one synthetic mobile.
type simSession struct {
	clip ClipClass
	// arrivals is the session's precomputed generation schedule
	// (Profile.SessionArrivals) and nextGen indexes the next entry; the live
	// drivers replay the same schedule, so offered counts match across
	// targets.
	arrivals    []float64
	nextGen     int
	up, down    *netsim.Link
	outstanding int
	pending     []*simJob
	served      int
}

// sim is the run state.
type sim struct {
	p     Profile
	heap  eventHeap
	seq   int64
	sess  []*simSession
	maxAt float64

	// Edge state, mirroring edge.Scheduler: rotating ring of sessions with
	// pending work, queued count, per-accelerator busy horizon.
	ring      []int
	queued    int
	accelIdle []bool
	busyMs    []float64
	edgeRng   *rand.Rand

	offered, served, rejected, dropped int
	lat, waits, depths                 metrics.Dist
}

// Run executes the profile on the virtual-time simulator and returns its
// SLO report. Two calls with the same profile return identical reports.
func Run(p Profile) *SLO {
	p = p.withDefaults()
	s := &sim{
		p:         p,
		sess:      make([]*simSession, p.Sessions),
		accelIdle: make([]bool, p.Accelerators),
		busyMs:    make([]float64, p.Accelerators),
		edgeRng:   rand.New(rand.NewSource(p.Seed*7_369_131 + 17)),
	}
	for i := range s.accelIdle {
		s.accelIdle[i] = true
	}
	for i := 0; i < p.Sessions; i++ {
		s.sess[i] = &simSession{
			clip:     p.ClipFor(i),
			arrivals: p.SessionArrivals(i),
			up:       netsim.NewLink(p.LinkFor(i).NetProfile(), p.Seed+int64(i)*2+1),
			down:     netsim.NewLink(p.LinkFor(i).NetProfile(), p.Seed+int64(i)*2+2),
		}
		s.push(event{at: s.sess[i].arrivals[0], kind: evGen, sess: i})
	}

	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(event)
		if e.at > s.maxAt {
			s.maxAt = e.at
		}
		switch e.kind {
		case evGen:
			s.generate(e)
		case evArrive:
			s.arrive(e)
		case evInferDone:
			s.inferDone(e)
		case evDeliver:
			s.deliver(e)
		}
	}
	return s.report()
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
}

// generate handles one frame generation: client-side shed when the session
// is at its outstanding cap, otherwise uplink pacing toward the edge.
func (s *sim) generate(e event) {
	ss := s.sess[e.sess]
	s.offered++
	ss.nextGen++
	if ss.nextGen < len(ss.arrivals) {
		s.push(event{at: ss.arrivals[ss.nextGen], kind: evGen, sess: e.sess})
	}
	if ss.outstanding >= s.p.MaxOutstanding {
		s.dropped++
		return
	}
	ss.outstanding++
	upMs := ss.up.TransferMs(e.at, ss.clip.PayloadBytes)
	s.push(event{at: e.at + upMs, kind: evArrive, sess: e.sess,
		job: &simJob{sess: e.sess, genAt: e.at, arriveAt: e.at + upMs}})
}

// arrive handles edge admission: a full queue rejects explicitly, an
// admitted frame joins its session's pending list and the round-robin ring.
func (s *sim) arrive(e event) {
	ss := s.sess[e.sess]
	if s.queued >= s.p.QueueDepth {
		s.rejected++
		ss.outstanding--
		return
	}
	if len(ss.pending) == 0 {
		s.ring = append(s.ring, e.sess)
	}
	ss.pending = append(ss.pending, e.job)
	s.queued++
	s.depths.Add(float64(s.queued))
	s.dispatch(e.at)
}

// dispatch feeds idle accelerators from the round-robin ring, exactly the
// discipline of edge.Scheduler.next: the front session gives up one
// request and rotates to the back while it still has pending work, so a
// backlogged session is served once per pass and can never be lapped by a
// churn of fresh sessions.
func (s *sim) dispatch(now float64) {
	for s.queued > 0 {
		accel := -1
		for i, idle := range s.accelIdle {
			if idle {
				accel = i
				break
			}
		}
		if accel < 0 {
			return
		}
		si := s.ring[0]
		s.ring = s.ring[1:]
		ss := s.sess[si]
		j := ss.pending[0]
		ss.pending = ss.pending[1:]
		s.queued--
		if len(ss.pending) > 0 {
			s.ring = append(s.ring, si)
		}
		s.waits.Add(now - j.arriveAt)
		inferMs := ss.clip.InferMs * (1 + 0.08*math.Abs(s.edgeRng.NormFloat64()))
		s.accelIdle[accel] = false
		s.busyMs[accel] += inferMs
		s.push(event{at: now + inferMs, kind: evInferDone, sess: si, accel: accel, job: j})
	}
}

// inferDone frees the accelerator, paces the result over the session's
// downlink and pulls the next request.
func (s *sim) inferDone(e event) {
	ss := s.sess[e.sess]
	s.accelIdle[e.accel] = true
	downMs := ss.down.TransferMs(e.at, ss.clip.ResultBytes)
	s.push(event{at: e.at + downMs, kind: evDeliver, sess: e.sess, job: e.job})
	s.dispatch(e.at)
}

// deliver records the served frame's end-to-end latency.
func (s *sim) deliver(e event) {
	ss := s.sess[e.sess]
	ss.outstanding--
	ss.served++
	s.served++
	s.lat.Add(e.at - e.job.genAt)
}

// report assembles the SLO snapshot.
func (s *sim) report() *SLO {
	servedMin, servedMax := 0, 0
	for i, ss := range s.sess {
		if i == 0 || ss.served < servedMin {
			servedMin = ss.served
		}
		if i == 0 || ss.served > servedMax {
			servedMax = ss.served
		}
	}
	util := 0.0
	if s.maxAt > 0 {
		for _, b := range s.busyMs {
			util += b / s.maxAt
		}
		util /= float64(len(s.busyMs))
	}
	slo := &SLO{
		Profile:         s.p.Name,
		Target:          "sim",
		Seed:            s.p.Seed,
		Sessions:        s.p.Sessions,
		Accelerators:    s.p.Accelerators,
		QueueDepth:      s.p.QueueDepth,
		Offered:         s.offered,
		Served:          s.served,
		Rejected:        s.rejected,
		Dropped:         s.dropped,
		ConservationOK:  s.offered == s.served+s.rejected+s.dropped,
		LatMeanMs:       round3(s.lat.Mean()),
		LatP50Ms:        round3(s.lat.Quantile(0.50)),
		LatP95Ms:        round3(s.lat.Quantile(0.95)),
		LatP99Ms:        round3(s.lat.Quantile(0.99)),
		LatMaxMs:        round3(s.lat.Max()),
		WaitMeanMs:      round3(s.waits.Mean()),
		WaitP95Ms:       round3(s.waits.Quantile(0.95)),
		WaitMaxMs:       round3(s.waits.Max()),
		QueueMeanDepth:  round3(s.depths.Mean()),
		QueuePeakDepth:  int(s.depths.Max()),
		UtilizationMean: round3(util),
		ServedMin:       servedMin,
		ServedMax:       servedMax,
		FairnessSpread:  servedMax - servedMin,
		HorizonMs:       round3(s.maxAt),
	}
	return slo
}
