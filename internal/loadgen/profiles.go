package loadgen

import "fmt"

// Profiles returns the named workload suite — the profiles BENCH_serving.json
// commits and the CI smoke re-runs. Regimes are chosen deliberately:
//
//   - steady-light: under-provisioned load on one accelerator; the healthy
//     baseline every other profile is read against.
//   - burst-contention-x1 / -x4: the same heavily contended bursty fleet on
//     1 vs 4 accelerators; the pair that shows pooling improving tail
//     latency (p95) under contention.
//   - burst-batch-x4: burst-contention-x4 with the gather-window batch
//     former enabled (MaxBatch 4); read against -x4 it shows cross-session
//     batching converting contention into amortized launches.
//   - burst-shed-x1: burst-contention-x1 under the latest-wins admission
//     policy; read against -x1 it shows stale frames shed per session
//     instead of fresh frames rejected at the full queue.
//   - fleet-1k: 1000 concurrent sessions ramping up on 4 accelerators, the
//     scale demonstration.
//   - steady-scene-x2 / steady-scene-skip-x2: the same oversubscribed
//     steady street fleet on 2 accelerators, all-keyframe vs the feature
//     cache at KeyframeInterval 4; the pair that shows skip-compute
//     converting temporal redundancy into served throughput (read the
//     served counts and p50 against each other).
//   - ci-smoke: a seconds-scale contended profile for the blocking CI
//     determinism/conservation check.
//   - ci-smoke-skip: ci-smoke with the feature cache enabled, so the CI
//     smoke also pins skip-compute determinism and the keyframe partition
//     law (keyframes + warped == served).
//   - ci-smoke-fleet: the ci-smoke fleet sharded over 3 contended
//     replicas (FPS raised so each shard runs saturated) with one killed
//     mid-run, so the blocking CI also pins failover determinism and the
//     fleet conservation law (offered == served + rejected + shed +
//     dropped + migrated — a replica death loses zero frames silently).
//   - fleet-3x / fleet-3x-kill1 / fleet-solo-x6: the sharding arm. A
//     near-saturated steady street fleet on 3 replicas of 2 accelerators
//     (healthy, then with replica 1 killed at half-run) against one edge
//     with the equal aggregate worker pool (6 accelerators, 3x the
//     queue). Read kill1 against fleet-3x for the cost of a failure
//     (migrated frames, forced keyframes, survivors pushed into
//     overload) and fleet-3x against fleet-solo-x6 for the cost of
//     sharding itself (no cross-replica work stealing).
//   - tcp-smoke: a small wall-clock-friendly profile for the live targets
//     (scheduler, tcp); also run on sim for cross-target comparison.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "ci-smoke", Sessions: 32, Accelerators: 1, QueueDepth: 16,
			DurationMs: 3000, FPS: 2, Arrival: Steady, Seed: 1,
		},
		{
			Name: "ci-smoke-skip", Sessions: 32, Accelerators: 1, QueueDepth: 16,
			DurationMs: 3000, FPS: 2, Arrival: Steady, Seed: 1,
			KeyframeInterval: 4,
		},
		{
			Name: "steady-light", Sessions: 64, Accelerators: 4, QueueDepth: 32,
			DurationMs: 20000, FPS: 1, Arrival: Steady, Seed: 2,
		},
		{
			Name: "burst-contention-x1", Sessions: 256, Accelerators: 1, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Bursty, Seed: 3,
		},
		{
			Name: "burst-contention-x4", Sessions: 256, Accelerators: 4, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Bursty, Seed: 3,
		},
		{
			Name: "burst-batch-x4", Sessions: 256, Accelerators: 4, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Bursty, Seed: 3,
			MaxBatch: 4, BatchWindowMs: 2,
		},
		{
			Name: "burst-shed-x1", Sessions: 256, Accelerators: 1, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Bursty, Seed: 3,
			ShedPolicy: "latest-wins",
		},
		{
			Name: "fleet-1k", Sessions: 1000, Accelerators: 4, QueueDepth: 64,
			DurationMs: 20000, FPS: 0.5, Arrival: Ramp, RampFactor: 6, Seed: 4,
		},
		{
			Name: "steady-scene-x2", Sessions: 96, Accelerators: 2, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Steady, Seed: 6,
			Clips: []ClipClass{ClipStreet},
		},
		{
			Name: "steady-scene-skip-x2", Sessions: 96, Accelerators: 2, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Steady, Seed: 6,
			Clips:            []ClipClass{ClipStreet},
			KeyframeInterval: 4,
		},
		{
			Name: "ci-smoke-fleet", Sessions: 32, Accelerators: 1, QueueDepth: 16,
			DurationMs: 3000, FPS: 6, Arrival: Steady, Seed: 1,
			KeyframeInterval: 4, Replicas: 3,
			Kills: []ReplicaKill{{Replica: 1, AtMs: 1500}},
		},
		{
			Name: "fleet-3x", Sessions: 240, Accelerators: 2, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Steady, Seed: 8,
			Clips: []ClipClass{ClipStreet}, KeyframeInterval: 4, Replicas: 3,
		},
		{
			Name: "fleet-3x-kill1", Sessions: 240, Accelerators: 2, QueueDepth: 32,
			DurationMs: 15000, FPS: 1, Arrival: Steady, Seed: 8,
			Clips: []ClipClass{ClipStreet}, KeyframeInterval: 4, Replicas: 3,
			Kills: []ReplicaKill{{Replica: 1, AtMs: 7500}},
		},
		{
			Name: "fleet-solo-x6", Sessions: 240, Accelerators: 6, QueueDepth: 96,
			DurationMs: 15000, FPS: 1, Arrival: Steady, Seed: 8,
			Clips: []ClipClass{ClipStreet}, KeyframeInterval: 4,
		},
		{
			Name: "tcp-smoke", Sessions: 12, Accelerators: 2, QueueDepth: 8,
			DurationMs: 1500, FPS: 6, Arrival: Steady, Seed: 5,
		},
	}
}

// ProfileByName looks a profile up in the named suite.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("loadgen: unknown profile %q (try -list)", name)
}
