package loadgen

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// testRng builds a seeded generator for arrival-process tests.
func testRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestRunDeterministic is the baseline property BENCH_serving.json relies
// on: two consecutive runs of the same profile produce byte-identical SLO
// reports — identical counts and identical quantiles.
func TestRunDeterministic(t *testing.T) {
	p, err := ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	a, b := Run(p), Run(p)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two runs of %s differ:\n%s\n%s", p.Name, ja, jb)
	}
	if a.Served == 0 {
		t.Fatal("smoke profile served nothing")
	}
}

// TestRunConservationAcrossSuite pins the no-silent-loss law on every named
// profile: offered == served + rejected + dropped, with nothing negative.
func TestRunConservationAcrossSuite(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if testing.Short() && p.Sessions > 300 {
				t.Skip("large fleet profile skipped in -short")
			}
			slo := Run(p)
			if err := slo.Check(); err != nil {
				t.Fatal(err)
			}
			if slo.Offered == 0 || slo.Served == 0 {
				t.Fatalf("%s: degenerate run: %+v", p.Name, slo)
			}
		})
	}
}

// TestRunThousandSessions is the scale demonstration: >=1000 concurrent
// sessions complete against the in-process target with exact accounting.
func TestRunThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale run skipped in -short")
	}
	p, err := ProfileByName("fleet-1k")
	if err != nil {
		t.Fatal(err)
	}
	if p.Sessions < 1000 {
		t.Fatalf("fleet profile has %d sessions, want >= 1000", p.Sessions)
	}
	slo := Run(p)
	if err := slo.Check(); err != nil {
		t.Fatal(err)
	}
	if slo.Offered < p.Sessions {
		t.Errorf("offered %d < %d sessions", slo.Offered, p.Sessions)
	}
	// The fleet oversubscribes 4 accelerators on purpose; the report must
	// still show real service and explicit shedding, never silent loss.
	if slo.Served == 0 || slo.Rejected+slo.Dropped == 0 {
		t.Errorf("oversubscribed fleet: served=%d rejected=%d dropped=%d", slo.Served, slo.Rejected, slo.Dropped)
	}
	t.Logf("fleet-1k: %s", slo)
}

// TestMoreAcceleratorsImproveTailLatency pins the scheduler-lever story:
// on the contention-bound profile, going 1 -> 4 accelerators must improve
// reported p95 offload latency and serve at least as many frames.
func TestMoreAcceleratorsImproveTailLatency(t *testing.T) {
	one, err := ProfileByName("burst-contention-x1")
	if err != nil {
		t.Fatal(err)
	}
	four, err := ProfileByName("burst-contention-x4")
	if err != nil {
		t.Fatal(err)
	}
	if one.Accelerators != 1 || four.Accelerators != 4 || one.Seed != four.Seed {
		t.Fatalf("contention pair misconfigured: %+v vs %+v", one, four)
	}
	a, b := Run(one), Run(four)
	t.Logf("x1: p95=%.1fms served=%d; x4: p95=%.1fms served=%d", a.LatP95Ms, a.Served, b.LatP95Ms, b.Served)
	if b.LatP95Ms >= a.LatP95Ms {
		t.Errorf("4 accelerators did not improve p95: %0.1f -> %0.1f ms", a.LatP95Ms, b.LatP95Ms)
	}
	if b.Served < a.Served {
		t.Errorf("4 accelerators served fewer frames: %d -> %d", a.Served, b.Served)
	}
}

// TestBatchingImprovesThroughputInSim reads the batch arm against its
// single-dequeue twin: with the gather-window former enabled, the same
// contended fleet on the same seed must form real multi-frame launches and
// convert the amortization into strictly more served frames at no worse
// tail latency.
func TestBatchingImprovesThroughputInSim(t *testing.T) {
	single, err := ProfileByName("burst-contention-x4")
	if err != nil {
		t.Fatal(err)
	}
	batched, err := ProfileByName("burst-batch-x4")
	if err != nil {
		t.Fatal(err)
	}
	if batched.MaxBatch <= 1 || batched.Seed != single.Seed || batched.Accelerators != single.Accelerators {
		t.Fatalf("batch pair misconfigured: %+v vs %+v", single, batched)
	}
	a, b := Run(single), Run(batched)
	t.Logf("single: served=%d p95=%.1f; batched: served=%d p95=%.1f batches=%d mean=%.2f",
		a.Served, a.LatP95Ms, b.Served, b.LatP95Ms, b.Batches, b.MeanBatchSize)
	if a.Batches != 0 || a.Shed != 0 {
		t.Errorf("single-dequeue arm must report no batches or sheds: %+v", a)
	}
	if b.Batches == 0 || b.MeanBatchSize <= 1.5 {
		t.Errorf("batch former idle: %d batches, mean size %.2f", b.Batches, b.MeanBatchSize)
	}
	if b.Served <= a.Served {
		t.Errorf("batching did not raise throughput: served %d -> %d", a.Served, b.Served)
	}
	if b.LatP95Ms > a.LatP95Ms {
		t.Errorf("batching worsened p95: %.1f -> %.1f ms", a.LatP95Ms, b.LatP95Ms)
	}
}

// TestLatestWinsServesFresherFramesInSim reads the shed arm against its
// reject twin: latest-wins must actually shed (stale frames displaced by
// their own session's fresh ones) and the frames it does serve must be
// fresher — lower median end-to-end latency — than under reject-when-full,
// which serves the oldest queued frames to completion.
func TestLatestWinsServesFresherFramesInSim(t *testing.T) {
	reject, err := ProfileByName("burst-contention-x1")
	if err != nil {
		t.Fatal(err)
	}
	shed, err := ProfileByName("burst-shed-x1")
	if err != nil {
		t.Fatal(err)
	}
	if shed.ShedPolicy != "latest-wins" || shed.Seed != reject.Seed {
		t.Fatalf("shed pair misconfigured: %+v vs %+v", reject, shed)
	}
	a, b := Run(reject), Run(shed)
	t.Logf("reject: served=%d p50=%.1f; latest-wins: served=%d shed=%d p50=%.1f",
		a.Served, a.LatP50Ms, b.Served, b.Shed, b.LatP50Ms)
	if a.Shed != 0 {
		t.Errorf("reject arm must not shed, got %d", a.Shed)
	}
	if b.Shed == 0 {
		t.Error("latest-wins arm shed nothing under sustained contention")
	}
	if b.LatP50Ms >= a.LatP50Ms {
		t.Errorf("latest-wins did not serve fresher frames: p50 %.1f -> %.1f ms", a.LatP50Ms, b.LatP50Ms)
	}
}

// TestRoundRobinKeepsFairSpreadInSim checks the fairness surface of the
// report on a symmetric steady fleet: with identical sessions, round-robin
// dequeue keeps the served-count spread small relative to the per-session
// served mean.
func TestRoundRobinKeepsFairSpreadInSim(t *testing.T) {
	p := Profile{
		Name: "fair", Sessions: 40, Accelerators: 2, QueueDepth: 16,
		DurationMs: 8000, FPS: 2, Arrival: Steady, Seed: 11,
		Links: []LinkShape{Fast}, Clips: []ClipClass{ClipIndoor},
	}
	slo := Run(p)
	if err := slo.Check(); err != nil {
		t.Fatal(err)
	}
	if slo.ServedMin == 0 {
		t.Fatal("symmetric fleet starved a session")
	}
	mean := float64(slo.Served) / float64(p.Sessions)
	if spread := float64(slo.FairnessSpread); spread > mean {
		t.Errorf("served spread %v exceeds per-session mean %v (min %d max %d)",
			spread, mean, slo.ServedMin, slo.ServedMax)
	}
}

// TestArrivalProcessShapes pins the three arrival generators' shapes.
func TestArrivalProcessShapes(t *testing.T) {
	base := Profile{FPS: 2, DurationMs: 10000}.withDefaults()

	steady := newArrivalGen(base, testRng(1))
	if iv := steady.next(0); iv != 500 {
		t.Errorf("steady interval = %v, want 500", iv)
	}

	b := base
	b.Arrival = Bursty
	bursty := newArrivalGen(b, testRng(2))
	var gaps, dense int
	now := 0.0
	for i := 0; i < 64; i++ {
		iv := bursty.next(now)
		now += iv
		if iv > b.BurstGapMs/4 {
			gaps++
		} else if iv == 125 { // periodMs/4
			dense++
		}
	}
	if gaps == 0 || dense == 0 {
		t.Errorf("bursty produced gaps=%d dense=%d, want both > 0", gaps, dense)
	}

	r := base
	r.Arrival = Ramp
	r.RampFactor = 5
	ramp := newArrivalGen(r, testRng(3))
	early := ramp.next(0)
	late := ramp.next(r.DurationMs)
	if late >= early {
		t.Errorf("ramp intervals must shrink: early %v late %v", early, late)
	}
	if want := 500.0 / 5; late != want {
		t.Errorf("ramp final interval = %v, want %v", late, want)
	}
}

// TestLinkShapesMapToProfiles checks every named shape resolves and that
// the shapes are ordered as advertised (fast < slow in base RTT, lossy the
// lossiest).
func TestLinkShapesMapToProfiles(t *testing.T) {
	fast, slow, lossy := Fast.NetProfile(), Slow.NetProfile(), Lossy.NetProfile()
	if fast.BaseRTTMs >= slow.BaseRTTMs {
		t.Errorf("fast RTT %v >= slow RTT %v", fast.BaseRTTMs, slow.BaseRTTMs)
	}
	if lossy.LossRate <= fast.LossRate || lossy.LossRate <= slow.LossRate {
		t.Errorf("lossy loss rate %v not the highest", lossy.LossRate)
	}
}

// TestProfileByNameUnknown returns a useful error.
func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile must error")
	}
}
