package loadgen

import (
	"encoding/json"
	"testing"
)

// TestFleetSimDeterministic: the sharded simulator with a mid-run replica
// kill is still a pure function of (profile, seed) — the failover golden
// property BENCH_serving.json relies on for the fleet rows.
func TestFleetSimDeterministic(t *testing.T) {
	p, err := ProfileByName("ci-smoke-fleet")
	if err != nil {
		t.Fatal(err)
	}
	a, b := Run(p), Run(p)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two runs of %s differ:\n%s\n%s", p.Name, ja, jb)
	}
	if a.Replicas != 3 {
		t.Errorf("replicas = %d, want 3", a.Replicas)
	}
	if a.Migrated == 0 {
		t.Error("a mid-run replica kill migrated no frames; the kill never bit")
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetSingleReplicaByteIdentical: Replicas=1 (failover structurally
// impossible) must byte-reproduce the pre-fleet single-edge report,
// including the absence of every fleet field from the JSON — the
// acceptance gate that sharding cost nothing when unused.
func TestFleetSingleReplicaByteIdentical(t *testing.T) {
	base, err := ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	solo := base
	solo.Replicas = 1
	ja, _ := json.Marshal(Run(base))
	jb, _ := json.Marshal(Run(solo))
	if string(ja) != string(jb) {
		t.Fatalf("Replicas=1 diverged from the single-edge simulator:\n%s\n%s", ja, jb)
	}
}

// TestFleetKillLosesNoFrameSilently reads the kill arm against its healthy
// twin: the kill must cost real frames — all accounted in Migrated — and
// must raise the keyframe rate (every migrated session's first frame on
// its new replica is a forced keyframe, the cache having died with the old
// one).
func TestFleetKillLosesNoFrameSilently(t *testing.T) {
	healthy, err := ProfileByName("fleet-3x")
	if err != nil {
		t.Fatal(err)
	}
	killed, err := ProfileByName("fleet-3x-kill1")
	if err != nil {
		t.Fatal(err)
	}
	if killed.Seed != healthy.Seed || len(killed.Kills) != 1 {
		t.Fatalf("fleet pair misconfigured: %+v vs %+v", healthy, killed)
	}
	a, b := Run(healthy), Run(killed)
	t.Logf("healthy: %s", a)
	t.Logf("killed:  %s", b)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	if a.Migrated != 0 {
		t.Errorf("healthy fleet migrated %d frames", a.Migrated)
	}
	if b.Migrated == 0 {
		t.Error("killed fleet migrated nothing; the kill never bit")
	}
	if b.Served >= a.Served {
		t.Errorf("losing a third of the fleet did not cost served throughput: %d -> %d",
			a.Served, b.Served)
	}
	if b.KeyframeRate <= a.KeyframeRate {
		t.Errorf("migration did not force keyframes: rate %.3f -> %.3f",
			a.KeyframeRate, b.KeyframeRate)
	}
}

// TestPlaceSessionMinimalDisruption: the profile-level placement helper
// inherits rendezvous hashing's property that a replica death only remaps
// the sessions it owned.
func TestPlaceSessionMinimalDisruption(t *testing.T) {
	p := Profile{Name: "place", Sessions: 60, Replicas: 3}
	all := []int{0, 1, 2}
	survivors := []int{0, 2}
	moved := 0
	for i := 0; i < p.Sessions; i++ {
		before := p.PlaceSession(i, all)
		after := p.PlaceSession(i, survivors)
		if before != 1 {
			if after != before {
				t.Fatalf("session %d moved %d -> %d though its replica survived", i, before, after)
			}
			continue
		}
		moved++
		if after == 1 {
			t.Fatalf("session %d placed on the dead replica", i)
		}
	}
	if moved == 0 {
		t.Fatal("no session was owned by the killed replica; test proves nothing")
	}
	if p.PlaceSession(0, nil) != -1 {
		t.Error("placement with no alive replicas must return -1")
	}
}

// TestFleetTotalLossDropsClientSide: killing every replica leaves the
// surviving frames with nowhere to go; they must drain into the dropped
// (client-side) bucket with conservation intact, not hang or vanish.
func TestFleetTotalLossDropsClientSide(t *testing.T) {
	p := Profile{
		Name: "apocalypse", Sessions: 8, Accelerators: 1, QueueDepth: 8,
		DurationMs: 2000, FPS: 4, Arrival: Steady, Seed: 13, Replicas: 2,
		Kills: []ReplicaKill{{Replica: 0, AtMs: 900}, {Replica: 1, AtMs: 900}},
	}
	slo := Run(p)
	if err := slo.Check(); err != nil {
		t.Fatal(err)
	}
	if slo.Served == 0 {
		t.Error("nothing served before the fleet died")
	}
	if slo.Dropped == 0 {
		t.Error("post-apocalypse frames must drop client-side")
	}
	if slo.Migrated == 0 {
		t.Error("frames in flight at the kill must migrate-lose")
	}
}
