//go:build !race

package drive

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
