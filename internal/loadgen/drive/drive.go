// Package drive replays loadgen profiles against the real serving stack on
// the wall clock: RunScheduler paces the fleet into an in-process
// edge.Scheduler, RunTCP pushes the same frames through transport.Client
// sockets into a transport.Server. Both replay the exact generation schedule
// of the virtual-time simulator (Profile.SessionArrivals), honour the
// profile's admission and dequeue policies (latest-wins shedding, the
// gather-window batch former), classify every offered frame into served /
// rejected / shed / dropped, and reconcile their own accounting against the
// serving layer's counters — the wall-clock half of the no-silent-loss law.
// Latency figures here include host scheduling jitter; the deterministic
// numbers live in the simulator (loadgen.Run).
package drive

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"edgeis/internal/edge"
	"edgeis/internal/loadgen"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

// Options tunes a wall-clock run.
type Options struct {
	// TimeScale stretches the profile's schedule: one virtual ms of
	// generation time takes TimeScale wall ms. Below 1 compresses a long
	// profile into a short wall run; 0 means 1 (real time).
	TimeScale float64
	// Occupancy is how long one inference holds its accelerator, as a
	// fraction of the clip's nominal InferMs (scheduler target) or of the
	// model's reported latency (TCP target) in wall time. 0 means
	// DefaultOccupancy; contention — queue growth, rejects — only appears
	// when this is big enough that offered load exceeds pool capacity.
	Occupancy float64
	// DrainTimeout bounds the wait for in-flight offloads after the
	// generation horizon (TCP target); offloads still unresolved at the
	// deadline are counted dropped. 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Addr points the TCP target at an already-running server ("host:port").
	// Empty starts an in-process transport.Server on a loopback socket; only
	// then can the run reconcile against server-side counters.
	Addr string
}

// Default Options values.
const (
	DefaultOccupancy    = 0.25
	DefaultDrainTimeout = 5 * time.Second
)

func (o Options) withDefaults() Options {
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.Occupancy <= 0 {
		o.Occupancy = DefaultOccupancy
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	return o
}

// agg accumulates fleet-wide accounting from the session goroutines.
type agg struct {
	mu                                       sync.Mutex
	offered, served, rejected, shed, dropped int
	// migrated counts frames lost in flight to a replica kill under a
	// sharded profile; zero on the single-edge targets.
	migrated int
	servedBy []int
	lat      metrics.Dist
}

// noteServed, noteRejected, noteShed, noteDropped and absorb are the
// audited mutators for the driver's fleet accounting: every outcome a
// session goroutine observes moves through exactly one of them, which is
// what lets the post-run reconciliation against the scheduler's (or
// server's) own counters treat any difference as a real loss. They take
// a.mu internally, so callers must not hold it — or any other lock.

func (a *agg) noteServed(sess int, latMs float64) {
	a.mu.Lock()
	a.served++
	a.servedBy[sess]++
	a.lat.Add(latMs)
	a.mu.Unlock()
}

func (a *agg) noteRejected() {
	a.mu.Lock()
	a.rejected++
	a.mu.Unlock()
}

func (a *agg) noteShed() {
	a.mu.Lock()
	a.shed++
	a.mu.Unlock()
}

func (a *agg) noteDropped() {
	a.mu.Lock()
	a.dropped++
	a.mu.Unlock()
}

func (a *agg) noteMigrated(n int) {
	a.mu.Lock()
	a.migrated += n
	a.mu.Unlock()
}

// absorb folds a session goroutine's local tallies into the fleet totals
// when the session finishes.
func (a *agg) absorb(offered, rejected, shed, dropped int) {
	a.mu.Lock()
	a.offered += offered
	a.rejected += rejected
	a.shed += shed
	a.dropped += dropped
	a.mu.Unlock()
}

// fairness returns the per-session served extremes.
func (a *agg) fairness() (min, max int) {
	for i, n := range a.servedBy {
		if i == 0 || n < min {
			min = n
		}
		if i == 0 || n > max {
			max = n
		}
	}
	return min, max
}

// sleepUntil parks the goroutine until virtual time virtMs on the run's
// scaled wall clock.
func sleepUntil(start time.Time, virtMs, scale float64) {
	d := time.Until(start.Add(time.Duration(virtMs * scale * float64(time.Millisecond))))
	if d > 0 {
		time.Sleep(d)
	}
}

// msSince is wall milliseconds since start.
func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// clipAccelerator is the scheduler target's accelerator: it holds the
// worker for a fraction of the session clip's nominal inference latency.
// The session index rides in Input.Seed.
type clipAccelerator struct {
	p     loadgen.Profile
	scale float64
	frac  float64
}

func (a *clipAccelerator) soloMs(in segmodel.Input) float64 {
	return a.p.ClipFor(int(in.Seed)).InferMs
}

func (a *clipAccelerator) Run(in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64) {
	inferMs := a.soloMs(in)
	time.Sleep(time.Duration(inferMs * a.frac * a.scale * float64(time.Millisecond)))
	return nil, inferMs
}

// RunBatch implements edge.BatchAccelerator: one gathered launch holds the
// worker for the amortized batch cost instead of the serial sum, which is
// what lets the batch former show up as wall-clock throughput here.
func (a *clipAccelerator) RunBatch(ins []segmodel.Input, gs []segmodel.Guidance) ([]*segmodel.Result, float64) {
	solos := make([]float64, len(ins))
	for i, in := range ins {
		solos[i] = a.soloMs(in)
	}
	launchMs := segmodel.BatchMs(solos)
	time.Sleep(time.Duration(launchMs * a.frac * a.scale * float64(time.Millisecond)))
	return make([]*segmodel.Result, len(ins)), launchMs
}

// warpMs is the cost of one job under its keyframe decision: keyframes pay
// the clip's full inference latency, non-keyframes its warp latency.
func (a *clipAccelerator) warpMs(in segmodel.Input, d segmodel.KeyframeDecision) float64 {
	if d.Keyframe {
		return a.soloMs(in)
	}
	return a.p.ClipFor(int(in.Seed)).WarpMs
}

// RunWarped implements edge.WarpAccelerator: a non-keyframe holds the
// worker for the clip's warp cost, which is where skip-compute buys
// wall-clock throughput on this target.
func (a *clipAccelerator) RunWarped(in segmodel.Input, g segmodel.Guidance, d segmodel.KeyframeDecision) (*segmodel.Result, float64) {
	inferMs := a.warpMs(in, d)
	time.Sleep(time.Duration(inferMs * a.frac * a.scale * float64(time.Millisecond)))
	return nil, inferMs
}

// RunWarpedBatch implements edge.WarpAccelerator for gathered launches.
func (a *clipAccelerator) RunWarpedBatch(ins []segmodel.Input, gs []segmodel.Guidance, ds []segmodel.KeyframeDecision) ([]*segmodel.Result, float64) {
	solos := make([]float64, len(ins))
	for i, in := range ins {
		solos[i] = a.warpMs(in, ds[i])
	}
	launchMs := segmodel.BatchMs(solos)
	time.Sleep(time.Duration(launchMs * a.frac * a.scale * float64(time.Millisecond)))
	return make([]*segmodel.Result, len(ins)), launchMs
}

// policies resolves the profile's admission and dequeue policies onto edge
// types; the gather window stretches with the run's TimeScale just like the
// generation schedule does.
func policies(p loadgen.Profile, o Options) (edge.AdmissionPolicy, edge.DequeuePolicy, error) {
	admission, err := edge.AdmissionPolicyByName(p.ShedPolicy)
	if err != nil {
		return nil, nil, err
	}
	var dequeue edge.DequeuePolicy
	if p.MaxBatch > 1 {
		dequeue = edge.GatherBatch{
			Max:          p.MaxBatch,
			GatherWindow: time.Duration(p.BatchWindowMs * o.TimeScale * float64(time.Millisecond)),
		}
	}
	return admission, dequeue, nil
}

// RunScheduler replays the profile against a real edge.Scheduler in
// process: one goroutine per session paces the generation schedule, sheds at
// the outstanding cap, models the uplink with netsim pacing and classifies
// every Infer outcome. The returned SLO's accounting is reconciled against
// the scheduler's own counters; any mismatch is an error.
func RunScheduler(p loadgen.Profile, opts Options) (*loadgen.SLO, error) {
	p = p.Normalized()
	o := opts.withDefaults()
	if p.Sharded() {
		return runSchedulerFleet(p, o)
	}
	admission, dequeue, err := policies(p, o)
	if err != nil {
		return nil, err
	}
	sched := edge.NewScheduler(edge.Config{
		Workers:    p.Accelerators,
		QueueDepth: p.QueueDepth,
		Admission:  admission,
		Dequeue:    dequeue,
		Keyframe:   p.KeyframePolicy(),
		NewAccelerator: func(int) edge.Accelerator {
			return &clipAccelerator{p: p, scale: o.TimeScale, frac: o.Occupancy}
		},
	})

	a := &agg{servedBy: make([]int, p.Sessions)}
	start := time.Now()
	var fleet sync.WaitGroup
	for i := 0; i < p.Sessions; i++ {
		fleet.Add(1)
		go func(i int) {
			defer fleet.Done()
			sess := sched.NewSession(fmt.Sprintf("loadgen-%04d", i))
			defer sess.Close()
			clip := p.ClipFor(i)
			up := netsim.NewLink(p.LinkFor(i).NetProfile(), p.Seed+int64(i)*2+1)
			var outstanding, dropped, offered int
			var reqs sync.WaitGroup
			var mu sync.Mutex // outstanding, decremented from request goroutines
			for _, genAt := range p.SessionArrivals(i) {
				sleepUntil(start, genAt, o.TimeScale)
				offered++
				mu.Lock()
				atCap := outstanding >= p.MaxOutstanding
				if !atCap {
					outstanding++
				}
				mu.Unlock()
				if atCap {
					dropped++
					continue
				}
				upMs := up.TransferMs(genAt, clip.PayloadBytes)
				reqs.Add(1)
				go func(genAt, upMs float64) {
					defer reqs.Done()
					sleepUntil(start, genAt+upMs, o.TimeScale)
					// Each clip class gets its own input width so the batch
					// former's shape-compatibility key (edge.BatchClass)
					// separates clips here exactly as it would separate real
					// resolutions.
					in := segmodel.Input{Width: 64 + 16*(i%len(p.Clips)), Height: 48, Seed: int64(i)}
					_, _, err := sess.Infer(in, nil)
					doneMs := msSince(start)
					switch {
					case err == nil:
						a.noteServed(i, doneMs-genAt*o.TimeScale)
					case errors.Is(err, edge.ErrQueueFull):
						a.noteRejected()
					case errors.Is(err, edge.ErrShed):
						a.noteShed()
					default:
						a.noteDropped() // teardown cancellation
					}
					mu.Lock()
					outstanding--
					mu.Unlock()
				}(genAt, upMs)
			}
			reqs.Wait()
			a.absorb(offered, 0, 0, dropped)
		}(i)
	}
	fleet.Wait()
	horizon := msSince(start)
	st := sched.Stats()
	if err := sched.Close(); err != nil {
		return nil, err
	}

	if st.Served != a.served || st.Rejected != a.rejected || st.Shed != a.shed || st.Cancelled != 0 {
		return nil, fmt.Errorf("drive scheduler: accounting mismatch: driver served/rejected/shed %d/%d/%d, scheduler served/rejected/shed/cancelled %d/%d/%d/%d",
			a.served, a.rejected, a.shed, st.Served, st.Rejected, st.Shed, st.Cancelled)
	}
	// Skip-compute partition law, reconciled against the scheduler's own
	// counters: with the feature cache on, every served frame is exactly one
	// of keyframe or warped.
	if p.SkipCompute() && st.KeyframesServed+st.WarpedServed != st.Served {
		return nil, fmt.Errorf("drive scheduler: keyframe partition violated: keyframes %d + warped %d != served %d",
			st.KeyframesServed, st.WarpedServed, st.Served)
	}
	slo := newSLO(p, "scheduler", a, horizon)
	slo.WaitMeanMs = round3(st.MeanWaitMs)
	slo.WaitP95Ms = round3(st.P95WaitMs)
	slo.WaitMaxMs = round3(st.MaxWaitMs)
	slo.QueueMeanDepth = round3(st.MeanQueueDepth)
	slo.QueuePeakDepth = st.PeakQueueDepth
	slo.Batches = st.Batches
	slo.MeanBatchSize = round3(st.MeanBatchSize)
	slo.KeyframesServed = st.KeyframesServed
	slo.WarpedServed = st.WarpedServed
	slo.KeyframeRate = keyframeRate(st.KeyframesServed, st.WarpedServed)
	return slo, nil
}

// RunTCP replays the profile over real sockets: one transport.Client per
// session against a transport.Server (in-process on loopback unless
// Options.Addr points elsewhere). Accounting is client-side — results and
// admission rejects come back over the wire — and offloads still unresolved
// DrainTimeout after the horizon are counted dropped, so the conservation
// law holds even across a teardown.
func RunTCP(p loadgen.Profile, opts Options) (*loadgen.SLO, error) {
	p = p.Normalized()
	o := opts.withDefaults()
	if p.Sharded() {
		return runTCPFleet(p, o)
	}

	admission, dequeue, err := policies(p, o)
	if err != nil {
		return nil, err
	}
	addr := o.Addr
	var srv *transport.Server
	if addr == "" {
		srvOpts := []transport.ServerOption{
			transport.WithAccelerators(p.Accelerators),
			transport.WithQueueDepth(p.QueueDepth),
			transport.WithWallOccupancy(o.Occupancy * o.TimeScale),
			transport.WithAdmissionPolicy(admission),
		}
		if dequeue != nil {
			srvOpts = append(srvOpts, transport.WithDequeuePolicy(dequeue))
		}
		if p.SkipCompute() {
			srvOpts = append(srvOpts, transport.WithKeyframePolicy(p.KeyframePolicy()))
		}
		srv = transport.NewServer(segmodel.New(segmodel.YOLOv3), srvOpts...)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		addr = bound.String()
	}

	a := &agg{servedBy: make([]int, p.Sessions)}
	start := time.Now()
	var fleet sync.WaitGroup
	dialErrs := make([]error, p.Sessions)
	for i := 0; i < p.Sessions; i++ {
		fleet.Add(1)
		go func(i int) {
			defer fleet.Done()
			c, err := transport.DialRetry(addr, 2*time.Second, 5, 50*time.Millisecond)
			if err != nil {
				dialErrs[i] = err
				return
			}
			defer c.Close()
			clip := p.ClipFor(i)

			// sendAt maps in-flight frame indexes to their send time for the
			// latency sample; the reader goroutine resolves them.
			var mu sync.Mutex
			sendAt := make(map[int32]float64)
			served := 0
			var readers sync.WaitGroup
			readers.Add(1)
			go func() {
				defer readers.Done()
				for res := range c.Results() {
					mu.Lock()
					at, ok := sendAt[res.FrameIndex]
					if ok {
						delete(sendAt, res.FrameIndex)
						served++
					}
					mu.Unlock()
					// The fleet mutator takes a.mu itself, so it runs
					// outside this session's map lock.
					if ok {
						a.noteServed(i, msSince(start)-at)
					}
				}
			}()

			sent, dropped, offered := 0, 0, 0
			for k, genAt := range p.SessionArrivals(i) {
				sleepUntil(start, genAt, o.TimeScale)
				offered++
				// Outstanding = accepted sends not yet resolved by a result,
				// a wire-level reject or a shed notice; at the cap the
				// client sheds.
				mu.Lock()
				outstanding := sent - served - c.Rejected() - c.Shed()
				mu.Unlock()
				if outstanding >= p.MaxOutstanding {
					dropped++
					continue
				}
				idx := int32(k)
				mu.Lock()
				sendAt[idx] = msSince(start)
				mu.Unlock()
				// Per-clip width, mirroring the scheduler target: the batch
				// former only co-batches frames of one shape class.
				ok := c.Send(&transport.FrameMsg{
					FrameIndex:   idx,
					Width:        int32(64 + 16*(i%len(p.Clips))),
					Height:       48,
					Seed:         int64(i)*1_000_003 + int64(k),
					PaddingBytes: int32(clip.PayloadBytes),
				})
				if !ok {
					// Client-side send queue full: shed like a real mobile.
					mu.Lock()
					delete(sendAt, idx)
					mu.Unlock()
					dropped++
					continue
				}
				sent++
			}

			// Drain: every accepted send must resolve into a result, a
			// reject or a shed; stragglers past the deadline are counted
			// dropped.
			deadline := time.Now().Add(o.DrainTimeout)
			for time.Now().Before(deadline) {
				mu.Lock()
				resolved := served + c.Rejected() + c.Shed()
				mu.Unlock()
				if resolved >= sent {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			c.Close()
			readers.Wait()

			mu.Lock()
			rejected, shed := c.Rejected(), c.Shed()
			lost := sent - served - rejected - shed
			mu.Unlock()
			if lost < 0 {
				lost = 0
			}
			a.absorb(offered, rejected, shed, dropped+lost)
		}(i)
	}
	fleet.Wait()
	horizon := msSince(start)
	for _, err := range dialErrs {
		if err != nil {
			return nil, err
		}
	}

	slo := newSLO(p, "tcp", a, horizon)
	if srv != nil {
		st := srv.Scheduler().Stats()
		slo.WaitMeanMs = round3(st.MeanWaitMs)
		slo.WaitP95Ms = round3(st.P95WaitMs)
		slo.WaitMaxMs = round3(st.MaxWaitMs)
		slo.QueueMeanDepth = round3(st.MeanQueueDepth)
		slo.QueuePeakDepth = st.PeakQueueDepth
		slo.Batches = st.Batches
		slo.MeanBatchSize = round3(st.MeanBatchSize)
		slo.KeyframesServed = st.KeyframesServed
		slo.WarpedServed = st.WarpedServed
		slo.KeyframeRate = keyframeRate(st.KeyframesServed, st.WarpedServed)
		// The server must not have resolved more frames than the clients
		// saw plus what teardown abandoned; anything else is silent loss.
		if st.Served+st.Rejected+st.Shed+st.Cancelled < a.served+a.rejected+a.shed {
			return nil, fmt.Errorf("drive tcp: accounting mismatch: clients saw served/rejected/shed %d/%d/%d, server served/rejected/shed/cancelled %d/%d/%d/%d",
				a.served, a.rejected, a.shed, st.Served, st.Rejected, st.Shed, st.Cancelled)
		}
		// Server-side partition law under an enabled feature cache.
		if p.SkipCompute() && st.KeyframesServed+st.WarpedServed != st.Served {
			return nil, fmt.Errorf("drive tcp: keyframe partition violated: keyframes %d + warped %d != served %d",
				st.KeyframesServed, st.WarpedServed, st.Served)
		}
	}
	return slo, nil
}

// newSLO fills the accounting and latency half of the report. Replicas is
// only set under a sharded profile, matching the simulator's report schema.
func newSLO(p loadgen.Profile, target string, a *agg, horizonMs float64) *loadgen.SLO {
	min, max := a.fairness()
	slo := &loadgen.SLO{
		Profile:        p.Name,
		Target:         target,
		Seed:           p.Seed,
		Sessions:       p.Sessions,
		Accelerators:   p.Accelerators,
		QueueDepth:     p.QueueDepth,
		Offered:        a.offered,
		Served:         a.served,
		Rejected:       a.rejected,
		Shed:           a.shed,
		Dropped:        a.dropped,
		Migrated:       a.migrated,
		ConservationOK: a.offered == a.served+a.rejected+a.shed+a.dropped+a.migrated,
		LatMeanMs:      round3(a.lat.Mean()),
		LatP50Ms:       round3(a.lat.Quantile(0.50)),
		LatP95Ms:       round3(a.lat.Quantile(0.95)),
		LatP99Ms:       round3(a.lat.Quantile(0.99)),
		LatMaxMs:       round3(a.lat.Max()),
		ServedMin:      min,
		ServedMax:      max,
		FairnessSpread: max - min,
		HorizonMs:      round3(horizonMs),
	}
	if p.Sharded() {
		slo.Replicas = p.Replicas
	}
	return slo
}

// round3 matches the simulator's report quantization.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// keyframeRate matches the simulator's keyframe-fraction rounding.
func keyframeRate(keyframes, warped int) float64 {
	if keyframes+warped == 0 {
		return 0
	}
	return round3(float64(keyframes) / float64(keyframes+warped))
}
