package drive

import (
	"testing"
	"time"

	"edgeis/internal/loadgen"
)

// fastOpts compresses wall time so the suite stays quick while still
// exercising real goroutines, timers and (for TCP) sockets.
func fastOpts() Options {
	return Options{TimeScale: 0.2, Occupancy: 0.25, DrainTimeout: 10 * time.Second}
}

// raceProfile bounds a profile to a short smoke run under the race
// detector, whose ~10-20x slowdown would otherwise blow the suite budget.
// The conservation checks stay strict on the shortened run — the law must
// hold at any length — while timing-shape assertions (shed counts, batch
// means) are separately gated on raceEnabled because the detector's
// scheduling skew makes them flappy.
func raceProfile(p loadgen.Profile) loadgen.Profile {
	if raceEnabled {
		p.Name += "-race-smoke"
		p.DurationMs = 600
	}
	return p
}

// checkConservation asserts the no-silent-loss law and report sanity that
// every live run must satisfy regardless of host timing.
func checkConservation(t *testing.T, slo *loadgen.SLO) {
	t.Helper()
	if err := slo.Check(); err != nil {
		t.Fatal(err)
	}
	if slo.Offered == 0 || slo.Served == 0 {
		t.Fatalf("degenerate run: %s", slo)
	}
	t.Logf("%s", slo)
}

// TestRunSchedulerConservation drives the real edge.Scheduler with a paced
// fleet and checks that the driver's offered == served + rejected + dropped
// reconciles with the scheduler's own served/rejected/cancelled counters
// (RunScheduler errors on any mismatch).
func TestRunSchedulerConservation(t *testing.T) {
	p, err := loadgen.ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	slo, err := RunScheduler(raceProfile(p), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if slo.Target != "scheduler" {
		t.Fatalf("target = %q, want scheduler", slo.Target)
	}
	checkConservation(t, slo)
}

// TestRunSchedulerUnderContention forces admission pressure (one
// accelerator, tiny queue, heavy occupancy) so the reject path is exercised
// and still accounted exactly.
func TestRunSchedulerUnderContention(t *testing.T) {
	p := loadgen.Profile{
		Name: "contention", Sessions: 24, Accelerators: 1, QueueDepth: 4,
		MaxOutstanding: 8, DurationMs: 2500, FPS: 8,
		Arrival: loadgen.Bursty, Seed: 9,
		Links: []loadgen.LinkShape{loadgen.Fast},
		Clips: []loadgen.ClipClass{loadgen.ClipIndustrial},
	}
	slo, err := RunScheduler(raceProfile(p), Options{TimeScale: 0.25, Occupancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if !raceEnabled && slo.Rejected+slo.Dropped == 0 {
		t.Error("contention profile shed nothing; occupancy too light to exercise rejects")
	}
}

// TestRunSchedulerBatchFormer drives the real scheduler with the
// gather-window batch former on a single-clip fleet: launches must actually
// gather (mean batch size above 1) and the driver's accounting must still
// reconcile against the scheduler's (RunScheduler errors on any mismatch).
func TestRunSchedulerBatchFormer(t *testing.T) {
	p := loadgen.Profile{
		Name: "batch-live", Sessions: 24, Accelerators: 2, QueueDepth: 16,
		MaxOutstanding: 8, DurationMs: 2500, FPS: 8,
		Arrival: loadgen.Bursty, Seed: 21,
		Links:    []loadgen.LinkShape{loadgen.Fast},
		Clips:    []loadgen.ClipClass{loadgen.ClipIndoor},
		MaxBatch: 8, BatchWindowMs: 2,
	}
	slo, err := RunScheduler(raceProfile(p), Options{TimeScale: 0.25, Occupancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if !raceEnabled && (slo.Batches == 0 || slo.MeanBatchSize <= 1.2) {
		t.Errorf("batch former gathered nothing: %d batches, mean size %.2f", slo.Batches, slo.MeanBatchSize)
	}
}

// TestRunSchedulerLatestWins drives the contention profile under the
// latest-wins admission policy: stale frames must be shed (not silently
// lost), the driver's shed tally must reconcile with the scheduler's, and
// the conservation law must extend to the new outcome class.
func TestRunSchedulerLatestWins(t *testing.T) {
	p := loadgen.Profile{
		Name: "shed-live", Sessions: 24, Accelerators: 1, QueueDepth: 4,
		MaxOutstanding: 8, DurationMs: 2500, FPS: 8,
		Arrival: loadgen.Bursty, Seed: 9,
		Links:      []loadgen.LinkShape{loadgen.Fast},
		Clips:      []loadgen.ClipClass{loadgen.ClipIndustrial},
		ShedPolicy: "latest-wins",
	}
	slo, err := RunScheduler(raceProfile(p), Options{TimeScale: 0.25, Occupancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if !raceEnabled && slo.Shed == 0 {
		t.Error("latest-wins shed nothing under sustained contention")
	}
}

// TestRunTCPLatestWins is the socket counterpart: shed notices cross the
// wire as TypeShed, the clients fold them into their outstanding windows,
// and the run reconciles client tallies against the in-process server.
func TestRunTCPLatestWins(t *testing.T) {
	if testing.Short() {
		t.Skip("socket run skipped in -short")
	}
	// Few sessions at a high rate against a tiny queue: latest-wins only
	// fires when the arriving session already has its own frame queued, so
	// the backlog must be per-session, not just fleet-wide.
	p := loadgen.Profile{
		Name: "tcp-shed", Sessions: 4, Accelerators: 1, QueueDepth: 3,
		MaxOutstanding: 8, DurationMs: 1000, FPS: 30,
		Arrival: loadgen.Steady, Seed: 13,
		Links:      []loadgen.LinkShape{loadgen.Fast},
		Clips:      []loadgen.ClipClass{loadgen.ClipStreet},
		ShedPolicy: "latest-wins",
	}
	slo, err := RunTCP(raceProfile(p), Options{TimeScale: 0.2, Occupancy: 2, DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if !raceEnabled && slo.Shed == 0 {
		t.Error("latest-wins over TCP shed nothing; occupancy too light to exercise the policy")
	}
}

// TestRunTCPConservation is the transport-level conformance counterpart:
// the same profile over real loopback sockets, with client-side accounting
// (results and wire rejects) reconciled against the in-process server.
func TestRunTCPConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("socket run skipped in -short")
	}
	p, err := loadgen.ProfileByName("tcp-smoke")
	if err != nil {
		t.Fatal(err)
	}
	slo, err := RunTCP(raceProfile(p), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if slo.Target != "tcp" {
		t.Fatalf("target = %q, want tcp", slo.Target)
	}
	checkConservation(t, slo)
}

// TestRunSchedulerFleetKill drives a sharded scheduler fleet through a
// mid-run replica kill: the killed replica's frames must land in the
// migrated bucket (RunScheduler errors if any frame goes missing from the
// reconciliation), sessions must resume on survivors, and the keyframe
// partition law must hold fleet-wide despite the forced post-migration
// keyframes.
func TestRunSchedulerFleetKill(t *testing.T) {
	p := loadgen.Profile{
		Name: "sched-fleet", Sessions: 24, Accelerators: 1, QueueDepth: 8,
		MaxOutstanding: 8, DurationMs: 2500, FPS: 8,
		Arrival: loadgen.Steady, Seed: 17,
		Links:            []loadgen.LinkShape{loadgen.Fast},
		Clips:            []loadgen.ClipClass{loadgen.ClipIndustrial},
		KeyframeInterval: 4, Replicas: 3,
		Kills: []loadgen.ReplicaKill{{Replica: 1, AtMs: 1200}},
	}
	slo, err := RunScheduler(raceProfile(p), Options{TimeScale: 0.25, Occupancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if slo.Replicas != 3 {
		t.Fatalf("replicas = %d, want 3", slo.Replicas)
	}
	if !raceEnabled && slo.Migrated == 0 {
		t.Error("replica kill migrated nothing on the scheduler target")
	}
}

// TestRunTCPFleetFailover is the socket counterpart: one server per
// replica, fleet clients per session, a mid-run server kill. The clients
// must observe the socket loss, fail over with the resume handshake
// (RunTCP errors if migrated frames appear without any replica adopting a
// session) and keep the client-side conservation identity closed.
func TestRunTCPFleetFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("socket run skipped in -short")
	}
	p := loadgen.Profile{
		Name: "tcp-fleet", Sessions: 12, Accelerators: 1, QueueDepth: 8,
		MaxOutstanding: 4, DurationMs: 2000, FPS: 8,
		Arrival: loadgen.Steady, Seed: 19,
		Links:            []loadgen.LinkShape{loadgen.Fast},
		Clips:            []loadgen.ClipClass{loadgen.ClipStreet},
		KeyframeInterval: 4, Replicas: 3,
		Kills: []loadgen.ReplicaKill{{Replica: 0, AtMs: 1000}},
	}
	slo, err := RunTCP(raceProfile(p), Options{TimeScale: 0.2, Occupancy: 2, DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if slo.Replicas != 3 {
		t.Fatalf("replicas = %d, want 3", slo.Replicas)
	}
	if !raceEnabled && slo.Migrated == 0 {
		t.Error("server kill migrated nothing through the fleet clients")
	}
}

// TestOfferedScheduleMatchesSimulator pins the cross-target contract: the
// wall-clock drivers replay Profile.SessionArrivals, so their offered count
// equals the simulator's for the same profile.
func TestOfferedScheduleMatchesSimulator(t *testing.T) {
	p, err := loadgen.ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	// Both targets replay the same (possibly race-shortened) profile, so
	// the offered schedules must still agree exactly.
	p = raceProfile(p)
	simSLO := loadgen.Run(p)
	liveSLO, err := RunScheduler(p, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if simSLO.Offered != liveSLO.Offered {
		t.Errorf("offered diverges across targets: sim %d, scheduler %d", simSLO.Offered, liveSLO.Offered)
	}
}
