package drive

import (
	"testing"
	"time"

	"edgeis/internal/loadgen"
)

// fastOpts compresses wall time so the suite stays quick while still
// exercising real goroutines, timers and (for TCP) sockets.
func fastOpts() Options {
	return Options{TimeScale: 0.2, Occupancy: 0.25, DrainTimeout: 10 * time.Second}
}

// checkConservation asserts the no-silent-loss law and report sanity that
// every live run must satisfy regardless of host timing.
func checkConservation(t *testing.T, slo *loadgen.SLO) {
	t.Helper()
	if err := slo.Check(); err != nil {
		t.Fatal(err)
	}
	if slo.Offered == 0 || slo.Served == 0 {
		t.Fatalf("degenerate run: %s", slo)
	}
	t.Logf("%s", slo)
}

// TestRunSchedulerConservation drives the real edge.Scheduler with a paced
// fleet and checks that the driver's offered == served + rejected + dropped
// reconciles with the scheduler's own served/rejected/cancelled counters
// (RunScheduler errors on any mismatch).
func TestRunSchedulerConservation(t *testing.T) {
	p, err := loadgen.ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	slo, err := RunScheduler(p, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if slo.Target != "scheduler" {
		t.Fatalf("target = %q, want scheduler", slo.Target)
	}
	checkConservation(t, slo)
}

// TestRunSchedulerUnderContention forces admission pressure (one
// accelerator, tiny queue, heavy occupancy) so the reject path is exercised
// and still accounted exactly.
func TestRunSchedulerUnderContention(t *testing.T) {
	p := loadgen.Profile{
		Name: "contention", Sessions: 24, Accelerators: 1, QueueDepth: 4,
		MaxOutstanding: 8, DurationMs: 2500, FPS: 8,
		Arrival: loadgen.Bursty, Seed: 9,
		Links: []loadgen.LinkShape{loadgen.Fast},
		Clips: []loadgen.ClipClass{loadgen.ClipIndustrial},
	}
	slo, err := RunScheduler(p, Options{TimeScale: 0.25, Occupancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, slo)
	if slo.Rejected+slo.Dropped == 0 {
		t.Error("contention profile shed nothing; occupancy too light to exercise rejects")
	}
}

// TestRunTCPConservation is the transport-level conformance counterpart:
// the same profile over real loopback sockets, with client-side accounting
// (results and wire rejects) reconciled against the in-process server.
func TestRunTCPConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("socket run skipped in -short")
	}
	p, err := loadgen.ProfileByName("tcp-smoke")
	if err != nil {
		t.Fatal(err)
	}
	slo, err := RunTCP(p, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if slo.Target != "tcp" {
		t.Fatalf("target = %q, want tcp", slo.Target)
	}
	checkConservation(t, slo)
}

// TestOfferedScheduleMatchesSimulator pins the cross-target contract: the
// wall-clock drivers replay Profile.SessionArrivals, so their offered count
// equals the simulator's for the same profile.
func TestOfferedScheduleMatchesSimulator(t *testing.T) {
	p, err := loadgen.ProfileByName("ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	simSLO := loadgen.Run(p)
	liveSLO, err := RunScheduler(p, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if simSLO.Offered != liveSLO.Offered {
		t.Errorf("offered diverges across targets: sim %d, scheduler %d", simSLO.Offered, liveSLO.Offered)
	}
}
