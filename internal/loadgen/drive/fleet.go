package drive

// Fleet drive targets: the wall-clock counterparts of the simulator's
// sharded mode. runSchedulerFleet replays a sharded profile against one
// edge.Scheduler per replica with driver-side failover (ResumeSession on a
// survivor after a kill); runTCPFleet runs one transport.Server per replica
// and one fleet.FleetClient per session, so the real failover path — socket
// loss, re-placement, resume handshake, forced keyframe — carries the run.
// Both extend the conservation law with the migrated bucket and reconcile
// the driver's accounting against the summed per-replica scheduler counters.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"edgeis/internal/edge"
	"edgeis/internal/fleet"
	"edgeis/internal/loadgen"
	"edgeis/internal/netsim"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

// fleetState tracks which replicas have been killed, shared by the kill
// timers and the sessions re-placing after a failure.
type fleetState struct {
	mu   sync.Mutex
	dead []bool
}

func newFleetState(n int) *fleetState { return &fleetState{dead: make([]bool, n)} }

// alive returns the replica indices not yet killed, in index order.
func (f *fleetState) alive() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.dead))
	for r, d := range f.dead {
		if !d {
			out = append(out, r)
		}
	}
	return out
}

// kill marks replica r dead; false means it already was. The mark lands
// before the replica is actually torn down, so a session re-placing
// concurrently never picks a replica the killer has claimed.
func (f *fleetState) kill(r int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[r] {
		return false
	}
	f.dead[r] = true
	return true
}

// startKillers arms one timer per configured kill and returns a WaitGroup
// the caller waits on after the generation horizon.
func startKillers(p loadgen.Profile, o Options, start time.Time, fs *fleetState, kill func(r int)) *sync.WaitGroup {
	var killers sync.WaitGroup
	for _, k := range p.Kills {
		if k.Replica < 0 || k.Replica >= p.Replicas {
			continue
		}
		killers.Add(1)
		go func(k loadgen.ReplicaKill) {
			defer killers.Done()
			sleepUntil(start, k.AtMs, o.TimeScale)
			if fs.kill(k.Replica) {
				kill(k.Replica)
			}
		}(k)
	}
	return &killers
}

// sessHandle is one session's live placement on the scheduler target: the
// serving replica and session handle, plus a generation counter so that
// when several in-flight frames hit the same dead replica, only the first
// failure re-places the session.
type sessHandle struct {
	mu   sync.Mutex
	r    int
	sess *edge.Session
	gen  int
}

// current snapshots the serving handle; sess is nil once the whole fleet is
// dead.
func (h *sessHandle) current() (*edge.Session, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sess, h.gen
}

// foldSchedStats aggregates per-replica scheduler telemetry into the SLO:
// sums for counters, maxes for peaks, served-weighted means for the wait
// and depth averages (an idle replica should not drag the fleet mean down).
func foldSchedStats(slo *loadgen.SLO, sts []edge.Stats) {
	var served, batches int
	var waitMean, waitP95, depthMean, batchJobs float64
	for _, st := range sts {
		w := float64(st.Served)
		served += st.Served
		waitMean += st.MeanWaitMs * w
		waitP95 += st.P95WaitMs * w
		depthMean += st.MeanQueueDepth * w
		if st.MaxWaitMs > slo.WaitMaxMs {
			slo.WaitMaxMs = st.MaxWaitMs
		}
		if st.PeakQueueDepth > slo.QueuePeakDepth {
			slo.QueuePeakDepth = st.PeakQueueDepth
		}
		batches += st.Batches
		batchJobs += st.MeanBatchSize * float64(st.Batches)
		slo.KeyframesServed += st.KeyframesServed
		slo.WarpedServed += st.WarpedServed
	}
	if served > 0 {
		slo.WaitMeanMs = round3(waitMean / float64(served))
		slo.WaitP95Ms = round3(waitP95 / float64(served))
		slo.QueueMeanDepth = round3(depthMean / float64(served))
	}
	slo.WaitMaxMs = round3(slo.WaitMaxMs)
	slo.Batches = batches
	if batches > 0 {
		slo.MeanBatchSize = round3(batchJobs / float64(batches))
	}
	slo.KeyframeRate = keyframeRate(slo.KeyframesServed, slo.WarpedServed)
}

// runSchedulerFleet is RunScheduler's sharded mode: one scheduler per
// replica, sessions rendezvous-placed exactly as the simulator places them.
// A kill closes the replica's scheduler (admitted frames drain, new ones
// fail), and a session discovers the death when a frame comes back
// ErrClosed: that frame is counted migrated — never resent — and the
// session resumes on a survivor via ResumeSession, cold cache and all, so
// its next keyframe decision is forced. Once the whole fleet is dead,
// remaining frames drop client-side.
func runSchedulerFleet(p loadgen.Profile, o Options) (*loadgen.SLO, error) {
	admission, dequeue, err := policies(p, o)
	if err != nil {
		return nil, err
	}
	scheds := make([]*edge.Scheduler, p.Replicas)
	for r := range scheds {
		scheds[r] = edge.NewScheduler(edge.Config{
			Workers:    p.Accelerators,
			QueueDepth: p.QueueDepth,
			Admission:  admission,
			Dequeue:    dequeue,
			Keyframe:   p.KeyframePolicy(),
			NewAccelerator: func(int) edge.Accelerator {
				return &clipAccelerator{p: p, scale: o.TimeScale, frac: o.Occupancy}
			},
		})
	}
	fs := newFleetState(p.Replicas)
	a := &agg{servedBy: make([]int, p.Sessions)}
	start := time.Now()
	killers := startKillers(p, o, start, fs, func(r int) { _ = scheds[r].Close() })

	var fleetWg sync.WaitGroup
	for i := 0; i < p.Sessions; i++ {
		fleetWg.Add(1)
		go func(i int) {
			defer fleetWg.Done()
			key := p.SessionKey(i)
			h := &sessHandle{r: p.PlaceSession(i, fs.alive())}
			h.sess = scheds[h.r].NewSession(key)
			// failover re-places the session after frame gen observed its
			// replica dead; the generation guard keeps a burst of in-flight
			// failures from hopping replicas once per frame.
			failover := func(failedGen int) {
				// Snapshot before taking h.mu (fs has its own lock). A stale
				// snapshot is harmless: re-placing onto a replica that died
				// a beat ago just triggers one more failover.
				alive := fs.alive()
				h.mu.Lock()
				defer h.mu.Unlock()
				if h.gen != failedGen {
					return
				}
				h.gen++
				if len(alive) == 0 {
					h.r, h.sess = -1, nil
					return
				}
				h.r = p.PlaceSession(i, alive)
				h.sess = scheds[h.r].ResumeSession(key, key)
			}
			clip := p.ClipFor(i)
			up := netsim.NewLink(p.LinkFor(i).NetProfile(), p.Seed+int64(i)*2+1)
			var outstanding, dropped, offered int
			var reqs sync.WaitGroup
			var mu sync.Mutex // outstanding, decremented from request goroutines
			for _, genAt := range p.SessionArrivals(i) {
				sleepUntil(start, genAt, o.TimeScale)
				offered++
				// Placement is resolved at generation time, like picking the
				// socket to uplink into: a frame bound for a replica that
				// dies mid-flight migrates, it does not retroactively reroute.
				sess, gen := h.current()
				if sess == nil {
					dropped++ // whole fleet dead: nowhere to connect
					continue
				}
				mu.Lock()
				atCap := outstanding >= p.MaxOutstanding
				if !atCap {
					outstanding++
				}
				mu.Unlock()
				if atCap {
					dropped++
					continue
				}
				upMs := up.TransferMs(genAt, clip.PayloadBytes)
				reqs.Add(1)
				go func(genAt, upMs float64, sess *edge.Session, gen int) {
					defer reqs.Done()
					sleepUntil(start, genAt+upMs, o.TimeScale)
					in := segmodel.Input{Width: 64 + 16*(i%len(p.Clips)), Height: 48, Seed: int64(i)}
					_, _, err := sess.Infer(in, nil)
					doneMs := msSince(start)
					switch {
					case err == nil:
						a.noteServed(i, doneMs-genAt*o.TimeScale)
					case errors.Is(err, edge.ErrQueueFull):
						a.noteRejected()
					case errors.Is(err, edge.ErrShed):
						a.noteShed()
					case errors.Is(err, edge.ErrClosed):
						// The replica died under this frame: the frame is
						// lost to the migration window, the session moves on.
						a.noteMigrated(1)
						failover(gen)
					default:
						a.noteDropped()
					}
					mu.Lock()
					outstanding--
					mu.Unlock()
				}(genAt, upMs, sess, gen)
			}
			reqs.Wait()
			if sess, _ := h.current(); sess != nil {
				sess.Close()
			}
			a.absorb(offered, 0, 0, dropped)
		}(i)
	}
	fleetWg.Wait()
	horizon := msSince(start)
	killers.Wait()

	sts := make([]edge.Stats, p.Replicas)
	var served, rejected, shed, cancelled, kf, warped int
	for r, sched := range scheds {
		sts[r] = sched.Stats()
		if err := sched.Close(); err != nil {
			return nil, err
		}
		served += sts[r].Served
		rejected += sts[r].Rejected
		shed += sts[r].Shed
		cancelled += sts[r].Cancelled
		kf += sts[r].KeyframesServed
		warped += sts[r].WarpedServed
	}
	if served != a.served || rejected != a.rejected || shed != a.shed || cancelled != 0 {
		return nil, fmt.Errorf("drive scheduler-fleet: accounting mismatch: driver served/rejected/shed %d/%d/%d, replicas served/rejected/shed/cancelled %d/%d/%d/%d",
			a.served, a.rejected, a.shed, served, rejected, shed, cancelled)
	}
	if p.SkipCompute() && kf+warped != served {
		return nil, fmt.Errorf("drive scheduler-fleet: keyframe partition violated: keyframes %d + warped %d != served %d",
			kf, warped, served)
	}
	slo := newSLO(p, "scheduler", a, horizon)
	foldSchedStats(slo, sts)
	return slo, nil
}

// runTCPFleet is RunTCP's sharded mode: one in-process transport.Server per
// replica on its own loopback socket, one fleet.FleetClient per session. A
// kill force-closes the replica's server; the fleet clients observe the
// socket loss, re-place, and replay the resume handshake — the exact
// production failover path. Client-side accounting folds the fleet client's
// settled conservation identity into the run's: connection losses with a
// completed migration count migrated, terminal/teardown losses count
// dropped.
func runTCPFleet(p loadgen.Profile, o Options) (*loadgen.SLO, error) {
	if o.Addr != "" {
		return nil, fmt.Errorf("drive tcp: sharded profile %s runs its own in-process replicas; -addr is single-edge only", p.Name)
	}
	admission, dequeue, err := policies(p, o)
	if err != nil {
		return nil, err
	}
	servers := make([]*transport.Server, p.Replicas)
	addrs := make([]string, p.Replicas)
	closeOnce := make([]sync.Once, p.Replicas)
	closeSrv := func(r int) {
		closeOnce[r].Do(func() { _ = servers[r].Close() })
	}
	defer func() {
		for r := range servers {
			if servers[r] != nil {
				closeSrv(r)
			}
		}
	}()
	for r := range servers {
		srvOpts := []transport.ServerOption{
			transport.WithAccelerators(p.Accelerators),
			transport.WithQueueDepth(p.QueueDepth),
			transport.WithWallOccupancy(o.Occupancy * o.TimeScale),
			transport.WithAdmissionPolicy(admission),
		}
		if dequeue != nil {
			srvOpts = append(srvOpts, transport.WithDequeuePolicy(dequeue))
		}
		if p.SkipCompute() {
			srvOpts = append(srvOpts, transport.WithKeyframePolicy(p.KeyframePolicy()))
		}
		srv := transport.NewServer(segmodel.New(segmodel.YOLOv3), srvOpts...)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		servers[r] = srv
		addrs[r] = bound.String()
	}
	fs := newFleetState(p.Replicas)
	a := &agg{servedBy: make([]int, p.Sessions)}
	start := time.Now()
	killers := startKillers(p, o, start, fs, closeSrv)

	var fleetWg sync.WaitGroup
	sessErrs := make([]error, p.Sessions)
	for i := 0; i < p.Sessions; i++ {
		fleetWg.Add(1)
		go func(i int) {
			defer fleetWg.Done()
			fc, err := fleet.DialFleet(fleet.Config{
				Addrs:        addrs,
				SessionKey:   p.SessionKey(i),
				DialTimeout:  2 * time.Second,
				DialAttempts: 5,
				DialBackoff:  20 * time.Millisecond,
			})
			if err != nil {
				sessErrs[i] = err
				return
			}
			defer fc.Close()
			clip := p.ClipFor(i)

			var mu sync.Mutex
			sendAt := make(map[int32]float64)
			served := 0
			var readers sync.WaitGroup
			readers.Add(1)
			go func() {
				defer readers.Done()
				for res := range fc.Results() {
					mu.Lock()
					at, ok := sendAt[res.FrameIndex]
					if ok {
						delete(sendAt, res.FrameIndex)
						served++
					}
					mu.Unlock()
					if ok {
						a.noteServed(i, msSince(start)-at)
					}
				}
			}()

			outstandingNow := func() int {
				st := fc.Stats()
				return st.Sent - st.Delivered - st.Rejected - st.Shed - st.Migrated - st.ConnLost
			}
			sent, dropped, offered := 0, 0, 0
			for k, genAt := range p.SessionArrivals(i) {
				sleepUntil(start, genAt, o.TimeScale)
				offered++
				if outstandingNow() >= p.MaxOutstanding {
					dropped++
					continue
				}
				idx := int32(k)
				mu.Lock()
				sendAt[idx] = msSince(start)
				mu.Unlock()
				ok := fc.Send(&transport.FrameMsg{
					FrameIndex:   idx,
					Width:        int32(64 + 16*(i%len(p.Clips))),
					Height:       48,
					Seed:         int64(i)*1_000_003 + int64(k),
					PaddingBytes: int32(clip.PayloadBytes),
				})
				if !ok {
					// Send queue full, mid-failover, or fleet exhausted: the
					// frame never left the client.
					mu.Lock()
					delete(sendAt, idx)
					mu.Unlock()
					dropped++
					continue
				}
				sent++
			}

			// Drain: every sent frame resolves into a result, a wire-level
			// reject/shed, or a migration/connection loss; Close settles the
			// stragglers into ConnLost.
			deadline := time.Now().Add(o.DrainTimeout)
			for time.Now().Before(deadline) {
				st := fc.Stats()
				if st.Delivered+st.Rejected+st.Shed+st.Migrated+st.ConnLost >= st.Sent {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			fc.Close()
			readers.Wait()

			st := fc.Stats()
			if !st.Conserved() || st.Sent != sent || st.Delivered != served {
				sessErrs[i] = fmt.Errorf("drive tcp-fleet: session %d accounting leak: driver sent/served %d/%d, client %+v",
					i, sent, served, st)
				return
			}
			a.noteMigrated(st.Migrated)
			a.absorb(offered, st.Rejected, st.Shed, dropped+st.ConnLost)
		}(i)
	}
	fleetWg.Wait()
	horizon := msSince(start)
	killers.Wait()
	for _, err := range sessErrs {
		if err != nil {
			return nil, err
		}
	}

	sts := make([]edge.Stats, p.Replicas)
	var served, rejected, shed, cancelled, kf, warped, resumed int
	for r := range servers {
		closeSrv(r)
		sts[r] = servers[r].Scheduler().Stats()
		served += sts[r].Served
		rejected += sts[r].Rejected
		shed += sts[r].Shed
		cancelled += sts[r].Cancelled
		kf += sts[r].KeyframesServed
		warped += sts[r].WarpedServed
		resumed += sts[r].ResumedSessions
	}
	// The replicas must have resolved at least what the clients saw; a
	// killed replica legitimately served frames whose results died with its
	// sockets (the clients count those migrated).
	if served+rejected+shed+cancelled < a.served+a.rejected+a.shed {
		return nil, fmt.Errorf("drive tcp-fleet: accounting mismatch: clients saw served/rejected/shed %d/%d/%d, replicas served/rejected/shed/cancelled %d/%d/%d/%d",
			a.served, a.rejected, a.shed, served, rejected, shed, cancelled)
	}
	if p.SkipCompute() && kf+warped != served {
		return nil, fmt.Errorf("drive tcp-fleet: keyframe partition violated: keyframes %d + warped %d != served %d",
			kf, warped, served)
	}
	// Migrated frames imply completed failovers, and every completed
	// failover lands a resume handshake on a survivor.
	if a.migrated > 0 && resumed == 0 && len(fs.alive()) > 0 {
		return nil, fmt.Errorf("drive tcp-fleet: %d frames migrated but no replica adopted a session", a.migrated)
	}
	slo := newSLO(p, "tcp", a, horizon)
	foldSchedStats(slo, sts)
	return slo, nil
}
