//go:build race

package drive

// raceEnabled reports whether the race detector is compiled in. The drive
// tests pace real goroutines against wall time; under the detector's
// ~10-20x slowdown they run a shortened smoke profile and skip
// timing-shape assertions, keeping only the conservation law strict.
const raceEnabled = true
