package transfer

import (
	"testing"

	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/scene"
	"edgeis/internal/vo"
)

// harness runs VO over a rendered sequence, feeding edge masks (ground
// truth) at init and every annotateEvery frames, and exercises the
// predictor in between — the full MAMT loop.
type harness struct {
	t      *testing.T
	world  *scene.World
	cam    geom.Camera
	ex     *feature.Extractor
	sys    *vo.System
	pred   *Predictor
	frames []*scene.Frame
}

func newHarness(t *testing.T, w *scene.World, traj scene.Trajectory, n int) *harness {
	t.Helper()
	cam := geom.StandardCamera(320, 240)
	fcfg := feature.DefaultConfig()
	fcfg.DescriptorNoise = 0
	return &harness{
		t:      t,
		world:  w,
		cam:    cam,
		ex:     feature.NewExtractor(w, cam, fcfg, 7),
		sys:    vo.NewSystem(vo.Config{Camera: cam, Seed: 3}),
		pred:   NewPredictor(cam, Config{}),
		frames: w.RenderSequence(cam, traj, n),
	}
}

func toKeypoints(feats []feature.Feature) []vo.Keypoint {
	out := make([]vo.Keypoint, len(feats))
	for i, f := range feats {
		out[i] = vo.Keypoint{Pixel: f.Pixel, Descriptor: f.Descriptor, Sharpness: f.Sharpness}
	}
	return out
}

func gtMasks(f *scene.Frame) []vo.LabeledMask {
	out := make([]vo.LabeledMask, 0, len(f.Objects))
	for _, gt := range f.Objects {
		out = append(out, vo.LabeledMask{Label: int(gt.Class), Mask: gt.Visible})
	}
	return out
}

// seedEdgeMasks stores ground-truth masks for the given frame as edge
// results, mapping scene objects to VO instances by label.
func (h *harness) seedEdgeMasks(frameIdx int) {
	f := h.frames[frameIdx]
	for _, inst := range h.sys.Instances() {
		for _, gt := range f.Objects {
			if int(gt.Class) == inst.Label {
				h.pred.Put(&CachedMask{
					FrameIndex: frameIdx,
					InstanceID: inst.ID,
					Label:      inst.Label,
					Mask:       gt.Visible.Clone(),
					FromEdge:   true,
				})
				break
			}
		}
	}
}

// run processes all frames; returns the frame index at which tracking began.
func (h *harness) run(annotateEvery int) int {
	trackStart := -1
	for _, f := range h.frames {
		st := h.sys.ProcessFrame(f.Index, toKeypoints(h.ex.Extract(f, scene.WalkSpeed)))
		if st == vo.StatusInitPairReady {
			r, c, _ := h.sys.PendingInitPair()
			if err := h.sys.CompleteInitialization(gtMasks(h.frames[r]), gtMasks(h.frames[c])); err == nil {
				h.seedEdgeMasks(r)
				h.seedEdgeMasks(c)
				trackStart = f.Index
			}
			continue
		}
		if st == vo.StatusTracking && annotateEvery > 0 && f.Index%annotateEvery == 0 {
			if err := h.sys.AnnotateFrame(f.Index, gtMasks(f)); err == nil {
				h.seedEdgeMasks(f.Index)
			}
		}
	}
	return trackStart
}

func transferWorld() *scene.World {
	return scene.NewWorld(scene.WorldConfig{Seed: 21}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(-1, 1, 9), Half: geom.V3(1.6, 1, 1)},
		{Class: scene.Person, Center: geom.V3(2.5, 0.9, 7), Half: geom.V3(0.35, 0.9, 0.35)},
	})
}

func lateralTraj() scene.Trajectory {
	return scene.WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(-2, 1.6, -2), geom.V3(3, 1.6, -1)},
		Target:    geom.V3(0, 1, 9),
		Speed:     scene.WalkSpeed,
	}
}

func TestPredictTransfersMaskAccurately(t *testing.T) {
	h := newHarness(t, transferWorld(), lateralTraj(), 70)
	if h.run(15) < 0 {
		t.Fatal("VO never initialized")
	}
	last := h.frames[len(h.frames)-1]
	if h.sys.FrameRecordAt(last.Index) == nil {
		t.Fatal("last frame not tracked")
	}
	preds := h.pred.PredictAll(h.sys, last.Index)
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	for _, pred := range preds {
		var gt *scene.GroundTruth
		for i := range last.Objects {
			if int(last.Objects[i].Class) == pred.Label {
				gt = &last.Objects[i]
			}
		}
		if gt == nil {
			t.Fatalf("no ground truth for label %d", pred.Label)
		}
		iou := mask.IoU(pred.Mask, gt.Visible)
		if iou < 0.6 {
			t.Errorf("instance %d (label %d): transfer IoU = %.3f, source age %d",
				pred.InstanceID, pred.Label, iou, pred.SourceAge)
		}
	}
}

func TestPredictBeatsStaleCache(t *testing.T) {
	// The whole point of MAMT: a transferred mask must beat just reusing
	// the stale cached mask directly. An approach trajectory changes the
	// objects' image scale, which no amount of mask reuse can follow but
	// depth-aware contour reprojection can.
	approach := scene.WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(-2.5, 1.6, -3), geom.V3(0.5, 1.6, 3.5)},
		Target:    geom.V3(0, 1, 9),
		Speed:     scene.WalkSpeed,
	}
	h := newHarness(t, transferWorld(), approach, 70)
	if h.run(0) < 0 { // annotate only at init; sources grow stale
		t.Fatal("VO never initialized")
	}
	last := h.frames[len(h.frames)-1]
	preds := h.pred.PredictAll(h.sys, last.Index)
	if len(preds) == 0 {
		t.Skip("no predictions with stale-only cache")
	}
	for _, pred := range preds {
		var gt *scene.GroundTruth
		for i := range last.Objects {
			if int(last.Objects[i].Class) == pred.Label {
				gt = &last.Objects[i]
			}
		}
		if gt == nil {
			continue
		}
		src := h.frames[pred.SourceFrame]
		srcGT := src.GroundTruthFor(gt.ObjectID)
		if srcGT == nil {
			continue
		}
		stale := mask.IoU(srcGT.Visible, gt.Visible)
		transferred := mask.IoU(pred.Mask, gt.Visible)
		if transferred < stale {
			t.Errorf("label %d: transfer IoU %.3f worse than stale cache %.3f (age %d)",
				pred.Label, transferred, stale, pred.SourceAge)
		}
	}
}

func TestPredictUnknownInstance(t *testing.T) {
	h := newHarness(t, transferWorld(), lateralTraj(), 40)
	h.run(10)
	if _, err := h.pred.Predict(h.sys, 999, 39); err == nil {
		t.Error("expected error for unknown instance")
	}
}

func TestPredictUntrackedFrame(t *testing.T) {
	h := newHarness(t, transferWorld(), lateralTraj(), 40)
	h.run(10)
	insts := h.sys.Instances()
	if len(insts) == 0 {
		t.Skip("no instances")
	}
	if _, err := h.pred.Predict(h.sys, insts[0].ID, 10_000); err == nil {
		t.Error("expected error for untracked frame")
	}
}

func TestCachePutAndEvict(t *testing.T) {
	p := NewPredictor(geom.StandardCamera(64, 64), Config{})
	mk := func(frame int, edge bool) *CachedMask {
		m := mask.New(64, 64)
		for y := 10; y < 30; y++ {
			for x := 10; x < 30; x++ {
				m.Set(x, y)
			}
		}
		return &CachedMask{FrameIndex: frame, InstanceID: 1, Label: 2, Mask: m, FromEdge: edge}
	}
	p.Put(mk(1, true))
	p.Put(mk(5, false))
	p.Put(mk(9, false))
	if p.CacheSize() != 3 {
		t.Fatalf("cache size = %d", p.CacheSize())
	}
	// Eviction keeps the newest edge mask even if old.
	removed := p.Evict(8)
	if removed != 1 {
		t.Errorf("removed = %d, want 1 (frame 5)", removed)
	}
	if p.CacheSize() != 2 {
		t.Errorf("cache size after evict = %d", p.CacheSize())
	}
}

func TestCompactParksAndRematerializesExactly(t *testing.T) {
	// Compact must be invisible to everything except the pool: no entry
	// leaves the cache, and a parked entry rematerializes bit-identically.
	h := newHarness(t, transferWorld(), lateralTraj(), 60)
	h.pred.SetPool(mask.NewPool())
	if h.run(20) < 0 {
		t.Fatal("no init")
	}
	last := h.frames[len(h.frames)-1]
	if len(h.pred.PredictAll(h.sys, last.Index)) == 0 {
		t.Skip("no predictions to chain")
	}
	type key struct{ inst, frame int }
	snap := make(map[key]*mask.Bitmask)
	for inst, byFrame := range h.pred.cache {
		for idx, cm := range byFrame {
			snap[key{inst, idx}] = cm.Mask.Clone()
		}
	}
	before := h.pred.CacheSize()
	parked := h.pred.Compact(last.Index + 1)
	if parked == 0 {
		t.Fatal("no pooled entries parked")
	}
	if got := h.pred.CacheSize(); got != before {
		t.Errorf("Compact changed cache size: %d -> %d", before, got)
	}
	rematerialized := 0
	for inst, byFrame := range h.pred.cache {
		for idx, cm := range byFrame {
			if cm.Mask != nil {
				continue // edge entries keep their dense buffers
			}
			h.pred.materialize(cm)
			rematerialized++
			want := snap[key{inst, idx}]
			if cm.Mask.Width != want.Width || cm.Mask.Height != want.Height {
				t.Fatalf("entry %d/%d rematerialized at %dx%d, want %dx%d",
					inst, idx, cm.Mask.Width, cm.Mask.Height, want.Width, want.Height)
			}
			if mask.IoU(cm.Mask, want) != 1 || cm.Mask.Area() != want.Area() {
				t.Errorf("entry %d/%d not bit-identical after round trip", inst, idx)
			}
			if !cm.pooled {
				t.Errorf("entry %d/%d not pooled after rematerialization", inst, idx)
			}
		}
	}
	if rematerialized != parked {
		t.Errorf("rematerialized %d entries, parked %d", rematerialized, parked)
	}
	// Re-parking skips the encode (runs are retained) but must still
	// return every buffer.
	if again := h.pred.Compact(last.Index + 1); again != parked {
		t.Errorf("second Compact parked %d entries, want %d", again, parked)
	}
}

func TestCacheRejectsTiny(t *testing.T) {
	p := NewPredictor(geom.StandardCamera(64, 64), Config{})
	m := mask.New(64, 64)
	m.Set(1, 1)
	p.Put(&CachedMask{FrameIndex: 1, InstanceID: 1, Mask: m})
	if p.CacheSize() != 0 {
		t.Error("tiny mask should be rejected")
	}
}

func TestCacheEdgePriority(t *testing.T) {
	p := NewPredictor(geom.StandardCamera(64, 64), Config{})
	big := mask.New(64, 64)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			big.Set(x, y)
		}
	}
	p.Put(&CachedMask{FrameIndex: 3, InstanceID: 1, Mask: big, FromEdge: true})
	// A transferred mask for the same frame must not replace the edge one.
	p.Put(&CachedMask{FrameIndex: 3, InstanceID: 1, Mask: big.Clone(), FromEdge: false})
	byFrame := p.cache[1]
	if !byFrame[3].FromEdge {
		t.Error("edge mask overwritten by transfer")
	}
}

func TestContourDepth(t *testing.T) {
	p := NewPredictor(geom.StandardCamera(64, 64), Config{K: 2})
	feats := []depthFeat{
		{px: geom.V2(10, 10), depth: 4},
		{px: geom.V2(11, 10), depth: 6},
		{px: geom.V2(50, 50), depth: 100},
	}
	d, ok := p.contourDepth(geom.V2(10, 11), feats)
	if !ok {
		t.Fatal("no depth")
	}
	if d != 5 {
		t.Errorf("depth = %v, want mean(4,6) = 5", d)
	}
	// Fewer features than K still works.
	p2 := NewPredictor(geom.StandardCamera(64, 64), Config{K: 10})
	d2, ok := p2.contourDepth(geom.V2(0, 0), feats[:1])
	if !ok || d2 != 4 {
		t.Errorf("single-feature depth = %v ok=%v", d2, ok)
	}
	if _, ok := p.contourDepth(geom.V2(0, 0), nil); ok {
		t.Error("empty features should fail")
	}
}

func TestEdgeFeaturePreference(t *testing.T) {
	p := NewPredictor(geom.StandardCamera(64, 64), Config{K: 1})
	feats := []depthFeat{
		{px: geom.V2(12, 10), depth: 4, edge: false},  // dist 2
		{px: geom.V2(12.5, 10), depth: 8, edge: true}, // dist 2.5 * 0.7 = 1.75
	}
	d, _ := p.contourDepth(geom.V2(10, 10), feats)
	if d != 8 {
		t.Errorf("depth = %v, want edge feature preferred (8)", d)
	}
}

func TestPredictionChaining(t *testing.T) {
	// After a successful prediction the result is cached and can serve as
	// the next source.
	h := newHarness(t, transferWorld(), lateralTraj(), 60)
	if h.run(20) < 0 {
		t.Fatal("no init")
	}
	before := h.pred.CacheSize()
	last := h.frames[len(h.frames)-1]
	preds := h.pred.PredictAll(h.sys, last.Index)
	if len(preds) == 0 {
		t.Skip("no predictions")
	}
	if h.pred.CacheSize() <= before {
		t.Error("prediction did not chain into cache")
	}
}

func TestMaxViewAngleRejectsRotatedSources(t *testing.T) {
	// A predictor with a tiny MaxViewAngle must refuse sources once the
	// camera has rotated past it.
	h := newHarness(t, transferWorld(), lateralTraj(), 60)
	h.pred = NewPredictor(h.cam, Config{MaxViewAngle: 0.02})
	if h.run(0) < 0 {
		t.Fatal("no init")
	}
	last := h.frames[len(h.frames)-1]
	preds := h.pred.PredictAll(h.sys, last.Index)
	// The only cached sources are the init frames; the lateral walk turns
	// the camera by far more than 0.02 rad by the end of the clip.
	if len(preds) != 0 {
		t.Errorf("%d predictions from out-of-angle sources", len(preds))
	}
}

func TestPredictorConfigDefaults(t *testing.T) {
	p := NewPredictor(geom.StandardCamera(64, 64), Config{})
	if p.cfg.K != 5 {
		t.Errorf("default K = %d, want the paper's 5", p.cfg.K)
	}
	if p.cfg.MaxViewAngle != 0.5 || p.cfg.MaxContourPoints != 160 {
		t.Errorf("defaults = %+v", p.cfg)
	}
}
