// Package transfer implements the mask-prediction half of edgeIS's Motion
// Aware Mobile Mask Transfer (Section III-C): given the VO's labeled map and
// pose history plus cached instance masks from earlier frames, it predicts
// the mask of every known instance on the current frame without running a
// DL model.
//
// For each instance the module (1) selects a source frame that observed the
// object clearly from a similar viewpoint, (2) extracts the cached mask's
// contour, (3) assigns each contour pixel the average depth of its k nearest
// in-mask features (k = 5 in the paper), (4) re-projects the contour through
// the relative pose into the current frame and (5) rasterizes the resulting
// polygon back into a dense mask.
package transfer

import (
	"errors"
	"sort"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/vo"
)

// Errors returned by the mask predictor.
var (
	// ErrNoSource indicates no cached mask/frame pair can serve as a
	// transfer source for the instance.
	ErrNoSource = errors.New("transfer: no usable source frame")
	// ErrNoDepth indicates the source frame lacks in-mask features to
	// estimate contour depth from.
	ErrNoDepth = errors.New("transfer: no depth features inside mask")
)

// Config tunes the predictor.
type Config struct {
	// K is the number of nearest in-mask features averaged for a contour
	// pixel's depth (paper: 5).
	K int
	// MaxViewAngle is the largest rotation (radians) between source and
	// current frame for the source to qualify ("the angle between the
	// frames is not too large"); default 0.5.
	MaxViewAngle float64
	// MaxContourPoints subsamples long contours for speed (default 160).
	MaxContourPoints int
	// MinMaskArea skips degenerate cached masks (default 16 px).
	MinMaskArea int
}

func (c *Config) applyDefaults() {
	if c.K == 0 {
		c.K = 5
	}
	if c.MaxViewAngle == 0 {
		c.MaxViewAngle = 0.5
	}
	if c.MaxContourPoints == 0 {
		c.MaxContourPoints = 160
	}
	if c.MinMaskArea == 0 {
		c.MinMaskArea = 16
	}
}

// CachedMask is an instance mask the mobile side holds for a past frame —
// either received from the edge server or produced by an earlier transfer.
type CachedMask struct {
	FrameIndex int
	InstanceID int
	Label      int
	Mask       *mask.Bitmask
	// FromEdge distinguishes authoritative edge results from chained
	// transfer outputs; edge masks are preferred as sources.
	FromEdge bool
	// pooled marks masks the predictor rasterized from its pool; Compact and
	// Evict return their storage for reuse. Edge-result masks are never
	// pooled — their callers may retain them indefinitely.
	pooled bool
	// runs holds the mask's run-length encoding once Compact has parked the
	// entry: the dense buffer went back to the pool (Mask is nil) and the
	// entry rematerializes through the pool if selected as a source. Kept
	// after rematerialization so re-compacting is free.
	runs []uint32
	// w, h are the dense dimensions, needed to rematerialize a compacted
	// entry.
	w, h int
}

// Predictor transfers cached masks to the current frame.
type Predictor struct {
	cfg    Config
	camera geom.Camera
	// cache maps instance ID -> frame index -> cached mask.
	cache map[int]map[int]*CachedMask
	// pool supplies rasterization targets; pooled masks return via Compact
	// (a few frames behind the present, once the caller can no longer alias
	// them) or Evict. Nil means plain allocation.
	pool *mask.Pool
	// lastPredictFrame is the frame of the most recent Predict call. The
	// caller may still alias that frame's prediction masks (core keeps them
	// for CIIA guidance), so overwrites at this frame must not recycle.
	lastPredictFrame int
}

// NewPredictor builds a predictor for the given camera.
func NewPredictor(cam geom.Camera, cfg Config) *Predictor {
	cfg.applyDefaults()
	return &Predictor{
		cfg:    cfg,
		camera: cam,
		cache:  make(map[int]map[int]*CachedMask),
	}
}

// SetPool directs the predictor to rasterize predicted masks into pooled
// storage recycled on eviction. Call before the first Predict.
func (p *Predictor) SetPool(pool *mask.Pool) { p.pool = pool }

// Put stores a cached mask.
func (p *Predictor) Put(cm *CachedMask) {
	if cm.Mask == nil || cm.Mask.Area() < p.cfg.MinMaskArea {
		return
	}
	byFrame := p.cache[cm.InstanceID]
	if byFrame == nil {
		byFrame = make(map[int]*CachedMask)
		p.cache[cm.InstanceID] = byFrame
	}
	// Edge masks always win over transferred ones for the same frame.
	if prev, ok := byFrame[cm.FrameIndex]; ok {
		if prev.FromEdge && !cm.FromEdge {
			return
		}
		// Overwriting a chained prediction (typically with the authoritative
		// edge mask for the same frame): reclaim its pooled storage now, or
		// it would bleed out of the pool at one set of masks per offload.
		// Masks predicted for the most recent transfer frame may still be
		// aliased by the caller, so those leak to the GC instead.
		if prev.pooled && prev.FrameIndex != p.lastPredictFrame {
			prev.pooled = false
			p.pool.Put(prev.Mask)
		}
	}
	byFrame[cm.FrameIndex] = cm
}

// Evict drops cached masks older than keepAfter for all instances, always
// retaining the newest edge mask per instance. Evicted pooled masks return
// their storage to the pool; compacted entries just drop their run-length
// form (their dense buffer is already back in the pool). Core calls Evict
// when edge results arrive; between results, Compact bounds pool usage
// without changing which entries selection can see.
func (p *Predictor) Evict(keepAfter int) int {
	removed := 0
	for _, byFrame := range p.cache {
		newestEdge := -1
		for idx, cm := range byFrame {
			if cm.FromEdge && idx > newestEdge {
				newestEdge = idx
			}
		}
		for idx, cm := range byFrame {
			if idx < keepAfter && idx != newestEdge {
				if cm.pooled {
					cm.pooled = false
					p.pool.Put(cm.Mask)
				}
				delete(byFrame, idx)
				removed++
			}
		}
	}
	return removed
}

// Compact parks pooled cache entries older than `before` in run-length form:
// each entry keeps its place in the cache (source selection is completely
// unaffected) but its dense buffer returns to the pool, and the entry
// rematerializes through the pool only if selection actually picks it. Core
// calls this every tracked frame a few frames behind the present, so the
// pooled in-flight population stays bounded at the chained working set even
// when CFRS stops offloading — unlike Evict, which fires on edge results and
// so never reclaims anything during quiet stretches. Returns the number of
// entries parked.
func (p *Predictor) Compact(before int) int {
	parked := 0
	for _, byFrame := range p.cache {
		for idx, cm := range byFrame {
			if idx >= before || !cm.pooled {
				continue
			}
			if cm.runs == nil {
				cm.runs = cm.Mask.AppendRuns(make([]uint32, 0, 128))
				cm.w, cm.h = cm.Mask.Width, cm.Mask.Height
			}
			p.pool.Put(cm.Mask)
			cm.Mask = nil
			cm.pooled = false
			parked++
		}
	}
	return parked
}

// materialize restores a compacted entry's dense mask from its run-length
// form, drawing storage from the pool. No-op for entries that still hold
// their dense buffer.
func (p *Predictor) materialize(cm *CachedMask) {
	if cm.Mask != nil {
		return
	}
	m := p.pool.Get(cm.w, cm.h)
	m.FillRuns(cm.runs)
	cm.Mask = m
	cm.pooled = p.pool != nil
}

// CacheSize returns the number of cached masks.
func (p *Predictor) CacheSize() int {
	n := 0
	for _, byFrame := range p.cache {
		n += len(byFrame)
	}
	return n
}

// Prediction is a transferred mask for one instance.
type Prediction struct {
	InstanceID  int
	Label       int
	Mask        *mask.Bitmask
	SourceFrame int
	// SourceAge is the frame-count distance between the source and the
	// current frame, a staleness measure for metrics.
	SourceAge int
}

// PredictAll transfers all known instances onto the current frame, given the
// VO system state after the frame was tracked. Instances without a usable
// source are skipped.
func (p *Predictor) PredictAll(sys *vo.System, frameIdx int) []Prediction {
	insts := sys.Instances()
	out := make([]Prediction, 0, len(insts))
	for _, inst := range insts {
		pred, err := p.Predict(sys, inst.ID, frameIdx)
		if err != nil {
			continue
		}
		out = append(out, *pred)
	}
	// Stable output order for deterministic pipelines.
	sort.Slice(out, func(i, j int) bool { return out[i].InstanceID < out[j].InstanceID })
	return out
}

// Predict transfers one instance's mask to the current frame.
func (p *Predictor) Predict(sys *vo.System, instanceID, frameIdx int) (*Prediction, error) {
	inst := sys.Instance(instanceID)
	if inst == nil {
		return nil, ErrNoSource
	}
	cur := sys.FrameRecordAt(frameIdx)
	if cur == nil {
		return nil, ErrNoSource
	}
	p.lastPredictFrame = frameIdx
	src, srcRec := p.selectSource(sys, instanceID, cur)
	if src == nil {
		return nil, ErrNoSource
	}
	// A compacted source rematerializes from its run-length form; pixels are
	// bit-identical to what Compact parked, so transfers are byte-for-byte
	// the same whether or not the source spent time compacted.
	p.materialize(src)

	// Relative pose mapping source-camera coordinates to current-camera
	// coordinates. Using per-object poses handles moving objects: for an
	// instance, T_rel = T_Ci_O * T_Cj_O^-1; for the degenerate case where
	// object poses are missing, fall back to world poses.
	srcPose, okSrc := srcRec.ObjectPoses[instanceID]
	curPose, okCur := cur.ObjectPoses[instanceID]
	if !okSrc {
		srcPose = srcRec.TCW
	}
	if !okCur {
		curPose = cur.TCW
	}
	rel := curPose.Compose(srcPose.Inverse())

	// Depth sources: the instance's map points observed in the source
	// frame, at their source-frame pixel and depth.
	feats := make([]depthFeat, 0, 64)
	for _, mp := range sys.Map().InstancePoints(instanceID) {
		px, depth, ok := observationIn(mp, src.FrameIndex)
		if !ok || depth <= 0 {
			continue
		}
		feats = append(feats, depthFeat{px: px, depth: depth, edge: mp.NearContour})
	}
	if len(feats) == 0 {
		return nil, ErrNoDepth
	}

	contours := mask.ExtractContoursPooled(src.Mask, p.cfg.MinMaskArea, p.pool)
	if len(contours) == 0 {
		return nil, ErrNoSource
	}
	// Use the largest contour; cached instance masks are single components
	// in practice but occlusion can fragment them.
	contour := contours[0]
	for _, c := range contours[1:] {
		if len(c) > len(contour) {
			contour = c
		}
	}
	contour = mask.SimplifyContour(contour, p.cfg.MaxContourPoints)

	projected := make([]geom.Vec2, 0, len(contour))
	for _, s := range contour {
		depth, ok := p.contourDepth(s, feats)
		if !ok {
			continue
		}
		// Back-project in the source camera, move through the relative
		// pose, re-project in the current camera (Section III-C).
		pc := p.camera.Backproject(s, depth)
		px, err := p.camera.Project(rel.Apply(pc))
		if err != nil {
			continue
		}
		projected = append(projected, px)
	}
	if len(projected) < 3 {
		return nil, ErrNoDepth
	}
	m := p.pool.Get(p.camera.Width, p.camera.Height)
	mask.FillPolygonInto(m, projected, p.camera.Width, p.camera.Height)
	if m.Area() < p.cfg.MinMaskArea {
		p.pool.Put(m) // never escaped; reclaim immediately
		return nil, ErrNoSource
	}
	pred := &Prediction{
		InstanceID:  instanceID,
		Label:       inst.Label,
		Mask:        m,
		SourceFrame: src.FrameIndex,
		SourceAge:   frameIdx - src.FrameIndex,
	}
	// Chain: the prediction becomes a cache entry for future transfers.
	// If Put declines the entry (or later overwrites it), the mask simply
	// leaks to the GC — recycling is only ever an optimization.
	p.Put(&CachedMask{
		FrameIndex: frameIdx,
		InstanceID: instanceID,
		Label:      inst.Label,
		Mask:       m,
		FromEdge:   false,
		pooled:     p.pool != nil,
	})
	return pred, nil
}

// selectSource picks the best cached mask for the instance: an edge mask
// when possible, observed from the closest viewpoint within MaxViewAngle,
// preferring recent frames.
func (p *Predictor) selectSource(sys *vo.System, instanceID int, cur *vo.FrameRecord) (*CachedMask, *vo.FrameRecord) {
	byFrame := p.cache[instanceID]
	if len(byFrame) == 0 {
		return nil, nil
	}
	type candidate struct {
		cm    *CachedMask
		rec   *vo.FrameRecord
		angle float64
	}
	var best *candidate
	better := func(a, b *candidate) bool {
		// Edge masks beat transferred masks; then recency wins with the
		// view angle as tiebreak. Pose error accumulates with source age,
		// so a fresh mask from a slightly worse viewpoint transfers better
		// than an old one from the perfect viewpoint.
		if a.cm.FromEdge != b.cm.FromEdge {
			return a.cm.FromEdge
		}
		if a.cm.FrameIndex != b.cm.FrameIndex {
			return a.cm.FrameIndex > b.cm.FrameIndex
		}
		return a.angle < b.angle
	}
	for _, cm := range byFrame {
		rec := sys.FrameRecordAt(cm.FrameIndex)
		if rec == nil {
			continue
		}
		angle := cur.TCW.RotationAngle(rec.TCW)
		if angle > p.cfg.MaxViewAngle {
			continue
		}
		cand := &candidate{cm: cm, rec: rec, angle: angle}
		if best == nil || better(cand, best) {
			best = cand
		}
	}
	if best == nil {
		return nil, nil
	}
	return best.cm, best.rec
}

// depthFeat is an in-mask feature usable as a depth source for contour
// pixels.
type depthFeat struct {
	px    geom.Vec2
	depth float64
	edge  bool
}

// contourDepth averages the depths of the K nearest features to the contour
// pixel (Section III-C: "the actual positions in 3-D space corresponding to
// a small neighborhood of the object mask are not likely to experience shape
// changes in depth"). Edge-proximal features are preferred by shrinking
// their effective distance, since contour pixels are best explained by
// features near the boundary.
func (p *Predictor) contourDepth(s geom.Vec2, feats []depthFeat) (float64, bool) {
	k := p.cfg.K
	if len(feats) == 0 {
		return 0, false
	}
	if k > len(feats) {
		k = len(feats)
	}
	type scored struct {
		dist  float64
		depth float64
	}
	ds := make([]scored, 0, len(feats))
	for _, f := range feats {
		d := f.px.DistTo(s)
		if f.edge {
			d *= 0.7
		}
		ds = append(ds, scored{dist: d, depth: f.depth})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dist < ds[j].dist })
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += ds[i].depth
	}
	return sum / float64(k), true
}

// observationIn returns the pixel and depth a map point was observed at in
// a specific frame.
func observationIn(mp *vo.MapPoint, frameIdx int) (geom.Vec2, float64, bool) {
	for i := len(mp.Observations) - 1; i >= 0; i-- {
		if mp.Observations[i].FrameIndex == frameIdx {
			return mp.Observations[i].Pixel, mp.Observations[i].Depth, true
		}
	}
	return geom.Vec2{}, 0, false
}
