// Package device models the hardware of the evaluation: mobile devices
// (iPhone 11, Galaxy S10, Dream Glass) and edge nodes (Jetson TX2, Jetson
// AGX Xavier). Profiles provide the per-operation costs that drive the
// simulated clock, plus the CPU / memory / battery models behind the
// resource-overhead experiments (Section VI-F).
package device

import "fmt"

// Profile describes one device.
type Profile struct {
	Name string
	// Mobile marks handheld/worn devices (as opposed to edge nodes).
	Mobile bool

	// InferScale multiplies the reference DL inference latency (Jetson
	// TX2 = 1.0). Mobile scales reflect TFLite CPU/NNAPI execution.
	InferScale float64

	// Per-frame mobile pipeline costs in milliseconds.
	ExtractMs float64 // ORB-style feature extraction
	TrackMs   float64 // VO pose + object tracking
	PredictMs float64 // mask transfer per tracked instance
	EncodeMul float64 // multiplier on the codec's encode cost

	// Power model: battery capacity and component draws.
	BatteryWh      float64
	IdleWatts      float64 // camera + display + OS floor while app runs
	CPUWatts       float64 // incremental draw at 100% app CPU
	RadioWattsMbps float64 // incremental draw per Mbps of radio traffic

	// Memory model.
	MemoryBudgetMB float64 // the cap the cleanup policy must respect
	BaseMemoryMB   float64 // app footprint before maps/caches
}

// Presets for the devices named in the paper.
var (
	// JetsonTX2 is the edge server of the lab evaluation (reference
	// InferScale 1.0 — the segmodel profiles are calibrated to it).
	JetsonTX2 = Profile{
		Name: "jetson-tx2", InferScale: 1.0,
	}
	// JetsonXavier is the oil-field edge node (roughly 2x TX2).
	JetsonXavier = Profile{
		Name: "jetson-agx-xavier", InferScale: 0.5,
	}
	// IPhone11 is the primary mobile device.
	IPhone11 = Profile{
		Name: "iphone-11", Mobile: true, InferScale: 4.0,
		ExtractMs: 8, TrackMs: 9, PredictMs: 2.2, EncodeMul: 1.0,
		BatteryWh: 11.9, IdleWatts: 1.2, CPUWatts: 2.4, RadioWattsMbps: 0.045,
		MemoryBudgetMB: 1024, BaseMemoryMB: 280,
	}
	// GalaxyS10 is the secondary mobile device.
	GalaxyS10 = Profile{
		Name: "galaxy-s10", Mobile: true, InferScale: 4.5,
		ExtractMs: 9, TrackMs: 10, PredictMs: 2.5, EncodeMul: 1.15,
		BatteryWh: 13.0, IdleWatts: 1.4, CPUWatts: 2.9, RadioWattsMbps: 0.05,
		MemoryBudgetMB: 1024, BaseMemoryMB: 300,
	}
	// DreamGlass is the AR headset of the field study.
	DreamGlass = Profile{
		Name: "dream-glass", Mobile: true, InferScale: 6.0,
		ExtractMs: 9.5, TrackMs: 10, PredictMs: 2.3, EncodeMul: 1.3,
		BatteryWh: 9.0, IdleWatts: 1.6, CPUWatts: 2.2, RadioWattsMbps: 0.05,
		MemoryBudgetMB: 768, BaseMemoryMB: 260,
	}
)

// MobileFrameMs returns the device's fixed per-frame pipeline cost with n
// tracked instances (excluding encode, which depends on the offload).
func (p Profile) MobileFrameMs(instances int) float64 {
	return p.ExtractMs + p.TrackMs + p.PredictMs*float64(instances)
}

// CPUModel tracks utilization over a run: utilization is busy milliseconds
// over wall milliseconds, matching how a profiler would report the ~75%
// figure of Fig. 15.
type CPUModel struct {
	busyMs float64
	wallMs float64
}

// Add records a frame interval: busy compute time within a wall budget.
func (c *CPUModel) Add(busyMs, wallMs float64) {
	if busyMs > wallMs {
		busyMs = wallMs // the pipeline saturates a core, not more
	}
	c.busyMs += busyMs
	c.wallMs += wallMs
}

// Utilization returns mean CPU utilization in [0,1].
func (c *CPUModel) Utilization() float64 {
	if c.wallMs == 0 {
		return 0
	}
	return c.busyMs / c.wallMs
}

// MemoryModel tracks the mobile footprint: VO map points, frame records and
// cached masks, with the cleanup policy bounding growth (the "additional
// clearing algorithm" of Section VI-F).
type MemoryModel struct {
	Profile Profile
	// Per-item costs in MB.
	MapPointMB    float64
	FrameRecordMB float64
	CachedMaskMB  float64

	samples []float64
}

// NewMemoryModel builds a memory model with default per-item costs: a map
// point with observations ~2 KB, a frame record (keypoints + ids) ~120 KB,
// a cached mask (bitmask + contour) ~80 KB at 320x240.
func NewMemoryModel(p Profile) *MemoryModel {
	return &MemoryModel{
		Profile:       p,
		MapPointMB:    2.0 / 1024,
		FrameRecordMB: 0.12,
		CachedMaskMB:  0.08,
	}
}

// Sample records the footprint for the current counts and returns it in MB.
func (m *MemoryModel) Sample(mapPoints, frameRecords, cachedMasks int) float64 {
	mb := m.Profile.BaseMemoryMB +
		float64(mapPoints)*m.MapPointMB +
		float64(frameRecords)*m.FrameRecordMB +
		float64(cachedMasks)*m.CachedMaskMB
	m.samples = append(m.samples, mb)
	return mb
}

// Peak returns the maximum sampled footprint.
func (m *MemoryModel) Peak() float64 {
	peak := 0.0
	for _, s := range m.samples {
		if s > peak {
			peak = s
		}
	}
	return peak
}

// GrowthMBPerS estimates the growth rate over the sample history given the
// sampling interval in seconds.
func (m *MemoryModel) GrowthMBPerS(intervalS float64) float64 {
	if len(m.samples) < 2 || intervalS <= 0 {
		return 0
	}
	span := float64(len(m.samples)-1) * intervalS
	return (m.samples[len(m.samples)-1] - m.samples[0]) / span
}

// WithinBudget reports whether every sample respected the device budget.
func (m *MemoryModel) WithinBudget() bool {
	for _, s := range m.samples {
		if s > m.Profile.MemoryBudgetMB {
			return false
		}
	}
	return true
}

// PowerModel integrates energy use over a run.
type PowerModel struct {
	Profile  Profile
	energyWh float64
	wallS    float64
}

// NewPowerModel builds a power model for the device.
func NewPowerModel(p Profile) *PowerModel {
	return &PowerModel{Profile: p}
}

// Add records an interval: wall seconds, mean CPU utilization in [0,1] and
// radio traffic in megabits.
func (pm *PowerModel) Add(wallS, cpuUtil, radioMbits float64) {
	watts := pm.Profile.IdleWatts + pm.Profile.CPUWatts*cpuUtil
	pm.energyWh += watts * wallS / 3600
	if wallS > 0 {
		// Radio draw scales with the average rate over the interval.
		rateMbps := radioMbits / wallS
		pm.energyWh += pm.Profile.RadioWattsMbps * rateMbps * wallS / 3600
	}
	pm.wallS += wallS
}

// BatteryDrainPct returns the battery percentage consumed so far.
func (pm *PowerModel) BatteryDrainPct() float64 {
	if pm.Profile.BatteryWh == 0 {
		return 0
	}
	return 100 * pm.energyWh / pm.Profile.BatteryWh
}

// EnergyWh returns the integrated energy.
func (pm *PowerModel) EnergyWh() float64 { return pm.energyWh }

// String summarizes a profile.
func (p Profile) String() string {
	kind := "edge"
	if p.Mobile {
		kind = "mobile"
	}
	return fmt.Sprintf("%s (%s, infer x%.1f)", p.Name, kind, p.InferScale)
}
