package device

import (
	"math"
	"testing"
)

func TestProfilePresets(t *testing.T) {
	for _, p := range []Profile{JetsonTX2, JetsonXavier, IPhone11, GalaxyS10, DreamGlass} {
		if p.Name == "" || p.InferScale <= 0 {
			t.Errorf("bad preset %+v", p)
		}
		if p.String() == "" {
			t.Error("empty String()")
		}
	}
	if JetsonTX2.Mobile || !IPhone11.Mobile {
		t.Error("mobility flags wrong")
	}
	// Edge ordering: Xavier faster than TX2; mobiles slower than both.
	if !(JetsonXavier.InferScale < JetsonTX2.InferScale) {
		t.Error("Xavier should be faster than TX2")
	}
	if !(IPhone11.InferScale > JetsonTX2.InferScale) {
		t.Error("mobile inference should be slower than the edge")
	}
}

func TestMobileFrameMs(t *testing.T) {
	base := IPhone11.MobileFrameMs(0)
	with3 := IPhone11.MobileFrameMs(3)
	if base <= 0 || with3 <= base {
		t.Errorf("frame cost: base=%v with3=%v", base, with3)
	}
	// The calibrated per-frame cost should sit inside the 33 ms budget for
	// typical instance counts (the paper's 28 ms average).
	if IPhone11.MobileFrameMs(3) > 33 {
		t.Errorf("3-instance frame cost %v exceeds the budget", IPhone11.MobileFrameMs(3))
	}
}

func TestCPUModel(t *testing.T) {
	var c CPUModel
	if c.Utilization() != 0 {
		t.Error("fresh model should report 0")
	}
	c.Add(25, 33.3)
	c.Add(25, 33.3)
	if got := c.Utilization(); math.Abs(got-25/33.3) > 1e-9 {
		t.Errorf("utilization = %v", got)
	}
	// Saturation: busy beyond wall clamps to 1.0 for that interval.
	var c2 CPUModel
	c2.Add(100, 33.3)
	if got := c2.Utilization(); got != 1 {
		t.Errorf("saturated utilization = %v", got)
	}
}

func TestMemoryModel(t *testing.T) {
	m := NewMemoryModel(IPhone11)
	first := m.Sample(1000, 100, 20)
	if first <= IPhone11.BaseMemoryMB {
		t.Error("sample below base footprint")
	}
	second := m.Sample(2000, 150, 40)
	if second <= first {
		t.Error("more items should cost more memory")
	}
	if m.Peak() != second {
		t.Errorf("peak = %v, want %v", m.Peak(), second)
	}
	if m.GrowthMBPerS(1) <= 0 {
		t.Error("growth should be positive")
	}
	if !m.WithinBudget() {
		t.Error("moderate footprint should be within budget")
	}
	// Exceed the budget.
	m.Sample(1_000_000, 0, 0)
	if m.WithinBudget() {
		t.Error("huge footprint should violate budget")
	}
}

func TestMemoryModelEmpty(t *testing.T) {
	m := NewMemoryModel(IPhone11)
	if m.Peak() != 0 || m.GrowthMBPerS(1) != 0 {
		t.Error("empty model should report zeros")
	}
	if !m.WithinBudget() {
		t.Error("no samples: trivially within budget")
	}
}

func TestPowerModelCalibration(t *testing.T) {
	// A 10-minute session at ~75% CPU with light radio traffic should
	// drain roughly the paper's 4.2% on an iPhone 11.
	pm := NewPowerModel(IPhone11)
	pm.Add(600, 0.75, 0.9*600/8) // ~0.9 Mbps average radio
	drain := pm.BatteryDrainPct()
	if drain < 3.0 || drain > 6.0 {
		t.Errorf("drain = %.2f%%, want ~4.2%%", drain)
	}
	if pm.EnergyWh() <= 0 {
		t.Error("no energy recorded")
	}
	// Galaxy drains more (paper: 5.4% vs 4.2%).
	pg := NewPowerModel(GalaxyS10)
	pg.Add(600, 0.75, 0.9*600/8)
	if pg.BatteryDrainPct() <= drain {
		t.Errorf("galaxy %.2f%% should exceed iphone %.2f%%", pg.BatteryDrainPct(), drain)
	}
}

func TestPowerModelZeroBattery(t *testing.T) {
	pm := NewPowerModel(Profile{Name: "x"})
	pm.Add(60, 0.5, 0)
	if pm.BatteryDrainPct() != 0 {
		t.Error("zero-capacity battery should report 0 drain")
	}
}
