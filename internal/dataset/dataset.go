// Package dataset defines the evaluation scenarios standing in for the
// paper's video corpora (Section VI-B): DAVIS, KITTI, Xiph and the
// self-recorded AR clips (19k+ labeled frames in the paper). Each synthetic
// clip pairs a procedurally generated world with a camera trajectory; the
// mixture of object counts, dynamics and camera motion mirrors the
// character of the original dataset it replaces.
package dataset

import (
	"fmt"

	"edgeis/internal/geom"
	"edgeis/internal/scene"
)

// Clip is one evaluation sequence.
type Clip struct {
	Name    string
	Dataset string
	World   *scene.World
	Traj    scene.Trajectory
	Frames  int
	// CameraSpeed feeds the motion-blur model (m/s).
	CameraSpeed float64
	// Dynamic marks clips containing moving objects.
	Dynamic bool
}

// Duration returns the clip length in seconds at the camera rate.
func (c Clip) Duration() float64 { return float64(c.Frames) / scene.FrameRate }

// String identifies the clip.
func (c Clip) String() string {
	return fmt.Sprintf("%s/%s (%d frames)", c.Dataset, c.Name, c.Frames)
}

// DAVIS returns indoor object-centric clips with one or two subjects and
// occasional subject motion, echoing DAVIS's single-object video style.
func DAVIS(seed int64, frames int) []Clip {
	if frames == 0 {
		frames = 240
	}
	return []Clip{
		{
			Name: "orbit-static", Dataset: "davis",
			World: scene.IndoorScene(scene.PresetConfig{Seed: seed, ObjectCount: 2}),
			Traj: scene.OrbitPath{
				Center: geom.V3(2.5, 1, 6.3), Radius: 4.5, Height: 1.6,
				AngVel: 0.22, Length: float64(frames) / scene.FrameRate,
			},
			Frames: frames, CameraSpeed: 1.0,
		},
		{
			Name: "subject-moving", Dataset: "davis",
			World: scene.IndoorScene(scene.PresetConfig{
				Seed: seed + 1, ObjectCount: 2, DynamicCount: 1, DynamicSpeed: 0.5,
			}),
			Traj: scene.WaypointPath{
				Waypoints: []geom.Vec3{geom.V3(-2, 1.6, -1), geom.V3(2, 1.6, 0)},
				Target:    geom.V3(2.5, 1, 6.3), Speed: 0.9, Bob: 0.015,
			},
			Frames: frames, CameraSpeed: 0.9, Dynamic: true,
		},
	}
}

// KITTI returns street clips with several vehicles and pedestrians, some
// moving — the driving-dataset analogue.
func KITTI(seed int64, frames int) []Clip {
	if frames == 0 {
		frames = 240
	}
	return []Clip{
		{
			Name: "street-static", Dataset: "kitti",
			World:  scene.StreetScene(scene.PresetConfig{Seed: seed + 10, ObjectCount: 4}),
			Traj:   scene.InspectionRoute(scene.WalkSpeed),
			Frames: frames, CameraSpeed: scene.WalkSpeed,
		},
		{
			Name: "street-traffic", Dataset: "kitti",
			World: scene.StreetScene(scene.PresetConfig{
				Seed: seed + 11, ObjectCount: 5, DynamicCount: 2, DynamicSpeed: 1.2,
			}),
			Traj:   scene.InspectionRoute(scene.WalkSpeed),
			Frames: frames, CameraSpeed: scene.WalkSpeed, Dynamic: true,
		},
	}
}

// Xiph returns mixed-content clips (the generic test-sequence corpus): a
// static busy scene and a fast pan.
func Xiph(seed int64, frames int) []Clip {
	if frames == 0 {
		frames = 240
	}
	return []Clip{
		{
			Name: "busy-pan", Dataset: "xiph",
			World: scene.StreetScene(scene.PresetConfig{Seed: seed + 20, ObjectCount: 6}),
			Traj: scene.OrbitPath{
				Center: geom.V3(0, 1, 12), Radius: 9, Height: 1.7,
				AngVel: 0.3, Length: float64(frames) / scene.FrameRate, Phase: -1.2,
			},
			Frames: frames, CameraSpeed: 2.7,
		},
	}
}

// SelfRecorded returns the handcrafted AR clips of the paper's own dataset:
// indoor and industrial inspection walks.
func SelfRecorded(seed int64, frames int) []Clip {
	if frames == 0 {
		frames = 300
	}
	return []Clip{
		{
			Name: "indoor-ar", Dataset: "self",
			World: scene.IndoorScene(scene.PresetConfig{Seed: seed + 30, ObjectCount: 3}),
			Traj: scene.WaypointPath{
				Waypoints: []geom.Vec3{
					geom.V3(-3, 1.6, -2), geom.V3(0, 1.6, -0.5), geom.V3(3, 1.6, 0.5),
				},
				Target: geom.V3(1, 1, 6), Speed: scene.WalkSpeed, Bob: 0.02,
			},
			Frames: frames, CameraSpeed: scene.WalkSpeed,
		},
		{
			Name: "industrial-inspection", Dataset: "self",
			World:  scene.IndustrialScene(scene.PresetConfig{Seed: seed + 31, ObjectCount: 5}),
			Traj:   scene.InspectionRoute(scene.WalkSpeed),
			Frames: frames, CameraSpeed: scene.WalkSpeed,
		},
	}
}

// All returns the full evaluation corpus across the four datasets.
func All(seed int64, frames int) []Clip {
	var out []Clip
	out = append(out, DAVIS(seed, frames)...)
	out = append(out, KITTI(seed, frames)...)
	out = append(out, Xiph(seed, frames)...)
	out = append(out, SelfRecorded(seed, frames)...)
	return out
}

// GaitClips returns the same route at the walk/stride/jog speeds of the
// camera-motion robustness study (Fig. 12).
func GaitClips(seed int64, frames int) []Clip {
	mk := func(name string, speed float64) Clip {
		return Clip{
			Name: name, Dataset: "gait",
			World:  scene.StreetScene(scene.PresetConfig{Seed: seed + 40, ObjectCount: 3}),
			Traj:   scene.InspectionRoute(speed),
			Frames: frames, CameraSpeed: speed,
		}
	}
	return []Clip{
		mk("walk", scene.WalkSpeed),
		mk("stride", scene.StrideSpeed),
		mk("jog", scene.JogSpeed),
	}
}

// ComplexityClips returns the scene-complexity study scenarios (Fig. 13):
// easy (<=3 objects), medium (<=10), and hard (objects move mid-run).
func ComplexityClips(seed int64, frames int) []Clip {
	return []Clip{
		{
			Name: "easy", Dataset: "complexity",
			World:  scene.StreetScene(scene.PresetConfig{Seed: seed + 50, ObjectCount: 3}),
			Traj:   scene.InspectionRoute(scene.WalkSpeed),
			Frames: frames, CameraSpeed: scene.WalkSpeed,
		},
		{
			Name: "medium", Dataset: "complexity",
			World:  scene.StreetScene(scene.PresetConfig{Seed: seed + 51, ObjectCount: 9}),
			Traj:   scene.InspectionRoute(scene.WalkSpeed),
			Frames: frames, CameraSpeed: scene.WalkSpeed,
		},
		{
			Name: "hard", Dataset: "complexity",
			World: scene.StreetScene(scene.PresetConfig{
				Seed: seed + 52, ObjectCount: 6, DynamicCount: 3,
				DynamicSpeed: 0.8, DynamicStart: 2.5,
			}),
			Traj:   scene.InspectionRoute(scene.WalkSpeed),
			Frames: frames, CameraSpeed: scene.WalkSpeed, Dynamic: true,
		},
	}
}

// FieldClip returns the oil-field deployment scenario of the case study
// (Fig. 17): industrial equipment inspected along a sweep route.
func FieldClip(seed int64, frames int) Clip {
	return Clip{
		Name: "oil-field", Dataset: "field",
		World:  scene.IndustrialScene(scene.PresetConfig{Seed: seed + 60, ObjectCount: 6}),
		Traj:   scene.InspectionRoute(scene.WalkSpeed * 0.8),
		Frames: frames, CameraSpeed: scene.WalkSpeed * 0.8,
	}
}

// Stats summarizes a corpus for reports.
type Stats struct {
	Clips        int
	TotalFrames  int
	TotalSeconds float64
	DynamicClips int
}

// Summarize computes corpus statistics.
func Summarize(clips []Clip) Stats {
	var s Stats
	for _, c := range clips {
		s.Clips++
		s.TotalFrames += c.Frames
		s.TotalSeconds += c.Duration()
		if c.Dynamic {
			s.DynamicClips++
		}
	}
	return s
}
