package dataset

import (
	"strings"
	"testing"

	"edgeis/internal/scene"
)

func TestAllCorpus(t *testing.T) {
	clips := All(1, 120)
	if len(clips) < 6 {
		t.Fatalf("corpus has %d clips", len(clips))
	}
	datasets := map[string]bool{}
	for _, c := range clips {
		datasets[c.Dataset] = true
		if c.World == nil || c.Traj == nil || c.Frames <= 0 {
			t.Errorf("incomplete clip %s", c.Name)
		}
		if c.CameraSpeed <= 0 {
			t.Errorf("clip %s has no camera speed", c.Name)
		}
		if !strings.Contains(c.String(), c.Dataset) {
			t.Error("String() missing dataset")
		}
	}
	for _, want := range []string{"davis", "kitti", "xiph", "self"} {
		if !datasets[want] {
			t.Errorf("dataset %s missing", want)
		}
	}
}

func TestDynamicFlagsConsistent(t *testing.T) {
	for _, c := range All(3, 90) {
		hasDynamic := c.World.DynamicObjectCount() > 0
		if c.Dynamic != hasDynamic {
			t.Errorf("clip %s: Dynamic=%v but world has %d movers",
				c.Name, c.Dynamic, c.World.DynamicObjectCount())
		}
	}
}

func TestGaitClipsShareRoute(t *testing.T) {
	clips := GaitClips(1, 120)
	if len(clips) != 3 {
		t.Fatalf("%d gait clips", len(clips))
	}
	speeds := []float64{scene.WalkSpeed, scene.StrideSpeed, scene.JogSpeed}
	for i, c := range clips {
		if c.CameraSpeed != speeds[i] {
			t.Errorf("clip %s speed = %v", c.Name, c.CameraSpeed)
		}
	}
	// Same world for all three: identical object IDs and centers.
	w0, w1 := clips[0].World, clips[1].World
	if len(w0.Objects) != len(w1.Objects) {
		t.Fatal("gait worlds differ")
	}
	for i := range w0.Objects {
		if w0.Objects[i].Center != w1.Objects[i].Center {
			t.Error("gait worlds have different layouts")
		}
	}
}

func TestComplexityClipsOrdering(t *testing.T) {
	clips := ComplexityClips(1, 90)
	if len(clips) != 3 {
		t.Fatalf("%d complexity clips", len(clips))
	}
	easy, medium, hard := clips[0], clips[1], clips[2]
	if !(len(easy.World.Objects) < len(medium.World.Objects)) {
		t.Error("medium should have more objects than easy")
	}
	if easy.World.DynamicObjectCount() != 0 || medium.World.DynamicObjectCount() != 0 {
		t.Error("easy/medium must be static")
	}
	if hard.World.DynamicObjectCount() == 0 || !hard.Dynamic {
		t.Error("hard must contain movers")
	}
}

func TestFieldClip(t *testing.T) {
	c := FieldClip(1, 300)
	if c.Dataset != "field" || c.Frames != 300 {
		t.Errorf("field clip misconfigured: %+v", c)
	}
	// Industrial classes present.
	foundIndustrial := false
	for _, o := range c.World.Objects {
		switch o.Class {
		case scene.OilSeparator, scene.Tank, scene.Pump, scene.Tube, scene.Valve, scene.Gauge:
			foundIndustrial = true
		}
	}
	if !foundIndustrial {
		t.Error("field clip lacks industrial equipment")
	}
}

func TestSummarize(t *testing.T) {
	clips := All(1, 120)
	st := Summarize(clips)
	if st.Clips != len(clips) {
		t.Error("clip count mismatch")
	}
	if st.TotalFrames != 120*len(clips) && st.TotalFrames <= 0 {
		t.Error("frame total wrong")
	}
	if st.TotalSeconds <= 0 || st.DynamicClips == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDefaultFrameCounts(t *testing.T) {
	if DAVIS(1, 0)[0].Frames <= 0 {
		t.Error("default frames not applied")
	}
	if SelfRecorded(1, 0)[0].Frames <= 0 {
		t.Error("default frames not applied")
	}
	if c := DAVIS(1, 77)[0]; c.Frames != 77 {
		t.Error("explicit frames ignored")
	}
}

func TestClipDuration(t *testing.T) {
	c := Clip{Frames: 60}
	if c.Duration() != 2 {
		t.Errorf("duration = %v", c.Duration())
	}
}
