// Package netsim models the wireless links of the evaluation (Section
// VI-C2): WiFi 2.4 GHz, WiFi 5 GHz and LTE, each with throughput, base
// latency, jitter and loss. Transmission delay of a payload is
// bytes/goodput + RTT/2 + jitter, with losses charged as retransmissions —
// the quantity every end-to-end experiment consumes.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
)

// Medium identifies a link type.
type Medium int

// Link media of the evaluation.
const (
	// WiFi24 is 2.4 GHz WiFi: moderate goodput, moderate latency.
	WiFi24 Medium = iota + 1
	// WiFi5 is 5 GHz WiFi: the paper's best-case link.
	WiFi5
	// LTE is the cellular link of the oil-field deployment.
	LTE
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case WiFi24:
		return "wifi-2.4GHz"
	case WiFi5:
		return "wifi-5GHz"
	case LTE:
		return "lte"
	default:
		return fmt.Sprintf("medium(%d)", int(m))
	}
}

// Profile is a link's statistical behaviour.
type Profile struct {
	Medium Medium
	// GoodputMbps is the sustained application-layer throughput.
	GoodputMbps float64
	// BaseRTTMs is the round-trip latency floor.
	BaseRTTMs float64
	// JitterMs is the standard deviation of one-way delay noise.
	JitterMs float64
	// LossRate is the per-packet loss probability; losses retransmit and
	// charge an extra RTT.
	LossRate float64
	// MTU is the packet size used for loss accounting.
	MTU int
}

// DefaultProfile returns the calibrated link profile.
//
// Goodputs follow typical indoor application-layer rates: WiFi 5 GHz
// ~120 Mbps, WiFi 2.4 GHz ~35 Mbps, LTE ~25 Mbps with higher RTT — enough
// spread to reproduce the network sensitivity of Fig. 10.
func DefaultProfile(m Medium) Profile {
	switch m {
	case WiFi24:
		return Profile{Medium: m, GoodputMbps: 35, BaseRTTMs: 8, JitterMs: 3.5, LossRate: 0.012, MTU: 1400}
	case WiFi5:
		return Profile{Medium: m, GoodputMbps: 120, BaseRTTMs: 4, JitterMs: 1.5, LossRate: 0.004, MTU: 1400}
	case LTE:
		return Profile{Medium: m, GoodputMbps: 25, BaseRTTMs: 38, JitterMs: 9, LossRate: 0.015, MTU: 1400}
	default:
		panic(fmt.Sprintf("netsim: unknown medium %d", int(m)))
	}
}

// Link is a simulated shared link with queueing: concurrent transfers see
// each other's backlog.
type Link struct {
	Profile Profile
	rng     *rand.Rand
	// busyUntilMs is the simulated time at which the link frees up.
	busyUntilMs float64
}

// NewLink builds a link with deterministic noise.
func NewLink(p Profile, seed int64) *Link {
	return &Link{Profile: p, rng: rand.New(rand.NewSource(seed))}
}

// TransferMs returns the one-way delivery time in milliseconds for a
// payload submitted at simulated time nowMs, including queueing behind
// earlier transfers, serialization, propagation, jitter and loss
// retransmissions. It advances the link's busy horizon.
func (l *Link) TransferMs(nowMs float64, payloadBytes int) float64 {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	start := math.Max(nowMs, l.busyUntilMs)
	queueWait := start - nowMs

	serialize := float64(payloadBytes) * 8 / (l.Profile.GoodputMbps * 1000) // ms
	prop := l.Profile.BaseRTTMs / 2
	jitter := math.Abs(l.rng.NormFloat64()) * l.Profile.JitterMs

	// Loss: each lost packet costs one extra RTT (fast retransmit).
	packets := payloadBytes/l.Profile.MTU + 1
	retrans := 0.0
	for i := 0; i < packets; i++ {
		if l.rng.Float64() < l.Profile.LossRate {
			retrans += l.Profile.BaseRTTMs
		}
	}

	l.busyUntilMs = start + serialize
	return queueWait + serialize + prop + jitter + retrans
}

// RTTMs returns a sampled round-trip time for a tiny control message.
func (l *Link) RTTMs() float64 {
	return l.Profile.BaseRTTMs + math.Abs(l.rng.NormFloat64())*l.Profile.JitterMs
}

// Reset clears the queue state (new experiment run).
func (l *Link) Reset(seed int64) {
	l.rng = rand.New(rand.NewSource(seed))
	l.busyUntilMs = 0
}
