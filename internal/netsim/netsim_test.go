package netsim

import (
	"testing"
)

func TestMediumString(t *testing.T) {
	for _, m := range []Medium{WiFi24, WiFi5, LTE} {
		if m.String() == "" {
			t.Error("empty medium name")
		}
	}
	if Medium(9).String() == "" {
		t.Error("unknown medium should stringify")
	}
}

func TestProfileOrdering(t *testing.T) {
	w24, w5, lte := DefaultProfile(WiFi24), DefaultProfile(WiFi5), DefaultProfile(LTE)
	if !(w5.GoodputMbps > w24.GoodputMbps) {
		t.Error("WiFi5 should be faster than WiFi2.4")
	}
	if !(lte.BaseRTTMs > w5.BaseRTTMs) {
		t.Error("LTE should have higher RTT")
	}
}

func TestTransferScalesWithPayload(t *testing.T) {
	l := NewLink(DefaultProfile(WiFi5), 1)
	small := l.TransferMs(0, 1_000)
	l.Reset(1)
	big := l.TransferMs(0, 1_000_000)
	if big <= small {
		t.Errorf("1MB (%.2f ms) should cost more than 1KB (%.2f ms)", big, small)
	}
	// 1 MB at 120 Mbps is ~67 ms serialization.
	if big < 60 || big > 160 {
		t.Errorf("1MB transfer = %.1f ms, want ~70-120", big)
	}
}

func TestMediumLatencyOrdering(t *testing.T) {
	payload := 50_000
	mean := func(m Medium) float64 {
		l := NewLink(DefaultProfile(m), 7)
		sum := 0.0
		for i := 0; i < 200; i++ {
			l.Reset(int64(i))
			sum += l.TransferMs(0, payload)
		}
		return sum / 200
	}
	w5, w24, lte := mean(WiFi5), mean(WiFi24), mean(LTE)
	if !(w5 < w24 && w24 < lte) {
		t.Errorf("latency ordering violated: w5=%.1f w24=%.1f lte=%.1f", w5, w24, lte)
	}
}

func TestQueueingDelaysBackToBack(t *testing.T) {
	l := NewLink(DefaultProfile(WiFi24), 3)
	first := l.TransferMs(0, 500_000)
	second := l.TransferMs(0, 500_000) // submitted at the same instant
	if second <= first*0.8 {
		t.Errorf("second transfer (%.1f ms) should queue behind first (%.1f ms)", second, first)
	}
	// After the link drains, latency returns to normal.
	late := l.TransferMs(1e6, 500_000)
	if late >= second {
		t.Error("transfer after drain should not see the old queue")
	}
}

func TestNegativePayloadClamped(t *testing.T) {
	l := NewLink(DefaultProfile(WiFi5), 4)
	if ms := l.TransferMs(0, -100); ms <= 0 {
		t.Errorf("transfer of clamped payload = %v", ms)
	}
}

func TestRTTSampling(t *testing.T) {
	l := NewLink(DefaultProfile(LTE), 5)
	for i := 0; i < 50; i++ {
		rtt := l.RTTMs()
		if rtt < DefaultProfile(LTE).BaseRTTMs {
			t.Fatalf("RTT %v below base", rtt)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := NewLink(DefaultProfile(WiFi24), 42)
	b := NewLink(DefaultProfile(WiFi24), 42)
	for i := 0; i < 20; i++ {
		if a.TransferMs(float64(i)*33, 30_000) != b.TransferMs(float64(i)*33, 30_000) {
			t.Fatal("same seed diverged")
		}
	}
}
