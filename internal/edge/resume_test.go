package edge

import (
	"testing"
	"time"

	"edgeis/internal/segmodel"
)

// TestResumeSessionAdoption: a session adopted through the resume
// handshake carries its cross-replica key, counts in ResumedSessions, and
// starts with a cold feature cache — so its first frame is a forced
// keyframe even under a policy whose interval would otherwise allow
// warping. This is the migration invariant: the pyramid the session warped
// from died with the old replica.
func TestResumeSessionAdoption(t *testing.T) {
	acc := &warpCountAccel{}
	s := NewScheduler(Config{Workers: 1,
		Keyframe:       segmodel.KeyframePolicy{Interval: 8},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()

	// The pre-migration life of the session (the same scheduler stands in
	// for the replica that will die): cache warmed, frames warping.
	orig := s.NewSession("10.0.0.1:1111")
	in := segmodel.Input{Width: 640, Height: 480}
	for i := 0; i < 4; i++ {
		in.Seed = int64(i)
		if _, _, err := orig.Infer(in, nil); err != nil {
			t.Fatal(err)
		}
	}
	fullBefore, warpBefore := acc.counts()
	if fullBefore != 1 || warpBefore != 3 {
		t.Fatalf("warm-up saw %d full / %d warped, want 1/3", fullBefore, warpBefore)
	}
	orig.Close()

	// Migration: the target replica adopts the identity.
	sess := s.ResumeSession("fleet-42", "10.0.0.2:2222")
	defer sess.Close()
	if sess.Key() != "fleet-42" {
		t.Errorf("adopted session key = %q", sess.Key())
	}
	if sess.ID() == orig.ID() {
		t.Error("adopted session must get its own local ID")
	}
	if got := s.Stats().ResumedSessions; got != 1 {
		t.Errorf("ResumedSessions = %d, want 1", got)
	}

	// First post-migration frame: forced keyframe (cold cache), not a warp,
	// even though only 4 frames have passed under an interval-8 policy.
	in.Seed = 100
	out, _, err := sess.Infer(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Warped {
		t.Fatal("first frame after migration warped from a pyramid that died with the old replica")
	}
	full, warp := acc.counts()
	if full != fullBefore+1 || warp != warpBefore {
		t.Fatalf("post-migration launch: %d full / %d warped, want %d/%d",
			full, warp, fullBefore+1, warpBefore)
	}

	// Subsequent frames warp again from the rebuilt cache.
	in.Seed = 101
	out, _, err = sess.Infer(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Warped {
		t.Error("second frame after migration should warp from the rebuilt cache")
	}

	// The adopted identity is visible in the session table.
	found := false
	for _, row := range s.Sessions() {
		if row.Key == "fleet-42" {
			found = true
		}
	}
	if !found {
		t.Error("adopted session key missing from Sessions()")
	}
}

// TestResumeSessionPlainSessionsUnkeyed: plain connections stay keyless and
// never count as resumed, so a single-replica deployment is byte-identical
// to the pre-fleet stack.
func TestResumeSessionPlainSessionsUnkeyed(t *testing.T) {
	s := NewScheduler(Config{Workers: 1,
		NewAccelerator: func(int) Accelerator { return sleepAccel{0} }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")
	defer sess.Close()
	if sess.Key() != "" {
		t.Errorf("plain session key = %q, want empty", sess.Key())
	}
	if got := s.Stats().ResumedSessions; got != 0 {
		t.Errorf("ResumedSessions = %d, want 0", got)
	}
}

// TestQueueSnapshotLoadSignal: the placement layer's load probe reflects
// queued and in-flight work and costs no allocation to sample.
func TestQueueSnapshotLoadSignal(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, QueueDepth: 8,
		NewAccelerator: func(int) Accelerator { return sleepAccel{5 * time.Millisecond} }})
	defer func() { _ = s.Close() }()

	q0 := s.QueueSnapshot()
	if q0.Backlog() != 0 || q0.Depth != 8 || q0.Sessions != 0 {
		t.Fatalf("idle snapshot = %+v", q0)
	}

	sess := s.NewSession("c")
	defer sess.Close()
	in := segmodel.Input{Width: 64, Height: 48}
	const n = 4
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		frame := in
		frame.Seed = int64(i)
		go func() {
			_, _, err := sess.Infer(frame, nil)
			done <- err
		}()
	}
	waitFor(t, "backlog visible", func() bool {
		q := s.QueueSnapshot()
		return q.Backlog() >= 1 && q.Sessions == 1
	})
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "backlog drained", func() bool { return s.QueueSnapshot().Backlog() == 0 })
}
