package edge

import (
	"sync"
	"testing"

	"edgeis/internal/segmodel"
)

// TestClassOfNeverCoBatchMatrix enumerates every batch-class pair across
// guided/vanilla x keyframe/non-keyframe (at a fixed resolution, plus a
// resolution axis) and asserts the never-co-batch matrix directly: two
// requests share a launch class iff they agree on resolution AND guidance
// class AND keyframe class.
func TestClassOfNeverCoBatchMatrix(t *testing.T) {
	small := segmodel.Input{Width: 64, Height: 48}
	large := segmodel.Input{Width: 128, Height: 96}
	g := &plan{}

	type variant struct {
		name     string
		in       segmodel.Input
		g        segmodel.Guidance
		keyframe bool
	}
	variants := []variant{
		{"vanilla/keyframe", small, nil, true},
		{"vanilla/warped", small, nil, false},
		{"guided/keyframe", small, g, true},
		{"guided/warped", small, g, false},
		{"vanilla/keyframe/large", large, nil, true},
	}
	for i, a := range variants {
		for j, b := range variants {
			ca := ClassOf(a.in, a.g, a.keyframe)
			cb := ClassOf(b.in, b.g, b.keyframe)
			want := i == j // every variant differs in at least one axis
			if got := ca == cb; got != want {
				t.Errorf("ClassOf(%s) vs ClassOf(%s): co-batchable=%v, want %v",
					a.name, b.name, got, want)
			}
		}
	}

	// The class fields mirror the request exactly.
	c := ClassOf(small, g, false)
	if c.Width != 64 || c.Height != 48 || !c.Guided || c.Keyframe {
		t.Errorf("ClassOf fields = %+v", c)
	}
	// Disabled skip-compute marks every request a keyframe, collapsing the
	// matrix back to the pre-cache resolution x guidance key.
	if ClassOf(small, nil, true) != (BatchClass{Width: 64, Height: 48, Keyframe: true}) {
		t.Error("keyframe class literal mismatch")
	}
}

// warpCountAccel counts full-backbone and warped launches and reports the
// matching cost shape (36 ms full, 6 ms warp).
type warpCountAccel struct {
	mu   sync.Mutex
	full int
	warp int
}

func (a *warpCountAccel) Run(in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64) {
	a.mu.Lock()
	a.full++
	a.mu.Unlock()
	return &segmodel.Result{BackboneMs: 36}, 36
}

func (a *warpCountAccel) RunWarped(in segmodel.Input, g segmodel.Guidance, d segmodel.KeyframeDecision) (*segmodel.Result, float64) {
	a.mu.Lock()
	a.warp++
	a.mu.Unlock()
	return &segmodel.Result{BackboneMs: 6, Warped: true, CacheAge: d.Age}, 6
}

func (a *warpCountAccel) RunWarpedBatch(ins []segmodel.Input, gs []segmodel.Guidance, ds []segmodel.KeyframeDecision) ([]*segmodel.Result, float64) {
	outs := make([]*segmodel.Result, len(ins))
	solos := make([]float64, len(ins))
	for i := range ins {
		outs[i], solos[i] = a.RunWarped(ins[i], gs[i], ds[i])
	}
	return outs, segmodel.BatchMs(solos)
}

func (a *warpCountAccel) counts() (full, warp int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.full, a.warp
}

func TestSchedulerSkipCompute(t *testing.T) {
	acc := &warpCountAccel{}
	s := NewScheduler(Config{Workers: 1,
		Keyframe:       segmodel.KeyframePolicy{Interval: 4},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")
	defer sess.Close()

	in := segmodel.Input{Width: 640, Height: 480}
	var warpSum, fullSum float64
	for i := 0; i < 8; i++ {
		in.Seed = int64(i)
		out, inferMs, err := sess.Infer(in, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if out.Warped {
			warpSum += inferMs
		} else {
			fullSum += inferMs
		}
	}

	// Interval 4 on a static scene: cold keyframe, 3 warps, interval
	// keyframe, 3 warps.
	full, warp := acc.counts()
	if full != 2 || warp != 6 {
		t.Fatalf("accelerator saw %d full / %d warped launches, want 2/6", full, warp)
	}
	st := s.Stats()
	if st.KeyframesServed != 2 || st.WarpedServed != 6 {
		t.Fatalf("stats keyframes=%d warped=%d, want 2/6", st.KeyframesServed, st.WarpedServed)
	}
	if st.KeyframesServed+st.WarpedServed != st.Served {
		t.Fatalf("keyframes+warped=%d != served=%d",
			st.KeyframesServed+st.WarpedServed, st.Served)
	}
	if warpSum >= fullSum {
		t.Errorf("6 warped frames (%.0f ms) should cost less than 2 keyframes (%.0f ms)", warpSum, fullSum)
	}
}

func TestSchedulerSkipComputeDisabledKeepsCountersZero(t *testing.T) {
	acc := &warpCountAccel{}
	s := NewScheduler(Config{Workers: 1,
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")
	defer sess.Close()

	in := segmodel.Input{Width: 640, Height: 480}
	for i := 0; i < 5; i++ {
		in.Seed = int64(i)
		if _, _, err := sess.Infer(in, nil); err != nil {
			t.Fatal(err)
		}
	}
	full, warp := acc.counts()
	if full != 5 || warp != 0 {
		t.Fatalf("disabled policy: %d full / %d warped, want 5/0", full, warp)
	}
	st := s.Stats()
	if st.KeyframesServed != 0 || st.WarpedServed != 0 {
		t.Fatalf("disabled policy must keep counters zero, got %d/%d",
			st.KeyframesServed, st.WarpedServed)
	}
}

// TestSchedulerSkipComputeWithoutWarpAccelerator: an accelerator that
// cannot warp still serves non-keyframe decisions (at full cost) and the
// served partition stays consistent.
func TestSchedulerSkipComputeWithoutWarpAccelerator(t *testing.T) {
	s := NewScheduler(Config{Workers: 1,
		Keyframe:       segmodel.KeyframePolicy{Interval: 4},
		NewAccelerator: func(int) Accelerator { return sleepAccel{0} }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")
	defer sess.Close()

	in := segmodel.Input{Width: 640, Height: 480}
	for i := 0; i < 4; i++ {
		in.Seed = int64(i)
		if _, _, err := sess.Infer(in, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.KeyframesServed != 1 || st.WarpedServed != 3 {
		t.Fatalf("keyframes=%d warped=%d, want 1/3 (decisions still counted)",
			st.KeyframesServed, st.WarpedServed)
	}
	if st.KeyframesServed+st.WarpedServed != st.Served {
		t.Fatal("served partition broken under fallback accelerator")
	}
}

// TestLostKeyframeInvalidatesCache: a decided keyframe that never reaches
// an accelerator (rejected, shed, or raced with close) must invalidate the
// cache so no later frame warps from a pyramid that was never computed.
func TestLostKeyframeInvalidatesCache(t *testing.T) {
	s := NewScheduler(Config{Workers: 1,
		Keyframe:       segmodel.KeyframePolicy{Interval: 8},
		NewAccelerator: func(int) Accelerator { return sleepAccel{0} }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")
	defer sess.Close()
	p := segmodel.KeyframePolicy{Interval: 8}

	in := segmodel.Input{Width: 640, Height: 480}
	d := sess.decide(p, in, nil)
	if !d.Keyframe || d.Reason != segmodel.KeyCold {
		t.Fatalf("first decision %+v, want cold keyframe", d)
	}
	// Next frame would warp...
	if d2 := sess.decide(p, in, nil); d2.Keyframe {
		t.Fatalf("warm cache produced keyframe %q", d2.Reason)
	}
	// ...but if a keyframe decision is lost, the cache must go cold again.
	d3 := sess.decide(p, segmodel.Input{Width: 320, Height: 240}, nil) // resolution keyframe
	sess.dropCacheFor(d3)
	if d4 := sess.decide(p, segmodel.Input{Width: 320, Height: 240}, nil); !d4.Keyframe || d4.Reason != segmodel.KeyCold {
		t.Fatalf("after lost keyframe: %+v, want cold keyframe", d4)
	}
	// A lost non-keyframe leaves the cached pyramid usable.
	d5 := sess.decide(p, segmodel.Input{Width: 320, Height: 240}, nil)
	if d5.Keyframe {
		t.Fatalf("unexpected keyframe %q", d5.Reason)
	}
	sess.dropCacheFor(d5)
	if d6 := sess.decide(p, segmodel.Input{Width: 320, Height: 240}, nil); d6.Keyframe {
		t.Fatalf("lost non-keyframe invalidated the cache: %+v", d6)
	}
}

// TestSessionCloseEvictsCache: the cache dies with its session.
func TestSessionCloseEvictsCache(t *testing.T) {
	s := NewScheduler(Config{Workers: 1,
		Keyframe:       segmodel.KeyframePolicy{Interval: 4},
		NewAccelerator: func(int) Accelerator { return sleepAccel{0} }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")

	in := segmodel.Input{Width: 640, Height: 480}
	if _, _, err := sess.Infer(in, nil); err != nil {
		t.Fatal(err)
	}
	sess.mu.Lock()
	hadCache := sess.cache != nil
	sess.mu.Unlock()
	if !hadCache {
		t.Fatal("enabled policy should have created the session cache")
	}
	sess.Close()
	sess.mu.Lock()
	gone := sess.cache == nil
	sess.mu.Unlock()
	if !gone {
		t.Fatal("Close did not evict the feature cache")
	}
}

// TestBatchKeyframeClassesNeverCoBatch: end-to-end version of the matrix —
// a keyframe job and a warped job of the same resolution and guidance
// class must not ride one launch.
func TestBatchKeyframeClassesNeverCoBatch(t *testing.T) {
	acc := &batchGateAccel{gate: make(chan struct{}, 16)}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 16,
		Keyframe:       segmodel.KeyframePolicy{Interval: 100},
		Dequeue:        GatherBatch{Max: 4},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()

	// Session a is warmed (its second frame is a non-keyframe); session b
	// is cold (its first frame is a keyframe).
	a := s.NewSession("a")
	defer a.Close()
	b := s.NewSession("b")
	defer b.Close()
	in := segmodel.Input{Width: 64, Height: 48}

	submit := func(ss *Session, seed int64) <-chan error {
		frame := in
		frame.Seed = seed
		errc := make(chan error, 1)
		go func() {
			_, _, err := ss.Infer(frame, nil)
			errc <- err
		}()
		return errc
	}

	// Warm a's cache with a served keyframe.
	acc.gate <- struct{}{}
	in.Seed = 1
	if _, _, err := a.Infer(in, nil); err != nil {
		t.Fatal(err)
	}

	// Occupy the worker with a's first non-keyframe so the next two frames
	// queue behind it.
	e1 := submit(a, 2)
	waitFor(t, "head launch", func() bool { return len(acc.seen()) == 2 })
	e2 := submit(a, 3) // a's next non-keyframe, queued
	waitFor(t, "warp job queued", func() bool { return s.Stats().Queued == 1 })
	e3 := submit(b, 4) // b's cold keyframe, queued
	waitFor(t, "keyframe job queued", func() bool { return s.Stats().Queued == 2 })

	for i := 0; i < 3; i++ {
		acc.gate <- struct{}{}
	}
	for _, w := range []<-chan error{e1, e2, e3} {
		if err := <-w; err != nil {
			t.Fatal(err)
		}
	}
	launches := acc.seen()
	// Launches after the warm-up: head (seed 2), then seeds 3 and 4 —
	// which must NOT share a launch despite equal resolution and guidance.
	for i, launch := range launches[1:] {
		if len(launch) != 1 {
			t.Errorf("launch %d = %v: keyframe and warped jobs co-batched", i+1, launch)
		}
	}
}
