package edge

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeis/internal/segmodel"
)

// gateAccel blocks each Run until released, recording the order in which
// requests reach the accelerator (identified by Input.Seed).
type gateAccel struct {
	gate chan struct{}

	mu    sync.Mutex
	order []int64
}

func (a *gateAccel) Run(in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64) {
	a.mu.Lock()
	a.order = append(a.order, in.Seed)
	a.mu.Unlock()
	<-a.gate
	return &segmodel.Result{BackboneMs: 10}, 10
}

func (a *gateAccel) seen() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int64(nil), a.order...)
}

// sleepAccel holds the accelerator for a fixed wall time per request, the
// occupancy model the throughput tests scale against.
type sleepAccel struct{ d time.Duration }

func (a sleepAccel) Run(segmodel.Input, segmodel.Guidance) (*segmodel.Result, float64) {
	time.Sleep(a.d)
	return &segmodel.Result{BackboneMs: 10}, 10
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// inferAsync submits in a goroutine and returns a channel carrying the error.
func inferAsync(sess *Session, seed int64) <-chan error {
	errc := make(chan error, 1)
	go func() {
		_, _, err := sess.Infer(segmodel.Input{Seed: seed}, nil)
		errc <- err
	}()
	return errc
}

func TestSchedulerRejectsWhenQueueFull(t *testing.T) {
	acc := &gateAccel{gate: make(chan struct{})}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 1,
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	sess := s.NewSession("test")
	defer sess.Close()

	// First request reaches the (blocked) accelerator, second fills the
	// depth-1 queue, third must be rejected explicitly.
	e1 := inferAsync(sess, 1)
	waitFor(t, "first request in flight", func() bool { return s.Stats().InFlight == 1 })
	e2 := inferAsync(sess, 2)
	waitFor(t, "second request queued", func() bool { return s.Stats().Queued == 1 })

	if _, _, err := sess.Infer(segmodel.Input{Seed: 3}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third request: err = %v, want ErrQueueFull", err)
	}

	close(acc.gate)
	if err := <-e1; err != nil {
		t.Errorf("first request: %v", err)
	}
	if err := <-e2; err != nil {
		t.Errorf("second request: %v", err)
	}

	st := s.Stats()
	if st.Served != 2 || st.Rejected != 1 {
		t.Errorf("served=%d rejected=%d, want 2/1", st.Served, st.Rejected)
	}
	if ss := sess.Stats(); ss.Rejected != 1 || ss.Served != 2 {
		t.Errorf("session served=%d rejected=%d, want 2/1", ss.Served, ss.Rejected)
	}
}

// TestSchedulerFairPerSessionDequeue pins the round-robin discipline: a
// session with a deep backlog cannot starve a session with one request.
func TestSchedulerFairPerSessionDequeue(t *testing.T) {
	acc := &gateAccel{gate: make(chan struct{}, 16)}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 8,
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	a := s.NewSession("a")
	defer a.Close()
	b := s.NewSession("b")
	defer b.Close()

	// A1 occupies the worker; then A queues two more before B queues one.
	waits := []<-chan error{inferAsync(a, 101)}
	waitFor(t, "A1 in flight", func() bool { return s.Stats().InFlight == 1 })
	waits = append(waits, inferAsync(a, 102))
	waitFor(t, "A2 queued", func() bool { return s.Stats().Queued == 1 })
	waits = append(waits, inferAsync(a, 103))
	waitFor(t, "A3 queued", func() bool { return s.Stats().Queued == 2 })
	waits = append(waits, inferAsync(b, 201))
	waitFor(t, "B1 queued", func() bool { return s.Stats().Queued == 3 })

	for range waits {
		acc.gate <- struct{}{}
	}
	for i, w := range waits {
		if err := <-w; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	want := []int64{101, 102, 201, 103}
	got := acc.seen()
	if len(got) != len(want) {
		t.Fatalf("accelerator saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v (B starved behind A's backlog)", got, want)
		}
	}
}

// TestSchedulerBacklogNotStarvedBySessionChurn is the regression test for
// the round-robin rotation discipline. The old index-walk dequeue kept its
// cursor fixed while drained sessions were removed in front of it and fresh
// sessions appended behind it, so under a steady churn of new single-request
// sessions a backlogged session parked before the cursor was never reached
// again: its queued requests waited until the churn stopped. With rotation
// the backlog must be served exactly once per pass over the waiting
// sessions. The gate serializes the single worker, so the dequeue order is
// deterministic.
func TestSchedulerBacklogNotStarvedBySessionChurn(t *testing.T) {
	acc := &gateAccel{gate: make(chan struct{})}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 32,
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()

	var waits []<-chan error
	queued := 0
	submit := func(sess *Session, seed int64) {
		t.Helper()
		waits = append(waits, inferAsync(sess, seed))
		queued++
		waitFor(t, "request queued", func() bool { return s.Stats().Queued == queued })
	}
	// release lets the worker finish its current request and pick the next;
	// it returns once the accelerator has recorded that next dequeue.
	release := func(n int) {
		t.Helper()
		acc.gate <- struct{}{}
		queued--
		waitFor(t, "next dequeue recorded", func() bool { return len(acc.seen()) == n })
	}

	hot := s.NewSession("hot")
	defer hot.Close()
	waits = append(waits, inferAsync(hot, 900))
	waitFor(t, "hot head in flight", func() bool { return s.Stats().InFlight == 1 })
	submit(hot, 901)
	submit(hot, 902)

	// Three churn sessions wait behind the hot backlog, and every completion
	// is replaced by a brand-new session, so the ring never runs dry while
	// the churn lasts — the exact pattern that used to starve seeds 901/902.
	var churn []*Session
	for i := int64(0); i < 3; i++ {
		c := s.NewSession("churn")
		churn = append(churn, c)
		submit(c, 1+i)
	}
	for i := int64(0); i < 6; i++ {
		release(int(i) + 2)
		c := s.NewSession("churn")
		churn = append(churn, c)
		submit(c, 10+i)
	}

	// Drain everything still queued and close the churn sessions.
	close(acc.gate)
	for i, w := range waits {
		if err := <-w; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for _, c := range churn {
		c.Close()
	}

	order := acc.seen()
	pos := map[int64]int{}
	for i, seed := range order {
		pos[seed] = i
	}
	// One pass over the ring (hot + 3 churn + 1 replacement) must reach the
	// hot backlog: seed 902 within the first 7 dequeues. The pre-rotation
	// scheduler served it last, after the churn was exhausted.
	if p, ok := pos[902]; !ok || p > 6 {
		t.Errorf("hot backlog starved by churn: seed 902 at dequeue %d of %v", pos[902], order)
	}
	if pos[901] > pos[1] || pos[902] > pos[10] {
		t.Errorf("hot backlog lapped by later churn arrivals: order %v", order)
	}
	if st := s.Stats(); st.Served != len(waits) || st.Rejected != 0 || st.Shed != 0 || st.Cancelled != 0 {
		t.Errorf("accounting: served=%d rejected=%d shed=%d cancelled=%d, want %d/0/0/0",
			st.Served, st.Rejected, st.Shed, st.Cancelled, len(waits))
	}
}

// TestSchedulerColdSessionsProgressUnderHotFlood is the skewed-arrival
// stress test (run under -race via make check): four goroutines flood one
// hot session while six cold sessions each need a handful of successes.
// Fair dequeue must keep every cold session progressing, and the
// no-silent-loss law offered == served + rejected (+ cancelled) must hold
// per session and fleet-wide when the dust settles.
func TestSchedulerColdSessionsProgressUnderHotFlood(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, QueueDepth: 8,
		NewAccelerator: func(int) Accelerator { return sleepAccel{200 * time.Microsecond} }})
	defer func() { _ = s.Close() }()

	const coldSessions, coldTarget = 6, 5
	stop := make(chan struct{})
	var hotOffered, hotServed, hotRejected atomic.Int64
	hot := s.NewSession("hot")
	defer hot.Close()
	var hotWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		hotWG.Add(1)
		go func() {
			defer hotWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hotOffered.Add(1)
				_, _, err := hot.Infer(segmodel.Input{Seed: 1}, nil)
				switch {
				case err == nil:
					hotServed.Add(1)
				case errors.Is(err, ErrQueueFull):
					hotRejected.Add(1)
				default:
					t.Errorf("hot infer: %v", err)
					return
				}
			}
		}()
	}

	var coldOffered, coldServed, coldRejected atomic.Int64
	var coldWG sync.WaitGroup
	for i := 0; i < coldSessions; i++ {
		coldWG.Add(1)
		go func(i int) {
			defer coldWG.Done()
			sess := s.NewSession("cold")
			defer sess.Close()
			served, rejected := 0, 0
			deadline := time.Now().Add(10 * time.Second)
			for served < coldTarget && time.Now().Before(deadline) {
				coldOffered.Add(1)
				_, _, err := sess.Infer(segmodel.Input{Seed: int64(100 + i)}, nil)
				switch {
				case err == nil:
					served++
					coldServed.Add(1)
				case errors.Is(err, ErrQueueFull):
					rejected++
					coldRejected.Add(1)
					time.Sleep(200 * time.Microsecond)
				default:
					t.Errorf("cold %d infer: %v", i, err)
					return
				}
			}
			if served < coldTarget {
				t.Errorf("cold session %d starved: served %d of %d wanted (rejected %d) while hot flooded",
					i, served, coldTarget, rejected)
			}
			if st := sess.Stats(); st.Served != served || st.Rejected != rejected {
				t.Errorf("cold session %d accounting: stats served/rejected %d/%d, caller saw %d/%d",
					i, st.Served, st.Rejected, served, rejected)
			}
		}(i)
	}
	coldWG.Wait()
	close(stop)
	hotWG.Wait()

	if hs := hot.Stats(); int64(hs.Served) != hotServed.Load() || int64(hs.Rejected) != hotRejected.Load() {
		t.Errorf("hot session accounting: stats served/rejected %d/%d, caller saw %d/%d",
			hs.Served, hs.Rejected, hotServed.Load(), hotRejected.Load())
	}
	offered := hotOffered.Load() + coldOffered.Load()
	st := s.Stats()
	if accounted := int64(st.Served + st.Rejected + st.Shed + st.Cancelled); accounted != offered {
		t.Errorf("conservation violated: offered %d != served %d + rejected %d + shed %d + cancelled %d",
			offered, st.Served, st.Rejected, st.Shed, st.Cancelled)
	}
	t.Logf("hot served/rejected %d/%d; cold served/rejected %d/%d",
		hotServed.Load(), hotRejected.Load(), coldServed.Load(), coldRejected.Load())
}

// TestSchedulerCloseDrainsWithoutDeadlock exercises graceful shutdown under
// load (and under -race via make check): admitted requests complete, late
// ones fail with ErrClosed or ErrQueueFull, and Close returns.
func TestSchedulerCloseDrainsWithoutDeadlock(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, QueueDepth: 64,
		NewAccelerator: func(int) Accelerator { return sleepAccel{500 * time.Microsecond} }})

	const clients, perClient = 4, 8
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		sess := s.NewSession("load")
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Close()
			for i := 0; i < perClient; i++ {
				_, _, err := sess.Infer(segmodel.Input{}, nil)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull):
					failed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	// Close mid-flight; every waiter must still be answered.
	time.Sleep(2 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()

	if got := served.Load() + failed.Load(); got != clients*perClient {
		t.Errorf("accounted %d of %d requests", got, clients*perClient)
	}
	sess := s.NewSession("late")
	if _, _, err := sess.Infer(segmodel.Input{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit: err = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	st := s.Stats()
	if int64(st.Served) != served.Load() {
		t.Errorf("stats served=%d, callers saw %d", st.Served, served.Load())
	}
	if st.Queued != 0 || st.InFlight != 0 {
		t.Errorf("close left queued=%d inflight=%d", st.Queued, st.InFlight)
	}
}

// TestSchedulerThroughputScalesWithWorkers is the multi-client scaling
// check: with accelerator occupancy dominating, 4 workers must serve the
// same multi-session load at least twice as fast as 1 worker. Sleep-bound
// work keeps the ratio robust under the race detector.
func TestSchedulerThroughputScalesWithWorkers(t *testing.T) {
	const clients, perClient = 4, 24
	run := func(workers int) time.Duration {
		s := NewScheduler(Config{Workers: workers, QueueDepth: 64,
			NewAccelerator: func(int) Accelerator { return sleepAccel{4 * time.Millisecond} }})
		defer func() { _ = s.Close() }()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			sess := s.NewSession("bench")
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer sess.Close()
				for i := 0; i < perClient; i++ {
					if _, _, err := sess.Infer(segmodel.Input{}, nil); err != nil {
						t.Errorf("infer: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if st := s.Stats(); st.Served != clients*perClient {
			t.Fatalf("served %d, want %d", st.Served, clients*perClient)
		}
		return time.Since(start)
	}

	serial := run(1)
	pooled := run(4)
	t.Logf("1 worker: %v, 4 workers: %v (%.1fx)", serial, pooled, float64(serial)/float64(pooled))
	if pooled*2 > serial {
		t.Errorf("4 workers not >=2x faster: 1w=%v 4w=%v", serial, pooled)
	}
}

// plan is a trivial Guidance marker for continuity tests.
type plan struct{ segmodel.Guidance }

func TestSessionGuidanceContinuity(t *testing.T) {
	newSched := func(continuity bool) *Scheduler {
		return NewScheduler(Config{
			GuidanceContinuity: continuity,
			NewAccelerator:     func(int) Accelerator { return sleepAccel{0} },
		})
	}

	s := newSched(true)
	defer func() { _ = s.Close() }()
	sess := s.NewSession("c")
	defer sess.Close()
	p := &plan{}
	if got := sess.Guide(nil); got != nil {
		t.Error("no plan yet: Guide(nil) must stay nil")
	}
	if got := sess.Guide(p); got != p {
		t.Error("explicit guidance must pass through")
	}
	if got := sess.Guide(nil); got != p {
		t.Error("continuity on: retained plan must be reused")
	}
	if st := sess.Stats(); st.GuidedFrames != 1 || st.ReusedPlans != 1 {
		t.Errorf("guided=%d reused=%d, want 1/1", st.GuidedFrames, st.ReusedPlans)
	}

	off := newSched(false)
	defer func() { _ = off.Close() }()
	sess2 := off.NewSession("d")
	defer sess2.Close()
	sess2.Guide(p)
	if got := sess2.Guide(nil); got != nil {
		t.Error("continuity off: guidance-less frames must run vanilla")
	}
}

func TestSchedulerSessionAccounting(t *testing.T) {
	s := NewScheduler(Config{Workers: 1,
		NewAccelerator: func(int) Accelerator { return sleepAccel{0} }})
	defer func() { _ = s.Close() }()

	a := s.NewSession("1.2.3.4:100")
	b := s.NewSession("1.2.3.4:200")
	for i := 0; i < 3; i++ {
		if _, _, err := a.Infer(segmodel.Input{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.Infer(segmodel.Input{}, nil); err != nil {
		t.Fatal(err)
	}

	rows := s.Sessions()
	if len(rows) != 2 || rows[0].ID >= rows[1].ID {
		t.Fatalf("sessions = %+v", rows)
	}
	if rows[0].Served != 3 || rows[1].Served != 1 {
		t.Errorf("served = %d/%d, want 3/1", rows[0].Served, rows[1].Served)
	}
	if rows[0].MeanInferMs <= 0 {
		t.Error("no inference latency recorded")
	}
	if st := s.Stats(); st.ActiveSessions != 2 || st.PeakSessions != 2 {
		t.Errorf("active=%d peak=%d", st.ActiveSessions, st.PeakSessions)
	}

	a.Close()
	a.Close() // idempotent
	if st := s.Stats(); st.ActiveSessions != 1 || st.PeakSessions != 2 {
		t.Errorf("after close: active=%d peak=%d", st.ActiveSessions, st.PeakSessions)
	}
	if _, _, err := a.Infer(segmodel.Input{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("closed session submit: %v", err)
	}
}
