package edge

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeis/internal/segmodel"
)

func TestAdmissionPolicyVerdicts(t *testing.T) {
	r := RejectWhenFull{}
	if got := r.Admit(3, 4, 2); got != VerdictAdmit {
		t.Errorf("reject policy with room: %v, want admit", got)
	}
	if got := r.Admit(4, 4, 2); got != VerdictReject {
		t.Errorf("reject policy at capacity: %v, want reject", got)
	}

	lw := LatestWins{}
	if got := lw.Admit(3, 4, 2); got != VerdictAdmit {
		t.Errorf("latest-wins with room: %v, want admit", got)
	}
	if got := lw.Admit(4, 4, 2); got != VerdictShedOldest {
		t.Errorf("latest-wins at capacity with own pending: %v, want shed-oldest", got)
	}
	if got := lw.Admit(4, 4, 0); got != VerdictReject {
		t.Errorf("latest-wins at capacity with nothing to shed: %v, want reject", got)
	}

	for name, want := range map[string]string{"": "reject", "reject": "reject", "latest-wins": "latest-wins"} {
		p, err := AdmissionPolicyByName(name)
		if err != nil || p.Name() != want {
			t.Errorf("AdmissionPolicyByName(%q) = %v, %v; want %s", name, p, err, want)
		}
	}
	if _, err := AdmissionPolicyByName("bogus"); err == nil {
		t.Error("unknown policy name must error")
	}
}

func TestDequeuePolicyClamps(t *testing.T) {
	if s := (SingleDequeue{}); s.MaxBatch() != 1 || s.Window() != 0 || s.Name() != "single" {
		t.Errorf("single dequeue: %d/%v/%s", s.MaxBatch(), s.Window(), s.Name())
	}
	g := GatherBatch{Max: 0, GatherWindow: -time.Second}
	if g.MaxBatch() != 1 || g.Window() != 0 {
		t.Errorf("gather clamps: max=%d window=%v, want 1/0", g.MaxBatch(), g.Window())
	}
	g = GatherBatch{Max: 8, GatherWindow: time.Millisecond}
	if g.MaxBatch() != 8 || g.Window() != time.Millisecond || g.Name() != "batch" {
		t.Errorf("gather passthrough: %d/%v/%s", g.MaxBatch(), g.Window(), g.Name())
	}
}

// TestLatestWinsShedsStaleFrame pins the shed discipline end to end: the
// displaced waiter gets ErrShed, the fresh frame takes its slot, and the
// four-way accounting (served/rejected/shed/cancelled) partitions every
// offered request.
func TestLatestWinsShedsStaleFrame(t *testing.T) {
	acc := &gateAccel{gate: make(chan struct{})}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 1, Admission: LatestWins{},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	a := s.NewSession("a")
	defer a.Close()
	b := s.NewSession("b")
	defer b.Close()

	// Frame 1 occupies the worker, frame 2 fills the depth-1 queue.
	e1 := inferAsync(a, 1)
	waitFor(t, "first request in flight", func() bool { return s.Stats().InFlight == 1 })
	e2 := inferAsync(a, 2)
	waitFor(t, "second request queued", func() bool { return s.Stats().Queued == 1 })

	// Frame 3 from the same session displaces frame 2 instead of being
	// rejected: the stale waiter unblocks with ErrShed immediately.
	e3 := inferAsync(a, 3)
	if err := <-e2; !errors.Is(err, ErrShed) {
		t.Fatalf("stale frame: err = %v, want ErrShed", err)
	}
	waitFor(t, "fresh frame queued", func() bool { return s.Stats().Queued == 1 })

	// Another session arriving at the still-full queue has nothing of its
	// own to shed: latest-wins never steals A's slot, so B is rejected.
	if _, _, err := b.Infer(segmodel.Input{Seed: 4}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("other session at full queue: err = %v, want ErrQueueFull", err)
	}

	close(acc.gate)
	if err := <-e1; err != nil {
		t.Errorf("first frame: %v", err)
	}
	if err := <-e3; err != nil {
		t.Errorf("fresh frame: %v", err)
	}

	// The accelerator never saw the shed frame.
	if got := acc.seen(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("accelerator saw %v, want [1 3]", got)
	}
	st := s.Stats()
	if st.Served != 2 || st.Rejected != 1 || st.Shed != 1 || st.Cancelled != 0 {
		t.Errorf("served/rejected/shed/cancelled = %d/%d/%d/%d, want 2/1/1/0",
			st.Served, st.Rejected, st.Shed, st.Cancelled)
	}
	if st.AdmissionPolicy != "latest-wins" || st.DequeuePolicy != "single" {
		t.Errorf("policy names = %s/%s", st.AdmissionPolicy, st.DequeuePolicy)
	}
	if ss := a.Stats(); ss.Served != 2 || ss.Shed != 1 || ss.Rejected != 0 {
		t.Errorf("session A served/shed/rejected = %d/%d/%d, want 2/1/0", ss.Served, ss.Shed, ss.Rejected)
	}
	if ss := b.Stats(); ss.Rejected != 1 || ss.Shed != 0 {
		t.Errorf("session B rejected/shed = %d/%d, want 1/0", ss.Rejected, ss.Shed)
	}
}

// TestLatestWinsUnderChurn floods a latest-wins scheduler from many
// goroutines per session while sessions churn (run under -race via make
// check); conservation must hold when the dust settles.
func TestLatestWinsUnderChurn(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, QueueDepth: 4, Admission: LatestWins{},
		NewAccelerator: func(int) Accelerator { return sleepAccel{100 * time.Microsecond} }})
	defer func() { _ = s.Close() }()

	const sessions, submitters, perSubmitter = 4, 3, 150
	var offered, served, rejected, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := s.NewSession("churn")
			defer sess.Close()
			var inner sync.WaitGroup
			for g := 0; g < submitters; g++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for n := 0; n < perSubmitter; n++ {
						offered.Add(1)
						_, _, err := sess.Infer(segmodel.Input{Seed: int64(i)}, nil)
						switch {
						case err == nil:
							served.Add(1)
						case errors.Is(err, ErrQueueFull):
							rejected.Add(1)
						case errors.Is(err, ErrShed):
							shed.Add(1)
						default:
							t.Errorf("infer: %v", err)
							return
						}
					}
				}()
			}
			inner.Wait()
			if ss := sess.Stats(); ss.Pending != 0 {
				t.Errorf("session %d left %d pending after its submitters drained", i, ss.Pending)
			}
		}(i)
	}
	wg.Wait()

	st := s.Stats()
	if accounted := int64(st.Served + st.Rejected + st.Shed + st.Cancelled); accounted != offered.Load() {
		t.Errorf("conservation violated: offered %d != served %d + rejected %d + shed %d + cancelled %d",
			offered.Load(), st.Served, st.Rejected, st.Shed, st.Cancelled)
	}
	if int64(st.Served) != served.Load() || int64(st.Rejected) != rejected.Load() || int64(st.Shed) != shed.Load() {
		t.Errorf("caller tallies served/rejected/shed %d/%d/%d, stats %d/%d/%d",
			served.Load(), rejected.Load(), shed.Load(), st.Served, st.Rejected, st.Shed)
	}
	if shed.Load() == 0 {
		t.Error("flood at depth 4 with 3 submitters per session produced no sheds")
	}
	t.Logf("offered %d = served %d + rejected %d + shed %d",
		offered.Load(), served.Load(), rejected.Load(), shed.Load())
}

// batchGateAccel serves batches, holding each launch until released, and
// records the seed sets of the launches it saw.
type batchGateAccel struct {
	gate chan struct{}

	mu      sync.Mutex
	batches [][]int64
}

func (a *batchGateAccel) note(seeds []int64) {
	a.mu.Lock()
	a.batches = append(a.batches, seeds)
	a.mu.Unlock()
	<-a.gate
}

func (a *batchGateAccel) Run(in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64) {
	a.note([]int64{in.Seed})
	return &segmodel.Result{BackboneMs: 10}, 10
}

func (a *batchGateAccel) RunBatch(ins []segmodel.Input, gs []segmodel.Guidance) ([]*segmodel.Result, float64) {
	seeds := make([]int64, len(ins))
	outs := make([]*segmodel.Result, len(ins))
	for i, in := range ins {
		seeds[i] = in.Seed
		outs[i] = &segmodel.Result{BackboneMs: 10}
	}
	a.note(seeds)
	return outs, 10
}

func (a *batchGateAccel) seen() [][]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([][]int64, len(a.batches))
	for i, b := range a.batches {
		out[i] = append([]int64(nil), b...)
	}
	return out
}

// TestBatchFormerGathersCompatibleClasses pins the batch former: queued
// jobs of one class ride a single launch, while a job of a different
// resolution class never co-batches with them.
func TestBatchFormerGathersCompatibleClasses(t *testing.T) {
	acc := &batchGateAccel{gate: make(chan struct{}, 16)}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 16,
		Dequeue:        GatherBatch{Max: 3},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()

	small := segmodel.Input{Width: 64, Height: 48}
	large := segmodel.Input{Width: 128, Height: 96}
	sess := make([]*Session, 4)
	for i := range sess {
		sess[i] = s.NewSession("t")
		defer sess[i].Close()
	}

	// Head job occupies the worker while the rest queue up behind it.
	head := small
	head.Seed = 1
	waits := []<-chan error{}
	submit := func(ss *Session, in segmodel.Input, seed int64) {
		t.Helper()
		in.Seed = seed
		errc := make(chan error, 1)
		go func() {
			_, _, err := ss.Infer(in, nil)
			errc <- err
		}()
		waits = append(waits, errc)
	}
	submit(sess[0], small, 1)
	waitFor(t, "head launch", func() bool { return len(acc.seen()) == 1 })
	submit(sess[1], small, 2)
	waitFor(t, "seed 2 queued", func() bool { return s.Stats().Queued == 1 })
	submit(sess[2], large, 3)
	waitFor(t, "seed 3 queued", func() bool { return s.Stats().Queued == 2 })
	submit(sess[3], small, 4)
	waitFor(t, "seed 4 queued", func() bool { return s.Stats().Queued == 3 })

	for i := 0; i < 3; i++ {
		acc.gate <- struct{}{}
	}
	for i, w := range waits {
		if err := <-w; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	got := acc.seen()
	if len(got) != 3 {
		t.Fatalf("launches %v, want 3 (head solo, compatible pair, incompatible solo)", got)
	}
	if len(got[0]) != 1 || got[0][0] != 1 {
		t.Errorf("head launch %v, want [1]", got[0])
	}
	// Seeds 2 and 4 share the small class and must ride one launch; the
	// large-resolution seed 3 sits between them in the ring but is skipped.
	if len(got[1]) != 2 || got[1][0] != 2 || got[1][1] != 4 {
		t.Errorf("second launch %v, want [2 4] (same class gathered across sessions)", got[1])
	}
	if len(got[2]) != 1 || got[2][0] != 3 {
		t.Errorf("third launch %v, want [3] (incompatible class never co-batches)", got[2])
	}

	st := s.Stats()
	if st.Batches != 3 || st.MaxBatchSize != 2 {
		t.Errorf("batches=%d max=%d, want 3/2", st.Batches, st.MaxBatchSize)
	}
	if len(st.BatchSizeCounts) != 3 || st.BatchSizeCounts[0] != 2 || st.BatchSizeCounts[1] != 1 {
		t.Errorf("batch size counts %v, want [2 1 0]", st.BatchSizeCounts)
	}
	if want := 4.0 / 3.0; st.MeanBatchSize < want-1e-9 || st.MeanBatchSize > want+1e-9 {
		t.Errorf("mean batch size %v, want %v", st.MeanBatchSize, want)
	}
	if st.DequeuePolicy != "batch" {
		t.Errorf("dequeue policy %q, want batch", st.DequeuePolicy)
	}
}

// TestBatchGuidanceClassesNeverCoBatch: a guided job and a vanilla job of
// the same resolution evaluate different network slices and must launch
// separately.
func TestBatchGuidanceClassesNeverCoBatch(t *testing.T) {
	acc := &batchGateAccel{gate: make(chan struct{}, 16)}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 16,
		Dequeue:        GatherBatch{Max: 4},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()

	a := s.NewSession("a")
	defer a.Close()
	b := s.NewSession("b")
	defer b.Close()
	in := segmodel.Input{Width: 64, Height: 48}

	e1 := inferAsync(a, 1)
	waitFor(t, "head launch", func() bool { return len(acc.seen()) == 1 })
	guided := in
	guided.Seed = 2
	e2 := make(chan error, 1)
	go func() {
		_, _, err := a.Infer(guided, &plan{})
		e2 <- err
	}()
	vanilla := in
	vanilla.Seed = 3
	e3 := make(chan error, 1)
	go func() {
		_, _, err := b.Infer(vanilla, nil)
		e3 <- err
	}()
	waitFor(t, "backlog queued", func() bool { return s.Stats().Queued == 2 })

	for i := 0; i < 3; i++ {
		acc.gate <- struct{}{}
	}
	for _, w := range []<-chan error{e1, e2, e3} {
		if err := <-w; err != nil {
			t.Fatal(err)
		}
	}
	for i, launch := range acc.seen() {
		if len(launch) != 1 {
			t.Errorf("launch %d = %v: guided and vanilla jobs co-batched", i, launch)
		}
	}
}

// TestBatchWindowFlushesPartialBatch: an underfull batch launches after the
// gather window expires rather than waiting for MaxBatch jobs that will
// never come, and jobs arriving within the window join the launch.
func TestBatchWindowFlushesPartialBatch(t *testing.T) {
	acc := &batchGateAccel{gate: make(chan struct{}, 16)}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 16,
		Dequeue:        GatherBatch{Max: 4, GatherWindow: 50 * time.Millisecond},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	a := s.NewSession("a")
	defer a.Close()
	b := s.NewSession("b")
	defer b.Close()

	// A lone job must flush as a batch of one once the window expires.
	e1 := inferAsync(a, 1)
	acc.gate <- struct{}{}
	if err := <-e1; err != nil {
		t.Fatal(err)
	}
	if got := acc.seen(); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("lone job launches %v, want one batch of one", got)
	}

	// A job arriving while the worker holds the window open rides the same
	// launch: submit the second as soon as the first is in flight (gathered),
	// well inside the 50 ms window.
	e2 := inferAsync(a, 2)
	waitFor(t, "head gathered", func() bool { return s.Stats().InFlight == 1 })
	e3 := inferAsync(b, 3)
	acc.gate <- struct{}{}
	acc.gate <- struct{}{} // in case the join raced the window and launched solo
	if err := <-e2; err != nil {
		t.Fatal(err)
	}
	if err := <-e3; err != nil {
		t.Fatal(err)
	}
	got := acc.seen()
	last := got[len(got)-1]
	if len(got) != 2 || len(last) != 2 || last[0] != 2 || last[1] != 3 {
		t.Errorf("launches %v: job arriving within the window did not join the open batch", got)
	}
}

// TestBatchCloseDrainsInFlightBatches: Close during an open gather window
// still serves the jobs already taken and everything queued behind them.
func TestBatchCloseDrainsInFlightBatches(t *testing.T) {
	acc := &batchGateAccel{gate: make(chan struct{}, 16)}
	for i := 0; i < 16; i++ {
		acc.gate <- struct{}{}
	}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 16,
		Dequeue:        GatherBatch{Max: 4, GatherWindow: 20 * time.Millisecond},
		NewAccelerator: func(int) Accelerator { return acc }})
	a := s.NewSession("a")
	b := s.NewSession("b")

	e1 := inferAsync(a, 1)
	waitFor(t, "head gathered", func() bool { return s.Stats().InFlight == 1 })
	e2 := inferAsync(b, 2) // queues while the window is open
	waitFor(t, "second job queued", func() bool { return s.Stats().Queued == 1 })
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-e1; err != nil {
		t.Errorf("in-flight batch job: %v", err)
	}
	if err := <-e2; err != nil {
		t.Errorf("queued-behind-window job: %v", err)
	}
	st := s.Stats()
	if st.Served != 2 || st.Queued != 0 || st.InFlight != 0 {
		t.Errorf("after close: served=%d queued=%d inflight=%d, want 2/0/0",
			st.Served, st.Queued, st.InFlight)
	}
}

// batchSleepAccel occupies the accelerator for the amortized batch latency,
// the cost model the throughput comparison depends on.
type batchSleepAccel struct{ d time.Duration }

func (a batchSleepAccel) Run(segmodel.Input, segmodel.Guidance) (*segmodel.Result, float64) {
	time.Sleep(a.d)
	return &segmodel.Result{BackboneMs: 10}, 10
}

func (a batchSleepAccel) RunBatch(ins []segmodel.Input, gs []segmodel.Guidance) ([]*segmodel.Result, float64) {
	solos := make([]float64, len(ins))
	soloMs := float64(a.d) / float64(time.Millisecond)
	for i := range solos {
		solos[i] = soloMs
	}
	ms := segmodel.BatchMs(solos)
	time.Sleep(time.Duration(ms * float64(time.Millisecond)))
	outs := make([]*segmodel.Result, len(ins))
	for i := range outs {
		outs[i] = &segmodel.Result{BackboneMs: 10}
	}
	return outs, ms
}

// TestBatchThroughputBeatsSingleDequeue pins the point of the batch former:
// with a batch-capable accelerator and amortized launches, gathering must
// serve the same multi-session load at least 1.5x faster than single
// dequeue at equal worker count (a full batch of 8 is 1.78x in the cost
// model, so 1.5x leaves margin for partial batches and scheduling noise).
func TestBatchThroughputBeatsSingleDequeue(t *testing.T) {
	// More clients than in-flight capacity (2 workers x batch 8) keeps the
	// queue deep enough that gathers usually find a full batch waiting.
	const clients, perClient = 24, 8
	run := func(dq DequeuePolicy) time.Duration {
		s := NewScheduler(Config{Workers: 2, QueueDepth: 64, Dequeue: dq,
			NewAccelerator: func(int) Accelerator { return batchSleepAccel{4 * time.Millisecond} }})
		defer func() { _ = s.Close() }()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			sess := s.NewSession("bench")
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer sess.Close()
				for i := 0; i < perClient; i++ {
					if _, _, err := sess.Infer(segmodel.Input{Width: 64, Height: 48}, nil); err != nil {
						t.Errorf("infer: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := s.Stats()
		if st.Served != clients*perClient {
			t.Fatalf("served %d, want %d", st.Served, clients*perClient)
		}
		t.Logf("%s dequeue: %v (batches=%d mean size %.1f max %d)",
			dq.Name(), elapsed, st.Batches, st.MeanBatchSize, st.MaxBatchSize)
		if dq.MaxBatch() > 1 && st.MeanBatchSize <= 1.2 {
			t.Errorf("batch former barely batched: mean size %.2f", st.MeanBatchSize)
		}
		return elapsed
	}

	single := run(SingleDequeue{})
	batched := run(GatherBatch{Max: 8, GatherWindow: time.Millisecond})
	ratio := float64(single) / float64(batched)
	t.Logf("single %v vs batched %v: %.2fx", single, batched, ratio)
	if ratio < 1.5 {
		t.Errorf("batching %.2fx over single dequeue, want >= 1.5x", ratio)
	}
}

// TestBatchSerialFallback: an accelerator that cannot batch still serves a
// gathered batch correctly, one job at a time.
func TestBatchSerialFallback(t *testing.T) {
	acc := &gateAccel{gate: make(chan struct{}, 16)}
	s := NewScheduler(Config{Workers: 1, QueueDepth: 16,
		Dequeue:        GatherBatch{Max: 4},
		NewAccelerator: func(int) Accelerator { return acc }})
	defer func() { _ = s.Close() }()
	a := s.NewSession("a")
	defer a.Close()
	b := s.NewSession("b")
	defer b.Close()

	e1 := inferAsync(a, 1)
	waitFor(t, "head in flight", func() bool { return s.Stats().InFlight == 1 })
	e2 := inferAsync(a, 2)
	e3 := inferAsync(b, 3)
	waitFor(t, "backlog queued", func() bool { return s.Stats().Queued == 2 })
	for i := 0; i < 3; i++ {
		acc.gate <- struct{}{}
	}
	for _, w := range []<-chan error{e1, e2, e3} {
		if err := <-w; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Served != 3 {
		t.Errorf("served %d, want 3", st.Served)
	}
}
