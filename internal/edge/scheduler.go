package edge

import (
	"sync"
	"time"

	"edgeis/internal/metrics"
	"edgeis/internal/segmodel"
)

// Accelerator is one inference execution unit. Each scheduler worker owns
// exactly one, so implementations need not be safe for concurrent use. The
// returned inferMs is the simulated inference latency reported to clients.
// Implementations that also satisfy BatchAccelerator serve multi-job
// launches in one amortized call (see policy.go).
type Accelerator interface {
	Run(in segmodel.Input, g segmodel.Guidance) (out *segmodel.Result, inferMs float64)
}

// Config assembles a scheduler.
type Config struct {
	// Workers is the accelerator pool size; <= 0 means 1. One worker
	// serializes inference exactly like the old transport GPU mutex — the
	// deterministic mode the equivalence tests rely on.
	Workers int
	// QueueDepth bounds the admission queue across all sessions; <= 0 means
	// DefaultQueueDepth. What happens at the bound is Admission's call.
	QueueDepth int
	// NewAccelerator builds worker i's accelerator. Required.
	NewAccelerator func(worker int) Accelerator
	// GuidanceContinuity lets sessions reuse their last CIIA plan for
	// guidance-less frames (see Session.Guide). Off by default: reuse
	// changes inference results, which single-client determinism tests pin.
	GuidanceContinuity bool
	// Admission decides the fate of requests arriving at a full queue; nil
	// means RejectWhenFull (the historical discipline).
	Admission AdmissionPolicy
	// Dequeue shapes accelerator launches; nil means SingleDequeue (the
	// historical one-job-per-worker discipline).
	Dequeue DequeuePolicy
	// Keyframe enables temporal-redundancy skip-compute: sessions keep a
	// feature cache of their last keyframe and non-keyframe requests are
	// served at the partial warp cost by WarpAccelerator workers. The zero
	// policy (Interval 0) disables it — every request is a keyframe and
	// behaviour is byte-identical to a build without the cache.
	Keyframe segmodel.KeyframePolicy
}

// DefaultQueueDepth is the admission bound when Config leaves it zero.
const DefaultQueueDepth = 32

// job is one admitted request waiting for an accelerator.
type job struct {
	sess     *Session
	in       segmodel.Input
	g        segmodel.Guidance
	class    BatchClass
	decision segmodel.KeyframeDecision
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	out     *segmodel.Result
	inferMs float64
	err     error
}

// Scheduler owns the accelerator pool and the bounded admission queue.
// Dequeueing is fair per session: workers round-robin across sessions that
// have pending work and take one request at a time (or, under GatherBatch,
// one request per session per gather pass), so one client flooding the
// queue cannot starve the others.
type Scheduler struct {
	workers    int
	depth      int
	continuity bool
	admission  AdmissionPolicy
	maxBatch   int
	window     time.Duration
	dequeue    string
	keyframe   segmodel.KeyframePolicy

	mu   sync.Mutex
	cond *sync.Cond
	// ring holds the sessions with pending requests in round-robin order.
	// Dequeueing rotates it: the front session gives up one request and, if
	// it still has pending work, re-joins at the back. Rotation (rather
	// than an index walk with removals) is what makes the round-robin
	// starvation-free: a session with a backlog is served exactly once per
	// pass over the waiting sessions, and a churn of fresh single-request
	// sessions joining at the back can never lap it.
	ring     []*Session
	queued   int
	inflight int
	closed   bool

	sessions map[*Session]struct{}
	nextID   int
	resumed  int

	served      int
	rejected    int
	shed        int
	cancelled   int
	keyframes   int
	warped      int
	inferSum    float64
	waits       metrics.Dist
	depths      metrics.Dist
	batches     int
	batchJobs   int
	batchCounts []int
	peakSess    int

	wg sync.WaitGroup
}

// Stats is a point-in-time scheduler snapshot.
type Stats struct {
	// Workers and QueueDepth echo the configuration, AdmissionPolicy and
	// DequeuePolicy the active policy names.
	Workers         int
	QueueDepth      int
	AdmissionPolicy string
	DequeuePolicy   string
	// Queued and InFlight describe the instantaneous load.
	Queued   int
	InFlight int
	// Served, Rejected, Shed and Cancelled partition every admitted-or-
	// refused request: answered, refused at admission, displaced by the
	// session's own fresher frame (latest-wins), failed by session/
	// scheduler shutdown. Nothing is lost silently:
	// offered == Served + Rejected + Shed + Cancelled once drained.
	Served    int
	Rejected  int
	Shed      int
	Cancelled int
	// MeanInferMs averages simulated inference latency over served requests.
	MeanInferMs float64
	// Wait telemetry: admission-to-dequeue wall time over served requests.
	MeanWaitMs float64
	MaxWaitMs  float64
	P95WaitMs  float64
	// Queue-depth telemetry, sampled at each admission.
	MeanQueueDepth float64
	PeakQueueDepth int
	// Batch telemetry: Batches counts accelerator launches, MeanBatchSize
	// the jobs per launch, and BatchSizeCounts[i] the launches of size i+1.
	// Under SingleDequeue every launch has size 1.
	Batches         int
	MeanBatchSize   float64
	MaxBatchSize    int
	BatchSizeCounts []int
	// Skip-compute telemetry: with a keyframe policy enabled,
	// KeyframesServed (feature-cache misses: full backbone) and
	// WarpedServed (cache hits: partial warp cost) partition Served —
	// KeyframesServed + WarpedServed == Served once drained. Both stay
	// zero with the policy off.
	KeyframesServed int
	WarpedServed    int
	// Session population. ResumedSessions counts sessions adopted from
	// another replica through the resume handshake (0 outside a fleet).
	ActiveSessions  int
	PeakSessions    int
	ResumedSessions int
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Admission == nil {
		cfg.Admission = RejectWhenFull{}
	}
	if cfg.Dequeue == nil {
		cfg.Dequeue = SingleDequeue{}
	}
	s := &Scheduler{
		workers:    cfg.Workers,
		depth:      cfg.QueueDepth,
		continuity: cfg.GuidanceContinuity,
		admission:  cfg.Admission,
		maxBatch:   cfg.Dequeue.MaxBatch(),
		window:     cfg.Dequeue.Window(),
		dequeue:    cfg.Dequeue.Name(),
		keyframe:   cfg.Keyframe,
		sessions:   make(map[*Session]struct{}),
	}
	s.batchCounts = make([]int, s.maxBatch)
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(cfg.NewAccelerator(i))
	}
	return s
}

// NewSession registers a client. Sessions created after Close still work as
// handles, but every Infer through them fails with ErrClosed.
func (s *Scheduler) NewSession(remote string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess := &Session{
		sched:      s,
		id:         s.nextID,
		remote:     remote,
		started:    time.Now(),
		continuity: s.continuity,
	}
	s.sessions[sess] = struct{}{}
	if len(s.sessions) > s.peakSess {
		s.peakSess = len(s.sessions)
	}
	return sess
}

// ResumeSession adopts a session migrating in from another replica: the
// session carries its stable cross-replica key (so fleet-wide accounting
// keeps one identity across replicas) but starts with an empty feature
// cache and no retained guidance plan — that state died with the replica
// that owned it. The first keyframe decision on an adopted session
// therefore comes from a cold cache and is forced to be a keyframe: the
// same lost-keyframe invalidation rule that guards against warping from a
// pyramid that was never computed also covers a pyramid that is simply on
// the wrong machine.
func (s *Scheduler) ResumeSession(key, remote string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.resumed++
	sess := &Session{
		sched:      s,
		id:         s.nextID,
		remote:     remote,
		key:        key,
		started:    time.Now(),
		continuity: s.continuity,
	}
	s.sessions[sess] = struct{}{}
	if len(s.sessions) > s.peakSess {
		s.peakSess = len(s.sessions)
	}
	return sess
}

// QueueSnapshot is the scheduler's instantaneous load signal, cheap enough
// for a placement layer to poll per decision.
type QueueSnapshot struct {
	// Queued counts admitted requests not yet taken by a worker; InFlight
	// those on an accelerator right now. Their sum is the backlog a new
	// request lands behind.
	Queued   int
	InFlight int
	// Depth is the admission bound, Sessions the live session count.
	Depth    int
	Sessions int
}

// Backlog is the work ahead of a newly admitted request.
func (q QueueSnapshot) Backlog() int { return q.Queued + q.InFlight }

// QueueSnapshot samples the load signal the load-aware placement policy
// feeds on. It takes the scheduler lock briefly; no allocation.
func (s *Scheduler) QueueSnapshot() QueueSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return QueueSnapshot{
		Queued:   s.queued,
		InFlight: s.inflight,
		Depth:    s.depth,
		Sessions: len(s.sessions),
	}
}

// The outcome counters below move only through these mutators, so every
// write the conservation law depends on (each admitted request ends up
// served, rejected, shed or cancelled — never silently lost) is auditable
// by the conservation analyzer. All mutators expect s.mu held.

func (s *Scheduler) countServed(n int) { s.served += n }
func (s *Scheduler) countRejected()    { s.rejected++ }
func (s *Scheduler) countShed()        { s.shed++ }
func (s *Scheduler) countCancelled()   { s.cancelled++ }

// countKeyframes and countWarped split countServed by keyframe class when a
// keyframe policy is enabled: keyframes are feature-cache misses (full
// backbone), warped frames cache hits (partial warp cost). Together they
// must always equal served. Both expect s.mu held.
func (s *Scheduler) countKeyframes(n int) { s.keyframes += n }
func (s *Scheduler) countWarped(n int)    { s.warped += n }

// infer admits one request and blocks until it is served, rejected, shed or
// cancelled. No scheduler lock is held while waiting.
//
// The keyframe decision is made here, at admission time, because it is the
// session's only cross-frame state transition and admissions are the
// arrival order of the session's frames. It happens before the scheduler
// lock is taken (the decision reads the session's cache under sess.mu,
// which is never held together with s.mu); if the decided request then
// fails to reach an accelerator, the cache is conservatively invalidated
// below so no later frame warps from a pyramid that was never computed.
func (s *Scheduler) infer(sess *Session, in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64, error) {
	d := sess.decide(s.keyframe, in, g)
	j := &job{sess: sess, in: in, g: g, class: ClassOf(in, g, d.Keyframe), decision: d,
		enqueued: time.Now(), done: make(chan jobResult, 1)}
	s.mu.Lock()
	if s.closed || sess.closed {
		s.mu.Unlock()
		sess.dropCacheFor(d)
		return nil, 0, ErrClosed
	}
	// A session is in the ring iff it has pending work; capture that before
	// the verdict, because a shed can empty pending momentarily without the
	// session ever leaving the ring.
	inRing := len(sess.pending) > 0
	switch s.admission.Admit(s.queued, s.depth, len(sess.pending)) {
	case VerdictReject:
		s.countRejected()
		s.mu.Unlock()
		sess.noteRejected()
		sess.dropCacheFor(d)
		return nil, 0, ErrQueueFull
	case VerdictShedOldest:
		if len(sess.pending) > 0 {
			// Displace the session's own oldest queued frame: its waiter
			// learns it was shed, the fresh frame takes the slot. The
			// session stays in the ring — its pending list never empties
			// here because the fresh job is appended below.
			stale := sess.pending[0]
			sess.pending = sess.pending[1:]
			s.queued--
			s.countShed()
			//edgeis:lockheld done is buffered (cap 1) and this is its only send, so it cannot block
			stale.done <- jobResult{err: ErrShed}
			defer sess.noteShed()
			// A shed keyframe never reaches an accelerator, so the cached
			// pyramid any later non-keyframe would warp from does not
			// exist; invalidate once the lock is dropped.
			if stale.decision.Keyframe {
				defer sess.dropCacheFor(stale.decision)
			}
		} else {
			// A policy may only shed the arriving session's own work;
			// with none queued the verdict degrades to a reject.
			s.countRejected()
			s.mu.Unlock()
			sess.noteRejected()
			sess.dropCacheFor(d)
			return nil, 0, ErrQueueFull
		}
	}
	if !inRing {
		s.ring = append(s.ring, sess)
	}
	sess.pending = append(sess.pending, j)
	s.queued++
	s.depths.Add(float64(s.queued))
	s.cond.Signal()
	s.mu.Unlock()

	r := <-j.done
	return r.out, r.inferMs, r.err
}

// takeHead pops the front session's oldest request under the rotation
// discipline; the caller holds the lock and has checked the ring is
// non-empty. The popped job counts as in flight from this moment.
func (s *Scheduler) takeHead() *job {
	sess := s.ring[0]
	s.ring = s.ring[1:]
	j := sess.pending[0]
	sess.pending = sess.pending[1:]
	s.queued--
	if len(sess.pending) > 0 {
		// One request per turn: the session rotates to the back of
		// the ring behind every other waiting session.
		s.ring = append(s.ring, sess)
	}
	s.inflight++
	return j
}

// gather extends batch with queued jobs of the same class, scanning the
// ring in order and taking at most one job per session per call so the
// batch former cannot out-run round-robin fairness. The caller holds the
// lock.
func (s *Scheduler) gather(batch []*job, class BatchClass) []*job {
	i := 0
	for len(batch) < s.maxBatch && i < len(s.ring) {
		sess := s.ring[i]
		if sess.pending[0].class != class {
			i++
			continue
		}
		j := sess.pending[0]
		sess.pending = sess.pending[1:]
		s.queued--
		s.inflight++
		batch = append(batch, j)
		if len(sess.pending) > 0 {
			// The session keeps its ring position but contributed its one
			// job for this pass; move past it.
			i++
		} else {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
		}
	}
	return batch
}

// nextBatch blocks until at least one request is available (fair
// round-robin across sessions) or the scheduler is closed and drained; nil
// means exit. Under GatherBatch it extends the head job with compatible
// queued work, holding an underfull batch open for the gather window.
func (s *Scheduler) nextBatch() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.ring) > 0 {
			head := s.takeHead()
			if s.maxBatch <= 1 {
				return []*job{head}
			}
			batch := s.gather([]*job{head}, head.class)
			if len(batch) < s.maxBatch && s.window > 0 && !s.closed {
				// Gather window: hold the underfull batch open so jobs
				// arriving within the window can ride the same launch. The
				// jobs already taken are in flight, so Close (which drains
				// in-flight work) and session teardown stay correct while
				// the lock is released.
				//edgeis:lockdance the deferred unlock covers every other exit; this window release re-locks on the only path that reaches it
				s.mu.Unlock()
				time.Sleep(s.window)
				s.mu.Lock()
				batch = s.gather(batch, head.class)
			}
			return batch
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// worker serves requests on one accelerator until close-and-drain.
func (s *Scheduler) worker(acc Accelerator) {
	defer s.wg.Done()
	bacc, canBatch := acc.(BatchAccelerator)
	wacc, canWarp := acc.(WarpAccelerator)
	for {
		batch := s.nextBatch()
		if batch == nil {
			return
		}
		waitMs := make([]float64, len(batch))
		for i, j := range batch {
			waitMs[i] = float64(time.Since(j.enqueued)) / float64(time.Millisecond)
		}

		// The batch former never mixes keyframe classes (BatchClass
		// includes Keyframe), so one probe of the head job decides the
		// launch shape for the whole batch.
		warp := canWarp && !batch[0].decision.Keyframe

		outs := make([]*segmodel.Result, len(batch))
		perMs := make([]float64, len(batch))
		switch {
		case len(batch) == 1:
			if warp {
				outs[0], perMs[0] = wacc.RunWarped(batch[0].in, batch[0].g, batch[0].decision)
			} else {
				outs[0], perMs[0] = acc.Run(batch[0].in, batch[0].g)
			}
		case canBatch:
			ins := make([]segmodel.Input, len(batch))
			gs := make([]segmodel.Guidance, len(batch))
			for i, j := range batch {
				ins[i], gs[i] = j.in, j.g
			}
			var bouts []*segmodel.Result
			var launchMs float64
			if warp {
				ds := make([]segmodel.KeyframeDecision, len(batch))
				for i, j := range batch {
					ds[i] = j.decision
				}
				bouts, launchMs = wacc.RunWarpedBatch(ins, gs, ds)
			} else {
				bouts, launchMs = bacc.RunBatch(ins, gs)
			}
			copy(outs, bouts)
			// Every job in the launch completes together.
			for i := range perMs {
				perMs[i] = launchMs
			}
		default:
			// The accelerator cannot batch: serve serially. Correct but
			// unamortized — batching pays off only with a BatchAccelerator.
			for i, j := range batch {
				if warp {
					outs[i], perMs[i] = wacc.RunWarped(j.in, j.g, j.decision)
				} else {
					outs[i], perMs[i] = acc.Run(j.in, j.g)
				}
			}
		}

		s.mu.Lock()
		s.inflight -= len(batch)
		s.countServed(len(batch))
		if s.keyframe.Enabled() {
			// Partition served by keyframe class; the class is uniform
			// across the batch.
			if batch[0].decision.Keyframe {
				s.countKeyframes(len(batch))
			} else {
				s.countWarped(len(batch))
			}
		}
		// Batch telemetry only exists under the batch former; with single
		// dequeue the stats surface stays exactly as it was before the
		// policy layer (no batch line in FormatServerStats).
		if s.maxBatch > 1 {
			s.batches++
			s.batchJobs += len(batch)
			s.batchCounts[len(batch)-1]++
		}
		for i := range batch {
			s.inferSum += perMs[i]
			s.waits.Add(waitMs[i])
		}
		s.mu.Unlock()
		for i, j := range batch {
			j.sess.noteServed(perMs[i], waitMs[i])
			j.done <- jobResult{out: outs[i], inferMs: perMs[i]}
		}
	}
}

// closeSession implements Session.Close.
func (s *Scheduler) closeSession(sess *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.closed {
		return
	}
	sess.closed = true
	delete(s.sessions, sess)
	if len(sess.pending) == 0 {
		return
	}
	// Fail queued-but-unstarted requests so their waiters unblock; any
	// already taken onto a worker (alone or in a gathering batch) complete
	// normally.
	for _, j := range sess.pending {
		s.queued--
		s.countCancelled()
		//edgeis:lockheld done is buffered (cap 1) and this is its only send, so it cannot block
		j.done <- jobResult{err: ErrClosed}
	}
	sess.pending = nil
	for i, rs := range s.ring {
		if rs == sess {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			break
		}
	}
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:         s.workers,
		QueueDepth:      s.depth,
		AdmissionPolicy: s.admission.Name(),
		DequeuePolicy:   s.dequeue,
		Queued:          s.queued,
		InFlight:        s.inflight,
		Served:          s.served,
		Rejected:        s.rejected,
		Shed:            s.shed,
		Cancelled:       s.cancelled,
		MeanWaitMs:      s.waits.Mean(),
		MaxWaitMs:       s.waits.Max(),
		P95WaitMs:       s.waits.Percentile(0.95),
		MeanQueueDepth:  s.depths.Mean(),
		PeakQueueDepth:  int(s.depths.Max()),
		Batches:         s.batches,
		BatchSizeCounts: append([]int(nil), s.batchCounts...),
		KeyframesServed: s.keyframes,
		WarpedServed:    s.warped,
		ActiveSessions:  len(s.sessions),
		PeakSessions:    s.peakSess,
		ResumedSessions: s.resumed,
	}
	if s.served > 0 {
		st.MeanInferMs = s.inferSum / float64(s.served)
	}
	if s.batches > 0 {
		st.MeanBatchSize = float64(s.batchJobs) / float64(s.batches)
	}
	for size := len(s.batchCounts); size > 0; size-- {
		if s.batchCounts[size-1] > 0 {
			st.MaxBatchSize = size
			break
		}
	}
	return st
}

// Sessions snapshots every active session, ordered by session ID.
func (s *Scheduler) Sessions() []SessionStats {
	s.mu.Lock()
	live := make([]*Session, 0, len(s.sessions))
	for sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	// Map order is arbitrary; sort by the monotonically assigned ID.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j-1].id > live[j].id; j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	out := make([]SessionStats, len(live))
	for i, sess := range live {
		out[i] = sess.Stats()
	}
	return out
}

// Close stops admission and gracefully drains: requests already admitted
// are served to completion (their waiters get real results), new Infer
// calls fail with ErrClosed, and Close returns once every worker has
// exited. Workers never block on client connections, so Close cannot
// deadlock; it is safe to call more than once.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
