package edge

import (
	"sync"
	"time"

	"edgeis/internal/metrics"
	"edgeis/internal/segmodel"
)

// Accelerator is one inference execution unit. Each scheduler worker owns
// exactly one, so implementations need not be safe for concurrent use. The
// returned inferMs is the simulated inference latency reported to clients.
type Accelerator interface {
	Run(in segmodel.Input, g segmodel.Guidance) (out *segmodel.Result, inferMs float64)
}

// Config assembles a scheduler.
type Config struct {
	// Workers is the accelerator pool size; <= 0 means 1. One worker
	// serializes inference exactly like the old transport GPU mutex — the
	// deterministic mode the equivalence tests rely on.
	Workers int
	// QueueDepth bounds the admission queue across all sessions; <= 0 means
	// DefaultQueueDepth. A full queue rejects with ErrQueueFull.
	QueueDepth int
	// NewAccelerator builds worker i's accelerator. Required.
	NewAccelerator func(worker int) Accelerator
	// GuidanceContinuity lets sessions reuse their last CIIA plan for
	// guidance-less frames (see Session.Guide). Off by default: reuse
	// changes inference results, which single-client determinism tests pin.
	GuidanceContinuity bool
}

// DefaultQueueDepth is the admission bound when Config leaves it zero.
const DefaultQueueDepth = 32

// job is one admitted request waiting for an accelerator.
type job struct {
	sess     *Session
	in       segmodel.Input
	g        segmodel.Guidance
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	out     *segmodel.Result
	inferMs float64
	err     error
}

// Scheduler owns the accelerator pool and the bounded admission queue.
// Dequeueing is fair per session: workers round-robin across sessions that
// have pending work and take one request at a time, so one client flooding
// the queue cannot starve the others.
type Scheduler struct {
	workers    int
	depth      int
	continuity bool

	mu   sync.Mutex
	cond *sync.Cond
	// ring holds the sessions with pending requests in round-robin order.
	// Dequeueing rotates it: the front session gives up one request and, if
	// it still has pending work, re-joins at the back. Rotation (rather
	// than an index walk with removals) is what makes the round-robin
	// starvation-free: a session with a backlog is served exactly once per
	// pass over the waiting sessions, and a churn of fresh single-request
	// sessions joining at the back can never lap it.
	ring     []*Session
	queued   int
	inflight int
	closed   bool

	sessions map[*Session]struct{}
	nextID   int

	served    int
	rejected  int
	cancelled int
	inferSum  float64
	waits     metrics.Dist
	depths    metrics.Dist
	peakSess  int

	wg sync.WaitGroup
}

// Stats is a point-in-time scheduler snapshot.
type Stats struct {
	// Workers and QueueDepth echo the configuration.
	Workers    int
	QueueDepth int
	// Queued and InFlight describe the instantaneous load.
	Queued   int
	InFlight int
	// Served, Rejected and Cancelled partition every admitted-or-refused
	// request: answered, refused at admission, failed by session/scheduler
	// shutdown. Nothing is lost silently.
	Served    int
	Rejected  int
	Cancelled int
	// MeanInferMs averages simulated inference latency over served requests.
	MeanInferMs float64
	// Wait telemetry: admission-to-dequeue wall time over served requests.
	MeanWaitMs float64
	MaxWaitMs  float64
	P95WaitMs  float64
	// Queue-depth telemetry, sampled at each admission.
	MeanQueueDepth float64
	PeakQueueDepth int
	// Session population.
	ActiveSessions int
	PeakSessions   int
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Scheduler{
		workers:    cfg.Workers,
		depth:      cfg.QueueDepth,
		continuity: cfg.GuidanceContinuity,
		sessions:   make(map[*Session]struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(cfg.NewAccelerator(i))
	}
	return s
}

// NewSession registers a client. Sessions created after Close still work as
// handles, but every Infer through them fails with ErrClosed.
func (s *Scheduler) NewSession(remote string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess := &Session{
		sched:      s,
		id:         s.nextID,
		remote:     remote,
		started:    time.Now(),
		continuity: s.continuity,
	}
	s.sessions[sess] = struct{}{}
	if len(s.sessions) > s.peakSess {
		s.peakSess = len(s.sessions)
	}
	return sess
}

// infer admits one request and blocks until it is served, rejected or
// cancelled. No scheduler lock is held while waiting.
func (s *Scheduler) infer(sess *Session, in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64, error) {
	j := &job{sess: sess, in: in, g: g, enqueued: time.Now(), done: make(chan jobResult, 1)}
	s.mu.Lock()
	if s.closed || sess.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if s.queued >= s.depth {
		s.rejected++
		s.mu.Unlock()
		sess.noteRejected()
		return nil, 0, ErrQueueFull
	}
	if len(sess.pending) == 0 {
		s.ring = append(s.ring, sess)
	}
	sess.pending = append(sess.pending, j)
	s.queued++
	s.depths.Add(float64(s.queued))
	s.cond.Signal()
	s.mu.Unlock()

	r := <-j.done
	return r.out, r.inferMs, r.err
}

// next blocks until a request is available (fair round-robin across
// sessions) or the scheduler is closed and drained; nil means exit.
func (s *Scheduler) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.ring) > 0 {
			sess := s.ring[0]
			s.ring = s.ring[1:]
			j := sess.pending[0]
			sess.pending = sess.pending[1:]
			s.queued--
			if len(sess.pending) > 0 {
				// One request per turn: the session rotates to the back of
				// the ring behind every other waiting session.
				s.ring = append(s.ring, sess)
			}
			s.inflight++
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// worker serves requests on one accelerator until close-and-drain.
func (s *Scheduler) worker(acc Accelerator) {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		waitMs := float64(time.Since(j.enqueued)) / float64(time.Millisecond)
		out, inferMs := acc.Run(j.in, j.g)

		s.mu.Lock()
		s.inflight--
		s.served++
		s.inferSum += inferMs
		s.waits.Add(waitMs)
		s.mu.Unlock()
		j.sess.noteServed(inferMs, waitMs)

		j.done <- jobResult{out: out, inferMs: inferMs}
	}
}

// closeSession implements Session.Close.
func (s *Scheduler) closeSession(sess *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.closed {
		return
	}
	sess.closed = true
	delete(s.sessions, sess)
	if len(sess.pending) == 0 {
		return
	}
	// Fail queued-but-unstarted requests so their waiters unblock; the one
	// possibly in flight on a worker completes normally.
	for _, j := range sess.pending {
		s.queued--
		s.cancelled++
		j.done <- jobResult{err: ErrClosed}
	}
	sess.pending = nil
	for i, rs := range s.ring {
		if rs == sess {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			break
		}
	}
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:        s.workers,
		QueueDepth:     s.depth,
		Queued:         s.queued,
		InFlight:       s.inflight,
		Served:         s.served,
		Rejected:       s.rejected,
		Cancelled:      s.cancelled,
		MeanWaitMs:     s.waits.Mean(),
		MaxWaitMs:      s.waits.Max(),
		P95WaitMs:      s.waits.Percentile(0.95),
		MeanQueueDepth: s.depths.Mean(),
		PeakQueueDepth: int(s.depths.Max()),
		ActiveSessions: len(s.sessions),
		PeakSessions:   s.peakSess,
	}
	if s.served > 0 {
		st.MeanInferMs = s.inferSum / float64(s.served)
	}
	return st
}

// Sessions snapshots every active session, ordered by session ID.
func (s *Scheduler) Sessions() []SessionStats {
	s.mu.Lock()
	live := make([]*Session, 0, len(s.sessions))
	for sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	// Map order is arbitrary; sort by the monotonically assigned ID.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j-1].id > live[j].id; j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	out := make([]SessionStats, len(live))
	for i, sess := range live {
		out[i] = sess.Stats()
	}
	return out
}

// Close stops admission and gracefully drains: requests already admitted
// are served to completion (their waiters get real results), new Infer
// calls fail with ErrClosed, and Close returns once every worker has
// exited. Workers never block on client connections, so Close cannot
// deadlock; it is safe to call more than once.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
