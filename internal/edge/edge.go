// Package edge implements the serving layer of the edge node: per-client
// Sessions and an accelerator Scheduler. The paper's testbed (§IV) pairs one
// mobile with one Jetson, so its server can treat the GPU as a mutex; a
// production edge node serves many mobiles from a pool of accelerators and
// needs the accelerator treated as a scheduled, admission-controlled shared
// resource instead (cf. YolactEdge's throughput-oriented edge serving).
//
// The layering is:
//
//   - transport (package transport): framing and socket IO only. One
//     goroutine per connection reads frames, submits them here, writes
//     results or rejects back.
//   - Session (this package): per-client state — identity, serving counters,
//     and the CIIA guidance context that must survive across requests so a
//     client's instructed areas keep accelerating its later frames.
//   - Scheduler (this package): a pool of N inference workers, each owning
//     one Accelerator, fed by a bounded admission queue with fair
//     round-robin per-session dequeue. A full queue rejects explicitly
//     (ErrQueueFull) or — under the latest-wins admission policy — sheds
//     the arriving session's own stale queued frame (ErrShed), never
//     silently; Close drains admitted work and then rejects everything
//     new, so shutdown cannot deadlock a waiter.
//   - Policies (policy.go): AdmissionPolicy decides the fate of requests
//     at a full queue; DequeuePolicy shapes accelerator launches, up to
//     cross-session batches of compatible jobs gathered within a window.
//
// With Workers=1 and the default policies the scheduler serializes
// inference exactly like the old GPU mutex, which keeps single-client runs
// deterministic; throughput scaling comes from raising Workers and, for
// batch-capable accelerators, from cross-session batching.
//
// This package legitimately reads the wall clock (queue wait measurement,
// session uptime): it serves real sockets in real time, like package
// transport, and is allowlisted by the edgeis-lint walltime analyzer.
package edge

import "errors"

// Errors returned by Scheduler.Infer.
var (
	// ErrQueueFull reports an admission rejection: the bounded queue was at
	// capacity when the request arrived. The caller should tell its client
	// the frame was shed rather than fail the connection.
	ErrQueueFull = errors.New("edge: admission queue full")
	// ErrShed reports that a queued frame was displaced by a fresher frame
	// from the same session under the latest-wins admission policy. Like a
	// rejection it is a per-frame outcome, not a connection failure.
	ErrShed = errors.New("edge: stale frame shed by latest-wins admission")
	// ErrClosed reports a submission to a scheduler (or through a session)
	// that has shut down.
	ErrClosed = errors.New("edge: scheduler closed")
)
