package edge

import (
	"fmt"
	"sync"
	"time"

	"edgeis/internal/segmodel"
)

// Session is the server-side state of one connected client. The transport
// layer creates one per accepted connection and threads every request
// through it; the scheduler uses it as the fairness unit for dequeueing.
type Session struct {
	sched   *Scheduler
	id      int
	remote  string
	started time.Time
	// key is the session's stable cross-replica identity, set when the
	// session was adopted through a resume handshake (empty for plain
	// connections). A fleet client keeps the same key as it migrates
	// between replicas, so per-session accounting lines up fleet-wide even
	// though each replica assigns its own local ID.
	key string

	// pending and closed are guarded by the scheduler's mutex: they are part
	// of the admission queue, not of the session's private counters.
	pending []*job
	closed  bool

	// continuity enables CIIA guidance reuse for guidance-less frames.
	continuity bool

	// mu guards the counters and the guidance context below. It is never
	// held together with the scheduler's mutex.
	mu       sync.Mutex
	served   int
	rejected int
	shed     int
	inferSum float64
	waitSum  float64
	guided   int
	reused   int
	// plan is the last non-nil CIIA guidance the client sent — the
	// per-client context that stays alive across requests.
	plan segmodel.Guidance
	// cache is the session's skip-compute feature cache: the metadata of
	// the last keyframe's backbone pyramid. It is created lazily on the
	// first keyframe decision under an enabled policy, invalidated when a
	// decided keyframe fails to reach an accelerator or guidance
	// continuity breaks (the decision function handles the latter), and
	// evicted when the session closes. Nil whenever skip-compute is off.
	cache *segmodel.FeatureCache
}

// SessionStats is a point-in-time snapshot of one session.
type SessionStats struct {
	// ID is the server-unique session number; Remote the peer address.
	ID     int
	Remote string
	// Key is the cross-replica session identity ("" unless resumed).
	Key string
	// UptimeMs is wall-clock time since the session was created.
	UptimeMs float64
	// Served, Rejected and Shed count this session's answered requests,
	// admission rejections, and stale frames displaced by its own fresher
	// frames under latest-wins.
	Served   int
	Rejected int
	Shed     int
	// Pending counts requests admitted but not yet dequeued by a worker.
	Pending int
	// MeanInferMs and MeanWaitMs average the session's inference latency
	// and admission-queue wait.
	MeanInferMs float64
	MeanWaitMs  float64
	// GuidedFrames counts requests that carried CIIA guidance; ReusedPlans
	// counts guidance-less requests served under the retained plan.
	GuidedFrames int
	ReusedPlans  int
}

// ID returns the server-unique session number.
func (sess *Session) ID() int { return sess.id }

// Remote returns the peer address the session was created with.
func (sess *Session) Remote() string { return sess.remote }

// Key returns the session's cross-replica identity, or "" for a session
// that was never resumed.
func (sess *Session) Key() string { return sess.key }

// Guide resolves the guidance for one request and maintains the session's
// CIIA context: a non-nil g refreshes the retained plan; a nil g reuses the
// retained plan when continuity is enabled, so a client that establishes
// instructed areas keeps benefiting on frames where the mobile pipeline had
// nothing new to send.
func (sess *Session) Guide(g segmodel.Guidance) segmodel.Guidance {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if g != nil {
		sess.plan = g
		sess.guided++
		return g
	}
	if sess.continuity && sess.plan != nil {
		sess.reused++
		return sess.plan
	}
	return nil
}

// Infer submits one request for this session and blocks until an
// accelerator has served it (or it was rejected/cancelled). It returns the
// model output and the simulated inference latency in milliseconds.
func (sess *Session) Infer(in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64, error) {
	return sess.sched.infer(sess, in, g)
}

// Stats snapshots the session.
func (sess *Session) Stats() SessionStats {
	sess.sched.mu.Lock()
	pending := len(sess.pending)
	sess.sched.mu.Unlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := SessionStats{
		ID:           sess.id,
		Remote:       sess.remote,
		Key:          sess.key,
		UptimeMs:     float64(time.Since(sess.started)) / float64(time.Millisecond),
		Served:       sess.served,
		Rejected:     sess.rejected,
		Shed:         sess.shed,
		Pending:      pending,
		GuidedFrames: sess.guided,
		ReusedPlans:  sess.reused,
	}
	if sess.served > 0 {
		st.MeanInferMs = sess.inferSum / float64(sess.served)
		st.MeanWaitMs = sess.waitSum / float64(sess.served)
	}
	return st
}

// Close detaches the session from the scheduler: queued-but-unstarted
// requests fail with ErrClosed (unblocking their waiters), later Infer
// calls are rejected, and the session stops appearing in Sessions. The
// session's feature cache is evicted with it. Safe to call more than once.
func (sess *Session) Close() {
	sess.sched.closeSession(sess)
	sess.mu.Lock()
	sess.cache = nil
	sess.mu.Unlock()
}

// decide classifies one request as keyframe or non-keyframe against the
// session's feature cache, creating the cache on first use. It advances
// the cache's cross-frame state, so the scheduler calls it exactly once
// per request, in admission order. Must not be called with the scheduler's
// mutex held (it takes sess.mu).
func (sess *Session) decide(p segmodel.KeyframePolicy, in segmodel.Input, g segmodel.Guidance) segmodel.KeyframeDecision {
	if !p.Enabled() {
		return segmodel.KeyframeDecision{Keyframe: true, Reason: segmodel.KeyDisabled}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.cache == nil {
		sess.cache = segmodel.NewFeatureCache()
	}
	return p.Decide(sess.cache, in, g)
}

// dropCacheFor invalidates the feature cache after the request carrying
// the given decision failed to reach an accelerator. Only a lost keyframe
// matters: its pyramid was never computed, so later frames must not warp
// from it. A lost non-keyframe leaves the cached keyframe intact. Must not
// be called with the scheduler's mutex held.
func (sess *Session) dropCacheFor(d segmodel.KeyframeDecision) {
	if !d.Keyframe || d.Reason == segmodel.KeyDisabled {
		return
	}
	sess.mu.Lock()
	sess.cache.Invalidate()
	sess.mu.Unlock()
}

// noteServed records one answered request's latencies.
func (sess *Session) noteServed(inferMs, waitMs float64) {
	sess.mu.Lock()
	sess.served++
	sess.inferSum += inferMs
	sess.waitSum += waitMs
	sess.mu.Unlock()
}

// noteRejected records one admission rejection.
func (sess *Session) noteRejected() {
	sess.mu.Lock()
	sess.rejected++
	sess.mu.Unlock()
}

// noteShed records one stale frame displaced by latest-wins admission.
func (sess *Session) noteShed() {
	sess.mu.Lock()
	sess.shed++
	sess.mu.Unlock()
}

// Label renders the session's table identity ("3 10.0.0.1:5555").
func (st SessionStats) Label() string {
	return fmt.Sprintf("%d %s", st.ID, st.Remote)
}
