package edge

import (
	"fmt"
	"time"

	"edgeis/internal/segmodel"
)

// This file is the scheduler's policy layer. Admission (what happens to a
// request arriving at a full queue) and dequeue (how queued requests become
// accelerator launches) used to be inlined in the scheduler; they are now
// first-class values so serving disciplines can be swapped without touching
// the queue mechanics. The mechanics themselves — bounded queue, fair
// rotate-ring order across sessions, explicit accounting of every outcome —
// are invariant: policies decide, the scheduler executes.

// AdmissionVerdict is an AdmissionPolicy's decision for one arriving
// request.
type AdmissionVerdict uint8

const (
	// VerdictAdmit enqueues the request.
	VerdictAdmit AdmissionVerdict = iota
	// VerdictReject refuses the arriving request (ErrQueueFull).
	VerdictReject
	// VerdictShedOldest displaces the arriving session's oldest queued
	// request (its waiter gets ErrShed) and admits the fresh one in its
	// place — the DropOldest discipline of the paper's mobile send queue,
	// applied per session on the edge.
	VerdictShedOldest
)

// AdmissionPolicy decides the fate of each request at admission time. The
// scheduler calls Admit under its lock with the instantaneous queue
// occupancy and the arriving session's own queued-but-undequeued count;
// implementations must be pure decision functions (no blocking, no state).
type AdmissionPolicy interface {
	// Name identifies the policy in stats and flags ("reject",
	// "latest-wins").
	Name() string
	// Admit returns the verdict for a request arriving when queued requests
	// already occupy the admission queue of the given depth and the
	// arriving session has sessionPending queued requests of its own.
	// VerdictShedOldest is only honoured when sessionPending > 0.
	Admit(queued, depth, sessionPending int) AdmissionVerdict
}

// RejectWhenFull is the historical admission discipline: a full queue
// refuses the arriving request explicitly. It is the default and the
// deterministic mode the golden tests rely on.
type RejectWhenFull struct{}

// Name implements AdmissionPolicy.
func (RejectWhenFull) Name() string { return "reject" }

// Admit implements AdmissionPolicy.
func (RejectWhenFull) Admit(queued, depth, _ int) AdmissionVerdict {
	if queued >= depth {
		return VerdictReject
	}
	return VerdictAdmit
}

// LatestWins sheds the arriving session's own stale queued frame in place
// of rejecting the fresh one: for a real-time client the newest frame is
// the valuable one, so when the queue is full and the session already has a
// frame waiting, the waiting frame is displaced (ErrShed) and the new frame
// takes its place. A full queue with no stale frame from the same session
// still rejects — latest-wins never steals another session's slot.
type LatestWins struct{}

// Name implements AdmissionPolicy.
func (LatestWins) Name() string { return "latest-wins" }

// Admit implements AdmissionPolicy.
func (LatestWins) Admit(queued, depth, sessionPending int) AdmissionVerdict {
	if queued < depth {
		return VerdictAdmit
	}
	if sessionPending > 0 {
		return VerdictShedOldest
	}
	return VerdictReject
}

// AdmissionPolicyByName resolves the flag spelling of an admission policy.
func AdmissionPolicyByName(name string) (AdmissionPolicy, error) {
	switch name {
	case "", "reject":
		return RejectWhenFull{}, nil
	case "latest-wins":
		return LatestWins{}, nil
	default:
		return nil, fmt.Errorf("edge: unknown shed policy %q (want reject or latest-wins)", name)
	}
}

// DequeuePolicy shapes how workers turn queued requests into accelerator
// launches. The scheduler owns the fair rotate-ring mechanics; the policy
// decides how large a launch may grow and how long a worker may hold an
// underfull batch open waiting for compatible work.
type DequeuePolicy interface {
	// Name identifies the policy in stats and flags ("single", "batch").
	Name() string
	// MaxBatch is the largest launch the policy forms; 1 is single dequeue.
	MaxBatch() int
	// Window is how long a worker holds an underfull batch open for more
	// compatible jobs before launching; 0 launches immediately.
	Window() time.Duration
}

// SingleDequeue is the historical dequeue discipline: one job per launch,
// dispatched as soon as a worker is free. The default; with it the
// scheduler behaves exactly as before the policy layer existed.
type SingleDequeue struct{}

// Name implements DequeuePolicy.
func (SingleDequeue) Name() string { return "single" }

// MaxBatch implements DequeuePolicy.
func (SingleDequeue) MaxBatch() int { return 1 }

// Window implements DequeuePolicy.
func (SingleDequeue) Window() time.Duration { return 0 }

// GatherBatch forms cross-session batches: a worker takes the front job by
// the usual rotation, gathers further queued jobs of the same BatchClass in
// ring order (one per session per pass, so gathering preserves fairness),
// and if the batch is still underfull holds it open for GatherWindow before
// launching. Real accelerators amortize kernel launches across a batch (cf.
// YolactEdge's cross-frame compute sharing), which the BatchAccelerator's
// amortized launch cost models.
type GatherBatch struct {
	// Max bounds the batch size; values below 1 mean 1.
	Max int
	// GatherWindow is how long an underfull batch waits for compatible
	// work. Zero dispatches whatever is immediately available.
	GatherWindow time.Duration
}

// Name implements DequeuePolicy.
func (GatherBatch) Name() string { return "batch" }

// MaxBatch implements DequeuePolicy.
func (g GatherBatch) MaxBatch() int {
	if g.Max < 1 {
		return 1
	}
	return g.Max
}

// Window implements DequeuePolicy.
func (g GatherBatch) Window() time.Duration {
	if g.GatherWindow < 0 {
		return 0
	}
	return g.GatherWindow
}

// BatchClass is the compatibility key of the batch former: only jobs whose
// inputs share a resolution, guidance class and keyframe class can ride one
// accelerator launch, because a real batched kernel needs uniform tensor
// shapes, a guided two-stage pass evaluates a different network slice than
// a vanilla one, and a keyframe (full backbone) launch has a completely
// different cost shape than a non-keyframe (warped feature) launch —
// co-batching the two would let the cheap warp jobs hide behind a full
// backbone and destroy the amortization math.
type BatchClass struct {
	Width, Height int
	Guided        bool
	// Keyframe separates full-backbone launches from skip-compute
	// (warped-feature) launches. With skip-compute disabled every request
	// is a keyframe, so the field is constant and the batch former behaves
	// exactly as before it existed.
	Keyframe bool
}

// ClassOf computes the batch class of one request under its keyframe
// decision.
func ClassOf(in segmodel.Input, g segmodel.Guidance, keyframe bool) BatchClass {
	return BatchClass{Width: in.Width, Height: in.Height, Guided: g != nil, Keyframe: keyframe}
}

// BatchAccelerator is an Accelerator that can serve a whole batch in one
// amortized launch. Workers probe for it when a batch has more than one
// job; accelerators that do not implement it serve batches serially (and
// gain nothing from batching). The returned launchMs is the latency of the
// whole launch — every job in the batch completes together, so each reports
// launchMs as its inference latency.
type BatchAccelerator interface {
	Accelerator
	// RunBatch serves len(ins) compatible jobs in one launch. gs[i] is the
	// guidance of ins[i]; outs[i] its result.
	RunBatch(ins []segmodel.Input, gs []segmodel.Guidance) (outs []*segmodel.Result, launchMs float64)
}

// WarpAccelerator is an Accelerator that can serve non-keyframe requests
// from cached backbone features at the partial (warp) cost. Workers probe
// for it when a job's keyframe decision says skip-compute; accelerators
// that do not implement it serve the job at full cost (correct, just
// unaccelerated — the decision still counts as a cache hit in stats, since
// the cache state advanced on it).
type WarpAccelerator interface {
	Accelerator
	// RunWarped serves one non-keyframe request under its decision.
	RunWarped(in segmodel.Input, g segmodel.Guidance, d segmodel.KeyframeDecision) (out *segmodel.Result, inferMs float64)
	// RunWarpedBatch serves a batch of non-keyframe requests in one
	// amortized launch; the batch former guarantees a uniform keyframe
	// class, so ds[i] are all non-keyframes.
	RunWarpedBatch(ins []segmodel.Input, gs []segmodel.Guidance, ds []segmodel.KeyframeDecision) (outs []*segmodel.Result, launchMs float64)
}
