// Package parallel is the bounded worker pool that fans independent
// simulation work — clip runs, experiment arms, whole figures — across CPU
// cores while keeping results in deterministic order.
//
// The pool is global and token-based: the process holds Workers() execution
// slots, and every Map call draws from the same bucket, so arbitrarily
// nested fan-outs (All -> figure -> arm -> clip) never multiply concurrency
// beyond the configured bound. When no token is available the caller runs
// the item inline on its own goroutine, which both caps goroutine count and
// makes nesting deadlock-free by construction.
//
// Determinism: Map assigns results by index, so callers that merge in input
// order produce byte-identical output to a serial run. Forcing a serial run
// (SetWorkers(1)) is therefore an equality check, not a behaviour change —
// the determinism tests in internal/experiments rely on this.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// EnvWorkers overrides the default pool size (GOMAXPROCS) when set to a
// positive integer. SetWorkers takes precedence over the environment.
const EnvWorkers = "EDGEIS_WORKERS"

var (
	mu       sync.Mutex
	override int           // SetWorkers value; 0 = auto
	tokens   chan struct{} // execution slots beyond the caller's own
	sized    int           // pool size tokens was built for
)

// Workers returns the effective pool size: the SetWorkers override when
// set, else a positive EDGEIS_WORKERS, else GOMAXPROCS.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return workersLocked()
}

func workersLocked() int {
	if override > 0 {
		return override
	}
	if v, err := strconv.Atoi(os.Getenv(EnvWorkers)); err == nil && v > 0 {
		return v
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool size and returns the previous effective
// size. n = 1 forces fully serial execution; n <= 0 restores the automatic
// size. Safe to call while work is in flight: running items finish under
// the old bound.
func SetWorkers(n int) int {
	mu.Lock()
	defer mu.Unlock()
	prev := workersLocked()
	if n <= 0 {
		override = 0
	} else {
		override = n
	}
	tokens, sized = nil, 0
	return prev
}

// pool returns the shared token bucket for the current size, or nil when
// the pool is serial. Each token is one execution slot in addition to the
// slot every calling goroutine already owns.
func pool() chan struct{} {
	mu.Lock()
	defer mu.Unlock()
	n := workersLocked()
	if n <= 1 {
		return nil
	}
	if tokens == nil || sized != n {
		tokens = make(chan struct{}, n-1)
		sized = n
	}
	return tokens
}

// Map applies fn to every item on the worker pool and returns the results
// in input order. fn must be safe to call concurrently; a panic in any item
// is re-raised on the calling goroutine after the remaining items finish.
func Map[T, R any](items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	Do(len(items), func(i int) { out[i] = fn(i, items[i]) })
	return out
}

// Do runs fn(0..n-1) on the worker pool and returns when all calls finish.
func Do(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	bucket := pool()
	if bucket == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		fn(i)
	}
	for i := 0; i < n; i++ {
		select {
		case bucket <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-bucket }()
				run(i)
			}(i)
		default:
			// Pool saturated: spend the caller's own slot.
			run(i)
		}
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
