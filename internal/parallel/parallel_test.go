package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// withWorkers runs f under a forced pool size, restoring the prior
// configuration afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		withWorkers(t, workers, func() {
			items := make([]int, 100)
			for i := range items {
				items[i] = i
			}
			out := Map(items, func(i, v int) int { return v * v })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
				}
			}
		})
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out := Map(nil, func(i int, v struct{}) int { return 1 }); len(out) != 0 {
		t.Errorf("empty map returned %d results", len(out))
	}
	out := Map([]int{7}, func(i, v int) int { return v + 1 })
	if len(out) != 1 || out[0] != 8 {
		t.Errorf("single map = %v", out)
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const workers = 4
	withWorkers(t, workers, func() {
		var active, peak int64
		Do(64, func(int) {
			n := atomic.AddInt64(&active, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&active, -1)
		})
		if p := atomic.LoadInt64(&peak); p > workers {
			t.Errorf("peak concurrency %d exceeds pool size %d", p, workers)
		}
	})
}

func TestNestedMapNoDeadlock(t *testing.T) {
	withWorkers(t, 4, func() {
		done := make(chan []int, 1)
		go func() {
			done <- Map(make([]int, 8), func(i, _ int) int {
				inner := Map(make([]int, 8), func(j, _ int) int { return i*100 + j })
				sum := 0
				for _, v := range inner {
					sum += v
				}
				return sum
			})
		}()
		select {
		case out := <-done:
			for i, v := range out {
				want := i*800 + 28
				if v != want {
					t.Errorf("out[%d] = %d, want %d", i, v, want)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatal("nested Map deadlocked")
		}
	})
}

func TestSerialRunsInline(t *testing.T) {
	withWorkers(t, 1, func() {
		order := make([]int, 0, 10)
		Do(10, func(i int) { order = append(order, i) }) // no locking: must be inline
		for i, v := range order {
			if v != i {
				t.Fatalf("serial order broken: %v", order)
			}
		}
	})
}

func TestPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic did not propagate")
			}
		}()
		Do(16, func(i int) {
			if i == 7 {
				panic(fmt.Sprintf("boom %d", i))
			}
		})
	})
}

func TestSetWorkersReturnsPrevious(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", got)
	}
	if got := SetWorkers(5); got != 3 {
		t.Errorf("SetWorkers returned %d, want 3", got)
	}
	SetWorkers(0) // restore auto
	if got := Workers(); got < 1 {
		t.Errorf("auto Workers() = %d", got)
	}
}

func TestEnvOverride(t *testing.T) {
	prev := SetWorkers(0) // auto mode so the env var is consulted
	defer SetWorkers(prev)
	t.Setenv(EnvWorkers, "6")
	if got := Workers(); got != 6 {
		t.Errorf("Workers() = %d with %s=6", got, EnvWorkers)
	}
	t.Setenv(EnvWorkers, "bogus")
	if got := Workers(); got < 1 {
		t.Errorf("Workers() = %d with malformed env", got)
	}
}
