package linalg

import (
	"math"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matching eigenvectors as columns of the returned matrix. The input is not
// modified.
//
// Jacobi is quadratic-per-sweep but unconditionally stable, which is exactly
// right for the tiny (<=9x9) Gram matrices of two-view geometry.
func SymEigen(a *Dense) (vals []float64, vecs *Dense) {
	n := a.Rows
	m := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs
}

// rotate applies the Jacobi rotation J(p,q,theta) to m (two-sided) and
// accumulates it into v (one-sided).
func rotate(m, v *Dense, p, q int, c, s float64) {
	n := m.Rows
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// NullVector returns the unit vector x minimizing ||A x|| for a matrix with
// more rows than columns — the smallest right singular vector of A, computed
// as the smallest eigenvector of A^T A. It is the solver used for the
// 8-point fundamental-matrix estimate (Eq. 1) and linear triangulation
// (Eq. 3).
func NullVector(a *Dense) []float64 {
	gram := a.TransposeMul()
	_, vecs := SymEigen(gram)
	n := gram.Rows
	out := make([]float64, n)
	for r := 0; r < n; r++ {
		out[r] = vecs.At(r, n-1) // column of the smallest eigenvalue
	}
	return out
}

// SVD3 computes the singular value decomposition A = U * diag(s) * V^T of a
// 3x3 matrix given in row-major order. Singular values are returned in
// descending order; U and V are proper (possibly improper — sign-consistent)
// orthogonal matrices in row-major order. It is used to decompose the
// essential matrix (Eq. 2) and to enforce rank-2 on fundamental estimates.
func SVD3(a [9]float64) (u [9]float64, s [3]float64, v [9]float64) {
	am := FromRows([][]float64{
		{a[0], a[1], a[2]},
		{a[3], a[4], a[5]},
		{a[6], a[7], a[8]},
	})
	// Eigen of A^T A gives V and s^2.
	gram := am.TransposeMul()
	vals, vecs := SymEigen(gram)
	for i := 0; i < 3; i++ {
		s[i] = math.Sqrt(math.Max(0, vals[i]))
		for r := 0; r < 3; r++ {
			v[r*3+i] = vecs.At(r, i)
		}
	}
	// U columns: A*v_i / s_i; fall back to completing an orthonormal basis
	// for vanishing singular values.
	var ucols [3][3]float64
	for i := 0; i < 3; i++ {
		col := am.MulVec([]float64{v[i], v[3+i], v[6+i]})
		norm := math.Sqrt(col[0]*col[0] + col[1]*col[1] + col[2]*col[2])
		if s[i] > 1e-12 && norm > 1e-12 {
			ucols[i] = [3]float64{col[0] / norm, col[1] / norm, col[2] / norm}
		}
	}
	completeBasis(&ucols, s)
	for i := 0; i < 3; i++ {
		for r := 0; r < 3; r++ {
			u[r*3+i] = ucols[i][r]
		}
	}
	return u, s, v
}

// completeBasis fills in any unset columns (those with vanishing singular
// values) so that the three columns form an orthonormal basis. Candidate
// directions are Gram-Schmidt orthogonalized against every column already
// set, so the routine works for any rank deficiency (0, 1 or 2 set columns).
func completeBasis(cols *[3][3]float64, _ [3]float64) {
	norm := func(v [3]float64) float64 {
		return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	for i := 0; i < 3; i++ {
		if norm(cols[i]) > 0.5 {
			continue
		}
		for _, cand := range [][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
			// Orthogonalize against all set columns.
			for j := 0; j < 3; j++ {
				if j == i || norm(cols[j]) < 0.5 {
					continue
				}
				dot := cand[0]*cols[j][0] + cand[1]*cols[j][1] + cand[2]*cols[j][2]
				for k := 0; k < 3; k++ {
					cand[k] -= dot * cols[j][k]
				}
			}
			if n := norm(cand); n > 1e-6 {
				cols[i] = [3]float64{cand[0] / n, cand[1] / n, cand[2] / n}
				break
			}
		}
	}
}
