package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveGaussKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveGauss(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveGauss(a, []float64{1, 2}); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestSolveGaussRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(7)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveGauss(a, b)
		if err != nil {
			continue // singular draw, fine
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveCholeskySPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		// Build SPD matrix as J^T J + small diagonal.
		j := NewDense(n+2, n)
		for i := range j.Data {
			j.Data[i] = rng.NormFloat64()
		}
		a := j.TransposeMul()
		for i := 0; i < n; i++ {
			a.Add(i, i, 0.1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveCholesky(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{
		{1, 0},
		{0, -1},
	})
	if _, err := SolveCholesky(a, []float64{1, 1}, 0); err == nil {
		t.Error("expected failure on indefinite matrix")
	}
}

func TestSolveCholeskyDamping(t *testing.T) {
	// Singular matrix becomes solvable with damping.
	a := FromRows([][]float64{
		{1, 1},
		{1, 1},
	})
	if _, err := SolveCholesky(a, []float64{1, 1}, 0); err == nil {
		t.Error("expected failure without damping")
	}
	if _, err := SolveCholesky(a, []float64{1, 1}, 0.5); err != nil {
		t.Errorf("expected success with damping: %v", err)
	}
}

func TestTransposeMul(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{3, 4},
		{5, 6},
	})
	g := a.TransposeMul()
	want := [][]float64{{35, 44}, {44, 56}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(g.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("g[%d][%d] = %v, want %v", i, j, g.At(i, j), want[i][j])
			}
		}
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, _ := SymEigen(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-9 {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		j := NewDense(n, n)
		for i := range j.Data {
			j.Data[i] = rng.NormFloat64()
		}
		a := j.TransposeMul() // symmetric
		vals, vecs := SymEigen(a)
		// Check A*v_i = lambda_i * v_i for each eigenpair.
		for i := 0; i < n; i++ {
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, i)
			}
			av := a.MulVec(v)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-vals[i]*v[r]) > 1e-6*math.Max(1, math.Abs(vals[i])) {
					t.Fatalf("trial %d: eigenpair %d violated at row %d", trial, i, r)
				}
			}
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				t.Fatal("eigenvalues not sorted")
			}
		}
	}
}

func TestNullVector(t *testing.T) {
	// Rows are orthogonal to (1, -2, 1)/sqrt(6).
	a := FromRows([][]float64{
		{1, 1, 1},
		{2, 1, 0},
		{3, 2, 1},
		{4, 3, 2},
	})
	x := NullVector(a)
	res := a.MulVec(x)
	for i, r := range res {
		if math.Abs(r) > 1e-8 {
			t.Errorf("residual[%d] = %v", i, r)
		}
	}
	norm := 0.0
	for _, v := range x {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("null vector norm^2 = %v, want 1", norm)
	}
}

func TestSVD3Reconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		var a [9]float64
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		u, s, v := SVD3(a)
		// Reconstruct A = U diag(s) V^T.
		var rec [9]float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				sum := 0.0
				for k := 0; k < 3; k++ {
					sum += u[r*3+k] * s[k] * v[c*3+k]
				}
				rec[r*3+c] = sum
			}
		}
		for i := range a {
			if math.Abs(rec[i]-a[i]) > 1e-7 {
				t.Fatalf("trial %d: reconstruction error at %d: %v vs %v", trial, i, rec[i], a[i])
			}
		}
		// Singular values descending and non-negative.
		if s[0] < s[1]-1e-12 || s[1] < s[2]-1e-12 || s[2] < -1e-12 {
			t.Fatalf("trial %d: singular values not sorted: %v", trial, s)
		}
	}
}

func TestSVD3RankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := [9]float64{
		1, 2, 3,
		2, 4, 6,
		3, 6, 9,
	}
	u, s, v := SVD3(a)
	// Singular values of a rank-1 matrix: tolerance is sqrt of the eigen
	// tolerance since s = sqrt(eig(A^T A)).
	if s[1] > 1e-6 || s[2] > 1e-6 {
		t.Errorf("expected rank 1, got singular values %v", s)
	}
	// U and V columns should still be orthonormal.
	for _, m := range [][9]float64{u, v} {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				dot := m[i]*m[j] + m[3+i]*m[3+j] + m[6+i]*m[6+j]
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-6 {
					t.Fatalf("columns %d,%d dot = %v, want %v", i, j, dot, want)
				}
			}
		}
	}
}

func TestFromRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}
