// Package linalg implements the small dense linear-algebra routines the
// visual-odometry pipeline needs: Gaussian elimination, Cholesky
// factorization, Jacobi eigendecomposition of symmetric matrices and an SVD
// built on it. Matrices here are tiny (up to ~9x9: two-view geometry and 6x6
// Gauss-Newton normal equations), so simplicity and numerical robustness are
// preferred over asymptotic speed.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zero matrix with the given shape.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty rows")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into the element at row r, column c.
func (m *Dense) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
	return out
}

// TransposeMul computes m^T * m, the Gram matrix used by normal equations
// and by the null-space solver.
func (m *Dense) TransposeMul() *Dense {
	out := NewDense(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for i := 0; i < m.Cols; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < m.Cols; j++ {
				out.Data[i*m.Cols+j] += row[i] * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < m.Cols; i++ {
		for j := 0; j < i; j++ {
			out.Data[i*m.Cols+j] = out.Data[j*m.Cols+i]
		}
	}
	return out
}

// SolveGauss solves a*x = b by Gaussian elimination with partial pivoting.
// a must be square; a and b are not modified.
func SolveGauss(a *Dense, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: non-square system %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), a.Rows)
	}
	n := a.Rows
	aug := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				aug.Data[col*n+c], aug.Data[pivot*n+c] = aug.Data[pivot*n+c], aug.Data[col*n+c]
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		// Eliminate below.
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aug.Add(r, c, -f*aug.At(col, c))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := rhs[r]
		for c := r + 1; c < n; c++ {
			s -= aug.At(r, c) * x[c]
		}
		x[r] = s / aug.At(r, r)
	}
	return x, nil
}

// SolveCholesky solves a*x = b for a symmetric positive-definite a, with
// Levenberg-style diagonal damping lambda added before factorization. It is
// the solver behind each Gauss-Newton step of the pose optimizer.
func SolveCholesky(a *Dense, b []float64, lambda float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: non-square system %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := a.Clone()
	for i := 0; i < n; i++ {
		l.Add(i, i, lambda)
	}
	// In-place lower Cholesky.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 1e-14 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward then backward substitution.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
