package fleet

import (
	"fmt"
	"sync"
	"time"

	"edgeis/internal/transport"
)

// Config configures a FleetClient.
type Config struct {
	// Addrs is the fleet's replica address list. Order matters only for
	// determinism of iteration; placement hashes over the values. Every
	// client and replica should share the same list.
	Addrs []string
	// SessionKey is the cross-replica session identity carried by the
	// resume handshake. Required: without it a surviving replica has no
	// name under which to adopt the session.
	SessionKey string
	// DialTimeout bounds each dial and the resume handshake (default 2s).
	DialTimeout time.Duration
	// DialAttempts and DialBackoff parameterize transport.DialRetry per
	// replica: attempts tries with exponential backoff starting at
	// DialBackoff (defaults 3 and 50ms). A replica that stays unreachable
	// through the retry budget is marked down and placement moves on.
	DialAttempts int
	DialBackoff  time.Duration
	// Policy decides which alive replica serves the session (default
	// Rendezvous{}).
	Policy Policy
	// ClientOptions are extra per-connection transport options (send queue
	// depth, write timeout). The resume option is appended by the fleet
	// client itself.
	ClientOptions []transport.ClientOption
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.DialAttempts < 1 {
		cfg.DialAttempts = 3
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.Policy == nil {
		cfg.Policy = Rendezvous{}
	}
	return cfg
}

// Stats is the fleet client's frame accounting. After Close (or terminal
// failure) it satisfies the client-side fleet conservation law:
//
//	Sent == Delivered + Rejected + Shed + Migrated + ConnLost
//
// Migrated are frames accepted for sending but unresolved when their
// connection died and the session moved to another replica — the in-flight
// loss window of a migration, bounded and accounted rather than silent.
// ConnLost are frames unresolved on the final connection (terminal failure
// or user Close), the non-migration remainder.
type Stats struct {
	Sent      int
	Delivered int
	Rejected  int
	Shed      int
	Migrated  int
	ConnLost  int
	// Failovers counts completed replica switches; Down counts replicas
	// this client has written off. Replica is the current (or last)
	// serving address.
	Failovers int
	Down      int
	Replica   string
}

// Conserved reports whether the accounting identity closes. Only
// meaningful once the client is settled (closed or terminally failed);
// mid-run there are legitimately in-flight frames in no bucket.
func (s Stats) Conserved() bool {
	return s.Sent == s.Delivered+s.Rejected+s.Shed+s.Migrated+s.ConnLost
}

// FleetClient is a transport.Client over a replica fleet: it resolves
// placement for its session, pumps results from the serving replica, and
// on connection loss fails the session over — marks the replica down,
// re-places among survivors, and redials with the resume handshake so the
// target adopts the session (cold cache, forced keyframe on the next
// frame). Frames lost in flight across a failover are counted Migrated,
// never resent: results are real-time, a stale frame's answer is worthless
// by the time the new replica could produce it.
type FleetClient struct {
	cfg     Config
	results chan *transport.ResultMsg
	done    chan struct{}
	wg      sync.WaitGroup

	closeOnce sync.Once

	mu      sync.Mutex
	cur     *transport.Client // live connection, nil once folded
	curAddr string
	down    map[string]bool
	epoch   int64 // highest delivered frame index, carried by resume
	lastErr error

	// Settled totals folded from connections that have ended. While cur is
	// live its own counters are added on top by Stats.
	sent      int
	delivered int
	rejected  int
	shed      int
	migrated  int
	connLost  int
	failovers int
}

// DialFleet connects a session to its placed replica. Replicas that refuse
// the initial dial through the retry budget are marked down and placement
// falls through to the survivors; only a fully unreachable fleet fails.
func DialFleet(cfg Config) (*FleetClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("fleet: no replica addresses")
	}
	if cfg.SessionKey == "" {
		return nil, fmt.Errorf("fleet: session key required")
	}
	fc := &FleetClient{
		cfg:     cfg.withDefaults(),
		results: make(chan *transport.ResultMsg, 16),
		done:    make(chan struct{}),
		down:    make(map[string]bool, len(cfg.Addrs)),
		epoch:   -1,
	}
	c, addr, err := fc.dialPlaced()
	if err != nil {
		return nil, err
	}
	fc.cur, fc.curAddr = c, addr
	fc.wg.Add(1)
	go fc.run()
	return fc, nil
}

// dialPlaced resolves placement among alive replicas and dials until one
// answers, marking refusers down. Callers hold no lock.
func (fc *FleetClient) dialPlaced() (*transport.Client, string, error) {
	for {
		fc.mu.Lock()
		alive := fc.aliveLocked()
		epoch := fc.epoch
		fc.mu.Unlock()
		if len(alive) == 0 {
			return nil, "", fmt.Errorf("fleet: session %s: all %d replicas down",
				fc.cfg.SessionKey, len(fc.cfg.Addrs))
		}
		addr := fc.cfg.Policy.Pick(fc.cfg.SessionKey, alive)
		opts := append(append([]transport.ClientOption(nil), fc.cfg.ClientOptions...),
			transport.WithResume(fc.cfg.SessionKey, epoch))
		c, err := transport.DialRetry(addr, fc.cfg.DialTimeout,
			fc.cfg.DialAttempts, fc.cfg.DialBackoff, opts...)
		if err != nil {
			fc.mu.Lock()
			fc.down[addr] = true
			fc.mu.Unlock()
			continue
		}
		return c, addr, nil
	}
}

// aliveLocked returns the not-yet-written-off replicas in configured
// order. Callers hold fc.mu.
func (fc *FleetClient) aliveLocked() []string {
	alive := make([]string, 0, len(fc.cfg.Addrs))
	for _, a := range fc.cfg.Addrs {
		if !fc.down[a] {
			alive = append(alive, a)
		}
	}
	return alive
}

// run pumps results from the serving connection into the fleet results
// channel, failing over when the connection dies. It owns the channel
// close: consumers ranging over Results observe every delivered result
// across all connections, then the close.
func (fc *FleetClient) run() {
	defer fc.wg.Done()
	defer close(fc.results)
	for {
		fc.mu.Lock()
		cur := fc.cur
		fc.mu.Unlock()
		if cur == nil {
			return
		}
		for res := range cur.Results() {
			fc.mu.Lock()
			if int64(res.FrameIndex) > fc.epoch {
				fc.epoch = int64(res.FrameIndex)
			}
			fc.mu.Unlock()
			select {
			case fc.results <- res:
			case <-fc.done:
				return
			}
		}
		// Results closed: the connection is dead and its counters are
		// settled (the client settles ConnLost before closing the
		// channel). Unless the user closed us, migrate.
		select {
		case <-fc.done:
			return
		default:
		}
		if !fc.failover() {
			return
		}
	}
}

// failover moves the session to a surviving replica. It returns false when
// the fleet is exhausted (terminal: remaining frames fold into ConnLost
// and Err reports the failure) or the client was closed mid-migration.
func (fc *FleetClient) failover() bool {
	fc.mu.Lock()
	fc.down[fc.curAddr] = true
	fc.mu.Unlock()
	c, addr, err := fc.dialPlaced()
	if err != nil {
		fc.mu.Lock()
		fc.foldLocked(false)
		if fc.lastErr == nil {
			fc.lastErr = err
		}
		fc.mu.Unlock()
		return false
	}
	fc.mu.Lock()
	select {
	case <-fc.done:
		// Closed while redialing: the new connection never serves. Close
		// folds the old one.
		fc.mu.Unlock()
		_ = c.Close()
		return false
	default:
	}
	old := fc.cur
	fc.foldLocked(true)
	fc.failovers++
	fc.cur, fc.curAddr = c, addr
	fc.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return true
}

// foldLocked folds the current connection's settled counters into the
// fleet totals and retires it. migrated classifies its unresolved frames:
// lost to a completed migration, or terminally ConnLost. Idempotent per
// connection (cur is nil once folded); callers hold fc.mu and must only
// call after the connection's read loop has exited. foldLocked and Stats
// are the audited fleet counter mutators the conservation analyzer admits.
func (fc *FleetClient) foldLocked(migrated bool) {
	c := fc.cur
	if c == nil {
		return
	}
	fc.cur = nil
	fc.sent += c.Sent()
	fc.delivered += c.Delivered()
	fc.rejected += c.Rejected()
	fc.shed += c.Shed()
	if migrated {
		fc.migrated += c.ConnLost()
	} else {
		fc.connLost += c.ConnLost()
	}
}

// Send queues a frame on the serving connection. False means the frame is
// not going anywhere — queue full, connection settled, or mid-failover —
// and the caller accounts it client-side, exactly as with a single
// transport.Client.
func (fc *FleetClient) Send(f *transport.FrameMsg) bool {
	fc.mu.Lock()
	cur := fc.cur
	fc.mu.Unlock()
	if cur == nil {
		return false
	}
	return cur.Send(f)
}

// Results delivers inference results across every connection the session
// lives on; the channel closes when the client is closed or the fleet is
// exhausted.
func (fc *FleetClient) Results() <-chan *transport.ResultMsg { return fc.results }

// Err returns the terminal error, if any (all replicas down).
func (fc *FleetClient) Err() error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.lastErr
}

// Stats snapshots the fleet accounting: settled totals plus the live
// connection's counters. See foldLocked for why Stats is in the audited
// mutator set — it aggregates the live connection's counters into the
// snapshot's same-named buckets.
func (fc *FleetClient) Stats() Stats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	st := Stats{
		Sent:      fc.sent,
		Delivered: fc.delivered,
		Rejected:  fc.rejected,
		Shed:      fc.shed,
		Migrated:  fc.migrated,
		ConnLost:  fc.connLost,
		Failovers: fc.failovers,
		Down:      len(fc.down),
		Replica:   fc.curAddr,
	}
	if fc.cur != nil {
		st.Sent += fc.cur.Sent()
		st.Delivered += fc.cur.Delivered()
		st.Rejected += fc.cur.Rejected()
		st.Shed += fc.cur.Shed()
	}
	return st
}

// Close shuts the session down: the serving connection closes (settling
// its counters), the pump exits, and unresolved frames fold into ConnLost.
// Safe to call more than once.
func (fc *FleetClient) Close() error {
	fc.closeOnce.Do(func() {
		close(fc.done)
		fc.mu.Lock()
		cur := fc.cur
		fc.mu.Unlock()
		if cur != nil {
			_ = cur.Close()
		}
		fc.wg.Wait()
		fc.mu.Lock()
		fc.foldLocked(false)
		fc.mu.Unlock()
	})
	return nil
}
