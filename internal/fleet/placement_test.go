package fleet

import (
	"fmt"
	"testing"
)

var threeReplicas = []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("session-%04d", i)
	}
	return out
}

// TestRendezvousDeterministicAndCovering: placement is a pure function of
// (key, alive) and spreads sessions over every replica — the property that
// makes an address list the only coordination a fleet needs.
func TestRendezvousDeterministicAndCovering(t *testing.T) {
	var p Rendezvous
	seen := map[string]int{}
	for _, k := range keys(300) {
		a := p.Pick(k, threeReplicas)
		if b := p.Pick(k, threeReplicas); b != a {
			t.Fatalf("pick(%q) unstable: %q then %q", k, a, b)
		}
		seen[a]++
	}
	for _, addr := range threeReplicas {
		if seen[addr] == 0 {
			t.Errorf("replica %s never placed (distribution %v)", addr, seen)
		}
		// A grossly skewed hash would defeat sharding; allow wide slack.
		if seen[addr] < 30 {
			t.Errorf("replica %s underplaced: %d of 300 (%v)", addr, seen[addr], seen)
		}
	}
}

// TestRendezvousMinimalDisruption: removing one replica remaps only the
// sessions it owned. Sessions on survivors must not move — that is the HRW
// property failover leans on, so a replica death does not reshuffle (and
// cold-cache) the whole fleet.
func TestRendezvousMinimalDisruption(t *testing.T) {
	var p Rendezvous
	dead := threeReplicas[2]
	survivors := threeReplicas[:2]
	moved := 0
	for _, k := range keys(300) {
		before := p.Pick(k, threeReplicas)
		after := p.Pick(k, survivors)
		if before != dead {
			if after != before {
				t.Fatalf("key %q moved %s -> %s though its replica survived", k, before, after)
			}
			continue
		}
		moved++
		if after != survivors[0] && after != survivors[1] {
			t.Fatalf("key %q remapped off-fleet to %q", k, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the dead replica; test proves nothing")
	}
}

// TestLoadAware: the hash owner keeps the session within Slack, loses it
// to the least-backlogged replica beyond Slack, and the choice stays
// deterministic so independent resolvers agree.
func TestLoadAware(t *testing.T) {
	key := "session-7"
	owner := Rendezvous{}.Pick(key, threeReplicas)
	var other string
	for _, a := range threeReplicas {
		if a != owner {
			other = a
			break
		}
	}
	backlog := map[string]int{}
	probe := func(addr string) (int, bool) { b, ok := backlog[addr]; return b, ok }

	p := LoadAware{Probe: probe, Slack: 2}
	// Idle fleet: hash owner wins.
	if got := p.Pick(key, threeReplicas); got != owner {
		t.Fatalf("idle pick = %q, want owner %q", got, owner)
	}
	// Owner within slack of the minimum: stickiness holds.
	backlog[owner] = 2
	if got := p.Pick(key, threeReplicas); got != owner {
		t.Fatalf("within-slack pick = %q, want owner %q", got, owner)
	}
	// Owner beyond slack: session moves to a least-loaded replica.
	backlog[owner] = 10
	got := p.Pick(key, threeReplicas)
	if got == owner {
		t.Fatalf("overloaded owner %q kept the session", owner)
	}
	if backlog[got] != 0 {
		t.Fatalf("moved to %q with backlog %d, want an idle replica", got, backlog[got])
	}
	if again := p.Pick(key, threeReplicas); again != got {
		t.Fatalf("overloaded pick unstable: %q then %q", got, again)
	}
	// Everyone overloaded equally: owner keeps it (no pointless churn).
	for _, a := range threeReplicas {
		backlog[a] = 50
	}
	if got := p.Pick(key, threeReplicas); got != owner {
		t.Fatalf("uniform-load pick = %q, want owner %q", got, owner)
	}
	// Unprobed replicas read as idle, so a fresh replica can take load.
	backlog = map[string]int{owner: 10, other: 10}
	if got := p.Pick(key, threeReplicas); got == owner || got == other {
		t.Fatalf("pick = %q, want the unprobed (fresh) replica", got)
	}
	// Nil probe degrades to pure rendezvous.
	if got := (LoadAware{}).Pick(key, threeReplicas); got != owner {
		t.Fatalf("nil-probe pick = %q, want owner %q", got, owner)
	}
}
