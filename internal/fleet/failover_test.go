package fleet

import (
	"testing"
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/mask"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

func testFrame(i int) *transport.FrameMsg {
	m := mask.New(320, 240)
	for y := 50; y < 150; y++ {
		for x := 60; x < 180; x++ {
			m.Set(x, y)
		}
	}
	return &transport.FrameMsg{
		FrameIndex: int32(i),
		Width:      320,
		Height:     240,
		Seed:       int64(i),
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m, Box: m.BoundingBox()},
		},
		Areas: []accel.Area{
			{Box: mask.Box{MinX: 40, MinY: 40, MaxX: 200, MaxY: 170}, Label: 2, Known: true},
		},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// sendUntilAccepted retries Send until the fleet client accepts the frame,
// absorbing the refusal window while a failover is in progress.
func sendUntilAccepted(t *testing.T, fc *FleetClient, f *transport.FrameMsg) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !fc.Send(f) {
		if time.Now().After(deadline) {
			t.Fatalf("frame %d never accepted", f.FrameIndex)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetClientFailover kills the serving replica mid-session over real
// sockets and checks the full migration story: the client fails over to
// the survivor, the survivor adopts the session under its key and forces a
// keyframe (cold cache), results keep flowing, and the conservation law
// closes with every frame in exactly one bucket — no silent loss.
func TestFleetClientFailover(t *testing.T) {
	const key = "fleet-e2e-1"
	// Two live servers under a long keyframe interval so warp vs keyframe
	// behaviour is attributable to migration, not the interval.
	newSrv := func() *transport.Server {
		return transport.NewServer(segmodel.New(segmodel.MaskRCNN),
			transport.WithKeyframePolicy(segmodel.KeyframePolicy{Interval: 1000}))
	}
	srvA, srvB := newSrv(), newSrv()
	addrA, err := srvA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srvA.Close() }()
	addrB, err := srvB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srvB.Close() }()

	addrs := []string{addrA.String(), addrB.String()}
	byAddr := map[string]*transport.Server{addrs[0]: srvA, addrs[1]: srvB}
	firstAddr := Rendezvous{}.Pick(key, addrs)
	first := byAddr[firstAddr]
	var second *transport.Server
	for a, s := range byAddr {
		if a != firstAddr {
			second = s
		}
	}

	fc, err := DialFleet(Config{Addrs: addrs, SessionKey: key,
		DialAttempts: 5, DialBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fc.Close() }()
	if got := fc.Stats().Replica; got != firstAddr {
		t.Fatalf("placed on %s, want %s", got, firstAddr)
	}

	recv := 0
	recvFrame := func() {
		t.Helper()
		select {
		case _, ok := <-fc.Results():
			if !ok {
				t.Fatalf("results closed after %d frames", recv)
			}
			recv++
		case <-time.After(10 * time.Second):
			t.Fatalf("timeout waiting for result %d", recv)
		}
	}

	const before = 3
	for i := 0; i < before; i++ {
		sendUntilAccepted(t, fc, testFrame(i))
		recvFrame()
	}
	if st := first.Stats(); st.Served != before {
		t.Fatalf("first replica served %d, want %d", st.Served, before)
	}

	// Kill the serving replica. The client must notice, write it off, and
	// adopt the session on the survivor.
	_ = first.Close()
	waitFor(t, "failover to the survivor", func() bool {
		st := fc.Stats()
		return st.Failovers == 1 && st.Replica != firstAddr
	})

	const after = 3
	for i := before; i < before+after; i++ {
		sendUntilAccepted(t, fc, testFrame(i))
		recvFrame()
	}

	st2 := second.Stats()
	if st2.Served != after {
		t.Fatalf("survivor served %d, want %d", st2.Served, after)
	}
	if st2.Scheduler.ResumedSessions != 1 {
		t.Errorf("survivor ResumedSessions = %d, want 1", st2.Scheduler.ResumedSessions)
	}
	// The migrated session's cache died with the first replica: the first
	// frame on the survivor must be a forced keyframe, the rest warps.
	if st2.Scheduler.KeyframesServed != 1 || st2.Scheduler.WarpedServed != after-1 {
		t.Errorf("survivor keyframes/warped = %d/%d, want 1/%d",
			st2.Scheduler.KeyframesServed, st2.Scheduler.WarpedServed, after-1)
	}
	found := false
	for _, row := range second.SessionStats() {
		if row.Key == key {
			found = true
		}
	}
	if !found {
		t.Error("session key missing from survivor's session table")
	}

	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	fst := fc.Stats()
	if fst.Sent != before+after || fst.Delivered != before+after {
		t.Errorf("sent/delivered = %d/%d, want %d/%d", fst.Sent, fst.Delivered,
			before+after, before+after)
	}
	if !fst.Conserved() {
		t.Errorf("conservation violated: %+v", fst)
	}
	if fst.Down != 1 || fst.Failovers != 1 {
		t.Errorf("down/failovers = %d/%d, want 1/1", fst.Down, fst.Failovers)
	}
}

// TestFleetClientInFlightLossAccounted parks frames on a replica that will
// never answer them, kills it, and checks the in-flight frames land in the
// Migrated bucket — the conservation law's answer to "a replica died with
// my frames queued".
func TestFleetClientInFlightLossAccounted(t *testing.T) {
	const key = "fleet-e2e-2"
	// The doomed replica accepts frames but serves them slowly enough
	// (full wall occupancy: each inference holds the accelerator for its
	// modelled latency) that a burst is still in flight when it dies.
	slow := transport.NewServer(segmodel.New(segmodel.MaskRCNN),
		transport.WithWallOccupancy(1))
	addrSlow, err := slow.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = slow.Close() }()
	healthy := transport.NewServer(segmodel.New(segmodel.MaskRCNN))
	addrOK, err := healthy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = healthy.Close() }()

	// Steer initial placement onto the slow replica regardless of the
	// hash: the healthy one reports as loaded.
	p := LoadAware{Probe: func(addr string) (int, bool) {
		if addr == addrOK.String() {
			return 100, true
		}
		return 0, true
	}}
	fc, err := DialFleet(Config{
		Addrs:        []string{addrSlow.String(), addrOK.String()},
		SessionKey:   key,
		Policy:       p,
		DialAttempts: 5,
		DialBackoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fc.Close() }()
	if got := fc.Stats().Replica; got != addrSlow.String() {
		t.Fatalf("placed on %s, want the slow replica %s", got, addrSlow.String())
	}

	const burst = 4
	for i := 0; i < burst; i++ {
		sendUntilAccepted(t, fc, testFrame(i))
	}
	waitFor(t, "frames in flight on the doomed replica", func() bool {
		st := slow.Stats().Scheduler
		return st.Queued+st.InFlight > 0 || fc.Stats().Delivered > 0
	})
	_ = slow.Close()
	waitFor(t, "failover", func() bool { return fc.Stats().Failovers == 1 })

	// The session keeps serving on the survivor.
	sendUntilAccepted(t, fc, testFrame(burst))
	waitFor(t, "post-migration delivery", func() bool {
		return healthy.Stats().Served >= 1
	})

	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	st := fc.Stats()
	if !st.Conserved() {
		t.Errorf("conservation violated: %+v", st)
	}
	if st.Delivered+st.Migrated+st.ConnLost != burst+1 || st.Migrated == 0 {
		t.Errorf("delivered/migrated/connLost = %d/%d/%d over %d frames; want some migrated and all accounted",
			st.Delivered, st.Migrated, st.ConnLost, burst+1)
	}
}

// TestDialFleetAllDown: a fleet with no reachable replica fails cleanly.
func TestDialFleetAllDown(t *testing.T) {
	_, err := DialFleet(Config{
		Addrs:        []string{"127.0.0.1:1", "127.0.0.1:2"},
		SessionKey:   "nobody-home",
		DialTimeout:  200 * time.Millisecond,
		DialAttempts: 1,
		DialBackoff:  time.Millisecond,
	})
	if err == nil {
		t.Fatal("DialFleet succeeded against a dead fleet")
	}
}
