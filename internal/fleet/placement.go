// Package fleet is the placement layer over a set of edge replicas: it
// decides which replica serves a session, and its FleetClient keeps a
// session alive across replica failures by failing over — redialing a
// surviving replica with the session-resume handshake so the target adopts
// the session identity and rebuilds the feature cache (forced keyframe on
// the first post-migration frame).
//
// Placement is policy-driven, mirroring the scheduler's admission/dequeue
// split: the default Rendezvous policy hashes the session key over the
// replica set (stable, coordination-free — every client that shares the
// address list agrees on the owner), and LoadAware layers queue-depth
// awareness on top of it, steering new placements away from backlogged
// replicas while keeping the hash as the deterministic tie-breaker.
package fleet

import (
	"hash/fnv"
	"io"
)

// Policy picks the serving replica for a session from the alive subset of
// the fleet. alive is never empty and preserves the fleet's configured
// address order. Picks must be deterministic for a given (key, alive, load)
// observation so independent resolvers agree without coordination.
type Policy interface {
	Pick(sessionKey string, alive []string) string
}

// Rendezvous is highest-random-weight (HRW) placement: each replica scores
// hash(key, addr) and the highest score owns the session. Unlike a ring
// with virtual nodes it needs no shared state beyond the address list, and
// removing a replica remaps only the sessions that replica owned — the
// minimal-disruption property failover depends on.
type Rendezvous struct{}

// Pick returns the alive replica with the highest rendezvous score for the
// session. Score ties (vanishingly rare with a 64-bit hash) break toward
// the lexically smallest address so the choice stays total.
func (Rendezvous) Pick(sessionKey string, alive []string) string {
	best, bestScore := "", uint64(0)
	for _, addr := range alive {
		s := hrwScore(sessionKey, addr)
		if best == "" || s > bestScore || (s == bestScore && addr < best) {
			best, bestScore = addr, s
		}
	}
	return best
}

// hrwScore hashes the (session, replica) pair with FNV-1a and then
// avalanches the sum. The NUL separator keeps ("ab","c") and ("a","bc")
// from colliding by concatenation. The finalizer is load-bearing: FNV-1a's
// last step is (state XOR byte) * prime, and multiplication by a constant
// preserves additive order, so for addresses differing only in trailing
// low bits ("replica-0" vs "replica-1" vs "replica-2") the raw sums
// compare by the low bits of the shared prefix state — HRW then hands one
// replica half the keyspace instead of a third. Avalanching every bit
// restores a uniform contest.
func hrwScore(key, addr string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, addr)
	return mix64(h.Sum64())
}

// mix64 is a 64-bit xorshift-multiply avalanche (the MurmurHash3 fmix64
// constants): every input bit flips each output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// LoadAware places sessions on the least-backlogged alive replica, fed by
// the scheduler's queue-depth snapshots (edge.QueueSnapshot.Backlog via the
// Probe). The rendezvous hash stays in charge twice over: the hash-owned
// replica keeps the session as long as its backlog is within Slack of the
// minimum (placement stickiness — cache locality is worth a little queue
// imbalance), and among equally-loaded replicas the hash breaks the tie so
// concurrent resolvers still agree.
type LoadAware struct {
	// Probe reports a replica's current backlog (queued + in-flight
	// frames). ok=false means the replica could not be observed; it is
	// then treated as idle rather than excluded — an unobservable replica
	// is usually one that just started, not one that is drowning.
	Probe func(addr string) (backlog int, ok bool)
	// Slack is the backlog advantage a replica must have before it steals
	// a placement from the hash-preferred owner. Zero means any imbalance
	// moves the session.
	Slack int
}

// Pick returns the least-backlogged alive replica, keeping the
// hash-preferred owner when its backlog is within Slack of the minimum.
func (p LoadAware) Pick(sessionKey string, alive []string) string {
	owner := Rendezvous{}.Pick(sessionKey, alive)
	if p.Probe == nil {
		return owner
	}
	load := func(addr string) int {
		if b, ok := p.Probe(addr); ok {
			return b
		}
		return 0
	}
	min := load(alive[0])
	for _, addr := range alive[1:] {
		if b := load(addr); b < min {
			min = b
		}
	}
	if load(owner) <= min+p.Slack {
		return owner
	}
	// The owner is overloaded: move to the least-backlogged replica,
	// rendezvous-ordered among equals so the pick stays deterministic.
	best, bestScore := "", uint64(0)
	for _, addr := range alive {
		if load(addr) != min {
			continue
		}
		s := hrwScore(sessionKey, addr)
		if best == "" || s > bestScore || (s == bestScore && addr < best) {
			best, bestScore = addr, s
		}
	}
	return best
}
