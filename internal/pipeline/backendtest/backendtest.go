// Package backendtest is a conformance harness for pipeline.EdgeBackend
// implementations. Every backend — simulated, loopback, live TCP — must
// satisfy the same observable contract: results surface in submit order,
// every offload is either answered or counted dropped (no silent loss), and
// queue overflow follows the backend's declared drop policy. The harness is
// table-driven so each backend package registers a Target and runs the same
// subtests.
package backendtest

import (
	"testing"
	"time"

	"edgeis/internal/geom"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
)

// Target describes one backend under conformance test.
type Target struct {
	Name string
	// New builds a fresh backend already Bound to frames with queueDepth.
	New func(t *testing.T, frames []*scene.Frame, queueDepth int) pipeline.EdgeBackend
	// WallClock marks backends whose results arrive asynchronously in wall
	// time (TCP); the harness then polls Advance with short sleeps instead
	// of jumping the simulated clock once.
	WallClock bool
	// Drop declares the queue-overflow discipline. Nil skips the overflow
	// subtest — a socket-backed queue drains in wall time, so overflow
	// cannot be forced deterministically.
	Drop *pipeline.DropPolicy
}

// Frames renders a small ground-truth clip for backend tests.
func Frames(seed int64, n int) []*scene.Frame {
	w := scene.StreetScene(scene.PresetConfig{Seed: seed, ObjectCount: 2})
	cam := geom.StandardCamera(160, 120)
	return w.RenderSequence(cam, scene.InspectionRoute(scene.WalkSpeed), n)
}

// request builds a plain full-quality offload for frame i.
func request(i int) *pipeline.OffloadRequest {
	return &pipeline.OffloadRequest{
		FrameIndex:   i,
		PayloadBytes: 20_000,
		EncodeMs:     5,
		Quality:      func(x, y int) float64 { return 1 },
	}
}

// deliverer consumes scheduled results the way the engine does, including
// the delivery notification that releases loopback queue slots.
type deliverer struct {
	backend pipeline.EdgeBackend
	got     []pipeline.ScheduledResult
	// notify releases backend queue slots on delivery; the drop-policy test
	// withholds it to force overflow.
	notify bool
}

func (d *deliverer) take(rs []pipeline.ScheduledResult) {
	for _, r := range rs {
		d.got = append(d.got, r)
		if !d.notify {
			continue
		}
		if nd, ok := d.backend.(interface{ NoteDelivered() }); ok {
			nd.NoteDelivered()
		}
	}
}

// drain advances the backend until want results have surfaced. Simulated
// backends get one jump past any service time; wall-clock backends are
// polled until the results cross the socket.
func (d *deliverer) drain(t *testing.T, wall bool, want int) {
	t.Helper()
	if !wall {
		d.take(d.backend.Advance(1e12))
		return
	}
	deadline := time.Now().Add(10 * time.Second)
	now := 1e6
	for len(d.got) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out draining results: got %d, want %d", len(d.got), want)
		}
		d.take(d.backend.Advance(now))
		now += pipeline.FrameBudgetMs
		time.Sleep(2 * time.Millisecond)
	}
}

// Conformance runs the shared backend contract against one target.
func Conformance(t *testing.T, tg Target) {
	frames := Frames(41, 8)

	t.Run("delivery-order", func(t *testing.T) {
		b := tg.New(t, frames, len(frames))
		defer func() { _ = b.Close() }()
		d := &deliverer{backend: b, notify: true}
		const n = 6
		for i := 0; i < n; i++ {
			d.take(b.Submit(request(i), float64(i)*pipeline.FrameBudgetMs))
		}
		d.drain(t, tg.WallClock, n)
		if len(d.got) != n {
			t.Fatalf("results = %d, want %d", len(d.got), n)
		}
		lastAt := -1.0
		for i, r := range d.got {
			if r.Res.FrameIndex != i {
				t.Errorf("result %d is frame %d: deliveries must follow submit order", i, r.Res.FrameIndex)
			}
			if r.At < lastAt {
				t.Errorf("result %d due at %.3f before predecessor at %.3f", i, r.At, lastAt)
			}
			lastAt = r.At
			if r.Res.InferMs <= 0 {
				t.Errorf("result %d has no inference latency", i)
			}
		}
	})

	t.Run("conservation", func(t *testing.T) {
		b := tg.New(t, frames, len(frames))
		defer func() { _ = b.Close() }()
		d := &deliverer{backend: b, notify: true}
		const n = 6
		for i := 0; i < n; i++ {
			d.take(b.Submit(request(i), 0))
		}
		st := b.Stats()
		want := st.Submitted // a wall-clock queue may legitimately shed
		d.drain(t, tg.WallClock, want)
		st = b.Stats()
		// The no-silent-loss law: every offload either produced a result or
		// was counted as dropped.
		if st.Results+st.DroppedOffloads < n {
			t.Errorf("results %d + dropped %d < %d offloads: silent loss", st.Results, st.DroppedOffloads, n)
		}
		if st.Results != len(d.got) {
			t.Errorf("stats.Results = %d, surfaced %d", st.Results, len(d.got))
		}
		if st.UplinkBytes != st.Submitted*20_000 {
			t.Errorf("uplink bytes = %d, want %d", st.UplinkBytes, st.Submitted*20_000)
		}
		if st.InferMsSum <= 0 {
			t.Error("no inference time accounted")
		}
		if out := b.Outstanding(); out != 0 {
			t.Errorf("outstanding = %d after full drain", out)
		}
		if st.DiscardedResults != 0 {
			t.Errorf("discarded = %d on a well-formed run", st.DiscardedResults)
		}
	})

	if tg.Drop == nil {
		return
	}
	t.Run("drop-policy", func(t *testing.T) {
		b := tg.New(t, frames, 1)
		defer func() { _ = b.Close() }()
		d := &deliverer{backend: b, notify: false}
		const n = 4
		// All four offloads land while the edge is busy with the first, so
		// a depth-1 queue must shed two of the middle ones.
		for i := 0; i < n; i++ {
			d.take(b.Submit(request(i), 0))
		}
		d.take(b.Advance(1e12))
		st := b.Stats()
		if st.DroppedOffloads == 0 {
			t.Fatal("depth-1 queue never dropped under a 4-deep burst")
		}
		if st.Results+st.DroppedOffloads != n {
			t.Errorf("results %d + dropped %d != %d offloads", st.Results, st.DroppedOffloads, n)
		}
		survivors := make(map[int]bool)
		for _, r := range d.got {
			survivors[r.Res.FrameIndex] = true
		}
		if !survivors[0] {
			t.Error("the in-service offload (frame 0) must survive")
		}
		switch *tg.Drop {
		case pipeline.DropOldest:
			if !survivors[n-1] {
				t.Errorf("DropOldest must keep the newest offload; survivors %v", survivors)
			}
		case pipeline.DropNewest:
			if survivors[n-1] {
				t.Errorf("DropNewest must shed the newest offload; survivors %v", survivors)
			}
		}
	})
}
