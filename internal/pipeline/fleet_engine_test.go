package pipeline_test

import (
	"testing"

	"edgeis/internal/pipeline"
)

// TestEngineSingleReplicaFleetMatchesSingleEdge pins the engine-level
// compatibility bar: EdgeReplicas=1 routes through the fleet backend but
// must reproduce the default single-edge run's accounting exactly.
func TestEngineSingleReplicaFleetMatchesSingleEdge(t *testing.T) {
	s1 := &stubStrategy{payload: 10_000, queuePref: 4, computeMs: 5}
	_, base := pipeline.NewEngine(stubConfig(60), s1).Run()

	cfg := stubConfig(60)
	cfg.EdgeReplicas = 1
	s2 := &stubStrategy{payload: 10_000, queuePref: 4, computeMs: 5}
	_, fleet := pipeline.NewEngine(cfg, s2).Run()

	if base != fleet {
		t.Errorf("one-replica fleet diverges from single edge:\n base  %+v\n fleet %+v", base, fleet)
	}
	if len(s1.received) != len(s2.received) {
		t.Errorf("deliveries diverge: %d vs %d", len(s1.received), len(s2.received))
	}
}

// TestEngineFleetReplicaKillMigrates runs a full engine pass over a sharded
// edge whose serving replica dies mid-clip with a backlog: the lost frames
// must surface in RunStats.MigratedOffloads and results must keep flowing
// from the survivor after failover.
func TestEngineFleetReplicaKillMigrates(t *testing.T) {
	// A deep queue against ~400 ms inference builds a standing backlog, so
	// the kill always catches frames in flight.
	serving := pipeline.NewFleetSimBackend(pipeline.FleetSimConfig{Replicas: 3}).ServingReplica()
	cfg := stubConfig(90)
	cfg.EdgeReplicas = 3
	cfg.EdgeKills = []pipeline.EdgeKill{{Replica: serving, AtMs: 1500}}
	s := &stubStrategy{payload: 10_000, queuePref: 24, computeMs: 5}
	_, stats := pipeline.NewEngine(cfg, s).Run()

	if stats.Offloads != 90 {
		t.Fatalf("offloads = %d", stats.Offloads)
	}
	if stats.MigratedOffloads == 0 {
		t.Error("replica kill caught no backlog; MigratedOffloads stayed 0")
	}
	if stats.EdgeResultCount == 0 {
		t.Error("no results after failover")
	}
	// The engine-side conservation view: every offload the fleet accepted is
	// a result, a queue drop, or a migration loss (no silent loss).
	if last := s.received; len(last) == 0 || last[len(last)-1] < 45 {
		t.Errorf("survivor served nothing from the second half of the clip: %v", last)
	}
}
