package pipeline

// FleetSimBackend mirrors the multi-edge sharding of internal/fleet inside
// the deterministic pipeline: a fleet of M simulated edges, the engine's
// session rendezvous-placed on one of them, and a virtual-time failure
// schedule under which the serving edge can die mid-run. A kill loses the
// dead edge's waiting offloads to the MigratedOffloads bucket (accepted but
// never served — the same in-flight loss window the fleet client accounts),
// and the session re-places onto a survivor whose feature cache is cold, so
// the first post-migration frame under a keyframe policy is forced to be a
// keyframe. With one replica and no kills the backend is byte-identical to
// a plain SimBackend.

import (
	"fmt"
	"sort"
	"time"

	"edgeis/internal/fleet"
	"edgeis/internal/scene"
)

// EdgeKill schedules the death of one simulated edge replica at a virtual
// time. Kills take effect at the backend's next observation instant
// (Submit or Advance) at or after AtMs — virtual time only moves at those
// instants, so the schedule stays a pure function of the run.
type EdgeKill struct {
	Replica int
	AtMs    float64
}

// FleetSimConfig assembles a sharded simulated edge.
type FleetSimConfig struct {
	// Base configures each replica; replica r derives its link and model
	// seeds from Base.Seed so replica 0 reproduces the single-edge backend
	// exactly.
	Base SimBackendConfig
	// Replicas is the fleet size (minimum 1).
	Replicas int
	// SessionKey is the placement identity of the engine's single session;
	// empty uses a stable default. It only matters when comparing placement
	// against other resolvers, which hash the same key.
	SessionKey string
	// Kills is the failure schedule.
	Kills []EdgeKill
}

// FleetSimBackend implements EdgeBackend over a fleet of SimBackends.
type FleetSimBackend struct {
	edges []*SimBackend
	names []string
	dead  []bool
	kills []EdgeKill // sorted by AtMs; nextKill indexes the first pending
	next  int
	key   string
	// cur is the serving replica, -1 once the whole fleet is dead.
	cur int
	// extra holds fleet-level accounting no single edge owns: migrated
	// losses and submits that found no replica alive.
	extra BackendStats
}

// NewFleetSimBackend builds the sharded simulated edge.
func NewFleetSimBackend(cfg FleetSimConfig) *FleetSimBackend {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.SessionKey == "" {
		cfg.SessionKey = "pipeline-session"
	}
	b := &FleetSimBackend{
		edges: make([]*SimBackend, cfg.Replicas),
		names: make([]string, cfg.Replicas),
		dead:  make([]bool, cfg.Replicas),
		key:   cfg.SessionKey,
	}
	for r := range b.edges {
		rc := cfg.Base
		// Distinct link/model RNG streams per replica; r=0 keeps the base
		// seed so a one-replica fleet reproduces SimBackend byte-for-byte.
		rc.Seed = cfg.Base.Seed + int64(r)*7_919
		b.edges[r] = NewSimBackend(rc)
		b.names[r] = fmt.Sprintf("replica-%d", r)
	}
	b.kills = append([]EdgeKill(nil), cfg.Kills...)
	sort.SliceStable(b.kills, func(i, j int) bool { return b.kills[i].AtMs < b.kills[j].AtMs })
	b.cur = b.place()
	return b
}

// aliveNames returns the names of the replicas still serving.
func (b *FleetSimBackend) aliveNames() []string {
	out := make([]string, 0, len(b.names))
	for r, name := range b.names {
		if !b.dead[r] {
			out = append(out, name)
		}
	}
	return out
}

// place resolves the session's serving replica among survivors with the
// same rendezvous hash every fleet resolver uses; -1 when none remain.
func (b *FleetSimBackend) place() int {
	alive := b.aliveNames()
	if len(alive) == 0 {
		return -1
	}
	picked := fleet.Rendezvous{}.Pick(b.key, alive)
	for r, name := range b.names {
		if name == picked {
			return r
		}
	}
	return -1
}

// applyKills processes every scheduled kill due by now: the dead edge's
// waiting offloads migrate-lose, and if it was serving the session, the
// session re-places — onto a cold cache, so the next keyframe decision is
// forced.
func (b *FleetSimBackend) applyKills(now float64) {
	for b.next < len(b.kills) && b.kills[b.next].AtMs <= now {
		k := b.kills[b.next]
		b.next++
		if k.Replica < 0 || k.Replica >= len(b.edges) || b.dead[k.Replica] {
			continue
		}
		b.dead[k.Replica] = true
		ed := b.edges[k.Replica]
		b.extra.CountMigrated(len(ed.waiting))
		ed.waiting = nil
		if b.cur == k.Replica {
			b.cur = b.place()
		}
	}
}

// ServingReplica reports the replica currently serving the session (-1 once
// the fleet is dead) — observability for tests and reports.
func (b *FleetSimBackend) ServingReplica() int { return b.cur }

// Name implements EdgeBackend.
func (b *FleetSimBackend) Name() string { return "sim-fleet" }

// Bind implements EdgeBackend.
func (b *FleetSimBackend) Bind(frames []*scene.Frame, queueDepth int) {
	for _, ed := range b.edges {
		ed.Bind(frames, queueDepth)
	}
}

// Submit implements EdgeBackend: the offload goes to the session's serving
// replica; with the whole fleet dead it is dropped client-side.
func (b *FleetSimBackend) Submit(req *OffloadRequest, sendAt float64) []ScheduledResult {
	b.applyKills(sendAt)
	if b.cur < 0 {
		b.extra.CountDropped(1)
		return nil
	}
	return b.edges[b.cur].Submit(req, sendAt)
}

// Advance implements EdgeBackend.
func (b *FleetSimBackend) Advance(now float64) []ScheduledResult {
	b.applyKills(now)
	var out []ScheduledResult
	for r, ed := range b.edges {
		if b.dead[r] {
			continue
		}
		out = append(out, ed.Advance(now)...)
	}
	return out
}

// Outstanding implements EdgeBackend: work waiting on live replicas.
func (b *FleetSimBackend) Outstanding() int {
	n := 0
	for r, ed := range b.edges {
		if !b.dead[r] {
			n += ed.Outstanding()
		}
	}
	return n
}

// Wait implements EdgeBackend: simulated results only move on Advance.
func (b *FleetSimBackend) Wait(time.Duration) bool { return false }

// Stats implements EdgeBackend: per-replica accounting summed, plus the
// fleet-level migrated and fleet-dead-drop counters.
func (b *FleetSimBackend) Stats() BackendStats {
	agg := b.extra
	for _, ed := range b.edges {
		s := ed.Stats()
		agg.Submitted += s.Submitted
		agg.DroppedOffloads += s.DroppedOffloads
		agg.DiscardedResults += s.DiscardedResults
		agg.MigratedOffloads += s.MigratedOffloads
		agg.Results += s.Results
		agg.InferMsSum += s.InferMsSum
		agg.UplinkBytes += s.UplinkBytes
		agg.DownlinkBytes += s.DownlinkBytes
	}
	return agg
}

// Close implements EdgeBackend.
func (b *FleetSimBackend) Close() error { return nil }
