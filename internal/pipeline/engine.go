// Package pipeline is the end-to-end simulation engine: a simulated clock
// drives camera frames at 30 fps through a mobile-side strategy (edgeIS or
// a baseline), an uplink/downlink pair, and an edge inference server. The
// engine accounts for mobile compute time, encode time, transmission,
// edge queueing and inference, and scores what is actually ON SCREEN at
// each frame's display deadline against ground truth — reproducing the
// latency-accumulates-into-staleness coupling the paper describes
// ("latency longer than 33ms accumulates and eventually results in a
// delayed mask rendering on a later frame").
package pipeline

import (
	"sort"

	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
)

// FrameBudgetMs is the per-frame display budget at the 30 fps camera rate.
const FrameBudgetMs = 1000.0 / scene.FrameRate

// OffloadRequest asks the engine to ship a frame to the edge.
type OffloadRequest struct {
	FrameIndex int
	// PayloadBytes is the encoded frame size on the uplink.
	PayloadBytes int
	// EncodeMs is mobile-side encode time, charged to the frame budget.
	EncodeMs float64
	// Quality is the decoded per-pixel fidelity handed to the model.
	Quality func(x, y int) float64
	// Guidance optionally accelerates the edge model (edgeIS's CIIA).
	Guidance segmodel.Guidance
}

// EdgeResult is an inference result delivered back to the mobile.
type EdgeResult struct {
	FrameIndex int
	Detections []segmodel.Detection
	InferMs    float64
}

// FrameOutput is what the strategy produced for one processed frame.
type FrameOutput struct {
	// Masks become visible once the frame's compute finishes.
	Masks []metrics.PredictedMask
	// ComputeMs is the mobile compute charged for this frame (excluding
	// encode, which is charged via the OffloadRequest).
	ComputeMs float64
	// Offloads ship frames to the edge (usually at most one; the edgeIS
	// initializer ships the two init frames together).
	Offloads []*OffloadRequest
}

// Strategy is a complete mobile-side system under test.
type Strategy interface {
	// Name identifies the system in reports.
	Name() string
	// ProcessFrame handles a camera frame picked up at simulated time
	// nowMs, with the features extracted from it.
	ProcessFrame(f *scene.Frame, feats []feature.Feature, nowMs float64) FrameOutput
	// HandleEdgeResult delivers an edge result at simulated time nowMs.
	HandleEdgeResult(res EdgeResult, f *scene.Frame, nowMs float64)
}

// Config assembles an experiment.
type Config struct {
	World      *scene.World
	Camera     geom.Camera
	Trajectory scene.Trajectory
	Frames     int
	// CameraSpeed feeds the extractor's motion-blur model (m/s).
	CameraSpeed float64
	// Extractor configuration; zero value uses feature.DefaultConfig.
	FeatureConfig feature.Config
	// Network medium for both directions.
	Medium netsim.Medium
	// NetworkProfile, when non-nil, overrides the medium's default link
	// parameters — failure-injection tests degrade it.
	NetworkProfile *netsim.Profile
	// EdgeModel is the server-side model (typically Mask R-CNN).
	EdgeModel *segmodel.Model
	// EdgeInferScale multiplies inference latency (device.Profile.InferScale).
	EdgeInferScale float64
	// Seed drives all stochastic components.
	Seed int64
}

// FrameEval is the per-frame outcome.
type FrameEval struct {
	Index int
	// IoUs holds one entry per visible ground-truth object.
	IoUs []float64
	// LatencyMs is the mobile processing latency of the frame (or the
	// budget, for dropped frames).
	LatencyMs float64
	// Dropped marks frames the mobile could not process in time.
	Dropped bool
	// Offloaded marks frames shipped to the edge.
	Offloaded bool
	// StalenessMs is the age of the displayed output at display time.
	StalenessMs float64
}

// RunStats aggregates engine-level accounting.
type RunStats struct {
	Frames          int
	Offloads        int
	DroppedFrames   int
	UplinkBytes     int
	DownlinkBytes   int
	EdgeInferMsSum  float64
	EdgeResultCount int
	MobileBusyMsSum float64
}

// Add accumulates another run's accounting into s.
func (s *RunStats) Add(o RunStats) {
	s.Frames += o.Frames
	s.Offloads += o.Offloads
	s.DroppedFrames += o.DroppedFrames
	s.UplinkBytes += o.UplinkBytes
	s.DownlinkBytes += o.DownlinkBytes
	s.EdgeInferMsSum += o.EdgeInferMsSum
	s.EdgeResultCount += o.EdgeResultCount
	s.MobileBusyMsSum += o.MobileBusyMsSum
}

// Engine runs one strategy through one scenario.
type Engine struct {
	cfg       Config
	strategy  Strategy
	extractor *feature.Extractor
	uplink    *netsim.Link
	downlink  *netsim.Link
	frames    []*scene.Frame
}

// NewEngine prepares a run. The frames are pre-rendered so repeated runs
// (ablations over the same scenario) reuse identical ground truth.
func NewEngine(cfg Config, strategy Strategy) *Engine {
	fcfg := cfg.FeatureConfig
	if fcfg.MaxFeatures == 0 {
		fcfg = feature.DefaultConfig()
	}
	if cfg.EdgeInferScale == 0 {
		cfg.EdgeInferScale = 1
	}
	if cfg.EdgeModel == nil {
		cfg.EdgeModel = segmodel.New(segmodel.MaskRCNN)
	}
	profile := netsim.DefaultProfile(cfg.Medium)
	if cfg.NetworkProfile != nil {
		profile = *cfg.NetworkProfile
	}
	return &Engine{
		cfg:       cfg,
		strategy:  strategy,
		extractor: feature.NewExtractor(cfg.World, cfg.Camera, fcfg, cfg.Seed),
		uplink:    netsim.NewLink(profile, cfg.Seed+1),
		downlink:  netsim.NewLink(profile, cfg.Seed+2),
		frames:    cfg.World.RenderSequence(cfg.Camera, cfg.Trajectory, cfg.Frames),
	}
}

// Frames exposes the rendered ground-truth sequence.
func (e *Engine) Frames() []*scene.Frame { return e.frames }

// pendingResult is an edge result in flight.
type pendingResult struct {
	deliverAt float64
	res       EdgeResult
}

// displayedState is the strategy output visible on screen.
type displayedState struct {
	masks    []metrics.PredictedMask
	readyAt  float64
	frameIdx int
}

// waitingOffload is a request queued for the edge.
type waitingOffload struct {
	arrival float64
	req     *OffloadRequest
}

// QueuePreference lets a strategy choose the edge queue discipline. The
// default depth of 1 is latest-wins: a newer frame replaces an older one
// still waiting, the standard behaviour of real-time-aware offloading
// systems where a stale frame is worthless by the time the server frees
// up. A dumb streaming pipeline (the best-effort baseline) buffers deeply
// instead, serving frames long after they stopped mattering.
type QueuePreference interface {
	PreferredQueueDepth() int
}

// Run executes the scenario and returns per-frame evaluations plus stats.
func (e *Engine) Run() ([]FrameEval, RunStats) {
	queueDepth := 1
	if qp, ok := e.strategy.(QueuePreference); ok && qp.PreferredQueueDepth() > 0 {
		queueDepth = qp.PreferredQueueDepth()
	}
	var (
		evals           = make([]FrameEval, 0, len(e.frames))
		stats           RunStats
		pending         []pendingResult
		mobileBusyUntil float64
		edgeFreeAt      float64
		waiting         []waitingOffload
		display         displayedState
		displayValid    bool
	)
	stats.Frames = len(e.frames)

	// startInference runs the model for a request whose service begins at
	// startAt, scheduling the result delivery.
	startInference := func(req *OffloadRequest, startAt float64) {
		in := e.modelInput(req)
		res := e.cfg.EdgeModel.Run(in, req.Guidance)
		inferMs := res.TotalMs() * e.cfg.EdgeInferScale
		edgeFreeAt = startAt + inferMs
		stats.EdgeInferMsSum += inferMs
		stats.EdgeResultCount++

		resultBytes := 256
		for _, d := range res.Detections {
			if d.Mask != nil {
				resultBytes += 16 + d.Mask.BoundingBox().Area()/64
			} else {
				resultBytes += 32
			}
		}
		stats.DownlinkBytes += resultBytes
		downMs := e.downlink.TransferMs(edgeFreeAt, resultBytes)
		pending = append(pending, pendingResult{
			deliverAt: edgeFreeAt + downMs,
			res: EdgeResult{
				FrameIndex: req.FrameIndex,
				Detections: res.Detections,
				InferMs:    inferMs,
			},
		})
	}

	// advanceEdge services waiting requests (FIFO) while the edge is free.
	advanceEdge := func(now float64) {
		for len(waiting) > 0 && edgeFreeAt <= now {
			item := waiting[0]
			start := edgeFreeAt
			if item.arrival > start {
				start = item.arrival
			}
			if start > now {
				return
			}
			waiting = waiting[1:]
			startInference(item.req, start)
		}
	}

	// submitOffload models the uplink and enqueues at the edge.
	submitOffload := func(req *OffloadRequest, sendAt float64) {
		stats.UplinkBytes += req.PayloadBytes
		upMs := e.uplink.TransferMs(sendAt, req.PayloadBytes)
		arrive := sendAt + upMs
		advanceEdge(arrive)
		if edgeFreeAt <= arrive && len(waiting) == 0 {
			startInference(req, arrive)
			return
		}
		waiting = append(waiting, waitingOffload{arrival: arrive, req: req})
		if len(waiting) > queueDepth {
			// Queue overflow drops the oldest waiting frame.
			waiting = waiting[1:]
		}
	}

	deliverDue := func(now float64) {
		sort.Slice(pending, func(i, j int) bool { return pending[i].deliverAt < pending[j].deliverAt })
		for len(pending) > 0 && pending[0].deliverAt <= now {
			p := pending[0]
			pending = pending[1:]
			e.strategy.HandleEdgeResult(p.res, e.frames[p.res.FrameIndex], p.deliverAt)
		}
	}

	for i, f := range e.frames {
		arrival := float64(i) * FrameBudgetMs
		advanceEdge(arrival)
		deliverDue(arrival)

		ev := FrameEval{Index: i, LatencyMs: FrameBudgetMs}
		if mobileBusyUntil <= arrival {
			feats := e.extractor.Extract(f, e.cfg.CameraSpeed)
			out := e.strategy.ProcessFrame(f, feats, arrival)
			compute := out.ComputeMs
			for _, off := range out.Offloads {
				compute += off.EncodeMs
			}
			mobileBusyUntil = arrival + compute
			stats.MobileBusyMsSum += compute
			ev.LatencyMs = compute

			if len(out.Masks) > 0 || !displayValid {
				display = displayedState{
					masks:    out.Masks,
					readyAt:  mobileBusyUntil,
					frameIdx: i,
				}
				displayValid = true
			}

			for _, off := range out.Offloads {
				stats.Offloads++
				ev.Offloaded = true
				submitOffload(off, mobileBusyUntil)
			}
		} else {
			ev.Dropped = true
			stats.DroppedFrames++
		}

		// Score what is on screen at the display deadline.
		deadline := arrival + FrameBudgetMs
		advanceEdge(deadline)
		deliverDue(deadline)
		var shown []metrics.PredictedMask
		if displayValid && display.readyAt <= deadline {
			shown = display.masks
			ev.StalenessMs = deadline - float64(display.frameIdx)*FrameBudgetMs
		} else if displayValid {
			// The fresh output missed the deadline; the previous screen
			// content persists. Conservatively charge full staleness.
			ev.StalenessMs = deadline
		}
		truths := truthsOf(f)
		ev.IoUs = metrics.MatchFrame(shown, truths)
		evals = append(evals, ev)
	}
	return evals, stats
}

// modelInput converts the offloaded frame's ground truth plus the encode
// quality map into the simulated model's input.
func (e *Engine) modelInput(req *OffloadRequest) segmodel.Input {
	f := e.frames[req.FrameIndex]
	objs := make([]segmodel.ObjectTruth, 0, len(f.Objects))
	for _, gt := range f.Objects {
		objs = append(objs, segmodel.ObjectTruth{
			ObjectID: gt.ObjectID,
			Label:    int(gt.Class),
			Visible:  gt.Visible,
			Box:      gt.Box,
		})
	}
	return segmodel.Input{
		Width:   e.cfg.Camera.Width,
		Height:  e.cfg.Camera.Height,
		Objects: objs,
		Quality: req.Quality,
		Seed:    e.cfg.Seed*1_000_003 + int64(req.FrameIndex),
	}
}

// truthsOf converts a frame's ground truth for scoring.
func truthsOf(f *scene.Frame) []metrics.TruthMask {
	out := make([]metrics.TruthMask, 0, len(f.Objects))
	for _, gt := range f.Objects {
		out = append(out, metrics.TruthMask{
			ObjectID: gt.ObjectID,
			Label:    int(gt.Class),
			Mask:     gt.Visible,
		})
	}
	return out
}

// Evaluate folds per-frame evals into an accumulator.
func Evaluate(name string, evals []FrameEval) *metrics.Accumulator {
	return EvaluateFrom(name, evals, 0)
}

// EvaluateFrom skips the first warmup frames — the VO initialization window
// every system variant shares. The paper's clips run minutes, so their init
// transient is negligible; on short simulated clips it would dominate.
func EvaluateFrom(name string, evals []FrameEval, warmup int) *metrics.Accumulator {
	acc := metrics.NewAccumulator(name)
	for _, ev := range evals {
		if ev.Index < warmup {
			continue
		}
		acc.AddFrame(ev.IoUs, ev.LatencyMs)
	}
	return acc
}
