// Package pipeline is the end-to-end engine: a simulated clock drives camera
// frames at 30 fps through a mobile-side strategy (edgeIS or a baseline) and
// an EdgeBackend serving inference — the simulated model+netsim backend, an
// in-process loopback, or a real TCP edge server. The engine accounts for
// mobile compute time, encode time, transmission, edge queueing and
// inference, and scores what is actually ON SCREEN at each frame's display
// deadline against ground truth — reproducing the
// latency-accumulates-into-staleness coupling the paper describes
// ("latency longer than 33ms accumulates and eventually results in a
// delayed mask rendering on a later frame").
//
// Run is an event-queue scheduler: frame arrivals, display deadlines and
// edge-result deliveries are events on a min-heap, popped in (time, kind)
// order. Equal-time ties resolve as result < deadline < arrival, which is
// exactly the order the legacy frame loop processed them in.
package pipeline

import (
	"time"

	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
)

// FrameBudgetMs is the per-frame display budget at the 30 fps camera rate.
const FrameBudgetMs = 1000.0 / scene.FrameRate

// OffloadRequest asks the engine to ship a frame to the edge.
type OffloadRequest struct {
	FrameIndex int
	// PayloadBytes is the encoded frame size on the uplink.
	PayloadBytes int
	// EncodeMs is mobile-side encode time, charged to the frame budget.
	EncodeMs float64
	// Quality is the decoded per-pixel fidelity handed to the model.
	Quality func(x, y int) float64
	// Guidance optionally accelerates the edge model (edgeIS's CIIA).
	Guidance segmodel.Guidance
}

// EdgeResult is an inference result delivered back to the mobile.
type EdgeResult struct {
	FrameIndex int
	Detections []segmodel.Detection
	InferMs    float64
}

// FrameOutput is what the strategy produced for one processed frame.
type FrameOutput struct {
	// Masks become visible once the frame's compute finishes.
	Masks []metrics.PredictedMask
	// ComputeMs is the mobile compute charged for this frame (excluding
	// encode, which is charged via the OffloadRequest).
	ComputeMs float64
	// Offloads ship frames to the edge (usually at most one; the edgeIS
	// initializer ships the two init frames together).
	Offloads []*OffloadRequest
}

// Strategy is a complete mobile-side system under test.
type Strategy interface {
	// Name identifies the system in reports.
	Name() string
	// ProcessFrame handles a camera frame picked up at simulated time
	// nowMs, with the features extracted from it.
	ProcessFrame(f *scene.Frame, feats []feature.Feature, nowMs float64) FrameOutput
	// HandleEdgeResult delivers an edge result at simulated time nowMs.
	HandleEdgeResult(res EdgeResult, f *scene.Frame, nowMs float64)
}

// Config assembles an experiment.
type Config struct {
	World      *scene.World
	Camera     geom.Camera
	Trajectory scene.Trajectory
	Frames     int
	// CameraSpeed feeds the extractor's motion-blur model (m/s).
	CameraSpeed float64
	// Extractor configuration; zero value uses feature.DefaultConfig.
	FeatureConfig feature.Config
	// Network medium for both directions (simulated backend only).
	Medium netsim.Medium
	// NetworkProfile, when non-nil, overrides the medium's default link
	// parameters — failure-injection tests degrade it.
	NetworkProfile *netsim.Profile
	// EdgeModel is the server-side model (typically Mask R-CNN).
	EdgeModel *segmodel.Model
	// EdgeInferScale multiplies inference latency (device.Profile.InferScale).
	EdgeInferScale float64
	// EdgeAccelerators sizes the simulated edge's inference pool (simulated
	// backend only); zero or one keeps the deterministic single accelerator.
	EdgeAccelerators int
	// EdgeMaxBatch bounds the simulated edge's cross-queue batch former
	// (simulated backend only); zero or one keeps the deterministic
	// one-job-per-launch edge.
	EdgeMaxBatch int
	// EdgeKeyframe enables the simulated edge's temporal-redundancy
	// skip-compute (simulated backend only): non-keyframes warp the cached
	// backbone pyramid at partial cost. The zero policy keeps every frame a
	// keyframe and the run byte-identical to a cache-free build.
	EdgeKeyframe segmodel.KeyframePolicy
	// EdgeReplicas shards the default simulated edge into a fleet of
	// replicas (FleetSimBackend): the run's session is rendezvous-placed on
	// one of them and fails over if it dies. Zero or one keeps the
	// single-edge backend, byte-identical to the pre-fleet engine.
	EdgeReplicas int
	// EdgeKills schedules replica failures for the sharded edge (ignored
	// when EdgeReplicas <= 1).
	EdgeKills []EdgeKill
	// Seed drives all stochastic components.
	Seed int64
	// Backend overrides the edge serving the run. Nil builds the default
	// simulated backend from Medium/NetworkProfile/EdgeModel/Seed; a
	// LoopbackBackend or a live TCP adapter plugs in here.
	Backend EdgeBackend
	// OnFrame, when non-nil, observes each frame's eval as its display
	// deadline resolves — progress reporting and wall-clock pacing hook.
	OnFrame func(ev FrameEval)
}

// FrameEval is the per-frame outcome.
type FrameEval struct {
	Index int
	// IoUs holds one entry per visible ground-truth object.
	IoUs []float64
	// LatencyMs is the mobile processing latency of the frame (or the
	// budget, for dropped frames).
	LatencyMs float64
	// Dropped marks frames the mobile could not process in time.
	Dropped bool
	// Offloaded marks frames shipped to the edge.
	Offloaded bool
	// StalenessMs is the age of the displayed output at display time.
	StalenessMs float64
}

// RunStats aggregates engine-level accounting.
type RunStats struct {
	Frames          int
	Offloads        int
	DroppedFrames   int
	UplinkBytes     int
	DownlinkBytes   int
	EdgeInferMsSum  float64
	EdgeResultCount int
	MobileBusyMsSum float64
	// DroppedOffloads counts offloads lost to edge/uplink queue overflow —
	// the silent `waiting = waiting[1:]` loss of the legacy loop, now
	// accounted identically by simulated and live backends.
	DroppedOffloads int
	// DiscardedResults counts edge results thrown away because their frame
	// index was out of range for the clip.
	DiscardedResults int
	// MigratedOffloads counts offloads lost in flight to a replica kill when
	// the run is served by a sharded edge fleet (EdgeReplicas > 1); zero on
	// single-edge runs.
	MigratedOffloads int
}

// Add accumulates another run's accounting into s.
func (s *RunStats) Add(o RunStats) {
	s.Frames += o.Frames
	s.Offloads += o.Offloads
	s.DroppedFrames += o.DroppedFrames
	s.UplinkBytes += o.UplinkBytes
	s.DownlinkBytes += o.DownlinkBytes
	s.EdgeInferMsSum += o.EdgeInferMsSum
	s.EdgeResultCount += o.EdgeResultCount
	s.MobileBusyMsSum += o.MobileBusyMsSum
	s.DroppedOffloads += o.DroppedOffloads
	s.DiscardedResults += o.DiscardedResults
	s.MigratedOffloads += o.MigratedOffloads
}

// Engine runs one strategy through one scenario.
type Engine struct {
	cfg       Config
	strategy  Strategy
	extractor *feature.Extractor
	frames    []*scene.Frame
	backend   EdgeBackend
}

// NewEngine prepares a run. The frames are pre-rendered so repeated runs
// (ablations over the same scenario) reuse identical ground truth.
func NewEngine(cfg Config, strategy Strategy) *Engine {
	fcfg := cfg.FeatureConfig
	if fcfg.MaxFeatures == 0 {
		fcfg = feature.DefaultConfig()
	}
	if cfg.EdgeInferScale == 0 {
		cfg.EdgeInferScale = 1
	}
	if cfg.EdgeModel == nil {
		cfg.EdgeModel = segmodel.New(segmodel.MaskRCNN)
	}
	backend := cfg.Backend
	if backend == nil {
		profile := netsim.DefaultProfile(cfg.Medium)
		if cfg.NetworkProfile != nil {
			profile = *cfg.NetworkProfile
		}
		simCfg := SimBackendConfig{
			Model:        cfg.EdgeModel,
			InferScale:   cfg.EdgeInferScale,
			Profile:      profile,
			Seed:         cfg.Seed,
			Accelerators: cfg.EdgeAccelerators,
			MaxBatch:     cfg.EdgeMaxBatch,
			Keyframe:     cfg.EdgeKeyframe,
		}
		if cfg.EdgeReplicas > 1 {
			backend = NewFleetSimBackend(FleetSimConfig{
				Base:     simCfg,
				Replicas: cfg.EdgeReplicas,
				Kills:    cfg.EdgeKills,
			})
		} else {
			backend = NewSimBackend(simCfg)
		}
	}
	e := &Engine{
		cfg:       cfg,
		strategy:  strategy,
		extractor: feature.NewExtractor(cfg.World, cfg.Camera, fcfg, cfg.Seed),
		frames:    cfg.World.RenderSequence(cfg.Camera, cfg.Trajectory, cfg.Frames),
		backend:   backend,
	}
	queueDepth := 0
	if qp, ok := strategy.(QueuePreference); ok && qp.PreferredQueueDepth() > 0 {
		queueDepth = qp.PreferredQueueDepth()
	}
	backend.Bind(e.frames, queueDepth)
	return e
}

// Frames exposes the rendered ground-truth sequence.
func (e *Engine) Frames() []*scene.Frame { return e.frames }

// Backend exposes the edge backend serving the run.
func (e *Engine) Backend() EdgeBackend { return e.backend }

// displayedState is the strategy output visible on screen.
type displayedState struct {
	masks    []metrics.PredictedMask
	readyAt  float64
	frameIdx int
}

// QueuePreference lets a strategy choose the edge queue discipline. The
// default depth of 1 is latest-wins: a newer frame replaces an older one
// still waiting, the standard behaviour of real-time-aware offloading
// systems where a stale frame is worthless by the time the server frees
// up. A dumb streaming pipeline (the best-effort baseline) buffers deeply
// instead, serving frames long after they stopped mattering.
type QueuePreference interface {
	PreferredQueueDepth() int
}

// ResultAwaiter lets a strategy signal that it cannot make progress until an
// in-flight edge result lands (the edgeIS VO initialization window). Against
// a live backend the engine then blocks briefly in wall-clock time for the
// result; simulated backends ignore it — their results only move with the
// simulated clock.
type ResultAwaiter interface {
	AwaitingEdgeResult() bool
}

// resultWaitBudget bounds the wall-clock wait for an awaited live result to
// one frame budget, matching the legacy live driver's blocking drain.
const resultWaitBudget = 33 * time.Millisecond

// Run executes the scenario and returns per-frame evaluations plus stats.
//
// The scheduler pops events in simulated-time order. At every frame boundary
// it first advances the backend and delivers results due at or before that
// instant (in delivery order, with the delivery timestamp as the strategy's
// nowMs), then performs the boundary's own work — byte-identical to the
// legacy loop's advance/deliver/act sequence.
func (e *Engine) Run() ([]FrameEval, RunStats) {
	var (
		evals           = make([]FrameEval, 0, len(e.frames))
		stats           RunStats
		mobileBusyUntil float64
		display         displayedState
		displayValid    bool
	)
	stats.Frames = len(e.frames)
	// Results due after the final display deadline are never observed.
	horizon := float64(len(e.frames)-1)*FrameBudgetMs + FrameBudgetMs
	awaiter, hasAwaiter := e.strategy.(ResultAwaiter)

	q := &eventQueue{}
	pend := make([]FrameEval, len(e.frames))
	for i := range e.frames {
		arrival := float64(i) * FrameBudgetMs
		q.push(event{at: arrival, kind: evFrameArrival, frame: i})
		// The deadline event is KEYED at the next frame's arrival instant so
		// the (time, kind) order is exact — float64(i)*B + B can differ from
		// float64(i+1)*B by one ulp, which would invert the tie-break. The
		// handler recomputes the legacy arrival+budget value for semantics.
		q.push(event{at: float64(i+1) * FrameBudgetMs, kind: evDisplayDeadline, frame: i})
		pend[i] = FrameEval{Index: i, LatencyMs: FrameBudgetMs}
	}

	deliver := func(ev event) {
		e.strategy.HandleEdgeResult(ev.res, e.frames[ev.res.FrameIndex], ev.at)
		if obs, ok := e.backend.(resultDeliveryObserver); ok {
			obs.NoteDelivered()
		}
	}
	schedule := func(rs []ScheduledResult) {
		for _, r := range rs {
			q.push(event{at: r.At, kind: evEdgeResult, res: r.Res})
		}
	}
	// drainDue hands over every result due at or before now — results the
	// backend scheduled during the current event must land before the
	// event's action. A due result can sit behind a non-result event on the
	// heap (its delivery time may exceed the next frame's arrival key by one
	// ulp), so the drain pops past such events and restores them, keeping
	// their relative order.
	var stash []event
	drainDue := func(now float64) {
		stash = stash[:0]
		for q.len() > 0 && q.peek().at <= now {
			top := q.pop()
			if top.kind == evEdgeResult {
				deliver(top)
			} else {
				stash = append(stash, top)
			}
		}
		for _, s := range stash {
			q.push(s)
		}
	}

	for q.len() > 0 {
		ev := q.pop()
		switch ev.kind {
		case evEdgeResult:
			if ev.at > horizon {
				continue
			}
			deliver(ev)

		case evFrameArrival:
			schedule(e.backend.Advance(ev.at))
			drainDue(ev.at)
			if hasAwaiter && awaiter.AwaitingEdgeResult() && e.backend.Outstanding() > 0 {
				// A live backend can block for the awaited result; the sim
				// backend declines and the simulated clock stays authoritative.
				if e.backend.Wait(resultWaitBudget) {
					schedule(e.backend.Advance(ev.at))
					drainDue(ev.at)
				}
			}

			arrival := ev.at
			f := e.frames[ev.frame]
			fe := &pend[ev.frame]
			if mobileBusyUntil <= arrival {
				feats := e.extractor.Extract(f, e.cfg.CameraSpeed)
				out := e.strategy.ProcessFrame(f, feats, arrival)
				compute := out.ComputeMs
				for _, off := range out.Offloads {
					compute += off.EncodeMs
				}
				mobileBusyUntil = arrival + compute
				stats.MobileBusyMsSum += compute
				fe.LatencyMs = compute

				if len(out.Masks) > 0 || !displayValid {
					display = displayedState{
						masks:    out.Masks,
						readyAt:  mobileBusyUntil,
						frameIdx: ev.frame,
					}
					displayValid = true
				}

				for _, off := range out.Offloads {
					stats.Offloads++
					fe.Offloaded = true
					schedule(e.backend.Submit(off, mobileBusyUntil))
				}
			} else {
				fe.Dropped = true
				stats.DroppedFrames++
			}

		case evDisplayDeadline:
			// Score what is on screen at the display deadline.
			deadline := float64(ev.frame)*FrameBudgetMs + FrameBudgetMs
			schedule(e.backend.Advance(deadline))
			drainDue(deadline)
			fe := &pend[ev.frame]
			var shown []metrics.PredictedMask
			if displayValid && display.readyAt <= deadline {
				shown = display.masks
				fe.StalenessMs = deadline - float64(display.frameIdx)*FrameBudgetMs
			} else if displayValid {
				// The fresh output missed the deadline; the previous screen
				// content persists. Conservatively charge full staleness.
				fe.StalenessMs = deadline
			}
			fe.IoUs = metrics.MatchFrame(shown, truthsOf(e.frames[ev.frame]))
			evals = append(evals, *fe)
			if e.cfg.OnFrame != nil {
				e.cfg.OnFrame(*fe)
			}
		}
	}

	bs := e.backend.Stats()
	stats.UplinkBytes = bs.UplinkBytes
	stats.DownlinkBytes = bs.DownlinkBytes
	stats.EdgeInferMsSum = bs.InferMsSum
	stats.EdgeResultCount = bs.Results
	stats.DroppedOffloads = bs.DroppedOffloads
	stats.DiscardedResults = bs.DiscardedResults
	stats.MigratedOffloads = bs.MigratedOffloads
	return evals, stats
}

// truthsOf converts a frame's ground truth for scoring.
func truthsOf(f *scene.Frame) []metrics.TruthMask {
	out := make([]metrics.TruthMask, 0, len(f.Objects))
	for _, gt := range f.Objects {
		out = append(out, metrics.TruthMask{
			ObjectID: gt.ObjectID,
			Label:    int(gt.Class),
			Mask:     gt.Visible,
		})
	}
	return out
}

// Evaluate folds per-frame evals into an accumulator.
func Evaluate(name string, evals []FrameEval) *metrics.Accumulator {
	return EvaluateFrom(name, evals, 0)
}

// EvaluateFrom skips the first warmup frames — the VO initialization window
// every system variant shares. The paper's clips run minutes, so their init
// transient is negligible; on short simulated clips it would dominate.
func EvaluateFrom(name string, evals []FrameEval, warmup int) *metrics.Accumulator {
	acc := metrics.NewAccumulator(name)
	for _, ev := range evals {
		if ev.Index < warmup {
			continue
		}
		acc.AddFrame(ev.IoUs, ev.LatencyMs)
	}
	return acc
}
