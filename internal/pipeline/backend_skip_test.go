package pipeline_test

import (
	"testing"

	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/pipeline/backendtest"
	"edgeis/internal/segmodel"
)

// skipRequest builds a plain full-quality offload for frame i.
func skipRequest(i int) *pipeline.OffloadRequest {
	return &pipeline.OffloadRequest{
		FrameIndex:   i,
		PayloadBytes: 20_000,
		Quality:      func(x, y int) float64 { return 1 },
	}
}

// TestSimBackendSkipComputeReducesInferCost pins the simulated skip-compute
// path: under an enabled keyframe policy a steady stream answers every
// offload but charges materially less accelerator time than the all-keyframe
// edge, and an explicitly disabled policy (Interval 1) reproduces the
// zero-config schedule byte-for-byte.
func TestSimBackendSkipComputeReducesInferCost(t *testing.T) {
	frames := backendtest.Frames(7, 10)
	run := func(p segmodel.KeyframePolicy) (deliveries []float64, inferSum float64, results int) {
		// YOLACT's cost is backbone-dominated, so the skip path's saving is
		// visible even on small unguided frames (vanilla Mask R-CNN spends
		// most of its time on RoIs, which warping does not touch).
		b := pipeline.NewSimBackend(pipeline.SimBackendConfig{
			Model:    segmodel.New(segmodel.YOLACT),
			Profile:  netsim.DefaultProfile(netsim.WiFi5),
			Seed:     7,
			Keyframe: p,
		})
		b.Bind(frames, 4)
		var out []pipeline.ScheduledResult
		// Wide spacing: each offload is served before the next is sent, so
		// every launch is a solo and the cost comparison is pure.
		for i := 0; i < len(frames); i++ {
			out = append(out, b.Submit(skipRequest(i), float64(i)*500)...)
		}
		out = append(out, b.Advance(1e12)...)
		for _, r := range out {
			deliveries = append(deliveries, r.At)
		}
		st := b.Stats()
		if st.DroppedOffloads != 0 {
			t.Fatalf("unexpected drops %d", st.DroppedOffloads)
		}
		return deliveries, st.InferMsSum, st.Results
	}

	zeroD, zeroSum, zeroN := run(segmodel.KeyframePolicy{})
	offD, offSum, _ := run(segmodel.KeyframePolicy{Interval: 1})
	skipD, skipSum, skipN := run(segmodel.KeyframePolicy{Interval: 4})

	if len(offD) != len(zeroD) || offSum != zeroSum {
		t.Fatalf("Interval 1 diverged from zero policy: sum %.6f vs %.6f", offSum, zeroSum)
	}
	for i := range zeroD {
		if offD[i] != zeroD[i] {
			t.Errorf("delivery %d moved under Interval 1: %.6f vs %.6f", i, offD[i], zeroD[i])
		}
	}
	if skipN != zeroN {
		t.Fatalf("skip-compute lost results: %d vs %d", skipN, zeroN)
	}
	// 10 frames at Interval 4 serve 3 keyframes and 7 warps; the warp path
	// drops the backbone term, so the accelerator-time saving is large.
	if skipSum >= zeroSum*0.85 {
		t.Errorf("skip-compute saved too little accelerator time: %.1f ms vs %.1f ms all-keyframe",
			skipSum, zeroSum)
	}
	// Every delivery must arrive no later than its all-keyframe counterpart:
	// cheaper inference can only pull completions earlier.
	for i := range zeroD {
		if skipD[i] > zeroD[i] {
			t.Errorf("delivery %d later under skip-compute: %.3f vs %.3f", i, skipD[i], zeroD[i])
		}
	}
}

// TestSimBackendKeyframeBatchesNeverMix pins the batch former's keyframe
// class: a burst whose decisions alternate keyframe and warp must launch the
// two cost shapes separately, visible as distinct amortized launch times.
func TestSimBackendKeyframeBatchesNeverMix(t *testing.T) {
	frames := backendtest.Frames(9, 6)
	b := pipeline.NewSimBackend(pipeline.SimBackendConfig{
		Model:    segmodel.New(segmodel.YOLACT),
		Profile:  netsim.DefaultProfile(netsim.WiFi5),
		Seed:     9,
		MaxBatch: 8,
		Keyframe: segmodel.KeyframePolicy{Interval: 3},
	})
	b.Bind(frames, 8)
	var out []pipeline.ScheduledResult
	// Burst at t=0: frame 0 starts immediately (cold keyframe); frames 1-4
	// backlog. Decisions in submit order: 1 and 2 warp, 3 hits the interval
	// (keyframe), 4 warps again.
	for i := 0; i < 5; i++ {
		out = append(out, b.Submit(skipRequest(i), 0)...)
	}
	out = append(out, b.Advance(1e12)...)
	if st := b.Stats(); st.DroppedOffloads != 0 || st.Results != 5 {
		t.Fatalf("drops %d results %d, want 0 and 5", st.DroppedOffloads, st.Results)
	}
	infer := make(map[int]float64, 5)
	for _, r := range out {
		infer[r.Res.FrameIndex] = r.Res.InferMs
	}
	// Frames 1, 2 and 4 share one warped launch; keyframe 3 launches alone.
	if infer[1] != infer[2] || infer[1] != infer[4] {
		t.Errorf("warped frames split across launches: %.3f %.3f %.3f", infer[1], infer[2], infer[4])
	}
	if infer[3] == infer[1] {
		t.Errorf("keyframe co-batched with warped frames at %.3f ms", infer[3])
	}
	// The solo warp launch of frame 0's successor class must beat a solo
	// keyframe: a single warped member costs far less than a full backbone.
	if infer[0] <= infer[1]/3 {
		t.Errorf("cold keyframe %.3f ms implausibly cheap next to warp batch %.3f ms", infer[0], infer[1])
	}
}

// TestEngineEdgeKeyframeSkipCompute runs the full edgeIS system with the
// simulated edge's feature cache enabled: the run must spend less edge
// accelerator time than the all-keyframe baseline while holding accuracy
// within the documented warp penalty.
func TestEngineEdgeKeyframeSkipCompute(t *testing.T) {
	cfg := testScenario(17, 180)
	accFull, statsFull := runSystem(t, cfg, newEdgeIS(cfg))

	cfgSkip := testScenario(17, 180)
	cfgSkip.EdgeKeyframe = segmodel.KeyframePolicy{Interval: 4}
	accSkip, statsSkip := runSystem(t, cfgSkip, newEdgeIS(cfgSkip))

	if statsSkip.EdgeResultCount == 0 {
		t.Fatal("skip-compute run produced no edge results")
	}
	if statsSkip.EdgeInferMsSum >= statsFull.EdgeInferMsSum {
		t.Errorf("skip-compute did not reduce edge accelerator time: %.1f ms vs %.1f ms",
			statsSkip.EdgeInferMsSum, statsFull.EdgeInferMsSum)
	}
	// The bounded warp penalty must not cost more than a few IoU points.
	if accSkip.MeanIoU() < accFull.MeanIoU()-0.05 {
		t.Errorf("skip-compute IoU %.3f fell more than 0.05 below all-keyframe %.3f",
			accSkip.MeanIoU(), accFull.MeanIoU())
	}
}
