package pipeline_test

import (
	"testing"

	"edgeis/internal/baseline"
	"edgeis/internal/core"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
)

// testScenario builds a standard static street scenario.
func testScenario(seed int64, frames int) pipeline.Config {
	w := scene.StreetScene(scene.PresetConfig{Seed: seed, ObjectCount: 3})
	cam := geom.StandardCamera(320, 240)
	return pipeline.Config{
		World:       w,
		Camera:      cam,
		Trajectory:  scene.InspectionRoute(scene.WalkSpeed),
		Frames:      frames,
		CameraSpeed: scene.WalkSpeed,
		Medium:      netsim.WiFi5,
		Seed:        seed,
	}
}

// warmupFrames excludes the VO initialization window shared by all
// variants (see EvaluateFrom).
const warmupFrames = 60

func runSystem(t *testing.T, cfg pipeline.Config, s pipeline.Strategy) (*metrics.Accumulator, pipeline.RunStats) {
	t.Helper()
	engine := pipeline.NewEngine(cfg, s)
	evals, stats := engine.Run()
	return pipeline.EvaluateFrom(s.Name(), evals, warmupFrames), stats
}

func newEdgeIS(cfg pipeline.Config) *core.System {
	return core.NewSystem(core.Config{Camera: cfg.Camera, Device: device.IPhone11, Seed: cfg.Seed})
}

func TestEdgeISRunsRealTime(t *testing.T) {
	cfg := testScenario(3, 210)
	acc, stats := runSystem(t, cfg, newEdgeIS(cfg))
	if acc.Samples() == 0 {
		t.Fatal("no object samples")
	}
	// Real-time: mean mobile latency within the 33ms budget, few drops.
	if acc.MeanLatencyMs() > pipeline.FrameBudgetMs+5 {
		t.Errorf("mean latency %.1f ms exceeds budget", acc.MeanLatencyMs())
	}
	if float64(stats.DroppedFrames)/float64(stats.Frames) > 0.25 {
		t.Errorf("dropped %d/%d frames", stats.DroppedFrames, stats.Frames)
	}
	if stats.Offloads == 0 {
		t.Error("edgeIS never offloaded")
	}
	// Headline accuracy after the shared init window.
	if acc.MeanIoU() < 0.65 {
		t.Errorf("mean IoU %.3f too low", acc.MeanIoU())
	}
}

func TestSystemOrderingFig9(t *testing.T) {
	// The core comparative claim (Fig. 9): edgeIS < EAAR < EdgeDuet <
	// best-effort < mobile-only on false rate, and edgeIS highest IoU.
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := testScenario(11, 240)

	systems := []pipeline.Strategy{
		newEdgeIS(cfg),
		baseline.NewEAAR(cfg.Camera, device.IPhone11),
		baseline.NewEdgeDuet(cfg.Camera, device.IPhone11),
		baseline.NewBestEffort(cfg.Camera, device.IPhone11),
		baseline.NewMobileOnly(cfg.Camera, device.IPhone11, cfg.Seed),
	}
	accs := make([]*metrics.Accumulator, 0, len(systems))
	for _, s := range systems {
		acc, _ := runSystem(t, cfg, s)
		accs = append(accs, acc)
	}
	t.Logf("\n%s", metrics.Table("Fig.9-style comparison", accs))

	edgeIS, eaar, duet, best, mobile := accs[0], accs[1], accs[2], accs[3], accs[4]
	fr := func(a *metrics.Accumulator) float64 { return a.FalseRate(metrics.StrictThreshold) }

	if !(fr(edgeIS) < fr(eaar)) {
		t.Errorf("edgeIS false rate %.3f !< EAAR %.3f", fr(edgeIS), fr(eaar))
	}
	if !(fr(eaar) < fr(best)) {
		t.Errorf("EAAR false rate %.3f !< best-effort %.3f", fr(eaar), fr(best))
	}
	if !(fr(duet) < fr(best)) {
		t.Errorf("EdgeDuet false rate %.3f !< best-effort %.3f", fr(duet), fr(best))
	}
	if !(fr(best) < fr(mobile)) {
		t.Errorf("best-effort false rate %.3f !< mobile-only %.3f", fr(best), fr(mobile))
	}
	if !(edgeIS.MeanIoU() > eaar.MeanIoU() && edgeIS.MeanIoU() > duet.MeanIoU()) {
		t.Errorf("edgeIS IoU %.3f not best (EAAR %.3f, EdgeDuet %.3f)",
			edgeIS.MeanIoU(), eaar.MeanIoU(), duet.MeanIoU())
	}
}

func TestMobileOnlyStale(t *testing.T) {
	cfg := testScenario(5, 90)
	acc, stats := runSystem(t, cfg, baseline.NewMobileOnly(cfg.Camera, device.IPhone11, cfg.Seed))
	// Local inference takes dozens of frame intervals: most frames drop.
	if float64(stats.DroppedFrames)/float64(stats.Frames) < 0.8 {
		t.Errorf("dropped only %d/%d frames", stats.DroppedFrames, stats.Frames)
	}
	if stats.Offloads != 0 {
		t.Error("mobile-only offloaded")
	}
	_ = acc
}

func TestBestEffortSaturatesUplink(t *testing.T) {
	cfg := testScenario(7, 90)
	_, statsBest := runSystem(t, cfg, baseline.NewBestEffort(cfg.Camera, device.IPhone11))
	cfgE := testScenario(7, 90)
	_, statsEdge := runSystem(t, cfgE, newEdgeIS(cfgE))
	if statsBest.UplinkBytes <= 2*statsEdge.UplinkBytes {
		t.Errorf("best-effort uplink %d should dwarf edgeIS %d",
			statsBest.UplinkBytes, statsEdge.UplinkBytes)
	}
}

func TestNetworkSensitivity(t *testing.T) {
	// Fig. 10 shape: every system degrades (or stays equal) moving from
	// WiFi5 to WiFi2.4, and edgeIS degrades gracefully.
	run := func(m netsim.Medium) float64 {
		cfg := testScenario(13, 150)
		cfg.Medium = m
		acc, _ := runSystem(t, cfg, newEdgeIS(cfg))
		return acc.FalseRate(metrics.StrictThreshold)
	}
	w5 := run(netsim.WiFi5)
	w24 := run(netsim.WiFi24)
	if w24 < w5-0.05 {
		t.Errorf("false rate improved on the slower link: w5=%.3f w24=%.3f", w5, w24)
	}
}

func TestEngineDeterministic(t *testing.T) {
	cfg := testScenario(17, 60)
	a, _ := runSystem(t, cfg, newEdgeIS(cfg))
	cfg2 := testScenario(17, 60)
	b, _ := runSystem(t, cfg2, newEdgeIS(cfg2))
	if a.MeanIoU() != b.MeanIoU() || a.Samples() != b.Samples() {
		t.Errorf("nondeterministic: %.5f/%d vs %.5f/%d",
			a.MeanIoU(), a.Samples(), b.MeanIoU(), b.Samples())
	}
}

func TestEvaluateAggregation(t *testing.T) {
	evals := []pipeline.FrameEval{
		{IoUs: []float64{0.9, 0.8}, LatencyMs: 20},
		{IoUs: []float64{0.4}, LatencyMs: 30},
	}
	acc := pipeline.Evaluate("x", evals)
	if acc.Samples() != 3 {
		t.Errorf("samples = %d", acc.Samples())
	}
	if acc.FalseRate(0.5) < 0.3 || acc.FalseRate(0.5) > 0.34 {
		t.Errorf("false rate = %v", acc.FalseRate(0.5))
	}
}
