package pipeline_test

import (
	"testing"

	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/pipeline/backendtest"
	"edgeis/internal/scene"
)

// TestBackendConformance runs the shared EdgeBackend contract against the
// two in-process backends. The TCP backend runs the same table from
// package live, where a real server is available.
func TestBackendConformance(t *testing.T) {
	dropOldest := pipeline.DropOldest
	dropNewest := pipeline.DropNewest
	targets := []backendtest.Target{
		{
			Name: "sim",
			New: func(t *testing.T, frames []*scene.Frame, queueDepth int) pipeline.EdgeBackend {
				b := pipeline.NewSimBackend(pipeline.SimBackendConfig{
					Profile: netsim.DefaultProfile(netsim.WiFi5),
					Seed:    5,
				})
				b.Bind(frames, queueDepth)
				return b
			},
			Drop: &dropOldest,
		},
		{
			// A kill-free fleet must meet the same contract as a single edge:
			// placement only picks where work runs, never changes what the
			// mobile observes.
			Name: "sim-fleet",
			New: func(t *testing.T, frames []*scene.Frame, queueDepth int) pipeline.EdgeBackend {
				b := pipeline.NewFleetSimBackend(pipeline.FleetSimConfig{
					Base: pipeline.SimBackendConfig{
						Profile: netsim.DefaultProfile(netsim.WiFi5),
						Seed:    5,
					},
					Replicas: 3,
				})
				b.Bind(frames, queueDepth)
				return b
			},
			Drop: &dropOldest,
		},
		{
			Name: "loopback",
			New: func(t *testing.T, frames []*scene.Frame, queueDepth int) pipeline.EdgeBackend {
				b := pipeline.NewLoopbackBackend(nil, 1, 5)
				b.Bind(frames, queueDepth)
				return b
			},
			Drop: &dropNewest,
		},
	}
	for _, tg := range targets {
		t.Run(tg.Name, func(t *testing.T) { backendtest.Conformance(t, tg) })
	}
}
