package pipeline

import (
	"reflect"
	"testing"

	"edgeis/internal/netsim"
	"edgeis/internal/segmodel"
)

func fleetBaseConfig(seed int64) SimBackendConfig {
	return SimBackendConfig{
		Profile:  netsim.DefaultProfile(netsim.WiFi5),
		Seed:     seed,
		Keyframe: segmodel.KeyframePolicy{Interval: 4},
	}
}

// TestFleetSimSingleReplicaByteIdentical pins the compatibility contract: a
// one-replica fleet with no kills must reproduce the plain SimBackend's
// result schedule and accounting exactly — same decisions, same busy
// horizons, same link RNG draws.
func TestFleetSimSingleReplicaByteIdentical(t *testing.T) {
	frames := internalFrames(7, 12)
	run := func(b EdgeBackend) ([]ScheduledResult, BackendStats) {
		b.Bind(frames, 2)
		var out []ScheduledResult
		for i := 0; i < len(frames); i++ {
			out = append(out, b.Submit(internalRequest(i), float64(i)*FrameBudgetMs)...)
		}
		out = append(out, b.Advance(1e12)...)
		return out, b.Stats()
	}
	solo, soloStats := run(NewSimBackend(fleetBaseConfig(7)))
	fleet, fleetStats := run(NewFleetSimBackend(FleetSimConfig{Base: fleetBaseConfig(7), Replicas: 1}))
	if soloStats != fleetStats {
		t.Errorf("stats diverge:\n solo  %+v\n fleet %+v", soloStats, fleetStats)
	}
	if !reflect.DeepEqual(solo, fleet) {
		t.Errorf("result schedules diverge: solo %d results, fleet %d", len(solo), len(fleet))
	}
}

// TestFleetSimKillMigratesAndRecovers drives a 3-replica fleet through a
// kill of the serving replica while it holds a backlog: the waiting frames
// must land in MigratedOffloads (not vanish), the session must re-place on
// a survivor, and — because the survivor's feature cache is cold — the
// first post-migration frame must be decided a keyframe.
func TestFleetSimKillMigratesAndRecovers(t *testing.T) {
	frames := internalFrames(9, 10)
	// Resolve which replica rendezvous placement picks for the engine's
	// session, so the kill can target exactly the serving shard.
	serving := NewFleetSimBackend(FleetSimConfig{Base: fleetBaseConfig(9), Replicas: 3}).ServingReplica()

	b := NewFleetSimBackend(FleetSimConfig{
		Base:     fleetBaseConfig(9),
		Replicas: 3,
		Kills:    []EdgeKill{{Replica: serving, AtMs: 5}},
	})
	b.Bind(frames, 8)

	// Frame 0 enters service immediately (inference runs for hundreds of
	// simulated ms); frames 1-4 queue behind it, all before the kill instant.
	for i := 0; i < 5; i++ {
		b.Submit(internalRequest(i), float64(i))
	}
	if got := len(b.edges[serving].waiting); got != 4 {
		t.Fatalf("backlog on serving replica = %d, want 4", got)
	}

	// The next observation is past AtMs: the kill fires, the backlog
	// migrates, and frame 5 routes to the survivor the session re-placed on.
	b.Submit(internalRequest(5), 10)
	cur := b.ServingReplica()
	if cur == serving || cur < 0 {
		t.Fatalf("serving replica after kill = %d (killed %d)", cur, serving)
	}
	// The survivor's cache was cold, so frame 5's decision primed it — the
	// forced post-migration keyframe.
	if c := b.edges[cur].keyframe.cache; c == nil || !c.Valid() {
		t.Error("post-migration frame did not prime the survivor's cache with a cold keyframe")
	}

	b.Advance(1e12)
	st := b.Stats()
	if st.MigratedOffloads != 4 {
		t.Errorf("migrated = %d, want the 4 queued frames", st.MigratedOffloads)
	}
	// Conservation across the kill: every accepted offload is a result,
	// a queue drop, or a migration loss.
	if st.Submitted != st.Results+st.DroppedOffloads+st.MigratedOffloads {
		t.Errorf("conservation violated: submitted %d != results %d + dropped %d + migrated %d",
			st.Submitted, st.Results, st.DroppedOffloads, st.MigratedOffloads)
	}
	if st.Results < 2 {
		t.Errorf("results = %d; the survivor must keep serving after failover", st.Results)
	}
}

// TestFleetSimKillDeterministic pins the virtual-time failover to the
// determinism bar every simulated component meets: two identical runs with
// a mid-run kill produce identical result schedules and accounting.
func TestFleetSimKillDeterministic(t *testing.T) {
	frames := internalFrames(11, 16)
	run := func() ([]ScheduledResult, BackendStats) {
		b := NewFleetSimBackend(FleetSimConfig{
			Base:     fleetBaseConfig(11),
			Replicas: 3,
			Kills:    []EdgeKill{{Replica: 0, AtMs: 40}, {Replica: 2, AtMs: 200}},
		})
		b.Bind(frames, 4)
		var out []ScheduledResult
		for i := 0; i < len(frames); i++ {
			out = append(out, b.Submit(internalRequest(i), float64(i)*FrameBudgetMs)...)
		}
		out = append(out, b.Advance(1e12)...)
		return out, b.Stats()
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1 != s2 {
		t.Errorf("stats diverge across identical runs:\n %+v\n %+v", s1, s2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("result schedules diverge across identical runs")
	}
}

// TestFleetSimTotalLossDropsClientSide kills the whole fleet: offloads
// submitted afterwards have nowhere to go and must be counted dropped (the
// client-side bucket), never silently lost.
func TestFleetSimTotalLossDropsClientSide(t *testing.T) {
	frames := internalFrames(13, 6)
	b := NewFleetSimBackend(FleetSimConfig{
		Base:     fleetBaseConfig(13),
		Replicas: 2,
		Kills:    []EdgeKill{{Replica: 0, AtMs: 1}, {Replica: 1, AtMs: 2}},
	})
	b.Bind(frames, 4)
	b.Submit(internalRequest(0), 0) // served: the fleet is still alive at t=0
	b.Submit(internalRequest(1), 5) // both kills due: nowhere to place
	b.Submit(internalRequest(2), 6)
	if got := b.ServingReplica(); got != -1 {
		t.Fatalf("serving replica = %d after total loss, want -1", got)
	}
	b.Advance(1e12)
	st := b.Stats()
	if st.DroppedOffloads != 2 {
		t.Errorf("dropped = %d, want the 2 post-loss submits", st.DroppedOffloads)
	}
	if st.Submitted != 1 || st.Results != 1 {
		t.Errorf("pre-kill frame not served: submitted %d results %d", st.Submitted, st.Results)
	}
	if b.Outstanding() != 0 {
		t.Errorf("outstanding = %d on a dead fleet", b.Outstanding())
	}
}
