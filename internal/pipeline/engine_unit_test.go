package pipeline_test

import (
	"testing"

	"edgeis/internal/feature"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
)

// stubStrategy offloads every frame at a configurable payload and records
// the results it receives.
type stubStrategy struct {
	payload   int
	queuePref int
	computeMs float64
	received  []int
}

func (s *stubStrategy) Name() string { return "stub" }

func (s *stubStrategy) ProcessFrame(f *scene.Frame, _ []feature.Feature, _ float64) pipeline.FrameOutput {
	return pipeline.FrameOutput{
		ComputeMs: s.computeMs,
		Offloads: []*pipeline.OffloadRequest{{
			FrameIndex:   f.Index,
			PayloadBytes: s.payload,
		}},
	}
}

func (s *stubStrategy) HandleEdgeResult(res pipeline.EdgeResult, _ *scene.Frame, _ float64) {
	s.received = append(s.received, res.FrameIndex)
}

func (s *stubStrategy) PreferredQueueDepth() int { return s.queuePref }

func stubConfig(frames int) pipeline.Config {
	return testScenario(21, frames)
}

func TestEngineLatestWinsDropsStaleFrames(t *testing.T) {
	// Offloading every 33 ms against a ~400 ms inference: a depth-1 queue
	// must serve far fewer frames than were submitted, and the served
	// frames must be recent relative to their service time.
	s := &stubStrategy{payload: 10_000, queuePref: 1, computeMs: 5}
	engine := pipeline.NewEngine(stubConfig(90), s)
	_, stats := engine.Run()
	if stats.Offloads != 90 {
		t.Fatalf("offloads = %d", stats.Offloads)
	}
	// ~3 s of video at ~400 ms inference: at most ~9 results.
	if stats.EdgeResultCount > 12 {
		t.Errorf("edge served %d frames; latest-wins should drop most", stats.EdgeResultCount)
	}
	if stats.EdgeResultCount < 4 {
		t.Errorf("edge served only %d frames", stats.EdgeResultCount)
	}
}

func TestEngineDeepQueueServesStaleFrames(t *testing.T) {
	// With a deep queue the edge serves the same number of inferences, but
	// the ones it serves lag far behind the submission frontier.
	shallow := &stubStrategy{payload: 10_000, queuePref: 1, computeMs: 5}
	pipeline.NewEngine(stubConfig(90), shallow).Run()
	deep := &stubStrategy{payload: 10_000, queuePref: 24, computeMs: 5}
	pipeline.NewEngine(stubConfig(90), deep).Run()

	if len(shallow.received) == 0 || len(deep.received) == 0 {
		t.Fatal("no results received")
	}
	// Compare the index of the LAST served frame: latest-wins serves a
	// recent frame; the deep queue is still working through the backlog.
	lastShallow := shallow.received[len(shallow.received)-1]
	lastDeep := deep.received[len(deep.received)-1]
	if lastDeep >= lastShallow {
		t.Errorf("deep queue served frame %d, shallow %d: deep should lag",
			lastDeep, lastShallow)
	}
}

func TestEngineDropsFramesWhenMobileSlow(t *testing.T) {
	s := &stubStrategy{payload: 100, queuePref: 1, computeMs: 100} // 3x budget
	engine := pipeline.NewEngine(stubConfig(60), s)
	_, stats := engine.Run()
	if stats.DroppedFrames < 30 {
		t.Errorf("dropped %d frames; a 100 ms pipeline must drop ~2/3", stats.DroppedFrames)
	}
}

func TestEngineUplinkAccounting(t *testing.T) {
	s := &stubStrategy{payload: 5_000, queuePref: 1, computeMs: 5}
	engine := pipeline.NewEngine(stubConfig(30), s)
	_, stats := engine.Run()
	if stats.UplinkBytes != 30*5_000 {
		t.Errorf("uplink = %d, want %d", stats.UplinkBytes, 30*5_000)
	}
	if stats.DownlinkBytes <= 0 {
		t.Error("downlink not accounted")
	}
}

func TestEvaluateFromSkipsWarmup(t *testing.T) {
	evals := []pipeline.FrameEval{
		{Index: 0, IoUs: []float64{0}, LatencyMs: 1},
		{Index: 1, IoUs: []float64{0}, LatencyMs: 1},
		{Index: 2, IoUs: []float64{1}, LatencyMs: 1},
	}
	acc := pipeline.EvaluateFrom("x", evals, 2)
	if acc.Samples() != 1 || acc.MeanIoU() != 1 {
		t.Errorf("warmup not skipped: n=%d iou=%v", acc.Samples(), acc.MeanIoU())
	}
	_ = metrics.LooseThreshold
}

func TestEngineDegradedNetworkHurtsButDoesNotCrash(t *testing.T) {
	// Failure injection: a starved, lossy link. The system must still run
	// to completion, with clearly fewer edge results than on a clean link.
	clean := testScenario(23, 120)
	sClean := newEdgeIS(clean)
	_, cleanStats := pipeline.NewEngine(clean, sClean).Run()

	bad := testScenario(23, 120)
	profile := netsim.DefaultProfile(netsim.WiFi24)
	profile.GoodputMbps = 0.7 // ~starved
	profile.LossRate = 0.3
	profile.BaseRTTMs = 120
	bad.NetworkProfile = &profile
	sBad := newEdgeIS(bad)
	_, badStats := pipeline.NewEngine(bad, sBad).Run()

	if badStats.EdgeResultCount >= cleanStats.EdgeResultCount {
		t.Errorf("degraded link served %d results vs clean %d",
			badStats.EdgeResultCount, cleanStats.EdgeResultCount)
	}
}
