package pipeline_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"edgeis/internal/baseline"
	"edgeis/internal/core"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
)

// goldenDump renders a run's evals and stats in the fixed golden format.
func goldenDump(name string, evals []pipeline.FrameEval, stats pipeline.RunStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", name)
	for _, ev := range evals {
		fmt.Fprintf(&b, "frame=%d lat=%.9g drop=%v off=%v stale=%.9g ious=",
			ev.Index, ev.LatencyMs, ev.Dropped, ev.Offloaded, ev.StalenessMs)
		for i, iou := range ev.IoUs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.9g", iou)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "stats frames=%d offloads=%d dropped=%d up=%d down=%d inferSum=%.9g results=%d busy=%.9g\n",
		stats.Frames, stats.Offloads, stats.DroppedFrames, stats.UplinkBytes, stats.DownlinkBytes,
		stats.EdgeInferMsSum, stats.EdgeResultCount, stats.MobileBusyMsSum)
	return b.String()
}

func goldenScenario(seed int64, frames int) pipeline.Config {
	return pipeline.Config{
		World:       scene.StreetScene(scene.PresetConfig{Seed: seed, ObjectCount: 3}),
		Camera:      geom.StandardCamera(320, 240),
		Trajectory:  scene.InspectionRoute(scene.WalkSpeed),
		Frames:      frames,
		CameraSpeed: scene.WalkSpeed,
		Medium:      netsim.WiFi5,
		Seed:        seed,
	}
}

// TestEngineGoldenEvals pins the refactored event-queue engine to the exact
// per-frame output of the legacy frame loop (captured in testdata before the
// refactor, after the vo determinism fixes). Any scheduling change — event
// ordering, tie-breaks, backend call order — shows up as a byte diff here.
func TestEngineGoldenEvals(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay runs three full scenarios")
	}
	var b strings.Builder

	cfg := goldenScenario(17, 210)
	sys := core.NewSystem(core.Config{Camera: cfg.Camera, Device: device.IPhone11, Seed: cfg.Seed})
	evals, stats := pipeline.NewEngine(cfg, sys).Run()
	b.WriteString(goldenDump("edgeIS seed=17 frames=210 wifi5", evals, stats))

	cfg2 := goldenScenario(23, 120)
	evals2, stats2 := pipeline.NewEngine(cfg2, baseline.NewBestEffort(cfg2.Camera, device.IPhone11)).Run()
	b.WriteString(goldenDump("best-effort seed=23 frames=120 wifi5", evals2, stats2))

	cfg3 := goldenScenario(29, 120)
	cfg3.Medium = netsim.WiFi24
	evals3, stats3 := pipeline.NewEngine(cfg3, baseline.NewEAAR(cfg3.Camera, device.IPhone11)).Run()
	b.WriteString(goldenDump("EAAR seed=29 frames=120 wifi24", evals3, stats3))

	want, err := os.ReadFile("testdata/golden_evals.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		diffLine := firstDiffLine(got, string(want))
		t.Errorf("engine output diverged from golden (first differing line %d)\ngot:  %s\nwant: %s",
			diffLine.n, diffLine.got, diffLine.want)
	}
}

type lineDiff struct {
	n         int
	got, want string
}

// firstDiffLine locates the first line where two dumps differ.
func firstDiffLine(got, want string) lineDiff {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return lineDiff{n: i + 1, got: g, want: w}
		}
	}
	return lineDiff{n: 0, got: "<identical>", want: "<identical>"}
}
