package pipeline_test

import (
	"testing"

	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/pipeline/backendtest"
)

// TestSimBackendMultiAccelerator pins the simulated accelerator pool: two
// offloads arriving together serialize on one accelerator but overlap on
// two, and the pool size must not disturb the first result's timing (the
// N=1 math is the byte-stable legacy schedule).
func TestSimBackendMultiAccelerator(t *testing.T) {
	frames := backendtest.Frames(7, 4)
	run := func(accels int) (first, second float64) {
		b := pipeline.NewSimBackend(pipeline.SimBackendConfig{
			Profile:      netsim.DefaultProfile(netsim.WiFi5),
			Seed:         7,
			Accelerators: accels,
		})
		b.Bind(frames, 4)
		var out []pipeline.ScheduledResult
		for i := 0; i < 2; i++ {
			req := &pipeline.OffloadRequest{
				FrameIndex:   i,
				PayloadBytes: 20_000,
				Quality:      func(x, y int) float64 { return 1 },
			}
			out = append(out, b.Submit(req, 0)...)
		}
		out = append(out, b.Advance(1e12)...)
		if len(out) != 2 {
			t.Fatalf("%d accelerators: %d results, want 2", accels, len(out))
		}
		for _, r := range out {
			switch r.Res.FrameIndex {
			case 0:
				first = r.At
			case 1:
				second = r.At
			default:
				t.Fatalf("unexpected frame %d", r.Res.FrameIndex)
			}
		}
		if first <= 0 || second <= 0 {
			t.Fatalf("%d accelerators: missing deliveries (first=%.3f second=%.3f)", accels, first, second)
		}
		return first, second
	}

	serialFirst, serialSecond := run(1)
	pooledFirst, pooledSecond := run(2)
	if pooledFirst != serialFirst {
		t.Errorf("first delivery moved with pool size: 1-accel %.3f, 2-accel %.3f", serialFirst, pooledFirst)
	}
	if pooledSecond >= serialSecond {
		t.Errorf("second delivery did not overlap: 1-accel %.3f, 2-accel %.3f", serialSecond, pooledSecond)
	}
}

// TestSimBackendBatchFormer pins the simulated batch former: a backlog of
// compatible offloads served with MaxBatch=4 completes sooner than with the
// one-job-per-launch edge (amortized launches), while MaxBatch=1 reproduces
// the legacy schedule exactly.
func TestSimBackendBatchFormer(t *testing.T) {
	frames := backendtest.Frames(9, 6)
	run := func(maxBatch int) (last float64, results int) {
		b := pipeline.NewSimBackend(pipeline.SimBackendConfig{
			Profile:  netsim.DefaultProfile(netsim.WiFi5),
			Seed:     9,
			MaxBatch: maxBatch,
		})
		// Deep queue so the burst backlogs instead of dropping.
		b.Bind(frames, 8)
		var out []pipeline.ScheduledResult
		for i := 0; i < 5; i++ {
			req := &pipeline.OffloadRequest{
				FrameIndex:   i,
				PayloadBytes: 20_000,
				Quality:      func(x, y int) float64 { return 1 },
			}
			out = append(out, b.Submit(req, 0)...)
		}
		out = append(out, b.Advance(1e12)...)
		for _, r := range out {
			if r.At > last {
				last = r.At
			}
		}
		if st := b.Stats(); st.DroppedOffloads != 0 {
			t.Fatalf("maxBatch=%d: unexpected drops %d", maxBatch, st.DroppedOffloads)
		}
		return last, len(out)
	}

	singleLast, singleN := run(1)
	batchLast, batchN := run(4)
	if singleN != 5 || batchN != 5 {
		t.Fatalf("results: single=%d batch=%d, want 5", singleN, batchN)
	}
	if batchLast >= singleLast {
		t.Errorf("batched backlog not faster: single last delivery %.3f ms, batched %.3f ms",
			singleLast, batchLast)
	}

	// MaxBatch=1 must be byte-identical to the default config.
	againLast, _ := run(1)
	if againLast != singleLast {
		t.Errorf("maxBatch=1 not deterministic: %.6f vs %.6f", singleLast, againLast)
	}
}
