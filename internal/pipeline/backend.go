package pipeline

import (
	"time"

	"edgeis/internal/netsim"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
)

// DropPolicy names a backend's behaviour when its offload queue is full.
type DropPolicy uint8

const (
	// DropOldest replaces the oldest waiting offload with the newcomer:
	// latest-wins, the discipline a real-time edge queue wants.
	DropOldest DropPolicy = iota
	// DropNewest rejects the incoming offload when the queue is full — the
	// behaviour of a bounded send queue in front of a socket.
	DropNewest
)

// BackendStats is the accounting every backend reports, so simulated and
// live runs describe offload loss and edge work identically.
type BackendStats struct {
	// Submitted counts offloads the backend accepted.
	Submitted int
	// DroppedOffloads counts offloads lost to queue overflow (either end).
	DroppedOffloads int
	// DiscardedResults counts results thrown away because their frame index
	// was out of range for the running clip.
	DiscardedResults int
	// MigratedOffloads counts offloads lost in flight to a replica kill
	// under a sharded backend (FleetSimBackend): accepted by the edge but
	// still waiting when it died. Always zero on single-edge backends.
	MigratedOffloads int
	// Results counts inference results produced (sim) or received (live).
	Results int
	// InferMsSum accumulates edge inference latency across Results.
	InferMsSum float64
	// UplinkBytes and DownlinkBytes account the modelled wire volume.
	UplinkBytes   int
	DownlinkBytes int
}

// CountDropped and CountDiscarded are the audited mutators for the loss
// counters shared by every backend (sim, loopback, live): routing each
// dropped offload and discarded result through them keeps the conservation
// law's loss side greppable across simulated and live runs alike.

func (s *BackendStats) CountDropped(n int) { s.DroppedOffloads += n }

func (s *BackendStats) CountDiscarded() { s.DiscardedResults++ }

func (s *BackendStats) CountMigrated(n int) { s.MigratedOffloads += n }

// ScheduledResult is an edge result with its simulated delivery time. Live
// backends stamp results with the poll time — the earliest simulated instant
// the mobile could observe them.
type ScheduledResult struct {
	At  float64
	Res EdgeResult
}

// EdgeBackend is the edge half of the offload loop: the engine submits
// encoded frames and receives asynchronous EdgeResult deliveries. A backend
// owns its queue discipline (depth, drop policy) and reports drops and
// discards through Stats, so every engine run accounts offload loss the same
// way regardless of what serves the inferences.
//
// Submit and Advance return result deliveries as soon as their timing is
// known; the engine turns them into edge-result events on its scheduler.
// All methods are called from the engine goroutine only.
type EdgeBackend interface {
	// Name identifies the backend in reports.
	Name() string
	// Bind hands the backend the rendered clip and the strategy's preferred
	// queue depth before the run starts (depth <= 0 keeps the default).
	Bind(frames []*scene.Frame, queueDepth int)
	// Submit ships an offload at simulated time sendAt.
	Submit(req *OffloadRequest, sendAt float64) []ScheduledResult
	// Advance drives backend bookkeeping to simulated time now: simulated
	// backends service their queue; live backends drain their socket without
	// blocking. Returned results may be due at or before now.
	Advance(now float64) []ScheduledResult
	// Outstanding reports offloads submitted but not yet surfaced as results.
	Outstanding() int
	// Wait blocks up to d of wall-clock time for a result to become
	// available. Simulated backends return false immediately: their results
	// only move on Advance.
	Wait(d time.Duration) bool
	// Stats returns the accounting so far.
	Stats() BackendStats
	// Close releases backend resources.
	Close() error
}

// waitingOffload is a request queued for the simulated edge.
type waitingOffload struct {
	arrival float64
	req     *OffloadRequest
	// decision is the keyframe classification made at Submit time; it rides
	// the queue so the launch charges the matching cost shape.
	decision segmodel.KeyframeDecision
}

// keyframeState is the skip-compute decision state a simulated backend owns
// for its single client stream: the policy plus the stream's feature cache.
// The engine drives one mobile, so one cache suffices — the multi-session
// equivalent lives in edge.Session. Decisions must be made in Submit order:
// Decide is the only place cross-frame cache state advances.
type keyframeState struct {
	policy segmodel.KeyframePolicy
	cache  *segmodel.FeatureCache
}

// decide classifies one offload, creating the cache on first use. With the
// policy disabled it returns the constant keyframe decision and never touches
// the cache, so default runs stay byte-identical to a cache-free build.
func (k *keyframeState) decide(in segmodel.Input, g segmodel.Guidance) segmodel.KeyframeDecision {
	if !k.policy.Enabled() {
		return segmodel.KeyframeDecision{Keyframe: true, Reason: segmodel.KeyDisabled}
	}
	if k.cache == nil {
		k.cache = segmodel.NewFeatureCache()
	}
	return k.policy.Decide(k.cache, in, g)
}

// dropFor invalidates the cache when a decided keyframe is lost to queue
// overflow before serving — its pyramid was never computed, so later frames
// must not warp from it. Mirrors edge.Session.dropCacheFor.
func (k *keyframeState) dropFor(d segmodel.KeyframeDecision) {
	if d.Keyframe && d.Reason != segmodel.KeyDisabled {
		k.cache.Invalidate()
	}
}

// SimBackend is the simulated edge: an uplink and downlink from netsim and a
// segmodel edge model, with a bounded latest-wins queue in front of a pool
// of accelerators (default one). It reproduces the legacy Engine.Run
// scheduling exactly — the order of link and model calls is load-bearing for
// determinism, since links carry RNG state and a busy horizon. With one
// accelerator the busy-horizon math is identical to the historical single
// edgeFreeAt field, so golden runs are byte-stable.
type SimBackend struct {
	model      *segmodel.Model
	inferScale float64
	uplink     *netsim.Link
	downlink   *netsim.Link
	seed       int64
	frames     []*scene.Frame
	queueDepth int
	// maxBatch bounds how many compatible waiting offloads one accelerator
	// launch may serve; 1 is the historical one-job-per-launch edge.
	maxBatch int
	// freeAt is the busy horizon of each simulated accelerator; requests are
	// served FIFO on the earliest-free one (lowest index breaks ties).
	freeAt   []float64
	waiting  []waitingOffload
	keyframe keyframeState
	stats    BackendStats
}

// SimBackendConfig assembles a simulated edge.
type SimBackendConfig struct {
	// Model is the edge model; nil defaults to Mask R-CNN.
	Model *segmodel.Model
	// InferScale multiplies inference latency (device.Profile.InferScale);
	// zero means 1.
	InferScale float64
	// Profile is the link behaviour for both directions.
	Profile netsim.Profile
	// Seed derives the two link RNG streams and per-frame model noise.
	Seed int64
	// Accelerators sizes the simulated inference pool; zero or one keeps
	// the deterministic single-accelerator edge.
	Accelerators int
	// MaxBatch bounds the batch former: an accelerator launch may serve up
	// to this many waiting offloads of one guidance class in one amortized
	// launch (segmodel.BatchMs). Zero or one keeps the historical
	// one-job-per-launch edge, whose event order the goldens pin.
	MaxBatch int
	// Keyframe enables temporal-redundancy skip-compute: non-keyframes warp
	// the stream's cached backbone pyramid at partial cost instead of
	// recomputing it. The zero policy keeps every frame a keyframe and the
	// schedule byte-identical to a build without the feature cache.
	Keyframe segmodel.KeyframePolicy
}

// NewSimBackend builds the simulated edge backend.
func NewSimBackend(cfg SimBackendConfig) *SimBackend {
	if cfg.Model == nil {
		cfg.Model = segmodel.New(segmodel.MaskRCNN)
	}
	if cfg.InferScale == 0 {
		cfg.InferScale = 1
	}
	if cfg.Accelerators < 1 {
		cfg.Accelerators = 1
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	return &SimBackend{
		model:      cfg.Model,
		inferScale: cfg.InferScale,
		uplink:     netsim.NewLink(cfg.Profile, cfg.Seed+1),
		downlink:   netsim.NewLink(cfg.Profile, cfg.Seed+2),
		seed:       cfg.Seed,
		queueDepth: 1,
		maxBatch:   cfg.MaxBatch,
		freeAt:     make([]float64, cfg.Accelerators),
		keyframe:   keyframeState{policy: cfg.Keyframe},
	}
}

// earliestFree picks the accelerator that frees up first, lowest index
// winning ties so single-accelerator runs reduce to the legacy math.
func (b *SimBackend) earliestFree() (int, float64) {
	idx, free := 0, b.freeAt[0]
	for i := 1; i < len(b.freeAt); i++ {
		if b.freeAt[i] < free {
			idx, free = i, b.freeAt[i]
		}
	}
	return idx, free
}

// Name implements EdgeBackend.
func (b *SimBackend) Name() string { return "sim" }

// Bind implements EdgeBackend.
func (b *SimBackend) Bind(frames []*scene.Frame, queueDepth int) {
	b.frames = frames
	if queueDepth > 0 {
		b.queueDepth = queueDepth
	}
}

// Submit models the uplink and enqueues at the edge. Queue overflow drops
// the oldest waiting offload (latest-wins) and counts it; a dropped keyframe
// additionally invalidates the feature cache, since the pyramid later frames
// were decided to warp from was never computed.
func (b *SimBackend) Submit(req *OffloadRequest, sendAt float64) []ScheduledResult {
	b.stats.Submitted++
	b.stats.UplinkBytes += req.PayloadBytes
	// Classify at submit time, in send order — the decision function is the
	// only place cross-frame cache state advances. With the policy off the
	// decision is constant and no model input is built here.
	d := segmodel.KeyframeDecision{Keyframe: true, Reason: segmodel.KeyDisabled}
	if b.keyframe.policy.Enabled() {
		d = b.keyframe.decide(modelInput(b.frames, b.seed, req), req.Guidance)
	}
	upMs := b.uplink.TransferMs(sendAt, req.PayloadBytes)
	arrive := sendAt + upMs
	out := b.advance(arrive)
	if accel, free := b.earliestFree(); free <= arrive && len(b.waiting) == 0 {
		return append(out, b.startInference(req, d, arrive, accel))
	}
	b.waiting = append(b.waiting, waitingOffload{arrival: arrive, req: req, decision: d})
	if len(b.waiting) > b.queueDepth {
		stale := b.waiting[0]
		b.waiting = b.waiting[1:]
		b.stats.CountDropped(1)
		b.keyframe.dropFor(stale.decision)
	}
	return out
}

// Advance implements EdgeBackend: it services waiting requests (FIFO) while
// the edge is free.
func (b *SimBackend) Advance(now float64) []ScheduledResult { return b.advance(now) }

func (b *SimBackend) advance(now float64) []ScheduledResult {
	var out []ScheduledResult
	for len(b.waiting) > 0 {
		accel, free := b.earliestFree()
		if free > now {
			break
		}
		item := b.waiting[0]
		start := free
		if item.arrival > start {
			start = item.arrival
		}
		if start > now {
			break
		}
		b.waiting = b.waiting[1:]
		if b.maxBatch <= 1 {
			// The historical one-job-per-launch path, kept verbatim: its
			// exact sequence of link and model calls is what the golden
			// determinism tests pin.
			out = append(out, b.startInference(item.req, item.decision, start, accel))
			continue
		}
		// Batch former: extend the head with waiting offloads that have
		// already arrived by the launch instant and share its guidance
		// class (a guided two-stage pass evaluates a different network
		// slice than a vanilla one, so the classes never co-batch) and its
		// keyframe class (a full backbone and a cache warp are different
		// cost shapes; with the policy off every decision is a keyframe, so
		// the predicate reduces to the historical guidance-only test).
		batch := []waitingOffload{item}
		guided := item.req.Guidance != nil
		for i := 0; len(batch) < b.maxBatch && i < len(b.waiting); {
			w := b.waiting[i]
			if w.arrival <= start && (w.req.Guidance != nil) == guided &&
				w.decision.Keyframe == item.decision.Keyframe {
				batch = append(batch, w)
				b.waiting = append(b.waiting[:i], b.waiting[i+1:]...)
			} else {
				i++
			}
		}
		out = append(out, b.startBatch(batch, start, accel)...)
	}
	return out
}

// startBatch serves a gathered batch in one amortized launch: every member
// occupies the accelerator for segmodel.BatchMs over the members' scaled
// solo latencies and completes together, then each result rides the
// downlink in queue order.
func (b *SimBackend) startBatch(batch []waitingOffload, startAt float64, accel int) []ScheduledResult {
	results := make([]*segmodel.Result, len(batch))
	solos := make([]float64, len(batch))
	for i, item := range batch {
		in := modelInput(b.frames, b.seed, item.req)
		results[i] = b.model.RunWarped(in, item.req.Guidance, item.decision)
		solos[i] = results[i].TotalMs() * b.inferScale
	}
	launchMs := segmodel.BatchMs(solos)
	doneAt := startAt + launchMs
	b.freeAt[accel] = doneAt

	out := make([]ScheduledResult, 0, len(batch))
	for i, item := range batch {
		res := results[i]
		b.stats.InferMsSum += launchMs
		b.stats.Results++
		resultBytes := 256
		for _, d := range res.Detections {
			if d.Mask != nil {
				resultBytes += 16 + d.Mask.BoundingBox().Area()/64
			} else {
				resultBytes += 32
			}
		}
		b.stats.DownlinkBytes += resultBytes
		downMs := b.downlink.TransferMs(doneAt, resultBytes)
		out = append(out, ScheduledResult{
			At: doneAt + downMs,
			Res: EdgeResult{
				FrameIndex: item.req.FrameIndex,
				Detections: res.Detections,
				InferMs:    launchMs,
			},
		})
	}
	return out
}

// startInference runs the model for a request whose service begins at
// startAt on accelerator accel and schedules the result delivery over the
// downlink. The keyframe decision picks the cost shape: keyframes run the
// full model (RunWarped is exactly Run then), non-keyframes charge the
// partial warp cost.
func (b *SimBackend) startInference(req *OffloadRequest, d segmodel.KeyframeDecision, startAt float64, accel int) ScheduledResult {
	in := modelInput(b.frames, b.seed, req)
	res := b.model.RunWarped(in, req.Guidance, d)
	inferMs := res.TotalMs() * b.inferScale
	doneAt := startAt + inferMs
	b.freeAt[accel] = doneAt
	b.stats.InferMsSum += inferMs
	b.stats.Results++

	resultBytes := 256
	for _, d := range res.Detections {
		if d.Mask != nil {
			resultBytes += 16 + d.Mask.BoundingBox().Area()/64
		} else {
			resultBytes += 32
		}
	}
	b.stats.DownlinkBytes += resultBytes
	downMs := b.downlink.TransferMs(doneAt, resultBytes)
	return ScheduledResult{
		At: doneAt + downMs,
		Res: EdgeResult{
			FrameIndex: req.FrameIndex,
			Detections: res.Detections,
			InferMs:    inferMs,
		},
	}
}

// modelInput converts the offloaded frame's ground truth plus the encode
// quality map into the simulated model's input.
func modelInput(frames []*scene.Frame, seed int64, req *OffloadRequest) segmodel.Input {
	f := frames[req.FrameIndex]
	objs := make([]segmodel.ObjectTruth, 0, len(f.Objects))
	for _, gt := range f.Objects {
		objs = append(objs, segmodel.ObjectTruth{
			ObjectID: gt.ObjectID,
			Label:    int(gt.Class),
			Visible:  gt.Visible,
			Box:      gt.Box,
		})
	}
	return segmodel.Input{
		Width:   f.Camera.Width,
		Height:  f.Camera.Height,
		Objects: objs,
		Quality: req.Quality,
		Seed:    seed*1_000_003 + int64(req.FrameIndex),
	}
}

// Outstanding implements EdgeBackend.
func (b *SimBackend) Outstanding() int { return len(b.waiting) }

// Wait implements EdgeBackend: simulated results only move on Advance.
func (b *SimBackend) Wait(time.Duration) bool { return false }

// Stats implements EdgeBackend.
func (b *SimBackend) Stats() BackendStats { return b.stats }

// Close implements EdgeBackend.
func (b *SimBackend) Close() error { return nil }

// LoopbackBackend runs the edge model synchronously in-process: offloads
// incur inference latency on a single simulated accelerator but no network
// transfer — an idealized co-located edge. Its queue bounds the number of
// results still in flight; overflow rejects the incoming offload
// (DropNewest), mirroring a bounded send queue.
type LoopbackBackend struct {
	model      *segmodel.Model
	inferScale float64
	seed       int64
	frames     []*scene.Frame
	queueDepth int
	edgeFreeAt float64
	inflight   int
	keyframe   keyframeState
	stats      BackendStats
}

// NewLoopbackBackend builds an in-process backend around a model (nil
// defaults to Mask R-CNN). InferScale <= 0 means 1.
func NewLoopbackBackend(model *segmodel.Model, inferScale float64, seed int64) *LoopbackBackend {
	if model == nil {
		model = segmodel.New(segmodel.MaskRCNN)
	}
	if inferScale <= 0 {
		inferScale = 1
	}
	return &LoopbackBackend{model: model, inferScale: inferScale, seed: seed, queueDepth: 4}
}

// SetKeyframePolicy enables temporal-redundancy skip-compute on the loopback
// edge. Must be called before the first Submit; the zero policy (the
// default) keeps every frame a keyframe and the schedule unchanged.
func (b *LoopbackBackend) SetKeyframePolicy(p segmodel.KeyframePolicy) {
	b.keyframe.policy = p
}

// Name implements EdgeBackend.
func (b *LoopbackBackend) Name() string { return "loopback" }

// Bind implements EdgeBackend.
func (b *LoopbackBackend) Bind(frames []*scene.Frame, queueDepth int) {
	b.frames = frames
	if queueDepth > 0 {
		b.queueDepth = queueDepth
	}
}

// Submit implements EdgeBackend: the model runs immediately; delivery is due
// when the single accelerator finishes the request.
func (b *LoopbackBackend) Submit(req *OffloadRequest, sendAt float64) []ScheduledResult {
	// Classify before the admission check, mirroring the live scheduler's
	// decide-at-admission order; a rejected keyframe invalidates the cache.
	// With the policy off the decision is constant and the overflow path
	// does no model-input work, exactly as before.
	var d segmodel.KeyframeDecision
	if b.keyframe.policy.Enabled() {
		d = b.keyframe.decide(modelInput(b.frames, b.seed, req), req.Guidance)
	} else {
		d = segmodel.KeyframeDecision{Keyframe: true, Reason: segmodel.KeyDisabled}
	}
	if b.inflight >= b.queueDepth {
		b.stats.CountDropped(1)
		b.keyframe.dropFor(d)
		return nil
	}
	b.stats.Submitted++
	b.stats.UplinkBytes += req.PayloadBytes
	in := modelInput(b.frames, b.seed, req)
	res := b.model.RunWarped(in, req.Guidance, d)
	inferMs := res.TotalMs() * b.inferScale
	start := sendAt
	if b.edgeFreeAt > start {
		start = b.edgeFreeAt
	}
	b.edgeFreeAt = start + inferMs
	b.stats.InferMsSum += inferMs
	b.stats.Results++
	b.inflight++
	return []ScheduledResult{{
		At: b.edgeFreeAt,
		Res: EdgeResult{
			FrameIndex: req.FrameIndex,
			Detections: res.Detections,
			InferMs:    inferMs,
		},
	}}
}

// Advance implements EdgeBackend; loopback work completes at Submit time.
func (b *LoopbackBackend) Advance(float64) []ScheduledResult { return nil }

// Outstanding implements EdgeBackend. Results scheduled at Submit count as
// surfaced, so loopback never reports unfinished work to the engine; the
// inflight cap is released as deliveries are consumed via NoteDelivered.
func (b *LoopbackBackend) Outstanding() int { return 0 }

// NoteDelivered releases one in-flight slot; the engine calls it when a
// scheduled result reaches the strategy.
func (b *LoopbackBackend) NoteDelivered() {
	if b.inflight > 0 {
		b.inflight--
	}
}

// Wait implements EdgeBackend.
func (b *LoopbackBackend) Wait(time.Duration) bool { return false }

// Stats implements EdgeBackend.
func (b *LoopbackBackend) Stats() BackendStats { return b.stats }

// Close implements EdgeBackend.
func (b *LoopbackBackend) Close() error { return nil }

// resultDeliveryObserver lets a backend learn when a scheduled result was
// handed to the strategy (loopback uses it to release queue slots).
type resultDeliveryObserver interface {
	NoteDelivered()
}
