package pipeline

import (
	"testing"

	"edgeis/internal/geom"
	"edgeis/internal/netsim"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
)

// internalFrames renders a small clip without importing backendtest (which
// imports this package).
func internalFrames(seed int64, n int) []*scene.Frame {
	w := scene.StreetScene(scene.PresetConfig{Seed: seed, ObjectCount: 2})
	cam := geom.StandardCamera(160, 120)
	return w.RenderSequence(cam, scene.InspectionRoute(scene.WalkSpeed), n)
}

func internalRequest(i int) *OffloadRequest {
	return &OffloadRequest{
		FrameIndex:   i,
		PayloadBytes: 20_000,
		Quality:      func(x, y int) float64 { return 1 },
	}
}

// TestSimBackendDroppedKeyframeInvalidatesCache pins the overflow rule:
// latest-wins dropping a decided keyframe invalidates the feature cache
// (its pyramid will never be computed), while dropping a warped frame
// leaves the cached keyframe intact.
func TestSimBackendDroppedKeyframeInvalidatesCache(t *testing.T) {
	frames := internalFrames(5, 8)
	b := NewSimBackend(SimBackendConfig{
		Profile:  netsim.DefaultProfile(netsim.WiFi5),
		Seed:     5,
		Keyframe: segmodel.KeyframePolicy{Interval: 2},
	})
	// queueDepth 1: every queued submit displaces the previous one.
	b.Bind(frames, 1)

	// Frame 0 starts immediately (cold keyframe) and holds the accelerator;
	// everything below queues behind it within its service time.
	b.Submit(internalRequest(0), 0)
	if !b.keyframe.cache.Valid() {
		t.Fatal("cache not primed by the first keyframe decision")
	}
	// Frame 1 (warp, age 1) queues; frame 2 hits the interval (keyframe) and
	// displaces frame 1 — a lost warp must keep the cache valid.
	b.Submit(internalRequest(1), 0)
	b.Submit(internalRequest(2), 0)
	if got := b.Stats().DroppedOffloads; got != 1 {
		t.Fatalf("drops after frame 2: %d, want 1", got)
	}
	if !b.keyframe.cache.Valid() {
		t.Error("dropping a warped frame invalidated the cache")
	}
	// Frame 3 (warp against frame 2's refresh) displaces frame 2 — a lost
	// keyframe must invalidate.
	b.Submit(internalRequest(3), 0)
	if got := b.Stats().DroppedOffloads; got != 2 {
		t.Fatalf("drops after frame 3: %d, want 2", got)
	}
	if b.keyframe.cache.Valid() {
		t.Error("dropping a decided keyframe left the cache valid")
	}
	// The next decision must therefore be a cold keyframe.
	b.Submit(internalRequest(4), 0)
	if n := len(b.waiting); n == 0 {
		t.Fatal("frame 4 did not queue")
	}
	last := b.waiting[len(b.waiting)-1]
	if !last.decision.Keyframe || last.decision.Reason != segmodel.KeyCold {
		t.Errorf("post-invalidation decision = %+v, want cold keyframe", last.decision)
	}
}

// TestLoopbackRejectedKeyframeInvalidatesCache pins the same rule on the
// loopback edge, whose overflow rejects the incoming offload: a rejected
// keyframe drops the cache, and the next admitted frame re-primes it.
func TestLoopbackRejectedKeyframeInvalidatesCache(t *testing.T) {
	frames := internalFrames(6, 12)
	b := NewLoopbackBackend(nil, 1, 6)
	b.SetKeyframePolicy(segmodel.KeyframePolicy{Interval: 8})
	b.Bind(frames, 1)

	// Frame 0 is served (cold keyframe) and pins the single in-flight slot.
	if got := len(b.Submit(internalRequest(0), 0)); got != 1 {
		t.Fatalf("frame 0 results = %d, want 1", got)
	}
	// Frames 1-7 are warp decisions rejected at the full queue: the cache
	// ages but stays valid.
	for i := 1; i < 8; i++ {
		if got := len(b.Submit(internalRequest(i), float64(i))); got != 0 {
			t.Fatalf("frame %d unexpectedly admitted", i)
		}
	}
	if !b.keyframe.cache.Valid() {
		t.Fatal("rejected warp frames invalidated the cache")
	}
	// Frame 8 hits the forced-keyframe interval; its rejection must
	// invalidate the cache.
	b.Submit(internalRequest(8), 8)
	if b.keyframe.cache.Valid() {
		t.Error("rejected keyframe left the cache valid")
	}
	// Free the slot; the next admitted frame is a cold keyframe and
	// re-primes the cache.
	b.NoteDelivered()
	if got := len(b.Submit(internalRequest(9), 9)); got != 1 {
		t.Fatalf("frame 9 results = %d, want 1", got)
	}
	if !b.keyframe.cache.Valid() {
		t.Error("served cold keyframe did not re-prime the cache")
	}
	if st := b.Stats(); st.DroppedOffloads != 8 || st.Results != 2 {
		t.Errorf("stats = drops %d results %d, want 8 and 2", st.DroppedOffloads, st.Results)
	}
}
