package pipeline

import "container/heap"

// eventKind orders simultaneous events. Edge results land before the frame
// work scheduled at the same instant (matching the legacy loop, which drained
// due results at every boundary before acting), and a frame's display
// deadline — which shares its timestamp with the next frame's arrival —
// resolves before that arrival.
type eventKind uint8

const (
	evEdgeResult eventKind = iota
	evDisplayDeadline
	evFrameArrival
)

// event is one entry on the engine's min-heap: a camera frame arriving, a
// display deadline, or an edge result delivery.
type event struct {
	at   float64
	kind eventKind
	// seq breaks exact (at, kind) ties in insertion order.
	seq uint64
	// frame identifies the camera frame for arrival/deadline events.
	frame int
	// res is the payload of an edge-result event.
	res EdgeResult
}

// eventQueue is a deterministic min-heap over (at, kind, seq).
type eventQueue struct {
	h   eventHeap
	seq uint64
}

func (q *eventQueue) push(ev event) {
	ev.seq = q.seq
	q.seq++
	heap.Push(&q.h, ev)
}

func (q *eventQueue) pop() event { return heap.Pop(&q.h).(event) }

func (q *eventQueue) peek() event { return q.h[0] }

func (q *eventQueue) len() int { return len(q.h) }

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	//edgeis:floateq compares stored event times verbatim; exact ties fall through to kind then seq
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
