// Serving-side telemetry. The evaluation types above score accuracy against
// ground truth; the types here summarize the edge serving layer (package
// edge): admission-queue depth, scheduling wait, and per-session serving
// rows. They are plain sample aggregators — the scheduler measures, metrics
// summarizes — so this package stays free of clocks and goroutines.

package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// distWindow bounds the samples a Dist retains for percentile queries. Count,
// mean and max stay exact over the whole stream; percentiles cover the most
// recent distWindow samples, so a long-lived server summarizes recent
// behaviour instead of growing without bound.
const distWindow = 1024

// Dist tracks a stream of float64 samples with bounded memory.
// The zero value is ready to use.
type Dist struct {
	n   int
	sum float64
	max float64
	// ring holds the most recent samples for percentile queries.
	ring []float64
	next int
}

// Add records one sample.
func (d *Dist) Add(v float64) {
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	if len(d.ring) < distWindow {
		d.ring = append(d.ring, v)
		return
	}
	d.ring[d.next] = v
	d.next = (d.next + 1) % distWindow
}

// Count returns the number of samples observed.
func (d *Dist) Count() int { return d.n }

// Mean returns the mean over every sample ever added.
func (d *Dist) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Max returns the largest sample ever added.
func (d *Dist) Max() float64 { return d.max }

// Quantile returns the q-quantile over the retained window of recent
// samples. Its behaviour is part of the SLO report contract and is fully
// deterministic for a given sample sequence:
//
//   - q is clamped to [0, 1]; Quantile(0) is the window minimum and
//     Quantile(1) the window maximum. Note Max() covers the whole stream
//     while Quantile(1) covers only the retained window.
//   - The estimator is nearest-rank with floor rounding: the window is
//     copied, sorted ascending, and element floor(q*(n-1)) returned. No
//     interpolation, so every reported quantile is an observed sample.
//   - Duplicate-heavy streams are handled by construction: sorting is the
//     only operation, so ties cannot reorder nondeterministically.
//   - An empty Dist reports 0; a single sample is every quantile.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.ring) == 0 {
		return 0
	}
	sorted := append([]float64(nil), d.ring...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// Percentile is Quantile under its historical name.
func (d *Dist) Percentile(p float64) float64 { return d.Quantile(p) }

// Merge folds src into d, the fleet-wide roll-up of per-replica
// distributions. Count, sum (hence Mean) and Max combine exactly. The
// percentile window is quantile-preserving: both windows' samples are
// pooled and, when the pool exceeds the retained-window bound, thinned by
// even rank striding over the sorted pool — so the merged window's
// quantiles are quantiles of the pooled samples, and the window minimum
// and maximum survive the thinning. Deterministic by construction (sort +
// fixed stride, no sampling randomness).
//
// Merging re-bases the window: the merged ring is sorted, not
// chronological, so a Dist that keeps receiving Add calls after a Merge
// evicts by rank position rather than age. Merge is meant for report-time
// aggregation of finished replicas; merging a Dist into itself is not
// supported.
func (d *Dist) Merge(src *Dist) {
	if src == nil || src.n == 0 {
		return
	}
	if d.n == 0 || src.max > d.max {
		d.max = src.max
	}
	d.n += src.n
	d.sum += src.sum
	pool := make([]float64, 0, len(d.ring)+len(src.ring))
	pool = append(pool, d.ring...)
	pool = append(pool, src.ring...)
	sort.Float64s(pool)
	if len(pool) > distWindow {
		thinned := make([]float64, distWindow)
		for i := range thinned {
			// Even rank stride over the sorted pool: rank 0 and rank
			// len(pool)-1 are always retained, so the window min and max
			// survive; interior ranks are spaced uniformly, preserving
			// quantiles up to the window's resolution.
			thinned[i] = pool[i*(len(pool)-1)/(distWindow-1)]
		}
		pool = thinned
	}
	d.ring = pool
	d.next = 0
}

// ServingRow is one session's line in a serving report.
type ServingRow struct {
	Session     string
	Served      int
	Rejected    int
	Shed        int
	MeanInferMs float64
	MeanWaitMs  float64
}

// ServingTable renders per-session serving rows as a report table, the
// serving counterpart of the accuracy Table above.
func ServingTable(title string, rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-28s %8s %9s %6s %10s %10s\n",
		"session", "served", "rejected", "shed", "infer ms", "wait ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8d %9d %6d %10.1f %10.2f\n",
			r.Session, r.Served, r.Rejected, r.Shed, r.MeanInferMs, r.MeanWaitMs)
	}
	return b.String()
}

// SizeHistogram renders launch-size counts (counts[i] = launches of size
// i+1) as "[1:12 4:3]", skipping empty buckets; all-empty renders "[]".
// Deterministic by construction: buckets print in ascending size order.
func SizeHistogram(counts []int) string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", i+1, n)
	}
	b.WriteByte(']')
	return b.String()
}
