package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"edgeis/internal/mask"
)

func rect(w, h, x0, y0, x1, y1 int) *mask.Bitmask {
	m := mask.New(w, h)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y)
		}
	}
	return m
}

func TestMatchFrameBasic(t *testing.T) {
	gt := rect(64, 64, 10, 10, 30, 30)
	pred := rect(64, 64, 12, 10, 30, 30) // close match
	ious := MatchFrame(
		[]PredictedMask{{Label: 1, Mask: pred}},
		[]TruthMask{{ObjectID: 1, Label: 1, Mask: gt}},
	)
	if len(ious) != 1 {
		t.Fatalf("len = %d", len(ious))
	}
	if ious[0] < 0.8 || ious[0] > 1 {
		t.Errorf("iou = %v", ious[0])
	}
}

func TestMatchFrameLabelMismatch(t *testing.T) {
	gt := rect(64, 64, 10, 10, 30, 30)
	ious := MatchFrame(
		[]PredictedMask{{Label: 2, Mask: gt.Clone()}},
		[]TruthMask{{ObjectID: 1, Label: 1, Mask: gt}},
	)
	if ious[0] != 0 {
		t.Errorf("wrong-label prediction scored %v", ious[0])
	}
}

func TestMatchFramePredictionUsedOnce(t *testing.T) {
	gt := rect(64, 64, 10, 10, 30, 30)
	// One prediction, two identical truths: the second scores zero.
	ious := MatchFrame(
		[]PredictedMask{{Label: 1, Mask: gt.Clone()}},
		[]TruthMask{
			{ObjectID: 1, Label: 1, Mask: gt},
			{ObjectID: 2, Label: 1, Mask: gt},
		},
	)
	if ious[0] != 1 || ious[1] != 0 {
		t.Errorf("ious = %v", ious)
	}
}

func TestMatchFrameEmpty(t *testing.T) {
	gt := rect(64, 64, 10, 10, 30, 30)
	ious := MatchFrame(nil, []TruthMask{{ObjectID: 1, Label: 1, Mask: gt}})
	if len(ious) != 1 || ious[0] != 0 {
		t.Errorf("ious = %v", ious)
	}
	if got := MatchFrame(nil, nil); len(got) != 0 {
		t.Error("no truths should yield no scores")
	}
}

func TestAccumulatorStats(t *testing.T) {
	a := NewAccumulator("x")
	a.AddFrame([]float64{0.9, 0.8}, 20)
	a.AddFrame([]float64{0.4, 0.76}, 40)
	if a.Samples() != 4 {
		t.Errorf("samples = %d", a.Samples())
	}
	if got := a.MeanIoU(); math.Abs(got-0.715) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := a.FalseRate(LooseThreshold); got != 0.25 {
		t.Errorf("false@0.5 = %v", got)
	}
	if got := a.FalseRate(StrictThreshold); got != 0.25 {
		t.Errorf("false@0.75 = %v", got)
	}
	if got := a.MeanLatencyMs(); got != 30 {
		t.Errorf("latency = %v", got)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator("empty")
	if a.MeanIoU() != 0 || a.FalseRate(0.5) != 0 || a.MeanLatencyMs() != 0 {
		t.Error("empty accumulator should return zeros")
	}
	if xs, ys := a.CDF(5); xs != nil || ys != nil {
		t.Error("empty CDF should be nil")
	}
	if a.LatencyPercentile(0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestCDFMonotone(t *testing.T) {
	a := NewAccumulator("c")
	a.AddFrame([]float64{0.1, 0.4, 0.6, 0.9, 0.95, 1.0}, 10)
	xs, ys := a.CDF(11)
	if len(xs) != 11 {
		t.Fatalf("points = %d", len(xs))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Errorf("CDF(1.0) = %v, want 1", ys[len(ys)-1])
	}
}

func TestCDFProperty(t *testing.T) {
	f := func(vals []float64) bool {
		a := NewAccumulator("q")
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(math.Abs(v), 1))
			}
		}
		if len(clean) == 0 {
			return true
		}
		a.AddFrame(clean, 1)
		_, ys := a.CDF(8)
		for i := 1; i < len(ys); i++ {
			if ys[i] < ys[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLatencyPercentile(t *testing.T) {
	a := NewAccumulator("p")
	for i := 1; i <= 100; i++ {
		a.AddFrame(nil, float64(i))
	}
	if got := a.LatencyPercentile(0.95); got < 90 || got > 100 {
		t.Errorf("p95 = %v", got)
	}
	if got := a.LatencyPercentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestMerge(t *testing.T) {
	a := NewAccumulator("a")
	a.AddFrame([]float64{1}, 10)
	b := NewAccumulator("b")
	b.AddFrame([]float64{0}, 30)
	a.Merge(b)
	if a.Samples() != 2 || a.MeanIoU() != 0.5 || a.MeanLatencyMs() != 20 {
		t.Errorf("merged: n=%d iou=%v lat=%v", a.Samples(), a.MeanIoU(), a.MeanLatencyMs())
	}
}

func TestTableAndRow(t *testing.T) {
	a := NewAccumulator("sys-a")
	a.AddFrame([]float64{0.9}, 20)
	tab := Table("demo", []*Accumulator{a})
	if !strings.Contains(tab, "sys-a") || !strings.Contains(tab, "demo") {
		t.Error("table missing fields")
	}
	if !strings.Contains(a.Row(), "sys-a") {
		t.Error("row missing name")
	}
}

func TestImprovementReduction(t *testing.T) {
	if got := Improvement(0.5, 0.6); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("improvement = %v", got)
	}
	if !math.IsInf(Improvement(0, 1), 1) {
		t.Error("zero-base improvement should be +Inf")
	}
	if got := Reduction(100, 50); got != 0.5 {
		t.Errorf("reduction = %v", got)
	}
	if Reduction(0, 10) != 0 {
		t.Error("zero-base reduction should be 0")
	}
}
