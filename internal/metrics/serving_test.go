package metrics

import (
	"strings"
	"testing"
)

func TestDistStreamingStats(t *testing.T) {
	var d Dist
	if d.Count() != 0 || d.Mean() != 0 || d.Max() != 0 || d.Percentile(0.5) != 0 {
		t.Fatal("zero Dist must report zeros")
	}
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if d.Count() != 100 {
		t.Errorf("count = %d", d.Count())
	}
	if d.Mean() != 50.5 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Max() != 100 {
		t.Errorf("max = %v", d.Max())
	}
	if p := d.Percentile(1); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := d.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := d.Percentile(0.5); p < 40 || p > 60 {
		t.Errorf("p50 = %v", p)
	}
}

// TestDistQuantileEdgeCases pins the documented Quantile contract the SLO
// reports depend on: empty and single-sample dists, the q=0/q=1 endpoints,
// out-of-range clamping, duplicate-heavy streams, and the floor-rounding
// nearest-rank estimator.
func TestDistQuantileEdgeCases(t *testing.T) {
	var empty Dist
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	var one Dist
	one.Add(7.25)
	for _, q := range []float64{-0.5, 0, 0.5, 0.99, 1, 1.5} {
		if got := one.Quantile(q); got != 7.25 {
			t.Errorf("single-sample Quantile(%v) = %v, want 7.25", q, got)
		}
	}

	var d Dist
	for _, v := range []float64{5, 1, 4, 2, 3} {
		d.Add(v)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want window min 1", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v, want window max 5", got)
	}
	// Clamping: out-of-range q behaves as the nearest endpoint.
	if got := d.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %v, want 1", got)
	}
	if got := d.Quantile(42); got != 5 {
		t.Errorf("Quantile(42) = %v, want 5", got)
	}
	// Nearest-rank floor: n=5, q=0.5 -> index floor(0.5*4)=2 -> value 3;
	// q=0.9 -> index floor(3.6)=3 -> value 4 (no interpolation).
	if got := d.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	if got := d.Quantile(0.9); got != 4 {
		t.Errorf("Quantile(0.9) = %v, want 4 (floor rank)", got)
	}

	// Duplicate-heavy stream: quantiles are observed samples and stay
	// byte-stable however the ties arrive.
	var dup Dist
	for i := 0; i < 90; i++ {
		dup.Add(10)
	}
	for i := 0; i < 10; i++ {
		dup.Add(20)
	}
	if got := dup.Quantile(0.5); got != 10 {
		t.Errorf("duplicate-heavy Quantile(0.5) = %v, want 10", got)
	}
	if got := dup.Quantile(0.95); got != 20 {
		t.Errorf("duplicate-heavy Quantile(0.95) = %v, want 20", got)
	}
	// Percentile is the same estimator under its historical name.
	if dup.Percentile(0.95) != dup.Quantile(0.95) {
		t.Error("Percentile must delegate to Quantile")
	}
}

// TestDistQuantileDeterministicAcrossRuns re-feeds the same stream and
// requires bit-identical quantiles — the property that makes two loadgen
// runs of the same seed produce identical SLO reports.
func TestDistQuantileDeterministicAcrossRuns(t *testing.T) {
	feed := func() *Dist {
		var d Dist
		v := 1.0
		for i := 0; i < 5000; i++ {
			// Deterministic pseudo-noise without math/rand.
			v = v*1103515245 + 12345
			v = float64(int64(v) % 1000003)
			d.Add(v)
		}
		return &d
	}
	a, b := feed(), feed()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v) differs across identical streams", q)
		}
	}
}

func TestDistWindowBoundsMemoryButKeepsExactMeanMax(t *testing.T) {
	var d Dist
	n := distWindow * 3
	for i := 0; i < n; i++ {
		d.Add(float64(i))
	}
	if d.Count() != n {
		t.Errorf("count = %d, want %d", d.Count(), n)
	}
	if d.Max() != float64(n-1) {
		t.Errorf("max = %v", d.Max())
	}
	if got, want := d.Mean(), float64(n-1)/2; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Percentiles cover the retained window: the low percentile must come
	// from the most recent samples, not the evicted early ones.
	if p := d.Percentile(0); p < float64(n-distWindow) {
		t.Errorf("windowed p0 = %v still sees evicted samples", p)
	}
	if len(d.ring) != distWindow {
		t.Errorf("ring grew to %d", len(d.ring))
	}
}

// TestDistMergeEdgeCases pins the Merge contract the fleet-wide stats
// roll-up relies on: exact count/mean/max combination, identity behaviour
// for empty operands, and quantile preservation through the rank-strided
// window thinning.
func TestDistMergeEdgeCases(t *testing.T) {
	// empty <- empty: still the zero Dist.
	var a, b Dist
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 0 || a.Mean() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("merging empties must leave the zero Dist")
	}

	// empty <- nonempty: wholesale adoption — every stat matches the source.
	var src Dist
	for _, v := range []float64{5, 1, 4, 2, 3} {
		src.Add(v)
	}
	var dst Dist
	dst.Merge(&src)
	if dst.Count() != src.Count() || dst.Mean() != src.Mean() || dst.Max() != src.Max() {
		t.Errorf("empty<-nonempty: count/mean/max = %d/%v/%v, want %d/%v/%v",
			dst.Count(), dst.Mean(), dst.Max(), src.Count(), src.Mean(), src.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if dst.Quantile(q) != src.Quantile(q) {
			t.Errorf("empty<-nonempty: Quantile(%v) = %v, want %v", q, dst.Quantile(q), src.Quantile(q))
		}
	}

	// nonempty <- empty: a no-op.
	before := dst
	dst.Merge(&Dist{})
	if dst.Count() != before.Count() || dst.Quantile(0.5) != before.Quantile(0.5) {
		t.Error("nonempty<-empty must be a no-op")
	}

	// Two disjoint replicas: pooled quantiles, exact combined moments. Max
	// must be the global max even when it lives in the merged-in source.
	var lo, hi Dist
	for i := 1; i <= 100; i++ {
		lo.Add(float64(i))       // 1..100
		hi.Add(float64(i + 100)) // 101..200
	}
	lo.Merge(&hi)
	if lo.Count() != 200 {
		t.Errorf("merged count = %d, want 200", lo.Count())
	}
	if lo.Mean() != 100.5 {
		t.Errorf("merged mean = %v, want 100.5", lo.Mean())
	}
	if lo.Max() != 200 {
		t.Errorf("merged max = %v, want 200", lo.Max())
	}
	if got := lo.Quantile(0); got != 1 {
		t.Errorf("merged Quantile(0) = %v, want 1", got)
	}
	if got := lo.Quantile(1); got != 200 {
		t.Errorf("merged Quantile(1) = %v, want 200", got)
	}
	// The median of the pooled 1..200 stream sits at the replica seam.
	if got := lo.Quantile(0.5); got < 95 || got > 105 {
		t.Errorf("merged Quantile(0.5) = %v, want ~100", got)
	}
}

// TestDistMergeOverflowThinsQuantilePreserving pools two full windows (2 x
// distWindow samples) and requires the thinned window to keep the pooled
// extremes and hold interior quantiles to the stride resolution.
func TestDistMergeOverflowThinsQuantilePreserving(t *testing.T) {
	var a, b Dist
	for i := 0; i < distWindow; i++ {
		a.Add(float64(2 * i))   // evens
		b.Add(float64(2*i + 1)) // odds
	}
	a.Merge(&b)
	if a.Count() != 2*distWindow {
		t.Errorf("count = %d", a.Count())
	}
	if len(a.ring) != distWindow {
		t.Errorf("merged ring grew to %d, want %d", len(a.ring), distWindow)
	}
	if got := a.Quantile(0); got != 0 {
		t.Errorf("pooled min lost: Quantile(0) = %v", got)
	}
	if got := a.Quantile(1); got != float64(2*distWindow-1) {
		t.Errorf("pooled max lost: Quantile(1) = %v", got)
	}
	// The pooled stream is 0..2N-1 uniformly, so every quantile q should
	// land within one stride (2 pooled ranks) of q*(2N-1).
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		want := q * float64(2*distWindow-1)
		if got := a.Quantile(q); got < want-4 || got > want+4 {
			t.Errorf("thinned Quantile(%v) = %v, want ~%v", q, got, want)
		}
	}
	// Determinism: the same merge on identical inputs is bit-identical.
	var c, d Dist
	for i := 0; i < distWindow; i++ {
		c.Add(float64(2 * i))
		d.Add(float64(2*i + 1))
	}
	c.Merge(&d)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if a.Quantile(q) != c.Quantile(q) {
			t.Fatalf("merge nondeterministic at Quantile(%v)", q)
		}
	}
}

func TestServingTable(t *testing.T) {
	out := ServingTable("sessions", []ServingRow{
		{Session: "1 10.0.0.1:555", Served: 12, Rejected: 2, MeanInferMs: 310.5, MeanWaitMs: 1.25},
	})
	for _, want := range []string{"== sessions ==", "1 10.0.0.1:555", "12", "310.5", "1.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
