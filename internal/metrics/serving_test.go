package metrics

import (
	"strings"
	"testing"
)

func TestDistStreamingStats(t *testing.T) {
	var d Dist
	if d.Count() != 0 || d.Mean() != 0 || d.Max() != 0 || d.Percentile(0.5) != 0 {
		t.Fatal("zero Dist must report zeros")
	}
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if d.Count() != 100 {
		t.Errorf("count = %d", d.Count())
	}
	if d.Mean() != 50.5 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Max() != 100 {
		t.Errorf("max = %v", d.Max())
	}
	if p := d.Percentile(1); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := d.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := d.Percentile(0.5); p < 40 || p > 60 {
		t.Errorf("p50 = %v", p)
	}
}

func TestDistWindowBoundsMemoryButKeepsExactMeanMax(t *testing.T) {
	var d Dist
	n := distWindow * 3
	for i := 0; i < n; i++ {
		d.Add(float64(i))
	}
	if d.Count() != n {
		t.Errorf("count = %d, want %d", d.Count(), n)
	}
	if d.Max() != float64(n-1) {
		t.Errorf("max = %v", d.Max())
	}
	if got, want := d.Mean(), float64(n-1)/2; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Percentiles cover the retained window: the low percentile must come
	// from the most recent samples, not the evicted early ones.
	if p := d.Percentile(0); p < float64(n-distWindow) {
		t.Errorf("windowed p0 = %v still sees evicted samples", p)
	}
	if len(d.ring) != distWindow {
		t.Errorf("ring grew to %d", len(d.ring))
	}
}

func TestServingTable(t *testing.T) {
	out := ServingTable("sessions", []ServingRow{
		{Session: "1 10.0.0.1:555", Served: 12, Rejected: 2, MeanInferMs: 310.5, MeanWaitMs: 1.25},
	})
	for _, want := range []string{"== sessions ==", "1 10.0.0.1:555", "12", "310.5", "1.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
