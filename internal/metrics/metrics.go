// Package metrics implements the evaluation statistics of Section VI:
// per-object IoU (Eq. 8), false rates at the loose (0.5) and strict (0.75)
// thresholds, accuracy CDFs (Fig. 9) and latency summaries (Fig. 11).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"edgeis/internal/mask"
)

// IoU thresholds of Section VI-C: "a loose threshold of 0.5 and a strict
// threshold of 0.75 ... IoU smaller than the threshold is called a false
// result".
const (
	LooseThreshold  = 0.5
	StrictThreshold = 0.75
)

// PredictedMask is one displayed instance mask.
type PredictedMask struct {
	Label int
	Mask  *mask.Bitmask
}

// TruthMask is one ground-truth instance.
type TruthMask struct {
	ObjectID int
	Label    int
	Mask     *mask.Bitmask
}

// MatchFrame scores a frame: each ground-truth object is matched to the
// same-label prediction with the highest IoU (greedy, predictions can serve
// once); unmatched objects score zero.
func MatchFrame(preds []PredictedMask, truths []TruthMask) []float64 {
	used := make([]bool, len(preds))
	out := make([]float64, 0, len(truths))
	for _, gt := range truths {
		best, bestIdx := 0.0, -1
		for i, p := range preds {
			if used[i] || p.Label != gt.Label || p.Mask == nil {
				continue
			}
			if iou := mask.IoU(p.Mask, gt.Mask); iou > best {
				best, bestIdx = iou, i
			}
		}
		if bestIdx >= 0 {
			used[bestIdx] = true
		}
		out = append(out, best)
	}
	return out
}

// Accumulator gathers per-object IoUs and per-frame latencies over a run.
type Accumulator struct {
	Name      string
	ious      []float64
	latencies []float64
}

// NewAccumulator creates a named accumulator.
func NewAccumulator(name string) *Accumulator {
	return &Accumulator{Name: name}
}

// AddFrame records the frame's per-object IoUs and its mobile-side latency.
func (a *Accumulator) AddFrame(ious []float64, latencyMs float64) {
	a.ious = append(a.ious, ious...)
	a.latencies = append(a.latencies, latencyMs)
}

// Samples returns the number of per-object IoU samples.
func (a *Accumulator) Samples() int { return len(a.ious) }

// MeanIoU returns the average per-object IoU.
func (a *Accumulator) MeanIoU() float64 {
	if len(a.ious) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range a.ious {
		sum += v
	}
	return sum / float64(len(a.ious))
}

// FalseRate returns the fraction of objects with IoU below the threshold.
func (a *Accumulator) FalseRate(threshold float64) float64 {
	if len(a.ious) == 0 {
		return 0
	}
	n := 0
	for _, v := range a.ious {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(a.ious))
}

// CDF returns (x, F(x)) pairs of the IoU distribution at the given
// resolution — the curves of Fig. 9.
func (a *Accumulator) CDF(points int) ([]float64, []float64) {
	if points <= 1 || len(a.ious) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), a.ious...)
	sort.Float64s(sorted)
	xs := make([]float64, points)
	ys := make([]float64, points)
	for i := 0; i < points; i++ {
		x := float64(i) / float64(points-1)
		xs[i] = x
		// Fraction of samples <= x.
		idx := sort.SearchFloat64s(sorted, x+1e-12)
		ys[i] = float64(idx) / float64(len(sorted))
	}
	return xs, ys
}

// MeanLatencyMs returns the mean per-frame mobile latency.
func (a *Accumulator) MeanLatencyMs() float64 {
	if len(a.latencies) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range a.latencies {
		sum += v
	}
	return sum / float64(len(a.latencies))
}

// LatencyPercentile returns the p-quantile (0..1) of frame latency.
func (a *Accumulator) LatencyPercentile(p float64) float64 {
	if len(a.latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), a.latencies...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Merge absorbs another accumulator's samples.
func (a *Accumulator) Merge(other *Accumulator) {
	a.ious = append(a.ious, other.ious...)
	a.latencies = append(a.latencies, other.latencies...)
}

// Row summarizes the accumulator as a report line.
func (a *Accumulator) Row() string {
	return fmt.Sprintf("%-22s IoU=%.3f false@0.5=%5.1f%% false@0.75=%5.1f%% latency=%5.1fms (n=%d)",
		a.Name, a.MeanIoU(), 100*a.FalseRate(LooseThreshold),
		100*a.FalseRate(StrictThreshold), a.MeanLatencyMs(), a.Samples())
}

// Table renders a uniform comparison table for several accumulators.
func Table(title string, accs []*Accumulator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-22s %8s %12s %13s %12s %8s\n",
		"system", "mean IoU", "false@0.5", "false@0.75", "latency ms", "samples")
	for _, a := range accs {
		fmt.Fprintf(&b, "%-22s %8.3f %11.1f%% %12.1f%% %12.1f %8d\n",
			a.Name, a.MeanIoU(), 100*a.FalseRate(LooseThreshold),
			100*a.FalseRate(StrictThreshold), a.MeanLatencyMs(), a.Samples())
	}
	return b.String()
}

// Improvement returns the relative change from base to improved (positive =
// improved is higher).
func Improvement(base, improved float64) float64 {
	if base == 0 {
		return math.Inf(1)
	}
	return (improved - base) / base
}

// Reduction returns the relative reduction from base to reduced (positive =
// reduced is lower).
func Reduction(base, reduced float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - reduced) / base
}
