// Package scene implements the synthetic 3-D world that substitutes for the
// paper's video datasets (DAVIS, KITTI, Xiph and the self-labeled AR clips).
// A World holds polyhedral objects with class labels and optional rigid
// motion, plus background surfaces carrying trackable texture points. Frames
// rendered through a pinhole camera yield pixel-exact ground-truth instance
// masks with occlusion, which every experiment uses as its reference.
package scene

import (
	"fmt"
	"math"
	"math/rand"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
)

// Class identifies an object category. The catalogue covers both the street
// scenes of the public datasets and the industrial equipment of the
// oil-field case study.
type Class int

// Object classes. Background is the zero value and never labels an instance.
const (
	Background Class = iota
	Person
	Car
	Truck
	Bus
	Bicycle
	Dog
	OilSeparator
	Tube
	Pump
	Valve
	Tank
	Gauge
	numClasses
)

var classNames = map[Class]string{
	Background:   "background",
	Person:       "person",
	Car:          "car",
	Truck:        "truck",
	Bus:          "bus",
	Bicycle:      "bicycle",
	Dog:          "dog",
	OilSeparator: "oil-separator",
	Tube:         "tube",
	Pump:         "pump",
	Valve:        "valve",
	Tank:         "tank",
	Gauge:        "gauge",
}

// String returns the lowercase class name.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// NumClasses returns the number of instance classes (excluding background).
func NumClasses() int { return int(numClasses) - 1 }

// Motion describes a rigid-body motion: constant linear velocity plus a
// constant angular velocity (axis-angle rate, rad/s) about the object
// center. The zero Motion leaves the object static.
type Motion struct {
	Velocity geom.Vec3 // m/s in world coordinates
	AngVel   geom.Vec3 // rad/s, axis-angle rate about the object center
	StartAt  float64   // seconds; motion is frozen before this time
}

// IsZero reports whether the motion leaves the object static.
func (m Motion) IsZero() bool {
	return m.Velocity == (geom.Vec3{}) && m.AngVel == (geom.Vec3{})
}

// Object is a box-shaped scene instance. The box is axis-aligned in the
// object's local frame; the pose at time t places it in the world.
type Object struct {
	ID     int
	Class  Class
	Center geom.Vec3 // world position at t=0
	Half   geom.Vec3 // half extents in the local frame
	Rot    geom.Mat3 // orientation at t=0
	Motion Motion
}

// PoseAt returns the object-to-world transform T_WO at time t.
func (o *Object) PoseAt(t float64) geom.Pose {
	dt := t - o.Motion.StartAt
	if dt < 0 || o.Motion.IsZero() {
		dt = math.Max(0, dt)
	}
	r := o.Rot
	c := o.Center
	if dt > 0 && !o.Motion.IsZero() {
		r = geom.Rodrigues(o.Motion.AngVel.Scale(dt)).Mul(o.Rot)
		c = o.Center.Add(o.Motion.Velocity.Scale(dt))
	}
	return geom.Pose{R: r, T: c}
}

// Dynamic reports whether the object ever moves.
func (o *Object) Dynamic() bool { return !o.Motion.IsZero() }

// Corners returns the eight box corners in world coordinates at time t.
func (o *Object) Corners(t float64) [8]geom.Vec3 {
	pose := o.PoseAt(t)
	var out [8]geom.Vec3
	i := 0
	for _, sx := range [2]float64{-1, 1} {
		for _, sy := range [2]float64{-1, 1} {
			for _, sz := range [2]float64{-1, 1} {
				local := geom.V3(sx*o.Half.X, sy*o.Half.Y, sz*o.Half.Z)
				out[i] = pose.Apply(local)
				i++
			}
		}
	}
	return out
}

// SurfacePoint is a trackable texture anchor: a fixed point on an object
// surface (or the static background) with a stable descriptor identity the
// synthetic feature extractor can re-detect across frames.
type SurfacePoint struct {
	ObjectID   int       // 0 for background
	Local      geom.Vec3 // position in the owner's local frame (world frame for background)
	Normal     geom.Vec3 // outward surface normal in the owner's local frame
	Descriptor uint64    // stable identity used for matching
}

// World is a complete synthetic scene: labeled objects plus background
// geometry carrying surface texture.
type World struct {
	Objects []*Object
	// Points carries all surface texture anchors, background first.
	Points []SurfacePoint
	// Bounds is the half-extent of the ground plane in X and Z.
	Bounds float64
}

// WorldConfig controls procedural world generation.
type WorldConfig struct {
	Seed              int64
	Bounds            float64 // ground half-extent (m); default 30
	BackgroundPoints  int     // texture anchors on ground/walls; default 600
	PointsPerObject   int     // texture anchors per object; default 120
	ContourPointBoost int     // extra anchors near box edges per object; default 40
}

func (c *WorldConfig) applyDefaults() {
	if c.Bounds == 0 {
		c.Bounds = 30
	}
	if c.BackgroundPoints == 0 {
		c.BackgroundPoints = 600
	}
	if c.PointsPerObject == 0 {
		c.PointsPerObject = 120
	}
	if c.ContourPointBoost == 0 {
		c.ContourPointBoost = 40
	}
}

// NewWorld builds a world containing the given objects and procedurally
// generated surface texture. Object IDs are assigned (1-based) if unset.
func NewWorld(cfg WorldConfig, objects []*Object) *World {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Objects: objects, Bounds: cfg.Bounds}
	for i, o := range objects {
		if o.ID == 0 {
			o.ID = i + 1
		}
		if o.Rot == (geom.Mat3{}) {
			o.Rot = geom.Identity3()
		}
	}
	w.Points = make([]SurfacePoint, 0,
		cfg.BackgroundPoints+len(objects)*(cfg.PointsPerObject+cfg.ContourPointBoost))
	w.generateBackgroundPoints(cfg, rng)
	for _, o := range objects {
		w.generateObjectPoints(o, cfg, rng)
	}
	return w
}

// generateBackgroundPoints scatters anchors over the ground plane (y=0) and
// two far walls so that every viewpoint sees static texture — the points the
// VO prefers for ego-motion estimation ("pixels of background are more
// likely to be static", Section III-A).
func (w *World) generateBackgroundPoints(cfg WorldConfig, rng *rand.Rand) {
	n := cfg.BackgroundPoints
	ground := n * 2 / 3
	for i := 0; i < ground; i++ {
		w.Points = append(w.Points, SurfacePoint{
			ObjectID:   0,
			Local:      geom.V3((rng.Float64()*2-1)*cfg.Bounds, 0, (rng.Float64()*2-1)*cfg.Bounds),
			Normal:     geom.V3(0, 1, 0),
			Descriptor: rng.Uint64(),
		})
	}
	// Walls at +/-Bounds in Z facing inward, up to 6m high.
	for i := ground; i < n; i++ {
		z := cfg.Bounds
		normal := geom.V3(0, 0, -1)
		if i%2 == 0 {
			z = -cfg.Bounds
			normal = geom.V3(0, 0, 1)
		}
		w.Points = append(w.Points, SurfacePoint{
			ObjectID:   0,
			Local:      geom.V3((rng.Float64()*2-1)*cfg.Bounds, rng.Float64()*6, z),
			Normal:     normal,
			Descriptor: rng.Uint64(),
		})
	}
}

// generateObjectPoints scatters anchors over the six box faces. A fraction
// of the anchors hug face borders, mirroring edgeIS's preference for
// features "near the edge of the mask" (Section III-A).
func (w *World) generateObjectPoints(o *Object, cfg WorldConfig, rng *rand.Rand) {
	sample := func(edgeBiased bool) SurfacePoint {
		face := rng.Intn(6)
		axis := face / 2 // 0=x, 1=y, 2=z
		sign := 1 - 2*float64(face%2)
		u := rng.Float64()*2 - 1
		v := rng.Float64()*2 - 1
		if edgeBiased {
			// Push one coordinate toward a border.
			if rng.Intn(2) == 0 {
				u = math.Copysign(0.85+0.15*rng.Float64(), u)
			} else {
				v = math.Copysign(0.85+0.15*rng.Float64(), v)
			}
		}
		var local, normal geom.Vec3
		switch axis {
		case 0:
			local = geom.V3(sign*o.Half.X, u*o.Half.Y, v*o.Half.Z)
			normal = geom.V3(sign, 0, 0)
		case 1:
			local = geom.V3(u*o.Half.X, sign*o.Half.Y, v*o.Half.Z)
			normal = geom.V3(0, sign, 0)
		default:
			local = geom.V3(u*o.Half.X, v*o.Half.Y, sign*o.Half.Z)
			normal = geom.V3(0, 0, sign)
		}
		return SurfacePoint{
			ObjectID:   o.ID,
			Local:      local,
			Normal:     normal,
			Descriptor: rng.Uint64(),
		}
	}
	for i := 0; i < cfg.PointsPerObject; i++ {
		w.Points = append(w.Points, sample(false))
	}
	for i := 0; i < cfg.ContourPointBoost; i++ {
		w.Points = append(w.Points, sample(true))
	}
}

// ObjectByID returns the object with the given ID, or nil.
func (w *World) ObjectByID(id int) *Object {
	for _, o := range w.Objects {
		if o.ID == id {
			return o
		}
	}
	return nil
}

// DynamicObjectCount returns how many objects carry nonzero motion.
func (w *World) DynamicObjectCount() int {
	n := 0
	for _, o := range w.Objects {
		if o.Dynamic() {
			n++
		}
	}
	return n
}

// WorldPointAt returns the world position and normal of surface point i at
// time t, resolving object motion.
func (w *World) WorldPointAt(i int, t float64) (pos, normal geom.Vec3) {
	sp := w.Points[i]
	if sp.ObjectID == 0 {
		return sp.Local, sp.Normal
	}
	o := w.ObjectByID(sp.ObjectID)
	if o == nil {
		return sp.Local, sp.Normal
	}
	pose := o.PoseAt(t)
	return pose.Apply(sp.Local), pose.R.MulVec(sp.Normal)
}

// GroundTruth is the rendered ground truth for a single object instance in
// one frame.
type GroundTruth struct {
	ObjectID int
	Class    Class
	Visible  *mask.Bitmask // silhouette minus occluders
	Full     *mask.Bitmask // silhouette ignoring occlusion
	Depth    float64       // distance from camera to object center
	Box      mask.Box      // bounding box of Visible
	Dynamic  bool
}

// Frame is one rendered camera frame with full ground truth.
type Frame struct {
	Index   int
	Time    float64
	TCW     geom.Pose // world-to-camera pose
	Camera  geom.Camera
	Objects []GroundTruth // sorted near-to-far, only non-empty Visible
}

// LabelMask returns the union of visible masks for all instances of class c
// (or all classes when c is Background).
func (f *Frame) LabelMask(c Class) *mask.Bitmask {
	out := mask.New(f.Camera.Width, f.Camera.Height)
	for _, gt := range f.Objects {
		if c == Background || gt.Class == c {
			out.Union(gt.Visible)
		}
	}
	return out
}

// GroundTruthFor returns the ground truth of an object in this frame, or nil.
func (f *Frame) GroundTruthFor(objectID int) *GroundTruth {
	for i := range f.Objects {
		if f.Objects[i].ObjectID == objectID {
			return &f.Objects[i]
		}
	}
	return nil
}

// minVisibleArea is the smallest visible pixel area for an instance to count
// as present in a frame's ground truth — objects below ~9x9 pixels are too
// small to annotate meaningfully (the paper's hand-labeled masks share this
// practical floor).
const minVisibleArea = 80

// Render projects the world into the camera at time t and computes visible
// ground-truth masks using a painter's pass (near occludes far).
func (w *World) Render(cam geom.Camera, tcw geom.Pose, t float64, index int) *Frame {
	f := &Frame{Index: index, Time: t, TCW: tcw, Camera: cam}

	type proj struct {
		obj   *Object
		sil   *mask.Bitmask
		depth float64
	}
	projs := make([]proj, 0, len(w.Objects))
	for _, o := range w.Objects {
		sil, depth, ok := projectSilhouette(o, cam, tcw, t)
		if !ok {
			continue
		}
		projs = append(projs, proj{obj: o, sil: sil, depth: depth})
	}
	// Near-to-far painter ordering.
	for i := 1; i < len(projs); i++ {
		for j := i; j > 0 && projs[j].depth < projs[j-1].depth; j-- {
			projs[j], projs[j-1] = projs[j-1], projs[j]
		}
	}
	occluded := mask.New(cam.Width, cam.Height)
	for _, p := range projs {
		visible := p.sil.Clone()
		visible.Subtract(occluded)
		occluded.Union(p.sil)
		if visible.Area() < minVisibleArea {
			continue
		}
		f.Objects = append(f.Objects, GroundTruth{
			ObjectID: p.obj.ID,
			Class:    p.obj.Class,
			Visible:  visible,
			Full:     p.sil,
			Depth:    p.depth,
			Box:      visible.BoundingBox(),
			Dynamic:  p.obj.Dynamic(),
		})
	}
	return f
}

// projectSilhouette projects the box corners and fills the convex hull.
// Objects with any corner behind the near plane are skipped (conservative
// clipping; scene layouts keep subjects comfortably in front).
func projectSilhouette(o *Object, cam geom.Camera, tcw geom.Pose, t float64) (*mask.Bitmask, float64, bool) {
	corners := o.Corners(t)
	pts := make([]geom.Vec2, 0, 8)
	for _, c := range corners {
		pc := tcw.Apply(c)
		if pc.Z < 0.05 {
			return nil, 0, false
		}
		px, err := cam.Project(pc)
		if err != nil {
			return nil, 0, false
		}
		pts = append(pts, px)
	}
	hull := geom.ConvexHull(pts)
	if len(hull) < 3 {
		return nil, 0, false
	}
	// Quick reject: hull entirely outside the image.
	inAny := false
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range hull {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX >= 0 && minX < float64(cam.Width) && maxY >= 0 && minY < float64(cam.Height) {
		inAny = true
	}
	if !inAny {
		return nil, 0, false
	}
	sil := mask.FillPolygon(hull, cam.Width, cam.Height)
	if sil.Empty() {
		return nil, 0, false
	}
	depth := tcw.Apply(o.PoseAt(t).T).Z
	return sil, depth, true
}
