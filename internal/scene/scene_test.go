package scene

import (
	"math"
	"testing"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
)

func testCamera() geom.Camera { return geom.StandardCamera(320, 240) }

func simpleWorld() *World {
	return NewWorld(WorldConfig{Seed: 1}, []*Object{
		{Class: Car, Center: geom.V3(0, 1, 8), Half: geom.V3(1.5, 1, 1)},
	})
}

func TestClassString(t *testing.T) {
	if Car.String() != "car" {
		t.Errorf("Car = %q", Car.String())
	}
	if Background.String() != "background" {
		t.Errorf("Background = %q", Background.String())
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still stringify")
	}
	if NumClasses() < 10 {
		t.Errorf("NumClasses = %d", NumClasses())
	}
}

func TestObjectPoseStatic(t *testing.T) {
	o := &Object{Center: geom.V3(1, 2, 3), Half: geom.V3(1, 1, 1), Rot: geom.Identity3()}
	p0 := o.PoseAt(0)
	p5 := o.PoseAt(5)
	if p0.T != p5.T {
		t.Error("static object moved")
	}
	if o.Dynamic() {
		t.Error("static object reported dynamic")
	}
}

func TestObjectPoseDynamic(t *testing.T) {
	o := &Object{
		Center: geom.V3(0, 0, 5), Half: geom.V3(1, 1, 1), Rot: geom.Identity3(),
		Motion: Motion{Velocity: geom.V3(1, 0, 0), StartAt: 1},
	}
	if !o.Dynamic() {
		t.Error("dynamic object reported static")
	}
	// Frozen before StartAt.
	if got := o.PoseAt(0.5).T; got != geom.V3(0, 0, 5) {
		t.Errorf("pose before start = %+v", got)
	}
	// Moved 2 m after 2 s of motion.
	got := o.PoseAt(3).T
	want := geom.V3(2, 0, 5)
	if got.DistTo(want) > 1e-9 {
		t.Errorf("pose = %+v, want %+v", got, want)
	}
}

func TestObjectCorners(t *testing.T) {
	o := &Object{Center: geom.V3(0, 0, 0), Half: geom.V3(1, 2, 3), Rot: geom.Identity3()}
	corners := o.Corners(0)
	for _, c := range corners {
		if math.Abs(c.X) != 1 || math.Abs(c.Y) != 2 || math.Abs(c.Z) != 3 {
			t.Fatalf("unexpected corner %+v", c)
		}
	}
}

func TestNewWorldAssignsIDs(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 1}, []*Object{
		{Class: Car, Center: geom.V3(0, 1, 8), Half: geom.V3(1, 1, 1)},
		{Class: Person, Center: geom.V3(3, 1, 8), Half: geom.V3(0.3, 0.9, 0.3)},
	})
	if w.Objects[0].ID != 1 || w.Objects[1].ID != 2 {
		t.Errorf("IDs = %d, %d", w.Objects[0].ID, w.Objects[1].ID)
	}
	if w.ObjectByID(2) != w.Objects[1] {
		t.Error("ObjectByID failed")
	}
	if w.ObjectByID(99) != nil {
		t.Error("ObjectByID should return nil for unknown")
	}
}

func TestWorldHasSurfacePoints(t *testing.T) {
	w := simpleWorld()
	var bg, obj int
	for _, p := range w.Points {
		if p.ObjectID == 0 {
			bg++
		} else {
			obj++
		}
	}
	if bg < 100 {
		t.Errorf("background points = %d", bg)
	}
	if obj < 100 {
		t.Errorf("object points = %d", obj)
	}
	// Object points lie on the box surface.
	o := w.Objects[0]
	for _, p := range w.Points {
		if p.ObjectID != o.ID {
			continue
		}
		onFace := math.Abs(math.Abs(p.Local.X)-o.Half.X) < 1e-9 ||
			math.Abs(math.Abs(p.Local.Y)-o.Half.Y) < 1e-9 ||
			math.Abs(math.Abs(p.Local.Z)-o.Half.Z) < 1e-9
		if !onFace {
			t.Fatalf("surface point off the box: %+v", p.Local)
		}
	}
}

func TestWorldPointAtTracksMotion(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 2}, []*Object{
		{Class: Car, Center: geom.V3(0, 1, 8), Half: geom.V3(1, 1, 1),
			Motion: Motion{Velocity: geom.V3(1, 0, 0)}},
	})
	// Find an object point.
	idx := -1
	for i, p := range w.Points {
		if p.ObjectID != 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no object points")
	}
	p0, _ := w.WorldPointAt(idx, 0)
	p2, _ := w.WorldPointAt(idx, 2)
	if math.Abs(p2.X-p0.X-2) > 1e-9 {
		t.Errorf("point did not move with object: %v -> %v", p0, p2)
	}
}

func TestLookAtPose(t *testing.T) {
	eye := geom.V3(0, 1.6, -5)
	target := geom.V3(0, 1, 8)
	tcw := LookAtPose(eye, target)
	// The target should project near the image center ray: its camera
	// coordinates should have small X, Y relative to Z.
	pc := tcw.Apply(target)
	if pc.Z <= 0 {
		t.Fatalf("target behind camera: %+v", pc)
	}
	if math.Abs(pc.X) > 1e-9 || math.Abs(pc.X)/pc.Z > 0.01 {
		t.Errorf("target off-axis in X: %+v", pc)
	}
	// The camera center must map to the origin.
	if got := tcw.Apply(eye); got.Norm() > 1e-9 {
		t.Errorf("eye maps to %+v", got)
	}
	// Rotation must be orthonormal.
	rrt := tcw.R.Mul(tcw.R.Transpose())
	for i, v := range geom.Identity3() {
		if math.Abs(rrt[i]-v) > 1e-9 {
			t.Fatal("rotation not orthonormal")
		}
	}
}

func TestLookAtPoseDegenerate(t *testing.T) {
	// Looking straight down must not produce NaNs.
	tcw := LookAtPose(geom.V3(0, 5, 0), geom.V3(0, 0, 0))
	for _, v := range tcw.R {
		if math.IsNaN(v) {
			t.Fatal("NaN in straight-down pose")
		}
	}
}

func TestRenderSingleObject(t *testing.T) {
	w := simpleWorld()
	cam := testCamera()
	tcw := LookAtPose(geom.V3(0, 1.6, 0), geom.V3(0, 1, 8))
	f := w.Render(cam, tcw, 0, 0)
	if len(f.Objects) != 1 {
		t.Fatalf("rendered %d objects, want 1", len(f.Objects))
	}
	gt := f.Objects[0]
	if gt.Class != Car || gt.ObjectID != 1 {
		t.Errorf("gt = %+v", gt)
	}
	if gt.Visible.Area() < 100 {
		t.Errorf("visible area = %d, too small", gt.Visible.Area())
	}
	if gt.Depth < 7 || gt.Depth > 9 {
		t.Errorf("depth = %v, want ~8", gt.Depth)
	}
	if gt.Box.Empty() {
		t.Error("empty bounding box")
	}
	// The mask should be centered horizontally.
	c, _ := gt.Visible.CenterOfMass()
	if math.Abs(c.X-160) > 20 {
		t.Errorf("mask center X = %v, want ~160", c.X)
	}
}

func TestRenderOcclusion(t *testing.T) {
	// Two boxes on the same ray: the near one occludes the far one.
	w := NewWorld(WorldConfig{Seed: 3}, []*Object{
		{Class: Car, Center: geom.V3(0, 1, 12), Half: geom.V3(2, 1.2, 1)},
		{Class: Person, Center: geom.V3(0, 1, 6), Half: geom.V3(0.4, 0.8, 0.3)},
	})
	cam := testCamera()
	tcw := LookAtPose(geom.V3(0, 1.2, 0), geom.V3(0, 1, 12))
	f := w.Render(cam, tcw, 0, 0)
	if len(f.Objects) != 2 {
		t.Fatalf("rendered %d objects", len(f.Objects))
	}
	var near, far *GroundTruth
	for i := range f.Objects {
		switch f.Objects[i].Class {
		case Person:
			near = &f.Objects[i]
		case Car:
			far = &f.Objects[i]
		}
	}
	if near == nil || far == nil {
		t.Fatal("missing object")
	}
	// Far object loses pixels to the near one.
	if far.Visible.Area() >= far.Full.Area() {
		t.Error("occlusion did not remove pixels")
	}
	// Near object keeps its full silhouette.
	if near.Visible.Area() != near.Full.Area() {
		t.Error("near object should be unoccluded")
	}
	// Visible masks are disjoint.
	inter := near.Visible.Clone()
	inter.Intersect(far.Visible)
	if inter.Area() != 0 {
		t.Error("visible masks overlap")
	}
}

func TestRenderBehindCamera(t *testing.T) {
	w := simpleWorld()
	cam := testCamera()
	// Face away from the object.
	tcw := LookAtPose(geom.V3(0, 1.6, 0), geom.V3(0, 1, -8))
	f := w.Render(cam, tcw, 0, 0)
	if len(f.Objects) != 0 {
		t.Errorf("rendered %d objects behind camera", len(f.Objects))
	}
}

func TestFrameHelpers(t *testing.T) {
	w := simpleWorld()
	cam := testCamera()
	tcw := LookAtPose(geom.V3(0, 1.6, 0), geom.V3(0, 1, 8))
	f := w.Render(cam, tcw, 0, 0)
	lm := f.LabelMask(Car)
	if got := mask.IoU(lm, f.Objects[0].Visible); got != 1 {
		t.Errorf("label mask IoU = %v", got)
	}
	if !f.LabelMask(Person).Empty() {
		t.Error("no person in scene")
	}
	if f.GroundTruthFor(1) == nil {
		t.Error("GroundTruthFor(1) = nil")
	}
	if f.GroundTruthFor(42) != nil {
		t.Error("GroundTruthFor(42) should be nil")
	}
}

func TestWaypointPath(t *testing.T) {
	p := WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(0, 1.6, 0), geom.V3(10, 1.6, 0)},
		Target:    geom.V3(5, 1, 20),
		Speed:     2,
	}
	if got := p.Duration(); math.Abs(got-5) > 1e-9 {
		t.Errorf("duration = %v, want 5", got)
	}
	// Midpoint at t=2.5.
	eye := p.PoseAt(2.5).CameraCenter()
	if math.Abs(eye.X-5) > 1e-6 {
		t.Errorf("eye.X = %v, want 5", eye.X)
	}
	// Clamp past the end.
	eyeEnd := p.PoseAt(100).CameraCenter()
	if math.Abs(eyeEnd.X-10) > 1e-6 {
		t.Errorf("end eye.X = %v, want 10", eyeEnd.X)
	}
}

func TestWaypointPathBob(t *testing.T) {
	p := InspectionRoute(WalkSpeed)
	heights := map[string]bool{}
	for i := 0; i < 30; i++ {
		eye := p.PoseAt(float64(i) / FrameRate).CameraCenter()
		heights[formatHeight(eye.Y)] = true
	}
	if len(heights) < 3 {
		t.Error("head bob produced no height variation")
	}
}

func formatHeight(h float64) string {
	return string(rune(int(h * 1000))) // bucket by mm
}

func TestOrbitPath(t *testing.T) {
	o := OrbitPath{Center: geom.V3(0, 1, 0), Radius: 5, Height: 1.6, AngVel: 0.5, Length: 10}
	if o.Duration() != 10 {
		t.Error("duration")
	}
	for _, tt := range []float64{0, 1, 3, 7} {
		eye := o.PoseAt(tt).CameraCenter()
		r := math.Hypot(eye.X, eye.Z)
		if math.Abs(r-5) > 1e-6 {
			t.Errorf("t=%v: radius = %v", tt, r)
		}
	}
}

func TestRenderSequence(t *testing.T) {
	w := StreetScene(PresetConfig{Seed: 5, ObjectCount: 3})
	cam := testCamera()
	frames := w.RenderSequence(cam, InspectionRoute(WalkSpeed), 10)
	if len(frames) != 10 {
		t.Fatalf("got %d frames", len(frames))
	}
	rendered := 0
	for i, f := range frames {
		if f.Index != i {
			t.Errorf("frame %d has index %d", i, f.Index)
		}
		rendered += len(f.Objects)
	}
	if rendered == 0 {
		t.Error("no objects rendered along the route")
	}
}

func TestPresets(t *testing.T) {
	tests := []struct {
		name  string
		build func(PresetConfig) *World
	}{
		{"street", StreetScene},
		{"indoor", IndoorScene},
		{"industrial", IndustrialScene},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := tt.build(PresetConfig{Seed: 7, ObjectCount: 5, DynamicCount: 2})
			if len(w.Objects) != 5 {
				t.Fatalf("%d objects", len(w.Objects))
			}
			if len(w.Points) == 0 {
				t.Fatal("no surface points")
			}
			// IDs unique.
			seen := map[int]bool{}
			for _, o := range w.Objects {
				if seen[o.ID] {
					t.Fatal("duplicate ID")
				}
				seen[o.ID] = true
			}
		})
	}
	// Industrial preset ignores DynamicCount (static equipment).
	w := IndustrialScene(PresetConfig{Seed: 1, ObjectCount: 4, DynamicCount: 2})
	if w.DynamicObjectCount() != 0 {
		t.Error("industrial scene should be static")
	}
	// Street honors it.
	ws := StreetScene(PresetConfig{Seed: 1, ObjectCount: 4, DynamicCount: 2})
	if ws.DynamicObjectCount() != 2 {
		t.Errorf("street dynamic = %d", ws.DynamicObjectCount())
	}
}

func TestGaitSpeedOrdering(t *testing.T) {
	if !(WalkSpeed < StrideSpeed && StrideSpeed < JogSpeed) {
		t.Error("gait speeds must be increasing")
	}
}

func TestRenderVisibleMasksAlwaysDisjoint(t *testing.T) {
	// Property: across an entire clip, the visible ground-truth masks of a
	// frame never overlap (the painter pass guarantees exclusivity).
	w := StreetScene(PresetConfig{Seed: 31, ObjectCount: 6, DynamicCount: 2})
	cam := testCamera()
	frames := w.RenderSequence(cam, InspectionRoute(WalkSpeed), 45)
	for _, f := range frames {
		occupied := mask.New(cam.Width, cam.Height)
		for _, gt := range f.Objects {
			overlap := occupied.Clone()
			overlap.Intersect(gt.Visible)
			if overlap.Area() != 0 {
				t.Fatalf("frame %d: overlapping visible masks", f.Index)
			}
			occupied.Union(gt.Visible)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	build := func() *Frame {
		w := StreetScene(PresetConfig{Seed: 33, ObjectCount: 4})
		cam := testCamera()
		return w.Render(cam, InspectionRoute(WalkSpeed).PoseAt(1.0), 1.0, 30)
	}
	a, b := build(), build()
	if len(a.Objects) != len(b.Objects) {
		t.Fatal("nondeterministic object count")
	}
	for i := range a.Objects {
		if mask.IoU(a.Objects[i].Visible, b.Objects[i].Visible) != 1 {
			t.Fatal("nondeterministic mask")
		}
	}
}

func TestRenderVisibleSubsetOfFull(t *testing.T) {
	w := StreetScene(PresetConfig{Seed: 35, ObjectCount: 5})
	cam := testCamera()
	frames := w.RenderSequence(cam, InspectionRoute(WalkSpeed), 30)
	for _, f := range frames {
		for _, gt := range f.Objects {
			diff := gt.Visible.Clone()
			diff.Subtract(gt.Full)
			if diff.Area() != 0 {
				t.Fatalf("frame %d: visible mask exceeds full silhouette", f.Index)
			}
		}
	}
}
