package scene

import (
	"math"
	"math/rand"

	"edgeis/internal/geom"
)

// PresetConfig parameterizes the procedural scene builders.
type PresetConfig struct {
	Seed         int64
	ObjectCount  int     // number of instances; builders clamp to layout capacity
	DynamicCount int     // how many objects move (clamped to ObjectCount)
	DynamicSpeed float64 // m/s for moving objects; default 0.8
	DynamicStart float64 // seconds before motion begins; default 1.0
}

func (c *PresetConfig) applyDefaults() {
	if c.ObjectCount == 0 {
		c.ObjectCount = 3
	}
	if c.DynamicSpeed == 0 {
		c.DynamicSpeed = 0.8
	}
	if c.DynamicStart == 0 {
		c.DynamicStart = 1.0
	}
	if c.DynamicCount > c.ObjectCount {
		c.DynamicCount = c.ObjectCount
	}
}

// StreetScene lays out cars, trucks and people along a road — the KITTI-like
// outdoor configuration.
func StreetScene(cfg PresetConfig) *World {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := []Class{Car, Truck, Person, Bus, Bicycle, Car, Person}
	sizes := map[Class]geom.Vec3{
		Car:     geom.V3(2.0, 0.7, 0.9),
		Truck:   geom.V3(3.2, 1.4, 1.2),
		Bus:     geom.V3(5.0, 1.5, 1.3),
		Person:  geom.V3(0.35, 0.95, 0.25),
		Bicycle: geom.V3(0.9, 0.55, 0.25),
		Dog:     geom.V3(0.45, 0.35, 0.2),
	}
	objects := make([]*Object, 0, cfg.ObjectCount)
	for i := 0; i < cfg.ObjectCount; i++ {
		cls := classes[i%len(classes)]
		half := sizes[cls]
		// Stagger along the +Z corridor with lateral jitter; the subjects
		// stay within the near field the way the paper's clips frame their
		// objects of interest.
		x := -4.5 + float64(i%3)*4.5 + rng.Float64()*1.5
		z := 7.0 + float64(i)*1.8 + rng.Float64()*1.2
		obj := &Object{
			Class:  cls,
			Center: geom.V3(x, half.Y, z),
			Half:   half,
			Rot:    geom.RotY(rng.Float64() * 0.6),
		}
		if i < cfg.DynamicCount {
			dir := geom.V3(1, 0, 0)
			if i%2 == 1 {
				dir = geom.V3(-0.7, 0, 0.3).Normalized()
			}
			obj.Motion = Motion{
				Velocity: dir.Scale(cfg.DynamicSpeed),
				AngVel:   geom.V3(0, 0.1, 0),
				StartAt:  cfg.DynamicStart,
			}
		}
		objects = append(objects, obj)
	}
	return NewWorld(WorldConfig{Seed: cfg.Seed}, objects)
}

// IndoorScene scatters furniture-scale boxes in a room — the DAVIS/AR-clip
// style indoor configuration.
func IndoorScene(cfg PresetConfig) *World {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	objects := make([]*Object, 0, cfg.ObjectCount)
	classes := []Class{Dog, Person, Bicycle, Dog, Person}
	for i := 0; i < cfg.ObjectCount; i++ {
		cls := classes[i%len(classes)]
		half := geom.V3(0.3+rng.Float64()*0.3, 0.3+rng.Float64()*0.5, 0.25)
		angle := float64(i) * 0.9
		obj := &Object{
			Class:  cls,
			Center: geom.V3(3.5*math.Cos(angle), half.Y, 5.0+2.5*math.Sin(angle)),
			Half:   half,
			Rot:    geom.RotY(rng.Float64()),
		}
		if i < cfg.DynamicCount {
			obj.Motion = Motion{
				Velocity: geom.V3(cfg.DynamicSpeed*0.5, 0, cfg.DynamicSpeed*0.3),
				AngVel:   geom.V3(0, 0.25, 0),
				StartAt:  cfg.DynamicStart,
			}
		}
		objects = append(objects, obj)
	}
	return NewWorld(WorldConfig{Seed: cfg.Seed + 17, Bounds: 12}, objects)
}

// IndustrialScene arranges oil-field equipment (separators, tanks, pumps,
// tubes) — the deployment scenario of Fig. 1 and Fig. 17.
func IndustrialScene(cfg PresetConfig) *World {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	type unit struct {
		class Class
		half  geom.Vec3
	}
	units := []unit{
		{OilSeparator, geom.V3(1.6, 1.1, 1.0)},
		{Tank, geom.V3(1.2, 1.8, 1.2)},
		{Pump, geom.V3(0.6, 0.5, 0.5)},
		{Tube, geom.V3(2.4, 0.28, 0.28)},
		{Valve, geom.V3(0.45, 0.45, 0.35)},
		{Gauge, geom.V3(0.35, 0.35, 0.18)},
	}
	objects := make([]*Object, 0, cfg.ObjectCount)
	for i := 0; i < cfg.ObjectCount; i++ {
		u := units[i%len(units)]
		row, col := i/3, i%3
		obj := &Object{
			Class:  u.class,
			Center: geom.V3(-5+float64(col)*5+rng.Float64(), u.half.Y+0.1, 7+float64(row)*4),
			Half:   u.half,
			Rot:    geom.RotY(rng.Float64() * 0.4),
		}
		objects = append(objects, obj)
	}
	return NewWorld(WorldConfig{Seed: cfg.Seed + 41, Bounds: 25}, objects)
}

// InspectionRoute returns the camera route used by the robustness and field
// experiments: an approach followed by a lateral sweep in front of the
// subject area, looking at the scene center.
func InspectionRoute(speed float64) WaypointPath {
	return WaypointPath{
		Waypoints: []geom.Vec3{
			geom.V3(0, 1.6, -6),
			geom.V3(0.5, 1.6, -2),
			geom.V3(3.0, 1.6, 0.5),
			geom.V3(-3.0, 1.6, 1.5),
			geom.V3(0, 1.6, 3),
		},
		Target: geom.V3(0, 1.0, 9),
		Speed:  speed,
		Bob:    0.02,
	}
}

// Gait speeds for Fig. 12 (m/s).
const (
	WalkSpeed   = 1.4
	StrideSpeed = 2.5
	JogSpeed    = 4.0
)
