package scene

import (
	"math"

	"edgeis/internal/geom"
)

// Trajectory produces the world-to-camera pose of the moving device over
// time. Implementations model the handheld/head-mounted motion patterns of
// the evaluation: walking a route (at walk/stride/jog speeds for Fig. 12),
// orbiting an inspected object, or standing still.
type Trajectory interface {
	// PoseAt returns T_CW at time t (seconds).
	PoseAt(t float64) geom.Pose
	// Duration returns the natural length of the trajectory in seconds;
	// poses beyond it clamp to the final pose.
	Duration() float64
}

// LookAtPose builds the world-to-camera pose for a camera at eye looking
// toward target, with world +Y up. The camera convention is +Z forward and
// +Y down in the image.
func LookAtPose(eye, target geom.Vec3) geom.Pose {
	forward := target.Sub(eye).Normalized()
	if forward.Norm() == 0 {
		forward = geom.V3(0, 0, 1)
	}
	up := geom.V3(0, 1, 0)
	if math.Abs(forward.Dot(up)) > 0.999 {
		up = geom.V3(1, 0, 0) // looking straight up/down; pick another up
	}
	// Right-handed with y-down: x = forward x up gives a consistent basis.
	xc := forward.Cross(up).Normalized()
	yc := forward.Cross(xc) // points world-down when level
	rwc := geom.FromCols(xc, yc, forward)
	twc := geom.Pose{R: rwc, T: eye}
	return twc.Inverse()
}

// StaticTrajectory keeps the camera fixed.
type StaticTrajectory struct {
	Eye, Target geom.Vec3
	Length      float64 // seconds
}

// PoseAt implements Trajectory.
func (s StaticTrajectory) PoseAt(float64) geom.Pose { return LookAtPose(s.Eye, s.Target) }

// Duration implements Trajectory.
func (s StaticTrajectory) Duration() float64 { return s.Length }

// WaypointPath moves the camera through a piecewise-linear route at constant
// Speed (m/s) with a fixed eye height, always looking at Target. Fig. 12's
// walk/stride/jog comparison is the same Waypoints with Speed 1.4, 2.5 and
// 4.0 m/s.
type WaypointPath struct {
	Waypoints []geom.Vec3
	Target    geom.Vec3
	Speed     float64 // m/s
	// Bob adds vertical head-bob of the given amplitude (m); frequency
	// scales with speed like a human gait.
	Bob float64
}

// Duration implements Trajectory.
func (w WaypointPath) Duration() float64 {
	if w.Speed <= 0 || len(w.Waypoints) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(w.Waypoints); i++ {
		total += w.Waypoints[i].DistTo(w.Waypoints[i-1])
	}
	return total / w.Speed
}

// PoseAt implements Trajectory.
func (w WaypointPath) PoseAt(t float64) geom.Pose {
	eye := w.eyeAt(t)
	if w.Bob > 0 && w.Speed > 0 {
		gaitHz := 1.6 * w.Speed / 1.4 // ~1.6 steps/s at walking speed
		eye.Y += w.Bob * math.Sin(2*math.Pi*gaitHz*t)
	}
	return LookAtPose(eye, w.Target)
}

func (w WaypointPath) eyeAt(t float64) geom.Vec3 {
	if len(w.Waypoints) == 0 {
		return geom.V3(0, 1.6, 0)
	}
	if len(w.Waypoints) == 1 || w.Speed <= 0 {
		return w.Waypoints[0]
	}
	dist := math.Max(0, t) * w.Speed
	for i := 1; i < len(w.Waypoints); i++ {
		seg := w.Waypoints[i].DistTo(w.Waypoints[i-1])
		if dist <= seg {
			if seg == 0 {
				return w.Waypoints[i]
			}
			f := dist / seg
			return w.Waypoints[i-1].Add(w.Waypoints[i].Sub(w.Waypoints[i-1]).Scale(f))
		}
		dist -= seg
	}
	return w.Waypoints[len(w.Waypoints)-1]
}

// OrbitPath circles the camera around Center at Radius and Height, looking
// inward — the natural motion of a user inspecting a piece of equipment.
type OrbitPath struct {
	Center geom.Vec3
	Radius float64
	Height float64
	AngVel float64 // rad/s
	Length float64 // seconds
	Phase  float64 // initial angle (rad)
}

// Duration implements Trajectory.
func (o OrbitPath) Duration() float64 { return o.Length }

// PoseAt implements Trajectory.
func (o OrbitPath) PoseAt(t float64) geom.Pose {
	a := o.Phase + o.AngVel*t
	eye := geom.V3(
		o.Center.X+o.Radius*math.Cos(a),
		o.Height,
		o.Center.Z+o.Radius*math.Sin(a),
	)
	return LookAtPose(eye, o.Center)
}

// FrameRate is the camera rate every experiment uses (Section VI-B: "all
// videos are set to an input rate of 30fps").
const FrameRate = 30.0

// RenderSequence renders n frames along the trajectory at FrameRate.
func (w *World) RenderSequence(cam geom.Camera, traj Trajectory, n int) []*Frame {
	frames := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) / FrameRate
		frames = append(frames, w.Render(cam, traj.PoseAt(t), t, i))
	}
	return frames
}
