//go:build race

package live

// raceEnabled reports whether the race detector is compiled in. The
// sim-vs-TCP equivalence test skips under it: the detector slows the mobile
// side ~20x in wall time, which shifts when socket results land relative to
// the simulated clock and moves the accuracy outside the equivalence bound.
const raceEnabled = true
