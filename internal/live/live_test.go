package live

import (
	"testing"
	"time"

	"edgeis/internal/codec"
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/pipeline/backendtest"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

// startServer spins up an in-process edge server and a connected client.
func startServer(t *testing.T, opts ...transport.ServerOption) (*transport.Server, *transport.Client) {
	t.Helper()
	srv := transport.NewServer(segmodel.New(segmodel.MaskRCNN), opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := transport.Dial(addr.String(), time.Second)
	if err != nil {
		_ = srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
	})
	return srv, client
}

func TestDriverEndToEndOverTCP(t *testing.T) {
	srv, client := startServer(t)
	cam := geom.StandardCamera(320, 240)
	clip := dataset.SelfRecorded(3, 150)[0]
	clip.Frames = 150

	sys := core.NewSystem(core.Config{Camera: cam, Device: device.IPhone11, Seed: 3})
	d := NewDriver(sys, client, clip, cam, 3)

	progressed := 0
	d.Progress = func(frame int, iou float64) { progressed++ }

	out, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Acc.Samples() == 0 {
		t.Fatal("no samples")
	}
	// The live path should reach a useful accuracy on this easy clip.
	if out.Acc.MeanIoU() < 0.4 {
		t.Errorf("live mean IoU = %.3f", out.Acc.MeanIoU())
	}
	if out.Session.InitAttempts == 0 {
		t.Error("never initialized")
	}
	if out.Sent == 0 {
		t.Error("nothing sent over the socket")
	}
	if progressed == 0 {
		t.Error("progress callback never fired")
	}
	st := srv.Stats()
	if st.Served == 0 || st.MeanInferMs <= 0 {
		t.Errorf("server stats: served=%d mean=%.1f", st.Served, st.MeanInferMs)
	}
}

func TestToFrameMsgConversion(t *testing.T) {
	cam := geom.StandardCamera(320, 240)
	clip := dataset.KITTI(1, 5)[0]
	frames := clip.World.RenderSequence(cam, clip.Traj, 3)
	grid := codec.NewGrid(cam.Width, cam.Height)

	qualities := map[int]float64{}
	off := &pipeline.OffloadRequest{
		FrameIndex:   2,
		PayloadBytes: 9999,
		Quality: func(x, y int) float64 {
			q := 0.5
			if x < 64 {
				q = 1.0
			}
			qualities[grid.TileAt(x, y)] = q
			return q
		},
	}
	msg := ToFrameMsg(off, frames[2], grid, 7)
	if msg.FrameIndex != 2 || msg.PaddingBytes != 9999 {
		t.Error("header mismatch")
	}
	if len(msg.Objects) != len(frames[2].Objects) {
		t.Error("objects mismatch")
	}
	if len(msg.QualityLevels) != grid.Tiles() {
		t.Fatalf("quality levels = %d", len(msg.QualityLevels))
	}
	if msg.QualityLevels[0] != 1.0 {
		t.Errorf("left tile quality = %v, want 1.0", msg.QualityLevels[0])
	}
	// A tile well right of x=64.
	farTile := grid.TileAt(300, 100)
	if msg.QualityLevels[farTile] != 0.5 {
		t.Errorf("right tile quality = %v, want 0.5", msg.QualityLevels[farTile])
	}
}

func TestToEdgeResultConversion(t *testing.T) {
	m := mask.New(64, 64)
	for y := 10; y < 40; y++ {
		for x := 10; x < 40; x++ {
			m.Set(x, y)
		}
	}
	wire := &transport.ResultMsg{
		FrameIndex: 5,
		InferMs:    120,
		Detections: []transport.WireDetection{
			transport.FromDetection(segmodel.Detection{
				ObjectID: 1, Label: 3, Score: 0.8, Mask: m, Box: m.BoundingBox(),
			}, 64),
		},
	}
	res := ToEdgeResult(wire)
	if res.FrameIndex != 5 || res.InferMs != 120 || len(res.Detections) != 1 {
		t.Fatal("conversion mismatch")
	}
	if res.Detections[0].Mask == nil {
		t.Fatal("mask missing")
	}
	if iou := mask.IoU(res.Detections[0].Mask, m); iou < 0.85 {
		t.Errorf("mask round trip IoU = %.3f", iou)
	}
}

// TestTCPBackendConformance runs the shared EdgeBackend contract against a
// real server over a socket. Queue overflow cannot be forced
// deterministically through a wall-clock socket, so the drop subtest is
// skipped (Drop nil); the sim and loopback backends cover it.
func TestTCPBackendConformance(t *testing.T) {
	backendtest.Conformance(t, backendtest.Target{
		Name:      "tcp",
		WallClock: true,
		New: func(t *testing.T, frames []*scene.Frame, queueDepth int) pipeline.EdgeBackend {
			_, client := startServer(t)
			b := NewTCPBackend(client, 41)
			b.Bind(frames, queueDepth)
			return b
		},
	})
}

// TestPooledTCPBackendConformance runs the same EdgeBackend contract against
// a server with a 4-worker accelerator pool. A single connection is served
// synchronously, so delivery order must hold even with concurrent workers.
func TestPooledTCPBackendConformance(t *testing.T) {
	backendtest.Conformance(t, backendtest.Target{
		Name:      "tcp-pooled",
		WallClock: true,
		New: func(t *testing.T, frames []*scene.Frame, queueDepth int) pipeline.EdgeBackend {
			_, client := startServer(t, transport.WithAccelerators(4))
			b := NewTCPBackend(client, 41)
			b.Bind(frames, queueDepth)
			return b
		},
	})
}

// TestServerRejectsBecomeDroppedOffloads pins the reject accounting path:
// when the server sheds a frame at admission (TypeReject), the TCP backend
// must fold it into DroppedOffloads and release the outstanding slot —
// the engine's no-silent-loss law over a real socket.
func TestServerRejectsBecomeDroppedOffloads(t *testing.T) {
	srv, victim := startServer(t,
		transport.WithAccelerators(1),
		transport.WithQueueDepth(1),
		// Hold the single accelerator for ~2x the simulated latency so the
		// worker and queue slot stay occupied while the victim frame lands.
		transport.WithWallOccupancy(2),
	)
	frames := backendtest.Frames(41, 4)

	// Two occupier connections: the first frame takes the accelerator, the
	// second fills the depth-1 queue.
	occupiers := make([]*TCPBackend, 2)
	for i := range occupiers {
		client, err := transport.Dial(srv.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b := NewTCPBackend(client, 41)
		b.Bind(frames, 4)
		t.Cleanup(func() { _ = b.Close() })
		occupiers[i] = b
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	req := func(i int) *pipeline.OffloadRequest {
		return &pipeline.OffloadRequest{
			FrameIndex:   i,
			PayloadBytes: 1000,
			Quality:      func(x, y int) float64 { return 1 },
		}
	}
	for i, b := range occupiers {
		b.Submit(req(i), 0)
	}
	waitFor("worker and queue occupied", func() bool {
		s := srv.Stats().Scheduler
		return s.InFlight == 1 && s.Queued == 1
	})

	vb := NewTCPBackend(victim, 41)
	vb.Bind(frames, 4)
	vb.Submit(req(2), 0)
	if got := vb.Stats().Submitted; got != 1 {
		t.Fatalf("submitted = %d, want 1", got)
	}
	waitFor("reject reconciled into DroppedOffloads", func() bool {
		vb.Advance(0)
		return vb.Stats().DroppedOffloads == 1
	})
	st := vb.Stats()
	if st.Results != 0 {
		t.Errorf("victim got %d results, want 0", st.Results)
	}
	if out := vb.Outstanding(); out != 0 {
		t.Errorf("outstanding = %d after reject, want 0", out)
	}
	if srv.Stats().Rejected == 0 {
		t.Error("server never counted the shed frame")
	}
}

// TestSimAndTCPBackendsAgree is the tentpole's acceptance check: ONE engine
// runs the same clip against the simulated backend and against a real TCP
// server, and the steady-state accuracy agrees closely. The backends differ
// only in where results come from and when they land, so past the VO
// warmup the displayed masks should be nearly identical.
func TestSimAndTCPBackendsAgree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector skews wall-clock result arrival vs the simulated clock")
	}
	cam := geom.StandardCamera(320, 240)
	clip := dataset.SelfRecorded(3, 150)[0]
	clip.Frames = 150
	const warmup = 60

	run := func(backend pipeline.EdgeBackend) *metrics.Accumulator {
		sys := core.NewSystem(core.Config{Camera: cam, Device: device.IPhone11, Seed: 3})
		evals, _ := pipeline.NewEngine(pipeline.Config{
			World:       clip.World,
			Camera:      cam,
			Trajectory:  clip.Traj,
			Frames:      clip.Frames,
			CameraSpeed: clip.CameraSpeed,
			Medium:      netsim.WiFi5,
			Seed:        3,
			Backend:     backend,
		}, sys).Run()
		return pipeline.EvaluateFrom("run", evals, warmup)
	}

	simAcc := run(nil) // nil Backend builds the default simulated edge
	simIoU := simAcc.MeanIoU()
	if simIoU <= 0 {
		t.Fatalf("degenerate sim accuracy: %.4f", simIoU)
	}

	// The TCP arm rides the wall clock: host scheduling jitter can land a
	// burst of edge results late and dent one run's steady-state IoU. Skew
	// is transient, so retry the arm a few times; a systematic sim/TCP
	// divergence keeps failing every attempt.
	const attempts = 3
	var tcpIoU float64
	for i := 1; i <= attempts; i++ {
		_, client := startServer(t)
		tcpIoU = run(NewTCPBackend(client, 3)).MeanIoU()
		t.Logf("attempt %d: steady-state mean IoU: sim=%.4f tcp=%.4f", i, simIoU, tcpIoU)
		if tcpIoU <= 0 {
			t.Fatalf("degenerate tcp accuracy: %.4f", tcpIoU)
		}
		if diff := simIoU - tcpIoU; diff <= 0.02 && diff >= -0.02 {
			return
		}
	}
	t.Errorf("sim and TCP backends disagree after %d attempts: sim=%.4f tcp=%.4f (|diff| > 0.02)", attempts, simIoU, tcpIoU)
}
