// Package live drives the edgeIS mobile runtime against a real TCP edge
// server (package transport): the deployable counterpart of the simulation
// engine in package pipeline. A synthetic camera renders ground-truth
// frames, the full mobile pipeline processes them, offloads travel over the
// socket, and results feed back into the tracker.
package live

import (
	"fmt"
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/codec"
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
	"edgeis/internal/vo"
)

// Driver couples a mobile runtime to a live edge connection for one clip.
type Driver struct {
	sys    *core.System
	client *transport.Client
	clip   dataset.Clip
	cam    geom.Camera
	seed   int64

	// Realtime paces frames at 30 fps wall clock; otherwise the clip runs
	// as fast as the pipeline allows.
	Realtime bool
	// Progress, when non-nil, receives a line every progressEvery frames.
	Progress func(frame int, meanIoU float64)
	// onResult is a test hook observing result deliveries.
	onResult func(frameIdx int32)
}

// progressEvery is the reporting cadence in frames.
const progressEvery = 100

// NewDriver assembles a live run.
func NewDriver(sys *core.System, client *transport.Client, clip dataset.Clip, cam geom.Camera, seed int64) *Driver {
	return &Driver{sys: sys, client: client, clip: clip, cam: cam, seed: seed}
}

// Outcome reports a finished live run.
type Outcome struct {
	Acc     *metrics.Accumulator
	Session core.SessionStats
	Sent    int
	// Skipped counts offloads dropped because the uplink queue was full.
	Skipped int
}

// Run executes the clip and returns accuracy statistics.
func (d *Driver) Run() (*Outcome, error) {
	ex := feature.NewExtractor(d.clip.World, d.cam, feature.DefaultConfig(), d.seed)
	frames := d.clip.World.RenderSequence(d.cam, d.clip.Traj, d.clip.Frames)
	grid := codec.NewGrid(d.cam.Width, d.cam.Height)
	acc := metrics.NewAccumulator("edgeIS-live")
	skipped := 0

	outstanding := 0
	for _, f := range frames {
		// While the VO has not reached tracking, the mobile has nothing
		// useful to compute and real deployments simply wait for the next
		// camera frame; blocking briefly here lets in-flight results land
		// even when the clip is replayed far faster than wall time.
		block := outstanding > 0 && d.sys.VO().State() != vo.StatusTracking
		n, err := d.drainResults(frames, f.Index, block)
		if err != nil {
			return nil, err
		}
		outstanding -= n

		out := d.sys.ProcessFrame(f, ex.Extract(f, d.clip.CameraSpeed),
			float64(f.Index)*pipeline.FrameBudgetMs)
		for _, off := range out.Offloads {
			if !d.client.Send(ToFrameMsg(off, frames[off.FrameIndex], grid, d.seed)) {
				skipped++
			} else {
				outstanding++
			}
		}

		truths := make([]metrics.TruthMask, 0, len(f.Objects))
		for _, gt := range f.Objects {
			truths = append(truths, metrics.TruthMask{
				ObjectID: gt.ObjectID, Label: int(gt.Class), Mask: gt.Visible,
			})
		}
		acc.AddFrame(metrics.MatchFrame(out.Masks, truths), out.ComputeMs)

		if d.Realtime {
			budget := pipeline.FrameBudgetMs
			time.Sleep(time.Duration(budget * float64(time.Millisecond)))
		}
		if d.Progress != nil && f.Index%progressEvery == progressEvery-1 {
			d.Progress(f.Index, acc.MeanIoU())
		}
	}
	return &Outcome{
		Acc:     acc,
		Session: d.sys.Stats(),
		Sent:    d.client.Sent(),
		Skipped: skipped,
	}, nil
}

// drainResults applies every already-delivered edge result and returns how
// many were consumed. With block set, it waits up to one frame budget for
// the first result.
func (d *Driver) drainResults(frames []*scene.Frame, frameIdx int, block bool) (int, error) {
	consumed := 0
	budgetMs := pipeline.FrameBudgetMs
	deadline := time.NewTimer(time.Duration(budgetMs * float64(time.Millisecond)))
	defer deadline.Stop()
	for {
		if block && consumed == 0 {
			select {
			case res, ok := <-d.client.Results():
				if !ok {
					return consumed, fmt.Errorf("live: connection lost: %w", d.client.Err())
				}
				consumed++
				d.applyResult(res, frames, frameIdx)
			case <-deadline.C:
				return consumed, nil
			}
			continue
		}
		select {
		case res, ok := <-d.client.Results():
			if !ok {
				return consumed, fmt.Errorf("live: connection lost: %w", d.client.Err())
			}
			consumed++
			d.applyResult(res, frames, frameIdx)
		default:
			return consumed, nil
		}
	}
}

// applyResult feeds one wire result into the mobile runtime.
func (d *Driver) applyResult(res *transport.ResultMsg, frames []*scene.Frame, frameIdx int) {
	if d.onResult != nil {
		d.onResult(res.FrameIndex)
	}
	if int(res.FrameIndex) < 0 || int(res.FrameIndex) >= len(frames) {
		return
	}
	d.sys.HandleEdgeResult(ToEdgeResult(res), frames[res.FrameIndex],
		float64(frameIdx)*pipeline.FrameBudgetMs)
}

// ToFrameMsg converts an engine offload request into a wire message,
// sampling the per-pixel quality closure back onto the tile grid and
// padding the payload to the codec's modelled byte volume.
func ToFrameMsg(off *pipeline.OffloadRequest, f *scene.Frame, grid codec.Grid, seed int64) *transport.FrameMsg {
	msg := &transport.FrameMsg{
		FrameIndex:   int32(off.FrameIndex),
		Width:        int32(f.Camera.Width),
		Height:       int32(f.Camera.Height),
		Seed:         seed*1_000_003 + int64(off.FrameIndex),
		TileCols:     int32(grid.Cols),
		PaddingBytes: int32(off.PayloadBytes),
	}
	for _, gt := range f.Objects {
		msg.Objects = append(msg.Objects, segmodel.ObjectTruth{
			ObjectID: gt.ObjectID, Label: int(gt.Class),
			Visible: gt.Visible, Box: gt.Box,
		})
	}
	if off.Quality != nil {
		msg.QualityLevels = make([]float32, grid.Tiles())
		for i := range msg.QualityLevels {
			c := grid.TileBox(i).Center()
			msg.QualityLevels[i] = float32(off.Quality(int(c.X), int(c.Y)))
		}
	}
	if plan, ok := off.Guidance.(*accel.Plan); ok && plan != nil {
		msg.Areas = plan.Areas
	}
	return msg
}

// ToEdgeResult converts a wire result for the mobile runtime.
func ToEdgeResult(res *transport.ResultMsg) pipeline.EdgeResult {
	out := pipeline.EdgeResult{
		FrameIndex: int(res.FrameIndex),
		InferMs:    res.InferMs,
	}
	for _, d := range res.Detections {
		out.Detections = append(out.Detections, d.ToDetection())
	}
	return out
}
