// Package live runs the edgeIS mobile runtime against a real TCP edge
// server (package transport). Since the backend refactor it is a thin
// wall-clock adapter: TCPBackend plugs a transport.Client into the same
// pipeline.Engine that drives simulated experiments, plus the wire
// conversions between engine types and transport messages.
package live

import (
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/codec"
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
	"edgeis/internal/transport"
)

// Driver couples a mobile runtime to a live edge connection for one clip.
// It assembles a pipeline.Engine around a TCPBackend, so the live path and
// the simulation share one scheduler.
type Driver struct {
	sys    *core.System
	client *transport.Client
	clip   dataset.Clip
	cam    geom.Camera
	seed   int64

	// Realtime paces frames at 30 fps wall clock; otherwise the clip runs
	// as fast as the pipeline allows.
	Realtime bool
	// Progress, when non-nil, receives a line every progressEvery frames.
	Progress func(frame int, meanIoU float64)
	// onResult is a test hook observing result deliveries.
	onResult func(frameIdx int32)
}

// progressEvery is the reporting cadence in frames.
const progressEvery = 100

// NewDriver assembles a live run.
func NewDriver(sys *core.System, client *transport.Client, clip dataset.Clip, cam geom.Camera, seed int64) *Driver {
	return &Driver{sys: sys, client: client, clip: clip, cam: cam, seed: seed}
}

// Outcome reports a finished live run.
type Outcome struct {
	Acc     *metrics.Accumulator
	Session core.SessionStats
	Sent    int
	// DroppedOffloads counts offloads dropped because the uplink send
	// queue was full — the same accounting the simulated backend keeps.
	DroppedOffloads int
	// DiscardedResults counts edge results thrown away because their frame
	// index was out of range for the clip.
	DiscardedResults int
}

// Run executes the clip and returns accuracy statistics.
func (d *Driver) Run() (*Outcome, error) {
	backend := NewTCPBackend(d.client, d.seed)
	backend.onResult = d.onResult
	acc := metrics.NewAccumulator("edgeIS-live")

	eng := pipeline.NewEngine(pipeline.Config{
		World:       d.clip.World,
		Camera:      d.cam,
		Trajectory:  d.clip.Traj,
		Frames:      d.clip.Frames,
		CameraSpeed: d.clip.CameraSpeed,
		Seed:        d.seed,
		Backend:     backend,
		OnFrame: func(ev pipeline.FrameEval) {
			acc.AddFrame(ev.IoUs, ev.LatencyMs)
			if d.Realtime {
				budget := pipeline.FrameBudgetMs
				time.Sleep(time.Duration(budget * float64(time.Millisecond)))
			}
			if d.Progress != nil && ev.Index%progressEvery == progressEvery-1 {
				d.Progress(ev.Index, acc.MeanIoU())
			}
		},
	}, d.sys)

	_, stats := eng.Run()
	if err := backend.Err(); err != nil {
		return nil, err
	}
	return &Outcome{
		Acc:              acc,
		Session:          d.sys.Stats(),
		Sent:             d.client.Sent(),
		DroppedOffloads:  stats.DroppedOffloads,
		DiscardedResults: stats.DiscardedResults,
	}, nil
}

// ToFrameMsg converts an engine offload request into a wire message,
// sampling the per-pixel quality closure back onto the tile grid and
// padding the payload to the codec's modelled byte volume.
func ToFrameMsg(off *pipeline.OffloadRequest, f *scene.Frame, grid codec.Grid, seed int64) *transport.FrameMsg {
	msg := &transport.FrameMsg{
		FrameIndex:   int32(off.FrameIndex),
		Width:        int32(f.Camera.Width),
		Height:       int32(f.Camera.Height),
		Seed:         seed*1_000_003 + int64(off.FrameIndex),
		TileCols:     int32(grid.Cols),
		PaddingBytes: int32(off.PayloadBytes),
	}
	for _, gt := range f.Objects {
		msg.Objects = append(msg.Objects, segmodel.ObjectTruth{
			ObjectID: gt.ObjectID, Label: int(gt.Class),
			Visible: gt.Visible, Box: gt.Box,
		})
	}
	if off.Quality != nil {
		msg.QualityLevels = make([]float32, grid.Tiles())
		for i := range msg.QualityLevels {
			c := grid.TileBox(i).Center()
			msg.QualityLevels[i] = float32(off.Quality(int(c.X), int(c.Y)))
		}
	}
	if plan, ok := off.Guidance.(*accel.Plan); ok && plan != nil {
		msg.Areas = plan.Areas
	}
	return msg
}

// ToEdgeResult converts a wire result for the mobile runtime.
func ToEdgeResult(res *transport.ResultMsg) pipeline.EdgeResult {
	out := pipeline.EdgeResult{
		FrameIndex: int(res.FrameIndex),
		InferMs:    res.InferMs,
	}
	for _, d := range res.Detections {
		out.Detections = append(out.Detections, d.ToDetection())
	}
	return out
}
