package live

import (
	"errors"
	"fmt"
	"time"

	"edgeis/internal/codec"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
	"edgeis/internal/transport"
)

// TCPBackend adapts a transport.Client into a pipeline.EdgeBackend: the
// engine's simulated clock schedules frames and deadlines while offloads and
// results cross a real socket in wall time. Results are stamped with the
// simulated instant at which the engine observed them, so the same scheduler
// that drives the simulated backend drives a live edge server unchanged.
type TCPBackend struct {
	client *transport.Client
	seed   int64
	frames []*scene.Frame
	grid   codec.Grid

	// pending buffers results received by Wait so the next Advance hands
	// them to the engine in arrival order.
	pending     []*transport.ResultMsg
	outstanding int
	// seenRejects and seenSheds are how many server-side admission rejects
	// (TypeReject) and latest-wins sheds (TypeShed) have already been
	// folded into DroppedOffloads and outstanding.
	seenRejects int
	seenSheds   int
	stats       pipeline.BackendStats
	err         error

	// onResult is a test hook observing every received result message.
	onResult func(frameIdx int32)
}

var _ pipeline.EdgeBackend = (*TCPBackend)(nil)

// NewTCPBackend wraps a connected client. The seed must match the scenario
// seed so the server renders the same ground-truth frame the mobile saw.
func NewTCPBackend(client *transport.Client, seed int64) *TCPBackend {
	return &TCPBackend{client: client, seed: seed}
}

// DialTCPBackend dials an edge server with bounded exponential backoff and
// wraps the connection. It absorbs the startup race where the client comes
// up before the server has bound its listener.
func DialTCPBackend(addr string, seed int64, timeout time.Duration, attempts int, backoff time.Duration, opts ...transport.ClientOption) (*TCPBackend, error) {
	client, err := transport.DialRetry(addr, timeout, attempts, backoff, opts...)
	if err != nil {
		return nil, err
	}
	return NewTCPBackend(client, seed), nil
}

// Name identifies the backend in reports.
func (b *TCPBackend) Name() string { return "tcp" }

// Bind receives the rendered clip. The queue depth is fixed by the client's
// send queue at dial time, so the strategy's preference is ignored here.
func (b *TCPBackend) Bind(frames []*scene.Frame, queueDepth int) {
	b.frames = frames
	if len(frames) > 0 {
		cam := frames[0].Camera
		b.grid = codec.NewGrid(cam.Width, cam.Height)
	}
}

// Submit converts the offload to a wire message and sends it. A full send
// queue drops the offload (DropNewest — the socket writer owns the queue)
// and the loss is accounted, never silent.
func (b *TCPBackend) Submit(req *pipeline.OffloadRequest, sendAt float64) []pipeline.ScheduledResult {
	msg := ToFrameMsg(req, b.frames[req.FrameIndex], b.grid, b.seed)
	if !b.client.Send(msg) {
		b.stats.CountDropped(1)
		return nil
	}
	b.stats.Submitted++
	b.stats.UplinkBytes += req.PayloadBytes
	b.outstanding++
	return nil
}

// reconcileRejects folds server-side admission rejects (TypeReject replies)
// and latest-wins sheds (TypeShed replies) counted by the client into the
// backend accounting: each is a dropped offload whose result will never
// arrive, so nothing is lost silently.
func (b *TCPBackend) reconcileRejects() {
	rejects, sheds := b.client.Rejected(), b.client.Shed()
	fresh := (rejects - b.seenRejects) + (sheds - b.seenSheds)
	if fresh <= 0 {
		return
	}
	b.seenRejects, b.seenSheds = rejects, sheds
	b.stats.CountDropped(fresh)
	b.outstanding -= fresh
	if b.outstanding < 0 {
		b.outstanding = 0
	}
}

// Advance drains every result the socket has delivered so far, without
// blocking, and schedules each at the current simulated instant.
func (b *TCPBackend) Advance(now float64) []pipeline.ScheduledResult {
	b.reconcileRejects()
	var out []pipeline.ScheduledResult
	for _, res := range b.pending {
		if sr, ok := b.take(res, now); ok {
			out = append(out, sr)
		}
	}
	b.pending = b.pending[:0]
	for {
		select {
		case res, ok := <-b.client.Results():
			if !ok {
				b.fail()
				return out
			}
			if sr, ok := b.take(res, now); ok {
				out = append(out, sr)
			}
		default:
			return out
		}
	}
}

// take consumes one wire result. Out-of-range frame indices are counted and
// discarded instead of panicking the engine on a misbehaving server.
func (b *TCPBackend) take(res *transport.ResultMsg, now float64) (pipeline.ScheduledResult, bool) {
	if b.onResult != nil {
		b.onResult(res.FrameIndex)
	}
	if b.outstanding > 0 {
		b.outstanding--
	}
	if int(res.FrameIndex) < 0 || int(res.FrameIndex) >= len(b.frames) {
		b.stats.CountDiscarded()
		return pipeline.ScheduledResult{}, false
	}
	b.stats.Results++
	b.stats.InferMsSum += res.InferMs
	return pipeline.ScheduledResult{At: now, Res: ToEdgeResult(res)}, true
}

// Outstanding reports submitted offloads whose results have not come back.
// Frames the server shed at admission are reconciled out first: their
// results will never arrive, so they must not pin the engine's drain loop.
func (b *TCPBackend) Outstanding() int {
	b.reconcileRejects()
	return b.outstanding
}

// Wait blocks up to d wall-clock time for one result, buffering it for the
// next Advance. This is the live counterpart of the legacy driver's blocking
// drain during the VO initialization window.
func (b *TCPBackend) Wait(d time.Duration) bool {
	if len(b.pending) > 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case res, ok := <-b.client.Results():
		if !ok {
			b.fail()
			return false
		}
		b.pending = append(b.pending, res)
		return true
	case <-t.C:
		return false
	}
}

// fail records the connection loss once; later calls keep the first cause.
func (b *TCPBackend) fail() {
	if b.err != nil {
		return
	}
	if cerr := b.client.Err(); cerr != nil {
		b.err = fmt.Errorf("live: connection lost: %w", cerr)
	} else {
		b.err = errors.New("live: connection closed by server")
	}
}

// Err reports a connection failure observed during the run, if any.
func (b *TCPBackend) Err() error { return b.err }

// Stats returns the backend accounting, including any rejects the server
// reported since the last call.
func (b *TCPBackend) Stats() pipeline.BackendStats {
	b.reconcileRejects()
	return b.stats
}

// Close closes the underlying client.
func (b *TCPBackend) Close() error { return b.client.Close() }
