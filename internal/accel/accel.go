// Package accel implements edgeIS's Contour Instructed edge Inference
// Acceleration (CIIA, Section IV). A Plan built from the mobile device's
// transferred masks (surrounding boxes + expected classes) and the frame's
// newly-seen areas instructs the simulated two-stage model:
//
//   - Dynamic anchor placement (IV-A): the RPN evaluates anchors only
//     inside the instructed areas, each at the FPN level its size selects,
//     instead of sliding over the whole pyramid.
//   - RoI pruning (IV-B): within each known area, RoIs sorted by class
//     confidence are discarded when another RoI has both a higher
//     confidence on the expected class and a higher IoU with the area's
//     initial box. RoIs from unknown areas fall back to Fast NMS.
package accel

import (
	"sort"

	"edgeis/internal/mask"
	"edgeis/internal/segmodel"
)

// Area is one instructed region of the frame.
type Area struct {
	// Box is the surrounding box computed from a transferred mask
	// (expanded by a margin) or a newly-seen region.
	Box mask.Box
	// Label is the expected class for a known object area; 0 for new
	// areas with no prior.
	Label int
	// Known marks areas backed by a transferred mask (with class prior)
	// as opposed to newly-captured content.
	Known bool
}

// Plan is a per-frame CIIA instruction set. It implements
// segmodel.Guidance.
type Plan struct {
	Areas []Area
	// Margin is the expansion applied to mask boxes when building areas.
	Margin int
	// DisablePruning turns the dominance rule off: every proposal takes
	// the Fast NMS path. Used by the Fig. 14 ablation to isolate dynamic
	// anchor placement from RoI pruning.
	DisablePruning bool
}

var (
	_ segmodel.Guidance     = (*Plan)(nil)
	_ segmodel.AreaProvider = (*Plan)(nil)
)

// AreaBoxes implements segmodel.AreaProvider: the pixel boxes of the
// instructed areas, in plan order. The keyframe decision of skip-compute
// (segmodel.KeyframePolicy) measures guidance churn on them — how far the
// CIIA-transferred contours moved since the session's cached keyframe.
func (p *Plan) AreaBoxes() []mask.Box {
	if len(p.Areas) == 0 {
		return nil
	}
	out := make([]mask.Box, len(p.Areas))
	for i, a := range p.Areas {
		out[i] = a.Box
	}
	return out
}

// ObjectPrior is a transferred-mask summary handed to the plan builder.
type ObjectPrior struct {
	Box   mask.Box
	Label int
}

// BuildPlan constructs the frame's instruction set from transferred-mask
// priors and new-area boxes. margin is the surrounding-box expansion in
// pixels (Section IV-A computes "a surrounding box ... from the mask of
// each object"); 0 selects the default of 16.
func BuildPlan(priors []ObjectPrior, newAreas []mask.Box, width, height, margin int) *Plan {
	if margin == 0 {
		margin = 16
	}
	p := &Plan{Margin: margin}
	for _, pr := range priors {
		if pr.Box.Empty() {
			continue
		}
		p.Areas = append(p.Areas, Area{
			Box:   pr.Box.Expand(margin, width, height),
			Label: pr.Label,
			Known: true,
		})
	}
	for _, b := range newAreas {
		if b.Empty() {
			continue
		}
		p.Areas = append(p.Areas, Area{Box: b, Known: false})
	}
	return p
}

// AnchorBudget implements segmodel.Guidance: anchors are evaluated only in
// the instructed areas, at the FPN level each area's size selects.
func (p *Plan) AnchorBudget(width, height int) int {
	total := 0
	for _, a := range p.Areas {
		total += segmodel.AnchorsInBox(a.Box)
	}
	full := segmodel.FullGridAnchors(width, height)
	if total > full {
		return full
	}
	return total
}

// Classify implements segmodel.Guidance: the index and label of the first
// instructed area containing the box center.
func (p *Plan) Classify(b mask.Box) (int, int) {
	c := b.Center()
	x, y := int(c.X), int(c.Y)
	best, bestArea := -1, 1<<62
	for i, a := range p.Areas {
		if !a.Box.Contains(x, y) {
			continue
		}
		// The smallest containing area wins: a tracked object nested
		// inside a larger object's surrounding box belongs to its own
		// queue, not the larger object's.
		if sz := a.Box.Area(); sz < bestArea {
			best, bestArea = i, sz
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, p.Areas[best].Label
}

// CoversObjects implements segmodel.Guidance: proposals can only originate
// where anchors were placed.
func (p *Plan) CoversObjects(b mask.Box) bool {
	c := b.Center()
	x, y := int(c.X), int(c.Y)
	for _, a := range p.Areas {
		if a.Box.Contains(x, y) {
			return true
		}
	}
	return false
}

// SelectRoIs implements segmodel.Guidance: RoI pruning for known areas and
// Fast NMS for the rest (Section IV-B).
func (p *Plan) SelectRoIs(props []segmodel.Proposal) []segmodel.Proposal {
	byArea := make(map[int][]segmodel.Proposal)
	var unknown []segmodel.Proposal
	for _, pr := range props {
		inArea := !p.DisablePruning &&
			pr.AreaID >= 0 && pr.AreaID < len(p.Areas) && p.Areas[pr.AreaID].Known
		// A proposal that barely overlaps the area's initial box is not a
		// competing hypothesis for that object — it is different content
		// that happens to sit inside the surrounding box (e.g. a small
		// object in front of a large one). Pruning it against the big
		// object's candidates would delete it, so it takes the Fast NMS
		// path instead.
		if inArea && pr.Box.IoU(p.Areas[pr.AreaID].Box) < 0.1 {
			inArea = false
		}
		if inArea {
			byArea[pr.AreaID] = append(byArea[pr.AreaID], pr)
		} else {
			unknown = append(unknown, pr)
		}
	}

	out := make([]segmodel.Proposal, 0, len(props)/2)
	for areaID, group := range byArea {
		out = append(out, p.pruneArea(p.Areas[areaID], group)...)
	}
	out = append(out, FastNMS(unknown, 0.7, 100)...)
	// Deterministic order: by descending score then box position.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Box.MinX != out[j].Box.MinX {
			return out[i].Box.MinX < out[j].Box.MinX
		}
		return out[i].Box.MinY < out[j].Box.MinY
	})
	return out
}

// pruneArea applies the dominance rule of Fig. 7: within a known area, an
// RoI is pruned when some other RoI has BOTH a higher confidence score on
// the area's class AND a higher IoU with the area's initial box. Surviving
// RoIs are the Pareto front of (class confidence, prior-box IoU).
func (p *Plan) pruneArea(a Area, group []segmodel.Proposal) []segmodel.Proposal {
	type scored struct {
		prop segmodel.Proposal
		conf float64 // confidence on the area's expected class
		iou  float64 // IoU with the area's initial box
	}
	ss := make([]scored, 0, len(group))
	for _, pr := range group {
		conf := pr.Score
		if a.Label != 0 && pr.Label != a.Label {
			// Confidence ON CLASS c: off-class proposals score low.
			conf *= 0.25
		}
		ss = append(ss, scored{prop: pr, conf: conf, iou: pr.Box.IoU(a.Box)})
	}
	// Sort by confidence descending (the "sorted queue" of IV-B), then a
	// single sweep keeps the Pareto-optimal set: an element survives iff no
	// earlier (higher-confidence) element also has a strictly higher IoU.
	sort.Slice(ss, func(i, j int) bool { return ss[i].conf > ss[j].conf })
	out := make([]segmodel.Proposal, 0, 4)
	bestIoU := -1.0
	for _, s := range ss {
		if s.iou > bestIoU {
			pr := s.prop
			// The surviving RoI carries its confidence ON THE AREA'S CLASS:
			// the prior re-scores off-class proposals down, so the second
			// stage prefers class-consistent candidates.
			pr.Score = s.conf
			out = append(out, pr)
			bestIoU = s.iou
		}
	}
	return out
}

// FastNMS is the relaxed parallel NMS of YOLACT the paper adopts for
// unknown-content areas: every proposal suppressed by ANY higher-scoring
// proposal is dropped in one pass (allowing already-suppressed proposals to
// suppress others), which over-suppresses slightly but vectorizes.
func FastNMS(props []segmodel.Proposal, iouThresh float64, maxKeep int) []segmodel.Proposal {
	sorted := make([]segmodel.Proposal, len(props))
	copy(sorted, props)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	suppressed := make([]bool, len(sorted))
	for i := 1; i < len(sorted); i++ {
		for j := 0; j < i; j++ {
			if sorted[i].Box.IoU(sorted[j].Box) > iouThresh {
				suppressed[i] = true
				break
			}
		}
	}
	out := make([]segmodel.Proposal, 0, minInt(maxKeep, len(sorted)))
	for i, p := range sorted {
		if !suppressed[i] {
			out = append(out, p)
			if len(out) >= maxKeep {
				break
			}
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
