package accel

import (
	"math"
	"testing"

	"edgeis/internal/mask"
	"edgeis/internal/segmodel"
)

func rectMask(w, h, x0, y0, x1, y1 int) *mask.Bitmask {
	m := mask.New(w, h)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y)
		}
	}
	return m
}

// guidedInput builds a frame plus a plan covering both objects.
func guidedInput(seed int64) (segmodel.Input, *Plan) {
	m1 := rectMask(640, 480, 80, 100, 260, 220)
	m2 := rectMask(640, 480, 400, 280, 520, 380)
	in := segmodel.Input{
		Width: 640, Height: 480,
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m1, Box: m1.BoundingBox()},
			{ObjectID: 2, Label: 1, Visible: m2, Box: m2.BoundingBox()},
		},
		Seed: seed,
	}
	plan := BuildPlan([]ObjectPrior{
		{Box: m1.BoundingBox(), Label: 2},
		{Box: m2.BoundingBox(), Label: 1},
	}, nil, 640, 480, 0)
	return in, plan
}

func TestBuildPlan(t *testing.T) {
	_, plan := guidedInput(1)
	if len(plan.Areas) != 2 {
		t.Fatalf("%d areas", len(plan.Areas))
	}
	for _, a := range plan.Areas {
		if !a.Known || a.Label == 0 {
			t.Error("mask-backed areas must be known with labels")
		}
	}
	// Empty priors and empty new areas are skipped.
	p2 := BuildPlan([]ObjectPrior{{}}, []mask.Box{{}}, 640, 480, 0)
	if len(p2.Areas) != 0 {
		t.Error("empty boxes should be skipped")
	}
	// New areas carry no label.
	p3 := BuildPlan(nil, []mask.Box{{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64}}, 640, 480, 0)
	if len(p3.Areas) != 1 || p3.Areas[0].Known || p3.Areas[0].Label != 0 {
		t.Error("new area misconfigured")
	}
}

func TestAnchorBudgetReduction(t *testing.T) {
	_, plan := guidedInput(1)
	full := segmodel.FullGridAnchors(640, 480)
	budget := plan.AnchorBudget(640, 480)
	if budget <= 0 || budget >= full {
		t.Fatalf("budget %d vs full %d", budget, full)
	}
	// Instructed areas cover <15% of the frame; the anchor budget should
	// shrink by an order of magnitude (the mechanism behind Fig. 14's
	// RPN latency cut).
	if frac := float64(budget) / float64(full); frac > 0.5 {
		t.Errorf("anchor fraction %.2f, want well below 0.5", frac)
	}
}

func TestClassifyAndCovers(t *testing.T) {
	_, plan := guidedInput(1)
	inBox := mask.Box{MinX: 100, MinY: 120, MaxX: 200, MaxY: 200}
	id, label := plan.Classify(inBox)
	if id != 0 || label != 2 {
		t.Errorf("Classify = (%d, %d), want (0, 2)", id, label)
	}
	if !plan.CoversObjects(inBox) {
		t.Error("covered box reported uncovered")
	}
	farBox := mask.Box{MinX: 600, MinY: 0, MaxX: 639, MaxY: 40}
	if id, _ := plan.Classify(farBox); id != -1 {
		t.Error("uncovered box classified")
	}
	if plan.CoversObjects(farBox) {
		t.Error("uncovered box reported covered")
	}
}

func TestGuidedRunFasterSameAccuracy(t *testing.T) {
	// Fig. 14's headline: the acceleration halves latency while keeping
	// accuracy above 0.92 of the vanilla model.
	model := segmodel.New(segmodel.MaskRCNN)
	var vanillaMs, guidedMs, vanillaIoU, guidedIoU float64
	var vanillaN, guidedN int
	for seed := int64(0); seed < 20; seed++ {
		in, plan := guidedInput(seed)
		v := model.Run(in, nil)
		g := model.Run(in, plan)
		vanillaMs += v.TotalMs()
		guidedMs += g.TotalMs()
		for _, d := range v.Detections {
			vanillaIoU += d.TrueIoU
			vanillaN++
		}
		for _, d := range g.Detections {
			guidedIoU += d.TrueIoU
			guidedN++
		}
	}
	if guidedMs >= vanillaMs*0.62 {
		t.Errorf("guided latency %.1f vs vanilla %.1f: want < 62%%", guidedMs/20, vanillaMs/20)
	}
	if guidedN == 0 || vanillaN == 0 {
		t.Fatal("no detections")
	}
	gIoU := guidedIoU / float64(guidedN)
	vIoU := vanillaIoU / float64(vanillaN)
	if gIoU < vIoU-0.03 {
		t.Errorf("guided IoU %.3f dropped below vanilla %.3f", gIoU, vIoU)
	}
	if gIoU < 0.9 {
		t.Errorf("guided IoU %.3f, want >= 0.9 (paper: >0.92)", gIoU)
	}
}

func TestRPNLatencyCut(t *testing.T) {
	// Fig. 14: dynamic anchor placement cuts RPN latency by ~46%.
	model := segmodel.New(segmodel.MaskRCNN)
	in, plan := guidedInput(7)
	v := model.Run(in, nil)
	g := model.Run(in, plan)
	cut := 1 - g.RPNMs/v.RPNMs
	if cut < 0.3 || cut > 0.6 {
		t.Errorf("RPN latency cut = %.2f, want ~0.46", cut)
	}
}

func TestRoIReduction(t *testing.T) {
	model := segmodel.New(segmodel.MaskRCNN)
	in, plan := guidedInput(8)
	v := model.Run(in, nil)
	g := model.Run(in, plan)
	if g.RoIsProcessed >= v.RoIsProcessed {
		t.Errorf("guided RoIs %d >= vanilla %d", g.RoIsProcessed, v.RoIsProcessed)
	}
}

func TestUncoveredObjectMissed(t *testing.T) {
	// An object outside every instructed area cannot be proposed — the
	// honest failure mode of stale priors, recovered by new-area offloads.
	m1 := rectMask(640, 480, 80, 100, 260, 220)
	m2 := rectMask(640, 480, 400, 280, 520, 380)
	in := segmodel.Input{
		Width: 640, Height: 480,
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m1, Box: m1.BoundingBox()},
			{ObjectID: 2, Label: 1, Visible: m2, Box: m2.BoundingBox()},
		},
		Seed: 4,
	}
	plan := BuildPlan([]ObjectPrior{{Box: m1.BoundingBox(), Label: 2}}, nil, 640, 480, 0)
	res := segmodel.New(segmodel.MaskRCNN).Run(in, plan)
	for _, d := range res.Detections {
		if d.ObjectID == 2 {
			t.Error("uncovered object detected")
		}
	}
}

func TestNewAreaRecoversObject(t *testing.T) {
	m2 := rectMask(640, 480, 400, 280, 520, 380)
	in := segmodel.Input{
		Width: 640, Height: 480,
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 2, Label: 1, Visible: m2, Box: m2.BoundingBox()},
		},
		Seed: 4,
	}
	// No prior, but a new-area box covering the right region.
	plan := BuildPlan(nil, []mask.Box{{MinX: 380, MinY: 260, MaxX: 560, MaxY: 420}}, 640, 480, 0)
	found := false
	for seed := int64(0); seed < 10; seed++ {
		in.Seed = seed
		res := segmodel.New(segmodel.MaskRCNN).Run(in, plan)
		for _, d := range res.Detections {
			if d.ObjectID == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("object in new area never detected")
	}
}

func TestPruneAreaParetoFront(t *testing.T) {
	a := Area{Box: mask.Box{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, Label: 3, Known: true}
	plan := &Plan{Areas: []Area{a}}
	props := []segmodel.Proposal{
		// High conf, high IoU: survives.
		{Box: mask.Box{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98}, Score: 0.9, Label: 3, AreaID: 0},
		// Lower conf AND lower IoU: dominated, pruned.
		{Box: mask.Box{MinX: 30, MinY: 30, MaxX: 80, MaxY: 80}, Score: 0.7, Label: 3, AreaID: 0},
		// Lower conf but HIGHER IoU than the first: survives.
		{Box: mask.Box{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, Score: 0.6, Label: 3, AreaID: 0},
	}
	kept := plan.SelectRoIs(props)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	scores := map[float64]bool{}
	for _, k := range kept {
		scores[k.Score] = true
	}
	if !scores[0.9] || !scores[0.6] || scores[0.7] {
		t.Errorf("wrong Pareto front: %v", scores)
	}
}

func TestPruneOffClassDemoted(t *testing.T) {
	a := Area{Box: mask.Box{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, Label: 3, Known: true}
	plan := &Plan{Areas: []Area{a}}
	props := []segmodel.Proposal{
		{Box: mask.Box{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, Score: 0.9, Label: 7, AreaID: 0}, // wrong class
		{Box: mask.Box{MinX: 1, MinY: 1, MaxX: 99, MaxY: 99}, Score: 0.8, Label: 3, AreaID: 0},   // right class
	}
	kept := plan.SelectRoIs(props)
	// The on-class proposal must come first (higher effective confidence).
	if len(kept) == 0 || kept[0].Label != 3 {
		t.Errorf("on-class proposal not preferred: %+v", kept)
	}
}

func TestFastNMS(t *testing.T) {
	props := []segmodel.Proposal{
		{Box: mask.Box{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, Score: 0.9},
		{Box: mask.Box{MinX: 5, MinY: 5, MaxX: 105, MaxY: 105}, Score: 0.8},
		{Box: mask.Box{MinX: 10, MinY: 10, MaxX: 110, MaxY: 110}, Score: 0.7},
		{Box: mask.Box{MinX: 300, MinY: 300, MaxX: 400, MaxY: 400}, Score: 0.6},
	}
	kept := FastNMS(props, 0.7, 10)
	// Fast NMS: 0.8 suppressed by 0.9; 0.7 suppressed by 0.9 or 0.8
	// (even though 0.8 is itself suppressed — the YOLACT relaxation).
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.6 {
		t.Errorf("wrong survivors: %+v", kept)
	}
	if got := FastNMS(nil, 0.7, 10); len(got) != 0 {
		t.Error("empty input should yield empty output")
	}
}

func TestSelectRoIsDeterministic(t *testing.T) {
	in, plan := guidedInput(11)
	model := segmodel.New(segmodel.MaskRCNN)
	a := model.Run(in, plan)
	b := model.Run(in, plan)
	if a.RoIsProcessed != b.RoIsProcessed || math.Abs(a.TotalMs()-b.TotalMs()) > 1e-12 {
		t.Error("guided run nondeterministic")
	}
}

func TestStalePriorWithinMarginStillDetects(t *testing.T) {
	// A transferred mask lags the object slightly; the surrounding-box
	// margin (Section IV-A) absorbs the drift.
	m := rectMask(640, 480, 200, 150, 330, 260)
	in := segmodel.Input{
		Width: 640, Height: 480,
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m, Box: m.BoundingBox()},
		},
	}
	// Prior shifted by 10 px: inside the default 16 px margin.
	stale := mask.Box{MinX: 190, MinY: 140, MaxX: 320, MaxY: 250}
	plan := BuildPlan([]ObjectPrior{{Box: stale, Label: 2}}, nil, 640, 480, 0)
	hits := 0
	for seed := int64(0); seed < 10; seed++ {
		in.Seed = seed
		res := segmodel.New(segmodel.MaskRCNN).Run(in, plan)
		for _, d := range res.Detections {
			if d.ObjectID == 1 {
				hits++
			}
		}
	}
	if hits < 8 {
		t.Errorf("detected %d/10 with slightly stale prior", hits)
	}
}

func TestVeryStalePriorMissesWithoutNewArea(t *testing.T) {
	// A badly stale prior leaves the object uncovered — the failure CFRS's
	// new-area trigger exists to repair.
	m := rectMask(640, 480, 200, 150, 330, 260)
	in := segmodel.Input{
		Width: 640, Height: 480,
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m, Box: m.BoundingBox()},
		},
		Seed: 1,
	}
	farStale := mask.Box{MinX: 10, MinY: 10, MaxX: 120, MaxY: 100}
	plan := BuildPlan([]ObjectPrior{{Box: farStale, Label: 2}}, nil, 640, 480, 0)
	res := segmodel.New(segmodel.MaskRCNN).Run(in, plan)
	for _, d := range res.Detections {
		if d.ObjectID == 1 {
			t.Error("object detected despite a prior pointing elsewhere")
		}
	}
}
