package transport

import (
	"bytes"
	"testing"
	"time"

	"edgeis/internal/segmodel"
)

func TestResumeRoundTrip(t *testing.T) {
	cases := []ResumeMsg{
		{SessionKey: "fleet-7", LastKeyframeEpoch: 41},
		{SessionKey: "s", LastKeyframeEpoch: -1},
		{SessionKey: "client-00042/cam0", LastKeyframeEpoch: 0},
	}
	for _, want := range cases {
		b := MarshalResume(&want)
		if typ, err := MessageType(b); err != nil || typ != TypeResume {
			t.Fatalf("MessageType = %d, %v", typ, err)
		}
		got, err := UnmarshalResume(b)
		if err != nil {
			t.Fatalf("UnmarshalResume(%+v): %v", want, err)
		}
		if *got != want {
			t.Errorf("round trip %+v -> %+v", want, *got)
		}
	}
}

func TestResumeAckRoundTrip(t *testing.T) {
	cases := []ResumeAckMsg{
		{SessionKey: "fleet-7", Adopted: true, Peers: []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}},
		{SessionKey: "fresh", Adopted: false, Peers: []string{}},
		{SessionKey: "solo", Adopted: true, Peers: []string{"localhost:7000"}},
	}
	for _, want := range cases {
		b := MarshalResumeAck(&want)
		if typ, err := MessageType(b); err != nil || typ != TypeResumeAck {
			t.Fatalf("MessageType = %d, %v", typ, err)
		}
		got, err := UnmarshalResumeAck(b)
		if err != nil {
			t.Fatalf("UnmarshalResumeAck(%+v): %v", want, err)
		}
		if got.SessionKey != want.SessionKey || got.Adopted != want.Adopted {
			t.Errorf("round trip %+v -> %+v", want, *got)
		}
		if len(got.Peers) != len(want.Peers) {
			t.Fatalf("peers %v -> %v", want.Peers, got.Peers)
		}
		for i := range want.Peers {
			if got.Peers[i] != want.Peers[i] {
				t.Errorf("peer[%d] = %q, want %q", i, got.Peers[i], want.Peers[i])
			}
		}
	}
}

// TestServerAdoptsResumedSession drives the resume handshake over real
// sockets: a client dialing with WithResume gets an ack carrying the
// adoption verdict and the fleet peer list, its session carries the
// cross-replica key, and its first frame is served as a forced keyframe
// (cold cache on the adopting replica) even under a long keyframe
// interval.
func TestServerAdoptsResumedSession(t *testing.T) {
	peers := []string{"10.0.0.1:7000", "10.0.0.2:7000"}
	srv := NewServer(segmodel.New(segmodel.MaskRCNN),
		WithKeyframePolicy(segmodel.KeyframePolicy{Interval: 100}),
		WithFleetPeers(peers))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	c, err := Dial(addr.String(), time.Second, WithResume("fleet-sess-9", 41))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	ack := c.ResumeAck()
	if ack == nil {
		t.Fatal("no resume ack recorded")
	}
	if !ack.Adopted || ack.SessionKey != "fleet-sess-9" {
		t.Fatalf("ack = %+v", ack)
	}
	if len(ack.Peers) != len(peers) || ack.Peers[0] != peers[0] || ack.Peers[1] != peers[1] {
		t.Fatalf("ack peers = %v, want %v", ack.Peers, peers)
	}

	// Frames flow normally after the handshake.
	const frames = 3
	for i := 0; i < frames; i++ {
		f := sampleFrame()
		f.FrameIndex = int32(i)
		f.Seed = int64(i)
		if !c.Send(f) {
			t.Fatalf("send %d rejected", i)
		}
	}
	for i := 0; i < frames; i++ {
		select {
		case _, ok := <-c.Results():
			if !ok {
				t.Fatalf("results closed after %d of %d", i, frames)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout waiting for result")
		}
	}

	st := srv.Stats()
	if st.Scheduler.ResumedSessions != 1 {
		t.Errorf("ResumedSessions = %d, want 1", st.Scheduler.ResumedSessions)
	}
	if st.Served != frames {
		t.Errorf("served = %d, want %d", st.Served, frames)
	}
	// Forced keyframe on the first post-migration frame, warps after.
	if st.Scheduler.KeyframesServed != 1 || st.Scheduler.WarpedServed != frames-1 {
		t.Errorf("keyframes/warped = %d/%d, want 1/%d",
			st.Scheduler.KeyframesServed, st.Scheduler.WarpedServed, frames-1)
	}
	// The adopted identity shows up in the session table.
	found := false
	for _, row := range srv.SessionStats() {
		if row.Key == "fleet-sess-9" {
			found = true
		}
	}
	if !found {
		t.Error("session key missing from SessionStats")
	}
}

// TestServerWithoutResumeUnchanged: a plain connection against a
// fleet-configured server behaves exactly as before the handshake existed.
func TestServerWithoutResumeUnchanged(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN),
		WithFleetPeers([]string{"10.0.0.1:7000"}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.ResumeAck() != nil {
		t.Error("plain dial produced a resume ack")
	}
	if !c.Send(sampleFrame()) {
		t.Fatal("send rejected")
	}
	select {
	case res := <-c.Results():
		if res.FrameIndex != 42 {
			t.Errorf("frame index = %d", res.FrameIndex)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if got := srv.Stats().Scheduler.ResumedSessions; got != 0 {
		t.Errorf("ResumedSessions = %d, want 0", got)
	}
}

// TestResumeMalformedRejected exercises the decoder's bounds checks: empty
// and oversized keys, truncation at every length, trailing garbage, huge
// claimed peer counts, and cross-type confusion all fail cleanly.
func TestResumeMalformedRejected(t *testing.T) {
	if _, err := UnmarshalResume(MarshalResume(&ResumeMsg{SessionKey: ""})); err == nil {
		t.Error("empty session key accepted")
	}
	long := string(bytes.Repeat([]byte("k"), maxSessionKeyBytes+1))
	if _, err := UnmarshalResume(MarshalResume(&ResumeMsg{SessionKey: long})); err == nil {
		t.Error("oversized session key accepted")
	}
	good := MarshalResume(&ResumeMsg{SessionKey: "abc", LastKeyframeEpoch: 7})
	for i := 0; i < len(good); i++ {
		if _, err := UnmarshalResume(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if _, err := UnmarshalResume(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// A resume payload is not an ack and vice versa.
	if _, err := UnmarshalResumeAck(good); err == nil {
		t.Error("resume payload decoded as ack")
	}
	ack := MarshalResumeAck(&ResumeAckMsg{SessionKey: "abc", Peers: []string{"p:1"}})
	if _, err := UnmarshalResume(ack); err == nil {
		t.Error("ack payload decoded as resume")
	}
	for i := 0; i < len(ack); i++ {
		if _, err := UnmarshalResumeAck(ack[:i]); err == nil {
			t.Errorf("ack truncation at %d accepted", i)
		}
	}
	// A tiny message claiming a huge peer count must be rejected before any
	// allocation, the same defence the frame decoder applies to counts.
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeResumeAck)
	w.bytes([]byte("abc"))
	w.u8(1)
	w.i32(1 << 30)
	if _, err := UnmarshalResumeAck(w.buf); err == nil {
		t.Error("huge claimed peer count accepted")
	}
}
