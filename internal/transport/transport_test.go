package transport

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/segmodel"
)

func rectMask(w, h, x0, y0, x1, y1 int) *mask.Bitmask {
	m := mask.New(w, h)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y)
		}
	}
	return m
}

func sampleFrame() *FrameMsg {
	m := rectMask(320, 240, 60, 50, 180, 150)
	return &FrameMsg{
		FrameIndex: 42,
		Width:      320,
		Height:     240,
		Seed:       7,
		Objects: []segmodel.ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m, Box: m.BoundingBox()},
		},
		TileCols:      10,
		QualityLevels: []float32{1, 0.5, 0.25},
		Areas: []accel.Area{
			{Box: mask.Box{MinX: 40, MinY: 40, MaxX: 200, MaxY: 170}, Label: 2, Known: true},
		},
		PaddingBytes: 128,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	b := MarshalFrame(f)
	got, err := UnmarshalFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIndex != f.FrameIndex || got.Width != f.Width || got.Seed != f.Seed {
		t.Error("header mismatch")
	}
	if len(got.Objects) != 1 || got.Objects[0].Label != 2 {
		t.Fatal("objects mismatch")
	}
	if mask.IoU(got.Objects[0].Visible, f.Objects[0].Visible) != 1 {
		t.Error("mask did not survive RLE round trip")
	}
	if len(got.QualityLevels) != 3 || got.QualityLevels[1] != 0.5 {
		t.Error("quality levels mismatch")
	}
	if len(got.Areas) != 1 || !got.Areas[0].Known || got.Areas[0].Label != 2 {
		t.Error("areas mismatch")
	}
	if got.PaddingBytes != 128 {
		t.Error("padding mismatch")
	}
}

func TestResultRoundTrip(t *testing.T) {
	m := rectMask(320, 240, 100, 80, 220, 200)
	det := segmodel.Detection{ObjectID: 3, Label: 5, Score: 0.87, Mask: m, Box: m.BoundingBox()}
	msg := &ResultMsg{
		FrameIndex: 9,
		InferMs:    123.5,
		Detections: []WireDetection{FromDetection(det, 160)},
	}
	b := MarshalResult(msg)
	got, err := UnmarshalResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIndex != 9 || got.InferMs != 123.5 || len(got.Detections) != 1 {
		t.Fatal("header mismatch")
	}
	rec := got.Detections[0].ToDetection()
	if rec.Label != 5 || rec.ObjectID != 3 {
		t.Error("detection fields mismatch")
	}
	if rec.Mask == nil {
		t.Fatal("mask not reconstructed")
	}
	if iou := mask.IoU(rec.Mask, m); iou < 0.9 {
		t.Errorf("contour round-trip IoU = %.3f", iou)
	}
}

func TestMaskRLERoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := mask.New(48, 40)
		for i := 0; i < 48*40; i++ {
			if r.Float64() < 0.3 {
				m.Set(i%48, i/48)
			}
		}
		b := encodeMask(m)
		got, err := decodeMask(b)
		if err != nil {
			return false
		}
		return mask.IoU(m, got) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{99, 1, 0, 0},
		bytes.Repeat([]byte{0xff}, 64),
		MarshalFrame(sampleFrame())[:10], // truncated
	}
	for i, b := range cases {
		if _, err := UnmarshalFrame(b); err == nil {
			t.Errorf("case %d: frame decode accepted garbage", i)
		}
		if _, err := UnmarshalResult(b); err == nil {
			t.Errorf("case %d: result decode accepted garbage", i)
		}
	}
}

func TestWriteReadMessage(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello edge")
	if err := WriteMessage(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload mismatch")
	}
	// Oversized writes rejected.
	if err := WriteMessage(&buf, make([]byte, MaxMessageBytes+1)); err == nil {
		t.Error("oversize accepted")
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()

	client, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()

	if !client.Send(sampleFrame()) {
		t.Fatal("send rejected")
	}
	select {
	case res := <-client.Results():
		if res.FrameIndex != 42 {
			t.Errorf("frame index = %d", res.FrameIndex)
		}
		if res.InferMs <= 0 {
			t.Error("no inference latency reported")
		}
		if len(res.Detections) == 0 {
			t.Error("no detections for a large clean object")
		} else {
			d := res.Detections[0].ToDetection()
			if d.Mask == nil || d.Label != 2 {
				t.Errorf("bad detection: label=%d", d.Label)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for result")
	}

	st := srv.Stats()
	if st.Served != 1 || st.MeanInferMs <= 0 {
		t.Errorf("server stats: served=%d mean=%.1f", st.Served, st.MeanInferMs)
	}
}

func TestMultipleClientsConcurrent(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	const clients = 4
	const framesPer = 3
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(id int) {
			c, err := Dial(addr.String(), time.Second)
			if err != nil {
				errc <- err
				return
			}
			defer func() { _ = c.Close() }()
			for j := 0; j < framesPer; j++ {
				f := sampleFrame()
				f.FrameIndex = int32(id*100 + j)
				f.Seed = int64(id*100 + j)
				if !c.Send(f) {
					errc <- err
					return
				}
			}
			for j := 0; j < framesPer; j++ {
				select {
				case res, ok := <-c.Results():
					if !ok {
						errc <- c.Err()
						return
					}
					if int(res.FrameIndex)/100 != id {
						errc <- ErrBadMessage
						return
					}
				case <-time.After(10 * time.Second):
					errc <- timeoutErr{}
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.Served != clients*framesPer {
		t.Errorf("served = %d, want %d", st.Served, clients*framesPer)
	}
	if st.PeakConns < 1 {
		t.Errorf("peak conns = %d, want >= 1", st.PeakConns)
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string { return "timeout" }

func TestClientSendAfterClose(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Send(sampleFrame()) {
		t.Error("send after close accepted")
	}
	// Double close is a no-op.
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestGuidedInferenceOverWire(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Guided (areas present) should report lower latency than vanilla.
	guided := sampleFrame()
	vanilla := sampleFrame()
	vanilla.Areas = nil
	vanilla.FrameIndex = 43

	if !c.Send(guided) || !c.Send(vanilla) {
		t.Fatal("send failed")
	}
	latency := map[int32]float64{}
	for i := 0; i < 2; i++ {
		select {
		case res := <-c.Results():
			latency[res.FrameIndex] = res.InferMs
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
	if latency[42] >= latency[43] {
		t.Errorf("guided %.1f ms !< vanilla %.1f ms", latency[42], latency[43])
	}
}

func TestPaddingInflatesWireSize(t *testing.T) {
	small := sampleFrame()
	small.PaddingBytes = 0
	big := sampleFrame()
	big.PaddingBytes = 10_000
	if len(MarshalFrame(big)) < len(MarshalFrame(small))+10_000 {
		t.Error("padding not applied")
	}
}

func TestFromDetectionBoxOnly(t *testing.T) {
	d := segmodel.Detection{ObjectID: 1, Label: 4, Score: 0.5,
		Box: mask.Box{MinX: 1, MinY: 2, MaxX: 30, MaxY: 40}}
	w := FromDetection(d, 64)
	if len(w.Contour) != 0 {
		t.Error("box-only detection should have no contour")
	}
	back := w.ToDetection()
	if back.Mask != nil || back.Box != d.Box {
		t.Error("box-only round trip failed")
	}
	_ = geom.Vec2{}
}

func TestErrorMessageRoundTrip(t *testing.T) {
	b := MarshalError("bad frame")
	if typ, err := MessageType(b); err != nil || typ != TypeError {
		t.Fatalf("type = %d, err = %v", typ, err)
	}
	msg, err := UnmarshalError(b)
	if err != nil || msg != "bad frame" {
		t.Fatalf("msg = %q, err = %v", msg, err)
	}
	if _, err := UnmarshalError([]byte{1, TypeResult}); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := MessageType([]byte{9}); err == nil {
		t.Error("short/garbled payload accepted")
	}
}

func TestServerReportsDecodeErrorToClient(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Write a framed-but-garbled payload directly through the send queue:
	// craft a FrameMsg whose marshaled bytes we then corrupt is hard via
	// the client API, so dial a raw connection instead.
	raw, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	// Send garbage through the raw socket path by abusing Send with a
	// valid message, then verify the error path with a direct conn.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := WriteMessage(conn, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadMessage(conn)
	if err != nil {
		t.Fatalf("no error report: %v", err)
	}
	typ, err := MessageType(payload)
	if err != nil || typ != TypeError {
		t.Fatalf("expected TypeError reply, got type %d err %v", typ, err)
	}
	msg, err := UnmarshalError(payload)
	if err != nil || msg == "" {
		t.Fatalf("bad error body: %q, %v", msg, err)
	}
}
