package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"edgeis/internal/geom"
	"edgeis/internal/segmodel"
)

func sampleResult() *ResultMsg {
	m := rectMask(320, 240, 100, 80, 220, 200)
	det := segmodel.Detection{ObjectID: 3, Label: 5, Score: 0.87, Mask: m, Box: m.BoundingBox()}
	return &ResultMsg{
		FrameIndex: 9,
		InferMs:    123.5,
		Detections: []WireDetection{FromDetection(det, 160)},
	}
}

// corruptions derives a spread of adversarial variants from a valid
// encoding: truncations, trailing junk, and single-field overwrites.
func corruptions(valid []byte) [][]byte {
	out := [][]byte{
		valid[:0],
		valid[:1],
		valid[:2],
		valid[:len(valid)/2],
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0xff),
	}
	// Overwrite each i32-aligned field with a huge count.
	for off := 2; off+4 <= len(valid) && off < 64; off += 4 {
		b := append([]byte{}, valid...)
		binary.BigEndian.PutUint32(b[off:], 0x7fffffff)
		out = append(out, b)
	}
	return out
}

// FuzzUnmarshalFrame checks that arbitrary bytes never panic the frame
// decoder and that anything it accepts re-encodes canonically: a decoded
// frame marshals to bytes that decode to the same frame again.
func FuzzUnmarshalFrame(f *testing.F) {
	valid := MarshalFrame(sampleFrame())
	f.Add(valid)
	f.Add(MarshalFrame(&FrameMsg{}))
	f.Add(MarshalFrame(&FrameMsg{FrameIndex: 1, Width: 64, Height: 64, PaddingBytes: 3}))
	for _, c := range corruptions(valid) {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		b2 := MarshalFrame(msg)
		msg2, err := UnmarshalFrame(b2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if b3 := MarshalFrame(msg2); !bytes.Equal(b2, b3) {
			t.Fatal("frame encoding is not canonical under round trip")
		}
	})
}

// FuzzUnmarshalResult is the result-side twin of FuzzUnmarshalFrame.
func FuzzUnmarshalResult(f *testing.F) {
	valid := MarshalResult(sampleResult())
	f.Add(valid)
	f.Add(MarshalResult(&ResultMsg{}))
	f.Add(MarshalResult(&ResultMsg{FrameIndex: 2, Detections: []WireDetection{
		{ObjectID: 1, Label: 1, Score: 0.5, Contour: []geom.Vec2{geom.V2(0, 0), geom.V2(4, 0), geom.V2(2, 3)}, Width: 8, Height: 8},
	}}))
	for _, c := range corruptions(valid) {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := UnmarshalResult(data)
		if err != nil {
			return
		}
		b2 := MarshalResult(msg)
		msg2, err := UnmarshalResult(b2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded result failed: %v", err)
		}
		if b3 := MarshalResult(msg2); !bytes.Equal(b2, b3) {
			t.Fatal("result encoding is not canonical under round trip")
		}
	})
}

// FuzzUnmarshalError covers the third message type: decode must never
// panic, and accepted payloads round-trip.
func FuzzUnmarshalError(f *testing.F) {
	f.Add(MarshalError("boom"))
	f.Add(MarshalError(""))
	f.Add([]byte{protocolVersion, TypeError, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := UnmarshalError(data)
		if err != nil {
			return
		}
		got, err := UnmarshalError(MarshalError(msg))
		if err != nil || got != msg {
			t.Fatalf("error message did not round-trip: %q %v", got, err)
		}
	})
}

// TestTruncatedMessagesRejected pins the strict framing contract: every
// strict prefix of a valid message must be rejected, never silently
// decoded into a shorter message.
func TestTruncatedMessagesRejected(t *testing.T) {
	frame := MarshalFrame(sampleFrame())
	for n := 0; n < len(frame); n++ {
		if _, err := UnmarshalFrame(frame[:n]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded without error", n, len(frame))
		}
	}
	res := MarshalResult(sampleResult())
	for n := 0; n < len(res); n++ {
		if _, err := UnmarshalResult(res[:n]); err == nil {
			t.Fatalf("truncated result of %d/%d bytes decoded without error", n, len(res))
		}
	}
	errMsg := MarshalError("decode failure")
	for n := 0; n < len(errMsg); n++ {
		if _, err := UnmarshalError(errMsg[:n]); err == nil {
			t.Fatalf("truncated error of %d/%d bytes decoded without error", n, len(errMsg))
		}
	}
}

// TestTrailingGarbageRejected: bytes beyond the declared content violate
// the framing contract even when the prefix is a valid message.
func TestTrailingGarbageRejected(t *testing.T) {
	frame := append(MarshalFrame(sampleFrame()), 1, 2, 3)
	if _, err := UnmarshalFrame(frame); err == nil {
		t.Error("frame with trailing garbage decoded without error")
	}
	res := append(MarshalResult(sampleResult()), 0)
	if _, err := UnmarshalResult(res); err == nil {
		t.Error("result with trailing garbage decoded without error")
	}
	errMsg := append(MarshalError("x"), 7)
	if _, err := UnmarshalError(errMsg); err == nil {
		t.Error("error message with trailing garbage decoded without error")
	}
}

// TestOversizedCountsRejected: a tiny message declaring a huge element
// count must fail validation before any large allocation happens.
func TestOversizedCountsRejected(t *testing.T) {
	huge := func(tag uint8, headerLen int) []byte {
		b := MarshalFrame(sampleFrame())
		if tag == TypeResult {
			b = MarshalResult(sampleResult())
		}
		b = append([]byte{}, b[:headerLen]...)
		return binary.BigEndian.AppendUint32(b, 0x7fffffff)
	}
	// Frame object count lives right after version+type+3*i32+i64 = 22 bytes.
	if _, err := UnmarshalFrame(huge(TypeFrame, 22)); err == nil {
		t.Error("frame with huge object count decoded without error")
	}
	// Result detection count lives after version+type+i32+f64 = 14 bytes.
	if _, err := UnmarshalResult(huge(TypeResult, 14)); err == nil {
		t.Error("result with huge detection count decoded without error")
	}
	// Negative padding.
	neg := MarshalFrame(&FrameMsg{})
	binary.BigEndian.PutUint32(neg[len(neg)-4:], 0x80000000)
	if _, err := UnmarshalFrame(neg); err == nil {
		t.Error("frame with negative padding decoded without error")
	}
	// RLE mask whose runs do not cover width*height.
	short := []byte{}
	short = binary.BigEndian.AppendUint32(short, 8) // width
	short = binary.BigEndian.AppendUint32(short, 8) // height
	short = binary.BigEndian.AppendUint32(short, 1) // one run...
	short = binary.BigEndian.AppendUint32(short, 5) // ...of 5 < 64 pixels
	if _, err := decodeMask(short); err == nil {
		t.Error("underfull RLE mask decoded without error")
	}
}
