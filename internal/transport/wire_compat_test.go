package transport

import (
	"bytes"
	"math/rand"
	"testing"

	"edgeis/internal/mask"
)

// TestMaskWireFormatGolden pins the mask wire encoding to the exact bytes
// the pre-packed (byte-per-pixel) implementation produced: big-endian i32
// width, height and run count, then alternating run lengths of 0s and 1s
// over the row-major pixel stream, starting with 0s. The golden blob is
// hand-assembled, so any drift in either the RLE or the packed<->byte
// boundary conversion fails loudly — old peers must keep decoding us.
func TestMaskWireFormatGolden(t *testing.T) {
	// 5x3 mask:  . X X . .
	//            . . . . .
	//            X X X X X
	// Flat stream: 0,1,1,0,0,0,0,0,0,0,1,1,1,1,1 -> runs 1,2,7,5.
	m := mask.New(5, 3)
	m.Set(1, 0)
	m.Set(2, 0)
	for x := 0; x < 5; x++ {
		m.Set(x, 2)
	}
	golden := []byte{
		0, 0, 0, 5, // width
		0, 0, 0, 3, // height
		0, 0, 0, 4, // run count
		0, 0, 0, 1, // 1 zero
		0, 0, 0, 2, // 2 ones
		0, 0, 0, 7, // 7 zeros
		0, 0, 0, 5, // 5 ones
	}
	got := encodeMask(m)
	if !bytes.Equal(got, golden) {
		t.Fatalf("encodeMask = % x\nwant        % x", got, golden)
	}
	back, err := decodeMask(golden)
	if err != nil {
		t.Fatalf("decodeMask: %v", err)
	}
	if mask.IoU(back, m) != 1 {
		t.Fatal("golden blob did not decode to the original mask")
	}
}

// TestMaskWireFormatCrossVersion round-trips masks wider than one storage
// word through encode/decode and checks the byte-per-pixel stream the wire
// sees is unchanged by the packed representation (non-aligned widths
// exercise the tail-word boundary conversion).
func TestMaskWireFormatCrossVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sz := range [][2]int{{64, 4}, {65, 4}, {127, 3}, {320, 240}} {
		m := mask.New(sz[0], sz[1])
		for i := 0; i < sz[0]*sz[1]; i++ {
			if rng.Float64() < 0.35 {
				m.Set(i%sz[0], i/sz[0])
			}
		}
		// The wire payload is defined over the flat byte stream; simulate
		// an old byte-per-pixel peer by re-encoding from that stream.
		flat := m.Bytes()
		peer := mask.FromBytes(sz[0], sz[1], flat)
		if !bytes.Equal(encodeMask(m), encodeMask(peer)) {
			t.Fatalf("size %v: packed encoding differs from byte-stream peer encoding", sz)
		}
		back, err := decodeMask(encodeMask(m))
		if err != nil {
			t.Fatalf("size %v: decode: %v", sz, err)
		}
		if mask.IoU(back, m) != 1 {
			t.Fatalf("size %v: wire round trip corrupted mask", sz)
		}
	}
}
