package transport

import (
	"net"
	"testing"
	"time"
)

// TestClientConnLostAccounting: a connection dying with frames outstanding
// used to leave them in no accounting bucket at all — neither dropped nor
// rejected. They are now classified ConnLost, and the client-side
// conservation law sent == delivered + rejected + shed + connLost closes
// exactly.
func TestClientConnLostAccounting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const frames = 5
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Answer the first frame, swallow the rest, then hang up with four
		// frames unresolved.
		payload, err := ReadMessage(conn)
		if err != nil {
			conn.Close()
			return
		}
		f, err := UnmarshalFrame(payload)
		if err != nil {
			conn.Close()
			return
		}
		WriteMessage(conn, MarshalResult(&ResultMsg{FrameIndex: f.FrameIndex}))
		for i := 1; i < frames; i++ {
			if _, err := ReadMessage(conn); err != nil {
				break
			}
		}
		conn.Close()
	}()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < frames; i++ {
		f := sampleFrame()
		f.FrameIndex = int32(i)
		if !c.Send(f) {
			t.Fatalf("Send(%d) refused", i)
		}
	}
	if c.ConnLost() != 0 {
		t.Error("ConnLost settled before the connection ended")
	}

	// Drain results until the channel closes: that is the moment the read
	// loop exited and the loss bucket settled.
	got := 0
	for range c.Results() {
		got++
	}
	if got != 1 {
		t.Fatalf("delivered %d results, want 1", got)
	}
	if c.Sent() != frames || c.Delivered() != 1 || c.Rejected() != 0 || c.Shed() != 0 {
		t.Fatalf("sent/delivered/rejected/shed = %d/%d/%d/%d",
			c.Sent(), c.Delivered(), c.Rejected(), c.Shed())
	}
	if c.ConnLost() != frames-1 {
		t.Errorf("ConnLost = %d, want %d", c.ConnLost(), frames-1)
	}
	if c.Sent() != c.Delivered()+c.Rejected()+c.Shed()+c.ConnLost() {
		t.Error("client conservation law violated after connection loss")
	}
	// Settled means settled: no frame can slip in behind the tally.
	if c.Send(sampleFrame()) {
		t.Error("Send accepted a frame after the loss bucket settled")
	}
	if c.Sent() != frames {
		t.Errorf("sent moved after settlement: %d", c.Sent())
	}
}

// TestClientConnLostZeroOnCleanRun: a fully-served exchange settles with an
// empty loss bucket.
func TestClientConnLostZeroOnCleanRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const frames = 3
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; i < frames; i++ {
			payload, err := ReadMessage(conn)
			if err != nil {
				return
			}
			f, err := UnmarshalFrame(payload)
			if err != nil {
				return
			}
			WriteMessage(conn, MarshalResult(&ResultMsg{FrameIndex: f.FrameIndex}))
		}
	}()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		f := sampleFrame()
		f.FrameIndex = int32(i)
		if !c.Send(f) {
			t.Fatalf("Send(%d) refused", i)
		}
	}
	for i := 0; i < frames; i++ {
		select {
		case _, ok := <-c.Results():
			if !ok {
				t.Fatalf("results closed after %d of %d", i, frames)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for result %d", i)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.ConnLost() != 0 {
		t.Errorf("clean run ConnLost = %d, want 0", c.ConnLost())
	}
	if c.Sent() != c.Delivered() {
		t.Errorf("sent %d != delivered %d on clean run", c.Sent(), c.Delivered())
	}
}
