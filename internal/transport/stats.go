package transport

import (
	"fmt"
	"sort"
	"strings"

	"edgeis/internal/edge"
	"edgeis/internal/metrics"
)

// FormatServerStats renders the operator-facing server snapshot: one summary
// line, a batch/shed policy line, then the per-session serving table with
// per-session reject and shed counts. The output is deterministic —
// sessions print in ascending session-ID order regardless of the order they
// arrive in, so repeated printouts and the golden test see identical
// tables. The caller decides where it goes (edgeis-server logs it on its
// -stats interval and at shutdown).
func FormatServerStats(st ServerStats, sessions []edge.SessionStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %d frames (rejected %d, shed %d), mean inference %.1f ms; conns %d (peak %d); queue mean %.1f peak %d, wait mean %.2f ms p95 %.2f ms",
		st.Served, st.Rejected, st.Shed, st.MeanInferMs, st.ActiveConns, st.PeakConns,
		st.Scheduler.MeanQueueDepth, st.Scheduler.PeakQueueDepth,
		st.Scheduler.MeanWaitMs, st.Scheduler.P95WaitMs)
	if st.Scheduler.Batches > 0 {
		fmt.Fprintf(&b, "\nbatches %d, mean size %.2f, sizes %s",
			st.Scheduler.Batches, st.Scheduler.MeanBatchSize,
			metrics.SizeHistogram(st.Scheduler.BatchSizeCounts))
	}
	// Skip-compute line only when the feature cache actually served
	// something, so the default (policy off) output stays byte-identical
	// for the golden test.
	if kf, warped := st.Scheduler.KeyframesServed, st.Scheduler.WarpedServed; kf+warped > 0 {
		fmt.Fprintf(&b, "\nkeyframes %d, warped %d (cache hit rate %.0f%%)",
			kf, warped, 100*float64(warped)/float64(kf+warped))
	}
	// Fleet line only when sessions were actually adopted from another
	// replica, so a single-edge deployment's output stays byte-identical.
	if st.Scheduler.ResumedSessions > 0 {
		fmt.Fprintf(&b, "\nresumed sessions %d", st.Scheduler.ResumedSessions)
	}
	if len(sessions) == 0 {
		b.WriteByte('\n')
		return b.String()
	}
	// Scheduler.Sessions() already sorts by ID, but the table must stay
	// stable for any caller, so sort defensively rather than by contract.
	rows := append([]edge.SessionStats(nil), sessions...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	table := make([]metrics.ServingRow, 0, len(rows))
	for _, s := range rows {
		table = append(table, metrics.ServingRow{
			Session:     s.Label(),
			Served:      s.Served,
			Rejected:    s.Rejected,
			Shed:        s.Shed,
			MeanInferMs: s.MeanInferMs,
			MeanWaitMs:  s.MeanWaitMs,
		})
	}
	b.WriteByte('\n')
	b.WriteString(metrics.ServingTable("sessions", table))
	return b.String()
}
