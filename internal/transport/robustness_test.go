package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"edgeis/internal/segmodel"
)

// stallingPeer accepts TCP connections and never reads from them, so the
// kernel buffers fill and the client's writer blocks — the shape of a
// stalled or overloaded edge server.
type stallingPeer struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newStallingPeer(t *testing.T) *stallingPeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stallingPeer{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Shrink the receive buffer so a handful of large frames is
			// enough to stall the sender.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetReadBuffer(4096)
			}
			p.mu.Lock()
			p.conns = append(p.conns, conn)
			p.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		p.mu.Lock()
		for _, c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	})
	return p
}

// bigFrame is large enough (1 MiB of padding) that a few of them overwhelm
// any socket buffering.
func bigFrame() *FrameMsg {
	f := sampleFrame()
	f.PaddingBytes = 1 << 20
	return f
}

// within fails the test if fn does not return before the deadline — the
// watchdog that turns a deadlock into a test failure instead of a hang.
func within(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not complete within %v", what, d)
	}
}

// TestSendBackpressure: when the server stalls, the bounded send queue
// fills and Send starts shedding frames (returning false) instead of
// blocking the caller — the real-time contract of the client.
func TestSendBackpressure(t *testing.T) {
	peer := newStallingPeer(t)
	c, err := Dial(peer.ln.Addr().String(), time.Second, WithSendQueue(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	shed := false
	for i := 0; i < 64 && !shed; i++ {
		shed = !c.Send(bigFrame())
	}
	if !shed {
		t.Fatal("Send never returned false against a stalled server")
	}
	if c.Sent() == 0 {
		t.Error("expected at least one frame to be accepted before the stall")
	}
}

// TestCloseNeverDeadlocks: Close must return promptly even while the
// writer goroutine is blocked mid-write on a stalled peer, and repeated or
// concurrent Close calls must be safe.
func TestCloseNeverDeadlocks(t *testing.T) {
	peer := newStallingPeer(t)
	c, err := Dial(peer.ln.Addr().String(), time.Second, WithSendQueue(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if !c.Send(bigFrame()) {
			break
		}
	}
	// Give the writer a moment to park inside a blocked Write call.
	time.Sleep(50 * time.Millisecond)

	within(t, 2*time.Second, "concurrent Close", func() {
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Close()
			}()
		}
		wg.Wait()
	})
	if c.Send(sampleFrame()) {
		t.Error("Send accepted a frame after Close")
	}
}

// TestClientWriteTimeout: with a write deadline configured, a stalled
// server surfaces as a timeout through Err instead of a silently wedged
// writer.
func TestClientWriteTimeout(t *testing.T) {
	peer := newStallingPeer(t)
	c, err := Dial(peer.ln.Addr().String(), time.Second,
		WithSendQueue(8), WithWriteTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.Send(bigFrame())
		if err := c.Err(); err != nil {
			if !timeoutError(err) {
				t.Fatalf("expected a timeout error, got %v", err)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("write deadline never fired against a stalled server")
}

// TestServerCloseWithIdleClients: Close must force-close connections whose
// serving goroutines are parked in ReadMessage waiting for a frame that
// will never come, instead of deadlocking on the WaitGroup.
func TestServerCloseWithIdleClients(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.YOLACT))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, 0, 3)
	for i := 0; i < 3; i++ {
		c, err := Dial(addr.String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	// Let the server's per-connection goroutines reach ReadMessage.
	time.Sleep(50 * time.Millisecond)

	within(t, 2*time.Second, "Server.Close with idle clients", func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	within(t, 2*time.Second, "second Server.Close", func() { srv.Close() })
	for _, c := range clients {
		c.Close()
	}
}

// TestServerReadTimeout: an idle connection is dropped once the configured
// read deadline lapses, freeing the serving goroutine.
func TestServerReadTimeout(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.YOLACT),
		WithConnReadTimeout(100*time.Millisecond))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The server should hang up on us; the client observes the results
	// channel closing.
	select {
	case _, ok := <-c.Results():
		if ok {
			t.Fatal("unexpected result from an idle connection")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("idle connection was never dropped by the read deadline")
	}
}

// TestServerStillServesWithinReadTimeout: the read deadline is re-armed per
// frame, so a client that keeps sending inside the window is never dropped.
func TestServerStillServesWithinReadTimeout(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.YOLACT),
		WithConnReadTimeout(500*time.Millisecond),
		WithConnWriteTimeout(time.Second))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		f := sampleFrame()
		f.FrameIndex = int32(i)
		if !c.Send(f) {
			t.Fatalf("send %d rejected", i)
		}
		select {
		case res, ok := <-c.Results():
			if !ok {
				t.Fatalf("connection dropped mid-stream: %v", c.Err())
			}
			if res.FrameIndex != int32(i) {
				t.Fatalf("result order: got frame %d, want %d", res.FrameIndex, i)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("no result for frame %d", i)
		}
		time.Sleep(100 * time.Millisecond) // idle, but inside the window
	}
}
