package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Client is the mobile side of the wire protocol. Offloads are
// asynchronous: Send queues a frame, results arrive on the Results channel
// in server order. A dedicated writer goroutine keeps the camera loop from
// blocking on the socket; when the uplink stalls the bounded send queue
// fills and Send sheds frames instead of blocking — the backpressure
// behaviour a real-time client needs.
type Client struct {
	conn         net.Conn
	results      chan *ResultMsg
	sendq        chan *FrameMsg
	done         chan struct{}
	wg           sync.WaitGroup
	writeTimeout time.Duration
	resume       *ResumeMsg
	ack          *ResumeAckMsg

	closeOnce sync.Once
	closeErr  error

	mu        sync.Mutex
	lastErr   error
	sent      int
	delivered int
	rejected  int
	shed      int
	// connLost is the settled count of frames accepted for sending but
	// never resolved (no result, reject, or shed) when the connection
	// ended. Before PR 10 these frames were neither dropped nor rejected —
	// an unclassified leak in the conservation law; now every sent frame
	// lands in exactly one bucket: sent == delivered + rejected + shed +
	// connLost once lostSettled.
	connLost    int
	lostSettled bool
}

// ClientOption customizes a client connection.
type ClientOption func(*Client)

// WithSendQueue bounds the number of frames waiting for the socket
// (default 16). When the queue is full Send rejects the frame.
func WithSendQueue(depth int) ClientOption {
	return func(c *Client) {
		if depth > 0 {
			c.sendq = make(chan *FrameMsg, depth)
		}
	}
}

// WithWriteTimeout bounds each frame write on the socket. A stalled server
// then surfaces as a deadline error via Err instead of a silently wedged
// writer goroutine (default: no deadline; Close still unblocks the writer).
func WithWriteTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.writeTimeout = d }
}

// WithResume opens the connection with a session-resume handshake: Dial
// sends TypeResume carrying the session key and the last keyframe epoch
// the client holds, then blocks until the server's TypeResumeAck (bounded
// by the dial timeout). The ack — adoption verdict plus the server's fleet
// peer list — is available via ResumeAck. A fleet client migrating a
// session to a new replica dials with this option so the target adopts the
// session identity before any frame flows.
func WithResume(sessionKey string, lastKeyframeEpoch int64) ClientOption {
	return func(c *Client) {
		c.resume = &ResumeMsg{SessionKey: sessionKey, LastKeyframeEpoch: lastKeyframeEpoch}
	}
}

// Dial connects to an edge server.
func Dial(addr string, timeout time.Duration, opts ...ClientOption) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		results: make(chan *ResultMsg, 16),
		sendq:   make(chan *FrameMsg, 16),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.resume != nil {
		if err := c.handshake(timeout); err != nil {
			conn.Close()
			return nil, err
		}
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// handshake runs the synchronous resume exchange before the read/write
// loops exist, so no frame can interleave with it. The dial timeout bounds
// both halves; deadlines are cleared afterwards.
func (c *Client) handshake(timeout time.Duration) error {
	if timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("transport: resume handshake: %w", err)
		}
	}
	if err := WriteMessage(c.conn, MarshalResume(c.resume)); err != nil {
		return fmt.Errorf("transport: resume handshake: %w", err)
	}
	payload, err := ReadMessage(c.conn)
	if err != nil {
		return fmt.Errorf("transport: resume handshake: %w", err)
	}
	ack, err := UnmarshalResumeAck(payload)
	if err != nil {
		return fmt.Errorf("transport: resume handshake: %w", err)
	}
	if ack.SessionKey != c.resume.SessionKey {
		return fmt.Errorf("transport: resume handshake: server echoed session %q, want %q",
			ack.SessionKey, c.resume.SessionKey)
	}
	if timeout > 0 {
		if err := c.conn.SetDeadline(time.Time{}); err != nil {
			return fmt.Errorf("transport: resume handshake: %w", err)
		}
	}
	c.ack = ack
	return nil
}

// ResumeAck returns the server's resume acknowledgement, or nil when the
// connection was not opened with WithResume. Immutable once Dial returns.
func (c *Client) ResumeAck() *ResumeAckMsg { return c.ack }

// DialRetry dials an edge server with bounded exponential backoff: up to
// attempts tries, sleeping backoff, 2*backoff, ... between them. Transient
// connection refusals while the server is still binding its listener — the
// normal race at client startup — are absorbed instead of killing the run;
// a server that never appears still fails after the last attempt.
func DialRetry(addr string, timeout time.Duration, attempts int, backoff time.Duration, opts ...ClientOption) (*Client, error) {
	if attempts < 1 {
		attempts = 1
	}
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		c, err := Dial(addr, timeout, opts...)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: dial %s: gave up after %d attempts: %w", addr, attempts, lastErr)
}

// Results delivers inference results; the channel closes when the
// connection ends.
func (c *Client) Results() <-chan *ResultMsg { return c.results }

// Send queues a frame for offload. It returns false when the queue is full
// (the uplink is saturated) — the frame is skipped, which is exactly what a
// real-time client must do rather than blocking its camera loop.
func (c *Client) Send(f *FrameMsg) bool {
	select {
	case <-c.done:
		return false // closed connections never accept frames
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lostSettled {
		// The connection-loss accounting has been settled: admitting more
		// frames now would leak them past the ConnLost tally.
		return false
	}
	select {
	case c.sendq <- f:
		c.sent++
		return true
	default:
		return false
	}
}

// Sent returns the number of frames accepted for sending.
func (c *Client) Sent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// Rejected returns the number of frames the edge shed at admission
// (TypeReject replies). Rejections are per-frame and non-fatal; callers
// account them as dropped offloads.
func (c *Client) Rejected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejected
}

// Shed returns the number of this client's frames the edge displaced in
// favour of its own fresher frames (TypeShed replies under the latest-wins
// admission policy). Like rejections they are per-frame and non-fatal, and
// callers account them as dropped offloads.
func (c *Client) Shed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shed
}

// Delivered returns the number of results received from the edge.
func (c *Client) Delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// ConnLost returns the number of frames accepted for sending that were
// never resolved — no result, reject, or shed reply — by the time the
// connection ended, whether it died under the client or was closed by it.
// Zero until the read loop exits (the moment no further replies can
// arrive); after that sent == delivered + rejected + shed + connLost, the
// leak-free form of the client-side conservation law a fleet reconciles
// when it fails a session over to another replica.
func (c *Client) ConnLost() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connLost
}

// noteRejected, noteShed and noteConnLost are the audited counter mutators
// the conservation analyzer admits: the read loop's wire-reply accounting
// moves through them so every path that loses a frame is greppable.

func (c *Client) noteRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *Client) noteShed() {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
}

// noteConnLost settles the connection-loss bucket exactly once, when the
// read loop exits and no further replies can resolve outstanding frames.
// Everything sent but unresolved at that instant is classified ConnLost;
// Send refuses new frames afterwards so the settlement cannot be leaked
// past.
func (c *Client) noteConnLost() {
	c.mu.Lock()
	if !c.lostSettled {
		c.lostSettled = true
		c.connLost = c.sent - c.delivered - c.rejected - c.shed
	}
	c.mu.Unlock()
}

// Err returns the terminal connection error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

func (c *Client) setErr(err error) {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	c.mu.Lock()
	if c.lastErr == nil {
		c.lastErr = err
	}
	c.mu.Unlock()
}

func (c *Client) writeLoop() {
	defer c.wg.Done()
	for {
		select {
		case f := <-c.sendq:
			if c.writeTimeout > 0 {
				if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
					c.setErr(err)
					return
				}
			}
			if err := WriteMessage(c.conn, MarshalFrame(f)); err != nil {
				c.setErr(err)
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	defer close(c.results)
	defer c.noteConnLost()
	for {
		payload, err := ReadMessage(c.conn)
		if err != nil {
			c.setErr(err)
			return
		}
		switch t, terr := MessageType(payload); {
		case terr == nil && t == TypeError:
			if msg, merr := UnmarshalError(payload); merr == nil {
				c.setErr(fmt.Errorf("transport: server error: %s", msg))
			} else {
				c.setErr(merr)
			}
			return
		case terr == nil && t == TypeReject:
			if _, rerr := UnmarshalReject(payload); rerr != nil {
				c.setErr(rerr)
				return
			}
			c.noteRejected()
			continue
		case terr == nil && t == TypeShed:
			if _, _, serr := UnmarshalShed(payload); serr != nil {
				c.setErr(serr)
				return
			}
			c.noteShed()
			continue
		}
		res, err := UnmarshalResult(payload)
		if err != nil {
			c.setErr(err)
			return
		}
		c.mu.Lock()
		c.delivered++
		c.mu.Unlock()
		select {
		case c.results <- res:
		case <-c.done:
			return
		}
	}
}

// Close shuts the connection down and waits for the loops to exit. Closing
// the socket unblocks a writer stuck on a stalled peer, so Close never
// deadlocks; repeated and concurrent calls are safe and return the first
// call's error.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.closeErr = c.conn.Close()
		c.wg.Wait()
	})
	return c.closeErr
}

// timeoutError reports whether err is a network timeout (deadline
// exceeded), which callers may treat as retryable.
func timeoutError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded)
}
