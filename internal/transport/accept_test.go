package transport

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"edgeis/internal/segmodel"
)

// flakyListener injects transient Accept failures before delegating to the
// real listener, modelling EMFILE pressure or aborted handshakes.
type flakyListener struct {
	net.Listener
	failures int32
}

var errTransient = errors.New("transient accept failure")

func (l *flakyListener) Accept() (net.Conn, error) {
	if atomic.AddInt32(&l.failures, -1) >= 0 {
		return nil, errTransient
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientError pins the accept loop's recovery
// behaviour: a transient Accept error must not permanently stop the server
// admitting connections. Before the fix the loop returned on any error, so
// the TCP backlog kept completing handshakes while no connection was ever
// served — exactly the silent fleet-wide outage this test would time out on.
func TestAcceptLoopSurvivesTransientError(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.MaskRCNN))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyListener{Listener: ln, failures: 2}
	srv.ln = flaky
	srv.wg.Add(1)
	go srv.acceptLoop()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()

	client, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()

	if !client.Send(sampleFrame()) {
		t.Fatal("send rejected")
	}
	select {
	case res := <-client.Results():
		if res.FrameIndex != 42 {
			t.Errorf("frame index = %d", res.FrameIndex)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result: accept loop did not survive the transient error")
	}
	if atomic.LoadInt32(&flaky.failures) >= 0 {
		t.Error("listener never consumed its injected failures")
	}
	if st := srv.Stats(); st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
}
