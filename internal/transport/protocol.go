// Package transport implements the real network path of edgeIS: a
// length-prefixed binary protocol over TCP carrying offloaded frames from
// the mobile client to the edge server and segmentation results back
// (masks travel as contour vertex lists, the compact representation
// Section VI-A serializes with Boost in the paper).
//
// The simulation engine (package pipeline) models transmission analytically
// for experiments; this package is the deployable counterpart used by
// cmd/edgeis-server and cmd/edgeis-client, and its tests exercise the
// protocol end to end over real sockets.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"edgeis/internal/accel"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/segmodel"
)

// Protocol limits.
const (
	// MaxMessageBytes bounds a single message; larger reads are rejected
	// to keep a malformed peer from exhausting memory.
	MaxMessageBytes = 16 << 20
	// protocolVersion is checked on every message.
	protocolVersion = 1
)

// Message type tags.
const (
	// TypeFrame carries an offloaded frame (client -> server).
	TypeFrame uint8 = iota + 1
	// TypeResult carries segmentation output (server -> client).
	TypeResult
	// TypeError carries a server-side failure description.
	TypeError
	// TypeReject reports that the edge shed one frame at admission (its
	// scheduler queue was full). Unlike TypeError it is per-frame and
	// non-fatal: the connection keeps serving later frames.
	TypeReject
	// TypeShed reports that the edge displaced one queued frame in favour of
	// a fresher frame from the same session (latest-wins admission). It
	// carries a reason code; like TypeReject it is per-frame and non-fatal.
	TypeShed
	// TypeResume opens a connection by claiming a session identity
	// (client -> server, first message only). A fleet client migrating off a
	// dead replica sends it so the target replica adopts the session —
	// carrying the accounting identity over while knowing the feature cache
	// and guidance continuity died with the old replica and must be rebuilt
	// (the first post-migration frame is forced to be a keyframe).
	TypeResume
	// TypeResumeAck answers TypeResume (server -> client). It echoes the
	// session key, reports whether the session was adopted, and advertises
	// the server's known fleet peers so a client dialed at one address
	// discovers the replica set it can fail over to.
	TypeResumeAck
)

// Shed reason codes carried by TypeShed.
const (
	// ShedStaleReplaced: the frame was queued but a fresher frame from the
	// same session arrived at a full queue and took its slot.
	ShedStaleReplaced uint8 = 1
)

// Errors.
var (
	// ErrTooLarge indicates a message exceeding MaxMessageBytes.
	ErrTooLarge = errors.New("transport: message too large")
	// ErrBadMessage indicates a framing or version violation.
	ErrBadMessage = errors.New("transport: malformed message")
)

// FrameMsg is an offloaded frame. In deployment the payload would be HEVC
// tiles; here the synthetic frame content (object truths standing in for
// pixels) rides along with the CIIA guidance, and Padding inflates the wire
// size to the codec's modelled byte count so transfers exercise realistic
// volumes.
type FrameMsg struct {
	FrameIndex int32
	Width      int32
	Height     int32
	Seed       int64
	Objects    []segmodel.ObjectTruth
	// QualityLevels is the per-tile fidelity map (empty = lossless).
	QualityLevels []float32
	TileCols      int32
	// Guidance areas (nil = vanilla inference).
	Areas []accel.Area
	// PaddingBytes inflates the encoded message to the modelled size.
	PaddingBytes int32
}

// ResultMsg is a segmentation result. Masks are shipped as simplified
// contours and re-rasterized client-side.
type ResultMsg struct {
	FrameIndex int32
	InferMs    float64
	Detections []WireDetection
}

// WireDetection is one detection on the wire.
type WireDetection struct {
	ObjectID int32
	Label    int32
	Score    float64
	Box      mask.Box
	// Contour is empty for box-only results.
	Contour []geom.Vec2
	// Width/Height rebuild the mask raster.
	Width, Height int32
}

// ToDetection reconstructs the dense mask from the contour.
func (w *WireDetection) ToDetection() segmodel.Detection {
	d := segmodel.Detection{
		ObjectID: int(w.ObjectID),
		Label:    int(w.Label),
		Score:    w.Score,
		Box:      w.Box,
	}
	if len(w.Contour) >= 3 {
		d.Mask = mask.FillPolygon(w.Contour, int(w.Width), int(w.Height))
	}
	return d
}

// FromDetection converts a detection for the wire, compressing the mask to
// at most maxContour vertices.
func FromDetection(d segmodel.Detection, maxContour int) WireDetection {
	w := WireDetection{
		ObjectID: int32(d.ObjectID),
		Label:    int32(d.Label),
		Score:    d.Score,
		Box:      d.Box,
	}
	if d.Mask != nil {
		w.Width = int32(d.Mask.Width)
		w.Height = int32(d.Mask.Height)
		cs := mask.ExtractContours(d.Mask, 8)
		if len(cs) > 0 {
			longest := cs[0]
			for _, c := range cs[1:] {
				if len(c) > len(longest) {
					longest = c
				}
			}
			w.Contour = mask.SimplifyContour(longest, maxContour)
		}
	}
	return w
}

// writer accumulates binary fields.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *writer) i32(v int32)   { w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v)) }
func (w *writer) i64(v int64)   { w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v)) }
func (w *writer) f64(v float64) { w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v)) }
func (w *writer) f32(v float32) { w.buf = binary.BigEndian.AppendUint32(w.buf, math.Float32bits(v)) }
func (w *writer) bytes(b []byte) {
	w.i32(int32(len(b)))
	w.buf = append(w.buf, b...)
}

// reader consumes binary fields with bounds checking.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrBadMessage
		return false
	}
	return true
}

// remaining returns the unread byte count — element-count fields are
// validated against it before allocating, so a tiny message claiming a
// huge count is rejected instead of triggering a large allocation.
func (r *reader) remaining() int { return len(r.buf) - r.off }

// done reports whether the message was consumed exactly. Trailing bytes
// are a framing violation: the length prefix must match the content.
func (r *reader) done() bool {
	if r.err != nil {
		return false
	}
	if r.off != len(r.buf) {
		r.err = ErrBadMessage
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) i32() int32 {
	if !r.need(4) {
		return 0
	}
	v := int32(binary.BigEndian.Uint32(r.buf[r.off:]))
	r.off += 4
	return v
}

func (r *reader) i64() int64 {
	if !r.need(8) {
		return 0
	}
	v := int64(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) f64() float64 {
	if !r.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) f32() float32 {
	if !r.need(4) {
		return 0
	}
	v := math.Float32frombits(binary.BigEndian.Uint32(r.buf[r.off:]))
	r.off += 4
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.i32())
	if n < 0 || !r.need(n) {
		r.err = ErrBadMessage
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// encodeMask packs a bitmask via run-length encoding (alternating run
// lengths of 0s and 1s, starting with 0s). The runs cover the row-major
// pixel stream the mask package exposed before the word-packed rewrite, so
// the wire bytes stay identical across versions (pinned by
// TestMaskWireFormatGolden); mask.AppendRuns produces exactly that stream
// straight from the packed words.
func encodeMask(m *mask.Bitmask) []byte {
	var w writer
	w.i32(int32(m.Width))
	w.i32(int32(m.Height))
	runs := m.AppendRuns(make([]uint32, 0, 128))
	w.i32(int32(len(runs)))
	for _, r := range runs {
		w.i32(int32(r))
	}
	return w.buf
}

// decodeMask unpacks an RLE mask.
func decodeMask(b []byte) (*mask.Bitmask, error) {
	r := reader{buf: b}
	width := int(r.i32())
	height := int(r.i32())
	n := int(r.i32())
	if r.err != nil || width <= 0 || height <= 0 || width*height > MaxMessageBytes {
		return nil, ErrBadMessage
	}
	if n < 0 || 4*n > r.remaining() {
		return nil, ErrBadMessage
	}
	m := mask.New(width, height)
	total := width * height
	idx := 0
	cur := uint8(0)
	for i := 0; i < n; i++ {
		run := int(r.i32())
		if r.err != nil || run < 0 || idx+run > total {
			return nil, ErrBadMessage
		}
		if cur == 1 {
			m.FillSpan(idx, run)
		}
		idx += run
		cur ^= 1
	}
	if r.err != nil || idx != total || r.remaining() != 0 {
		return nil, ErrBadMessage
	}
	return m, nil
}

// MarshalFrame encodes a FrameMsg (without the outer length prefix).
func MarshalFrame(f *FrameMsg) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeFrame)
	w.i32(f.FrameIndex)
	w.i32(f.Width)
	w.i32(f.Height)
	w.i64(f.Seed)
	w.i32(int32(len(f.Objects)))
	for _, o := range f.Objects {
		w.i32(int32(o.ObjectID))
		w.i32(int32(o.Label))
		w.i32(int32(o.Box.MinX))
		w.i32(int32(o.Box.MinY))
		w.i32(int32(o.Box.MaxX))
		w.i32(int32(o.Box.MaxY))
		w.bytes(encodeMask(o.Visible))
	}
	w.i32(f.TileCols)
	w.i32(int32(len(f.QualityLevels)))
	for _, q := range f.QualityLevels {
		w.f32(q)
	}
	w.i32(int32(len(f.Areas)))
	for _, a := range f.Areas {
		w.i32(int32(a.Box.MinX))
		w.i32(int32(a.Box.MinY))
		w.i32(int32(a.Box.MaxX))
		w.i32(int32(a.Box.MaxY))
		w.i32(int32(a.Label))
		known := int32(0)
		if a.Known {
			known = 1
		}
		w.i32(known)
	}
	w.i32(f.PaddingBytes)
	if f.PaddingBytes > 0 {
		w.buf = append(w.buf, make([]byte, f.PaddingBytes)...)
	}
	return w.buf
}

// UnmarshalFrame decodes a FrameMsg.
func UnmarshalFrame(b []byte) (*FrameMsg, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeFrame {
		return nil, ErrBadMessage
	}
	f := &FrameMsg{
		FrameIndex: r.i32(),
		Width:      r.i32(),
		Height:     r.i32(),
		Seed:       r.i64(),
	}
	nObj := int(r.i32())
	// Each object needs at least its six i32 fields plus a mask header.
	if r.err != nil || nObj < 0 || nObj > 4096 || 28*nObj > r.remaining() {
		return nil, ErrBadMessage
	}
	f.Objects = make([]segmodel.ObjectTruth, 0, nObj)
	for i := 0; i < nObj; i++ {
		o := segmodel.ObjectTruth{
			ObjectID: int(r.i32()),
			Label:    int(r.i32()),
		}
		o.Box = mask.Box{
			MinX: int(r.i32()), MinY: int(r.i32()),
			MaxX: int(r.i32()), MaxY: int(r.i32()),
		}
		mb := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		m, err := decodeMask(mb)
		if err != nil {
			return nil, err
		}
		o.Visible = m
		f.Objects = append(f.Objects, o)
	}
	f.TileCols = r.i32()
	nQ := int(r.i32())
	if r.err != nil || nQ < 0 || nQ > 1<<20 || 4*nQ > r.remaining() {
		return nil, ErrBadMessage
	}
	f.QualityLevels = make([]float32, nQ)
	for i := range f.QualityLevels {
		f.QualityLevels[i] = r.f32()
	}
	nA := int(r.i32())
	if r.err != nil || nA < 0 || nA > 4096 || 24*nA > r.remaining() {
		return nil, ErrBadMessage
	}
	f.Areas = make([]accel.Area, nA)
	for i := range f.Areas {
		f.Areas[i].Box = mask.Box{
			MinX: int(r.i32()), MinY: int(r.i32()),
			MaxX: int(r.i32()), MaxY: int(r.i32()),
		}
		f.Areas[i].Label = int(r.i32())
		f.Areas[i].Known = r.i32() == 1
	}
	f.PaddingBytes = r.i32()
	if r.err != nil {
		return nil, r.err
	}
	// The padding must actually be present and account for every byte left:
	// a truncated or over-long message is rejected rather than silently
	// reinterpreted.
	if f.PaddingBytes < 0 || int(f.PaddingBytes) != r.remaining() {
		return nil, ErrBadMessage
	}
	return f, nil
}

// MarshalResult encodes a ResultMsg.
func MarshalResult(m *ResultMsg) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeResult)
	w.i32(m.FrameIndex)
	w.f64(m.InferMs)
	w.i32(int32(len(m.Detections)))
	for _, d := range m.Detections {
		w.i32(d.ObjectID)
		w.i32(d.Label)
		w.f64(d.Score)
		w.i32(int32(d.Box.MinX))
		w.i32(int32(d.Box.MinY))
		w.i32(int32(d.Box.MaxX))
		w.i32(int32(d.Box.MaxY))
		w.i32(d.Width)
		w.i32(d.Height)
		w.i32(int32(len(d.Contour)))
		for _, v := range d.Contour {
			w.f32(float32(v.X))
			w.f32(float32(v.Y))
		}
	}
	return w.buf
}

// UnmarshalResult decodes a ResultMsg.
func UnmarshalResult(b []byte) (*ResultMsg, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeResult {
		return nil, ErrBadMessage
	}
	m := &ResultMsg{
		FrameIndex: r.i32(),
		InferMs:    r.f64(),
	}
	n := int(r.i32())
	// Each detection needs at least its fixed 44-byte header.
	if r.err != nil || n < 0 || n > 4096 || 44*n > r.remaining() {
		return nil, ErrBadMessage
	}
	m.Detections = make([]WireDetection, 0, n)
	for i := 0; i < n; i++ {
		d := WireDetection{
			ObjectID: r.i32(),
			Label:    r.i32(),
			Score:    r.f64(),
		}
		d.Box = mask.Box{
			MinX: int(r.i32()), MinY: int(r.i32()),
			MaxX: int(r.i32()), MaxY: int(r.i32()),
		}
		d.Width = r.i32()
		d.Height = r.i32()
		nc := int(r.i32())
		if r.err != nil || nc < 0 || nc > 1<<18 || 8*nc > r.remaining() {
			return nil, ErrBadMessage
		}
		d.Contour = make([]geom.Vec2, nc)
		for j := range d.Contour {
			d.Contour[j] = geom.V2(float64(r.f32()), float64(r.f32()))
		}
		m.Detections = append(m.Detections, d)
	}
	if !r.done() {
		return nil, r.err
	}
	return m, nil
}

// MarshalError encodes a TypeError message carrying a failure description.
func MarshalError(msg string) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeError)
	w.bytes([]byte(msg))
	return w.buf
}

// UnmarshalError decodes a TypeError message.
func UnmarshalError(b []byte) (string, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeError {
		return "", ErrBadMessage
	}
	text := r.bytes()
	if !r.done() {
		return "", r.err
	}
	return string(text), nil
}

// MarshalReject encodes a TypeReject message for one shed frame.
func MarshalReject(frameIndex int32) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeReject)
	w.i32(frameIndex)
	return w.buf
}

// UnmarshalReject decodes a TypeReject message, returning the shed frame's
// index.
func UnmarshalReject(b []byte) (int32, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeReject {
		return 0, ErrBadMessage
	}
	idx := r.i32()
	if !r.done() {
		return 0, r.err
	}
	return idx, nil
}

// MarshalShed encodes a TypeShed message for one displaced frame.
func MarshalShed(frameIndex int32, reason uint8) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeShed)
	w.i32(frameIndex)
	w.u8(reason)
	return w.buf
}

// UnmarshalShed decodes a TypeShed message, returning the displaced frame's
// index and the reason code.
func UnmarshalShed(b []byte) (int32, uint8, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeShed {
		return 0, 0, ErrBadMessage
	}
	idx := r.i32()
	reason := r.u8()
	if !r.done() {
		return 0, 0, r.err
	}
	return idx, reason, nil
}

// Resume-handshake limits: a session key is an identity token, not a
// payload, and a peer list is a handful of host:port strings.
const (
	maxSessionKeyBytes = 256
	maxFleetPeers      = 256
)

// ResumeMsg is the session-resume handshake a fleet client sends as the
// first message on a new connection. SessionKey is the stable cross-replica
// session identity; LastKeyframeEpoch is the frame index of the last
// keyframe result the client holds (-1 when it has none), which tells the
// adopting replica how stale the client's world is — the replica's own
// feature cache for this session starts cold either way, so the first
// frame after migration is served as a forced keyframe.
type ResumeMsg struct {
	SessionKey        string
	LastKeyframeEpoch int64
}

// ResumeAckMsg answers a ResumeMsg. Adopted reports whether the server
// attached the connection to the claimed session identity; Peers is the
// server's fleet peer list (its own address first when configured) so the
// client learns the replica set for failover.
type ResumeAckMsg struct {
	SessionKey string
	Adopted    bool
	Peers      []string
}

// MarshalResume encodes a TypeResume handshake.
func MarshalResume(m *ResumeMsg) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeResume)
	w.bytes([]byte(m.SessionKey))
	w.i64(m.LastKeyframeEpoch)
	return w.buf
}

// UnmarshalResume decodes a TypeResume handshake.
func UnmarshalResume(b []byte) (*ResumeMsg, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeResume {
		return nil, ErrBadMessage
	}
	key := r.bytes()
	if r.err != nil || len(key) == 0 || len(key) > maxSessionKeyBytes {
		return nil, ErrBadMessage
	}
	m := &ResumeMsg{SessionKey: string(key), LastKeyframeEpoch: r.i64()}
	if !r.done() {
		return nil, r.err
	}
	return m, nil
}

// MarshalResumeAck encodes a TypeResumeAck reply.
func MarshalResumeAck(m *ResumeAckMsg) []byte {
	var w writer
	w.u8(protocolVersion)
	w.u8(TypeResumeAck)
	w.bytes([]byte(m.SessionKey))
	adopted := uint8(0)
	if m.Adopted {
		adopted = 1
	}
	w.u8(adopted)
	w.i32(int32(len(m.Peers)))
	for _, p := range m.Peers {
		w.bytes([]byte(p))
	}
	return w.buf
}

// UnmarshalResumeAck decodes a TypeResumeAck reply.
func UnmarshalResumeAck(b []byte) (*ResumeAckMsg, error) {
	r := reader{buf: b}
	if r.u8() != protocolVersion || r.u8() != TypeResumeAck {
		return nil, ErrBadMessage
	}
	key := r.bytes()
	if r.err != nil || len(key) == 0 || len(key) > maxSessionKeyBytes {
		return nil, ErrBadMessage
	}
	m := &ResumeAckMsg{SessionKey: string(key), Adopted: r.u8() == 1}
	n := int(r.i32())
	// Each peer needs at least its 4-byte length prefix.
	if r.err != nil || n < 0 || n > maxFleetPeers || 4*n > r.remaining() {
		return nil, ErrBadMessage
	}
	m.Peers = make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := r.bytes()
		if r.err != nil || len(p) > maxSessionKeyBytes {
			return nil, ErrBadMessage
		}
		m.Peers = append(m.Peers, string(p))
	}
	if !r.done() {
		return nil, r.err
	}
	return m, nil
}

// MessageType peeks a payload's type tag without decoding the body.
func MessageType(b []byte) (uint8, error) {
	if len(b) < 2 || b[0] != protocolVersion {
		return 0, ErrBadMessage
	}
	return b[1], nil
}

// WriteMessage writes a length-prefixed message to the stream.
func WriteMessage(w io.Writer, payload []byte) error {
	if len(payload) > MaxMessageBytes {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	return nil
}

// ReadMessage reads one length-prefixed message.
func ReadMessage(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageBytes {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read payload: %w", err)
	}
	return payload, nil
}
