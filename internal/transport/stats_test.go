package transport

import (
	"strings"
	"testing"

	"edgeis/internal/edge"
)

// TestFormatServerStatsGolden pins the operator printout byte for byte: the
// summary line, the batch-size histogram line, the table header, per-session
// reject and shed counts, and ascending session-ID order even when the input
// rows arrive shuffled.
func TestFormatServerStatsGolden(t *testing.T) {
	st := ServerStats{
		Served:      110,
		MeanInferMs: 42.35,
		ActiveConns: 2,
		PeakConns:   5,
		Rejected:    12,
		Shed:        4,
		Scheduler: edge.Stats{
			MeanQueueDepth:  3.24,
			PeakQueueDepth:  8,
			MeanWaitMs:      1.234,
			P95WaitMs:       4.567,
			Batches:         41,
			MeanBatchSize:   2.683,
			BatchSizeCounts: []int{20, 0, 15, 6},
		},
	}
	// Deliberately out of ID order: the formatter must sort.
	sessions := []edge.SessionStats{
		{ID: 7, Remote: "10.0.0.2:6001", Served: 30, Rejected: 9, Shed: 4, MeanInferMs: 55.01, MeanWaitMs: 2.5},
		{ID: 3, Remote: "10.0.0.1:5555", Served: 80, Rejected: 3, MeanInferMs: 38.6, MeanWaitMs: 0.75},
	}

	want := strings.Join([]string{
		"served 110 frames (rejected 12, shed 4), mean inference 42.4 ms; conns 2 (peak 5); queue mean 3.2 peak 8, wait mean 1.23 ms p95 4.57 ms",
		"batches 41, mean size 2.68, sizes [1:20 3:15 4:6]",
		"== sessions ==",
		"session                        served  rejected   shed   infer ms    wait ms",
		"3 10.0.0.1:5555                    80         3      0       38.6       0.75",
		"7 10.0.0.2:6001                    30         9      4       55.0       2.50",
		"",
	}, "\n")
	if got := FormatServerStats(st, sessions); got != want {
		t.Errorf("stats printout drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFormatServerStatsNoSessions keeps the empty-table case to one line.
func TestFormatServerStatsNoSessions(t *testing.T) {
	got := FormatServerStats(ServerStats{Served: 1}, nil)
	if strings.Contains(got, "== sessions ==") {
		t.Errorf("empty session list must omit the table:\n%s", got)
	}
	if !strings.HasSuffix(got, "\n") || strings.Count(got, "\n") != 1 {
		t.Errorf("want exactly one line, got %q", got)
	}
}
