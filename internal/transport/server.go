package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/segmodel"
)

// Server is the edge node: it accepts mobile connections, decodes offloaded
// frames, runs the (optionally CIIA-guided) segmentation model and streams
// results back. One goroutine per connection; inferences across connections
// serialize on the GPU mutex like they would on a real accelerator.
type Server struct {
	model *segmodel.Model
	// InferScale multiplies simulated inference latency (device profile).
	inferScale float64
	// MaxContourVertices bounds result mask payloads.
	maxContour int
	// Per-message socket deadlines; zero means none.
	readTimeout  time.Duration
	writeTimeout time.Duration

	ln       net.Listener
	gpu      sync.Mutex // serializes inference, like a single accelerator
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	served   int
	inferSum float64
	logf     func(format string, args ...any)
}

// ServerOption customizes a server.
type ServerOption func(*Server)

// WithInferScale sets the device latency multiplier.
func WithInferScale(scale float64) ServerOption {
	return func(s *Server) { s.inferScale = scale }
}

// WithLogger routes server logs.
func WithLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithConnReadTimeout drops connections that stay idle longer than d
// between frames, so abandoned mobiles cannot pin server goroutines forever.
func WithConnReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithConnWriteTimeout bounds each result write, so a mobile that stops
// draining its socket cannot wedge the serving goroutine.
func WithConnWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// NewServer builds an edge server around the given model.
func NewServer(model *segmodel.Model, opts ...ServerOption) *Server {
	s := &Server{
		model:      model,
		inferScale: 1,
		maxContour: 160,
		conns:      make(map[net.Conn]struct{}),
		logf:       func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Listen binds the server to an address ("127.0.0.1:0" for an ephemeral
// port) and starts accepting connections in the background.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			s.logf("accept: %v", err)
			return
		}
		if !s.track(conn) {
			// Raced with Close: drop the connection instead of serving it.
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track registers a live connection so Close can force it shut; it reports
// false when the server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn handles one mobile client until EOF.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logf("close conn: %v", err)
		}
	}()
	for {
		if s.readTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.readTimeout)); err != nil {
				s.logf("set read deadline: %v", err)
				return
			}
		}
		payload, err := ReadMessage(conn)
		if err != nil {
			if timeoutError(err) {
				s.logf("idle connection dropped: %v", err)
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("read: %v", err)
			}
			return
		}
		frame, err := UnmarshalFrame(payload)
		if err != nil {
			// Report the failure to the peer before dropping it: a mobile
			// client stuck sending garbage should learn why.
			s.logf("decode: %v", err)
			if werr := s.write(conn, MarshalError(err.Error())); werr != nil {
				s.logf("write error report: %v", werr)
			}
			return
		}
		res := s.infer(frame)
		if err := s.write(conn, MarshalResult(res)); err != nil {
			s.logf("write: %v", err)
			return
		}
	}
}

// write sends one framed message, honouring the configured write deadline.
func (s *Server) write(conn net.Conn, payload []byte) error {
	if s.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
			return err
		}
	}
	return WriteMessage(conn, payload)
}

// infer runs the simulated model on a decoded frame.
func (s *Server) infer(frame *FrameMsg) *ResultMsg {
	in := segmodel.Input{
		Width:   int(frame.Width),
		Height:  int(frame.Height),
		Objects: frame.Objects,
		Seed:    frame.Seed,
	}
	if len(frame.QualityLevels) > 0 && frame.TileCols > 0 {
		levels := frame.QualityLevels
		cols := int(frame.TileCols)
		in.Quality = func(x, y int) float64 {
			c := x / 32
			r := y / 32
			idx := r*cols + c
			if idx < 0 || idx >= len(levels) {
				return 1
			}
			return float64(levels[idx])
		}
	}
	var g segmodel.Guidance
	if len(frame.Areas) > 0 {
		g = &accel.Plan{Areas: frame.Areas}
	}

	s.gpu.Lock()
	out := s.model.Run(in, g)
	s.gpu.Unlock()

	inferMs := out.TotalMs() * s.inferScale
	s.mu.Lock()
	s.served++
	s.inferSum += inferMs
	s.mu.Unlock()

	res := &ResultMsg{FrameIndex: frame.FrameIndex, InferMs: inferMs}
	for _, d := range out.Detections {
		res.Detections = append(res.Detections, FromDetection(d, s.maxContour))
	}
	return res
}

// Stats returns frames served and mean simulated inference latency.
func (s *Server) Stats() (served int, meanInferMs float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.served > 0 {
		meanInferMs = s.inferSum / float64(s.served)
	}
	return s.served, meanInferMs
}

// Close stops accepting, force-closes every live connection and waits for
// the serving goroutines. Closing the sockets unblocks goroutines parked in
// ReadMessage on idle clients, so Close returns promptly instead of
// deadlocking on them; it is safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil && !alreadyClosed {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
