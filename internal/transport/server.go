package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/edge"
	"edgeis/internal/segmodel"
)

// Server is the edge node's transport layer: it accepts mobile connections,
// decodes offloaded frames and streams results back. Everything between
// decode and encode — admission control, per-client session state, the
// accelerator pool — lives in package edge; this type owns only framing and
// socket IO. One goroutine per connection submits to the shared
// edge.Scheduler and relays the outcome: a result, or a per-frame reject
// when the admission queue is full.
type Server struct {
	model *segmodel.Model
	// InferScale multiplies simulated inference latency (device profile).
	inferScale float64
	// MaxContourVertices bounds result mask payloads.
	maxContour int
	// accelerators and queueDepth shape the edge.Scheduler. One accelerator
	// is the deterministic mode: inference serializes exactly like the old
	// single GPU mutex.
	accelerators int
	queueDepth   int
	// wallOccupancy > 0 makes each inference hold its accelerator for
	// inferMs*wallOccupancy of wall time, modelling a real accelerator that
	// stays busy for the latency it reports. Zero replies as fast as the
	// host CPU allows (the historical behaviour).
	wallOccupancy float64
	// continuity enables per-session CIIA guidance reuse (edge.Session.Guide).
	continuity bool
	// admission and dequeue are the scheduler policies; nil means the
	// historical reject-when-full / single-dequeue defaults.
	admission edge.AdmissionPolicy
	dequeue   edge.DequeuePolicy
	// keyframe enables temporal-redundancy skip-compute per session; the
	// zero policy (the default) is byte-identical to no cache at all.
	keyframe segmodel.KeyframePolicy
	// connPipeline bounds a connection's outstanding frames. 1 (the
	// default) is the historical serial loop: read, infer, write, repeat.
	// Higher values let a connection keep several frames in flight, which
	// both overlaps uplink with inference and gives the latest-wins
	// admission policy stale queued frames to displace.
	connPipeline int
	// Per-message socket deadlines; zero means none.
	readTimeout  time.Duration
	writeTimeout time.Duration
	// fleetPeers is the replica set this server advertises in TypeResumeAck
	// replies, so a client that dialed one address learns where it can fail
	// over to. Empty outside a fleet deployment.
	fleetPeers []string

	sched *edge.Scheduler

	ln        net.Listener
	wg        sync.WaitGroup
	mu        sync.Mutex
	closed    bool
	conns     map[net.Conn]struct{}
	peakConns int
	logf      func(format string, args ...any)
}

// ServerOption customizes a server.
type ServerOption func(*Server)

// WithInferScale sets the device latency multiplier.
func WithInferScale(scale float64) ServerOption {
	return func(s *Server) { s.inferScale = scale }
}

// WithLogger routes server logs.
func WithLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithAccelerators sets the inference worker pool size (default 1). Each
// worker owns a clone of the model, so N accelerators serve N clients'
// frames concurrently; 1 keeps the deterministic serialized mode.
func WithAccelerators(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.accelerators = n
		}
	}
}

// WithQueueDepth bounds the scheduler's admission queue (default
// edge.DefaultQueueDepth). A full queue rejects frames explicitly with
// TypeReject instead of queueing without bound.
func WithQueueDepth(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.queueDepth = n
		}
	}
}

// WithWallOccupancy makes each inference occupy its accelerator for
// inferMs*frac of wall-clock time, so serving throughput is bounded by the
// accelerator pool the way a real edge device is. Zero (the default)
// replies as fast as the host allows.
func WithWallOccupancy(frac float64) ServerOption {
	return func(s *Server) {
		if frac > 0 {
			s.wallOccupancy = frac
		}
	}
}

// WithGuidanceContinuity keeps each session's last CIIA plan alive and
// applies it to guidance-less frames (see edge.Session.Guide). Off by
// default: reuse changes inference output, which the single-client
// equivalence tests pin.
func WithGuidanceContinuity() ServerOption {
	return func(s *Server) { s.continuity = true }
}

// WithAdmissionPolicy selects the scheduler's admission discipline (default
// edge.RejectWhenFull). With edge.LatestWins a full queue sheds the arriving
// session's own stale queued frame (reported as TypeShed) instead of
// rejecting the fresh one.
func WithAdmissionPolicy(p edge.AdmissionPolicy) ServerOption {
	return func(s *Server) { s.admission = p }
}

// WithDequeuePolicy selects the scheduler's dequeue discipline (default
// edge.SingleDequeue). With edge.GatherBatch workers gather cross-session
// batches of compatible frames and serve them in one amortized launch.
func WithDequeuePolicy(p edge.DequeuePolicy) ServerOption {
	return func(s *Server) { s.dequeue = p }
}

// WithKeyframePolicy enables temporal-redundancy skip-compute: each session
// keeps a feature cache of its last keyframe and non-keyframe frames are
// served at the partial warp cost instead of the full backbone (see
// segmodel.KeyframePolicy). The zero policy disables it.
func WithKeyframePolicy(p segmodel.KeyframePolicy) ServerOption {
	return func(s *Server) { s.keyframe = p }
}

// WithConnPipeline lets each connection keep up to n frames in flight
// instead of the serial read-infer-write loop. Values below 2 keep the
// serial loop. Latest-wins shedding over TCP needs n >= 2: a serial
// connection never has a stale frame queued to displace.
func WithConnPipeline(n int) ServerOption {
	return func(s *Server) {
		if n > 1 {
			s.connPipeline = n
		}
	}
}

// WithFleetPeers advertises the fleet's replica addresses (this server's
// own address included, by convention first) in every resume
// acknowledgement, so fleet clients discover the failover set from
// whichever replica they reach first. Order is preserved — placement
// policies hash over it, so every replica should be configured with the
// same list.
func WithFleetPeers(addrs []string) ServerOption {
	return func(s *Server) {
		if len(addrs) > 0 {
			s.fleetPeers = append([]string(nil), addrs...)
		}
	}
}

// WithConnReadTimeout drops connections that stay idle longer than d
// between frames, so abandoned mobiles cannot pin server goroutines forever.
func WithConnReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithConnWriteTimeout bounds each result write, so a mobile that stops
// draining its socket cannot wedge the serving goroutine.
func WithConnWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// modelAccelerator adapts one model clone to the scheduler's Accelerator
// contract, applying the device latency scale and optional wall occupancy.
type modelAccelerator struct {
	model     *segmodel.Model
	scale     float64
	occupancy float64
}

func (a *modelAccelerator) Run(in segmodel.Input, g segmodel.Guidance) (*segmodel.Result, float64) {
	out := a.model.Run(in, g)
	inferMs := out.TotalMs() * a.scale
	if a.occupancy > 0 {
		time.Sleep(time.Duration(inferMs * a.occupancy * float64(time.Millisecond)))
	}
	return out, inferMs
}

// RunBatch serves a gathered batch in one amortized launch (edge.
// BatchAccelerator): each frame's output is what a solo Run would produce,
// the launch latency follows segmodel.BatchMs over the scaled solo
// latencies, and with wall occupancy the accelerator is held once for the
// whole launch rather than per frame — that amortization is where batching
// buys throughput.
func (a *modelAccelerator) RunBatch(ins []segmodel.Input, gs []segmodel.Guidance) ([]*segmodel.Result, float64) {
	outs := make([]*segmodel.Result, len(ins))
	solos := make([]float64, len(ins))
	for i, in := range ins {
		outs[i] = a.model.Run(in, gs[i])
		solos[i] = outs[i].TotalMs() * a.scale
	}
	launchMs := segmodel.BatchMs(solos)
	if a.occupancy > 0 {
		time.Sleep(time.Duration(launchMs * a.occupancy * float64(time.Millisecond)))
	}
	return outs, launchMs
}

// RunWarped serves one non-keyframe frame from cached features (edge.
// WarpAccelerator): the partial warp cost replaces the backbone charge, so
// with wall occupancy the accelerator is held for proportionally less time
// — that is where skip-compute buys serving throughput.
func (a *modelAccelerator) RunWarped(in segmodel.Input, g segmodel.Guidance, d segmodel.KeyframeDecision) (*segmodel.Result, float64) {
	out := a.model.RunWarped(in, g, d)
	inferMs := out.TotalMs() * a.scale
	if a.occupancy > 0 {
		time.Sleep(time.Duration(inferMs * a.occupancy * float64(time.Millisecond)))
	}
	return out, inferMs
}

// RunWarpedBatch is the amortized-launch counterpart of RunWarped.
func (a *modelAccelerator) RunWarpedBatch(ins []segmodel.Input, gs []segmodel.Guidance, ds []segmodel.KeyframeDecision) ([]*segmodel.Result, float64) {
	outs := make([]*segmodel.Result, len(ins))
	solos := make([]float64, len(ins))
	for i, in := range ins {
		outs[i] = a.model.RunWarped(in, gs[i], ds[i])
		solos[i] = outs[i].TotalMs() * a.scale
	}
	launchMs := segmodel.BatchMs(solos)
	if a.occupancy > 0 {
		time.Sleep(time.Duration(launchMs * a.occupancy * float64(time.Millisecond)))
	}
	return outs, launchMs
}

// NewServer builds an edge server around the given model.
func NewServer(model *segmodel.Model, opts ...ServerOption) *Server {
	s := &Server{
		model:        model,
		inferScale:   1,
		maxContour:   160,
		accelerators: 1,
		conns:        make(map[net.Conn]struct{}),
		logf:         func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	if s.connPipeline == 0 && s.admission != nil && s.admission.Name() != "reject" {
		// Latest-wins needs stale frames queued per session to have anything
		// to displace; a serial connection never queues more than one. Give
		// shedding servers a working pipeline unless the caller chose one.
		s.connPipeline = 4
	}
	s.sched = edge.NewScheduler(edge.Config{
		Workers:            s.accelerators,
		QueueDepth:         s.queueDepth,
		GuidanceContinuity: s.continuity,
		Admission:          s.admission,
		Dequeue:            s.dequeue,
		Keyframe:           s.keyframe,
		NewAccelerator: func(int) edge.Accelerator {
			return &modelAccelerator{
				model:     model.Clone(),
				scale:     s.inferScale,
				occupancy: s.wallOccupancy,
			}
		},
	})
	return s
}

// Scheduler exposes the serving layer for stats and tests.
func (s *Server) Scheduler() *edge.Scheduler { return s.sched }

// Addr returns the bound listen address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Listen binds the server to an address ("127.0.0.1:0" for an ephemeral
// port) and starts accepting connections in the background.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			// A transient accept failure (EMFILE pressure, an aborted
			// handshake) must not stop the edge admitting the whole fleet:
			// log, back off briefly, and keep accepting. Only Close (or the
			// listener dying underneath us) ends the loop.
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			s.logf("accept: %v (retrying in %v)", err, backoff)
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		if !s.track(conn) {
			// Raced with Close: drop the connection instead of serving it.
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track registers a live connection so Close can force it shut; it reports
// false when the server is already closing.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	if len(s.conns) > s.peakConns {
		s.peakConns = len(s.conns)
	}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn handles one mobile client until EOF: framing in, session and
// scheduler in the middle, framing out.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logf("close conn: %v", err)
		}
	}()
	first, sess, ok := s.openSession(conn)
	if !ok {
		return
	}
	defer sess.Close()
	if s.connPipeline > 1 {
		s.servePipelined(conn, sess, first)
		return
	}
	s.serveSerial(conn, sess, first)
}

// openSession reads the connection's first message and resolves its
// session identity. A TypeResume handshake adopts the carried session key
// (the session's feature cache and guidance plan start empty — they died
// with whichever replica held them — so the first frame is a forced
// keyframe) and answers with TypeResumeAck carrying the fleet peer list;
// no payload remains for the serve loop. Any other message opens a plain
// session exactly as before the handshake existed, and the message itself
// is returned as the loop's first payload.
func (s *Server) openSession(conn net.Conn) (first []byte, sess *edge.Session, ok bool) {
	if s.readTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.readTimeout)); err != nil {
			s.logf("set read deadline: %v", err)
			return nil, nil, false
		}
	}
	payload, err := ReadMessage(conn)
	if err != nil {
		if timeoutError(err) {
			s.logf("idle connection dropped: %v", err)
		} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.logf("read: %v", err)
		}
		return nil, nil, false
	}
	if t, terr := MessageType(payload); terr == nil && t == TypeResume {
		resume, rerr := UnmarshalResume(payload)
		if rerr != nil {
			s.logf("decode resume: %v", rerr)
			if werr := s.write(conn, MarshalError(rerr.Error())); werr != nil {
				s.logf("write error report: %v", werr)
			}
			return nil, nil, false
		}
		sess = s.sched.ResumeSession(resume.SessionKey, conn.RemoteAddr().String())
		ack := &ResumeAckMsg{SessionKey: resume.SessionKey, Adopted: true, Peers: s.fleetPeers}
		if werr := s.write(conn, MarshalResumeAck(ack)); werr != nil {
			s.logf("write resume ack: %v", werr)
			sess.Close()
			return nil, nil, false
		}
		return nil, sess, true
	}
	return payload, s.sched.NewSession(conn.RemoteAddr().String()), true
}

// serveSerial is the historical read-infer-write loop. first, when
// non-nil, is a payload openSession already read off the socket.
func (s *Server) serveSerial(conn net.Conn, sess *edge.Session, first []byte) {
	for {
		payload := first
		first = nil
		if payload == nil {
			if s.readTimeout > 0 {
				if err := conn.SetReadDeadline(time.Now().Add(s.readTimeout)); err != nil {
					s.logf("set read deadline: %v", err)
					return
				}
			}
			var err error
			payload, err = ReadMessage(conn)
			if err != nil {
				if timeoutError(err) {
					s.logf("idle connection dropped: %v", err)
				} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					s.logf("read: %v", err)
				}
				return
			}
		}
		frame, err := UnmarshalFrame(payload)
		if err != nil {
			// Report the failure to the peer before dropping it: a mobile
			// client stuck sending garbage should learn why.
			s.logf("decode: %v", err)
			if werr := s.write(conn, MarshalError(err.Error())); werr != nil {
				s.logf("write error report: %v", werr)
			}
			return
		}

		in, guidance := frameInput(frame)
		out, inferMs, err := sess.Infer(in, sess.Guide(guidance))
		switch {
		case errors.Is(err, edge.ErrQueueFull):
			// Per-frame shed: tell the client and keep serving.
			if werr := s.write(conn, MarshalReject(frame.FrameIndex)); werr != nil {
				s.logf("write reject: %v", werr)
				return
			}
			continue
		case errors.Is(err, edge.ErrShed):
			// Unreachable on a serial connection (never more than one frame
			// outstanding, so the session has no stale frame to displace),
			// but kept symmetric with the pipelined path.
			if werr := s.write(conn, MarshalShed(frame.FrameIndex, ShedStaleReplaced)); werr != nil {
				s.logf("write shed: %v", werr)
				return
			}
			continue
		case err != nil:
			// Scheduler shut down: the connection is going away too.
			return
		}

		res := &ResultMsg{FrameIndex: frame.FrameIndex, InferMs: inferMs}
		for _, d := range out.Detections {
			res.Detections = append(res.Detections, FromDetection(d, s.maxContour))
		}
		if err := s.write(conn, MarshalResult(res)); err != nil {
			s.logf("write: %v", err)
			return
		}
	}
}

// servePipelined handles one connection with up to connPipeline frames in
// flight: the read loop decodes frames and resolves guidance in arrival
// order (the CIIA context is order-sensitive), then hands each frame to a
// goroutine that blocks in the scheduler and writes the outcome under a
// shared write lock. Outcomes may interleave out of frame order — the
// client correlates by FrameIndex. When the read loop exits, closing the
// session unblocks queued frames (ErrClosed, nothing written) so the drain
// cannot hang on a dead peer. first, when non-nil, is a payload
// openSession already read off the socket.
func (s *Server) servePipelined(conn net.Conn, sess *edge.Session, first []byte) {
	var wmu sync.Mutex
	write := func(payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		// Serializing whole-message writes on the shared conn is this
		// lock's entire purpose; the write deadline bounds the hold.
		//edgeis:lockheld wmu exists to serialize conn writes; s.write is deadline-bounded
		return s.write(conn, payload)
	}
	sem := make(chan struct{}, s.connPipeline)
	var inflight sync.WaitGroup
	defer inflight.Wait()
	defer sess.Close()
	for {
		payload := first
		first = nil
		if payload == nil {
			if s.readTimeout > 0 {
				if err := conn.SetReadDeadline(time.Now().Add(s.readTimeout)); err != nil {
					s.logf("set read deadline: %v", err)
					return
				}
			}
			var err error
			payload, err = ReadMessage(conn)
			if err != nil {
				if timeoutError(err) {
					s.logf("idle connection dropped: %v", err)
				} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					s.logf("read: %v", err)
				}
				return
			}
		}
		frame, err := UnmarshalFrame(payload)
		if err != nil {
			s.logf("decode: %v", err)
			if werr := write(MarshalError(err.Error())); werr != nil {
				s.logf("write error report: %v", werr)
			}
			return
		}
		in, guidance := frameInput(frame)
		g := sess.Guide(guidance)
		sem <- struct{}{}
		inflight.Add(1)
		go func(frame *FrameMsg, in segmodel.Input, g segmodel.Guidance) {
			defer inflight.Done()
			defer func() { <-sem }()
			out, inferMs, err := sess.Infer(in, g)
			var werr error
			switch {
			case errors.Is(err, edge.ErrQueueFull):
				werr = write(MarshalReject(frame.FrameIndex))
			case errors.Is(err, edge.ErrShed):
				werr = write(MarshalShed(frame.FrameIndex, ShedStaleReplaced))
			case err != nil:
				// Session or scheduler closed; the connection is going away.
				return
			default:
				res := &ResultMsg{FrameIndex: frame.FrameIndex, InferMs: inferMs}
				for _, d := range out.Detections {
					res.Detections = append(res.Detections, FromDetection(d, s.maxContour))
				}
				werr = write(MarshalResult(res))
			}
			if werr != nil {
				s.logf("write: %v", werr)
				// Kill the socket so the read loop notices and winds down.
				conn.Close()
			}
		}(frame, in, g)
	}
}

// write sends one framed message, honouring the configured write deadline.
func (s *Server) write(conn net.Conn, payload []byte) error {
	if s.writeTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
			return err
		}
	}
	return WriteMessage(conn, payload)
}

// frameInput converts a decoded wire frame into the model input and the
// guidance it carried.
func frameInput(frame *FrameMsg) (segmodel.Input, segmodel.Guidance) {
	in := segmodel.Input{
		Width:   int(frame.Width),
		Height:  int(frame.Height),
		Objects: frame.Objects,
		Seed:    frame.Seed,
	}
	if len(frame.QualityLevels) > 0 && frame.TileCols > 0 {
		levels := frame.QualityLevels
		cols := int(frame.TileCols)
		in.Quality = func(x, y int) float64 {
			c := x / 32
			r := y / 32
			idx := r*cols + c
			if idx < 0 || idx >= len(levels) {
				return 1
			}
			return float64(levels[idx])
		}
	}
	var g segmodel.Guidance
	if len(frame.Areas) > 0 {
		g = &accel.Plan{Areas: frame.Areas}
	}
	return in, g
}

// ServerStats summarizes the server: transport-level connection peaks plus
// the scheduler's serving accounting.
type ServerStats struct {
	// Served counts answered frames; MeanInferMs their mean simulated
	// inference latency.
	Served      int
	MeanInferMs float64
	// ActiveConns and PeakConns track concurrent connections.
	ActiveConns int
	PeakConns   int
	// Rejected counts frames refused at admission (sent back as
	// TypeReject); Shed counts stale frames displaced by fresher ones under
	// latest-wins (sent back as TypeShed).
	Rejected int
	Shed     int
	// Scheduler is the full serving-layer snapshot (queue depth, wait
	// times, session population).
	Scheduler edge.Stats
}

// Stats snapshots the server.
func (s *Server) Stats() ServerStats {
	sched := s.sched.Stats()
	s.mu.Lock()
	active, peak := len(s.conns), s.peakConns
	s.mu.Unlock()
	return ServerStats{
		Served:      sched.Served,
		MeanInferMs: sched.MeanInferMs,
		ActiveConns: active,
		PeakConns:   peak,
		Rejected:    sched.Rejected,
		Shed:        sched.Shed,
		Scheduler:   sched,
	}
}

// SessionStats snapshots every active session, ordered by session ID.
func (s *Server) SessionStats() []edge.SessionStats {
	return s.sched.Sessions()
}

// Close stops accepting, force-closes every live connection, drains the
// scheduler and waits for the serving goroutines. Closing the sockets
// unblocks goroutines parked in ReadMessage on idle clients, and the
// scheduler drain answers every in-flight inference, so Close returns
// promptly instead of deadlocking; it is safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil && !alreadyClosed {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Drain before waiting: conn goroutines blocked in sess.Infer are
	// answered by the drain, then exit on their dead sockets.
	_ = s.sched.Close()
	s.wg.Wait()
	return err
}
