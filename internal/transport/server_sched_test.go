package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"edgeis/internal/edge"
	"edgeis/internal/segmodel"
)

func TestRejectMessageRoundTrip(t *testing.T) {
	b := MarshalReject(77)
	if typ, err := MessageType(b); err != nil || typ != TypeReject {
		t.Fatalf("type = %d, err = %v", typ, err)
	}
	idx, err := UnmarshalReject(b)
	if err != nil || idx != 77 {
		t.Fatalf("idx = %d, err = %v", idx, err)
	}
	if _, err := UnmarshalReject(MarshalError("x")); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := UnmarshalReject(append(MarshalReject(1), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestServerThroughputScalesWithAccelerators is the multi-client scaling
// acceptance check over real sockets: with inference occupying wall time on
// its accelerator, 4 workers must serve a 4-client load at least twice the
// frames/s of 1 worker. Occupancy-bound work keeps the ratio robust under
// the race detector, so this runs in make check's race pass.
func TestServerThroughputScalesWithAccelerators(t *testing.T) {
	const clients = 4
	const framesPer = 6
	// YOLACT reports ~120 simulated ms; full occupancy holds the
	// accelerator ~120ms wall per frame. The sleep must dwarf per-frame CPU
	// cost even when -race inflates it ~10x on a single-core box — sleeps
	// overlap across workers regardless of core count, CPU does not.
	run := func(accelerators int) time.Duration {
		srv := NewServer(segmodel.New(segmodel.YOLACT),
			WithAccelerators(accelerators),
			WithWallOccupancy(1),
		)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = srv.Close() }()

		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				cl, err := Dial(addr.String(), time.Second, WithSendQueue(framesPer))
				if err != nil {
					t.Errorf("client %d: %v", id, err)
					return
				}
				defer func() { _ = cl.Close() }()
				for j := 0; j < framesPer; j++ {
					f := sampleFrame()
					f.FrameIndex = int32(id*1000 + j)
					if !cl.Send(f) {
						t.Errorf("client %d: send %d rejected", id, j)
						return
					}
				}
				for j := 0; j < framesPer; j++ {
					select {
					case _, ok := <-cl.Results():
						if !ok {
							t.Errorf("client %d: connection lost: %v", id, cl.Err())
							return
						}
					case <-time.After(30 * time.Second):
						t.Errorf("client %d: timeout", id)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if st := srv.Stats(); st.Served != clients*framesPer {
			t.Fatalf("%d accelerators: served %d, want %d", accelerators, st.Served, clients*framesPer)
		}
		return elapsed
	}

	serial := run(1)
	pooled := run(4)
	t.Logf("1 accelerator: %v, 4 accelerators: %v (%.1fx)", serial, pooled, float64(serial)/float64(pooled))
	if pooled*2 > serial {
		t.Errorf("4 accelerators not >=2x served-frames/s: 1w=%v 4w=%v", serial, pooled)
	}
}

// TestServerRejectsSurfaceToClients forces admission-queue overflow through
// real sockets: one accelerator held busy, depth-1 queue, three clients
// firing at once. At least one frame must come back as TypeReject, the
// connection must keep serving afterwards, and server/client accounting
// must agree.
func TestServerRejectsSurfaceToClients(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.YOLACT),
		WithAccelerators(1),
		WithQueueDepth(1),
		// ~120 simulated ms * 2 => each inference holds the accelerator
		// ~240ms wall, so three simultaneous arrivals overflow the queue.
		WithWallOccupancy(2),
	)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	const clients = 3
	cls := make([]*Client, clients)
	for i := range cls {
		cl, err := Dial(addr.String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = cl.Close() }()
		cls[i] = cl
	}
	// Dial returns on TCP connect, which can race the server's accept loop
	// registering the session; poll briefly before asserting.
	connDeadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.ActiveConns == clients && st.PeakConns == clients {
			break
		}
		if time.Now().After(connDeadline) {
			t.Errorf("conns: active=%d peak=%d, want %d/%d", st.ActiveConns, st.PeakConns, clients, clients)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	for i, cl := range cls {
		f := sampleFrame()
		f.FrameIndex = int32(i)
		if !cl.Send(f) {
			t.Fatalf("client %d: send rejected locally", i)
		}
	}

	// Every frame is answered: served + rejected must reach 3.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := srv.Stats()
		if st.Served+st.Rejected >= clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames unaccounted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.Rejected == 0 {
		t.Fatal("depth-1 queue never rejected under a 3-client burst")
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// The client-side reject counters must account for every shed frame.
	waitFor("client reject counters", func() bool {
		total := 0
		for _, cl := range cls {
			total += cl.Rejected()
		}
		return total == st.Rejected
	})

	// A rejected connection keeps serving: find a client that was shed and
	// push another frame through once the burst has drained.
	var shed *Client
	for _, cl := range cls {
		if cl.Rejected() > 0 {
			shed = cl
		}
	}
	waitFor("burst drain", func() bool { s := srv.Stats().Scheduler; return s.Queued == 0 && s.InFlight == 0 })
	f := sampleFrame()
	f.FrameIndex = 99
	if !shed.Send(f) {
		t.Fatal("post-reject send failed")
	}
	select {
	case res, ok := <-shed.Results():
		if !ok {
			t.Fatalf("connection died after reject: %v", shed.Err())
		}
		if res.FrameIndex != 99 {
			t.Errorf("frame index = %d, want 99", res.FrameIndex)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("timeout waiting for post-reject result")
	}

	if rows := srv.SessionStats(); len(rows) != clients {
		t.Errorf("session rows = %d, want %d", len(rows), clients)
	} else {
		served, rejected := 0, 0
		for _, r := range rows {
			served += r.Served
			rejected += r.Rejected
		}
		final := srv.Stats()
		if served != final.Served || rejected != final.Rejected {
			t.Errorf("per-session served/rejected %d/%d != server %d/%d",
				served, rejected, final.Served, final.Rejected)
		}
	}
}

// TestServerGracefulShutdown closes the server while inferences are in
// flight: Close must drain them (no deadlock), reject late submissions and
// leave the scheduler empty. Runs under -race via make check.
func TestServerGracefulShutdown(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.YOLACT),
		WithAccelerators(2),
		WithWallOccupancy(0.5), // ~60ms wall per inference
	)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients = 3
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := Dial(addr.String(), time.Second)
			if err != nil {
				return // raced with Close; fine
			}
			defer func() { _ = cl.Close() }()
			for j := 0; j < 50; j++ {
				f := sampleFrame()
				f.FrameIndex = int32(id*100 + j)
				cl.Send(f)
				select {
				case _, ok := <-cl.Results():
					if !ok {
						return // server closed the connection
					}
				case <-time.After(10 * time.Second):
					return
				}
			}
		}(c)
	}

	// Let inferences get in flight, then shut down under load.
	time.Sleep(100 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with inferences in flight")
	}
	wg.Wait()

	st := srv.Stats()
	if st.Scheduler.Queued != 0 || st.Scheduler.InFlight != 0 {
		t.Errorf("drain left queued=%d inflight=%d", st.Scheduler.Queued, st.Scheduler.InFlight)
	}
	if st.ActiveConns != 0 {
		t.Errorf("connections leaked: %d", st.ActiveConns)
	}
	// Submissions through the drained scheduler fail explicitly.
	sess := srv.Scheduler().NewSession("late")
	if _, _, err := sess.Infer(segmodel.Input{}, nil); !errors.Is(err, edge.ErrClosed) {
		t.Errorf("post-close infer: err = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestDialRetryAbsorbsLateServer verifies the bounded-backoff dial: the
// server binds its listener only after the client's first attempts fail,
// and the connection still comes up.
func TestDialRetryAbsorbsLateServer(t *testing.T) {
	// Reserve an address, then free it so the first dial attempts are
	// refused; the server rebinds it shortly after.
	tmp := NewServer(segmodel.New(segmodel.YOLACT))
	addr, err := tmp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(segmodel.New(segmodel.YOLACT))
	defer func() { _ = srv.Close() }()
	bound := make(chan error, 1)
	go func() {
		time.Sleep(120 * time.Millisecond)
		_, err := srv.Listen(addr.String())
		bound <- err
	}()

	cl, err := DialRetry(addr.String(), time.Second, 6, 40*time.Millisecond)
	if err != nil {
		t.Fatalf("DialRetry never connected (rebind err: %v): %v", <-bound, err)
	}
	defer func() { _ = cl.Close() }()
	if !cl.Send(sampleFrame()) {
		t.Fatal("send failed")
	}
	select {
	case res, ok := <-cl.Results():
		if !ok || res == nil {
			t.Fatalf("no result: %v", cl.Err())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

func TestDialRetryBoundedFailure(t *testing.T) {
	// Grab a port and hold it closed so every attempt is refused.
	tmp := NewServer(segmodel.New(segmodel.YOLACT))
	addr, err := tmp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := DialRetry(addr.String(), 100*time.Millisecond, 3, 10*time.Millisecond); err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
	// Two backoffs: 10ms + 20ms; the attempts themselves are near-instant
	// connection refusals.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("backoff too short: %v", elapsed)
	}
}

// TestDialRetryFlappingListener drives DialRetry against a replica that
// flaps: the listener accepts a connection and immediately hangs up
// (killing the resume handshake mid-flight), dies, rebinds, dies again,
// and only then comes up healthy. Every failure mode — refused connection,
// accepted-then-reset handshake — must be absorbed by the retry budget,
// and the eventual connection must complete the resume handshake against
// the healthy listener.
func TestDialRetryFlappingListener(t *testing.T) {
	// Reserve an address, then free it so ownership can flap on it.
	tmp := NewServer(segmodel.New(segmodel.YOLACT))
	addr, err := tmp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(segmodel.New(segmodel.YOLACT),
		WithFleetPeers([]string{addr.String()}))
	defer func() { _ = srv.Close() }()
	bound := make(chan error, 1)
	go func() {
		// Flap twice: bind, slam the door on whoever connects, unbind.
		// Between flaps the port is closed, so the dialer sees both
		// connection refusals and mid-handshake resets.
		for i := 0; i < 2; i++ {
			ln, err := net.Listen("tcp", addr.String())
			if err != nil {
				bound <- err
				return
			}
			slam := make(chan struct{})
			go func() {
				for {
					c, err := ln.Accept()
					if err != nil {
						close(slam)
						return
					}
					_ = c.Close()
				}
			}()
			time.Sleep(40 * time.Millisecond)
			_ = ln.Close()
			<-slam
			time.Sleep(40 * time.Millisecond)
		}
		_, err := srv.Listen(addr.String())
		bound <- err
	}()

	cl, err := DialRetry(addr.String(), time.Second, 12, 20*time.Millisecond,
		WithResume("flap-sess", -1))
	if err != nil {
		t.Fatalf("DialRetry never survived the flapping (bind err: %v): %v", <-bound, err)
	}
	defer func() { _ = cl.Close() }()
	ack := cl.ResumeAck()
	if ack == nil || !ack.Adopted || ack.SessionKey != "flap-sess" {
		t.Fatalf("resume ack after flapping = %+v", ack)
	}
	if !cl.Send(sampleFrame()) {
		t.Fatal("send failed")
	}
	select {
	case res, ok := <-cl.Results():
		if !ok || res == nil {
			t.Fatalf("no result: %v", cl.Err())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	if got := srv.Stats().Scheduler.ResumedSessions; got != 1 {
		t.Errorf("ResumedSessions = %d, want 1", got)
	}
}

func TestShedMessageRoundTrip(t *testing.T) {
	b := MarshalShed(42, ShedStaleReplaced)
	if typ, err := MessageType(b); err != nil || typ != TypeShed {
		t.Fatalf("type = %d, err = %v", typ, err)
	}
	idx, reason, err := UnmarshalShed(b)
	if err != nil || idx != 42 || reason != ShedStaleReplaced {
		t.Fatalf("idx = %d, reason = %d, err = %v", idx, reason, err)
	}
	if _, _, err := UnmarshalShed(MarshalReject(1)); err == nil {
		t.Error("wrong type accepted")
	}
	if _, _, err := UnmarshalShed(append(MarshalShed(1, 1), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestServerShedsSurfaceToClients runs latest-wins over real sockets: a
// pipelined client bursting faster than the accelerator drains must see its
// stale frames come back as TypeShed (not TypeReject, not silence), and the
// no-silent-loss law sent == results + rejected + shed must reconcile
// between client counters and server stats.
func TestServerShedsSurfaceToClients(t *testing.T) {
	srv := NewServer(segmodel.New(segmodel.YOLACT),
		WithAccelerators(1),
		WithQueueDepth(1),
		// ~120 simulated ms * 2 => each inference holds the accelerator
		// ~240ms wall, so a burst of 6 far outruns the drain.
		WithWallOccupancy(2),
		WithAdmissionPolicy(edge.LatestWins{}),
		WithConnPipeline(8),
	)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	cl, err := Dial(addr.String(), time.Second, WithSendQueue(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	const burst = 6
	for i := 0; i < burst; i++ {
		f := sampleFrame()
		f.FrameIndex = int32(i)
		if !cl.Send(f) {
			t.Fatalf("send %d rejected locally", i)
		}
		// Space sends just enough that each frame reaches admission before
		// the next: the pipelined server resolves frames on independent
		// goroutines, so a zero-gap burst can reach the scheduler out of
		// order and "latest" would no longer mean the last sent. 20ms is
		// far below the ~240ms accelerator hold, so the queue still floods.
		time.Sleep(20 * time.Millisecond)
	}

	// Drain until every frame is accounted: a result, a reject, or a shed.
	results := 0
	gotLast := false
	deadline := time.After(30 * time.Second)
	for results+cl.Rejected()+cl.Shed() < burst {
		select {
		case res, ok := <-cl.Results():
			if !ok {
				t.Fatalf("connection lost: %v", cl.Err())
			}
			results++
			if res.FrameIndex == burst-1 {
				gotLast = true
			}
		case <-deadline:
			t.Fatalf("unaccounted frames: results=%d rejected=%d shed=%d of %d",
				results, cl.Rejected(), cl.Shed(), burst)
		}
	}

	if cl.Shed() == 0 {
		t.Fatal("burst through a depth-1 queue under latest-wins produced no sheds")
	}
	// Latest-wins keeps the newest frame: the last of the burst must have
	// been served, not shed.
	if !gotLast {
		t.Errorf("freshest frame of the burst was not served (results=%d shed=%d)",
			results, cl.Shed())
	}
	st := srv.Stats()
	if st.Served != results || st.Rejected != cl.Rejected() || st.Shed != cl.Shed() {
		t.Errorf("server served/rejected/shed %d/%d/%d, client saw %d/%d/%d",
			st.Served, st.Rejected, st.Shed, results, cl.Rejected(), cl.Shed())
	}
	if rows := srv.SessionStats(); len(rows) != 1 {
		t.Errorf("session rows = %d, want 1", len(rows))
	} else if rows[0].Shed != cl.Shed() {
		t.Errorf("session shed %d, client saw %d", rows[0].Shed, cl.Shed())
	}
}
