// Package codec implements the tile-level frame encoder of edgeIS's
// transmission path (Section V). The paper encodes with Kvazaar (HEVC) on
// the mobile side and decodes with OpenHEVC on the edge; this reproduction
// substitutes a rate/quality model: a frame is divided into fixed-size
// tiles, each assigned a quality level, and the encoder charges bytes as a
// function of tile content complexity and quality. Decoding yields the
// per-pixel quality map the simulated segmentation model consumes.
package codec

import (
	"fmt"
	"math"

	"edgeis/internal/mask"
)

// QualityLevel is a discrete encode quality for a tile, mirroring the
// "different compression levels for each region" of Fig. 8d.
type QualityLevel int

// Quality levels from dropped to lossless-ish.
const (
	// QualitySkip omits the tile entirely (static content already known
	// to the edge).
	QualitySkip QualityLevel = iota
	// QualityLow is heavy compression for irrelevant areas.
	QualityLow
	// QualityMedium is moderate compression for context regions.
	QualityMedium
	// QualityHigh is near-lossless for object and new-content regions.
	QualityHigh
)

// String names the level.
func (q QualityLevel) String() string {
	switch q {
	case QualitySkip:
		return "skip"
	case QualityLow:
		return "low"
	case QualityMedium:
		return "medium"
	case QualityHigh:
		return "high"
	default:
		return fmt.Sprintf("quality(%d)", int(q))
	}
}

// Fidelity converts a level into the (0,1] per-pixel quality the inference
// error model consumes.
func (q QualityLevel) Fidelity() float64 {
	switch q {
	case QualitySkip:
		return 0.05
	case QualityLow:
		return 0.35
	case QualityMedium:
		return 0.7
	case QualityHigh:
		return 0.97
	default:
		return 0.05
	}
}

// bytesPerPixel is the calibrated rate of each level for unit-complexity
// content. High quality approximates intra-coded HEVC (~0.9 bit/px); low
// levels lean on heavy quantization.
func (q QualityLevel) bytesPerPixel() float64 {
	switch q {
	case QualitySkip:
		return 0.0008 // skip flags/markers only
	case QualityLow:
		return 0.012
	case QualityMedium:
		return 0.045
	case QualityHigh:
		return 0.115
	default:
		return 0
	}
}

// TileSize is the tile edge length in pixels (HEVC CTU-like).
const TileSize = 32

// Grid describes the tile layout of a frame.
type Grid struct {
	Width, Height int // frame dimensions in pixels
	Cols, Rows    int
}

// NewGrid computes the tile grid for a frame size.
func NewGrid(width, height int) Grid {
	return Grid{
		Width: width, Height: height,
		Cols: (width + TileSize - 1) / TileSize,
		Rows: (height + TileSize - 1) / TileSize,
	}
}

// Tiles returns the number of tiles.
func (g Grid) Tiles() int { return g.Cols * g.Rows }

// TileAt returns the tile index containing pixel (x, y), clamped to bounds.
func (g Grid) TileAt(x, y int) int {
	c := clampInt(x/TileSize, 0, g.Cols-1)
	r := clampInt(y/TileSize, 0, g.Rows-1)
	return r*g.Cols + c
}

// TileBox returns the pixel box of tile i.
func (g Grid) TileBox(i int) mask.Box {
	r, c := i/g.Cols, i%g.Cols
	return mask.Box{
		MinX: c * TileSize,
		MinY: r * TileSize,
		MaxX: minInt((c+1)*TileSize, g.Width),
		MaxY: minInt((r+1)*TileSize, g.Height),
	}
}

// TilesInBox returns the indices of all tiles intersecting the pixel box.
func (g Grid) TilesInBox(b mask.Box) []int {
	if b.Empty() {
		return nil
	}
	c0 := clampInt(b.MinX/TileSize, 0, g.Cols-1)
	c1 := clampInt((b.MaxX-1)/TileSize, 0, g.Cols-1)
	r0 := clampInt(b.MinY/TileSize, 0, g.Rows-1)
	r1 := clampInt((b.MaxY-1)/TileSize, 0, g.Rows-1)
	out := make([]int, 0, (c1-c0+1)*(r1-r0+1))
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			out = append(out, r*g.Cols+c)
		}
	}
	return out
}

// EncodedFrame is the output of the tile encoder: per-tile quality levels
// and the modelled byte cost.
type EncodedFrame struct {
	Grid     Grid
	Levels   []QualityLevel
	Bytes    int
	EncodeMs float64
}

// Complexity estimates per-tile content complexity in [0.2, 1.5] from the
// amount of object coverage (objects are high-frequency content, empty
// ground is flat). It substitutes for the codec's entropy estimate.
func Complexity(g Grid, objectCover []float64, tile int) float64 {
	if objectCover == nil {
		return 1
	}
	return 0.2 + 1.3*clamp01(objectCover[tile])
}

// Encode models encoding a frame with the given per-tile levels.
// objectCover (optional, len == Tiles()) is the fraction of each tile
// covered by objects, driving the complexity term of the rate model.
func Encode(g Grid, levels []QualityLevel, objectCover []float64) (*EncodedFrame, error) {
	if len(levels) != g.Tiles() {
		return nil, fmt.Errorf("codec: %d levels for %d tiles", len(levels), g.Tiles())
	}
	totalBytes := 0.0
	encodeMs := 0.0
	for i, lvl := range levels {
		b := g.TileBox(i)
		px := float64(b.Area())
		cx := Complexity(g, objectCover, i)
		totalBytes += px * lvl.bytesPerPixel() * cx
		// Encoding cost grows with quality; skip tiles are nearly free.
		encodeMs += px * encodeCostPerPixel(lvl) * cx
	}
	return &EncodedFrame{
		Grid:     g,
		Levels:   append([]QualityLevel(nil), levels...),
		Bytes:    int(math.Ceil(totalBytes)),
		EncodeMs: encodeMs,
	}, nil
}

// EncodeUniform encodes the whole frame at a single level — the behaviour
// of the non-tile-aware baselines.
func EncodeUniform(g Grid, level QualityLevel, objectCover []float64) *EncodedFrame {
	levels := make([]QualityLevel, g.Tiles())
	for i := range levels {
		levels[i] = level
	}
	ef, err := Encode(g, levels, objectCover)
	if err != nil {
		panic(err) // cannot happen: levels sized from the grid
	}
	return ef
}

// encodeCostPerPixel is the per-pixel encode time (ms) by level, calibrated
// to a mobile HEVC encoder (~8 ms for a high-quality 640x480 frame).
func encodeCostPerPixel(q QualityLevel) float64 {
	switch q {
	case QualitySkip:
		return 0.5e-6
	case QualityLow:
		return 8e-6
	case QualityMedium:
		return 16e-6
	case QualityHigh:
		return 26e-6
	default:
		return 0
	}
}

// QualityAt returns the decoded fidelity at a pixel — the function handed
// to segmodel.Input.Quality.
func (e *EncodedFrame) QualityAt(x, y int) float64 {
	return e.Levels[e.Grid.TileAt(x, y)].Fidelity()
}

// DecodeMs models the edge-side decode latency (fraction of encode cost).
func (e *EncodedFrame) DecodeMs() float64 {
	return 0.3 * e.EncodeMs
}

// ContourPayloadBytes models the serialized size of a transmitted mask
// contour (vertices as two varint-ish coordinates plus header) — the
// Boost-serialized contour data of Section VI-A.
func ContourPayloadBytes(vertices int) int {
	return 16 + 5*vertices
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
