package codec

import (
	"testing"
	"testing/quick"

	"edgeis/internal/mask"
)

func TestQualityLevelStringsAndFidelity(t *testing.T) {
	levels := []QualityLevel{QualitySkip, QualityLow, QualityMedium, QualityHigh}
	prev := -1.0
	for _, q := range levels {
		if q.String() == "" {
			t.Error("empty level name")
		}
		f := q.Fidelity()
		if f <= prev {
			t.Errorf("fidelity not increasing at %v: %v <= %v", q, f, prev)
		}
		if f <= 0 || f > 1 {
			t.Errorf("fidelity out of range: %v", f)
		}
		prev = f
	}
	if QualityLevel(99).String() == "" {
		t.Error("unknown level should stringify")
	}
}

func TestGridLayout(t *testing.T) {
	g := NewGrid(640, 480)
	if g.Cols != 20 || g.Rows != 15 {
		t.Fatalf("grid = %dx%d", g.Cols, g.Rows)
	}
	if g.Tiles() != 300 {
		t.Fatalf("tiles = %d", g.Tiles())
	}
	// Non-multiple sizes round up.
	g2 := NewGrid(100, 50)
	if g2.Cols != 4 || g2.Rows != 2 {
		t.Errorf("grid = %dx%d, want 4x2", g2.Cols, g2.Rows)
	}
	// Edge tiles are clipped to the frame.
	last := g2.TileBox(g2.Tiles() - 1)
	if last.MaxX != 100 || last.MaxY != 50 {
		t.Errorf("last tile box = %+v", last)
	}
}

func TestTileAtRoundTrip(t *testing.T) {
	g := NewGrid(640, 480)
	f := func(x, y uint16) bool {
		px := int(x) % 640
		py := int(y) % 480
		tile := g.TileAt(px, py)
		return g.TileBox(tile).Contains(px, py)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Out-of-range pixels clamp instead of panicking.
	if g.TileAt(-5, -5) != 0 {
		t.Error("negative pixel should clamp to tile 0")
	}
	if g.TileAt(10000, 10000) != g.Tiles()-1 {
		t.Error("overflow pixel should clamp to last tile")
	}
}

func TestTilesInBox(t *testing.T) {
	g := NewGrid(640, 480)
	tiles := g.TilesInBox(mask.Box{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64})
	if len(tiles) != 4 {
		t.Errorf("got %d tiles, want 4", len(tiles))
	}
	if got := g.TilesInBox(mask.Box{}); got != nil {
		t.Error("empty box should yield no tiles")
	}
	all := g.TilesInBox(mask.Box{MinX: 0, MinY: 0, MaxX: 640, MaxY: 480})
	if len(all) != g.Tiles() {
		t.Errorf("full box covers %d tiles, want %d", len(all), g.Tiles())
	}
}

func TestEncodeRateMonotoneInQuality(t *testing.T) {
	g := NewGrid(640, 480)
	prev := -1
	for _, q := range []QualityLevel{QualitySkip, QualityLow, QualityMedium, QualityHigh} {
		ef := EncodeUniform(g, q, nil)
		if ef.Bytes <= prev {
			t.Errorf("bytes not increasing at %v: %d <= %d", q, ef.Bytes, prev)
		}
		prev = ef.Bytes
	}
}

func TestEncodeMixedCheaperThanUniformHigh(t *testing.T) {
	// The point of CFRS: selective quality cuts bytes versus all-high.
	g := NewGrid(640, 480)
	high := EncodeUniform(g, QualityHigh, nil)
	levels := make([]QualityLevel, g.Tiles())
	for i := range levels {
		levels[i] = QualityLow
	}
	// One object's worth of high tiles.
	for _, tl := range g.TilesInBox(mask.Box{MinX: 200, MinY: 150, MaxX: 360, MaxY: 280}) {
		levels[tl] = QualityHigh
	}
	mixed, err := Encode(g, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Bytes >= high.Bytes/2 {
		t.Errorf("mixed %d bytes vs uniform-high %d: want < 50%%", mixed.Bytes, high.Bytes)
	}
}

func TestEncodeComplexityRaisesBytes(t *testing.T) {
	g := NewGrid(320, 240)
	flat := make([]float64, g.Tiles())
	busy := make([]float64, g.Tiles())
	for i := range busy {
		busy[i] = 1
	}
	a := EncodeUniform(g, QualityHigh, flat)
	b := EncodeUniform(g, QualityHigh, busy)
	if b.Bytes <= a.Bytes {
		t.Errorf("busy content %d bytes <= flat %d", b.Bytes, a.Bytes)
	}
}

func TestEncodeLevelsMismatch(t *testing.T) {
	g := NewGrid(320, 240)
	if _, err := Encode(g, make([]QualityLevel, 3), nil); err == nil {
		t.Error("expected error for wrong level count")
	}
}

func TestQualityAt(t *testing.T) {
	g := NewGrid(64, 64)
	levels := make([]QualityLevel, g.Tiles())
	for i := range levels {
		levels[i] = QualityLow
	}
	levels[0] = QualityHigh
	ef, err := Encode(g, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ef.QualityAt(5, 5) != QualityHigh.Fidelity() {
		t.Error("tile 0 quality wrong")
	}
	if ef.QualityAt(40, 40) != QualityLow.Fidelity() {
		t.Error("other tile quality wrong")
	}
}

func TestEncodeCostOrdering(t *testing.T) {
	g := NewGrid(640, 480)
	low := EncodeUniform(g, QualityLow, nil)
	high := EncodeUniform(g, QualityHigh, nil)
	if high.EncodeMs <= low.EncodeMs {
		t.Error("high quality should cost more encode time")
	}
	if high.DecodeMs() <= 0 || high.DecodeMs() >= high.EncodeMs {
		t.Error("decode cost should be positive and below encode cost")
	}
	// Calibration: a full high-quality 640x480 frame encodes in ~5-15 ms.
	if high.EncodeMs < 3 || high.EncodeMs > 20 {
		t.Errorf("encode cost %.1f ms out of calibrated range", high.EncodeMs)
	}
}

func TestContourPayloadBytes(t *testing.T) {
	if ContourPayloadBytes(0) <= 0 {
		t.Error("header must be charged")
	}
	if ContourPayloadBytes(100) <= ContourPayloadBytes(10) {
		t.Error("payload must grow with vertices")
	}
}

func TestHighQualityFrameSizeRealistic(t *testing.T) {
	// A 640x480 all-high frame should land in the tens-of-KB range a real
	// HEVC intra frame occupies, and a CFRS-style mixed frame well below.
	g := NewGrid(640, 480)
	high := EncodeUniform(g, QualityHigh, nil)
	if high.Bytes < 20_000 || high.Bytes > 80_000 {
		t.Errorf("uniform-high frame = %d bytes, want 20-80 KB", high.Bytes)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := NewGrid(320, 240)
	levels := make([]QualityLevel, g.Tiles())
	for i := range levels {
		levels[i] = QualityLevel(1 + i%3)
	}
	a, err := Encode(g, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(g, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != b.Bytes || a.EncodeMs != b.EncodeMs {
		t.Error("encode nondeterministic")
	}
}

func TestEncodePreservesLevelsCopy(t *testing.T) {
	// The encoded frame must own its levels: mutating the caller's slice
	// after Encode must not change QualityAt results.
	g := NewGrid(64, 64)
	levels := make([]QualityLevel, g.Tiles())
	for i := range levels {
		levels[i] = QualityHigh
	}
	ef, err := Encode(g, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	levels[0] = QualitySkip
	if ef.QualityAt(5, 5) != QualityHigh.Fidelity() {
		t.Error("encoded frame aliases the caller's level slice")
	}
}
