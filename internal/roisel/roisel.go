// Package roisel implements edgeIS's Content-based Fine-grained RoI
// Selection (CFRS, Section V): deciding WHEN to offload a frame to the edge
// and HOW to compress it.
//
// Offload triggers:
//   - the fraction of features matched to unlabeled map points exceeds the
//     threshold t (paper: 0.25) — a large part of the view is new content;
//   - a tracked object's pose changed significantly over a period — its
//     cached mask needs correction;
//   - a staleness guard re-offloads when no edge result arrived for too
//     long (keyframe refresh).
//
// Frame partition (Fig. 8c/d): tiles covering known objects and new content
// are encoded at high quality, a context band around objects at medium, and
// everything else at low quality.
package roisel

import (
	"edgeis/internal/codec"
	"edgeis/internal/mask"
)

// Config tunes the selector.
type Config struct {
	// NewContentThreshold is t: the unlabeled-feature fraction above which
	// a frame is offloaded (paper: 0.25).
	NewContentThreshold float64
	// MaxKeyframeGap forces an offload after this many frames without an
	// edge result (default 30, one second at camera rate).
	MaxKeyframeGap int
	// MinOffloadGap throttles consecutive offloads (default 5 frames) so
	// a burst of triggers cannot saturate the uplink.
	MinOffloadGap int
	// ContextMargin is the tile margin around object boxes encoded at
	// medium quality (default 1 tile).
	ContextMargin int
	// DisableClusterTrigger turns off the localized new-area trigger,
	// leaving only the paper's global threshold t — used by the threshold
	// ablation to isolate t's effect.
	DisableClusterTrigger bool
}

func (c *Config) applyDefaults() {
	if c.NewContentThreshold == 0 {
		c.NewContentThreshold = 0.25
	}
	if c.MaxKeyframeGap == 0 {
		c.MaxKeyframeGap = 30
	}
	if c.MinOffloadGap == 0 {
		c.MinOffloadGap = 5
	}
	if c.ContextMargin == 0 {
		c.ContextMargin = 1
	}
}

// FrameState is what the selector inspects each frame.
type FrameState struct {
	Index int
	// UnlabeledFraction is the VO's fraction of features matched to
	// unlabeled points (or unmatched entirely).
	UnlabeledFraction float64
	// MovingObjects counts instances currently flagged as moving.
	MovingObjects int
	// ObjectBoxes are the current (transferred) mask bounding boxes.
	ObjectBoxes []mask.Box
	// NewAreas are regions dominated by unlabeled features.
	NewAreas []mask.Box
	// TrackingLost marks frames where the VO lost its pose; they must be
	// offloaded to re-initialize.
	TrackingLost bool
}

// Reason explains an offload decision (for metrics and logs).
type Reason int

// Offload reasons.
const (
	// ReasonNone: no offload this frame.
	ReasonNone Reason = iota
	// ReasonNewContent: unlabeled-feature fraction exceeded t.
	ReasonNewContent
	// ReasonObjectMotion: a tracked object moved; masks need correction.
	ReasonObjectMotion
	// ReasonKeyframe: staleness refresh.
	ReasonKeyframe
	// ReasonLost: tracking lost; re-initialization frames.
	ReasonLost
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonNewContent:
		return "new-content"
	case ReasonObjectMotion:
		return "object-motion"
	case ReasonKeyframe:
		return "keyframe"
	case ReasonLost:
		return "lost"
	default:
		return "unknown"
	}
}

// Selector holds the offload state machine.
type Selector struct {
	cfg             Config
	lastOffload     int
	lastEdgeResult  int
	offloadsTotal   int
	reasonHistogram map[Reason]int
}

// NewSelector builds a selector.
func NewSelector(cfg Config) *Selector {
	cfg.applyDefaults()
	return &Selector{
		cfg:             cfg,
		lastOffload:     -1 << 30,
		lastEdgeResult:  -1 << 30,
		reasonHistogram: make(map[Reason]int),
	}
}

// NoteEdgeResult records that an edge inference result covering the given
// frame arrived, resetting the staleness guard.
func (s *Selector) NoteEdgeResult(frameIdx int) {
	if frameIdx > s.lastEdgeResult {
		s.lastEdgeResult = frameIdx
	}
}

// OffloadsTotal returns the number of positive decisions taken.
func (s *Selector) OffloadsTotal() int { return s.offloadsTotal }

// ReasonCounts returns a copy of the per-reason decision histogram.
func (s *Selector) ReasonCounts() map[Reason]int {
	out := make(map[Reason]int, len(s.reasonHistogram))
	for k, v := range s.reasonHistogram {
		out[k] = v
	}
	return out
}

// Decide returns whether to offload this frame and why.
func (s *Selector) Decide(fs FrameState) (bool, Reason) {
	if fs.TrackingLost {
		// Re-initialization frames bypass the throttle: without them the
		// system cannot recover.
		s.record(fs.Index, ReasonLost)
		return true, ReasonLost
	}
	if fs.Index-s.lastOffload < s.cfg.MinOffloadGap {
		return false, ReasonNone
	}
	clusterHit := !s.cfg.DisableClusterTrigger && len(fs.NewAreas) > 0
	switch {
	case fs.UnlabeledFraction > s.cfg.NewContentThreshold || clusterHit:
		// Either a large share of the view is new (the paper's global
		// threshold t) or a localized cluster of unlabeled features —
		// typically a freshly appeared object — needs pixel-level
		// annotation even though it is small relative to the frame.
		s.record(fs.Index, ReasonNewContent)
		return true, ReasonNewContent
	case fs.MovingObjects > 0:
		s.record(fs.Index, ReasonObjectMotion)
		return true, ReasonObjectMotion
	case fs.Index-s.lastEdgeResult > s.cfg.MaxKeyframeGap:
		s.record(fs.Index, ReasonKeyframe)
		return true, ReasonKeyframe
	default:
		return false, ReasonNone
	}
}

func (s *Selector) record(idx int, r Reason) {
	s.lastOffload = idx
	s.offloadsTotal++
	s.reasonHistogram[r]++
}

// Partition assigns per-tile quality levels for an offloaded frame
// (Fig. 8c/d): high quality on object and new-content tiles, medium on a
// context band around objects, low elsewhere. It also returns the per-tile
// object coverage used by the codec's complexity model.
func (s *Selector) Partition(g codec.Grid, fs FrameState) ([]codec.QualityLevel, []float64) {
	levels := make([]codec.QualityLevel, g.Tiles())
	cover := make([]float64, g.Tiles())
	for i := range levels {
		levels[i] = codec.QualityLow
	}
	raise := func(tile int, lvl codec.QualityLevel) {
		if levels[tile] < lvl {
			levels[tile] = lvl
		}
	}
	margin := s.cfg.ContextMargin * codec.TileSize
	for _, b := range fs.ObjectBoxes {
		for _, t := range g.TilesInBox(b) {
			raise(t, codec.QualityHigh)
			cover[t] = 1
		}
		ctx := b.Expand(margin, g.Width, g.Height)
		for _, t := range g.TilesInBox(ctx) {
			raise(t, codec.QualityMedium)
			if cover[t] < 0.4 {
				cover[t] = 0.4
			}
		}
	}
	for _, b := range fs.NewAreas {
		for _, t := range g.TilesInBox(b) {
			raise(t, codec.QualityHigh)
			if cover[t] < 0.6 {
				cover[t] = 0.6
			}
		}
	}
	return levels, cover
}

// NewAreasFromUnlabeled derives new-content boxes by clustering unlabeled
// feature pixels on the tile grid: tiles whose unlabeled-feature count
// exceeds minFeatures are merged into their bounding boxes (greedy
// row-major clustering of adjacent hot tiles).
func NewAreasFromUnlabeled(g codec.Grid, pixels []struct{ X, Y float64 }, minFeatures int) []mask.Box {
	if minFeatures <= 0 {
		minFeatures = 2
	}
	counts := make([]int, g.Tiles())
	for _, p := range pixels {
		counts[g.TileAt(int(p.X), int(p.Y))]++
	}
	hot := make([]bool, g.Tiles())
	for i, c := range counts {
		hot[i] = c >= minFeatures
	}
	visited := make([]bool, g.Tiles())
	var out []mask.Box
	for i := range hot {
		if !hot[i] || visited[i] {
			continue
		}
		// Flood-fill the hot cluster.
		stack := []int{i}
		visited[i] = true
		box := g.TileBox(i)
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			box = box.UnionBox(g.TileBox(t))
			r, c := t/g.Cols, t%g.Cols
			for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nc < 0 || nr >= g.Rows || nc >= g.Cols {
					continue
				}
				nt := nr*g.Cols + nc
				if hot[nt] && !visited[nt] {
					visited[nt] = true
					stack = append(stack, nt)
				}
			}
		}
		out = append(out, box)
	}
	return out
}
