package roisel

import (
	"testing"

	"edgeis/internal/codec"
	"edgeis/internal/mask"
)

func TestDecideNewContent(t *testing.T) {
	s := NewSelector(Config{})
	ok, reason := s.Decide(FrameState{Index: 10, UnlabeledFraction: 0.4})
	if !ok || reason != ReasonNewContent {
		t.Errorf("got (%v, %v)", ok, reason)
	}
	// Below threshold, fresh edge result: no offload.
	s2 := NewSelector(Config{})
	s2.NoteEdgeResult(9)
	ok, reason = s2.Decide(FrameState{Index: 10, UnlabeledFraction: 0.1})
	if ok || reason != ReasonNone {
		t.Errorf("got (%v, %v)", ok, reason)
	}
}

func TestDecideThresholdExactlyAtT(t *testing.T) {
	// The paper says "larger than a threshold t"; exactly t must not fire.
	s := NewSelector(Config{})
	s.NoteEdgeResult(9)
	if ok, _ := s.Decide(FrameState{Index: 10, UnlabeledFraction: 0.25}); ok {
		t.Error("fraction == t should not trigger")
	}
	if ok, _ := s.Decide(FrameState{Index: 11, UnlabeledFraction: 0.2500001}); !ok {
		t.Error("fraction just above t should trigger")
	}
}

func TestDecideObjectMotion(t *testing.T) {
	s := NewSelector(Config{})
	s.NoteEdgeResult(9)
	ok, reason := s.Decide(FrameState{Index: 10, MovingObjects: 1})
	if !ok || reason != ReasonObjectMotion {
		t.Errorf("got (%v, %v)", ok, reason)
	}
}

func TestDecideKeyframeStaleness(t *testing.T) {
	s := NewSelector(Config{MaxKeyframeGap: 10})
	s.NoteEdgeResult(0)
	ok, reason := s.Decide(FrameState{Index: 11})
	if !ok || reason != ReasonKeyframe {
		t.Errorf("got (%v, %v)", ok, reason)
	}
}

func TestDecideThrottle(t *testing.T) {
	s := NewSelector(Config{MinOffloadGap: 5})
	if ok, _ := s.Decide(FrameState{Index: 10, UnlabeledFraction: 0.9}); !ok {
		t.Fatal("first offload should fire")
	}
	// Immediately after: throttled even with a strong trigger.
	if ok, _ := s.Decide(FrameState{Index: 12, UnlabeledFraction: 0.9}); ok {
		t.Error("throttle violated")
	}
	if ok, _ := s.Decide(FrameState{Index: 15, UnlabeledFraction: 0.9}); !ok {
		t.Error("offload after gap should fire")
	}
}

func TestDecideLostBypassesThrottle(t *testing.T) {
	s := NewSelector(Config{MinOffloadGap: 5})
	s.Decide(FrameState{Index: 10, UnlabeledFraction: 0.9})
	ok, reason := s.Decide(FrameState{Index: 11, TrackingLost: true})
	if !ok || reason != ReasonLost {
		t.Errorf("got (%v, %v)", ok, reason)
	}
}

func TestReasonAccounting(t *testing.T) {
	s := NewSelector(Config{MinOffloadGap: 1})
	s.Decide(FrameState{Index: 1, UnlabeledFraction: 0.9})
	s.Decide(FrameState{Index: 5, MovingObjects: 2})
	s.Decide(FrameState{Index: 50})
	if s.OffloadsTotal() != 3 {
		t.Errorf("total = %d", s.OffloadsTotal())
	}
	counts := s.ReasonCounts()
	if counts[ReasonNewContent] != 1 || counts[ReasonObjectMotion] != 1 || counts[ReasonKeyframe] != 1 {
		t.Errorf("counts = %v", counts)
	}
	for _, r := range []Reason{ReasonNone, ReasonNewContent, ReasonObjectMotion, ReasonKeyframe, ReasonLost, Reason(99)} {
		if r.String() == "" {
			t.Error("empty reason name")
		}
	}
}

func TestPartitionLevels(t *testing.T) {
	s := NewSelector(Config{})
	g := codec.NewGrid(640, 480)
	fs := FrameState{
		ObjectBoxes: []mask.Box{{MinX: 200, MinY: 150, MaxX: 330, MaxY: 260}},
		NewAreas:    []mask.Box{{MinX: 500, MinY: 380, MaxX: 620, MaxY: 470}},
	}
	levels, cover := s.Partition(g, fs)
	if len(levels) != g.Tiles() || len(cover) != g.Tiles() {
		t.Fatal("wrong lengths")
	}
	// Object center tile is high quality with full cover.
	objTile := g.TileAt(260, 200)
	if levels[objTile] != codec.QualityHigh || cover[objTile] != 1 {
		t.Errorf("object tile: %v cover=%v", levels[objTile], cover[objTile])
	}
	// New-area tile is high quality.
	newTile := g.TileAt(560, 420)
	if levels[newTile] != codec.QualityHigh {
		t.Errorf("new-area tile: %v", levels[newTile])
	}
	// Context band around the object is at least medium.
	ctxTile := g.TileAt(190, 140)
	if levels[ctxTile] < codec.QualityMedium {
		t.Errorf("context tile: %v", levels[ctxTile])
	}
	// A far-away tile stays low.
	farTile := g.TileAt(30, 430)
	if levels[farTile] != codec.QualityLow {
		t.Errorf("far tile: %v", levels[farTile])
	}
}

func TestPartitionReducesBytes(t *testing.T) {
	s := NewSelector(Config{})
	g := codec.NewGrid(640, 480)
	fs := FrameState{ObjectBoxes: []mask.Box{{MinX: 200, MinY: 150, MaxX: 330, MaxY: 260}}}
	levels, cover := s.Partition(g, fs)
	mixed, err := codec.Encode(g, levels, cover)
	if err != nil {
		t.Fatal(err)
	}
	uniform := codec.EncodeUniform(g, codec.QualityHigh, cover)
	if mixed.Bytes >= uniform.Bytes*2/3 {
		t.Errorf("partitioned %d bytes vs uniform %d: want clear reduction", mixed.Bytes, uniform.Bytes)
	}
}

func TestNewAreasFromUnlabeled(t *testing.T) {
	g := codec.NewGrid(640, 480)
	// Cluster of unlabeled features in the top-left corner plus an
	// isolated single feature (below minFeatures) elsewhere.
	pts := []struct{ X, Y float64 }{
		{10, 10}, {15, 12}, {40, 20}, {50, 40}, {20, 50},
		{600, 400},
	}
	areas := NewAreasFromUnlabeled(g, pts, 2)
	if len(areas) != 1 {
		t.Fatalf("got %d areas, want 1", len(areas))
	}
	if !areas[0].Contains(10, 10) {
		t.Error("area misses the cluster")
	}
	if areas[0].Contains(600, 400) {
		t.Error("isolated feature should not form an area")
	}
	if got := NewAreasFromUnlabeled(g, nil, 2); got != nil {
		t.Error("no features should yield no areas")
	}
}

func TestNewAreasMergeAdjacentTiles(t *testing.T) {
	g := codec.NewGrid(640, 480)
	// Two hot tiles side by side merge into one box.
	pts := []struct{ X, Y float64 }{
		{10, 10}, {20, 20}, // tile (0,0)
		{40, 10}, {50, 20}, // tile (0,1)
	}
	areas := NewAreasFromUnlabeled(g, pts, 2)
	if len(areas) != 1 {
		t.Fatalf("got %d areas, want merged 1", len(areas))
	}
	if areas[0].Width() < 2*codec.TileSize {
		t.Error("merged area too narrow")
	}
}

func TestDisableClusterTriggerIsolatesThreshold(t *testing.T) {
	fs := FrameState{
		Index:             10,
		UnlabeledFraction: 0.1, // below t
		NewAreas:          []mask.Box{{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64}},
	}
	withCluster := NewSelector(Config{})
	withCluster.NoteEdgeResult(9)
	if ok, reason := withCluster.Decide(fs); !ok || reason != ReasonNewContent {
		t.Errorf("cluster trigger should fire: (%v, %v)", ok, reason)
	}
	isolated := NewSelector(Config{DisableClusterTrigger: true})
	isolated.NoteEdgeResult(9)
	if ok, _ := isolated.Decide(fs); ok {
		t.Error("cluster trigger fired despite being disabled")
	}
}
