package feature

import (
	"testing"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/scene"
)

// TestMatchFeaturesDuplicateDescriptorKeepsFirst pins the documented
// tie-break: when the A side carries the same descriptor more than once
// (e.g. a corrupted rng.Uint64 descriptor colliding), matches pair against
// the first (lowest-index, strongest) occurrence — last-write-wins used to
// silently rewire them to the weakest duplicate.
func TestMatchFeaturesDuplicateDescriptorKeepsFirst(t *testing.T) {
	a := []Feature{
		{Descriptor: 10},
		{Descriptor: 77},
		{Descriptor: 77}, // duplicate: must lose to index 1
		{Descriptor: 20},
	}
	b := []Feature{
		{Descriptor: 77},
		{Descriptor: 20},
	}
	got := MatchFeatures(a, b)
	want := []Match{{A: 1, B: 0}, {A: 3, B: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestExtractReusesOcclusionScratch verifies repeated extraction performs no
// per-frame mask allocations (the occlusion union reuses one scratch mask).
func TestExtractReusesOcclusionScratch(t *testing.T) {
	w := scene.NewWorld(scene.WorldConfig{Seed: 1}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(0, 1, 8), Half: geom.V3(1.5, 1, 1)},
	})
	cam := geom.StandardCamera(320, 240)
	tcw := scene.LookAtPose(geom.V3(0, 1.6, 0), geom.V3(0, 1, 8))
	e := NewExtractor(w, cam, DefaultConfig(), 7)
	e.Extract(w.Render(cam, tcw, 0, 0), 0.1) // warm-up
	frames := make([]*scene.Frame, 5)
	for i := range frames {
		frames[i] = w.Render(cam, tcw, float64(i+1)*0.033, i+1)
	}
	before := mask.Allocs()
	for _, f := range frames {
		e.Extract(f, 0.1)
	}
	if got := mask.Allocs() - before; got != 0 {
		t.Fatalf("Extract performed %d mask allocations over 5 frames, want 0", got)
	}
}
