// Package feature implements the synthetic ORB-style front-end that feeds
// the visual odometry (Section III). Real ORB detects corner pixels and
// describes them with binary descriptors; here, stable world-anchored
// texture points play the role of corners, so re-detection across frames is
// geometrically exact up to an injected noise model (pixel jitter, blur- and
// speed-dependent dropout, descriptor corruption). The downstream geometry —
// matching, epipolar estimation, triangulation, bundle adjustment — consumes
// the same (pixel, descriptor) interface it would get from real ORB.
package feature

import (
	"math"
	"math/rand"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/scene"
)

// Feature is one detected keypoint in a frame.
type Feature struct {
	Pixel      geom.Vec2
	Descriptor uint64
	// Sharpness in [0,1]; low values indicate motion blur. The feature
	// selection of Section III-A filters on it.
	Sharpness float64

	// Ground-truth fields, used only by evaluation and the noise model —
	// never by the estimation pipeline.
	TrueObjectID int     // owning object (0 = background)
	TrueDepth    float64 // camera-frame depth
	PointIndex   int     // index into World.Points
}

// Config tunes the extraction noise model.
type Config struct {
	// PixelSigma is the standard deviation of detection jitter in pixels.
	PixelSigma float64
	// BaseDropout is the probability a visible point goes undetected even
	// when static.
	BaseDropout float64
	// SpeedDropoutScale converts camera speed (m/s) into extra dropout —
	// the motion-blur mechanism behind the Fig. 12 degradation.
	SpeedDropoutScale float64
	// DescriptorNoise is the probability a detection emits a corrupted
	// descriptor (it will not match its true identity).
	DescriptorNoise float64
	// MaxFeatures caps detections per frame (strongest-first), matching
	// the fixed feature budget of real ORB front-ends.
	MaxFeatures int
}

// DefaultConfig mirrors a well-tuned mobile ORB configuration.
func DefaultConfig() Config {
	return Config{
		PixelSigma:        0.4,
		BaseDropout:       0.05,
		SpeedDropoutScale: 0.045,
		DescriptorNoise:   0.01,
		MaxFeatures:       800,
	}
}

// Extractor detects features in rendered frames.
type Extractor struct {
	world  *scene.World
	camera geom.Camera
	cfg    Config
	rng    *rand.Rand
	occl   *mask.Bitmask // per-frame occlusion scratch, reused across Extract calls
}

// NewExtractor builds an extractor over the given world. The seed makes
// extraction deterministic for reproducible experiments.
func NewExtractor(w *scene.World, cam geom.Camera, cfg Config, seed int64) *Extractor {
	if cfg.MaxFeatures == 0 {
		cfg = DefaultConfig()
	}
	return &Extractor{
		world: w, camera: cam, cfg: cfg,
		rng:  rand.New(rand.NewSource(seed)),
		occl: mask.New(cam.Width, cam.Height),
	}
}

// Extract detects features in the frame. camSpeed is the instantaneous
// camera speed (m/s) used by the blur model.
func (e *Extractor) Extract(f *scene.Frame, camSpeed float64) []Feature {
	dropout := e.cfg.BaseDropout + e.cfg.SpeedDropoutScale*camSpeed
	if dropout > 0.95 {
		dropout = 0.95
	}
	camCenter := f.TCW.CameraCenter()

	// Union of visible instance masks, for background occlusion tests.
	// The scratch mask persists across frames so extraction allocates none.
	occluded := e.occl
	occluded.Reset()
	for _, gt := range f.Objects {
		occluded.Union(gt.Visible)
	}

	out := make([]Feature, 0, e.cfg.MaxFeatures)
	for i := range e.world.Points {
		sp := e.world.Points[i]
		pos, normal := e.world.WorldPointAt(i, f.Time)
		pc := f.TCW.Apply(pos)
		if pc.Z <= 0.05 {
			continue
		}
		px, err := e.camera.Project(pc)
		if err != nil || !e.camera.InBounds(px, 1) {
			continue
		}
		xi, yi := int(px.X), int(px.Y)
		if sp.ObjectID == 0 {
			// Background points are hidden behind any instance.
			if occluded.At(xi, yi) {
				continue
			}
		} else {
			// Object points must face the camera and lie on the visible
			// (unoccluded) part of their own instance.
			if normal.Dot(camCenter.Sub(pos)) <= 0 {
				continue
			}
			gt := f.GroundTruthFor(sp.ObjectID)
			if gt == nil {
				continue
			}
			if !nearMask(gt.Visible, xi, yi, 1) {
				continue
			}
		}
		if e.rng.Float64() < dropout {
			continue
		}
		desc := sp.Descriptor
		if e.rng.Float64() < e.cfg.DescriptorNoise {
			desc = e.rng.Uint64() // corrupted: will not match across frames
		}
		sharp := 1 - math.Min(1, camSpeed*0.15) + e.rng.NormFloat64()*0.05
		out = append(out, Feature{
			Pixel: geom.V2(
				px.X+e.rng.NormFloat64()*e.cfg.PixelSigma,
				px.Y+e.rng.NormFloat64()*e.cfg.PixelSigma,
			),
			Descriptor:   desc,
			Sharpness:    clamp01(sharp),
			TrueObjectID: sp.ObjectID,
			TrueDepth:    pc.Z,
			PointIndex:   i,
		})
		if len(out) >= e.cfg.MaxFeatures {
			break
		}
	}
	return out
}

// nearMask reports whether (x,y) or any pixel within radius r is set —
// tolerance for contour points that rasterize just outside the silhouette.
func nearMask(m *mask.Bitmask, x, y, r int) bool {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if m.At(x+dx, y+dy) {
				return true
			}
		}
	}
	return false
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Match pairs features between two frames by descriptor identity — the
// stand-in for Hamming-distance ORB matching. Corrupted descriptors simply
// fail to pair, modelling dropped matches; outlier injection lives in
// MatchWithOutliers.
type Match struct {
	A, B int // indices into the two input slices
}

// MatchFeatures returns index pairs of features sharing a descriptor.
// When several A-side features carry the same descriptor (possible when a
// corrupted rng.Uint64 descriptor collides), the first (lowest-index)
// occurrence wins — matching the strongest detection, since extraction
// emits features strongest-first. Last-write-wins here used to silently
// rewire such matches to the weakest duplicate.
func MatchFeatures(a, b []Feature) []Match {
	byDesc := make(map[uint64]int, len(a))
	for i := range a {
		if _, dup := byDesc[a[i].Descriptor]; !dup {
			byDesc[a[i].Descriptor] = i
		}
	}
	out := make([]Match, 0, len(b))
	for j := range b {
		if i, ok := byDesc[b[j].Descriptor]; ok {
			out = append(out, Match{A: i, B: j})
		}
	}
	return out
}

// MatchWithOutliers is MatchFeatures plus injected mismatches: for each
// correct pair, with probability outlierRate its B side is rewired to a
// random other B feature. This stresses the robust estimation downstream the
// way real descriptor aliasing does.
func MatchWithOutliers(a, b []Feature, outlierRate float64, rng *rand.Rand) []Match {
	matches := MatchFeatures(a, b)
	if outlierRate <= 0 || len(b) < 2 {
		return matches
	}
	for i := range matches {
		if rng.Float64() < outlierRate {
			matches[i].B = rng.Intn(len(b))
		}
	}
	return matches
}
