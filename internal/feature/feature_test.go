package feature

import (
	"math"
	"math/rand"
	"testing"

	"edgeis/internal/geom"
	"edgeis/internal/scene"
)

func testSetup(t *testing.T) (*scene.World, geom.Camera, *scene.Frame) {
	t.Helper()
	w := scene.NewWorld(scene.WorldConfig{Seed: 1}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(0, 1, 8), Half: geom.V3(1.5, 1, 1)},
	})
	cam := geom.StandardCamera(320, 240)
	tcw := scene.LookAtPose(geom.V3(0, 1.6, 0), geom.V3(0, 1, 8))
	return w, cam, w.Render(cam, tcw, 0, 0)
}

func TestExtractBasic(t *testing.T) {
	w, cam, f := testSetup(t)
	ex := NewExtractor(w, cam, DefaultConfig(), 1)
	feats := ex.Extract(f, 0)
	if len(feats) < 50 {
		t.Fatalf("extracted %d features, want >= 50", len(feats))
	}
	var bg, obj int
	for _, ft := range feats {
		if !cam.InBounds(ft.Pixel, -2) {
			t.Fatalf("feature out of bounds: %+v", ft.Pixel)
		}
		if ft.TrueObjectID == 0 {
			bg++
		} else {
			obj++
			if ft.TrueDepth <= 0 {
				t.Fatal("non-positive depth")
			}
		}
	}
	if bg == 0 || obj == 0 {
		t.Errorf("bg=%d obj=%d, want both > 0", bg, obj)
	}
}

func TestExtractObjectPointsLieOnMask(t *testing.T) {
	w, cam, f := testSetup(t)
	cfg := DefaultConfig()
	cfg.PixelSigma = 0 // disable jitter for exact containment check
	ex := NewExtractor(w, cam, cfg, 2)
	feats := ex.Extract(f, 0)
	gt := f.Objects[0]
	for _, ft := range feats {
		if ft.TrueObjectID != gt.ObjectID {
			continue
		}
		x, y := int(ft.Pixel.X), int(ft.Pixel.Y)
		if !nearMask(gt.Visible, x, y, 2) {
			t.Fatalf("object feature at (%d,%d) not on mask", x, y)
		}
	}
}

func TestExtractSpeedIncreasesDropout(t *testing.T) {
	w, cam, f := testSetup(t)
	slow := NewExtractor(w, cam, DefaultConfig(), 3).Extract(f, 0)
	fast := NewExtractor(w, cam, DefaultConfig(), 3).Extract(f, scene.JogSpeed*3)
	if len(fast) >= len(slow) {
		t.Errorf("fast motion should drop features: slow=%d fast=%d", len(slow), len(fast))
	}
}

func TestExtractSharpnessDropsWithSpeed(t *testing.T) {
	w, cam, f := testSetup(t)
	meanSharp := func(speed float64) float64 {
		feats := NewExtractor(w, cam, DefaultConfig(), 4).Extract(f, speed)
		if len(feats) == 0 {
			return 0
		}
		s := 0.0
		for _, ft := range feats {
			s += ft.Sharpness
		}
		return s / float64(len(feats))
	}
	if meanSharp(scene.JogSpeed) >= meanSharp(0) {
		t.Error("sharpness should drop with speed")
	}
}

func TestExtractOcclusionHidesBackground(t *testing.T) {
	w, cam, f := testSetup(t)
	cfg := DefaultConfig()
	cfg.PixelSigma = 0
	cfg.BaseDropout = 0
	ex := NewExtractor(w, cam, cfg, 5)
	feats := ex.Extract(f, 0)
	gt := f.Objects[0]
	for _, ft := range feats {
		if ft.TrueObjectID != 0 {
			continue
		}
		if gt.Visible.At(int(ft.Pixel.X), int(ft.Pixel.Y)) {
			t.Fatalf("background feature inside object mask at %+v", ft.Pixel)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	w, cam, f := testSetup(t)
	a := NewExtractor(w, cam, DefaultConfig(), 7).Extract(f, 1)
	b := NewExtractor(w, cam, DefaultConfig(), 7).Extract(f, 1)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic feature")
		}
	}
}

func TestMatchFeaturesAcrossFrames(t *testing.T) {
	w, cam, _ := testSetup(t)
	t0 := scene.LookAtPose(geom.V3(0, 1.6, 0), geom.V3(0, 1, 8))
	t1 := scene.LookAtPose(geom.V3(0.4, 1.6, 0.3), geom.V3(0, 1, 8))
	f0 := w.Render(cam, t0, 0, 0)
	f1 := w.Render(cam, t1, 1.0/30, 1)
	ex := NewExtractor(w, cam, DefaultConfig(), 8)
	a := ex.Extract(f0, 1)
	b := ex.Extract(f1, 1)
	matches := MatchFeatures(a, b)
	if len(matches) < 30 {
		t.Fatalf("only %d matches", len(matches))
	}
	correct := 0
	for _, m := range matches {
		if a[m.A].PointIndex == b[m.B].PointIndex {
			correct++
		}
	}
	// Descriptor identity matching should be nearly perfect (corruption
	// only removes matches).
	if float64(correct)/float64(len(matches)) < 0.99 {
		t.Errorf("correct ratio = %d/%d", correct, len(matches))
	}
}

func TestMatchWithOutliers(t *testing.T) {
	w, cam, f := testSetup(t)
	ex := NewExtractor(w, cam, DefaultConfig(), 9)
	a := ex.Extract(f, 0)
	b := ex.Extract(f, 0)
	rng := rand.New(rand.NewSource(1))
	clean := MatchFeatures(a, b)
	noisy := MatchWithOutliers(a, b, 0.3, rng)
	if len(noisy) != len(clean) {
		t.Fatal("outlier injection changed match count")
	}
	wrong := 0
	for _, m := range noisy {
		if a[m.A].PointIndex != b[m.B].PointIndex {
			wrong++
		}
	}
	frac := float64(wrong) / float64(len(noisy))
	if frac < 0.1 || frac > 0.5 {
		t.Errorf("outlier fraction = %v, want around 0.3", frac)
	}
	// Zero rate is a no-op.
	if got := MatchWithOutliers(a, b, 0, rng); len(got) != len(clean) {
		t.Error("zero-rate should match clean")
	}
}

func TestDescriptorNoiseReducesMatches(t *testing.T) {
	w, cam, f := testSetup(t)
	cfg := DefaultConfig()
	cfg.DescriptorNoise = 0
	cleanA := NewExtractor(w, cam, cfg, 10).Extract(f, 0)
	cleanB := NewExtractor(w, cam, cfg, 11).Extract(f, 0)
	cfg.DescriptorNoise = 0.4
	noisyA := NewExtractor(w, cam, cfg, 10).Extract(f, 0)
	noisyB := NewExtractor(w, cam, cfg, 11).Extract(f, 0)
	if len(MatchFeatures(noisyA, noisyB)) >= len(MatchFeatures(cleanA, cleanB)) {
		t.Error("descriptor noise should reduce matches")
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	w, cam, f := testSetup(t)
	cfg := DefaultConfig()
	cfg.MaxFeatures = 20
	feats := NewExtractor(w, cam, cfg, 12).Extract(f, 0)
	if len(feats) > 20 {
		t.Errorf("cap violated: %d", len(feats))
	}
}

func TestPixelNoiseMagnitude(t *testing.T) {
	w, cam, f := testSetup(t)
	cfg := DefaultConfig()
	cfg.PixelSigma = 2.0
	noisy := NewExtractor(w, cam, cfg, 13).Extract(f, 0)
	cfg.PixelSigma = 0
	clean := NewExtractor(w, cam, cfg, 13).Extract(f, 0)
	// Same seed, same visibility decisions; compare pixel deviation by
	// matching on PointIndex.
	byIdx := make(map[int]geom.Vec2, len(clean))
	for _, ft := range clean {
		byIdx[ft.PointIndex] = ft.Pixel
	}
	var sum float64
	var n int
	for _, ft := range noisy {
		if p, ok := byIdx[ft.PointIndex]; ok {
			sum += ft.Pixel.DistTo(p)
			n++
		}
	}
	if n == 0 {
		t.Skip("no common features between runs")
	}
	mean := sum / float64(n)
	if mean < 0.5 || mean > 6 {
		t.Errorf("mean deviation = %v px under sigma 2", mean)
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.3) != 0.3 {
		t.Error("clamp01 broken")
	}
	if math.IsNaN(clamp01(0.5)) {
		t.Error("NaN")
	}
}
