package vo

import (
	"math"
	"testing"

	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/scene"
)

// voHarness drives a VO system over a rendered sequence, providing ground
// truth masks whenever the system asks (playing the role of the edge).
type voHarness struct {
	t      *testing.T
	world  *scene.World
	cam    geom.Camera
	ex     *feature.Extractor
	sys    *System
	frames []*scene.Frame
	speed  float64
}

func newHarness(t *testing.T, w *scene.World, traj scene.Trajectory, n int, speed float64) *voHarness {
	t.Helper()
	cam := geom.StandardCamera(320, 240)
	cfg := feature.DefaultConfig()
	cfg.DescriptorNoise = 0 // keep integration tests deterministic-ish
	return &voHarness{
		t:      t,
		world:  w,
		cam:    cam,
		ex:     feature.NewExtractor(w, cam, cfg, 99),
		sys:    NewSystem(Config{Camera: cam, Seed: 5}),
		frames: w.RenderSequence(cam, traj, n),
		speed:  speed,
	}
}

func toKeypoints(feats []feature.Feature) []Keypoint {
	out := make([]Keypoint, len(feats))
	for i, f := range feats {
		out[i] = Keypoint{Pixel: f.Pixel, Descriptor: f.Descriptor, Sharpness: f.Sharpness}
	}
	return out
}

func gtMasks(f *scene.Frame) []LabeledMask {
	out := make([]LabeledMask, 0, len(f.Objects))
	for _, gt := range f.Objects {
		out = append(out, LabeledMask{Label: int(gt.Class), Mask: gt.Visible})
	}
	return out
}

// run feeds all frames, answering init requests with ground-truth masks.
// It returns the per-frame statuses.
func (h *voHarness) run() []Status {
	statuses := make([]Status, 0, len(h.frames))
	for _, f := range h.frames {
		st := h.sys.ProcessFrame(f.Index, toKeypoints(h.ex.Extract(f, h.speed)))
		if st == StatusInitPairReady {
			refIdx, curIdx, ok := h.sys.PendingInitPair()
			if !ok {
				h.t.Fatal("init pair not available")
			}
			// A degenerate pair is retried on later frames, matching how
			// the real system keeps trying consecutive frames.
			_ = h.sys.CompleteInitialization(gtMasks(h.frames[refIdx]), gtMasks(h.frames[curIdx]))
			st = h.sys.State()
		}
		statuses = append(statuses, st)
	}
	return statuses
}

func staticWorld() *scene.World {
	return scene.NewWorld(scene.WorldConfig{Seed: 11}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(-1.5, 1, 9), Half: geom.V3(1.6, 1, 1)},
		{Class: scene.Person, Center: geom.V3(2, 0.9, 7), Half: geom.V3(0.3, 0.9, 0.3)},
	})
}

func sideTraj() scene.Trajectory {
	return scene.WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(-2, 1.6, -2), geom.V3(3, 1.6, -1)},
		Target:    geom.V3(0, 1, 9),
		Speed:     scene.WalkSpeed,
	}
}

func TestSystemInitializesAndTracks(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 60, scene.WalkSpeed)
	statuses := h.run()

	tracking := 0
	for _, st := range statuses {
		if st == StatusTracking {
			tracking++
		}
	}
	if tracking < 40 {
		t.Fatalf("tracked %d/60 frames", tracking)
	}
	if h.sys.State() != StatusTracking {
		t.Fatalf("final state = %v", h.sys.State())
	}
	if h.sys.Map().Len() < 100 {
		t.Errorf("map has %d points", h.sys.Map().Len())
	}
	if !isFinitePose(h.sys.CurrentPose()) {
		t.Error("non-finite pose")
	}
}

func TestSystemCreatesInstances(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 40, scene.WalkSpeed)
	h.run()
	insts := h.sys.Instances()
	if len(insts) < 1 {
		t.Fatalf("no instances created")
	}
	labels := map[int]bool{}
	for _, inst := range insts {
		labels[inst.Label] = true
		if pts := h.sys.Map().InstancePoints(inst.ID); len(pts) < minObservationsForPose {
			t.Errorf("instance %d has %d points", inst.ID, len(pts))
		}
	}
	if !labels[int(scene.Car)] {
		t.Error("car instance missing")
	}
}

func TestSystemStaticObjectsNotMoving(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 50, scene.WalkSpeed)
	h.run()
	for _, inst := range h.sys.Instances() {
		if inst.LastPoseValid && inst.Moving {
			t.Errorf("static instance %d flagged as moving (TWO trans=%v)",
				inst.ID, inst.TWO.T.Norm())
		}
	}
}

func TestSystemDetectsMovingObject(t *testing.T) {
	w := scene.NewWorld(scene.WorldConfig{Seed: 12}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(-1.5, 1, 9), Half: geom.V3(1.6, 1, 1),
			Motion: scene.Motion{Velocity: geom.V3(0.9, 0, 0), StartAt: 1.0}},
		{Class: scene.Person, Center: geom.V3(3, 0.9, 7), Half: geom.V3(0.3, 0.9, 0.3)},
	})
	h := newHarness(t, w, sideTraj(), 90, scene.WalkSpeed)
	h.run()
	var carInst *InstanceTrack
	for _, inst := range h.sys.Instances() {
		if inst.Label == int(scene.Car) {
			carInst = inst
		}
	}
	if carInst == nil {
		t.Fatal("car instance missing")
	}
	if !carInst.Moving {
		t.Errorf("moving car not detected (TWO trans=%v rot=%v)",
			carInst.TWO.T.Norm(), geom.LogRotation(carInst.TWO.R).Norm())
	}
}

func TestSystemTrajectoryShape(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 60, scene.WalkSpeed)
	h.run()

	// Compare estimated relative motion (VO frame) against ground truth up
	// to the monocular scale.
	var est, gt []geom.Pose
	for _, f := range h.frames {
		rec := h.sys.FrameRecordAt(f.Index)
		if rec == nil {
			continue
		}
		est = append(est, rec.TCW)
		gt = append(gt, f.TCW)
	}
	if len(est) < 30 {
		t.Fatalf("only %d tracked frames retained", len(est))
	}
	// Rotation between first and last should agree (rotation has no scale
	// ambiguity, but the VO world frame differs from the scene world frame
	// by a fixed similarity; relative rotations cancel it).
	relEst := est[len(est)-1].Compose(est[0].Inverse())
	relGT := gt[len(gt)-1].Compose(gt[0].Inverse())
	if ang := math.Abs(geom.LogRotation(relEst.R).Norm() - geom.LogRotation(relGT.R).Norm()); ang > 0.08 {
		t.Errorf("relative rotation magnitude error = %v rad", ang)
	}
	// Translation distances should correlate after scale alignment.
	s := AlignScale(est, gt)
	if s <= 0 {
		t.Fatalf("scale = %v", s)
	}
	dEst := est[0].TranslationDistance(est[len(est)-1]) * s
	dGT := gt[0].TranslationDistance(gt[len(gt)-1])
	if dGT > 0.5 && math.Abs(dEst-dGT)/dGT > 0.25 {
		t.Errorf("scaled displacement %v vs ground truth %v", dEst, dGT)
	}
}

func TestSystemUnlabeledFractionDropsAfterAnnotation(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 30, scene.WalkSpeed)
	h.run()
	before := h.sys.UnlabeledFraction()

	// Annotate the latest frame with ground truth and process one more.
	last := h.frames[len(h.frames)-1]
	if err := h.sys.AnnotateFrame(last.Index, gtMasks(last)); err != nil {
		t.Fatal(err)
	}
	extra := h.world.Render(h.cam, sideTraj().PoseAt(float64(30)/scene.FrameRate), 1.0, 30)
	h.sys.ProcessFrame(30, toKeypoints(h.ex.Extract(extra, h.speed)))
	after := h.sys.UnlabeledFraction()
	if after > before+0.01 {
		t.Errorf("unlabeled fraction rose after annotation: %v -> %v", before, after)
	}
	if h.sys.Map().UnknownCount() < 0 {
		t.Error("impossible")
	}
}

func TestSystemAnnotateUnknownFrame(t *testing.T) {
	sys := NewSystem(Config{Camera: geom.StandardCamera(320, 240)})
	if err := sys.AnnotateFrame(42, nil); err == nil {
		t.Error("expected error annotating unknown frame")
	}
}

func TestSystemReset(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 30, scene.WalkSpeed)
	h.run()
	if h.sys.Map().Len() == 0 {
		t.Fatal("expected populated map")
	}
	h.sys.Reset()
	if h.sys.State() != StatusCollecting {
		t.Error("state after reset")
	}
	if h.sys.Map().Len() != 0 {
		t.Error("map not cleared")
	}
	if len(h.sys.Instances()) != 0 {
		t.Error("instances not cleared")
	}
}

func TestSystemLostOnGarbage(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 20, scene.WalkSpeed)
	h.run()
	if h.sys.State() != StatusTracking {
		t.Skip("did not reach tracking")
	}
	// Feed keypoints with unknown descriptors: no matches, so the system
	// first tries to relocalize against the retained map...
	garbage := make([]Keypoint, 50)
	for i := range garbage {
		garbage[i] = Keypoint{
			Pixel:      geom.V2(float64(i*5), float64(i*3)),
			Descriptor: uint64(1e12) + uint64(i),
			Sharpness:  1,
		}
	}
	if st := h.sys.ProcessFrame(20, garbage); st != StatusRelocalizing {
		t.Errorf("status = %v, want relocalizing", st)
	}
	// ...and declares the session lost once the relocalization window
	// expires without a single successful match.
	last := StatusRelocalizing
	for i := 21; i < 50 && last == StatusRelocalizing; i++ {
		last = h.sys.ProcessFrame(i, garbage)
	}
	if last != StatusLost {
		t.Errorf("status = %v, want lost after the relocalize window", last)
	}
}

func TestSystemRelocalizesAfterBlankout(t *testing.T) {
	// Tracking loss from a transient blackout (e.g. occluded camera) must
	// recover WITHOUT discarding the map: feed garbage for a few frames,
	// then real features again.
	h := newHarness(t, staticWorld(), sideTraj(), 30, scene.WalkSpeed)
	h.run()
	if h.sys.State() != StatusTracking {
		t.Skip("did not reach tracking")
	}
	mapBefore := h.sys.Map().Len()

	garbage := []Keypoint{{Pixel: geom.V2(1, 1), Descriptor: 1 << 60, Sharpness: 1}}
	for i := 30; i < 34; i++ {
		h.sys.ProcessFrame(i, garbage)
	}
	if h.sys.State() != StatusRelocalizing {
		t.Fatalf("state = %v, want relocalizing", h.sys.State())
	}
	// Real frames return: the system should resume tracking on the old map.
	for i := 34; i < 40; i++ {
		f := h.world.Render(h.cam, sideTraj().PoseAt(float64(i)/scene.FrameRate), float64(i)/scene.FrameRate, i)
		h.sys.ProcessFrame(i, toKeypoints(h.ex.Extract(f, scene.WalkSpeed)))
	}
	if h.sys.State() != StatusTracking {
		t.Fatalf("state = %v, want tracking after relocalization", h.sys.State())
	}
	if h.sys.Map().Len() < mapBefore/2 {
		t.Errorf("map shrank from %d to %d: relocalization should retain it",
			mapBefore, h.sys.Map().Len())
	}
}

func TestSystemFramesObserving(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 40, scene.WalkSpeed)
	h.run()
	insts := h.sys.Instances()
	if len(insts) == 0 {
		t.Fatal("no instances")
	}
	frames := h.sys.FramesObserving(insts[0].ID)
	if len(frames) < 2 {
		t.Fatalf("instance observed in %d frames", len(frames))
	}
	// Most recent first.
	for i := 1; i < len(frames); i++ {
		if frames[i] > frames[i-1] {
			t.Fatal("not sorted most recent first")
		}
	}
}

func TestMapCleanup(t *testing.T) {
	m := NewMap()
	for i := 0; i < 100; i++ {
		p := m.Add(geom.V3(float64(i), 0, 5), uint64(i), LabelBackground, 0, i)
		p.LastSeen = i
	}
	removed := m.Cleanup(CleanupPolicy{MaxAge: 20}, 100)
	if removed == 0 || m.Len() != 100-removed {
		t.Errorf("removed=%d len=%d", removed, m.Len())
	}
	m2 := NewMap()
	for i := 0; i < 50; i++ {
		m2.Add(geom.V3(0, 0, 1), uint64(i), LabelBackground, 0, i)
	}
	m2.Cleanup(CleanupPolicy{MaxPoints: 10}, 50)
	if m2.Len() != 10 {
		t.Errorf("len after cap = %d", m2.Len())
	}
	// The retained points are the most recently seen.
	for _, p := range m2.BackgroundPoints() {
		if p.LastSeen < 40 {
			t.Error("kept an old point over a recent one")
		}
	}
}

func TestMapIndexes(t *testing.T) {
	m := NewMap()
	p := m.Add(geom.V3(1, 2, 3), 42, LabelUnknown, 0, 1)
	if m.ByDescriptor(42) != p || m.ByID(p.ID) != p {
		t.Error("index lookup failed")
	}
	if m.UnknownCount() != 1 {
		t.Error("unknown count")
	}
	p.InstanceID = 7
	if got := m.InstancePoints(7); len(got) != 1 {
		t.Error("instance points")
	}
	if got := m.Instances(); len(got) != 1 || got[0] != 7 {
		t.Errorf("instances = %v", got)
	}
	m.Remove(p.ID)
	if m.Len() != 0 || m.ByDescriptor(42) != nil {
		t.Error("remove failed")
	}
}

func TestStatusString(t *testing.T) {
	for _, st := range []Status{StatusCollecting, StatusInitPairReady, StatusTracking, StatusLost} {
		if st.String() == "" {
			t.Error("empty status string")
		}
	}
	if Status(99).String() == "" {
		t.Error("unknown status should stringify")
	}
}

func TestConfigRelocalizeWindow(t *testing.T) {
	// A tiny relocalization window falls through to lost quickly.
	h := newHarness(t, staticWorld(), sideTraj(), 25, scene.WalkSpeed)
	h.sys = NewSystem(Config{Camera: h.cam, Seed: 5, RelocalizeFrames: 2})
	h.run()
	if h.sys.State() != StatusTracking {
		t.Skip("did not reach tracking")
	}
	garbage := []Keypoint{{Pixel: geom.V2(1, 1), Descriptor: 1 << 59, Sharpness: 1}}
	last := h.sys.ProcessFrame(25, garbage)
	for i := 26; i < 32 && last != StatusLost; i++ {
		last = h.sys.ProcessFrame(i, garbage)
	}
	if last != StatusLost {
		t.Errorf("state = %v, want lost within the short window", last)
	}
}

func TestConfigCleanupBoundsMap(t *testing.T) {
	h := newHarness(t, staticWorld(), sideTraj(), 60, scene.WalkSpeed)
	h.sys = NewSystem(Config{
		Camera:  h.cam,
		Seed:    5,
		Cleanup: CleanupPolicy{MaxPoints: 120, MaxAge: 1000},
	})
	h.run()
	if got := h.sys.Map().Len(); got > 120 {
		t.Errorf("map grew to %d despite a 120-point cap", got)
	}
}
