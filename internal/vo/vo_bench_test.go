package vo

import (
	"math/rand"
	"testing"

	"edgeis/internal/geom"
)

func BenchmarkOptimizePose(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cam := geom.StandardCamera(640, 480)
	truth := gtPose()
	obs := synthObservations(rng, 60, truth, cam, 0.3)
	init := geom.Pose{R: truth.R, T: truth.T.Add(geom.V3(0.1, 0, 0.1))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizePose(cam, obs, init, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateFundamental(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	_, _, corr, _ := synthTwoView(rng, 80, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := EstimateFundamental(corr, 2, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangulatePoint(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cam, rel, corr, _ := synthTwoView(rng, 10, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := corr[i%len(corr)]
		if _, err := TriangulatePoint(cam, geom.IdentityPose(), rel, c.P0, c.P1); err != nil {
			b.Fatal(err)
		}
	}
}
