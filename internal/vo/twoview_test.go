package vo

import (
	"math"
	"math/rand"
	"testing"

	"edgeis/internal/geom"
)

// synthTwoView builds ground-truth correspondences between two cameras
// observing random points.
func synthTwoView(rng *rand.Rand, n int, noise float64) (cam geom.Camera, rel geom.Pose, corr []Correspondence, pts []geom.Vec3) {
	cam = geom.StandardCamera(640, 480)
	// Camera 0 at origin; camera 1 translated and slightly rotated.
	rel = geom.Pose{
		R: geom.RotY(0.08).Mul(geom.RotX(-0.03)),
		T: geom.V3(0.4, 0.05, 0.1),
	}
	for len(corr) < n {
		p := geom.V3(rng.NormFloat64()*3, rng.NormFloat64()*2, 6+rng.Float64()*8)
		px0, err0 := cam.Project(p)
		px1, err1 := cam.Project(rel.Apply(p))
		if err0 != nil || err1 != nil {
			continue
		}
		if !cam.InBounds(px0, 0) || !cam.InBounds(px1, 0) {
			continue
		}
		px0.X += rng.NormFloat64() * noise
		px0.Y += rng.NormFloat64() * noise
		px1.X += rng.NormFloat64() * noise
		px1.Y += rng.NormFloat64() * noise
		corr = append(corr, Correspondence{P0: px0, P1: px1})
		pts = append(pts, p)
	}
	return cam, rel, corr, pts
}

func TestEightPointPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, _, corr, _ := synthTwoView(rng, 40, 0)
	f, err := eightPoint(corr)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range corr {
		if e := epipolarError(f, c); e > 0.1 {
			t.Fatalf("correspondence %d: epipolar error %v", i, e)
		}
	}
}

func TestEightPointTooFew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, _, corr, _ := synthTwoView(rng, 7, 0)
	if _, err := eightPoint(corr); err == nil {
		t.Error("expected ErrNotEnoughMatches")
	}
}

func TestEstimateFundamentalWithOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, _, corr, _ := synthTwoView(rng, 80, 0.3)
	// Corrupt 20% of the correspondences.
	nOut := len(corr) / 5
	for i := 0; i < nOut; i++ {
		corr[i].P1 = geom.V2(rng.Float64()*640, rng.Float64()*480)
	}
	f, inliers, err := EstimateFundamental(corr, 2, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Most clean correspondences should be inliers.
	cleanIn := 0
	for i := nOut; i < len(corr); i++ {
		if inliers[i] {
			cleanIn++
		}
	}
	if frac := float64(cleanIn) / float64(len(corr)-nOut); frac < 0.8 {
		t.Errorf("clean inlier fraction = %v", frac)
	}
	// Epipolar error on clean pairs is small.
	sum := 0.0
	for i := nOut; i < len(corr); i++ {
		sum += epipolarError(f, corr[i])
	}
	if mean := sum / float64(len(corr)-nOut); mean > 2.5 {
		t.Errorf("mean epipolar error = %v", mean)
	}
}

func TestRecoverPoseDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cam, rel, corr, _ := synthTwoView(rng, 60, 0.2)
	f, _, err := EstimateFundamental(corr, 2, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecoverPose(f, cam, corr)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation should match closely.
	if ang := got.RotationAngle(rel); ang > 0.02 {
		t.Errorf("rotation error = %v rad", ang)
	}
	// Translation direction (unit norm) should match.
	want := rel.T.Normalized()
	gotT := got.T.Normalized()
	if want.Sub(gotT).Norm() > 0.05 {
		t.Errorf("translation direction %+v, want %+v", gotT, want)
	}
	if math.Abs(got.T.Norm()-1) > 1e-6 {
		t.Errorf("translation not unit norm: %v", got.T.Norm())
	}
}

func TestTriangulatePointKnownPoses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cam, rel, corr, pts := synthTwoView(rng, 30, 0)
	for i, c := range corr {
		got, err := TriangulatePoint(cam, geom.IdentityPose(), rel, c.P0, c.P1)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if got.DistTo(pts[i]) > 0.01*pts[i].Norm() {
			t.Fatalf("point %d: got %+v, want %+v", i, got, pts[i])
		}
	}
}

func TestTriangulatePointBehindCamera(t *testing.T) {
	cam := geom.StandardCamera(640, 480)
	rel := geom.Pose{R: geom.Identity3(), T: geom.V3(0.5, 0, 0)}
	// Parallel rays (same pixel in both): degenerate.
	if _, err := TriangulatePoint(cam, geom.IdentityPose(), geom.IdentityPose(),
		geom.V2(320, 240), geom.V2(320, 240)); err == nil {
		t.Error("expected degenerate for identical poses")
	}
	_ = rel
}

func TestMeanParallax(t *testing.T) {
	corr := []Correspondence{
		{P0: geom.V2(0, 0), P1: geom.V2(3, 4)},
		{P0: geom.V2(10, 10), P1: geom.V2(10, 10)},
	}
	if got := MeanParallax(corr); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("parallax = %v, want 2.5", got)
	}
	if MeanParallax(nil) != 0 {
		t.Error("empty parallax should be 0")
	}
}

func TestEstimateFundamentalNotEnough(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, _, err := EstimateFundamental(make([]Correspondence, 5), 2, 10, rng); err == nil {
		t.Error("expected error with 5 correspondences")
	}
}
