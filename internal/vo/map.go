package vo

import (
	"sort"

	"edgeis/internal/geom"
)

// Point labels. Class labels are positive integers assigned by the caller
// (the mobile module uses scene class IDs); the map itself only
// distinguishes unknown / background / instance.
const (
	// LabelUnknown marks freshly triangulated points that no edge
	// annotation has covered yet. The fraction of features matching
	// unknown points drives the CFRS offload trigger (Section V).
	LabelUnknown = -1
	// LabelBackground marks static scenery.
	LabelBackground = 0
)

// ObsRecord is one observation of a map point.
type ObsRecord struct {
	FrameIndex int
	Pixel      geom.Vec2
	// Depth is the camera-frame depth of the point at observation time,
	// stored so the mask-transfer module can look up contour depths
	// without re-deriving poses.
	Depth float64
}

// MapPoint is a labeled 3-D landmark. Background points hold positions in
// the world frame; instance points hold positions in their object's frame
// (which coincides with the world frame at initialization), so that the
// per-object bundle adjustment of Section III-B works unchanged for moving
// objects.
type MapPoint struct {
	ID         int
	Pos        geom.Vec3
	Label      int // LabelUnknown, LabelBackground, or a class ID
	InstanceID int // 0 for background/unknown, otherwise a VO instance
	Descriptor uint64
	// NearContour marks points that projected close to a mask boundary
	// when annotated; the transfer module prefers them for depth lookup.
	NearContour bool

	// AnchorPixel/AnchorPose record the first observation so the point can
	// be re-triangulated once a wider baseline is available (the rewritten
	// triangulation function of Section VI-A "exceedingly improves
	// efficiency" by refining points in place rather than re-running
	// element-level mapping).
	AnchorPixel  geom.Vec2
	AnchorPose   geom.Pose
	RefinedCount int

	Observations []ObsRecord
	LastSeen     int // most recent frame index
}

// observedIn reports whether the point has an observation in the frame.
func (p *MapPoint) observedIn(frameIdx int) (ObsRecord, bool) {
	for i := len(p.Observations) - 1; i >= 0; i-- {
		if p.Observations[i].FrameIndex == frameIdx {
			return p.Observations[i], true
		}
	}
	return ObsRecord{}, false
}

// Map is the sparse labeled 3-D map the VO maintains.
type Map struct {
	points map[int]*MapPoint
	byDesc map[uint64]*MapPoint
	nextID int
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{
		points: make(map[int]*MapPoint),
		byDesc: make(map[uint64]*MapPoint),
		nextID: 1,
	}
}

// Len returns the number of points.
func (m *Map) Len() int { return len(m.points) }

// Add inserts a new point and returns it. Descriptor collisions replace the
// index entry (newest wins) but keep both points.
func (m *Map) Add(pos geom.Vec3, descriptor uint64, label, instanceID, frameIdx int) *MapPoint {
	p := &MapPoint{
		ID:         m.nextID,
		Pos:        pos,
		Label:      label,
		InstanceID: instanceID,
		Descriptor: descriptor,
		LastSeen:   frameIdx,
	}
	m.nextID++
	m.points[p.ID] = p
	m.byDesc[descriptor] = p
	return p
}

// ByDescriptor returns the point indexed under the descriptor, or nil.
func (m *Map) ByDescriptor(d uint64) *MapPoint { return m.byDesc[d] }

// ByID returns the point with the given ID, or nil.
func (m *Map) ByID(id int) *MapPoint { return m.points[id] }

// Remove deletes a point.
func (m *Map) Remove(id int) {
	p, ok := m.points[id]
	if !ok {
		return
	}
	delete(m.points, id)
	if m.byDesc[p.Descriptor] == p {
		delete(m.byDesc, p.Descriptor)
	}
}

// InstancePoints returns all points of a VO instance, sorted by ID. The
// order is load-bearing: callers feed these points into distance sorts and
// averaging, so a map-iteration order would leak nondeterminism into poses
// and transferred masks.
func (m *Map) InstancePoints(instanceID int) []*MapPoint {
	var out []*MapPoint
	for _, p := range m.points {
		if p.InstanceID == instanceID {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BackgroundPoints returns all background-labeled points, sorted by ID so
// callers see a seed-stable order rather than map-iteration order.
func (m *Map) BackgroundPoints() []*MapPoint {
	out := make([]*MapPoint, 0, len(m.points))
	for _, p := range m.points {
		if p.Label == LabelBackground {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// UnknownCount returns the number of unlabeled points.
func (m *Map) UnknownCount() int {
	n := 0
	for _, p := range m.points {
		if p.Label == LabelUnknown {
			n++
		}
	}
	return n
}

// Instances returns the distinct instance IDs present, sorted.
func (m *Map) Instances() []int {
	seen := make(map[int]bool)
	for _, p := range m.points {
		if p.InstanceID > 0 {
			seen[p.InstanceID] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// CleanupPolicy bounds map growth — the "additional clearing algorithm"
// keeping memory within budget in Section VI-F.
type CleanupPolicy struct {
	// MaxAge culls points not seen for this many frames (0 disables).
	MaxAge int
	// MaxPoints caps the total point count; the least recently seen
	// points are culled first (0 disables).
	MaxPoints int
}

// Cleanup applies the policy given the current frame index and returns the
// number of points removed.
func (m *Map) Cleanup(policy CleanupPolicy, currentFrame int) int {
	removed := 0
	if policy.MaxAge > 0 {
		//edgeis:ordered culls exactly the aged keys; Remove touches only the visited entry, so the culled set is order-independent
		for id, p := range m.points {
			if currentFrame-p.LastSeen > policy.MaxAge {
				m.Remove(id)
				removed++
			}
		}
	}
	if policy.MaxPoints > 0 && len(m.points) > policy.MaxPoints {
		ids := make([]*MapPoint, 0, len(m.points))
		for _, p := range m.points {
			ids = append(ids, p)
		}
		// LastSeen ties are broken by ID: the candidate slice is collected in
		// map-iteration order, so an unstable single-key sort would cull a
		// different subset on every run.
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].LastSeen != ids[j].LastSeen {
				return ids[i].LastSeen < ids[j].LastSeen
			}
			return ids[i].ID < ids[j].ID
		})
		for _, p := range ids[:len(m.points)-policy.MaxPoints] {
			m.Remove(p.ID)
			removed++
		}
	}
	return removed
}
