// Package vo implements the visual odometry at the heart of edgeIS's
// motion-aware mobile mask transfer (Section III): two-view initialization
// via the 8-point algorithm (Eq. 1-3), pose-only bundle adjustment tracking
// (Eq. 4-5), a labeled sparse 3-D map, and per-object pose estimation for
// dynamic scenes (Eq. 6-7). The structure follows the ORB-SLAM-derived
// pipeline the paper modifies.
package vo

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"edgeis/internal/geom"
	"edgeis/internal/linalg"
)

// Errors returned by the two-view estimator.
var (
	// ErrNotEnoughMatches indicates fewer than the 8 pairs Eq. 1 requires.
	ErrNotEnoughMatches = errors.New("vo: not enough matches for two-view geometry")
	// ErrDegenerate indicates the solver could not recover a valid pose
	// (planar degenerate set, zero parallax, or cheirality failure).
	ErrDegenerate = errors.New("vo: degenerate two-view configuration")
)

// Correspondence is a pair of pixel observations of the same 3-D point in
// two frames.
type Correspondence struct {
	P0, P1 geom.Vec2
}

// normalization computes the Hartley conditioning transform for a pixel set:
// centroid to origin, mean distance sqrt(2).
func normalization(pts []geom.Vec2) geom.Mat3 {
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(pts))
	cx /= n
	cy /= n
	var meanDist float64
	for _, p := range pts {
		meanDist += math.Hypot(p.X-cx, p.Y-cy)
	}
	meanDist /= n
	s := math.Sqrt2 / math.Max(meanDist, 1e-9)
	return geom.Mat3{
		s, 0, -s * cx,
		0, s, -s * cy,
		0, 0, 1,
	}
}

// eightPoint solves p1^T F p0 = 0 (Eq. 1) for F with Hartley normalization
// and a rank-2 projection. At least 8 correspondences are required.
func eightPoint(corr []Correspondence) (geom.Mat3, error) {
	if len(corr) < 8 {
		return geom.Mat3{}, ErrNotEnoughMatches
	}
	p0s := make([]geom.Vec2, len(corr))
	p1s := make([]geom.Vec2, len(corr))
	for i, c := range corr {
		p0s[i], p1s[i] = c.P0, c.P1
	}
	t0 := normalization(p0s)
	t1 := normalization(p1s)

	a := linalg.NewDense(len(corr), 9)
	for i, c := range corr {
		q0 := t0.MulVec(geom.V3(c.P0.X, c.P0.Y, 1))
		q1 := t1.MulVec(geom.V3(c.P1.X, c.P1.Y, 1))
		// Row: kron(q1, q0) for q1^T F q0 = 0.
		a.Set(i, 0, q1.X*q0.X)
		a.Set(i, 1, q1.X*q0.Y)
		a.Set(i, 2, q1.X)
		a.Set(i, 3, q1.Y*q0.X)
		a.Set(i, 4, q1.Y*q0.Y)
		a.Set(i, 5, q1.Y)
		a.Set(i, 6, q0.X)
		a.Set(i, 7, q0.Y)
		a.Set(i, 8, 1)
	}
	f := linalg.NullVector(a)
	var fn geom.Mat3
	copy(fn[:], f)

	// Enforce rank 2 by zeroing the smallest singular value.
	u, s, v := linalg.SVD3([9]float64(fn))
	var f2 geom.Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			f2[3*r+c] = u[3*r]*s[0]*v[3*c] + u[3*r+1]*s[1]*v[3*c+1]
		}
	}
	// Denormalize: F = T1^T f2 T0.
	out := t1.Transpose().Mul(f2).Mul(t0)
	return out, nil
}

// epipolarError returns the symmetric epipolar distance of a correspondence
// under F, in pixels.
func epipolarError(f geom.Mat3, c Correspondence) float64 {
	x0 := geom.V3(c.P0.X, c.P0.Y, 1)
	x1 := geom.V3(c.P1.X, c.P1.Y, 1)
	l1 := f.MulVec(x0)             // epipolar line in image 1
	l0 := f.Transpose().MulVec(x1) // epipolar line in image 0
	num := x1.Dot(l1)
	d1 := num * num / math.Max(l1.X*l1.X+l1.Y*l1.Y, 1e-12)
	d0 := num * num / math.Max(l0.X*l0.X+l0.Y*l0.Y, 1e-12)
	return math.Sqrt(d0) + math.Sqrt(d1)
}

// EstimateFundamental runs RANSAC around the 8-point solver: random minimal
// samples, inlier counting by symmetric epipolar distance, and a final refit
// on the best inlier set. It returns the fundamental matrix and the inlier
// mask. The paper seeds Eq. 1 with background features because "the pixels
// of background are more likely to be static"; callers pass those.
func EstimateFundamental(corr []Correspondence, inlierThresh float64, iters int, rng *rand.Rand) (geom.Mat3, []bool, error) {
	if len(corr) < 8 {
		return geom.Mat3{}, nil, ErrNotEnoughMatches
	}
	if inlierThresh <= 0 {
		inlierThresh = 2.0
	}
	if iters <= 0 {
		iters = 64
	}
	bestInliers := make([]bool, len(corr))
	bestCount := -1
	sample := make([]Correspondence, 8)
	cur := make([]bool, len(corr))
	for it := 0; it < iters; it++ {
		// Sample 8 distinct indices.
		perm := rng.Perm(len(corr))[:8]
		for i, idx := range perm {
			sample[i] = corr[idx]
		}
		f, err := eightPoint(sample)
		if err != nil {
			continue
		}
		count := 0
		for i, c := range corr {
			ok := epipolarError(f, c) < inlierThresh
			cur[i] = ok
			if ok {
				count++
			}
		}
		if count > bestCount {
			bestCount = count
			copy(bestInliers, cur)
		}
	}
	if bestCount < 8 {
		return geom.Mat3{}, nil, ErrDegenerate
	}
	// Refit on inliers.
	inl := make([]Correspondence, 0, bestCount)
	for i, ok := range bestInliers {
		if ok {
			inl = append(inl, corr[i])
		}
	}
	f, err := eightPoint(inl)
	if err != nil {
		return geom.Mat3{}, nil, err
	}
	return f, bestInliers, nil
}

// RecoverPose decomposes the fundamental matrix into the relative pose
// T_10 = [R_10 | t_10] between the two cameras (Eq. 2), resolving the
// four-fold ambiguity with a cheirality vote over the correspondences.
// The translation has unit norm (monocular scale is arbitrary).
func RecoverPose(f geom.Mat3, cam geom.Camera, corr []Correspondence) (geom.Pose, error) {
	// E = K^T F K.
	k := cam.K()
	e := k.Transpose().Mul(f).Mul(k)
	u, _, v := linalg.SVD3([9]float64(e))

	um := geom.Mat3(u)
	vm := geom.Mat3(v) // columns are right singular vectors
	// Ensure rotations are proper.
	if um.Det() < 0 {
		um = um.Scale(-1)
	}
	if vm.Det() < 0 {
		vm = vm.Scale(-1)
	}
	w := geom.Mat3{
		0, -1, 0,
		1, 0, 0,
		0, 0, 1,
	}
	r1 := um.Mul(w).Mul(vm.Transpose())
	r2 := um.Mul(w.Transpose()).Mul(vm.Transpose())
	r1 = geom.OrthonormalizeRotation(r1)
	r2 = geom.OrthonormalizeRotation(r2)
	tvec := um.Col(2)

	// Vote only with correspondences that carry enough parallax to
	// triangulate stably; near-zero-parallax pairs add noise.
	voters := make([]Correspondence, 0, len(corr))
	for _, c := range corr {
		if c.P0.DistTo(c.P1) >= 2 {
			voters = append(voters, c)
		}
	}
	if len(voters) < 8 {
		voters = corr
	}

	best := geom.Pose{}
	bestGood, secondGood := -1, -1
	for _, r := range []geom.Mat3{r1, r2} {
		for _, sign := range []float64{1, -1} {
			cand := geom.Pose{R: r, T: tvec.Scale(sign)}
			good := 0
			for _, c := range voters {
				p, err := TriangulatePoint(cam, geom.IdentityPose(), cand, c.P0, c.P1)
				if err != nil {
					continue
				}
				// In front of both cameras?
				if p.Z > 0 && cand.Apply(p).Z > 0 {
					good++
				}
			}
			if good > bestGood {
				bestGood, secondGood = good, bestGood
				best = cand
			} else if good > secondGood {
				secondGood = good
			}
		}
	}
	// The true solution should dominate: most points in front, and a clear
	// margin over the runner-up (H&Z cheirality disambiguation).
	if bestGood < 8 || float64(bestGood) < 0.7*float64(len(voters)) ||
		float64(secondGood) > 0.8*float64(bestGood) {
		return geom.Pose{}, ErrDegenerate
	}
	return best, nil
}

// TriangulatePoint linearly triangulates a 3-D point (in the coordinate
// frame of pose0's source) from two observations with known poses — the
// workhorse behind Eq. 3 and all map expansion.
func TriangulatePoint(cam geom.Camera, pose0, pose1 geom.Pose, p0, p1 geom.Vec2) (geom.Vec3, error) {
	// Rows of P = K [R | t] for both views.
	k := cam.K()
	build := func(pose geom.Pose) [3][4]float64 {
		m := k.Mul(pose.R)
		kt := k.MulVec(pose.T)
		return [3][4]float64{
			{m[0], m[1], m[2], kt.X},
			{m[3], m[4], m[5], kt.Y},
			{m[6], m[7], m[8], kt.Z},
		}
	}
	m0 := build(pose0)
	m1 := build(pose1)

	a := linalg.NewDense(4, 4)
	fill := func(row int, m [3][4]float64, px geom.Vec2) {
		for c := 0; c < 4; c++ {
			a.Set(row, c, px.X*m[2][c]-m[0][c])
			a.Set(row+1, c, px.Y*m[2][c]-m[1][c])
		}
	}
	fill(0, m0, p0)
	fill(2, m1, p1)

	h := linalg.NullVector(a)
	if math.Abs(h[3]) < 1e-12 {
		return geom.Vec3{}, ErrDegenerate
	}
	p := geom.V3(h[0]/h[3], h[1]/h[3], h[2]/h[3])
	if !p.IsFinite() {
		return geom.Vec3{}, ErrDegenerate
	}
	// Reject points behind the first camera.
	if pose0.Apply(p).Z <= 0 {
		return geom.Vec3{}, ErrDegenerate
	}
	return p, nil
}

// TriangulatePointMulti linearly triangulates a point from two or more
// observations with known poses (multi-view DLT). It generalizes
// TriangulatePoint for the local bundle adjustment sweep.
func TriangulatePointMulti(cam geom.Camera, poses []geom.Pose, pixels []geom.Vec2) (geom.Vec3, error) {
	if len(poses) < 2 || len(poses) != len(pixels) {
		return geom.Vec3{}, ErrNotEnoughMatches
	}
	k := cam.K()
	a := linalg.NewDense(2*len(poses), 4)
	for i, pose := range poses {
		m := k.Mul(pose.R)
		kt := k.MulVec(pose.T)
		row := [3][4]float64{
			{m[0], m[1], m[2], kt.X},
			{m[3], m[4], m[5], kt.Y},
			{m[6], m[7], m[8], kt.Z},
		}
		for c := 0; c < 4; c++ {
			a.Set(2*i, c, pixels[i].X*row[2][c]-row[0][c])
			a.Set(2*i+1, c, pixels[i].Y*row[2][c]-row[1][c])
		}
	}
	h := linalg.NullVector(a)
	if math.Abs(h[3]) < 1e-12 {
		return geom.Vec3{}, ErrDegenerate
	}
	p := geom.V3(h[0]/h[3], h[1]/h[3], h[2]/h[3])
	if !p.IsFinite() {
		return geom.Vec3{}, ErrDegenerate
	}
	for _, pose := range poses {
		if pose.Apply(p).Z <= 0 {
			return geom.Vec3{}, ErrDegenerate
		}
	}
	return p, nil
}

// MeanParallax returns the mean pixel displacement of the correspondences —
// the "enough parallax" test of the initializer (Section III-A).
func MeanParallax(corr []Correspondence) float64 {
	if len(corr) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range corr {
		sum += c.P0.DistTo(c.P1)
	}
	return sum / float64(len(corr))
}

// MedianParallax returns the median pixel displacement — more robust than
// the mean when distant background points dilute the statistic.
func MedianParallax(corr []Correspondence) float64 {
	if len(corr) == 0 {
		return 0
	}
	ds := make([]float64, len(corr))
	for i, c := range corr {
		ds[i] = c.P0.DistTo(c.P1)
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}
