package vo

import (
	"math/rand"
	"testing"

	"edgeis/internal/geom"
)

// synthObservations projects random points through a ground-truth pose.
func synthObservations(rng *rand.Rand, n int, tcw geom.Pose, cam geom.Camera, noise float64) []Observation {
	obs := make([]Observation, 0, n)
	for len(obs) < n {
		p := geom.V3(rng.NormFloat64()*4, rng.NormFloat64()*2, rng.NormFloat64()*4)
		px, err := cam.ProjectWorld(tcw, p)
		if err != nil || !cam.InBounds(px, 0) {
			continue
		}
		px.X += rng.NormFloat64() * noise
		px.Y += rng.NormFloat64() * noise
		obs = append(obs, Observation{Point: p, Pixel: px})
	}
	return obs
}

func gtPose() geom.Pose {
	// Camera behind the origin looking forward.
	return geom.Pose{R: geom.RotY(0.1), T: geom.V3(0.3, -0.1, 8)}
}

func TestOptimizePoseConvergesFromPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cam := geom.StandardCamera(640, 480)
	truth := gtPose()
	obs := synthObservations(rng, 50, truth, cam, 0.3)

	init := geom.Pose{
		R: geom.RotY(0.05).Mul(truth.R),
		T: truth.T.Add(geom.V3(0.2, 0.1, -0.15)),
	}
	res, err := OptimizePose(cam, obs, init, 15)
	if err != nil {
		t.Fatal(err)
	}
	trans, rot := PoseError(res.Pose, truth)
	if trans > 0.05 {
		t.Errorf("translation error = %v", trans)
	}
	if rot > 0.01 {
		t.Errorf("rotation error = %v", rot)
	}
	if res.RMSE > 1.5 {
		t.Errorf("RMSE = %v", res.RMSE)
	}
	if res.Inliers < 45 {
		t.Errorf("inliers = %d", res.Inliers)
	}
}

func TestOptimizePoseRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cam := geom.StandardCamera(640, 480)
	truth := gtPose()
	obs := synthObservations(rng, 60, truth, cam, 0.2)
	// Corrupt 15% of the pixels badly.
	for i := 0; i < 9; i++ {
		obs[i].Pixel = geom.V2(rng.Float64()*640, rng.Float64()*480)
	}
	init := geom.Pose{R: truth.R, T: truth.T.Add(geom.V3(0.1, 0, 0.1))}
	res, err := OptimizePose(cam, obs, init, 15)
	if err != nil {
		t.Fatal(err)
	}
	trans, rot := PoseError(res.Pose, truth)
	if trans > 0.08 || rot > 0.02 {
		t.Errorf("pose error trans=%v rot=%v under outliers", trans, rot)
	}
}

func TestOptimizePoseTooFewObservations(t *testing.T) {
	cam := geom.StandardCamera(640, 480)
	if _, err := OptimizePose(cam, make([]Observation, 2), geom.IdentityPose(), 5); err == nil {
		t.Error("expected error with 2 observations")
	}
}

func TestOptimizePoseExactInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cam := geom.StandardCamera(640, 480)
	truth := gtPose()
	obs := synthObservations(rng, 30, truth, cam, 0)
	res, err := OptimizePose(cam, obs, truth, 5)
	if err != nil {
		t.Fatal(err)
	}
	trans, rot := PoseError(res.Pose, truth)
	if trans > 1e-6 || rot > 1e-6 {
		t.Errorf("exact init drifted: trans=%v rot=%v", trans, rot)
	}
	if res.RMSE > 1e-6 {
		t.Errorf("RMSE = %v on noiseless data", res.RMSE)
	}
}

func TestOptimizePoseMinimalSet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cam := geom.StandardCamera(640, 480)
	truth := gtPose()
	obs := synthObservations(rng, minObservationsForPose, truth, cam, 0)
	init := geom.Pose{R: truth.R, T: truth.T.Add(geom.V3(0.05, 0, 0))}
	if _, err := OptimizePose(cam, obs, init, 10); err != nil {
		t.Errorf("minimal set failed: %v", err)
	}
}

func TestHuberLossAndWeight(t *testing.T) {
	d2 := huberDelta * huberDelta
	if huberLoss(d2/4) != d2/4 {
		t.Error("quadratic region broken")
	}
	if huberWeight(d2/4) != 1 {
		t.Error("weight in quadratic region should be 1")
	}
	if w := huberWeight(d2 * 100); w >= 0.2 {
		t.Errorf("large residual weight = %v", w)
	}
	// Loss is continuous at the transition.
	lo := huberLoss(d2 * 0.999999)
	hi := huberLoss(d2 * 1.000001)
	if hi-lo > 1e-3 {
		t.Error("loss discontinuous at Huber boundary")
	}
}
