package vo

import (
	"math"

	"edgeis/internal/geom"
	"edgeis/internal/linalg"
)

// Observation binds a 3-D point (in some reference frame) to its measured
// pixel in the current image.
type Observation struct {
	Point geom.Vec3
	Pixel geom.Vec2
}

// OptimizeResult reports the outcome of a pose optimization.
type OptimizeResult struct {
	Pose    geom.Pose
	Inliers int
	// RMSE is the root-mean-square reprojection error over inliers, px.
	RMSE float64
}

// minObservationsForPose is the minimum observation count for a pose solve —
// the paper notes "performing BA requires at least 3 pairs of 3-D points and
// matched features" (Section III-B).
const minObservationsForPose = 3

// huberDelta is the robust-loss width in pixels for pose optimization.
const huberDelta = 3.0

// OptimizePose minimizes the total reprojection error of Eq. 4 with
// Gauss-Newton over SE(3), using a Huber weighting for robustness and
// Levenberg damping for stability. init is the starting world-to-camera
// (or object-to-camera) pose.
func OptimizePose(cam geom.Camera, obs []Observation, init geom.Pose, iterations int) (OptimizeResult, error) {
	if len(obs) < minObservationsForPose {
		return OptimizeResult{}, ErrNotEnoughMatches
	}
	if iterations <= 0 {
		iterations = 10
	}
	pose := init
	lambda := 1e-4

	cost := func(p geom.Pose) float64 {
		sum := 0.0
		for _, o := range obs {
			px, err := cam.ProjectWorld(p, o.Point)
			if err != nil {
				sum += huberDelta * huberDelta * 4
				continue
			}
			r2 := px.Sub(o.Pixel).Dot(px.Sub(o.Pixel))
			sum += huberLoss(r2)
		}
		return sum
	}

	prevCost := cost(pose)
	for it := 0; it < iterations; it++ {
		h := linalg.NewDense(6, 6)
		b := make([]float64, 6)
		for _, o := range obs {
			pc := pose.Apply(o.Point)
			if pc.Z <= 1e-6 {
				continue
			}
			px, err := cam.Project(pc)
			if err != nil {
				continue
			}
			rx := px.X - o.Pixel.X
			ry := px.Y - o.Pixel.Y
			w := huberWeight(rx*rx + ry*ry)

			// Jacobian of pixel wrt left-multiplied se(3) increment:
			// d(u,v)/d(pc) * [I | -pc^].
			invZ := 1 / pc.Z
			invZ2 := invZ * invZ
			du := [3]float64{cam.Fx * invZ, 0, -cam.Fx * pc.X * invZ2}
			dv := [3]float64{0, cam.Fy * invZ, -cam.Fy * pc.Y * invZ2}
			var ju, jv [6]float64
			// Translation block: identity.
			copy(ju[:3], du[:])
			copy(jv[:3], dv[:])
			// Rotation block: -(d/dpc) * skew(pc).
			sk := geom.Skew(pc)
			for c := 0; c < 3; c++ {
				var su, sv float64
				for k := 0; k < 3; k++ {
					su += du[k] * sk.At(k, c)
					sv += dv[k] * sk.At(k, c)
				}
				ju[3+c] = -su
				jv[3+c] = -sv
			}
			for i := 0; i < 6; i++ {
				for j := i; j < 6; j++ {
					h.Add(i, j, w*(ju[i]*ju[j]+jv[i]*jv[j]))
				}
				b[i] -= w * (ju[i]*rx + jv[i]*ry)
			}
		}
		// Mirror upper to lower triangle.
		for i := 0; i < 6; i++ {
			for j := 0; j < i; j++ {
				h.Set(i, j, h.At(j, i))
			}
		}
		delta, err := linalg.SolveCholesky(h, b, lambda)
		if err != nil {
			lambda *= 10
			if lambda > 1e3 {
				break
			}
			continue
		}
		cand := pose.Exp(
			geom.V3(delta[0], delta[1], delta[2]),
			geom.V3(delta[3], delta[4], delta[5]),
		)
		c := cost(cand)
		if c < prevCost {
			pose = cand
			prevCost = c
			lambda = math.Max(lambda*0.5, 1e-6)
			// Converged when the update is negligible.
			if normSq(delta) < 1e-16 {
				break
			}
		} else {
			lambda *= 10
			if lambda > 1e3 {
				break
			}
		}
	}

	// Final inlier accounting.
	inliers := 0
	sumSq := 0.0
	for _, o := range obs {
		px, err := cam.ProjectWorld(pose, o.Point)
		if err != nil {
			continue
		}
		d2 := px.Sub(o.Pixel).Dot(px.Sub(o.Pixel))
		if d2 < huberDelta*huberDelta*4 {
			inliers++
			sumSq += d2
		}
	}
	if inliers < minObservationsForPose {
		return OptimizeResult{}, ErrDegenerate
	}
	return OptimizeResult{
		Pose:    pose,
		Inliers: inliers,
		RMSE:    math.Sqrt(sumSq / float64(inliers)),
	}, nil
}

// huberLoss returns the Huber cost for a squared residual.
func huberLoss(r2 float64) float64 {
	if r2 <= huberDelta*huberDelta {
		return r2
	}
	r := math.Sqrt(r2)
	return 2*huberDelta*r - huberDelta*huberDelta
}

// huberWeight returns the IRLS weight for a squared residual.
func huberWeight(r2 float64) float64 {
	if r2 <= huberDelta*huberDelta {
		return 1
	}
	return huberDelta / math.Sqrt(r2)
}

func normSq(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}
