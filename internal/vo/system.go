package vo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"edgeis/internal/geom"
	"edgeis/internal/mask"
)

// Keypoint is the VO's view of a detected feature: pixel, identity and a
// blur score. The mobile module converts extractor output into Keypoints,
// keeping this package independent of the synthetic scene substrate.
type Keypoint struct {
	Pixel      geom.Vec2
	Descriptor uint64
	Sharpness  float64
}

// LabeledMask is an instance mask with a class label, as returned by the
// edge server's segmentation model.
type LabeledMask struct {
	Label int // class ID, > 0
	Mask  *mask.Bitmask
}

// Status reports what the system needs next.
type Status int

// System statuses.
const (
	// StatusCollecting: initialization is gathering frames.
	StatusCollecting Status = iota + 1
	// StatusInitPairReady: two frames with enough parallax are staged;
	// obtain masks for both and call CompleteInitialization.
	StatusInitPairReady
	// StatusTracking: pose tracking succeeded for this frame.
	StatusTracking
	// StatusRelocalizing: tracking failed; the system is trying to
	// re-match the existing map before giving up on it.
	StatusRelocalizing
	// StatusLost: relocalization failed; call Reset to reinitialize.
	StatusLost
)

// String renders the status for logs.
func (s Status) String() string {
	switch s {
	case StatusCollecting:
		return "collecting"
	case StatusInitPairReady:
		return "init-pair-ready"
	case StatusTracking:
		return "tracking"
	case StatusRelocalizing:
		return "relocalizing"
	case StatusLost:
		return "lost"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Config tunes the VO system.
type Config struct {
	Camera geom.Camera
	Seed   int64
	// MinInitParallax is the median pixel displacement required between
	// the two initialization frames (default 8).
	MinInitParallax float64
	// MinInitMatches is the minimum descriptor matches between the
	// initialization pair (default 40).
	MinInitMatches int
	// RansacIters and RansacThreshold tune fundamental estimation
	// (defaults 64 and 2 px).
	RansacIters     int
	RansacThreshold float64
	// MinSharpness is the blurriness-check threshold of the feature
	// selection (default 0.2).
	MinSharpness float64
	// MinBGSpacing is the minimum pixel distance between selected
	// background features (default 3).
	MinBGSpacing float64
	// ContourBand is the distance (px) from a mask boundary within which
	// features count as contour features and skip the blurriness check
	// (default 3).
	ContourBand int
	// MovingWindow is the frame span over which static-hypothesis
	// violations must persist before an instance is flagged as moving
	// ("pose changes significantly over a period", Section V; default 20).
	MovingWindow int
	// RefineParallax is the pixel displacement from a point's anchor
	// observation beyond which it is re-triangulated (default 25).
	RefineParallax float64
	// Cleanup bounds map growth (default MaxAge 120, MaxPoints 6000).
	Cleanup CleanupPolicy
	// MaxFrameRecords bounds the per-frame history ring (default 150).
	MaxFrameRecords int
	// RelocalizeFrames is how many frames the system attempts to re-match
	// the existing map after a tracking failure before declaring the
	// session lost (default 20).
	RelocalizeFrames int
}

func (c *Config) applyDefaults() {
	if c.MinInitParallax == 0 {
		c.MinInitParallax = 8
	}
	if c.MinInitMatches == 0 {
		c.MinInitMatches = 40
	}
	if c.RansacIters == 0 {
		c.RansacIters = 64
	}
	if c.RansacThreshold == 0 {
		c.RansacThreshold = 2
	}
	if c.MinSharpness == 0 {
		c.MinSharpness = 0.2
	}
	if c.MinBGSpacing == 0 {
		c.MinBGSpacing = 3
	}
	if c.ContourBand == 0 {
		c.ContourBand = 3
	}
	if c.MovingWindow == 0 {
		c.MovingWindow = 20
	}
	if c.RefineParallax == 0 {
		c.RefineParallax = 15
	}
	if c.Cleanup == (CleanupPolicy{}) {
		c.Cleanup = CleanupPolicy{MaxAge: 120, MaxPoints: 6000}
	}
	if c.MaxFrameRecords == 0 {
		c.MaxFrameRecords = 150
	}
	if c.RelocalizeFrames == 0 {
		c.RelocalizeFrames = 20
	}
}

// FrameRecord stores per-frame tracking output, the geometry source for
// mask transfer.
type FrameRecord struct {
	Index     int
	Keypoints []Keypoint
	// PointIDs holds the matched map-point ID per keypoint (0 = none).
	PointIDs []int
	// TCW is the world-to-camera pose of the frame.
	TCW geom.Pose
	// ObjectPoses holds object-to-camera poses (T_CO) per instance.
	ObjectPoses map[int]geom.Pose
	// Annotated marks frames whose edge masks labeled the map.
	Annotated bool
}

// InstanceTrack is the per-object tracking state of Section III-B.
type InstanceTrack struct {
	ID    int
	Label int
	// TCO is the latest object-to-camera pose.
	TCO geom.Pose
	// TWO is the latest object-to-world pose; identity while static.
	TWO geom.Pose
	// Moving reports whether the object's image-space behaviour is
	// inconsistent with the static-world hypothesis (Eq. 6).
	Moving        bool
	LastSeen      int
	LastPoseValid bool
	// MeanDepth is the mean camera-frame depth of the instance's points at
	// the last solve.
	MeanDepth float64
	// StaticRMSE and FitRMSE are the reprojection errors of the instance's
	// observations under the camera pose (static hypothesis) and under the
	// fitted object pose, in pixels.
	StaticRMSE, FitRMSE float64
	// MissedAnnotations counts consecutive edge annotations that saw the
	// instance's area but produced no confirming mask; phantom instances
	// (born from label-confused detections) retire on this counter.
	MissedAnnotations int

	movingVotes int         // hysteresis counter for the Moving flag
	twoHistory  []geom.Vec3 // recent TWO translations (for un-flagging)
}

// System is the complete VO pipeline.
type System struct {
	cfg   Config
	world *Map
	state Status
	rng   *rand.Rand

	ref     *FrameRecord // initialization reference frame
	pending *pendingInit

	frames     map[int]*FrameRecord
	frameOrder []int
	cur        *FrameRecord

	instances    map[int]*InstanceTrack
	nextInstance int

	relocStart int // frame index when relocalization began

	unlabeledFrac float64
	// posSnapshots is a ring of per-frame {point ID -> position} maps used
	// to measure structure drift over the moving-detection window.
	posSnapshots []map[int]geom.Vec3
}

type pendingInit struct {
	ref, cur *FrameRecord
	matches  [][2]int // keypoint index pairs (ref, cur)
}

// NewSystem builds a VO system.
func NewSystem(cfg Config) *System {
	cfg.applyDefaults()
	return &System{
		cfg:          cfg,
		world:        NewMap(),
		state:        StatusCollecting,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		frames:       make(map[int]*FrameRecord),
		instances:    make(map[int]*InstanceTrack),
		nextInstance: 1,
	}
}

// State returns the current status.
func (s *System) State() Status { return s.state }

// Map exposes the labeled point map (read-mostly; used by transfer).
func (s *System) Map() *Map { return s.world }

// CurrentPose returns the latest world-to-camera pose.
func (s *System) CurrentPose() geom.Pose {
	if s.cur == nil {
		return geom.IdentityPose()
	}
	return s.cur.TCW
}

// UnlabeledFraction returns, for the last processed frame, the fraction of
// features that matched no labeled map point — the CFRS trigger input.
func (s *System) UnlabeledFraction() float64 { return s.unlabeledFrac }

// Instances returns the tracked instances sorted by ID.
func (s *System) Instances() []*InstanceTrack {
	out := make([]*InstanceTrack, 0, len(s.instances))
	for _, t := range s.instances {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Instance returns one tracked instance, or nil.
func (s *System) Instance(id int) *InstanceTrack { return s.instances[id] }

// FrameRecordAt returns the record of a processed frame, or nil.
func (s *System) FrameRecordAt(idx int) *FrameRecord { return s.frames[idx] }

// PendingInitPair returns the frame indices staged for initialization while
// the state is StatusInitPairReady.
func (s *System) PendingInitPair() (refIdx, curIdx int, ok bool) {
	if s.pending == nil {
		return 0, 0, false
	}
	return s.pending.ref.Index, s.pending.cur.Index, true
}

// Reset clears all state back to initialization.
func (s *System) Reset() {
	s.world = NewMap()
	s.state = StatusCollecting
	s.ref = nil
	s.pending = nil
	s.frames = make(map[int]*FrameRecord)
	s.frameOrder = nil
	s.cur = nil
	s.instances = make(map[int]*InstanceTrack)
	s.nextInstance = 1
	s.unlabeledFrac = 0
}

// ProcessFrame ingests one frame of keypoints and advances the state
// machine. During initialization it stages frame pairs; afterwards it
// tracks the pose (Eq. 4) and per-object poses (Eq. 6-7).
func (s *System) ProcessFrame(idx int, kps []Keypoint) Status {
	switch s.state {
	case StatusCollecting, StatusInitPairReady:
		return s.processInitFrame(idx, kps)
	case StatusTracking:
		return s.track(idx, kps)
	case StatusRelocalizing:
		return s.relocalize(idx, kps)
	default: // StatusLost
		return s.state
	}
}

// relocalize tries to re-acquire the pose against the retained map: match
// descriptors, solve from scratch seeded by the last known pose. Success
// returns straight to tracking with the whole map intact (ORB-SLAM's
// relocalization, minus the bag-of-words lookup our exact descriptors make
// unnecessary). After RelocalizeFrames of failure the session is lost.
func (s *System) relocalize(idx int, kps []Keypoint) Status {
	if idx-s.relocStart > s.cfg.RelocalizeFrames {
		s.state = StatusLost
		return s.state
	}
	obs := make([]Observation, 0, len(kps))
	for i := range kps {
		mp := s.world.ByDescriptor(kps[i].Descriptor)
		if mp == nil || mp.InstanceID != 0 {
			continue
		}
		obs = append(obs, Observation{Point: mp.Pos, Pixel: kps[i].Pixel})
	}
	if len(obs) < 12 {
		return s.state
	}
	res, err := OptimizePose(s.cfg.Camera, obs, s.CurrentPose(), 15)
	if err != nil || res.RMSE > 4 || res.Inliers < 10 {
		return s.state
	}
	// Re-anchor the current pose and resume tracking on this frame.
	if s.cur != nil {
		s.cur.TCW = res.Pose
	}
	s.state = StatusTracking
	return s.track(idx, kps)
}

func newRecord(idx int, kps []Keypoint) *FrameRecord {
	return &FrameRecord{
		Index:       idx,
		Keypoints:   kps,
		PointIDs:    make([]int, len(kps)),
		ObjectPoses: make(map[int]geom.Pose),
	}
}

// processInitFrame implements the initializer's frame-pair search: keep a
// reference frame and wait for a frame with enough matches and parallax.
// Once a pair is staged it stays staged (the mobile is waiting for edge
// masks for those exact frames); new frames are ignored until
// CompleteInitialization resolves or fails.
func (s *System) processInitFrame(idx int, kps []Keypoint) Status {
	if s.pending != nil {
		return StatusInitPairReady
	}
	rec := newRecord(idx, kps)
	if s.ref == nil || len(s.ref.Keypoints) < s.cfg.MinInitMatches {
		s.ref = rec
		s.state = StatusCollecting
		return s.state
	}
	matches := matchKeypoints(s.ref.Keypoints, kps)
	if len(matches) < s.cfg.MinInitMatches {
		// Scene changed too much; restart from this frame.
		s.ref = rec
		s.pending = nil
		s.state = StatusCollecting
		return s.state
	}
	corr := make([]Correspondence, len(matches))
	for i, m := range matches {
		corr[i] = Correspondence{P0: s.ref.Keypoints[m[0]].Pixel, P1: kps[m[1]].Pixel}
	}
	// "Enough parallax": require a solid set of matches whose displacement
	// supports stable triangulation, rather than a mean/median that distant
	// background dilutes.
	highParallax := 0
	for _, c := range corr {
		if c.P0.DistTo(c.P1) >= s.cfg.MinInitParallax {
			highParallax++
		}
	}
	if highParallax < 30 {
		s.pending = nil
		s.state = StatusCollecting
		return s.state
	}
	s.pending = &pendingInit{ref: s.ref, cur: rec, matches: matches}
	s.state = StatusInitPairReady
	return s.state
}

// validateRelativePose checks that a candidate two-view pose triangulates
// at least 75% of the (parallax-bearing) correspondences in front of both
// cameras.
func validateRelativePose(cam geom.Camera, rel geom.Pose, corr []Correspondence) bool {
	voted, good := 0, 0
	for _, c := range corr {
		if c.P0.DistTo(c.P1) < 2 {
			continue
		}
		voted++
		p, err := TriangulatePoint(cam, geom.IdentityPose(), rel, c.P0, c.P1)
		if err != nil {
			continue
		}
		if p.Z > 0 && rel.Apply(p).Z > 0 {
			good++
		}
	}
	return voted >= 8 && float64(good) >= 0.75*float64(voted)
}

// matchKeypoints pairs keypoints by descriptor identity.
func matchKeypoints(a, b []Keypoint) [][2]int {
	byDesc := make(map[uint64]int, len(a))
	for i := range a {
		byDesc[a[i].Descriptor] = i
	}
	out := make([][2]int, 0, len(b))
	for j := range b {
		if i, ok := byDesc[b[j].Descriptor]; ok {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// maskIndexAt returns the index of the smallest mask containing the pixel,
// or -1. Smallest-first resolves overlaps from boundary noise: a small
// object in front of a large one claims its own pixels even when the large
// mask spills over it.
func maskIndexAt(masks []LabeledMask, px geom.Vec2) int {
	x, y := int(px.X), int(px.Y)
	best, bestArea := -1, 1<<62
	for i, lm := range masks {
		if !lm.Mask.At(x, y) {
			continue
		}
		if a := lm.Mask.Area(); a < bestArea {
			best, bestArea = i, a
		}
	}
	return best
}

// contourBands precomputes, for each mask, the band of pixels within
// ContourBand of the boundary.
func (s *System) contourBands(masks []LabeledMask) []*mask.Bitmask {
	bands := make([]*mask.Bitmask, len(masks))
	for i, lm := range masks {
		inner := lm.Mask.Erode(s.cfg.ContourBand)
		band := lm.Mask.Clone()
		band.Subtract(inner)
		bands[i] = band
	}
	return bands
}

// CompleteInitialization consumes edge-provided masks for the staged frame
// pair and builds the initial labeled map (Section III-A): feature
// selection, background-first fundamental estimation (Eq. 1-2),
// triangulation (Eq. 3) and point annotation.
func (s *System) CompleteInitialization(masksRef, masksCur []LabeledMask) error {
	if s.pending == nil {
		return fmt.Errorf("vo: no staged initialization pair")
	}
	p := s.pending
	bandsRef := s.contourBands(masksRef)
	bandsCur := s.contourBands(masksCur)

	type selMatch struct {
		refIdx, curIdx   int
		maskRef, maskCur int // containing mask index or -1
	}
	var selected []selMatch
	var bgCorr []Correspondence
	var bgPixels []geom.Vec2

	for _, m := range p.matches {
		rk := p.ref.Keypoints[m[0]]
		ck := p.cur.Keypoints[m[1]]
		mi := maskIndexAt(masksRef, rk.Pixel)
		mj := maskIndexAt(masksCur, ck.Pixel)

		if mi == -1 && mj == -1 {
			// Background feature: blurriness check, then spacing check.
			if rk.Sharpness < s.cfg.MinSharpness || ck.Sharpness < s.cfg.MinSharpness {
				continue
			}
			tooClose := false
			for _, q := range bgPixels {
				if q.DistTo(rk.Pixel) < s.cfg.MinBGSpacing {
					tooClose = true
					break
				}
			}
			if tooClose {
				continue
			}
			bgPixels = append(bgPixels, rk.Pixel)
			selected = append(selected, selMatch{m[0], m[1], -1, -1})
			bgCorr = append(bgCorr, Correspondence{P0: rk.Pixel, P1: ck.Pixel})
			continue
		}
		if mi >= 0 && mj >= 0 && masksRef[mi].Label == masksCur[mj].Label {
			// Object feature: contour features always kept, interior ones
			// pass the blurriness check (Section III-A).
			onContour := bandsRef[mi].At(int(rk.Pixel.X), int(rk.Pixel.Y)) ||
				bandsCur[mj].At(int(ck.Pixel.X), int(ck.Pixel.Y))
			if !onContour && (rk.Sharpness < s.cfg.MinSharpness || ck.Sharpness < s.cfg.MinSharpness) {
				continue
			}
			selected = append(selected, selMatch{m[0], m[1], mi, mj})
		}
		// Mixed membership: unstable feature (object boundary flicker or a
		// moving object against background); drop it.
	}

	// Background-first fundamental estimation (Section III-A: "first uses
	// all pairs of p0 and p1 since the pixels of background are more likely
	// to be static"), widening to all selected matches when the
	// background-only solution is weak — background alone can be
	// near-planar (ground + walls) and condition the epipolar geometry
	// poorly.
	allCorr := make([]Correspondence, 0, len(selected))
	for _, sm := range selected {
		allCorr = append(allCorr, Correspondence{
			P0: p.ref.Keypoints[sm.refIdx].Pixel,
			P1: p.cur.Keypoints[sm.curIdx].Pixel,
		})
	}
	attempts := [][]Correspondence{bgCorr, allCorr}
	if len(bgCorr) < 16 {
		attempts = attempts[1:]
	}
	var rel geom.Pose
	var initErr error
	solved := false
	for _, corr := range attempts {
		f, inliers, err := EstimateFundamental(corr, s.cfg.RansacThreshold, s.cfg.RansacIters, s.rng)
		if err != nil {
			initErr = err
			continue
		}
		inl := make([]Correspondence, 0, len(corr))
		for i, ok := range inliers {
			if ok {
				inl = append(inl, corr[i])
			}
		}
		rel, err = RecoverPose(f, s.cfg.Camera, inl)
		if err != nil {
			initErr = err
			continue
		}
		// Validate against ALL selected matches, not just the estimation
		// set: a dominant plane (the ground) yields a family of fundamental
		// matrices that explain planar points perfectly yet put off-plane
		// points behind the cameras. Requiring the full set to triangulate
		// in front rejects those spurious solutions.
		if !validateRelativePose(s.cfg.Camera, rel, allCorr) {
			initErr = ErrDegenerate
			continue
		}
		solved = true
		break
	}
	if !solved {
		s.pending = nil
		s.state = StatusCollecting
		return fmt.Errorf("vo: init two-view geometry: %w", initErr)
	}

	p.ref.TCW = geom.IdentityPose()
	p.cur.TCW = rel

	// Instance bookkeeping: one instance per (refMask, curMask, label)
	// pairing that accumulates at least minObservationsForPose points.
	type instKey struct{ mi, mj int }
	instPoints := make(map[instKey][]int) // staged point IDs

	for _, sm := range selected {
		rk := p.ref.Keypoints[sm.refIdx]
		ck := p.cur.Keypoints[sm.curIdx]
		pos, err := TriangulatePoint(s.cfg.Camera, p.ref.TCW, p.cur.TCW, rk.Pixel, ck.Pixel)
		if err != nil {
			continue
		}
		if d := p.cur.TCW.Apply(pos).Z; d <= 0.05 || d > 1e4 {
			continue
		}
		label := LabelBackground
		if sm.maskRef >= 0 {
			label = masksRef[sm.maskRef].Label
		}
		mp := s.world.Add(pos, rk.Descriptor, label, 0, p.cur.Index)
		mp.AnchorPixel = rk.Pixel
		mp.AnchorPose = p.ref.TCW
		mp.Observations = append(mp.Observations,
			ObsRecord{FrameIndex: p.ref.Index, Pixel: rk.Pixel, Depth: p.ref.TCW.Apply(pos).Z},
			ObsRecord{FrameIndex: p.cur.Index, Pixel: ck.Pixel, Depth: p.cur.TCW.Apply(pos).Z},
		)
		if sm.maskRef >= 0 {
			mp.NearContour = bandsRef[sm.maskRef].At(int(rk.Pixel.X), int(rk.Pixel.Y))
			k := instKey{sm.maskRef, sm.maskCur}
			instPoints[k] = append(instPoints[k], mp.ID)
		}
		p.ref.PointIDs[sm.refIdx] = mp.ID
		p.cur.PointIDs[sm.curIdx] = mp.ID
	}

	// Deterministic (mask-pair) order: instance IDs are assigned inside the
	// loop, so map-iteration order would permute them between runs.
	instKeys := make([]instKey, 0, len(instPoints))
	for k := range instPoints {
		instKeys = append(instKeys, k)
	}
	sort.Slice(instKeys, func(i, j int) bool {
		if instKeys[i].mi != instKeys[j].mi {
			return instKeys[i].mi < instKeys[j].mi
		}
		return instKeys[i].mj < instKeys[j].mj
	})
	for _, k := range instKeys {
		ids := instPoints[k]
		if len(ids) < minObservationsForPose {
			// Too small/far for estimation (Section III-B); leave points
			// labeled but instance-less.
			continue
		}
		inst := &InstanceTrack{
			ID:    s.nextInstance,
			Label: masksRef[k.mi].Label,
			TCO:   p.cur.TCW,
			TWO:   geom.IdentityPose(),
		}
		s.nextInstance++
		s.instances[inst.ID] = inst
		for _, id := range ids {
			s.world.ByID(id).InstanceID = inst.ID
		}
		p.ref.ObjectPoses[inst.ID] = p.ref.TCW
		p.cur.ObjectPoses[inst.ID] = p.cur.TCW
		inst.LastSeen = p.cur.Index
		inst.LastPoseValid = true
	}

	p.ref.Annotated = true
	p.cur.Annotated = true
	s.storeFrame(p.ref)
	s.storeFrame(p.cur)
	s.cur = p.cur
	s.pending = nil
	s.ref = nil
	s.state = StatusTracking
	return nil
}

// track runs per-frame pose and object tracking (Section III-B).
func (s *System) track(idx int, kps []Keypoint) Status {
	rec := newRecord(idx, kps)

	// Match keypoints to map points by descriptor. The device-pose solve
	// uses background points (Section III-B) plus the points of instances
	// not currently flagged as moving — static objects are world structure,
	// and including them both conditions the solve and couples the camera
	// frame to the object structure so the two cannot drift apart.
	matchedLabeled := 0
	matchedUnknown := 0
	var bgObs []Observation
	instObs := make(map[int][]Observation)
	matchedPts := make([]*MapPoint, len(kps))
	for i := range kps {
		mp := s.world.ByDescriptor(kps[i].Descriptor)
		if mp == nil {
			continue
		}
		rec.PointIDs[i] = mp.ID
		matchedPts[i] = mp
		if mp.Label != LabelUnknown {
			matchedLabeled++
		} else {
			matchedUnknown++
		}
		if mp.InstanceID > 0 {
			instObs[mp.InstanceID] = append(instObs[mp.InstanceID],
				Observation{Point: mp.Pos, Pixel: kps[i].Pixel})
		} else {
			bgObs = append(bgObs, Observation{Point: mp.Pos, Pixel: kps[i].Pixel})
		}
	}
	// Section V counts "features matched with unlabeled points": unmatched
	// features are not included (they become unknown points one frame later
	// via map expansion, so the signal lags by a frame but is far less
	// noisy than counting every unmatched detection).
	if len(kps) > 0 {
		s.unlabeledFrac = float64(matchedUnknown) / float64(len(kps))
	} else {
		s.unlabeledFrac = 0
	}
	_ = matchedLabeled

	// Observation order feeds least-squares accumulators, so every loop over
	// instObs walks instance IDs in sorted order — map-iteration order would
	// perturb the solved poses in the last ulps and diverge runs.
	instOrder := make([]int, 0, len(instObs))
	for instID := range instObs {
		instOrder = append(instOrder, instID)
	}
	sort.Ints(instOrder)

	// First camera solve: background + unflagged instances.
	camObs := make([]Observation, 0, len(bgObs)+64)
	camObs = append(camObs, bgObs...)
	for _, instID := range instOrder {
		if inst := s.instances[instID]; inst != nil && !inst.Moving {
			camObs = append(camObs, instObs[instID]...)
		}
	}
	res, err := OptimizePose(s.cfg.Camera, camObs, s.CurrentPose(), 10)
	if err != nil {
		s.state = StatusRelocalizing
		s.relocStart = idx
		return s.state
	}
	rec.TCW = res.Pose

	// Suspect detection: evaluate every instance's current observations
	// against its structure from MovingWindow frames ago. The local BA
	// continuously refits an unflagged instance's structure under the
	// static-world hypothesis, which makes a moving object's *current*
	// structure follow it and look consistent — but its observations can
	// never be reconciled with where its structure used to be. Background
	// evaluated the same way normalizes out global map drift and camera
	// jitter. Suspects are re-solved out of the camera pose and feed the
	// Moving votes.
	suspects := make(map[int]bool)
	if len(s.posSnapshots) > 0 {
		then := s.posSnapshots[0]
		agedObs := func(ids []int, kpix []geom.Vec2) []Observation {
			obs := make([]Observation, 0, len(ids))
			for k, pid := range ids {
				if old, ok := then[pid]; ok {
					obs = append(obs, Observation{Point: old, Pixel: kpix[k]})
				}
			}
			return obs
		}
		var bgIDs, instIDsAll []int
		var bgPix []geom.Vec2
		instKp := make(map[int][]geom.Vec2)
		instIDs := make(map[int][]int)
		for i, mp := range matchedPts {
			if mp == nil {
				continue
			}
			if mp.InstanceID > 0 {
				instKp[mp.InstanceID] = append(instKp[mp.InstanceID], kps[i].Pixel)
				instIDs[mp.InstanceID] = append(instIDs[mp.InstanceID], mp.ID)
			} else if mp.Label == LabelBackground {
				bgIDs = append(bgIDs, mp.ID)
				bgPix = append(bgPix, kps[i].Pixel)
			}
		}
		_ = instIDsAll
		bgAged := agedObs(bgIDs, bgPix)
		// Solve the current camera pose IN THE OLD GAUGE: fit it to the
		// background structure as it was a window ago. In that frame of
		// reference the old structures of camera-consistent (static)
		// instances still project onto today's pixels, while anything that
		// physically moved cannot be reconciled — no amount of structure
		// smearing or camera drag in the current gauge can hide it.
		if agedPose, err := OptimizePose(s.cfg.Camera, bgAged, rec.TCW, 8); err == nil {
			norm := math.Max(medianResidual(s.cfg.Camera, agedPose.Pose, bgAged), 1)
			for _, instID := range instOrder {
				inst := s.instances[instID]
				if inst == nil || inst.Moving {
					continue
				}
				aged := agedObs(instIDs[instID], instKp[instID])
				if len(aged) < minObservationsForPose {
					continue
				}
				med := medianResidual(s.cfg.Camera, agedPose.Pose, aged)
				// The background norm guards against global gauge noise,
				// but its own drift must not let a strongly inconsistent
				// object hide behind a noisy frame: cap its influence.
				if med > 10 && med > 4.5*math.Min(norm, 2.0) {
					suspects[instID] = true
				}
			}
		}
	}
	if len(suspects) > 0 {
		camObs = camObs[:0]
		camObs = append(camObs, bgObs...)
		for _, instID := range instOrder {
			if suspects[instID] {
				continue
			}
			if inst := s.instances[instID]; inst != nil && !inst.Moving {
				camObs = append(camObs, instObs[instID]...)
			}
		}
		if res2, err2 := OptimizePose(s.cfg.Camera, camObs, rec.TCW, 10); err2 == nil {
			rec.TCW = res2.Pose
		}
	}

	// Per-object poses (Eq. 6-7).
	for _, instID := range instOrder {
		obs := instObs[instID]
		inst := s.instances[instID]
		if inst == nil || len(obs) < minObservationsForPose {
			continue
		}
		init := inst.TCO
		if !inst.LastPoseValid {
			init = rec.TCW
		}
		ores, err := OptimizePose(s.cfg.Camera, obs, init, 8)
		if err != nil {
			inst.LastPoseValid = false
			continue
		}
		inst.TCO = ores.Pose
		inst.LastPoseValid = true
		inst.LastSeen = idx
		// T_WO = T_WC * T_CO (Eq. 7): the object's pose in the world.
		inst.TWO = rec.TCW.Inverse().Compose(ores.Pose)
		depth := 0.0
		for _, o := range obs {
			depth += ores.Pose.Apply(o.Point).Z
		}
		inst.MeanDepth = depth / float64(len(obs))
		s.updateMotionState(inst, obs, rec.TCW, suspects[instID])
		rec.ObjectPoses[instID] = ores.Pose
	}

	// Update observation records with per-frame depths. Structure of
	// non-moving instances refines against the camera pose so it stays
	// consistent with the world; moving instances refine against their own
	// fitted pose.
	for i, mp := range matchedPts {
		if mp == nil {
			continue
		}
		pose := rec.TCW
		if mp.InstanceID > 0 {
			if op, ok := rec.ObjectPoses[mp.InstanceID]; ok {
				pose = op
			}
		}
		mp.Observations = append(mp.Observations, ObsRecord{
			FrameIndex: idx,
			Pixel:      kps[i].Pixel,
			Depth:      pose.Apply(mp.Pos).Z,
		})
		mp.LastSeen = idx
	}

	// Triangulate new points from unmatched keypoints against the previous
	// frame ("the map gets updated in the same frequency as input").
	s.expandMap(rec)

	s.world.Cleanup(s.cfg.Cleanup, idx)
	s.storeFrame(rec)
	s.cur = rec
	s.localBundleAdjustment(rec)

	// Snapshot the matched points' positions (after the local BA sweep) for
	// the differential drift statistic of the motion detector.
	snap := make(map[int]geom.Vec3, len(matchedPts))
	for _, mp := range matchedPts {
		if mp != nil {
			snap[mp.ID] = mp.Pos
		}
	}
	s.posSnapshots = append(s.posSnapshots, snap)
	if len(s.posSnapshots) > s.cfg.MovingWindow+1 {
		s.posSnapshots = s.posSnapshots[1:]
	}

	s.state = StatusTracking
	return s.state
}

// localBundleAdjustment keeps structure and poses mutually consistent with
// a resection-intersection sweep over a sliding window of recent frames: a
// lightweight stand-in for ORB-SLAM's local BA thread, which the paper's VO
// inherits. Points observed at least twice in the window are re-triangulated
// from all their window observations (intersection), then the non-anchor
// window poses are re-solved against the updated structure (resection).
// Points of moving instances are handled in their object frame using the
// per-frame object poses.
func (s *System) localBundleAdjustment(cur *FrameRecord) {
	const (
		window = 10
		sweeps = 2
	)
	if len(s.frameOrder) < 3 {
		return
	}
	start := len(s.frameOrder) - window
	if start < 0 {
		start = 0
	}
	recs := make([]*FrameRecord, 0, window)
	for _, idx := range s.frameOrder[start:] {
		if r := s.frames[idx]; r != nil {
			recs = append(recs, r)
		}
	}
	if len(recs) < 3 {
		return
	}

	type obsSet struct {
		poses  []geom.Pose
		pixels []geom.Vec2
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		// Intersection: multi-view re-triangulation.
		pointObs := make(map[int]*obsSet)
		for _, rec := range recs {
			for i, pid := range rec.PointIDs {
				if pid == 0 {
					continue
				}
				mp := s.world.ByID(pid)
				if mp == nil {
					continue
				}
				// Structure of instances flagged as moving is frozen in
				// the object frame: re-triangulating it under camera poses
				// would smear it to fit the static hypothesis (masking the
				// motion), and re-triangulating under the free-floating
				// object poses has an unconstrained gauge that drifts.
				// Their per-frame T_CO keeps fitting the frozen structure.
				pose := rec.TCW
				if mp.InstanceID > 0 {
					if inst := s.instances[mp.InstanceID]; inst != nil && inst.Moving {
						continue
					}
				}
				os := pointObs[pid]
				if os == nil {
					os = &obsSet{}
					pointObs[pid] = os
				}
				os.poses = append(os.poses, pose)
				os.pixels = append(os.pixels, rec.Keypoints[i].Pixel)
			}
		}
		//edgeis:ordered each pid refines its own point from its own observations; no cross-entry state
		for pid, os := range pointObs {
			if len(os.poses) < 2 {
				continue
			}
			// Require enough parallax across the window for a stable fix.
			maxPar := 0.0
			for i := 1; i < len(os.pixels); i++ {
				if d := os.pixels[i].DistTo(os.pixels[0]); d > maxPar {
					maxPar = d
				}
			}
			if maxPar < 2 {
				continue
			}
			pos, err := TriangulatePointMulti(s.cfg.Camera, os.poses, os.pixels)
			if err != nil {
				continue
			}
			mp := s.world.ByID(pid)
			d := os.poses[len(os.poses)-1].Apply(pos).Z
			if d <= 0.05 || d > 1e4 {
				continue
			}
			// Reject step changes in depth: physical structure does not
			// teleport. Without this, an object translating parallel to
			// the camera pushes its triangulation toward infinity (rays
			// turn parallel), which would hide the motion from the
			// detector behind a receding-but-consistent structure.
			oldD := os.poses[len(os.poses)-1].Apply(mp.Pos).Z
			if mp.RefinedCount > 0 && oldD > 0 && (d > 1.5*oldD || d < oldD/1.5) {
				continue
			}
			mp.Pos = pos
			mp.RefinedCount++
		}

		// Resection: re-solve all but the two oldest window poses.
		for k := 2; k < len(recs); k++ {
			rec := recs[k]
			obs := make([]Observation, 0, len(rec.PointIDs))
			for i, pid := range rec.PointIDs {
				if pid == 0 {
					continue
				}
				mp := s.world.ByID(pid)
				if mp == nil || mp.InstanceID > 0 {
					continue
				}
				obs = append(obs, Observation{Point: mp.Pos, Pixel: rec.Keypoints[i].Pixel})
			}
			if res, err := OptimizePose(s.cfg.Camera, obs, rec.TCW, 5); err == nil {
				rec.TCW = res.Pose
			}
		}
	}
	_ = cur
}

// updateMotionState decides whether an instance is moving by comparing the
// reprojection error of its observations under the static-world hypothesis
// (project with the camera pose) against the fitted per-object pose. A truly
// static object fits both about equally; a moving one is only explained by
// its own pose. The test is image-space and therefore immune to the
// monocular scale ambiguity. A vote counter adds hysteresis so a single
// noisy frame cannot flip the flag ("pose changes significantly over a
// period", Section V).
func (s *System) updateMotionState(inst *InstanceTrack, obs []Observation, tcw geom.Pose, suspect bool) {
	rmse := func(pose geom.Pose) float64 {
		sum, n := 0.0, 0
		for _, o := range obs {
			px, err := s.cfg.Camera.ProjectWorld(pose, o.Point)
			if err != nil {
				continue
			}
			d := px.Sub(o.Pixel)
			sum += d.Dot(d)
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return math.Sqrt(sum / float64(n))
	}
	inst.StaticRMSE = rmse(tcw)
	inst.FitRMSE = rmse(inst.TCO)
	if inst.Moving {
		// A flagged instance keeps its own pose track; its frozen structure
		// cannot support the drift statistics below. It may still un-flag:
		// if its object-to-world pose stabilizes over a full window (the
		// object stopped, or the flag was a false positive), return it to
		// the static world and let the local BA re-sync its structure.
		inst.twoHistory = append(inst.twoHistory, inst.TWO.T)
		if len(inst.twoHistory) > s.cfg.MovingWindow+1 {
			inst.twoHistory = inst.twoHistory[1:]
		}
		if len(inst.twoHistory) > s.cfg.MovingWindow && inst.MeanDepth > 0 {
			drift := inst.twoHistory[len(inst.twoHistory)-1].Sub(inst.twoHistory[0]).Norm()
			driftPx := s.cfg.Camera.Fx * drift / inst.MeanDepth
			// Un-flag only when the pose is stable AND the frozen
			// structure still explains the observations under the camera
			// pose: a truly moving object's frozen structure diverges
			// (high StaticRMSE) even in windows where its world pose
			// happens to change little.
			if driftPx < 4 && inst.StaticRMSE < 6 {
				inst.Moving = false
				inst.movingVotes = 0
				inst.twoHistory = inst.twoHistory[:0]
			}
		}
		return
	}
	inst.twoHistory = inst.twoHistory[:0]

	inconsistent := suspect
	if inconsistent {
		inst.movingVotes++
	} else {
		// Decay faster than accumulation so short noise excursions cannot
		// ratchet up to the flag threshold.
		inst.movingVotes -= 2
		if inst.movingVotes < 0 {
			inst.movingVotes = 0
		}
	}
	half := s.cfg.MovingWindow / 2
	if half < 1 {
		half = 1
	}
	if inst.movingVotes >= half {
		inst.Moving = true
	}
}

// expandMap triangulates unmatched keypoints against the previous frame's
// unmatched keypoints. New points start unlabeled.
func (s *System) expandMap(rec *FrameRecord) {
	prev := s.cur
	if prev == nil {
		return
	}
	prevUnmatched := make(map[uint64]int)
	for i := range prev.Keypoints {
		if prev.PointIDs[i] == 0 {
			prevUnmatched[prev.Keypoints[i].Descriptor] = i
		}
	}
	for i := range rec.Keypoints {
		if rec.PointIDs[i] != 0 {
			continue
		}
		j, ok := prevUnmatched[rec.Keypoints[i].Descriptor]
		if !ok {
			continue
		}
		p0 := prev.Keypoints[j].Pixel
		p1 := rec.Keypoints[i].Pixel
		if p0.DistTo(p1) < 1.0 {
			continue // not enough parallax for a stable depth
		}
		pos, err := TriangulatePoint(s.cfg.Camera, prev.TCW, rec.TCW, p0, p1)
		if err != nil {
			continue
		}
		d := rec.TCW.Apply(pos).Z
		if d <= 0.05 || d > 1e4 {
			continue
		}
		mp := s.world.Add(pos, rec.Keypoints[i].Descriptor, LabelUnknown, 0, rec.Index)
		mp.AnchorPixel = p0
		mp.AnchorPose = prev.TCW
		mp.Observations = append(mp.Observations,
			ObsRecord{FrameIndex: prev.Index, Pixel: p0, Depth: prev.TCW.Apply(pos).Z},
			ObsRecord{FrameIndex: rec.Index, Pixel: p1, Depth: d},
		)
		rec.PointIDs[i] = mp.ID
	}
}

// AnnotateFrame applies edge-provided masks to a tracked frame, labeling
// map points and creating instances for newly covered objects. This is the
// "mask-assisted mapping" of Fig. 5.
func (s *System) AnnotateFrame(idx int, masks []LabeledMask) error {
	rec := s.frames[idx]
	if rec == nil {
		return fmt.Errorf("vo: no frame record for index %d", idx)
	}
	bands := s.contourBands(masks)

	// Group the frame's points by containing mask.
	type pointInMask struct {
		mp      *MapPoint
		contour bool
	}
	byMask := make(map[int][]pointInMask)
	for i, pid := range rec.PointIDs {
		if pid == 0 {
			continue
		}
		mp := s.world.ByID(pid)
		if mp == nil {
			continue
		}
		px := rec.Keypoints[i].Pixel
		mi := maskIndexAt(masks, px)
		if mi == -1 {
			if mp.Label == LabelUnknown {
				mp.Label = LabelBackground
			}
			continue
		}
		byMask[mi] = append(byMask[mi], pointInMask{
			mp:      mp,
			contour: bands[mi].At(int(px.X), int(px.Y)),
		})
	}

	// Deterministic mask order: fresh instance IDs are assigned inside the
	// loop, so map-iteration order would permute them between runs.
	maskOrder := make([]int, 0, len(byMask))
	for mi := range byMask {
		maskOrder = append(maskOrder, mi)
	}
	sort.Ints(maskOrder)
	for _, mi := range maskOrder {
		pts := byMask[mi]
		label := masks[mi].Label
		// Majority vote over existing SAME-LABEL instance assignments. A
		// point previously swallowed by a different-label instance (mask
		// boundary noise around occlusions) must not drag this mask onto
		// that instance.
		votes := make(map[int]int)
		for _, pm := range pts {
			if pm.mp.InstanceID > 0 {
				if inst := s.instances[pm.mp.InstanceID]; inst != nil && inst.Label == label {
					votes[pm.mp.InstanceID]++
				}
			}
		}
		instID := 0
		bestVotes := 0
		//edgeis:ordered argmax with an explicit smaller-ID tie-break; the winner is order-independent
		for id, v := range votes {
			// Vote ties break toward the smaller (older) instance ID so the
			// winner does not depend on map-iteration order.
			if v > bestVotes || (v == bestVotes && v > 0 && id < instID) {
				instID, bestVotes = id, v
			}
		}
		if instID == 0 {
			if len(pts) < minObservationsForPose {
				// Too few points to track; label without an instance.
				for _, pm := range pts {
					pm.mp.Label = label
					pm.mp.NearContour = pm.mp.NearContour || pm.contour
				}
				continue
			}
			inst := &InstanceTrack{
				ID:    s.nextInstance,
				Label: label,
				TCO:   rec.TCW,
				TWO:   geom.IdentityPose(),
			}
			s.nextInstance++
			inst.LastSeen = idx
			s.instances[inst.ID] = inst
			instID = inst.ID
		}
		for _, pm := range pts {
			pm.mp.Label = label
			pm.mp.InstanceID = instID
			pm.mp.NearContour = pm.mp.NearContour || pm.contour
		}
	}
	rec.Annotated = true
	s.retireUnconfirmed(rec, masks)
	return nil
}

// maxMissedAnnotations retires an instance after this many consecutive
// unconfirmed annotations.
const maxMissedAnnotations = 3

// retireUnconfirmed checks every instance observed in the annotated frame
// against the edge masks: a same-label mask covering at least
// minObservationsForPose of its points confirms it; repeated failures mean
// the instance was born from a spurious detection (label confusion or a
// false positive) and it is dissolved — its points return to the unknown
// pool for relabeling.
func (s *System) retireUnconfirmed(rec *FrameRecord, masks []LabeledMask) {
	// Count confirming points per instance.
	confirmed := make(map[int]int)
	observed := make(map[int]int)
	for i, pid := range rec.PointIDs {
		if pid == 0 {
			continue
		}
		mp := s.world.ByID(pid)
		if mp == nil || mp.InstanceID == 0 {
			continue
		}
		observed[mp.InstanceID]++
		inst := s.instances[mp.InstanceID]
		if inst == nil {
			continue
		}
		px := rec.Keypoints[i].Pixel
		for _, lm := range masks {
			if lm.Label == inst.Label && lm.Mask.At(int(px.X), int(px.Y)) {
				confirmed[mp.InstanceID]++
				break
			}
		}
	}
	//edgeis:ordered per-instance bookkeeping against read-only tallies; each entry deletes at most its own key
	for instID, inst := range s.instances {
		if observed[instID] < minObservationsForPose {
			continue // not visible in this frame; no evidence either way
		}
		if confirmed[instID] >= minObservationsForPose {
			inst.MissedAnnotations = 0
			continue
		}
		inst.MissedAnnotations++
		if inst.MissedAnnotations < maxMissedAnnotations {
			continue
		}
		for _, mp := range s.world.InstancePoints(instID) {
			mp.InstanceID = 0
			mp.Label = LabelUnknown
		}
		delete(s.instances, instID)
	}
}

// storeFrame appends a frame record, evicting the oldest unannotated record
// beyond the ring capacity.
func (s *System) storeFrame(rec *FrameRecord) {
	s.frames[rec.Index] = rec
	s.frameOrder = append(s.frameOrder, rec.Index)
	for len(s.frameOrder) > s.cfg.MaxFrameRecords {
		evicted := false
		for i, idx := range s.frameOrder {
			if !s.frames[idx].Annotated || len(s.frameOrder)-i > 2*s.cfg.MaxFrameRecords {
				delete(s.frames, idx)
				s.frameOrder = append(s.frameOrder[:i], s.frameOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			// Everything is annotated; evict the oldest anyway.
			delete(s.frames, s.frameOrder[0])
			s.frameOrder = s.frameOrder[1:]
		}
	}
}

// FramesObserving returns the indices of retained frames that observed the
// given instance, most recent first.
func (s *System) FramesObserving(instanceID int) []int {
	seen := make(map[int]bool)
	for _, mp := range s.world.InstancePoints(instanceID) {
		for _, obs := range mp.Observations {
			seen[obs.FrameIndex] = true
		}
	}
	out := make([]int, 0, len(seen))
	for idx := range seen {
		if s.frames[idx] != nil {
			out = append(out, idx)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// PoseError returns the translation and rotation difference between two
// poses — a convenience for evaluation code.
func PoseError(a, b geom.Pose) (trans, rot float64) {
	return a.TranslationDistance(b), a.RotationAngle(b)
}

// AlignScale returns the scale factor that best maps trajectory a onto b
// (least squares over camera-center distances from their respective
// centroids) — evaluation helper for monocular scale ambiguity.
func AlignScale(a, b []geom.Pose) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 1
	}
	var ca, cb geom.Vec3
	for i := range a {
		ca = ca.Add(a[i].CameraCenter())
		cb = cb.Add(b[i].CameraCenter())
	}
	ca = ca.Scale(1 / float64(len(a)))
	cb = cb.Scale(1 / float64(len(b)))
	var num, den float64
	for i := range a {
		da := a[i].CameraCenter().Sub(ca).Norm()
		db := b[i].CameraCenter().Sub(cb).Norm()
		num += da * db
		den += da * da
	}
	if den < 1e-12 {
		return 1
	}
	return num / den
}

// medianResidual returns the median reprojection distance (px) of the
// observations under the pose.
func medianResidual(cam geom.Camera, pose geom.Pose, obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	ds := make([]float64, 0, len(obs))
	for _, o := range obs {
		px, err := cam.ProjectWorld(pose, o.Point)
		if err != nil {
			ds = append(ds, math.Inf(1))
			continue
		}
		ds = append(ds, px.DistTo(o.Pixel))
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}

// Sanity checks that exported math stays finite; used in tests.
func isFinitePose(p geom.Pose) bool {
	for _, v := range p.R {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return p.T.IsFinite()
}
