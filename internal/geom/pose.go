package geom

// Pose is a rigid-body transform T = [R | t] in SE(3). Applied to a point it
// computes R*p + t. Poses compose left-to-right in the usual convention:
// (A.Compose(B)).Apply(p) == A.Apply(B.Apply(p)).
//
// Throughout edgeIS, T_CW denotes the transform from world coordinates to
// camera coordinates; its inverse T_WC places the camera in the world.
type Pose struct {
	R Mat3
	T Vec3
}

// IdentityPose returns the identity transform.
func IdentityPose() Pose { return Pose{R: Identity3()} }

// Apply transforms p: R*p + t.
func (p Pose) Apply(v Vec3) Vec3 { return p.R.MulVec(v).Add(p.T) }

// Compose returns the transform p * q, i.e. q applied first.
func (p Pose) Compose(q Pose) Pose {
	return Pose{
		R: p.R.Mul(q.R),
		T: p.R.MulVec(q.T).Add(p.T),
	}
}

// Inverse returns the inverse transform [R^T | -R^T t].
func (p Pose) Inverse() Pose {
	rt := p.R.Transpose()
	return Pose{R: rt, T: rt.MulVec(p.T).Scale(-1)}
}

// RelativeTo returns the transform mapping q's frame into p's frame:
// p * q^-1. If p = T_AW and q = T_BW then the result is T_AB.
func (p Pose) RelativeTo(q Pose) Pose { return p.Compose(q.Inverse()) }

// CameraCenter returns the position of the camera in the source frame of the
// pose, i.e. -R^T t for a world-to-camera transform.
func (p Pose) CameraCenter() Vec3 {
	return p.R.Transpose().MulVec(p.T).Scale(-1)
}

// TranslationDistance returns the Euclidean distance between the camera
// centers of p and q — a convenient pose-drift metric.
func (p Pose) TranslationDistance(q Pose) float64 {
	return p.CameraCenter().DistTo(q.CameraCenter())
}

// RotationAngle returns the absolute rotation angle (radians) between the
// orientations of p and q. It is used by the source-keyframe selection of the
// mask transfer module ("the angle between the frames is not too large").
func (p Pose) RotationAngle(q Pose) float64 {
	rel := p.R.Mul(q.R.Transpose())
	return LogRotation(rel).Norm()
}

// Exp applies a left-multiplied SE(3) increment parameterized by a 6-vector
// (rho, phi) — translation and rotation — to the pose. It is the update rule
// used by the Gauss-Newton pose optimizer.
func (p Pose) Exp(rho, phi Vec3) Pose {
	dr := Rodrigues(phi)
	return Pose{
		R: OrthonormalizeRotation(dr.Mul(p.R)),
		T: dr.MulVec(p.T).Add(rho),
	}
}

// ViewRay returns the unit vector from the camera center through the world
// point w, expressed in world coordinates, for a world-to-camera pose.
func (p Pose) ViewRay(w Vec3) Vec3 {
	return w.Sub(p.CameraCenter()).Normalized()
}
