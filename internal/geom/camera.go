package geom

import (
	"errors"
	"fmt"
	"math"
)

// ErrBehindCamera is returned when projecting a point with non-positive depth.
var ErrBehindCamera = errors.New("geom: point behind camera")

// Camera is a pinhole camera model with intrinsic matrix
//
//	K = | fx  0 cx |
//	    |  0 fy cy |
//	    |  0  0  1 |
//
// and an image size in pixels. It implements the projection function pi(.)
// of Eq. 5 in the paper.
type Camera struct {
	Fx, Fy float64 // focal lengths in pixels
	Cx, Cy float64 // principal point in pixels
	Width  int     // image width in pixels
	Height int     // image height in pixels
}

// StandardCamera returns a camera with a ~60 degree horizontal field of view
// for the given resolution — the configuration used by the synthetic datasets.
func StandardCamera(width, height int) Camera {
	f := float64(width) * 0.87 // fx = w/(2*tan(hfov/2)), hfov ~ 60 deg
	return Camera{
		Fx: f, Fy: f,
		Cx: float64(width) / 2, Cy: float64(height) / 2,
		Width: width, Height: height,
	}
}

// K returns the intrinsic matrix.
func (c Camera) K() Mat3 {
	return Mat3{
		c.Fx, 0, c.Cx,
		0, c.Fy, c.Cy,
		0, 0, 1,
	}
}

// KInv returns the inverse intrinsic matrix.
func (c Camera) KInv() Mat3 {
	return Mat3{
		1 / c.Fx, 0, -c.Cx / c.Fx,
		0, 1 / c.Fy, -c.Cy / c.Fy,
		0, 0, 1,
	}
}

// Validate reports whether the camera parameters are usable.
func (c Camera) Validate() error {
	if c.Fx <= 0 || c.Fy <= 0 {
		return fmt.Errorf("geom: invalid focal length (%g, %g)", c.Fx, c.Fy)
	}
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("geom: invalid image size %dx%d", c.Width, c.Height)
	}
	return nil
}

// Project maps a point in camera coordinates to pixel coordinates. It returns
// ErrBehindCamera when the depth is not positive.
func (c Camera) Project(pc Vec3) (Vec2, error) {
	if pc.Z <= 1e-9 {
		return Vec2{}, ErrBehindCamera
	}
	return Vec2{
		X: c.Fx*pc.X/pc.Z + c.Cx,
		Y: c.Fy*pc.Y/pc.Z + c.Cy,
	}, nil
}

// ProjectWorld maps a world point to pixel coordinates given the
// world-to-camera pose: pi(T_CW, P) = K(R*P + t). This is Eq. 5.
func (c Camera) ProjectWorld(tcw Pose, pw Vec3) (Vec2, error) {
	return c.Project(tcw.Apply(pw))
}

// Backproject lifts a pixel at the given depth (along the optical axis) into
// camera coordinates.
func (c Camera) Backproject(px Vec2, depth float64) Vec3 {
	return Vec3{
		X: (px.X - c.Cx) / c.Fx * depth,
		Y: (px.Y - c.Cy) / c.Fy * depth,
		Z: depth,
	}
}

// BackprojectWorld lifts a pixel at the given camera-frame depth into world
// coordinates given the world-to-camera pose.
func (c Camera) BackprojectWorld(tcw Pose, px Vec2, depth float64) Vec3 {
	return tcw.Inverse().Apply(c.Backproject(px, depth))
}

// NormalizedRay returns the unit-depth camera-frame ray K^-1 * (u, v, 1).
func (c Camera) NormalizedRay(px Vec2) Vec3 {
	return Vec3{
		X: (px.X - c.Cx) / c.Fx,
		Y: (px.Y - c.Cy) / c.Fy,
		Z: 1,
	}
}

// InBounds reports whether the pixel lies within the image with the given
// margin (margin may be zero or negative to allow out-of-frame slack).
func (c Camera) InBounds(px Vec2, margin float64) bool {
	return px.X >= margin && px.X < float64(c.Width)-margin &&
		px.Y >= margin && px.Y < float64(c.Height)-margin
}

// FovX returns the horizontal field of view in radians.
func (c Camera) FovX() float64 {
	return 2 * math.Atan2(float64(c.Width)/2, c.Fx)
}

// FovY returns the vertical field of view in radians.
func (c Camera) FovY() float64 {
	return 2 * math.Atan2(float64(c.Height)/2, c.Fy)
}
