package geom

import "math"

// Mat3 is a 3x3 matrix in row-major order. It is used for rotation matrices,
// camera intrinsics, and the fundamental/essential matrices of two-view
// geometry.
type Mat3 [9]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{
		1, 0, 0,
		0, 1, 0,
		0, 0, 1,
	}
}

// At returns the element at row r, column c.
func (m Mat3) At(r, c int) float64 { return m[3*r+c] }

// Set stores v at row r, column c and returns the updated matrix.
func (m *Mat3) Set(r, c int, v float64) { m[3*r+c] = v }

// Mul returns the matrix product m * n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m.At(r, k) * n.At(k, c)
			}
			out.Set(r, c, s)
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		Y: m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		Z: m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Transpose returns the transpose of m.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Scale returns m with every element multiplied by s.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] * s
	}
	return out
}

// Add returns the element-wise sum m + n.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := range m {
		out[i] = m[i] + n[i]
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Inverse returns the inverse of m and whether m is invertible. Singular
// matrices (|det| below 1e-12 relative to scale) return ok=false.
func (m Mat3) Inverse() (Mat3, bool) {
	det := m.Det()
	scale := 0.0
	for _, v := range m {
		scale = math.Max(scale, math.Abs(v))
	}
	if scale == 0 || math.Abs(det) < 1e-12*scale*scale*scale {
		return Mat3{}, false
	}
	inv := 1 / det
	return Mat3{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}, true
}

// Skew returns the skew-symmetric matrix v^ such that v^ * w == v x w.
// This is the (.)^ operator of Eq. 2 in the paper.
func Skew(v Vec3) Mat3 {
	return Mat3{
		0, -v.Z, v.Y,
		v.Z, 0, -v.X,
		-v.Y, v.X, 0,
	}
}

// Trace returns the sum of diagonal elements.
func (m Mat3) Trace() float64 { return m[0] + m[4] + m[8] }

// Col returns column c as a vector.
func (m Mat3) Col(c int) Vec3 { return Vec3{m[c], m[3+c], m[6+c]} }

// Row returns row r as a vector.
func (m Mat3) Row(r int) Vec3 { return Vec3{m[3*r], m[3*r+1], m[3*r+2]} }

// FromCols builds a matrix whose columns are a, b and c.
func FromCols(a, b, c Vec3) Mat3 {
	return Mat3{
		a.X, b.X, c.X,
		a.Y, b.Y, c.Y,
		a.Z, b.Z, c.Z,
	}
}

// RotX returns the rotation matrix around the X axis by angle a.
func RotX(a float64) Mat3 {
	s, c := math.Sin(a), math.Cos(a)
	return Mat3{
		1, 0, 0,
		0, c, -s,
		0, s, c,
	}
}

// RotY returns the rotation matrix around the Y axis by angle a.
func RotY(a float64) Mat3 {
	s, c := math.Sin(a), math.Cos(a)
	return Mat3{
		c, 0, s,
		0, 1, 0,
		-s, 0, c,
	}
}

// RotZ returns the rotation matrix around the Z axis by angle a.
func RotZ(a float64) Mat3 {
	s, c := math.Sin(a), math.Cos(a)
	return Mat3{
		c, -s, 0,
		s, c, 0,
		0, 0, 1,
	}
}

// Rodrigues converts an axis-angle vector (direction = axis, norm = angle)
// into a rotation matrix using the Rodrigues formula. The zero vector maps
// to the identity.
func Rodrigues(w Vec3) Mat3 {
	theta := w.Norm()
	if theta < 1e-12 {
		// First-order approximation keeps the exponential map smooth
		// near zero, which Gauss-Newton steps rely on.
		return Identity3().Add(Skew(w))
	}
	axis := w.Scale(1 / theta)
	k := Skew(axis)
	s, c := math.Sin(theta), math.Cos(theta)
	return Identity3().Add(k.Scale(s)).Add(k.Mul(k).Scale(1 - c))
}

// LogRotation is the inverse of Rodrigues: it recovers the axis-angle vector
// from a rotation matrix.
func LogRotation(r Mat3) Vec3 {
	cosTheta := (r.Trace() - 1) / 2
	cosTheta = math.Max(-1, math.Min(1, cosTheta))
	theta := math.Acos(cosTheta)
	if theta < 1e-12 {
		return Vec3{}
	}
	if math.Pi-theta < 1e-6 {
		// Near pi the off-diagonal formula degenerates; recover the axis
		// from the diagonal of (R + I)/2 = axis*axis^T near theta==pi.
		ax := math.Sqrt(math.Max(0, (r.At(0, 0)+1)/2))
		ay := math.Sqrt(math.Max(0, (r.At(1, 1)+1)/2))
		az := math.Sqrt(math.Max(0, (r.At(2, 2)+1)/2))
		// Fix signs using the largest component.
		switch {
		case ax >= ay && ax >= az:
			if r.At(0, 1)+r.At(1, 0) < 0 {
				ay = -ay
			}
			if r.At(0, 2)+r.At(2, 0) < 0 {
				az = -az
			}
		case ay >= ax && ay >= az:
			if r.At(0, 1)+r.At(1, 0) < 0 {
				ax = -ax
			}
			if r.At(1, 2)+r.At(2, 1) < 0 {
				az = -az
			}
		default:
			if r.At(0, 2)+r.At(2, 0) < 0 {
				ax = -ax
			}
			if r.At(1, 2)+r.At(2, 1) < 0 {
				ay = -ay
			}
		}
		return V3(ax, ay, az).Normalized().Scale(theta)
	}
	f := theta / (2 * math.Sin(theta))
	return Vec3{
		X: (r.At(2, 1) - r.At(1, 2)) * f,
		Y: (r.At(0, 2) - r.At(2, 0)) * f,
		Z: (r.At(1, 0) - r.At(0, 1)) * f,
	}
}

// OrthonormalizeRotation projects m onto the closest rotation matrix using
// Gram-Schmidt on its columns followed by a determinant sign fix. It is used
// to keep incrementally-updated rotations numerically orthonormal.
func OrthonormalizeRotation(m Mat3) Mat3 {
	c0 := m.Col(0).Normalized()
	c1 := m.Col(1).Sub(c0.Scale(c0.Dot(m.Col(1)))).Normalized()
	c2 := c0.Cross(c1)
	r := FromCols(c0, c1, c2)
	if r.Det() < 0 {
		r = FromCols(c0, c1, c2.Scale(-1))
	}
	return r
}
