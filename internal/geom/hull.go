package geom

import "sort"

// ConvexHull returns the convex hull of the given points in counter-clockwise
// order (in a y-down image coordinate system the returned order appears
// clockwise on screen; only consistency matters to callers). It uses
// Andrew's monotone chain algorithm. Fewer than three distinct points are
// returned as-is (sorted, deduplicated).
//
// The hull converts the eight projected corners of a polyhedral scene object
// into its silhouette polygon during ground-truth rendering.
func ConvexHull(points []Vec2) []Vec2 {
	if len(points) == 0 {
		return nil
	}
	pts := make([]Vec2, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		//edgeis:floateq lexicographic sort compares stored values verbatim, no arithmetic involved
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	// Deduplicate.
	uniq := pts[:1]
	for _, p := range pts[1:] {
		last := uniq[len(uniq)-1]
		//edgeis:floateq dedup drops exact bit-for-bit duplicates only; near-equal points must survive
		if p.X != last.X || p.Y != last.Y {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	if len(pts) < 3 {
		return pts
	}

	cross := func(o, a, b Vec2) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}

	hull := make([]Vec2, 0, 2*len(pts))
	// Lower hull.
	for _, p := range pts {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(pts) - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}
