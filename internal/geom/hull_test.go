package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Vec2{
		V2(0, 0), V2(4, 0), V2(4, 4), V2(0, 4),
		V2(2, 2), V2(1, 3), // interior points
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4", len(hull))
	}
	for _, h := range hull {
		if h.X != 0 && h.X != 4 && h.Y != 0 && h.Y != 4 {
			t.Errorf("interior point %v in hull", h)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); got != nil {
		t.Error("nil input should give nil")
	}
	one := ConvexHull([]Vec2{V2(1, 2)})
	if len(one) != 1 {
		t.Errorf("single point hull = %v", one)
	}
	// Duplicates collapse.
	dup := ConvexHull([]Vec2{V2(1, 1), V2(1, 1), V2(1, 1)})
	if len(dup) != 1 {
		t.Errorf("duplicate hull = %v", dup)
	}
	// Collinear points give the two extremes (or the full segment set —
	// either way, all returned points must lie on the segment).
	line := ConvexHull([]Vec2{V2(0, 0), V2(1, 1), V2(2, 2), V2(3, 3)})
	for _, p := range line {
		if math.Abs(p.X-p.Y) > 1e-12 {
			t.Errorf("off-line point %v", p)
		}
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		pts := make([]Vec2, n)
		for i := range pts {
			pts[i] = V2(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		// Every input point is inside or on the hull: for the hull's
		// consistent winding, the cross product against each edge must not
		// change sign beyond tolerance.
		for _, p := range pts {
			for i := range hull {
				a, b := hull[i], hull[(i+1)%len(hull)]
				cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
				if cross < -1e-6 {
					t.Fatalf("trial %d: point %v outside hull edge %v-%v", trial, p, a, b)
				}
			}
		}
	}
}

func TestConvexHullIsConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := make([]Vec2, 60)
	for i := range pts {
		pts[i] = V2(rng.NormFloat64()*20, rng.NormFloat64()*20)
	}
	hull := ConvexHull(pts)
	if len(hull) < 3 {
		t.Fatal("degenerate hull")
	}
	for i := range hull {
		a := hull[i]
		b := hull[(i+1)%len(hull)]
		c := hull[(i+2)%len(hull)]
		cross := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
		if cross <= 0 {
			t.Fatalf("hull not strictly convex at %d (cross %v)", i, cross)
		}
	}
}
