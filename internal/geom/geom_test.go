package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func matAlmostEq(a, b Mat3, tol float64) bool {
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func randRotation(rng *rand.Rand) Mat3 {
	axis := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
	angle := rng.Float64() * math.Pi * 0.95
	return Rodrigues(axis.Scale(angle))
}

func randPose(rng *rand.Rand) Pose {
	return Pose{
		R: randRotation(rng),
		T: V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()),
	}
}

func TestVec3Basics(t *testing.T) {
	tests := []struct {
		name string
		got  Vec3
		want Vec3
	}{
		{"add", V3(1, 2, 3).Add(V3(4, 5, 6)), V3(5, 7, 9)},
		{"sub", V3(1, 2, 3).Sub(V3(4, 5, 6)), V3(-3, -3, -3)},
		{"scale", V3(1, 2, 3).Scale(2), V3(2, 4, 6)},
		{"cross", V3(1, 0, 0).Cross(V3(0, 1, 0)), V3(0, 0, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !vecAlmostEq(tt.got, tt.want, eps) {
				t.Errorf("got %+v, want %+v", tt.got, tt.want)
			}
		})
	}
}

// clamp maps an arbitrary quick.Check float into a numerically tame range.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e3)
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(clamp(ax), clamp(ay), clamp(az))
		b := V3(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		return almostEq(c.Dot(a), 0, 1e-6*math.Max(1, a.Norm()*b.Norm())) &&
			almostEq(c.Dot(b), 0, 1e-6*math.Max(1, a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalized(t *testing.T) {
	v := V3(3, 4, 0).Normalized()
	if !almostEq(v.Norm(), 1, eps) {
		t.Errorf("norm = %v, want 1", v.Norm())
	}
	zero := Vec3{}
	if zero.Normalized() != zero {
		t.Error("normalizing zero vector should return zero")
	}
}

func TestMat3MulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randRotation(rng)
	if !matAlmostEq(m.Mul(Identity3()), m, eps) {
		t.Error("m * I != m")
	}
	if !matAlmostEq(Identity3().Mul(m), m, eps) {
		t.Error("I * m != m")
	}
}

func TestMat3Inverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		var m Mat3
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		inv, ok := m.Inverse()
		if !ok {
			continue
		}
		if !matAlmostEq(m.Mul(inv), Identity3(), 1e-7) {
			t.Fatalf("m * m^-1 != I at trial %d", i)
		}
	}
	if _, ok := (Mat3{}).Inverse(); ok {
		t.Error("zero matrix reported invertible")
	}
}

func TestSkewCross(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(clamp(ax), clamp(ay), clamp(az))
		b := V3(clamp(bx), clamp(by), clamp(bz))
		return vecAlmostEq(Skew(a).MulVec(b), a.Cross(b), 1e-9*math.Max(1, a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRodriguesKnownRotations(t *testing.T) {
	tests := []struct {
		name string
		w    Vec3
		want Mat3
	}{
		{"zero", Vec3{}, Identity3()},
		{"x90", V3(math.Pi/2, 0, 0), RotX(math.Pi / 2)},
		{"y90", V3(0, math.Pi/2, 0), RotY(math.Pi / 2)},
		{"z90", V3(0, 0, math.Pi/2), RotZ(math.Pi / 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Rodrigues(tt.w); !matAlmostEq(got, tt.want, 1e-9) {
				t.Errorf("Rodrigues(%+v) = %+v, want %+v", tt.w, got, tt.want)
			}
		})
	}
}

func TestRodriguesLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		axis := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
		angle := rng.Float64() * (math.Pi - 1e-3)
		w := axis.Scale(angle)
		back := LogRotation(Rodrigues(w))
		if !vecAlmostEq(w, back, 1e-6) {
			t.Fatalf("round trip failed: %+v -> %+v", w, back)
		}
	}
}

func TestLogRotationNearPi(t *testing.T) {
	for _, axis := range []Vec3{V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1), V3(1, 1, 1).Normalized()} {
		w := axis.Scale(math.Pi - 1e-9)
		r := Rodrigues(w)
		got := LogRotation(r)
		// Axis may flip sign near pi; compare rotations instead of vectors.
		if !matAlmostEq(Rodrigues(got), r, 1e-5) {
			t.Errorf("near-pi log failed for axis %+v", axis)
		}
	}
}

func TestRotationIsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		r := randRotation(rng)
		if !matAlmostEq(r.Mul(r.Transpose()), Identity3(), 1e-9) {
			t.Fatal("R * R^T != I")
		}
		if !almostEq(r.Det(), 1, 1e-9) {
			t.Fatalf("det = %v, want 1", r.Det())
		}
	}
}

func TestOrthonormalizeRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randRotation(rng)
	// Perturb and re-orthonormalize.
	var noisy Mat3
	for i := range r {
		noisy[i] = r[i] + 0.01*rng.NormFloat64()
	}
	fixed := OrthonormalizeRotation(noisy)
	if !matAlmostEq(fixed.Mul(fixed.Transpose()), Identity3(), 1e-9) {
		t.Error("result not orthonormal")
	}
	if fixed.Det() < 0 {
		t.Error("result is a reflection")
	}
}

func TestPoseComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p, q := randPose(rng), randPose(rng)
		pt := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		// Compose associativity with application.
		if !vecAlmostEq(p.Compose(q).Apply(pt), p.Apply(q.Apply(pt)), 1e-8) {
			t.Fatal("compose/apply mismatch")
		}
		// Inverse round trip.
		if !vecAlmostEq(p.Inverse().Apply(p.Apply(pt)), pt, 1e-8) {
			t.Fatal("inverse round trip failed")
		}
	}
}

func TestPoseRelativeTo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randPose(rng), randPose(rng)
	rel := a.RelativeTo(b) // T_ab = T_aw * T_bw^-1
	pt := V3(1, 2, 3)
	// rel applied to a point in b's frame should equal transforming through world.
	want := a.Apply(b.Inverse().Apply(pt))
	if !vecAlmostEq(rel.Apply(pt), want, 1e-8) {
		t.Error("RelativeTo incorrect")
	}
}

func TestPoseExpIdentityIncrement(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randPose(rng)
	q := p.Exp(Vec3{}, Vec3{})
	if !matAlmostEq(q.R, p.R, 1e-9) || !vecAlmostEq(q.T, p.T, 1e-9) {
		t.Error("zero increment changed pose")
	}
}

func TestCameraCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randPose(rng)
	c := p.CameraCenter()
	// The camera center maps to the origin of the camera frame.
	if !vecAlmostEq(p.Apply(c), Vec3{}, 1e-9) {
		t.Error("camera center does not map to origin")
	}
}

func TestRotationAngle(t *testing.T) {
	p := Pose{R: Identity3()}
	q := Pose{R: RotY(0.3)}
	if got := p.RotationAngle(q); !almostEq(got, 0.3, 1e-9) {
		t.Errorf("angle = %v, want 0.3", got)
	}
}

func TestCameraProjectBackproject(t *testing.T) {
	cam := StandardCamera(640, 480)
	if err := cam.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(x, y, z float64) bool {
		p := V3(x, y, 1+math.Abs(z)) // ensure positive depth
		px, err := cam.Project(p)
		if err != nil {
			return false
		}
		back := cam.Backproject(px, p.Z)
		return vecAlmostEq(back, p, 1e-6*math.Max(1, p.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCameraBehindCamera(t *testing.T) {
	cam := StandardCamera(640, 480)
	if _, err := cam.Project(V3(0, 0, -1)); err == nil {
		t.Error("expected ErrBehindCamera")
	}
	if _, err := cam.Project(V3(0, 0, 0)); err == nil {
		t.Error("expected ErrBehindCamera at zero depth")
	}
}

func TestCameraProjectWorldMatchesManual(t *testing.T) {
	cam := StandardCamera(640, 480)
	rng := rand.New(rand.NewSource(10))
	tcw := randPose(rng)
	pw := V3(0.5, -0.2, 4)
	// Only valid if the point lands in front of the camera.
	pc := tcw.Apply(pw)
	if pc.Z <= 0 {
		t.Skip("point behind camera for this seed")
	}
	got, err := cam.ProjectWorld(tcw, pw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cam.Project(pc)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got.X, want.X, eps) || !almostEq(got.Y, want.Y, eps) {
		t.Error("ProjectWorld mismatch")
	}
}

func TestBackprojectWorldRoundTrip(t *testing.T) {
	cam := StandardCamera(640, 480)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		tcw := randPose(rng)
		depth := 1 + rng.Float64()*10
		px := V2(rng.Float64()*640, rng.Float64()*480)
		pw := cam.BackprojectWorld(tcw, px, depth)
		back, err := cam.ProjectWorld(tcw, pw)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(back.X, px.X, 1e-6) || !almostEq(back.Y, px.Y, 1e-6) {
			t.Fatalf("round trip: %+v -> %+v", px, back)
		}
	}
}

func TestCameraKInv(t *testing.T) {
	cam := StandardCamera(1280, 720)
	if !matAlmostEq(cam.K().Mul(cam.KInv()), Identity3(), 1e-9) {
		t.Error("K * K^-1 != I")
	}
}

func TestCameraInBounds(t *testing.T) {
	cam := StandardCamera(100, 100)
	tests := []struct {
		px     Vec2
		margin float64
		want   bool
	}{
		{V2(50, 50), 0, true},
		{V2(-1, 50), 0, false},
		{V2(99.5, 50), 0, true},
		{V2(100, 50), 0, false},
		{V2(5, 5), 10, false},
		{V2(50, 50), 10, true},
	}
	for _, tt := range tests {
		if got := cam.InBounds(tt.px, tt.margin); got != tt.want {
			t.Errorf("InBounds(%+v, %v) = %v, want %v", tt.px, tt.margin, got, tt.want)
		}
	}
}

func TestCameraFov(t *testing.T) {
	cam := StandardCamera(640, 480)
	if fov := cam.FovX(); fov < 0.9 || fov > 1.2 {
		t.Errorf("FovX = %v rad, want ~1.05 (60 deg)", fov)
	}
	if cam.FovY() >= cam.FovX() {
		t.Error("vertical FOV should be smaller for landscape images")
	}
}

func TestCameraValidate(t *testing.T) {
	bad := []Camera{
		{Fx: 0, Fy: 1, Width: 10, Height: 10},
		{Fx: 1, Fy: 1, Width: 0, Height: 10},
		{Fx: 1, Fy: -1, Width: 10, Height: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
