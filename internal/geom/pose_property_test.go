package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomPose draws a rigid transform with a uniformly random rotation axis,
// an angle up to ~172 degrees (clear of the Rodrigues singularity at pi)
// and a translation inside a 10 m box — the regime camera poses live in.
func randomPose(rng *rand.Rand) Pose {
	axis := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
	angle := rng.Float64() * 3.0
	return Pose{
		R: Rodrigues(axis.Scale(angle)),
		T: V3(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5),
	}
}

func randomPoint(rng *rand.Rand) Vec3 {
	return V3(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4)
}

func nearVec(a, b Vec3, tol float64) bool { return a.DistTo(b) <= tol }
func nearIdentity(p Pose, tol float64) bool {
	return LogRotation(p.R).Norm() <= tol && p.T.Norm() <= tol
}

// TestPoseComposeInverseRoundTrip: p * p^-1 and p^-1 * p are both the
// identity, and applying them to points is a no-op — across many random
// poses from a fixed seed.
func TestPoseComposeInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := randomPose(rng)
		if !nearIdentity(p.Compose(p.Inverse()), 1e-9) {
			t.Fatalf("case %d: p * p^-1 is not identity: %+v", i, p.Compose(p.Inverse()))
		}
		if !nearIdentity(p.Inverse().Compose(p), 1e-9) {
			t.Fatalf("case %d: p^-1 * p is not identity", i)
		}
		pt := randomPoint(rng)
		if got := p.Inverse().Apply(p.Apply(pt)); !nearVec(got, pt, 1e-9) {
			t.Fatalf("case %d: point did not survive apply/unapply: %v vs %v", i, got, pt)
		}
	}
}

// TestPoseDoubleInverse: (p^-1)^-1 == p.
func TestPoseDoubleInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomPose(rng)
		q := p.Inverse().Inverse()
		if LogRotation(p.R.Mul(q.R.Transpose())).Norm() > 1e-9 || p.T.DistTo(q.T) > 1e-9 {
			t.Fatalf("case %d: double inverse diverged", i)
		}
	}
}

// TestPoseComposeIsApplyHomomorphism: (a*b).Apply(p) == a.Apply(b.Apply(p)),
// the composition convention documented on Pose.
func TestPoseComposeIsApplyHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		a, b := randomPose(rng), randomPose(rng)
		pt := randomPoint(rng)
		lhs := a.Compose(b).Apply(pt)
		rhs := a.Apply(b.Apply(pt))
		if !nearVec(lhs, rhs, 1e-9) {
			t.Fatalf("case %d: compose/apply mismatch: %v vs %v", i, lhs, rhs)
		}
	}
}

// TestPoseRelativeTo: q composed with T_pq = p.RelativeTo(q) recovers p,
// and a pose relative to itself is the identity.
func TestPoseRelativeToProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		p, q := randomPose(rng), randomPose(rng)
		if !nearIdentity(p.RelativeTo(p), 1e-9) {
			t.Fatalf("case %d: p relative to itself is not identity", i)
		}
		rel := p.RelativeTo(q)
		back := rel.Compose(q)
		pt := randomPoint(rng)
		if !nearVec(back.Apply(pt), p.Apply(pt), 1e-8) {
			t.Fatalf("case %d: rel * q != p on a point", i)
		}
	}
}

// TestPoseExpZeroIsNoop and small-increment consistency of the optimizer
// update rule: Exp(0,0) preserves the pose, and the rotation angle moved by
// Exp(0, phi) equals |phi|.
func TestPoseExp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		p := randomPose(rng)
		same := p.Exp(V3(0, 0, 0), V3(0, 0, 0))
		if LogRotation(p.R.Mul(same.R.Transpose())).Norm() > 1e-9 || p.T.DistTo(same.T) > 1e-9 {
			t.Fatalf("case %d: Exp(0,0) moved the pose", i)
		}
		phi := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized().Scale(0.3)
		moved := p.Exp(V3(0, 0, 0), phi)
		if d := math.Abs(moved.RotationAngle(p) - 0.3); d > 1e-6 {
			t.Fatalf("case %d: Exp rotation angle off by %g", i, d)
		}
	}
}

// TestRodriguesLogRoundTrip: LogRotation(Rodrigues(w)) == w away from the
// pi singularity.
func TestRodriguesLogRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		axis := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalized()
		w := axis.Scale(rng.Float64() * 3.0)
		got := LogRotation(Rodrigues(w))
		if !nearVec(got, w, 1e-8) {
			t.Fatalf("case %d: log(exp(w)) = %v, want %v", i, got, w)
		}
	}
}

// TestProjectBackprojectIdentity: camera-frame round trip at random pixels
// and depths, pi^-1(pi(p)) == p.
func TestProjectBackprojectIdentity(t *testing.T) {
	cam := StandardCamera(640, 480)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		px := V2(rng.Float64()*640, rng.Float64()*480)
		depth := 0.2 + rng.Float64()*20
		pc := cam.Backproject(px, depth)
		if pc.Z != depth {
			t.Fatalf("case %d: backprojected depth %g, want %g", i, pc.Z, depth)
		}
		got, err := cam.Project(pc)
		if err != nil {
			t.Fatalf("case %d: project failed: %v", i, err)
		}
		if math.Hypot(got.X-px.X, got.Y-px.Y) > 1e-9*depth {
			t.Fatalf("case %d: pixel round trip %v -> %v", i, px, got)
		}
	}
}

// TestProjectWorldBackprojectWorldIdentity: the world-frame round trip
// through a random pose (Eq. 5 and its inverse).
func TestProjectWorldBackprojectWorldIdentity(t *testing.T) {
	cam := StandardCamera(640, 480)
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for i := 0; i < 1000 && checked < 300; i++ {
		tcw := randomPose(rng)
		pw := randomPoint(rng)
		pc := tcw.Apply(pw)
		if pc.Z <= 0.1 {
			continue // behind or grazing the camera; Project rejects these
		}
		px, err := cam.ProjectWorld(tcw, pw)
		if err != nil {
			t.Fatalf("case %d: project world failed: %v", i, err)
		}
		back := cam.BackprojectWorld(tcw, px, pc.Z)
		if !nearVec(back, pw, 1e-8) {
			t.Fatalf("case %d: world round trip %v -> %v", i, pw, back)
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("only %d usable samples; generator too strict", checked)
	}
}

// TestProjectRejectsBehindCamera: non-positive depth must return
// ErrBehindCamera, never coordinates.
func TestProjectRejectsBehindCamera(t *testing.T) {
	cam := StandardCamera(640, 480)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		pc := V3(rng.NormFloat64(), rng.NormFloat64(), -rng.Float64()*5)
		if _, err := cam.Project(pc); err == nil {
			t.Fatalf("case %d: point %v behind camera projected without error", i, pc)
		}
	}
	if _, err := cam.Project(V3(0, 0, 0)); err == nil {
		t.Fatal("zero-depth point projected without error")
	}
}
