// Package geom provides the 3-D geometry primitives used throughout edgeIS:
// vectors, rotation matrices, rigid-body (SE(3)) transforms and the pinhole
// camera model. All angles are radians and all coordinates are metric unless
// stated otherwise.
//
// Conventions follow the paper: a pose T_CW = [R_CW | t_CW] maps points from
// the world frame W into the camera frame C, and the projection function
// pi(T, P) = K * (R*P + t) maps a world point to pixel coordinates (Eq. 5).
package geom

import "math"

// Vec2 is a 2-D vector, used for pixel coordinates and image-plane offsets.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// DistTo returns the Euclidean distance between v and w.
func (v Vec2) DistTo(w Vec2) float64 { return v.Sub(w).Norm() }

// Vec3 is a 3-D vector, used for world/camera points and translations.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// DistTo returns the Euclidean distance between v and w.
func (v Vec3) DistTo(w Vec3) float64 { return v.Sub(w).Norm() }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}
