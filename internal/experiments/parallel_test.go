package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/netsim"
	"edgeis/internal/parallel"
	"edgeis/internal/pipeline"
)

// withWorkers runs f under a forced pool size, restoring the prior
// configuration afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	f()
}

// outcomeFingerprint flattens a RunOutcome (summary row plus the full IoU
// CDF) for exact equality checks.
func outcomeFingerprint(out RunOutcome) string {
	var b strings.Builder
	b.WriteString(out.Acc.Row())
	xs, ys := out.Acc.CDF(21)
	for i := range xs {
		fmt.Fprintf(&b, " (%g,%g)", xs[i], ys[i])
	}
	return b.String()
}

// TestRunClipsParallelMatchesSerial is the cheap determinism check that
// also runs under the race detector: the same clips through the worker
// pool and through a forced serial run must agree exactly.
func TestRunClipsParallelMatchesSerial(t *testing.T) {
	clips := dataset.DAVIS(3, 90)

	var serial, par RunOutcome
	withWorkers(t, 1, func() {
		serial = RunClips(SysEdgeIS, clips, netsim.WiFi5, device.IPhone11, 3)
	})
	withWorkers(t, 4, func() {
		par = RunClips(SysEdgeIS, clips, netsim.WiFi5, device.IPhone11, 3)
	})

	if serial.Stats != par.Stats {
		t.Errorf("stats diverge:\nserial: %+v\nparallel: %+v", serial.Stats, par.Stats)
	}
	if got, want := outcomeFingerprint(par), outcomeFingerprint(serial); got != want {
		t.Errorf("accumulator diverges:\nserial:   %s\nparallel: %s", want, got)
	}
	if serial.Acc.Samples() == 0 {
		t.Error("degenerate run: no scored samples")
	}
}

// TestRunCustomClipsMatchesRunClips pins the refactor: the generic runner
// with the standard constructor is the same computation as RunClips.
func TestRunCustomClipsMatchesRunClips(t *testing.T) {
	clips := dataset.DAVIS(5, 80)
	cam := EvalCamera()
	direct := RunClips(SysEAAR, clips, netsim.WiFi5, device.IPhone11, 5)
	custom := RunCustomClips(SysEAAR.String(), clips, netsim.WiFi5, 5, func(cfgSeed int64) pipeline.Strategy {
		return NewStrategy(SysEAAR, cam, device.IPhone11, cfgSeed)
	})
	if direct.Stats != custom.Stats || direct.Acc.Row() != custom.Acc.Row() {
		t.Errorf("custom runner diverges from RunClips:\n%s\n%s", direct.Acc.Row(), custom.Acc.Row())
	}
}

// TestAllParallelDeterministic reproduces the headline guarantee: the full
// RunAllExperiments sweep through the worker pool renders byte-identical
// reports to a forced serial run on the same seeds. Skipped under -short
// and under the race detector purely for runtime; the mechanism is covered
// there by TestRunClipsParallelMatchesSerial.
func TestAllParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is long")
	}
	if raceEnabled {
		t.Skip("full sweep too slow under the race detector")
	}
	const seed, frames = 11, 66 // > WarmupFrames so accuracy lines are live

	render := func() string {
		var b strings.Builder
		for _, r := range All(seed, frames) {
			b.WriteString(r.Render())
		}
		return b.String()
	}
	var serialOut, parOut string
	withWorkers(t, 1, func() { serialOut = render() })
	withWorkers(t, 8, func() { parOut = render() })

	if serialOut != parOut {
		t.Fatalf("parallel sweep is not byte-identical to serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut, parOut)
	}
	if !strings.Contains(serialOut, "Fig9") || !strings.Contains(serialOut, "Power") {
		t.Errorf("sweep missing figures:\n%s", serialOut)
	}
}

// TestParallelSpeedup checks the point of the pool: with >= 4 cores the
// parallel sweep must beat a forced serial run. The 2x acceptance target is
// asserted conservatively at 1.5x to stay robust on loaded CI machines.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test is long")
	}
	if raceEnabled {
		t.Skip("timings are meaningless under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores, have %d", runtime.NumCPU())
	}
	const seed, frames = 7, 90

	measure := func(workers int) time.Duration {
		var d time.Duration
		withWorkers(t, workers, func() {
			start := time.Now()
			Fig9(seed, frames)
			d = time.Since(start)
		})
		return d
	}
	measure(1) // warm caches so the comparison is fair
	serial := measure(1)
	par := measure(0) // all cores
	speedup := float64(serial) / float64(par)
	t.Logf("serial %v, parallel %v, speedup %.2fx on %d cores", serial, par, speedup, runtime.NumCPU())
	if speedup < 1.5 {
		t.Errorf("parallel runner speedup %.2fx below 1.5x on %d cores", speedup, runtime.NumCPU())
	}
}
