//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// heaviest determinism sweeps skip under it (the cheap ones still run) to
// keep `go test -race ./...` inside CI budgets.
const raceEnabled = true
