package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestAllGoldenReport pins the full experiment report byte-for-byte. The
// suite's claim to determinism — same seeds, same event ordering, any
// worker count — is only credible if the rendered output never moves; this
// catches both scheduler regressions in the engine and map-iteration
// nondeterminism anywhere under it.
func TestAllGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full experiment suite")
	}
	if raceEnabled {
		t.Skip("full-suite replay exceeds the race-detector budget")
	}
	var b strings.Builder
	for _, res := range All(11, 66) {
		b.WriteString(res.Render())
	}
	want, err := os.ReadFile("testdata/golden_all_seed11_frames66.txt")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Error("experiment report diverged from golden; regenerate only if the change is intended")
	}
}
