package experiments

import (
	"fmt"

	"edgeis/internal/accel"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/mask"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/parallel"
	"edgeis/internal/segmodel"
)

// Fig2b reproduces the motivation study: accuracy/latency of YOLOv3,
// Mask R-CNN and YOLACT on the edge device.
//
// Paper: YOLOv3 >0.98 IoU / <30 ms; Mask R-CNN 0.92 IoU / 400 ms;
// YOLACT 0.75 IoU / 120 ms.
func Fig2b(seed int64) *Result {
	r := &Result{ID: "Fig2b", Title: "DL model accuracy/latency trade-off (edge device)"}
	cam := EvalCamera()
	clip := dataset.KITTI(seed, 60)[0]
	frames := clip.World.RenderSequence(cam, clip.Traj, 30)

	type paperRef struct {
		iou, ms float64
	}
	refs := map[segmodel.Kind]paperRef{
		segmodel.YOLOv3:   {0.98, 30},
		segmodel.MaskRCNN: {0.92, 400},
		segmodel.YOLACT:   {0.75, 120},
	}
	r.Addf("%-12s %10s %10s %12s %12s", "model", "IoU", "paper", "latency ms", "paper")
	kinds := []segmodel.Kind{segmodel.YOLOv3, segmodel.MaskRCNN, segmodel.YOLACT}
	lines := parallel.Map(kinds, func(_ int, kind segmodel.Kind) string {
		model := segmodel.New(kind)
		var iouSum, msSum float64
		var n int
		for i, f := range frames {
			in := segmodel.Input{
				Width: cam.Width, Height: cam.Height,
				Seed: seed + int64(i),
			}
			for _, gt := range f.Objects {
				in.Objects = append(in.Objects, segmodel.ObjectTruth{
					ObjectID: gt.ObjectID, Label: int(gt.Class),
					Visible: gt.Visible, Box: gt.Box,
				})
			}
			res := model.Run(in, nil)
			msSum += res.TotalMs()
			for _, d := range res.Detections {
				iouSum += d.TrueIoU
				n++
			}
		}
		ref := refs[kind]
		return fmt.Sprintf("%-12s %10.3f %10.2f %12.1f %12.0f",
			kind, iouSum/float64(maxi(n, 1)), ref.iou, msSum/float64(len(frames)), ref.ms)
	})
	r.Lines = append(r.Lines, lines...)
	return r
}

// Fig9 reproduces the overall comparison: accuracy CDF and false rates of
// the five systems across the four datasets on WiFi 5 GHz.
//
// Paper false rates: mobile-only 78.3%, best-effort 60.1%, EdgeDuet 39%,
// EAAR 21%, edgeIS 3.9%; edgeIS mean IoU 0.92 (+10% vs EAAR, +20% vs
// EdgeDuet).
func Fig9(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig9", Title: "Overall segmentation accuracy (all datasets, WiFi 5GHz)"}
	clips := dataset.All(seed, frames)
	st := dataset.Summarize(clips)
	r.Addf("corpus: %d clips, %d frames (%.1f s), %d dynamic",
		st.Clips, st.TotalFrames, st.TotalSeconds, st.DynamicClips)

	paperFalse := map[SystemKind]float64{
		SysEdgeIS: 0.039, SysEAAR: 0.21, SysEdgeDuet: 0.39,
		SysBestEffort: 0.601, SysMobileOnly: 0.783,
	}
	r.Addf("%-14s %9s %12s %12s %12s %10s", "system", "IoU",
		"false@0.75", "paper", "false@0.5", "offloads")
	kinds := []SystemKind{SysEdgeIS, SysEAAR, SysEdgeDuet, SysBestEffort, SysMobileOnly}
	outs := parallel.Map(kinds, func(_ int, kind SystemKind) RunOutcome {
		return RunClips(kind, clips, netsim.WiFi5, device.IPhone11, seed)
	})
	for i, kind := range kinds {
		out := outs[i]
		r.Addf("%-14s %9.3f %12s %12s %12s %10d",
			kind, out.Acc.MeanIoU(),
			pct(out.Acc.FalseRate(metrics.StrictThreshold)), pct(paperFalse[kind]),
			pct(out.Acc.FalseRate(metrics.LooseThreshold)), out.Stats.Offloads)
	}
	// CDF points for the edgeIS curve (Fig. 9 plots CDFs).
	xs, ys := outs[0].Acc.CDF(11)
	line := "edgeIS CDF: "
	for i := range xs {
		line += fmt.Sprintf("(%.1f,%.2f) ", xs[i], ys[i])
	}
	r.Lines = append(r.Lines, line)
	return r
}

// Fig10 reproduces the network-sensitivity study: false rates under
// WiFi 2.4 GHz and WiFi 5 GHz.
//
// Paper: edgeIS 6.1% (2.4 GHz) and 4.1% (5 GHz); EAAR 21% and EdgeDuet 41%
// at 5 GHz, worse at 2.4 GHz.
func Fig10(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig10", Title: "False rate under different networks"}
	clips := dataset.KITTI(seed, frames)
	clips = append(clips, dataset.SelfRecorded(seed, frames)...)

	r.Addf("%-14s %14s %14s", "system", "wifi-2.4GHz", "wifi-5GHz")
	kinds := []SystemKind{SysEdgeIS, SysEAAR, SysEdgeDuet}
	lines := parallel.Map(kinds, func(_ int, kind SystemKind) string {
		w24 := RunClips(kind, clips, netsim.WiFi24, device.IPhone11, seed)
		w5 := RunClips(kind, clips, netsim.WiFi5, device.IPhone11, seed)
		return fmt.Sprintf("%-14s %14s %14s", kind,
			pct(w24.Acc.FalseRate(metrics.StrictThreshold)),
			pct(w5.Acc.FalseRate(metrics.StrictThreshold)))
	})
	r.Lines = append(r.Lines, lines...)
	r.Addf("paper: edgeIS 6.1%% / 4.1%%; EAAR - / 21%%; EdgeDuet - / 41%%")
	return r
}

// Fig11 reproduces the latency/accuracy comparison on WiFi 5 GHz.
//
// Paper: edgeIS 28 ms / 0.89 IoU; EAAR 41 ms / 0.83; EdgeDuet 49 ms / 0.78.
func Fig11(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig11", Title: "Mobile-side latency and accuracy (WiFi 5GHz)"}
	clips := dataset.All(seed, frames)

	type paperRef struct{ ms, iou float64 }
	refs := map[SystemKind]paperRef{
		SysEdgeIS: {28, 0.89}, SysEAAR: {41, 0.83}, SysEdgeDuet: {49, 0.78},
	}
	r.Addf("%-14s %12s %10s %9s %9s %12s", "system",
		"latency ms", "paper", "IoU", "paper", "p95 ms")
	kinds := []SystemKind{SysEdgeIS, SysEAAR, SysEdgeDuet}
	lines := parallel.Map(kinds, func(_ int, kind SystemKind) string {
		out := RunClips(kind, clips, netsim.WiFi5, device.IPhone11, seed)
		ref := refs[kind]
		// The baselines' local trackers are cheap but their accuracy pays
		// for it; the paper's per-frame numbers include their full update
		// paths. We report our measured mobile busy time per frame.
		meanMs := out.Acc.MeanLatencyMs()
		return fmt.Sprintf("%-14s %12.1f %10.0f %9.3f %9.2f %12.1f",
			kind, meanMs, ref.ms, out.Acc.MeanIoU(), ref.iou,
			out.Acc.LatencyPercentile(0.95))
	})
	r.Lines = append(r.Lines, lines...)
	return r
}

// Fig12 reproduces the camera-motion robustness study: the same route at
// walking, striding and jogging speed.
//
// Paper: false rates 4.7% / 9.8% / 29.9%; worst-case mean IoU 0.82.
func Fig12(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig12", Title: "Robustness to camera motion (edgeIS)"}
	paper := map[string]float64{"walk": 0.047, "stride": 0.098, "jog": 0.299}
	r.Addf("%-10s %12s %12s %9s", "gait", "false@0.75", "paper", "IoU")
	lines := parallel.Map(dataset.GaitClips(seed, frames), func(_ int, clip dataset.Clip) string {
		out := RunClips(SysEdgeIS, []dataset.Clip{clip}, netsim.WiFi5, device.IPhone11, seed)
		return fmt.Sprintf("%-10s %12s %12s %9.3f", clip.Name,
			pct(out.Acc.FalseRate(metrics.StrictThreshold)), pct(paper[clip.Name]),
			out.Acc.MeanIoU())
	})
	r.Lines = append(r.Lines, lines...)
	return r
}

// Fig13 reproduces the scene-complexity study: easy (<=3 objects), medium
// (<=10) and hard (moving objects) scenes.
//
// Paper: IoU 0.91 / 0.88 / 0.83; dynamic-scene false rate 19.7%.
func Fig13(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig13", Title: "Robustness to scene complexity (edgeIS)"}
	paperIoU := map[string]float64{"easy": 0.91, "medium": 0.88, "hard": 0.83}
	r.Addf("%-10s %9s %9s %12s", "scene", "IoU", "paper", "false@0.75")
	lines := parallel.Map(dataset.ComplexityClips(seed, frames), func(_ int, clip dataset.Clip) string {
		out := RunClips(SysEdgeIS, []dataset.Clip{clip}, netsim.WiFi5, device.IPhone11, seed)
		return fmt.Sprintf("%-10s %9.3f %9.2f %12s", clip.Name,
			out.Acc.MeanIoU(), paperIoU[clip.Name],
			pct(out.Acc.FalseRate(metrics.StrictThreshold)))
	})
	r.Lines = append(r.Lines, lines...)
	r.Addf("paper: hard-scene false rate 19.7%%")
	return r
}

// Fig14 reproduces the model-acceleration ablation: vanilla Mask R-CNN,
// dynamic anchor placement alone, and DAP + RoI pruning.
//
// Paper: DAP cuts RPN latency 46%% and inference (second stage) 21%%; RoI
// pruning cuts inference 43%%; overall 48%% lower latency at >0.92 IoU.
func Fig14(seed int64) *Result {
	r := &Result{ID: "Fig14", Title: "Contour-instructed inference acceleration (Mask R-CNN)"}
	cam := EvalCamera()
	clip := dataset.KITTI(seed, 90)[0]
	frames := clip.World.RenderSequence(cam, clip.Traj, 60)

	type agg struct {
		rpn, head, total, iou float64
		n, dets               int
	}
	run := func(mode int) agg {
		model := segmodel.New(segmodel.MaskRCNN)
		var a agg
		for i, f := range frames {
			if len(f.Objects) == 0 {
				continue
			}
			in := segmodel.Input{
				Width: cam.Width, Height: cam.Height, Seed: seed + int64(i),
			}
			var priors []accel.ObjectPrior
			for _, gt := range f.Objects {
				in.Objects = append(in.Objects, segmodel.ObjectTruth{
					ObjectID: gt.ObjectID, Label: int(gt.Class),
					Visible: gt.Visible, Box: gt.Box,
				})
				priors = append(priors, accel.ObjectPrior{Box: gt.Box, Label: int(gt.Class)})
			}
			// A fresh strip of the frame acts as the new-content area the
			// mobile device would flag while moving.
			newArea := []mask.Box{{MinX: cam.Width - 64, MinY: 0, MaxX: cam.Width, MaxY: cam.Height}}
			var g segmodel.Guidance
			switch mode {
			case 1: // DAP only
				plan := accel.BuildPlan(priors, newArea, cam.Width, cam.Height, 0)
				plan.DisablePruning = true
				g = plan
			case 2: // DAP + pruning
				g = accel.BuildPlan(priors, newArea, cam.Width, cam.Height, 0)
			}
			res := model.Run(in, g)
			a.rpn += res.RPNMs
			a.head += res.HeadMs + res.SelectionMs
			a.total += res.TotalMs()
			a.n++
			for _, d := range res.Detections {
				a.iou += d.TrueIoU
				a.dets++
			}
		}
		a.rpn /= float64(a.n)
		a.head /= float64(a.n)
		a.total /= float64(a.n)
		if a.dets > 0 {
			a.iou /= float64(a.dets)
		}
		return a
	}

	arms := parallel.Map([]int{0, 1, 2}, func(_ int, mode int) agg { return run(mode) })
	vanilla, dap, full := arms[0], arms[1], arms[2]
	r.Addf("%-16s %9s %11s %10s %8s", "configuration", "RPN ms", "stage2 ms", "total ms", "IoU")
	r.Addf("%-16s %9.1f %11.1f %10.1f %8.3f", "vanilla", vanilla.rpn, vanilla.head, vanilla.total, vanilla.iou)
	r.Addf("%-16s %9.1f %11.1f %10.1f %8.3f", "+DAP", dap.rpn, dap.head, dap.total, dap.iou)
	r.Addf("%-16s %9.1f %11.1f %10.1f %8.3f", "+DAP+pruning", full.rpn, full.head, full.total, full.iou)
	r.Addf("measured cuts: RPN %s (paper 46%%), stage2(DAP) %s (paper 21%%), stage2(pruning) %s (paper 43%%), total %s (paper 48%%)",
		pct(metrics.Reduction(vanilla.rpn, dap.rpn)),
		pct(metrics.Reduction(vanilla.head, dap.head)),
		pct(metrics.Reduction(dap.head, full.head)),
		pct(metrics.Reduction(vanilla.total, full.total)))
	return r
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
