package experiments

import (
	"strings"
	"testing"

	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
)

func TestSystemKindStrings(t *testing.T) {
	kinds := []SystemKind{
		SysEdgeIS, SysEAAR, SysEdgeDuet, SysBestEffort, SysMobileOnly,
		SysEdgeISNoCIIA, SysEdgeISNoCFRS, SysEdgeISMAMTOnly, SysBaseCFRS, SysBaseCIIA,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
	if SystemKind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestNewStrategyAllKinds(t *testing.T) {
	cam := geom.StandardCamera(160, 120)
	for _, k := range []SystemKind{
		SysEdgeIS, SysEAAR, SysEdgeDuet, SysBestEffort, SysMobileOnly,
		SysEdgeISNoCIIA, SysEdgeISNoCFRS, SysEdgeISMAMTOnly, SysBaseCFRS, SysBaseCIIA,
	} {
		s := NewStrategy(k, cam, device.IPhone11, 1)
		if s == nil || s.Name() == "" {
			t.Errorf("kind %v produced bad strategy", k)
		}
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "X", Title: "demo"}
	r.Addf("value %d", 42)
	out := r.Render()
	if !strings.Contains(out, "X") || !strings.Contains(out, "value 42") {
		t.Errorf("render = %q", out)
	}
}

func TestRunClipsAggregates(t *testing.T) {
	clips := dataset.DAVIS(1, 120)[:1]
	out := RunClips(SysEAAR, clips, netsim.WiFi5, device.IPhone11, 1)
	if out.Acc.Samples() == 0 {
		t.Fatal("no samples")
	}
	if out.Stats.Frames != 120 {
		t.Errorf("frames = %d", out.Stats.Frames)
	}
	if out.Stats.Offloads == 0 {
		t.Error("EAAR never offloaded")
	}
}

func TestFig2bShape(t *testing.T) {
	r := Fig2b(1)
	if len(r.Lines) < 4 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	out := r.Render()
	for _, model := range []string{"yolov3", "mask-rcnn", "yolact"} {
		if !strings.Contains(out, model) {
			t.Errorf("missing %s", model)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	r := Fig14(1)
	out := r.Render()
	for _, want := range []string{"vanilla", "+DAP", "+DAP+pruning", "RPN"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig12MotionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	// The robustness shape: jogging must not beat walking.
	clips := dataset.GaitClips(1, 180)
	walk := RunClips(SysEdgeIS, clips[:1], netsim.WiFi5, device.IPhone11, 1)
	jog := RunClips(SysEdgeIS, clips[2:], netsim.WiFi5, device.IPhone11, 1)
	fw := walk.Acc.FalseRate(metrics.StrictThreshold)
	fj := jog.Acc.FalseRate(metrics.StrictThreshold)
	if fj < fw-0.05 {
		t.Errorf("jog false rate %.3f should not beat walk %.3f", fj, fw)
	}
}

func TestFig15ResourceBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := Fig15(1, 600)
	out := r.Render()
	if !strings.Contains(out, "CPU utilization") || !strings.Contains(out, "within=true") {
		t.Errorf("resource report wrong:\n%s", out)
	}
}

func TestPowerStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := PowerStudy(1, 300)
	out := r.Render()
	if !strings.Contains(out, "iphone-11") || !strings.Contains(out, "galaxy-s10") {
		t.Errorf("power report wrong:\n%s", out)
	}
}
