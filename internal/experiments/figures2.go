package experiments

import (
	"fmt"

	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/parallel"
	"edgeis/internal/pipeline"
)

// Fig15 reproduces the mobile resource-usage study: CPU utilization and
// memory growth over a long run, with the cleanup policy bounding the
// footprint.
//
// Paper: ~75% CPU; memory grows ~2 MB/s and the clearing algorithm keeps it
// under 1 GB.
func Fig15(seed int64, frames int) *Result {
	if frames == 0 {
		frames = 1800 // one minute of simulated video
	}
	r := &Result{ID: "Fig15", Title: "Mobile resource usage (iPhone 11 profile)"}
	cam := EvalCamera()
	clip := dataset.SelfRecorded(seed, frames)[0]
	clip.Frames = frames

	sys := core.NewSystem(core.Config{Camera: cam, Device: device.IPhone11, Seed: seed})
	engine := pipeline.NewEngine(pipeline.Config{
		World: clip.World, Camera: cam, Trajectory: clip.Traj,
		Frames: clip.Frames, CameraSpeed: clip.CameraSpeed,
		Medium: netsim.WiFi5, Seed: seed,
	}, sys)
	_, stats := engine.Run()

	cpu := sys.CPU().Utilization()
	mem := sys.Memory()
	r.Addf("run: %d frames (%.0f s), %d offloads", stats.Frames,
		float64(stats.Frames)/30, stats.Offloads)
	r.Addf("CPU utilization: %s   (paper: ~75%%)", pct(cpu))
	r.Addf("memory peak: %.0f MB (budget %d MB, within=%v)",
		mem.Peak(), int(device.IPhone11.MemoryBudgetMB), mem.WithinBudget())
	r.Addf("memory growth: %.2f MB/s over the run  (paper: ~2 MB/s before cleanup)",
		mem.GrowthMBPerS(0.5))
	return r
}

// Fig16 reproduces the module ablation: the best-effort + motion-vector
// baseline gains each edgeIS component individually, across networks.
//
// Paper: +CFRS improves accuracy 3-7%, +CIIA 12-14%, +MAMT >19%; the full
// system improves 27% over the baseline under all networks.
func Fig16(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig16", Title: "Benefits of individual modules (IoU vs baseline)"}
	clips := dataset.KITTI(seed, frames)
	clips = append(clips, dataset.SelfRecorded(seed, frames)...)

	media := []netsim.Medium{netsim.WiFi24, netsim.WiFi5}
	arms := []SystemKind{SysBestEffort, SysBaseCFRS, SysBaseCIIA, SysEdgeISMAMTOnly, SysEdgeIS}
	paper := map[SystemKind]string{
		SysBaseCFRS: "+3-7%", SysBaseCIIA: "+12-14%",
		SysEdgeISMAMTOnly: ">+19%", SysEdgeIS: "+27%",
	}

	r.Addf("%-16s %12s %12s %14s", "arm", "wifi-2.4", "wifi-5", "paper gain")
	// All arm x medium runs are independent; the base-relative improvement
	// is computed afterwards, in arm order, from the gathered IoUs.
	ious := parallel.Map(arms, func(_ int, arm SystemKind) []float64 {
		return parallel.Map(media, func(_ int, m netsim.Medium) float64 {
			return RunClips(arm, clips, m, device.IPhone11, seed).Acc.MeanIoU()
		})
	})
	base := make(map[netsim.Medium]float64, len(media))
	for ai, arm := range arms {
		var cells []string
		for mi, m := range media {
			iou := ious[ai][mi]
			if arm == SysBestEffort {
				base[m] = iou
				cells = append(cells, pct(0)+" (base)")
				continue
			}
			cells = append(cells, pct(metrics.Improvement(base[m], iou)))
		}
		r.Addf("%-16s %12s %12s %14s", arm, cells[0], cells[1], paper[arm])
	}
	return r
}

// Fig17 reproduces the oil-field case study: an industrial scene inspected
// by a device fleet over WiFi and LTE; segmentation accuracy plus the
// user-facing rendered-information accuracy.
//
// Paper: 87% mean segmentation accuracy, 92% rendered-information accuracy,
// 8% false segmentation, 2% false rendering.
func Fig17(seed int64, frames int) *Result {
	if frames == 0 {
		frames = 420
	}
	r := &Result{ID: "Fig17", Title: "Oil-field case study (device fleet)"}
	type deviceRun struct {
		dev    device.Profile
		medium netsim.Medium
		count  int
	}
	fleet := []deviceRun{
		{device.DreamGlass, netsim.WiFi5, 5},
		{device.IPhone11, netsim.LTE, 3},
	}

	// Expand the fleet into one entry per device so every device session
	// runs concurrently; merge preserves the fleet order.
	var sessions []deviceRun
	for _, fr := range fleet {
		for d := 0; d < fr.count; d++ {
			sessions = append(sessions, deviceRun{dev: fr.dev, medium: fr.medium, count: 1})
		}
	}
	accs := parallel.Map(sessions, func(idx int, s deviceRun) *metrics.Accumulator {
		clip := dataset.FieldClip(seed+int64(idx), frames)
		return RunClips(SysEdgeIS, []dataset.Clip{clip}, s.medium, s.dev, seed+int64(idx)).Acc
	})
	segAcc := metrics.NewAccumulator("field")
	renderSeen, renderOK := 0, 0
	falseRender := 0
	for _, acc := range accs {
		segAcc.Merge(acc)
		// Rendered-information accuracy: users sample one frame per
		// second and judge the overlays of the objects they care about
		// (large or central ones, Section VI-G). A rendered overlay
		// satisfies when the mask is at least loosely right.
		seen, ok, falses := renderScore(acc)
		renderSeen += seen
		renderOK += ok
		falseRender += falses
	}
	r.Addf("fleet: 5x DreamGlass (WiFi) + 3x iPhone 11 (LTE), %d frames each", frames)
	r.Addf("segmentation accuracy: %s  (paper: 87%%)", pct(segAcc.MeanIoU()))
	r.Addf("false segmentation:    %s  (paper: 8%%)", pct(segAcc.FalseRate(metrics.LooseThreshold)))
	if renderSeen > 0 {
		r.Addf("rendered-info accuracy: %s (paper: 92%%)", pct(float64(renderOK)/float64(renderSeen)))
		r.Addf("false rendering:        %s (paper: 2%%)", pct(float64(falseRender)/float64(renderSeen)))
	}
	return r
}

// renderScore approximates the user-satisfaction sampling of Section VI-G
// from the per-object IoU stream: one sample per 30 objects (one frame per
// second), satisfied at loose-threshold quality. Users "tend to focus on
// objects that are either large or central and ignore the small ones", so
// near-misses count as satisfied while gross failures count as false
// renders.
func renderScore(acc *metrics.Accumulator) (seen, ok, falses int) {
	xs, ys := acc.CDF(21)
	if xs == nil {
		return 0, 0, 0
	}
	n := acc.Samples() / 30
	if n == 0 {
		n = 1
	}
	// Fraction below 0.3 = gross failures; below 0.5 = unsatisfying.
	fGross, fLoose := 0.0, 0.0
	for i := range xs {
		if xs[i] <= 0.3 {
			fGross = ys[i]
		}
		if xs[i] <= 0.5 {
			fLoose = ys[i]
		}
	}
	// Users ignore about half of the borderline cases (small objects).
	satisfied := 1 - fLoose + (fLoose-fGross)*0.5
	seen = n
	ok = int(satisfied * float64(n))
	falses = int(fGross * float64(n))
	return seen, ok, falses
}

// PowerStudy reproduces the power-consumption measurement: battery drain of
// a 10-minute session on each phone. frames sizes the representative slice
// the duty cycle is extrapolated from (0 = the standard 20 s slice).
//
// Paper: 4.2% (iPhone 11) and 5.4% (Galaxy S10) in 10 minutes.
func PowerStudy(seed int64, frames int) *Result {
	if frames == 0 {
		frames = 600
	}
	r := &Result{ID: "Power", Title: "Power consumption (10-minute session)"}
	paper := map[string]float64{"iphone-11": 4.2, "galaxy-s10": 5.4}
	const minutes = 10.0

	devs := []device.Profile{device.IPhone11, device.GalaxyS10}
	lines := parallel.Map(devs, func(_ int, dev device.Profile) string {
		// Run a representative slice and extrapolate the duty cycle.
		cam := EvalCamera()
		clip := dataset.SelfRecorded(seed, frames)[0]
		sys := core.NewSystem(core.Config{Camera: cam, Device: dev, Seed: seed})
		engine := pipeline.NewEngine(pipeline.Config{
			World: clip.World, Camera: cam, Trajectory: clip.Traj,
			Frames: frames, CameraSpeed: clip.CameraSpeed,
			Medium: netsim.WiFi5, Seed: seed,
		}, sys)
		_, stats := engine.Run()

		cpu := sys.CPU().Utilization()
		wallS := float64(stats.Frames) / 30
		radioMbits := float64(stats.UplinkBytes+stats.DownlinkBytes) * 8 / 1e6
		pm := device.NewPowerModel(dev)
		scale := minutes * 60 / wallS
		pm.Add(minutes*60, cpu, radioMbits*scale)
		return fmt.Sprintf("%-12s drain %.1f%% in %v min (paper %.1f%%), cpu %s, radio %.1f Mbit total",
			dev.Name, pm.BatteryDrainPct(), minutes, paper[dev.Name], pct(cpu), radioMbits*scale)
	})
	r.Lines = append(r.Lines, lines...)
	return r
}
