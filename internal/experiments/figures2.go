package experiments

import (
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
)

// Fig15 reproduces the mobile resource-usage study: CPU utilization and
// memory growth over a long run, with the cleanup policy bounding the
// footprint.
//
// Paper: ~75% CPU; memory grows ~2 MB/s and the clearing algorithm keeps it
// under 1 GB.
func Fig15(seed int64, frames int) *Result {
	if frames == 0 {
		frames = 1800 // one minute of simulated video
	}
	r := &Result{ID: "Fig15", Title: "Mobile resource usage (iPhone 11 profile)"}
	cam := EvalCamera()
	clip := dataset.SelfRecorded(seed, frames)[0]
	clip.Frames = frames

	sys := core.NewSystem(core.Config{Camera: cam, Device: device.IPhone11, Seed: seed})
	engine := pipeline.NewEngine(pipeline.Config{
		World: clip.World, Camera: cam, Trajectory: clip.Traj,
		Frames: clip.Frames, CameraSpeed: clip.CameraSpeed,
		Medium: netsim.WiFi5, Seed: seed,
	}, sys)
	_, stats := engine.Run()

	cpu := sys.CPU().Utilization()
	mem := sys.Memory()
	r.Addf("run: %d frames (%.0f s), %d offloads", stats.Frames,
		float64(stats.Frames)/30, stats.Offloads)
	r.Addf("CPU utilization: %s   (paper: ~75%%)", pct(cpu))
	r.Addf("memory peak: %.0f MB (budget %d MB, within=%v)",
		mem.Peak(), int(device.IPhone11.MemoryBudgetMB), mem.WithinBudget())
	r.Addf("memory growth: %.2f MB/s over the run  (paper: ~2 MB/s before cleanup)",
		mem.GrowthMBPerS(0.5))
	return r
}

// Fig16 reproduces the module ablation: the best-effort + motion-vector
// baseline gains each edgeIS component individually, across networks.
//
// Paper: +CFRS improves accuracy 3-7%, +CIIA 12-14%, +MAMT >19%; the full
// system improves 27% over the baseline under all networks.
func Fig16(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "Fig16", Title: "Benefits of individual modules (IoU vs baseline)"}
	clips := dataset.KITTI(seed, frames)
	clips = append(clips, dataset.SelfRecorded(seed, frames)...)

	media := []netsim.Medium{netsim.WiFi24, netsim.WiFi5}
	arms := []SystemKind{SysBestEffort, SysBaseCFRS, SysBaseCIIA, SysEdgeISMAMTOnly, SysEdgeIS}
	paper := map[SystemKind]string{
		SysBaseCFRS: "+3-7%", SysBaseCIIA: "+12-14%",
		SysEdgeISMAMTOnly: ">+19%", SysEdgeIS: "+27%",
	}

	r.Addf("%-16s %12s %12s %14s", "arm", "wifi-2.4", "wifi-5", "paper gain")
	base := make(map[netsim.Medium]float64, len(media))
	for _, arm := range arms {
		var cells []string
		for _, m := range media {
			out := RunClips(arm, clips, m, device.IPhone11, seed)
			iou := out.Acc.MeanIoU()
			if arm == SysBestEffort {
				base[m] = iou
				cells = append(cells, pct(0)+" (base)")
				continue
			}
			cells = append(cells, pct(metrics.Improvement(base[m], iou)))
		}
		r.Addf("%-16s %12s %12s %14s", arm, cells[0], cells[1], paper[arm])
	}
	return r
}

// Fig17 reproduces the oil-field case study: an industrial scene inspected
// by a device fleet over WiFi and LTE; segmentation accuracy plus the
// user-facing rendered-information accuracy.
//
// Paper: 87% mean segmentation accuracy, 92% rendered-information accuracy,
// 8% false segmentation, 2% false rendering.
func Fig17(seed int64, frames int) *Result {
	if frames == 0 {
		frames = 420
	}
	r := &Result{ID: "Fig17", Title: "Oil-field case study (device fleet)"}
	type deviceRun struct {
		dev    device.Profile
		medium netsim.Medium
		count  int
	}
	fleet := []deviceRun{
		{device.DreamGlass, netsim.WiFi5, 5},
		{device.IPhone11, netsim.LTE, 3},
	}

	segAcc := metrics.NewAccumulator("field")
	renderSeen, renderOK := 0, 0
	falseRender := 0
	idx := 0
	for _, fr := range fleet {
		for d := 0; d < fr.count; d++ {
			clip := dataset.FieldClip(seed+int64(idx), frames)
			out := RunClips(SysEdgeIS, []dataset.Clip{clip}, fr.medium, fr.dev, seed+int64(idx))
			segAcc.Merge(out.Acc)
			// Rendered-information accuracy: users sample one frame per
			// second and judge the overlays of the objects they care about
			// (large or central ones, Section VI-G). A rendered overlay
			// satisfies when the mask is at least loosely right.
			seen, ok, falses := renderScore(out.Acc)
			renderSeen += seen
			renderOK += ok
			falseRender += falses
			idx++
		}
	}
	r.Addf("fleet: 5x DreamGlass (WiFi) + 3x iPhone 11 (LTE), %d frames each", frames)
	r.Addf("segmentation accuracy: %s  (paper: 87%%)", pct(segAcc.MeanIoU()))
	r.Addf("false segmentation:    %s  (paper: 8%%)", pct(segAcc.FalseRate(metrics.LooseThreshold)))
	if renderSeen > 0 {
		r.Addf("rendered-info accuracy: %s (paper: 92%%)", pct(float64(renderOK)/float64(renderSeen)))
		r.Addf("false rendering:        %s (paper: 2%%)", pct(float64(falseRender)/float64(renderSeen)))
	}
	return r
}

// renderScore approximates the user-satisfaction sampling of Section VI-G
// from the per-object IoU stream: one sample per 30 objects (one frame per
// second), satisfied at loose-threshold quality. Users "tend to focus on
// objects that are either large or central and ignore the small ones", so
// near-misses count as satisfied while gross failures count as false
// renders.
func renderScore(acc *metrics.Accumulator) (seen, ok, falses int) {
	xs, ys := acc.CDF(21)
	if xs == nil {
		return 0, 0, 0
	}
	n := acc.Samples() / 30
	if n == 0 {
		n = 1
	}
	// Fraction below 0.3 = gross failures; below 0.5 = unsatisfying.
	fGross, fLoose := 0.0, 0.0
	for i := range xs {
		if xs[i] <= 0.3 {
			fGross = ys[i]
		}
		if xs[i] <= 0.5 {
			fLoose = ys[i]
		}
	}
	// Users ignore about half of the borderline cases (small objects).
	satisfied := 1 - fLoose + (fLoose-fGross)*0.5
	seen = n
	ok = int(satisfied * float64(n))
	falses = int(fGross * float64(n))
	return seen, ok, falses
}

// PowerStudy reproduces the power-consumption measurement: battery drain of
// a 10-minute session on each phone.
//
// Paper: 4.2% (iPhone 11) and 5.4% (Galaxy S10) in 10 minutes.
func PowerStudy(seed int64) *Result {
	r := &Result{ID: "Power", Title: "Power consumption (10-minute session)"}
	paper := map[string]float64{"iphone-11": 4.2, "galaxy-s10": 5.4}
	const minutes = 10.0

	for _, dev := range []device.Profile{device.IPhone11, device.GalaxyS10} {
		// Run a representative 20 s slice and extrapolate the duty cycle.
		cam := EvalCamera()
		clip := dataset.SelfRecorded(seed, 600)[0]
		sys := core.NewSystem(core.Config{Camera: cam, Device: dev, Seed: seed})
		engine := pipeline.NewEngine(pipeline.Config{
			World: clip.World, Camera: cam, Trajectory: clip.Traj,
			Frames: 600, CameraSpeed: clip.CameraSpeed,
			Medium: netsim.WiFi5, Seed: seed,
		}, sys)
		_, stats := engine.Run()

		cpu := sys.CPU().Utilization()
		wallS := float64(stats.Frames) / 30
		radioMbits := float64(stats.UplinkBytes+stats.DownlinkBytes) * 8 / 1e6
		pm := device.NewPowerModel(dev)
		scale := minutes * 60 / wallS
		pm.Add(minutes*60, cpu, radioMbits*scale)
		r.Addf("%-12s drain %.1f%% in %v min (paper %.1f%%), cpu %s, radio %.1f Mbit total",
			dev.Name, pm.BatteryDrainPct(), minutes, paper[dev.Name], pct(cpu), radioMbits*scale)
	}
	return r
}
